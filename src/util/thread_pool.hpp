#pragma once
// Work-sharing thread pool and `parallel_for`.
//
// The training and evaluation kernels (GEMM, attention, batched logit
// evaluation) parallelise over independent row/batch ranges. The pool is a
// classic condition-variable task queue; `parallel_for` chunks an index
// range across workers and joins before returning, so callers never observe
// partially-applied updates. On single-core machines the pool degrades to
// serial execution in the calling thread with no locking overhead.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace astromlab::util {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means hardware_concurrency - 1
  /// (the caller participates in parallel_for, so total parallelism is
  /// num_threads + 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// Total parallelism parallel_for can exploit: the workers plus the
  /// calling thread. Kernels use this to size per-task tile grains.
  std::size_t parallelism() const { return workers_.size() + 1; }

  /// Enqueues a task; returns immediately. A throwing task does not kill
  /// the worker: the first exception is captured and rethrown from the
  /// next `wait_idle()`. With zero workers the task runs inline, with the
  /// same deferred-error semantics.
  void submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished, then rethrows the
  /// first exception any of them threw since the last wait_idle().
  void wait_idle();

  /// Runs `body(begin, end)` over [0, n) split into contiguous chunks,
  /// using the workers plus the calling thread. Blocks until complete.
  /// `grain` is the minimum chunk size worth parallelising. Every chunk
  /// runs to completion even when one throws; the first exception is
  /// rethrown after the join, so callers never observe a half-joined
  /// range or a deadlocked pool.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body,
                    std::size_t grain = 1);

  /// Process-wide shared pool (lazily constructed, sized from hardware).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::exception_ptr first_error_;  ///< first failure since last wait_idle()
};

/// Convenience wrapper over the global pool. `body(i)` is invoked once per
/// index; use the range overload for cache-friendly chunk processing.
void parallel_for_each(std::size_t n, const std::function<void(std::size_t)>& body,
                       std::size_t grain = 64);

/// Range form: `body(begin, end)` per chunk on the global pool.
void parallel_for_range(std::size_t n,
                        const std::function<void(std::size_t, std::size_t)>& body,
                        std::size_t grain = 64);

}  // namespace astromlab::util
