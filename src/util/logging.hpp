#pragma once
// Lightweight leveled logger.
//
// Free-standing logging functions write to stderr with a monotonic
// timestamp and severity tag. The global level is process-wide and
// thread-safe; individual log calls format eagerly only when the level
// is enabled (callers should gate expensive formatting on `enabled()`).

#include <atomic>
#include <sstream>
#include <string>
#include <string_view>

namespace astromlab::log {

enum class Level : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Sets the process-wide minimum severity that will be emitted.
void set_level(Level level);

/// Current process-wide level.
Level level();

/// True if a message at `l` would be emitted.
bool enabled(Level l);

/// Emits one line to stderr: `[elapsed] LEVEL message`.
void emit(Level l, std::string_view message);

/// Parses "debug"/"info"/"warn"/"error"/"off" (case-insensitive);
/// returns kInfo on unrecognised input.
Level parse_level(std::string_view name);

namespace detail {

class LineBuilder {
 public:
  explicit LineBuilder(Level l) : level_(l), active_(enabled(l)) {}
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;
  ~LineBuilder() {
    if (active_) emit(level_, stream_.str());
  }

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    if (active_) stream_ << value;
    return *this;
  }

 private:
  Level level_;
  bool active_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LineBuilder debug() { return detail::LineBuilder(Level::kDebug); }
inline detail::LineBuilder info() { return detail::LineBuilder(Level::kInfo); }
inline detail::LineBuilder warn() { return detail::LineBuilder(Level::kWarn); }
inline detail::LineBuilder error() { return detail::LineBuilder(Level::kError); }

}  // namespace astromlab::log
