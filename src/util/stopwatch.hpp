#pragma once
// Monotonic wall-clock stopwatch for throughput reporting.

#include <chrono>

namespace astromlab::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace astromlab::util
