#pragma once
// Binary serialisation helpers for checkpoints, vocabularies and caches.
//
// All multi-byte values are written little-endian (the only byte order we
// target; a static_assert guards against big-endian hosts). Readers validate
// lengths before allocating so a truncated or corrupt file raises
// `IoError` instead of crashing.
//
// Durability: `BinaryWriter` supports an atomic-commit mode (write to
// `<path>.tmp`, flush, rename into place on close) and an integrity mode
// that appends a CRC-32 footer over the whole payload. `BinaryReader`
// auto-detects the footer, verifies it, and raises `CorruptFileError` on
// mismatch — so a kill -9 mid-write can never surface as a silently
// half-loaded artifact. Writes are routed through `util::FaultInjector`
// so tests can exercise every recovery path deterministically.

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/checksum.hpp"

namespace astromlab::util {

static_assert(std::endian::native == std::endian::little,
              "astromlab binary formats assume a little-endian host");

class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A file exists but fails integrity validation (bad CRC, missing footer,
/// torn write). Subclass of IoError so existing handlers keep working.
class CorruptFileError : public IoError {
 public:
  using IoError::IoError;
};

/// Footer layout: payload bytes, then u32 CRC-32(payload), then this magic.
constexpr std::uint32_t kCrcFooterMagic = 0x32435243;  // "CRC2"

struct WriteOptions {
  bool atomic = false;    ///< write to "<path>.tmp" and rename on close()
  bool checksum = false;  ///< append a CRC-32 footer on close()
};

/// Sequential binary writer over a file.
class BinaryWriter {
 public:
  explicit BinaryWriter(const std::filesystem::path& path)
      : BinaryWriter(path, WriteOptions{}) {}
  BinaryWriter(const std::filesystem::path& path, WriteOptions options);

  void write_u8(std::uint8_t v) { write_raw(&v, 1); }
  void write_u32(std::uint32_t v) { write_raw(&v, sizeof v); }
  void write_u64(std::uint64_t v) { write_raw(&v, sizeof v); }
  void write_i64(std::int64_t v) { write_raw(&v, sizeof v); }
  void write_f32(float v) { write_raw(&v, sizeof v); }
  void write_f64(double v) { write_raw(&v, sizeof v); }
  void write_string(const std::string& s);
  void write_f32_array(const float* data, std::size_t count);
  void write_u16_array(const std::uint16_t* data, std::size_t count);
  void write_i32_vector(const std::vector<std::int32_t>& v);
  void write_u64_array(const std::uint64_t* data, std::size_t count);

  /// Commits: writes the CRC footer (checksum mode), flushes, closes and
  /// renames into place (atomic mode). Throws IoError on failure; a failed
  /// atomic commit removes the temp file and leaves any previous file at
  /// `path` untouched. Safe to call twice.
  void close();

  ~BinaryWriter();
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

 private:
  void write_raw(const void* data, std::size_t bytes);
  void discard();

  std::ofstream stream_;
  std::filesystem::path path_;        ///< final destination
  std::filesystem::path write_path_;  ///< where bytes actually go (tmp in atomic mode)
  WriteOptions options_;
  Crc32 crc_;
  bool committed_ = false;
  bool failed_ = false;
};

struct ReadOptions {
  /// Require a valid CRC footer; files without one raise CorruptFileError.
  /// (Without this flag the footer is verified only when present.)
  bool require_checksum = false;
};

/// Sequential binary reader with bounds checking and CRC verification.
class BinaryReader {
 public:
  explicit BinaryReader(const std::filesystem::path& path)
      : BinaryReader(path, ReadOptions{}) {}
  BinaryReader(const std::filesystem::path& path, ReadOptions options);

  std::uint8_t read_u8();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int64_t read_i64();
  float read_f32();
  double read_f64();
  std::string read_string();
  void read_f32_array(float* out, std::size_t count);
  void read_u16_array(std::uint16_t* out, std::size_t count);
  std::vector<std::int32_t> read_i32_vector();
  void read_u64_array(std::uint64_t* out, std::size_t count);

  bool at_end() const { return offset_ >= buffer_.size(); }
  std::size_t remaining() const { return buffer_.size() - offset_; }

  /// True when the file carried a (verified) CRC footer.
  bool has_checksum() const { return has_checksum_; }

 private:
  void read_raw(void* out, std::size_t bytes);

  std::vector<char> buffer_;
  std::size_t offset_ = 0;
  std::filesystem::path path_;
  bool has_checksum_ = false;
};

/// Reads an entire text file; throws IoError if unreadable.
std::string read_text_file(const std::filesystem::path& path);

/// Writes text atomically-ish (tmp file then rename).
void write_text_file(const std::filesystem::path& path, const std::string& content);

}  // namespace astromlab::util
