#pragma once
// Binary serialisation helpers for checkpoints, vocabularies and caches.
//
// All multi-byte values are written little-endian (the only byte order we
// target; a static_assert guards against big-endian hosts). Readers validate
// lengths before allocating so a truncated or corrupt file raises
// `IoError` instead of crashing.

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace astromlab::util {

static_assert(std::endian::native == std::endian::little,
              "astromlab binary formats assume a little-endian host");

class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Sequential binary writer over a file.
class BinaryWriter {
 public:
  explicit BinaryWriter(const std::filesystem::path& path);

  void write_u8(std::uint8_t v) { write_raw(&v, 1); }
  void write_u32(std::uint32_t v) { write_raw(&v, sizeof v); }
  void write_u64(std::uint64_t v) { write_raw(&v, sizeof v); }
  void write_i64(std::int64_t v) { write_raw(&v, sizeof v); }
  void write_f32(float v) { write_raw(&v, sizeof v); }
  void write_f64(double v) { write_raw(&v, sizeof v); }
  void write_string(const std::string& s);
  void write_f32_array(const float* data, std::size_t count);
  void write_u16_array(const std::uint16_t* data, std::size_t count);
  void write_i32_vector(const std::vector<std::int32_t>& v);

  /// Flushes and closes; throws IoError on failure. Safe to call twice.
  void close();

  ~BinaryWriter();
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

 private:
  void write_raw(const void* data, std::size_t bytes);

  std::ofstream stream_;
  std::filesystem::path path_;
};

/// Sequential binary reader with bounds checking.
class BinaryReader {
 public:
  explicit BinaryReader(const std::filesystem::path& path);

  std::uint8_t read_u8();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int64_t read_i64();
  float read_f32();
  double read_f64();
  std::string read_string();
  void read_f32_array(float* out, std::size_t count);
  void read_u16_array(std::uint16_t* out, std::size_t count);
  std::vector<std::int32_t> read_i32_vector();

  bool at_end() const { return offset_ >= buffer_.size(); }
  std::size_t remaining() const { return buffer_.size() - offset_; }

 private:
  void read_raw(void* out, std::size_t bytes);

  std::vector<char> buffer_;
  std::size_t offset_ = 0;
  std::filesystem::path path_;
};

/// Reads an entire text file; throws IoError if unreadable.
std::string read_text_file(const std::filesystem::path& path);

/// Writes text atomically-ish (tmp file then rename).
void write_text_file(const std::filesystem::path& path, const std::string& content);

}  // namespace astromlab::util
