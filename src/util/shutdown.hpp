#pragma once
// Cooperative SIGINT/SIGTERM handling shared by the server and the bench
// binaries.
//
// A signal handler may only touch async-signal-safe state, but the work an
// interrupted process actually needs — flushing the trace JSON, draining
// in-flight HTTP requests — is ordinary code. `install()` therefore splits
// the job: the real handler just latches an atomic flag and pokes a
// self-pipe; a lazily-started watcher thread wakes on the pipe and runs
// the registered callback from a normal thread context, where it may take
// locks and do file I/O freely.
//
// Two behaviours hang off the same primitive:
//  * bench binaries: `install(flush, /*exit_after=*/true)` — first signal
//    flushes (journal lines are already durable per append; the trace JSON
//    is the torn tail worth saving) and exits with the conventional
//    128+signo, so an interrupted run is visibly interrupted but loses
//    nothing;
//  * the server: `install(begin_drain, /*exit_after=*/false)` — the first
//    signal starts the graceful drain and the process exits 0 from main()
//    once in-flight work has finished.
// A second signal always `_exit(128+signo)`s immediately from the handler
// itself — the escape hatch from a stuck flush or a wedged drain.

#include <functional>

namespace astromlab::util::shutdown {

/// True once SIGINT or SIGTERM has been received (after install()).
bool requested();

/// The signal that fired first (0 when none yet).
int signal_number();

/// Installs the SIGINT/SIGTERM handlers and starts the watcher thread
/// (idempotent; later calls just replace the callback). On the first
/// signal the watcher runs `on_signal` (may be empty) and then, when
/// `exit_after_callback`, calls `_exit(128 + signo)`. With
/// `exit_after_callback == false` the process keeps running — long-running
/// servers poll `requested()` (or get woken by their callback) and exit
/// main() normally.
void install(std::function<void()> on_signal = {}, bool exit_after_callback = true);

/// Programmatic trigger with identical semantics to receiving `signo`
/// (tests; also lets a parent-managed child share the signal path).
void request(int signo);

}  // namespace astromlab::util::shutdown
