#pragma once
// CRC-32 integrity checksums for durable binary artifacts.
//
// Checkpoints and trainer-state files append a CRC footer so that a torn
// write (power loss mid-flush, truncated copy, bit rot) is detected at
// load time as a typed error instead of being deserialised as garbage.
// The polynomial is the reflected IEEE 802.3 one (the zlib/PNG variant),
// so footers can be cross-checked with standard tools.

#include <array>
#include <cstddef>
#include <cstdint>

namespace astromlab::util {

namespace detail {
constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}
inline constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();
}  // namespace detail

/// Incremental CRC-32; feed bytes with update(), read the digest with value().
class Crc32 {
 public:
  void update(const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint32_t c = state_;
    for (std::size_t i = 0; i < bytes; ++i) {
      c = detail::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    }
    state_ = c;
  }

  std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }
  void reset() { state_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot CRC-32 of a buffer.
inline std::uint32_t crc32(const void* data, std::size_t bytes) {
  Crc32 crc;
  crc.update(data, bytes);
  return crc.value();
}

}  // namespace astromlab::util
