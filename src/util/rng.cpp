#include "util/rng.hpp"

#include <cmath>
#include <numeric>

namespace astromlab::util {

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound <= 1) return 0;
  // Lemire-style rejection: values in the truncated top range are rejected
  // so the result is exactly uniform.
  const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
  for (;;) {
    const std::uint64_t value = next_u64();
    if (value >= threshold) return value % bound;
  }
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
  if (hi <= lo) return lo;
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_gaussian() {
  if (has_gaussian_spare_) {
    has_gaussian_spare_ = false;
    return gaussian_spare_;
  }
  double u, v, s;
  do {
    u = 2.0 * next_double() - 1.0;
    v = 2.0 * next_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  gaussian_spare_ = v * mul;
  has_gaussian_spare_ = true;
  return u * mul;
}

std::size_t Rng::next_categorical(const std::vector<double>& weights) {
  if (weights.empty()) return 0;
  double total = 0.0;
  for (double w : weights) total += w > 0.0 ? w : 0.0;
  if (total <= 0.0) return weights.size() - 1;
  double target = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  if (k > n) k = n;
  std::vector<std::size_t> indices(n);
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  // Partial Fisher–Yates: the first k slots end up as the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(next_below(n - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

Rng Rng::split(std::uint64_t label) {
  // Mix the label with fresh output so children with different labels (or
  // successive calls with the same label) are independent.
  std::uint64_t seed = next_u64() ^ (label * 0x9E3779B97f4A7C15ULL + 0xD1B54A32D192ED03ULL);
  return Rng(splitmix64(seed));
}

}  // namespace astromlab::util
