#pragma once
// Process-wide metrics registry: named monotonic counters and latency
// histograms with nearest-rank percentiles (p50/p95/p99).
//
// Counters are single relaxed atomics, safe to bump from any thread
// including the GEMM and thread-pool hot paths. Histograms keep raw
// samples behind a mutex; the eval pipeline records one sample per
// question, so cardinality is bounded by benchmark size. Name lookup
// takes the registry mutex — hot paths cache the returned reference in a
// function-local static. References stay valid for the process lifetime
// (entries are never removed).
//
// The registry is purely observational: nothing in the scoring or
// generation path reads a metric back, so scores and journal bytes are
// bit-identical whether or not anyone consumes the numbers
// (tests/test_trace_metrics.cpp enforces this end to end).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace astromlab::util::metrics {

/// Nearest-rank percentile index into a sorted sample of size `n`:
/// ceil(q * n) - 1, clamped to [0, n-1], with a small epsilon so binary
/// representation error cannot push an exact rank over the next integer
/// (0.025 * 1000 must select index 24, not 25). `n` must be > 0.
std::size_t nearest_rank_index(double q, std::size_t n);

/// Nearest-rank percentile of an ascending-sorted sample; 0 when empty.
double percentile_sorted(const std::vector<double>& sorted, double q);

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value instrument for levels rather than events (bytes resident,
/// budget headroom). Signed so a briefly-mismatched add/sub pair reads as
/// a negative level instead of wrapping to 2^64.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

struct HistogramSnapshot {
  std::size_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

class Histogram {
 public:
  void record(double value);
  HistogramSnapshot snapshot() const;
  /// Snapshot of the samples recorded since the previous snapshot_and_reset
  /// (or process start), atomically draining them — concurrent record()s
  /// land in exactly one interval. This is the delta API long-running
  /// processes need: a server's periodic stats log reports per-interval
  /// percentiles instead of lifetime ones that stop moving after an hour.
  HistogramSnapshot snapshot_and_reset();
  void reset();

 private:
  mutable std::mutex mutex_;
  std::vector<double> samples_;
};

class Registry {
 public:
  /// Process-wide shared registry.
  static Registry& instance();

  /// Named counter / histogram / gauge, created on first use. The
  /// returned reference is stable for the process lifetime.
  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);
  Gauge& gauge(std::string_view name);

  /// Name-ordered snapshots for reporting (trace files, bench JSON).
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms() const;
  std::vector<std::pair<std::string, std::int64_t>> gauges() const;

  /// Zeroes every counter and histogram (tests and bench isolation).
  /// Registered names and references stay valid.
  void reset_all();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
};

/// Shorthand for Registry::instance().
Registry& registry();

}  // namespace astromlab::util::metrics
