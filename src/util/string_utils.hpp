#pragma once
// String helpers shared across corpus generation, prompting and reporting.

#include <string>
#include <string_view>
#include <vector>

namespace astromlab::util {

/// Splits on a single character; empty fields are kept.
std::vector<std::string> split(std::string_view text, char sep);

/// Splits on any whitespace run; empty fields are dropped.
std::vector<std::string> split_whitespace(std::string_view text);

/// Removes leading/trailing whitespace.
std::string_view trim(std::string_view text);

/// Joins with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lowercase copy.
std::string to_lower(std::string_view text);

/// ASCII uppercase copy.
std::string to_upper(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);
bool contains(std::string_view text, std::string_view needle);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string_view text, std::string_view from, std::string_view to);

/// "%.1f"-style fixed formatting without streams.
std::string format_fixed(double value, int decimals);

/// Pads/truncates to an exact display width (left-aligned).
std::string pad_right(std::string_view text, std::size_t width);

/// Pads on the left (right-aligned).
std::string pad_left(std::string_view text, std::size_t width);

/// Renders "16-char hex" of a u64.
std::string to_hex(std::uint64_t value);

}  // namespace astromlab::util
