#include "util/resource_budget.hpp"

#include "util/cli.hpp"
#include "util/fault_injection.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"

namespace astromlab::util {
namespace {

struct BudgetMetrics {
  metrics::Gauge& used;
  metrics::Gauge& peak;
  metrics::Gauge& limit;
  metrics::Gauge& tensor_bytes;
  metrics::Gauge& kv_bytes;
  metrics::Gauge& scratch_bytes;
  metrics::Counter& acquisitions;
  metrics::Counter& denials;
};

BudgetMetrics& budget_metrics() {
  auto& reg = metrics::registry();
  static BudgetMetrics m{reg.gauge("memory.used_bytes"),
                         reg.gauge("memory.peak_bytes"),
                         reg.gauge("memory.limit_bytes"),
                         reg.gauge("memory.tensor_bytes"),
                         reg.gauge("memory.kv_bytes"),
                         reg.gauge("memory.scratch_bytes"),
                         reg.counter("memory.acquisitions"),
                         reg.counter("memory.denials")};
  return m;
}

metrics::Gauge& domain_gauge(MemoryDomain domain) {
  switch (domain) {
    case MemoryDomain::kTensor:
      return budget_metrics().tensor_bytes;
    case MemoryDomain::kKvCache:
      return budget_metrics().kv_bytes;
    case MemoryDomain::kScratch:
      break;
  }
  return budget_metrics().scratch_bytes;
}

}  // namespace

const char* memory_domain_name(MemoryDomain domain) {
  switch (domain) {
    case MemoryDomain::kTensor:
      return "tensor";
    case MemoryDomain::kKvCache:
      return "kv-cache";
    case MemoryDomain::kScratch:
      break;
  }
  return "scratch";
}

ResourceBudget& ResourceBudget::instance() {
  static ResourceBudget* shared = new ResourceBudget();  // leaked: outlives all users
  return *shared;
}

void ResourceBudget::set_limit_bytes(std::size_t limit) {
  limit_.store(limit, std::memory_order_relaxed);
  budget_metrics().limit.set(static_cast<std::int64_t>(limit));
}

std::size_t ResourceBudget::domain_bytes(MemoryDomain domain) const {
  return domains_[static_cast<std::size_t>(domain)].load(std::memory_order_relaxed);
}

void ResourceBudget::acquire(std::size_t bytes, MemoryDomain domain) {
  if (FaultInjector::instance().on_alloc()) {
    denials_.fetch_add(1, std::memory_order_relaxed);
    budget_metrics().denials.add();
    throw ResourceExhaustedError("injected allocation failure (" + std::to_string(bytes) +
                                 " bytes, " + memory_domain_name(domain) + ")");
  }
  // Reserve-before-allocate under a CAS so concurrent acquisitions cannot
  // jointly overshoot: the loop either charges the bytes while staying at
  // or under the limit, or charges nothing and throws.
  std::size_t used = used_.load(std::memory_order_relaxed);
  for (;;) {
    const std::size_t limit = limit_.load(std::memory_order_relaxed);
    const std::size_t next = used + bytes;
    if (limit > 0 && next > limit) {
      denials_.fetch_add(1, std::memory_order_relaxed);
      budget_metrics().denials.add();
      throw ResourceExhaustedError("memory budget exceeded: " + std::to_string(used) + " + " +
                                   std::to_string(bytes) + " bytes (" +
                                   memory_domain_name(domain) + ") > limit " +
                                   std::to_string(limit));
    }
    if (used_.compare_exchange_weak(used, next, std::memory_order_relaxed)) {
      used = next;
      break;
    }
  }
  std::size_t peak = peak_.load(std::memory_order_relaxed);
  while (used > peak && !peak_.compare_exchange_weak(peak, used, std::memory_order_relaxed)) {
  }
  domains_[static_cast<std::size_t>(domain)].fetch_add(bytes, std::memory_order_relaxed);

  auto& m = budget_metrics();
  m.acquisitions.add();
  m.used.set(static_cast<std::int64_t>(used));
  m.peak.set(static_cast<std::int64_t>(peak_.load(std::memory_order_relaxed)));
  domain_gauge(domain).add(static_cast<std::int64_t>(bytes));
}

void ResourceBudget::release(std::size_t bytes, MemoryDomain domain) noexcept {
  const std::size_t before = used_.fetch_sub(bytes, std::memory_order_relaxed);
  domains_[static_cast<std::size_t>(domain)].fetch_sub(bytes, std::memory_order_relaxed);
  auto& m = budget_metrics();
  m.used.set(static_cast<std::int64_t>(before - bytes));
  domain_gauge(domain).add(-static_cast<std::int64_t>(bytes));
}

void ResourceBudget::reset_for_testing() {
  limit_.store(0, std::memory_order_relaxed);
  peak_.store(used_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  denials_.store(0, std::memory_order_relaxed);
  auto& m = budget_metrics();
  m.limit.set(0);
  m.peak.set(static_cast<std::int64_t>(peak_.load(std::memory_order_relaxed)));
}

void ResourceBudget::init_from_args(const ArgParser& args) {
  const long long mb = args.get_int("memory-budget-mb", 0);
  if (mb <= 0) return;
  const std::size_t limit = static_cast<std::size_t>(mb) * 1024 * 1024;
  instance().set_limit_bytes(limit);
  log::info() << "memory budget: " << mb << " MiB (" << limit << " bytes) tracked";
}

}  // namespace astromlab::util
