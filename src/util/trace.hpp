#pragma once
// Run-wide tracing: scoped RAII spans emitting Chrome trace_event JSON.
//
// One process-wide session, off by default. `start(path)` arms it;
// `Span` objects constructed while armed record a complete ("ph":"X")
// event on destruction — name, category, microsecond timestamp relative
// to session start, duration, pid/tid — buffered in memory and written
// on `stop()`. Load the file at chrome://tracing or https://ui.perfetto.dev.
//
// Disabled cost is one relaxed atomic load per Span (gated < 2% of
// question latency by `bench/throughput --smoke`). Tracing is a pure
// observer: it never feeds back into scoring, sampling, or scheduling, so
// scores and journal bytes are bit-identical with the session on or off
// (enforced by tests/test_trace_metrics.cpp).
//
// The emitted document also embeds a snapshot of util::metrics under a
// top-level "metrics" key, so one artefact carries both the timeline and
// the counters. JSON is hand-rolled here: astromlab_util sits below
// astromlab_json in the link graph and must not depend on it.

#include <cstdint>
#include <filesystem>
#include <string>

namespace astromlab::util {
class ArgParser;
}  // namespace astromlab::util

namespace astromlab::util::trace {

/// True while a session is collecting. Single relaxed atomic load.
bool enabled();

/// Arms the session; events are buffered until stop(). `path` may be
/// empty for an in-memory session (tests, overhead probes). Calling
/// start while a session is active restarts it (previous events drop).
void start(const std::filesystem::path& path);

/// Disarms the session and returns the full JSON document (traceEvents +
/// metrics snapshot). Writes it to the session path when one was given.
/// No-op returning "" when no session is active.
std::string stop();

/// Writes and closes an active session; silently does nothing otherwise.
/// Intended for the end of main() in bench binaries.
void finish();

/// Events buffered so far (0 when disabled). Used by the smoke harness to
/// count spans-per-question without owning the session.
std::size_t event_count();

/// Temporarily disarms an active session without dropping its buffered
/// events; spans constructed while paused cost the disabled-path atomic
/// load and record nothing. resume() re-arms the session (no-op when no
/// session is open). Lets the smoke harness probe the disabled-span cost
/// while a --trace-json session is live.
void pause();
void resume();

/// Arms a session from `--trace-json <path>` (env ASTROMLAB_TRACE_JSON).
/// Returns true when a session was started.
bool init_from_args(const util::ArgParser& args);

/// Scoped timer. `name` and `category` must be string literals (stored by
/// pointer, not copied). An optional single integer argument lands in the
/// event's "args" object under `arg_key`.
class Span {
 public:
  explicit Span(const char* name, const char* category = "astromlab");
  Span(const char* name, const char* category, const char* arg_key,
       std::uint64_t arg_value);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* category_;
  const char* arg_key_;
  std::uint64_t arg_value_;
  std::uint64_t start_ns_;
  bool active_;
};

}  // namespace astromlab::util::trace
