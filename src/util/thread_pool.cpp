#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace astromlab::util {
namespace {

metrics::Counter& tasks_submitted_counter() {
  static metrics::Counter& c = metrics::registry().counter("pool.tasks_submitted");
  return c;
}

metrics::Counter& tasks_inline_counter() {
  static metrics::Counter& c = metrics::registry().counter("pool.tasks_inline");
  return c;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw > 1 ? hw - 1 : 0;
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    // Serial fallback: run inline so the pool is usable on 1-core hosts.
    // Errors defer to wait_idle(), matching the threaded path's semantics.
    tasks_inline_counter().add();
    try {
      const trace::Span span("pool.task", "pool");
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    return;
  }
  tasks_submitted_counter().add();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // A throwing task must neither escape the worker thread (std::terminate)
    // nor leak its in_flight_ count (wait_idle deadlock): capture it here
    // and decrement unconditionally under the lock.
    std::exception_ptr error;
    try {
      const trace::Span span("pool.task", "pool");
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = std::move(error);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t, std::size_t)>& body,
                              std::size_t grain) {
  if (n == 0) return;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t parallelism = workers_.size() + 1;
  const std::size_t max_chunks = (n + grain - 1) / grain;
  const std::size_t chunks = std::min(parallelism, max_chunks);
  if (chunks <= 1 || workers_.empty()) {
    body(0, n);
    return;
  }
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  std::atomic<std::size_t> remaining{chunks - 1};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::exception_ptr chunk_error;  // first failing chunk wins, guarded by done_mutex

  for (std::size_t c = 1; c < chunks; ++c) {
    const std::size_t begin = c * chunk_size;
    const std::size_t end = std::min(n, begin + chunk_size);
    submit([&, begin, end] {
      // Capture locally so the join counter always reaches zero; the
      // error is rethrown below after every chunk has finished.
      try {
        if (begin < end) body(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(done_mutex);
        if (!chunk_error) chunk_error = std::current_exception();
      }
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_one();
      }
    });
  }
  // Calling thread handles the first chunk.
  try {
    body(0, std::min(n, chunk_size));
  } catch (...) {
    std::lock_guard<std::mutex> lock(done_mutex);
    if (!chunk_error) chunk_error = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load(std::memory_order_acquire) == 0; });
  if (chunk_error) {
    std::exception_ptr error = std::exchange(chunk_error, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for_each(std::size_t n, const std::function<void(std::size_t)>& body,
                       std::size_t grain) {
  ThreadPool::global().parallel_for(
      n,
      [&body](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) body(i);
      },
      grain);
}

void parallel_for_range(std::size_t n,
                        const std::function<void(std::size_t, std::size_t)>& body,
                        std::size_t grain) {
  ThreadPool::global().parallel_for(n, body, grain);
}

}  // namespace astromlab::util
