#include "util/fault_injection.hpp"

#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"

namespace astromlab::util {
namespace {

// Site tags folded into the chaos hash so each seam draws an independent
// deterministic stream from the same seed.
constexpr std::uint64_t kSiteWrite = 0x57;
constexpr std::uint64_t kSiteRead = 0x52;
constexpr std::uint64_t kSiteAlloc = 0x41;
constexpr std::uint64_t kSiteEval = 0x45;
// Secondary stream deciding the *flavour* of a fired fault (fail vs torn,
// transient vs alloc pressure).
constexpr std::uint64_t kFlavourSalt = 0x9E3779B97F4A7C15ULL;

/// splitmix64 finalizer (Vigna): a pure stateless mix of the packed key.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t chaos_key(std::uint64_t seed, std::uint64_t site, std::uint64_t event) {
  return mix64(mix64(seed ^ (site << 56)) ^ event);
}

struct ChaosMetrics {
  metrics::Counter& write_faults;
  metrics::Counter& read_faults;
  metrics::Counter& alloc_faults;
  metrics::Counter& eval_faults;
};

ChaosMetrics& chaos_metrics() {
  auto& reg = metrics::registry();
  static ChaosMetrics m{reg.counter("chaos.write_faults"),
                        reg.counter("chaos.read_faults"),
                        reg.counter("chaos.alloc_faults"),
                        reg.counter("chaos.eval_faults")};
  return m;
}

}  // namespace

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

bool FaultInjector::chaos_fires(std::uint64_t site, std::uint64_t event) const {
  const std::uint64_t draw = chaos_key(chaos_.seed, site, event);
  // 53-bit mantissa: uniform in [0, 1).
  const double u = static_cast<double>(draw >> 11) * 0x1.0p-53;
  return u < chaos_.rate;
}

void FaultInjector::arm_fail_write(std::size_t nth) {
  std::lock_guard<std::mutex> lock(mutex_);
  write_mode_ = IoMode::kFail;
  write_trigger_ = nth;
  writes_ = 0;
  any_armed_.store(true, std::memory_order_release);
}

void FaultInjector::arm_truncate_write(std::size_t nth) {
  std::lock_guard<std::mutex> lock(mutex_);
  write_mode_ = IoMode::kTruncate;
  write_trigger_ = nth;
  writes_ = 0;
  any_armed_.store(true, std::memory_order_release);
}

void FaultInjector::arm_fail_read(std::size_t nth) {
  std::lock_guard<std::mutex> lock(mutex_);
  read_mode_ = IoMode::kFail;
  read_trigger_ = nth;
  reads_ = 0;
  any_armed_.store(true, std::memory_order_release);
}

void FaultInjector::arm_torn_read(std::size_t nth) {
  std::lock_guard<std::mutex> lock(mutex_);
  read_mode_ = IoMode::kTruncate;
  read_trigger_ = nth;
  reads_ = 0;
  any_armed_.store(true, std::memory_order_release);
}

void FaultInjector::arm_fail_alloc(std::size_t nth) {
  std::lock_guard<std::mutex> lock(mutex_);
  alloc_trigger_ = nth;
  allocs_ = 0;
  any_armed_.store(true, std::memory_order_release);
}

void FaultInjector::arm_eval_transient(std::size_t question, std::size_t attempts) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (attempts == 0) return;
  eval_transient_[question] = attempts;
  any_armed_.store(true, std::memory_order_release);
}

void FaultInjector::arm_eval_permanent(std::size_t question) {
  std::lock_guard<std::mutex> lock(mutex_);
  eval_permanent_.insert(question);
  any_armed_.store(true, std::memory_order_release);
}

void FaultInjector::arm_chaos(const ChaosConfig& config) {
  std::lock_guard<std::mutex> lock(mutex_);
  chaos_ = config;
  chaos_armed_ = config.rate > 0.0;
  chaos_writes_ = 0;
  chaos_reads_ = 0;
  chaos_allocs_ = 0;
  chaos_eval_attempts_.clear();
  if (chaos_armed_) any_armed_.store(true, std::memory_order_release);
}

bool FaultInjector::chaos_active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return chaos_armed_;
}

void FaultInjector::disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  write_mode_ = IoMode::kNone;
  write_trigger_ = 0;
  writes_ = 0;
  read_mode_ = IoMode::kNone;
  read_trigger_ = 0;
  reads_ = 0;
  alloc_trigger_ = 0;
  allocs_ = 0;
  eval_transient_.clear();
  eval_permanent_.clear();
  chaos_ = ChaosConfig{};
  chaos_armed_ = false;
  chaos_writes_ = 0;
  chaos_reads_ = 0;
  chaos_allocs_ = 0;
  chaos_eval_attempts_.clear();
  any_armed_.store(false, std::memory_order_release);
}

bool FaultInjector::armed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return write_mode_ != IoMode::kNone || read_mode_ != IoMode::kNone || alloc_trigger_ > 0 ||
         !eval_transient_.empty() || !eval_permanent_.empty() || chaos_armed_;
}

std::size_t FaultInjector::writes_observed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return writes_;
}

std::size_t FaultInjector::reads_observed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reads_;
}

FaultInjector::Action FaultInjector::on_write() {
  if (!any_armed_.load(std::memory_order_acquire)) return Action::kProceed;
  std::lock_guard<std::mutex> lock(mutex_);
  if (write_mode_ != IoMode::kNone) {
    ++writes_;
    if (write_mode_ == IoMode::kFail) {
      if (writes_ == write_trigger_) {
        write_mode_ = IoMode::kNone;
        return Action::kFail;
      }
      return Action::kProceed;
    }
    return writes_ >= write_trigger_ ? Action::kDrop : Action::kProceed;
  }
  if (chaos_armed_ && chaos_.writes) {
    const std::uint64_t event = ++chaos_writes_;
    if (chaos_fires(kSiteWrite, event)) {
      chaos_metrics().write_faults.add();
      const bool tear = (chaos_key(chaos_.seed ^ kFlavourSalt, kSiteWrite, event) & 1) != 0;
      return tear ? Action::kDrop : Action::kFail;
    }
  }
  return Action::kProceed;
}

FaultInjector::Action FaultInjector::on_read() {
  if (!any_armed_.load(std::memory_order_acquire)) return Action::kProceed;
  std::lock_guard<std::mutex> lock(mutex_);
  if (read_mode_ != IoMode::kNone) {
    ++reads_;
    if (reads_ == read_trigger_) {
      const IoMode mode = read_mode_;
      read_mode_ = IoMode::kNone;
      return mode == IoMode::kFail ? Action::kFail : Action::kDrop;
    }
    return Action::kProceed;
  }
  if (chaos_armed_ && chaos_.reads) {
    const std::uint64_t event = ++chaos_reads_;
    if (chaos_fires(kSiteRead, event)) {
      chaos_metrics().read_faults.add();
      const bool tear = (chaos_key(chaos_.seed ^ kFlavourSalt, kSiteRead, event) & 1) != 0;
      return tear ? Action::kDrop : Action::kFail;
    }
  }
  return Action::kProceed;
}

bool FaultInjector::on_alloc() {
  if (!any_armed_.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  if (alloc_trigger_ > 0) {
    ++allocs_;
    if (allocs_ == alloc_trigger_) {
      alloc_trigger_ = 0;
      return true;
    }
    return false;
  }
  if (chaos_armed_ && chaos_.allocs) {
    const std::uint64_t event = ++chaos_allocs_;
    if (chaos_fires(kSiteAlloc, event)) {
      chaos_metrics().alloc_faults.add();
      return true;
    }
  }
  return false;
}

FaultInjector::EvalAction FaultInjector::on_eval_attempt(std::size_t question) {
  if (!any_armed_.load(std::memory_order_acquire)) return EvalAction::kProceed;
  std::lock_guard<std::mutex> lock(mutex_);
  if (eval_permanent_.count(question) > 0) return EvalAction::kPermanent;
  const auto it = eval_transient_.find(question);
  if (it != eval_transient_.end() && it->second > 0) {
    if (--it->second == 0) eval_transient_.erase(it);
    return EvalAction::kTransient;
  }
  if (chaos_armed_ && chaos_.evals) {
    // Keyed by (question, attempt) rather than a global counter: the draw
    // stream per question is independent of worker interleaving, so a
    // parallel chaos run injects the same schedule as a serial one.
    const std::size_t attempt = chaos_eval_attempts_[question]++;
    const std::uint64_t event = (static_cast<std::uint64_t>(question) << 8) |
                                (static_cast<std::uint64_t>(attempt) & 0xFF);
    if (chaos_fires(kSiteEval, event)) {
      chaos_metrics().eval_faults.add();
      // The flavour is part of the eval seam (the `evals` flag), not the
      // raw-acquisition seam: alloc pressure at the question boundary must
      // stay injectable even when `allocs` is off because raw tensor
      // acquisitions also happen outside any fault domain (world setup).
      const bool alloc = (chaos_key(chaos_.seed ^ kFlavourSalt, kSiteEval, event) & 1) != 0;
      return alloc ? EvalAction::kAllocPressure : EvalAction::kTransient;
    }
  }
  return EvalAction::kProceed;
}

void FaultInjector::init_chaos_from_args(const ArgParser& args) {
  ChaosConfig config;
  config.seed = static_cast<std::uint64_t>(args.get_int("chaos-seed", 0));
  config.rate = args.get_double("chaos-rate", 0.0);
  // The raw-acquisition seam stays off under CLI chaos: tensor storage is
  // also acquired outside any fault domain (model construction, corpus
  // setup) where an injected ResourceExhaustedError has no handler.
  // Allocation pressure is still injected at the eval seam, where the
  // supervisor's degradation ladder catches it; tests exercising the raw
  // seam use arm_fail_alloc / arm_chaos directly.
  config.allocs = false;
  if (config.rate <= 0.0) return;
  instance().arm_chaos(config);
  log::info() << "chaos schedule armed: seed=" << config.seed << " rate=" << config.rate;
}

}  // namespace astromlab::util
