#include "util/fault_injection.hpp"

namespace astromlab::util {

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm_fail_write(std::size_t nth) {
  std::lock_guard<std::mutex> lock(mutex_);
  mode_ = Mode::kFailWrite;
  trigger_ = nth;
  writes_ = 0;
  any_armed_.store(true, std::memory_order_release);
}

void FaultInjector::arm_truncate_write(std::size_t nth) {
  std::lock_guard<std::mutex> lock(mutex_);
  mode_ = Mode::kTruncateWrite;
  trigger_ = nth;
  writes_ = 0;
  any_armed_.store(true, std::memory_order_release);
}

void FaultInjector::arm_eval_transient(std::size_t question, std::size_t attempts) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (attempts == 0) return;
  eval_transient_[question] = attempts;
  any_armed_.store(true, std::memory_order_release);
}

void FaultInjector::arm_eval_permanent(std::size_t question) {
  std::lock_guard<std::mutex> lock(mutex_);
  eval_permanent_.insert(question);
  any_armed_.store(true, std::memory_order_release);
}

void FaultInjector::disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  mode_ = Mode::kNone;
  trigger_ = 0;
  writes_ = 0;
  eval_transient_.clear();
  eval_permanent_.clear();
  any_armed_.store(false, std::memory_order_release);
}

bool FaultInjector::armed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return mode_ != Mode::kNone || !eval_transient_.empty() || !eval_permanent_.empty();
}

std::size_t FaultInjector::writes_observed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return writes_;
}

FaultInjector::Action FaultInjector::on_write() {
  if (!any_armed_.load(std::memory_order_acquire)) return Action::kProceed;
  std::lock_guard<std::mutex> lock(mutex_);
  if (mode_ == Mode::kNone) return Action::kProceed;
  ++writes_;
  if (mode_ == Mode::kFailWrite) {
    if (writes_ == trigger_) {
      mode_ = Mode::kNone;
      return Action::kFail;
    }
    return Action::kProceed;
  }
  return writes_ >= trigger_ ? Action::kDrop : Action::kProceed;
}

FaultInjector::EvalAction FaultInjector::on_eval_attempt(std::size_t question) {
  if (!any_armed_.load(std::memory_order_acquire)) return EvalAction::kProceed;
  std::lock_guard<std::mutex> lock(mutex_);
  if (eval_permanent_.count(question) > 0) return EvalAction::kPermanent;
  const auto it = eval_transient_.find(question);
  if (it != eval_transient_.end() && it->second > 0) {
    if (--it->second == 0) eval_transient_.erase(it);
    return EvalAction::kTransient;
  }
  return EvalAction::kProceed;
}

}  // namespace astromlab::util
