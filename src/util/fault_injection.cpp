#include "util/fault_injection.hpp"

namespace astromlab::util {

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm_fail_write(std::size_t nth) {
  mode_ = Mode::kFailWrite;
  trigger_ = nth;
  writes_ = 0;
}

void FaultInjector::arm_truncate_write(std::size_t nth) {
  mode_ = Mode::kTruncateWrite;
  trigger_ = nth;
  writes_ = 0;
}

void FaultInjector::disarm() {
  mode_ = Mode::kNone;
  trigger_ = 0;
  writes_ = 0;
}

FaultInjector::Action FaultInjector::on_write() {
  if (mode_ == Mode::kNone) return Action::kProceed;
  ++writes_;
  if (mode_ == Mode::kFailWrite) {
    if (writes_ == trigger_) {
      mode_ = Mode::kNone;
      return Action::kFail;
    }
    return Action::kProceed;
  }
  return writes_ >= trigger_ ? Action::kDrop : Action::kProceed;
}

}  // namespace astromlab::util
