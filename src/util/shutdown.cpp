#include "util/shutdown.hpp"

#include <csignal>
#include <unistd.h>

#include <atomic>
#include <mutex>
#include <thread>

#include "util/logging.hpp"

namespace astromlab::util::shutdown {

namespace {

std::atomic<bool> g_requested{false};
std::atomic<int> g_signal{0};
int g_wake_pipe[2] = {-1, -1};

std::mutex g_callback_mutex;
std::function<void()>* g_callback = nullptr;  // leaked: watcher outlives main
std::atomic<bool> g_exit_after{true};
std::once_flag g_install_once;

extern "C" void on_signal_raw(int signo) {
  // Second signal: the flush/drain is stuck — bail out immediately.
  // _exit and write are async-signal-safe; nothing else here is allowed.
  if (g_requested.exchange(true)) _exit(128 + signo);
  g_signal.store(signo);
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_wake_pipe[1], &byte, 1);
}

void watcher_loop() {
  char byte = 0;
  while (::read(g_wake_pipe[0], &byte, 1) < 0) {
    // EINTR only; the pipe write end is never closed.
  }
  const int signo = g_signal.load();
  log::warn() << "signal " << signo << " received; running shutdown hook";
  {
    std::lock_guard<std::mutex> lock(g_callback_mutex);
    if (g_callback != nullptr && *g_callback) {
      try {
        (*g_callback)();
      } catch (...) {
        // A throwing flush must not turn a clean interrupt into std::terminate.
      }
    }
  }
  if (g_exit_after.load()) _exit(128 + signo);
}

void install_once() {
  if (::pipe(g_wake_pipe) != 0) {
    log::warn() << "shutdown: self-pipe unavailable; signals will not flush";
    return;
  }
  std::thread(watcher_loop).detach();
  struct sigaction action {};
  action.sa_handler = on_signal_raw;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

}  // namespace

bool requested() { return g_requested.load(std::memory_order_acquire); }

int signal_number() { return g_signal.load(std::memory_order_acquire); }

void install(std::function<void()> on_signal, bool exit_after_callback) {
  {
    std::lock_guard<std::mutex> lock(g_callback_mutex);
    if (g_callback == nullptr) g_callback = new std::function<void()>();
    *g_callback = std::move(on_signal);
  }
  g_exit_after.store(exit_after_callback);
  std::call_once(g_install_once, install_once);
}

void request(int signo) {
  if (g_wake_pipe[1] < 0) return;  // install() not called
  on_signal_raw(signo);
}

}  // namespace astromlab::util::shutdown
