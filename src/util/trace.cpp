#include "util/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <utility>
#include <vector>

#include "util/cli.hpp"
#include "util/io.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"

namespace astromlab::util::trace {
namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Event {
  const char* name;
  const char* category;
  const char* arg_key;  // nullptr when the span carries no argument
  std::uint64_t arg_value;
  std::uint64_t start_ns;
  std::uint64_t end_ns;
  std::uint32_t tid;
};

struct Session {
  std::mutex mutex;
  std::vector<Event> events;
  std::filesystem::path path;
  std::uint64_t t0_ns = 0;
  bool open = false;  // start()ed and not yet stop()ped (survives pause())
};

// `enabled` is the only state touched on the disabled path; everything
// else hides behind it. Both are leaked so spans in static destructors
// can never observe a destroyed session.
std::atomic<bool> g_enabled{false};
Session* session() {
  static Session* s = new Session();
  return s;
}

std::uint32_t this_thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void append_escaped(std::string& out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

std::string render_json(const Session& s) {
  std::string out;
  out.reserve(128 + s.events.size() * 128);
  out += "{\n\"traceEvents\": [";
  bool first = true;
  for (const Event& e : s.events) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\": \"";
    append_escaped(out, e.name);
    out += "\", \"cat\": \"";
    append_escaped(out, e.category);
    out += "\", \"ph\": \"X\", \"ts\": ";
    const std::uint64_t rel_ns = e.start_ns > s.t0_ns ? e.start_ns - s.t0_ns : 0;
    append_double(out, static_cast<double>(rel_ns) / 1000.0);
    out += ", \"dur\": ";
    const std::uint64_t dur_ns = e.end_ns > e.start_ns ? e.end_ns - e.start_ns : 0;
    append_double(out, static_cast<double>(dur_ns) / 1000.0);
    out += ", \"pid\": 1, \"tid\": ";
    out += std::to_string(e.tid);
    if (e.arg_key != nullptr) {
      out += ", \"args\": {\"";
      append_escaped(out, e.arg_key);
      out += "\": ";
      out += std::to_string(e.arg_value);
      out += "}";
    }
    out += "}";
  }
  out += "\n],\n\"metrics\": {\n\"counters\": {";
  first = true;
  for (const auto& [name, value] : metrics::registry().counters()) {
    if (!first) out += ',';
    first = false;
    out += "\n\"";
    append_escaped(out, name.c_str());
    out += "\": ";
    out += std::to_string(value);
  }
  out += "\n},\n\"gauges\": {";
  first = true;
  for (const auto& [name, value] : metrics::registry().gauges()) {
    if (!first) out += ',';
    first = false;
    out += "\n\"";
    append_escaped(out, name.c_str());
    out += "\": ";
    out += std::to_string(value);
  }
  out += "\n},\n\"histograms\": {";
  first = true;
  for (const auto& [name, snap] : metrics::registry().histograms()) {
    if (!first) out += ',';
    first = false;
    out += "\n\"";
    append_escaped(out, name.c_str());
    out += "\": {\"count\": ";
    out += std::to_string(snap.count);
    out += ", \"sum\": ";
    append_double(out, snap.sum);
    out += ", \"min\": ";
    append_double(out, snap.min);
    out += ", \"max\": ";
    append_double(out, snap.max);
    out += ", \"p50\": ";
    append_double(out, snap.p50);
    out += ", \"p95\": ";
    append_double(out, snap.p95);
    out += ", \"p99\": ";
    append_double(out, snap.p99);
    out += "}";
  }
  out += "\n}\n}\n}\n";
  return out;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void start(const std::filesystem::path& path) {
  Session& s = *session();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.events.clear();
  s.path = path;
  s.t0_ns = now_ns();
  s.open = true;
  g_enabled.store(true, std::memory_order_relaxed);
}

std::string stop() {
  Session& s = *session();
  const std::lock_guard<std::mutex> lock(s.mutex);
  if (!s.open) return "";
  s.open = false;
  g_enabled.store(false, std::memory_order_relaxed);
  std::string doc = render_json(s);
  if (!s.path.empty()) {
    write_text_file(s.path, doc);
    log::info() << "trace: wrote " << s.events.size() << " events to "
                << s.path.string();
  }
  s.events.clear();
  s.path.clear();
  return doc;
}

void finish() { stop(); }

void pause() { g_enabled.store(false, std::memory_order_relaxed); }

void resume() {
  Session& s = *session();
  const std::lock_guard<std::mutex> lock(s.mutex);
  if (s.open) g_enabled.store(true, std::memory_order_relaxed);
}

std::size_t event_count() {
  Session& s = *session();
  const std::lock_guard<std::mutex> lock(s.mutex);
  return s.events.size();
}

bool init_from_args(const util::ArgParser& args) {
  const auto path = args.get("trace-json");
  if (!path || path->empty()) return false;
  start(*path);
  log::info() << "trace: collecting spans, will write " << *path;
  return true;
}

Span::Span(const char* name, const char* category)
    : Span(name, category, nullptr, 0) {}

Span::Span(const char* name, const char* category, const char* arg_key,
           std::uint64_t arg_value)
    : name_(name),
      category_(category),
      arg_key_(arg_key),
      arg_value_(arg_value),
      start_ns_(0),
      active_(enabled()) {
  if (active_) start_ns_ = now_ns();
}

Span::~Span() {
  if (!active_ || !enabled()) return;
  const std::uint64_t end_ns = now_ns();
  Session& s = *session();
  const std::lock_guard<std::mutex> lock(s.mutex);
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  s.events.push_back(Event{name_, category_, arg_key_, arg_value_, start_ns_,
                           end_ns, this_thread_id()});
}

}  // namespace astromlab::util::trace
