#pragma once
// Deterministic, splittable pseudo-random number generation.
//
// All stochastic components of the reproduction (corpus synthesis, weight
// initialisation, data shuffling, sampling, bootstrap resampling) draw from
// this generator so that every experiment is exactly reproducible from a
// single 64-bit seed. The core generator is xoshiro256**, seeded via
// SplitMix64 as recommended by its authors; `split()` derives statistically
// independent child streams so parallel components never share state.

#include <array>
#include <cstdint>
#include <vector>

namespace astromlab::util {

/// Complete serialisable state of an `Rng` (resume-from-checkpoint).
struct RngState {
  std::array<std::uint64_t, 4> words{};
  double gaussian_spare = 0.0;
  bool has_gaussian_spare = false;
};

/// SplitMix64 step — used for seeding and cheap hashing of seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EEDULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (usable with <algorithm>).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float next_float() {
    return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
  }

  /// Uniform integer in [0, bound) with rejection to kill modulo bias.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (cached spare value).
  double next_gaussian();

  /// True with probability `p`.
  bool next_bernoulli(double p) { return next_double() < p; }

  /// Index sampled proportionally to non-negative `weights`.
  /// Returns weights.size() - 1 if all weights are zero.
  std::size_t next_categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i + 1));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k clamped to n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// Derives an independent child generator; deterministic given the
  /// parent's state and the label.
  Rng split(std::uint64_t label);

  /// Snapshots the full generator state; restoring it replays the exact
  /// same stream (used for bit-identical training resume).
  RngState save_state() const { return {state_, gaussian_spare_, has_gaussian_spare_}; }
  void restore_state(const RngState& state) {
    state_ = state.words;
    gaussian_spare_ = state.gaussian_spare;
    has_gaussian_spare_ = state.has_gaussian_spare;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double gaussian_spare_ = 0.0;
  bool has_gaussian_spare_ = false;
};

}  // namespace astromlab::util
