#include "util/io.hpp"

#include <cstring>

#include "util/fault_injection.hpp"

namespace astromlab::util {

namespace fs = std::filesystem;

BinaryWriter::BinaryWriter(const fs::path& path, WriteOptions options)
    : path_(path), options_(options) {
  if (path.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(path.parent_path(), ec);
  }
  write_path_ = options_.atomic ? fs::path(path.string() + ".tmp") : path;
  stream_.open(write_path_, std::ios::binary | std::ios::trunc);
  if (!stream_) throw IoError("cannot open for writing: " + write_path_.string());
}

BinaryWriter::~BinaryWriter() {
  if (failed_) {
    discard();
    return;
  }
  try {
    close();
  } catch (...) {
    // Destructor must not throw; errors surface via explicit close().
    discard();
  }
}

void BinaryWriter::discard() {
  if (stream_.is_open()) stream_.close();
  if (options_.atomic && !committed_) {
    std::error_code ec;
    fs::remove(write_path_, ec);
  }
}

void BinaryWriter::close() {
  if (committed_ || !stream_.is_open()) return;
  if (failed_) {
    discard();
    throw IoError("write failure on " + write_path_.string());
  }
  if (options_.checksum) {
    // Footer bytes bypass write_raw so they don't fold into the CRC, but
    // still honour fault injection (a crash can tear the footer too).
    const std::uint32_t crc = crc_.value();
    const auto action = FaultInjector::instance().on_write();
    if (action == FaultInjector::Action::kFail) {
      failed_ = true;
      discard();
      throw IoError("injected write failure on " + write_path_.string());
    }
    if (action != FaultInjector::Action::kDrop) {
      stream_.write(reinterpret_cast<const char*>(&crc), sizeof crc);
      stream_.write(reinterpret_cast<const char*>(&kCrcFooterMagic), sizeof kCrcFooterMagic);
    }
  }
  stream_.flush();
  const bool ok = static_cast<bool>(stream_);
  stream_.close();
  if (!ok) {
    discard();
    throw IoError("write failure on " + write_path_.string());
  }
  if (options_.atomic) {
    std::error_code ec;
    fs::rename(write_path_, path_, ec);
    if (ec) {
      discard();
      throw IoError("cannot commit " + write_path_.string() + " -> " + path_.string() +
                    ": " + ec.message());
    }
  }
  committed_ = true;
}

void BinaryWriter::write_raw(const void* data, std::size_t bytes) {
  const auto action = FaultInjector::instance().on_write();
  if (action == FaultInjector::Action::kFail) {
    failed_ = true;
    throw IoError("injected write failure on " + write_path_.string());
  }
  if (action != FaultInjector::Action::kDrop) {
    stream_.write(static_cast<const char*>(data), static_cast<std::streamsize>(bytes));
    if (!stream_) {
      failed_ = true;
      throw IoError("write failure on " + write_path_.string());
    }
  }
  // CRC covers the intended payload; dropped bytes therefore mismatch the
  // footer and the torn file is caught at read time.
  if (options_.checksum) crc_.update(data, bytes);
}

void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  if (!s.empty()) write_raw(s.data(), s.size());
}

void BinaryWriter::write_f32_array(const float* data, std::size_t count) {
  write_u64(count);
  if (count > 0) write_raw(data, count * sizeof(float));
}

void BinaryWriter::write_u16_array(const std::uint16_t* data, std::size_t count) {
  write_u64(count);
  if (count > 0) write_raw(data, count * sizeof(std::uint16_t));
}

void BinaryWriter::write_i32_vector(const std::vector<std::int32_t>& v) {
  write_u64(v.size());
  if (!v.empty()) write_raw(v.data(), v.size() * sizeof(std::int32_t));
}

void BinaryWriter::write_u64_array(const std::uint64_t* data, std::size_t count) {
  write_u64(count);
  if (count > 0) write_raw(data, count * sizeof(std::uint64_t));
}

BinaryReader::BinaryReader(const fs::path& path, ReadOptions options) : path_(path) {
  std::ifstream stream(path, std::ios::binary | std::ios::ate);
  if (!stream) throw IoError("cannot open for reading: " + path.string());
  const std::streamsize size = stream.tellg();
  stream.seekg(0);
  buffer_.resize(static_cast<std::size_t>(size));
  if (size > 0 && !stream.read(buffer_.data(), size)) {
    throw IoError("read failure on " + path.string());
  }
  switch (FaultInjector::instance().on_read()) {
    case FaultInjector::Action::kFail:
      throw IoError("injected read failure on " + path.string());
    case FaultInjector::Action::kDrop:
      // Torn read: the caller sees a short buffer, as if the read was
      // interrupted mid-file; the CRC footer check below then reports it.
      buffer_.resize(buffer_.size() / 2);
      break;
    case FaultInjector::Action::kProceed:
      break;
  }

  constexpr std::size_t kFooterBytes = 2 * sizeof(std::uint32_t);
  if (buffer_.size() >= kFooterBytes) {
    std::uint32_t tail_magic;
    std::memcpy(&tail_magic, buffer_.data() + buffer_.size() - sizeof tail_magic,
                sizeof tail_magic);
    if (tail_magic == kCrcFooterMagic) {
      std::uint32_t stored_crc;
      std::memcpy(&stored_crc, buffer_.data() + buffer_.size() - kFooterBytes,
                  sizeof stored_crc);
      const std::size_t payload = buffer_.size() - kFooterBytes;
      if (crc32(buffer_.data(), payload) != stored_crc) {
        throw CorruptFileError("checksum mismatch (torn or corrupt file): " + path.string());
      }
      buffer_.resize(payload);
      has_checksum_ = true;
    }
  }
  if (options.require_checksum && !has_checksum_) {
    throw CorruptFileError("missing checksum footer (torn or legacy file): " + path.string());
  }
}

void BinaryReader::read_raw(void* out, std::size_t bytes) {
  if (bytes > remaining()) {
    throw IoError("truncated file (wanted " + std::to_string(bytes) + " bytes, have " +
                  std::to_string(remaining()) + "): " + path_.string());
  }
  std::memcpy(out, buffer_.data() + offset_, bytes);
  offset_ += bytes;
}

std::uint8_t BinaryReader::read_u8() {
  std::uint8_t v;
  read_raw(&v, 1);
  return v;
}
std::uint32_t BinaryReader::read_u32() {
  std::uint32_t v;
  read_raw(&v, sizeof v);
  return v;
}
std::uint64_t BinaryReader::read_u64() {
  std::uint64_t v;
  read_raw(&v, sizeof v);
  return v;
}
std::int64_t BinaryReader::read_i64() {
  std::int64_t v;
  read_raw(&v, sizeof v);
  return v;
}
float BinaryReader::read_f32() {
  float v;
  read_raw(&v, sizeof v);
  return v;
}
double BinaryReader::read_f64() {
  double v;
  read_raw(&v, sizeof v);
  return v;
}

std::string BinaryReader::read_string() {
  const std::uint64_t size = read_u64();
  if (size > remaining()) throw IoError("corrupt string length in " + path_.string());
  std::string s(size, '\0');
  if (size > 0) read_raw(s.data(), size);
  return s;
}

void BinaryReader::read_f32_array(float* out, std::size_t count) {
  const std::uint64_t stored = read_u64();
  if (stored != count) {
    throw IoError("array length mismatch (stored " + std::to_string(stored) + ", expected " +
                  std::to_string(count) + ") in " + path_.string());
  }
  if (count > 0) read_raw(out, count * sizeof(float));
}

void BinaryReader::read_u16_array(std::uint16_t* out, std::size_t count) {
  const std::uint64_t stored = read_u64();
  if (stored != count) {
    throw IoError("array length mismatch (stored " + std::to_string(stored) + ", expected " +
                  std::to_string(count) + ") in " + path_.string());
  }
  if (count > 0) read_raw(out, count * sizeof(std::uint16_t));
}

std::vector<std::int32_t> BinaryReader::read_i32_vector() {
  const std::uint64_t size = read_u64();
  if (size * sizeof(std::int32_t) > remaining()) {
    throw IoError("corrupt vector length in " + path_.string());
  }
  std::vector<std::int32_t> v(size);
  if (size > 0) read_raw(v.data(), size * sizeof(std::int32_t));
  return v;
}

void BinaryReader::read_u64_array(std::uint64_t* out, std::size_t count) {
  const std::uint64_t stored = read_u64();
  if (stored != count) {
    throw IoError("array length mismatch (stored " + std::to_string(stored) + ", expected " +
                  std::to_string(count) + ") in " + path_.string());
  }
  if (count > 0) read_raw(out, count * sizeof(std::uint64_t));
}

std::string read_text_file(const fs::path& path) {
  std::ifstream stream(path, std::ios::binary | std::ios::ate);
  if (!stream) throw IoError("cannot open for reading: " + path.string());
  const std::streamsize size = stream.tellg();
  stream.seekg(0);
  std::string content(static_cast<std::size_t>(size), '\0');
  if (size > 0 && !stream.read(content.data(), size)) {
    throw IoError("read failure on " + path.string());
  }
  switch (FaultInjector::instance().on_read()) {
    case FaultInjector::Action::kFail:
      throw IoError("injected read failure on " + path.string());
    case FaultInjector::Action::kDrop:
      // Torn read: hand back a truncated prefix (short read), so callers
      // with a repair path (journal torn-tail truncation) exercise it.
      content.resize(content.size() / 2);
      break;
    case FaultInjector::Action::kProceed:
      break;
  }
  return content;
}

void write_text_file(const fs::path& path, const std::string& content) {
  if (path.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(path.parent_path(), ec);
  }
  const auto action = FaultInjector::instance().on_write();
  if (action == FaultInjector::Action::kFail) {
    throw IoError("injected write failure on " + path.string());
  }
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream stream(tmp, std::ios::binary | std::ios::trunc);
    if (!stream) throw IoError("cannot open for writing: " + tmp.string());
    // A torn write commits only a prefix — the downstream parse/CRC layer,
    // not this function, is responsible for detecting it.
    const std::size_t n =
        action == FaultInjector::Action::kDrop ? content.size() / 2 : content.size();
    stream.write(content.data(), static_cast<std::streamsize>(n));
    if (!stream) throw IoError("write failure on " + tmp.string());
  }
  fs::rename(tmp, path);
}

}  // namespace astromlab::util
