#pragma once
// Deterministic fault injection for durability tests.
//
// Recovery paths (atomic rename, CRC verification, resume-from-state) are
// only trustworthy if tests can actually make writes fail at a chosen
// point. `FaultInjector` is a process-wide singleton consulted by
// `BinaryWriter` before every physical write: tests arm it to make the
// Nth write throw (simulating a full disk / kill mid-write) or to
// silently drop every byte from the Nth write onward (simulating a torn
// file that still reaches disk). Production code never arms it, so the
// disarmed fast path is a single branch.

#include <cstddef>

namespace astromlab::util {

class FaultInjector {
 public:
  /// What the writer should do with the current physical write.
  enum class Action { kProceed, kFail, kDrop };

  static FaultInjector& instance();

  /// Makes the `nth` write (1-based, counted from arming) throw IoError.
  /// The injector disarms itself after firing so cleanup writes succeed.
  void arm_fail_write(std::size_t nth);

  /// Silently drops the `nth` write (1-based) and every later one until
  /// disarm(), producing a torn-but-committed file.
  void arm_truncate_write(std::size_t nth);

  void disarm();
  bool armed() const { return mode_ != Mode::kNone; }

  /// Writes observed since arming (telemetry for tests sizing `nth`).
  std::size_t writes_observed() const { return writes_; }

  /// Consulted by BinaryWriter; counts the write and picks its fate.
  Action on_write();

 private:
  enum class Mode { kNone, kFailWrite, kTruncateWrite };

  FaultInjector() = default;

  Mode mode_ = Mode::kNone;
  std::size_t trigger_ = 0;
  std::size_t writes_ = 0;
};

}  // namespace astromlab::util
