#pragma once
// Deterministic fault injection for durability and robustness tests.
//
// Recovery paths (atomic rename, CRC verification, resume-from-state,
// retry-with-backoff) are only trustworthy if tests can actually make
// failures happen at a chosen point. `FaultInjector` is a process-wide
// singleton consulted from two places:
//
//  * `BinaryWriter` (and `EvalJournal::record`) before every physical
//    write: tests arm it to make the Nth write throw (full disk / kill
//    mid-write) or to silently drop bytes from the Nth write onward
//    (a torn file that still reaches disk).
//  * the evaluation supervisor at the start of every question attempt:
//    tests arm transient faults (retried with backoff) or a permanent
//    fault (degraded to unanswered) for a *specific question index*, so
//    serial and parallel runs inject identically and stay bit-identical.
//
// All entry points are thread-safe — the supervisor consults the injector
// from worker threads. Production code never arms it, so the disarmed
// fast path is one mutex-free atomic load.

#include <atomic>
#include <cstddef>
#include <map>
#include <mutex>
#include <set>

namespace astromlab::util {

class FaultInjector {
 public:
  /// What the writer should do with the current physical write.
  enum class Action { kProceed, kFail, kDrop };

  /// What an evaluation attempt should do before running.
  enum class EvalAction { kProceed, kTransient, kPermanent };

  static FaultInjector& instance();

  /// Makes the `nth` write (1-based, counted from arming) throw IoError.
  /// The injector disarms itself after firing so cleanup writes succeed.
  void arm_fail_write(std::size_t nth);

  /// Silently drops the `nth` write (1-based) and every later one until
  /// disarm(), producing a torn-but-committed file.
  void arm_truncate_write(std::size_t nth);

  /// Makes the first `attempts` attempts of evaluation question
  /// `question` raise TransientError (a retryable flake).
  void arm_eval_transient(std::size_t question, std::size_t attempts = 1);

  /// Makes every attempt of evaluation question `question` raise a
  /// permanent (non-retryable) error.
  void arm_eval_permanent(std::size_t question);

  void disarm();
  bool armed() const;

  /// Writes observed since arming (telemetry for tests sizing `nth`).
  std::size_t writes_observed() const;

  /// Consulted by BinaryWriter / EvalJournal; counts the write and picks
  /// its fate.
  Action on_write();

  /// Consulted by the evaluation supervisor before each question attempt.
  EvalAction on_eval_attempt(std::size_t question);

 private:
  enum class Mode { kNone, kFailWrite, kTruncateWrite };

  FaultInjector() = default;

  /// Fast-path guard: false when nothing at all is armed, so the hot
  /// write/eval paths skip the mutex entirely in production.
  std::atomic<bool> any_armed_{false};

  mutable std::mutex mutex_;
  Mode mode_ = Mode::kNone;
  std::size_t trigger_ = 0;
  std::size_t writes_ = 0;
  std::map<std::size_t, std::size_t> eval_transient_;  ///< question -> remaining throws
  std::set<std::size_t> eval_permanent_;
};

}  // namespace astromlab::util
