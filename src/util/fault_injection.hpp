#pragma once
// Deterministic fault injection for durability and robustness tests.
//
// Recovery paths (atomic rename, CRC verification, resume-from-state,
// retry-with-backoff, the memory degradation ladder) are only trustworthy
// if tests can actually make failures happen at a chosen point.
// `FaultInjector` is a process-wide singleton consulted from four places:
//
//  * `BinaryWriter` (and `EvalJournal::record`) before every physical
//    write: tests arm it to make the Nth write throw (full disk / kill
//    mid-write) or to silently drop bytes from the Nth write onward
//    (a torn file that still reaches disk);
//  * `BinaryReader` / `read_text_file` before returning a buffer: the Nth
//    read can fail (I/O error) or come back torn (short read), exercising
//    the journal's torn-tail repair on the *read* path;
//  * `ResourceBudget::acquire` at the budget seam: the Nth tracked
//    acquisition throws ResourceExhaustedError, driving the supervisor's
//    degradation ladder without needing a real OOM;
//  * the evaluation supervisor at the start of every question attempt:
//    tests arm transient faults (retried with backoff), a permanent fault
//    (degraded to unanswered), or — under chaos — allocation pressure, for
//    a *specific question index*, so serial and parallel runs inject
//    identically and stay bit-identical.
//
// Beyond the single-shot arms, `arm_chaos` turns the injector into a
// seeded chaos scheduler: every consultation draws from a splitmix64 hash
// of (seed, site, event index) and fires with the configured rate. Draws
// at the eval boundary are keyed by question index and attempt number, so
// the schedule of injected eval faults is identical between serial and
// parallel runs of the same seed. `--chaos-seed` / `--chaos-rate`
// (env ASTROMLAB_CHAOS_SEED / ASTROMLAB_CHAOS_RATE) arm it from any bench
// binary via `init_chaos_from_args`.
//
// All entry points are thread-safe — the supervisor consults the injector
// from worker threads. Production code never arms it, so the disarmed
// fast path is one mutex-free atomic load.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>

namespace astromlab::util {

class ArgParser;

/// Knobs for the seeded chaos schedule. `rate` is the per-event firing
/// probability in [0, 1]; the per-channel flags narrow which seams fire.
struct ChaosConfig {
  std::uint64_t seed = 0;
  double rate = 0.0;
  bool writes = true;  ///< journal/binary-writer appends (fail or torn)
  bool reads = true;   ///< text/binary reads (fail or torn)
  bool allocs = true;  ///< tracked-budget acquisitions (ResourceExhaustedError)
  bool evals = true;   ///< question attempts (transient or alloc pressure)
};

class FaultInjector {
 public:
  /// What the writer / reader should do with the current physical I/O.
  enum class Action { kProceed, kFail, kDrop };

  /// What an evaluation attempt should do before running.
  enum class EvalAction { kProceed, kTransient, kPermanent, kAllocPressure };

  static FaultInjector& instance();

  /// Makes the `nth` write (1-based, counted from arming) throw IoError.
  /// The injector disarms itself after firing so cleanup writes succeed.
  void arm_fail_write(std::size_t nth);

  /// Silently drops the `nth` write (1-based) and every later one until
  /// disarm(), producing a torn-but-committed file.
  void arm_truncate_write(std::size_t nth);

  /// Makes the `nth` read (1-based, counted from arming) throw IoError,
  /// then disarms itself.
  void arm_fail_read(std::size_t nth);

  /// Tears the `nth` read (1-based): the caller sees a short buffer, as
  /// if the read was interrupted mid-file. Disarms itself after firing.
  void arm_torn_read(std::size_t nth);

  /// Makes the `nth` tracked-budget acquisition (1-based) throw
  /// ResourceExhaustedError, then disarms itself.
  void arm_fail_alloc(std::size_t nth);

  /// Makes the first `attempts` attempts of evaluation question
  /// `question` raise TransientError (a retryable flake).
  void arm_eval_transient(std::size_t question, std::size_t attempts = 1);

  /// Makes every attempt of evaluation question `question` raise a
  /// permanent (non-retryable) error.
  void arm_eval_permanent(std::size_t question);

  /// Arms the seeded chaos schedule (rate <= 0 leaves it disarmed).
  void arm_chaos(const ChaosConfig& config);
  bool chaos_active() const;

  void disarm();
  bool armed() const;

  /// Writes / reads observed since arming (telemetry for tests sizing `nth`).
  std::size_t writes_observed() const;
  std::size_t reads_observed() const;

  /// Consulted by BinaryWriter / EvalJournal; counts the write and picks
  /// its fate.
  Action on_write();

  /// Consulted by BinaryReader / read_text_file after a physical read.
  Action on_read();

  /// Consulted by ResourceBudget::acquire; true = fail this acquisition.
  bool on_alloc();

  /// Consulted by the evaluation supervisor before each question attempt.
  EvalAction on_eval_attempt(std::size_t question);

  /// Parses --chaos-seed=<n> / --chaos-rate=<p> (env ASTROMLAB_CHAOS_SEED
  /// / ASTROMLAB_CHAOS_RATE) and arms the chaos schedule when rate > 0.
  static void init_chaos_from_args(const ArgParser& args);

 private:
  enum class IoMode { kNone, kFail, kTruncate };

  FaultInjector() = default;

  /// Deterministic per-event draw: true when the hash of (seed, site,
  /// event) lands under `rate`. Requires mutex_ held only for counters;
  /// the hash itself is pure.
  bool chaos_fires(std::uint64_t site, std::uint64_t event) const;

  /// Fast-path guard: false when nothing at all is armed, so the hot
  /// write/read/alloc/eval paths skip the mutex entirely in production.
  std::atomic<bool> any_armed_{false};

  mutable std::mutex mutex_;
  IoMode write_mode_ = IoMode::kNone;
  std::size_t write_trigger_ = 0;
  std::size_t writes_ = 0;
  IoMode read_mode_ = IoMode::kNone;
  std::size_t read_trigger_ = 0;
  std::size_t reads_ = 0;
  std::size_t alloc_trigger_ = 0;  ///< 0 = disarmed
  std::size_t allocs_ = 0;
  std::map<std::size_t, std::size_t> eval_transient_;  ///< question -> remaining throws
  std::set<std::size_t> eval_permanent_;
  ChaosConfig chaos_;
  bool chaos_armed_ = false;
  std::size_t chaos_writes_ = 0;
  std::size_t chaos_reads_ = 0;
  std::size_t chaos_allocs_ = 0;
  std::map<std::size_t, std::size_t> chaos_eval_attempts_;  ///< question -> attempts seen
};

}  // namespace astromlab::util
