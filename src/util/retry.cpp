#include "util/retry.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/io.hpp"

namespace astromlab::util {

bool is_transient(const std::exception& error) {
  if (dynamic_cast<const TransientError*>(&error) != nullptr) return true;
  return dynamic_cast<const CorruptFileError*>(&error) != nullptr;
}

namespace {

/// splitmix64: a tiny stateless mixer; good enough for jitter and cheap
/// enough to call once per retry.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

double RetryPolicy::backoff_ms(std::size_t retry, std::uint64_t salt) const {
  if (retry == 0) return 0.0;
  double backoff = backoff_initial_ms;
  for (std::size_t i = 1; i < retry && backoff < backoff_max_ms; ++i) {
    backoff *= backoff_multiplier;
  }
  backoff = std::min(backoff, backoff_max_ms);
  if (jitter_fraction > 0.0) {
    const std::uint64_t h = mix64(seed ^ mix64(salt) ^ (0x9e3779b97f4a7c15ull * retry));
    // u in [-0.5, 0.5)
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53 - 0.5;
    backoff *= 1.0 + jitter_fraction * u;
  }
  return std::max(backoff, 0.0);
}

namespace detail {

void sleep_ms(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

void sleep_ms(double ms, const CancelToken* cancel) {
  if (cancel == nullptr) {
    sleep_ms(ms);
    return;
  }
  // Chunked sleep: the token has no wakeup channel to wait on, so poll it
  // every few milliseconds. 2ms bounds the cancellation latency well below
  // any realistic deadline while keeping the idle poll cost negligible
  // against backoffs measured in tens to hundreds of milliseconds.
  constexpr double kChunkMs = 2.0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double, std::milli>(std::max(ms, 0.0));
  while (!cancel->cancelled()) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return;
    const double remaining_ms =
        std::chrono::duration<double, std::milli>(deadline - now).count();
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(std::min(remaining_ms, kChunkMs)));
  }
}

}  // namespace detail

}  // namespace astromlab::util
