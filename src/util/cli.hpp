#pragma once
// Minimal command-line / environment option parsing for examples and
// bench binaries.
//
// Accepted forms: `--key=value`, `--key value`, and bare `--flag` (true).
// `ArgParser` also falls back to environment variables named
// ASTROMLAB_<KEY> (upper-cased, '-' -> '_'), so bench binaries running
// under `for b in build/bench/*; do $b; done` can be reconfigured without
// editing the loop.

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace astromlab::util {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  /// Construct from explicit key/value pairs (tests).
  explicit ArgParser(std::map<std::string, std::string> values)
      : values_(std::move(values)) {}

  /// Raw lookup: CLI first, then ASTROMLAB_<KEY> env var. Marks the key
  /// consumed for `unconsumed_keys()` (lookup is the definition of "the
  /// program knows this flag", whether or not a value was present).
  std::optional<std::string> get(const std::string& key) const;

  std::string get_string(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Positional (non ``--``) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Command-line `--key`s that no get*() call ever looked up, sorted.
  /// Environment fallbacks are never reported — only explicit CLI flags.
  std::vector<std::string> unconsumed_keys() const;

  /// Fail-loud typo guard: prints every unconsumed `--key` to stderr and
  /// exits 64 (EX_USAGE) unless each matches an entry in `known_keys`
  /// (exact match, or prefix match when the entry ends in '*' — e.g.
  /// "benchmark_*" passes google-benchmark flags through). Call this after
  /// the last get*() — typically right before the real work starts.
  void fail_on_unconsumed(std::initializer_list<std::string_view> known_keys = {}) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  // Parsing happens on one thread at startup; `mutable` keeps get() const
  // for existing callers rather than making this class thread-safe.
  mutable std::set<std::string> consumed_;
};

}  // namespace astromlab::util
