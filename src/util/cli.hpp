#pragma once
// Minimal command-line / environment option parsing for examples and
// bench binaries.
//
// Accepted forms: `--key=value`, `--key value`, and bare `--flag` (true).
// `ArgParser` also falls back to environment variables named
// ASTROMLAB_<KEY> (upper-cased, '-' -> '_'), so bench binaries running
// under `for b in build/bench/*; do $b; done` can be reconfigured without
// editing the loop.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace astromlab::util {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  /// Construct from explicit key/value pairs (tests).
  explicit ArgParser(std::map<std::string, std::string> values)
      : values_(std::move(values)) {}

  /// Raw lookup: CLI first, then ASTROMLAB_<KEY> env var.
  std::optional<std::string> get(const std::string& key) const;

  std::string get_string(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Positional (non ``--``) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace astromlab::util
