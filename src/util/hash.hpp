#pragma once
// FNV-1a hashing for cache keys and config fingerprints.
//
// Experiment results are cached on disk keyed by a 64-bit fingerprint of
// every hyperparameter that could change the result; `HashBuilder` folds
// heterogeneous fields into one digest in declaration order.

#include <cstdint>
#include <string>
#include <string_view>

namespace astromlab::util {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

constexpr std::uint64_t fnv1a(std::string_view data, std::uint64_t seed = kFnvOffset) {
  std::uint64_t hash = seed;
  for (char c : data) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

/// Accumulates typed fields into a stable 64-bit fingerprint.
class HashBuilder {
 public:
  HashBuilder& add(std::string_view s) {
    // Length-prefix to keep ("ab","c") distinct from ("a","bc").
    add_u64(s.size());
    hash_ = fnv1a(s, hash_);
    return *this;
  }
  HashBuilder& add_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= static_cast<std::uint8_t>(v >> (8 * i));
      hash_ *= kFnvPrime;
    }
    return *this;
  }
  HashBuilder& add_i64(std::int64_t v) { return add_u64(static_cast<std::uint64_t>(v)); }
  HashBuilder& add_f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    __builtin_memcpy(&bits, &v, sizeof bits);
    return add_u64(bits);
  }
  HashBuilder& add_bool(bool v) { return add_u64(v ? 1 : 0); }

  std::uint64_t digest() const { return hash_; }

  /// 16-char lowercase hex rendering, suitable for file names.
  std::string hex() const;

 private:
  std::uint64_t hash_ = kFnvOffset;
};

}  // namespace astromlab::util
