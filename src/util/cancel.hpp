#pragma once
// Cooperative cancellation with deadlines.
//
// A `CancelToken` is the fault-domain boundary for one unit of in-flight
// work (one benchmark question, one generation). The owner arms it with a
// wall-clock deadline and/or cancels it externally (a straggler monitor,
// a shutdown path); the worker polls `cancelled()` inside its hot loop —
// per generated token, per KV-cache step — and unwinds gracefully. This
// turns the old post-hoc wall-clock watchdog into true in-flight
// cancellation: a runaway question stops *during* generation instead of
// being discarded after it finally returns.
//
// Thread-safety: `cancel()` and `cancelled()` may race freely (atomics);
// `set_deadline_after()` must happen-before the worker starts polling
// (the supervisor arms the token before dispatching the question).

#include <atomic>
#include <chrono>
#include <limits>

namespace astromlab::util {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Arms (or tightens) the deadline to `seconds` from now; values <= 0
  /// are ignored. When both an old and a new deadline exist the earlier
  /// one wins, so stacked budgets (per-question flag + supervisor
  /// default) compose to the stricter bound.
  void set_deadline_after(double seconds) {
    if (seconds <= 0.0) return;
    const Clock::time_point candidate =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(seconds));
    if (!has_deadline_.load(std::memory_order_acquire) || candidate < deadline_) {
      deadline_ = candidate;
      has_deadline_.store(true, std::memory_order_release);
    }
  }

  /// External cancellation (straggler monitor, shutdown). Sticky.
  void cancel() { cancelled_.store(true, std::memory_order_release); }

  /// True once cancelled externally or past the deadline. The deadline
  /// check latches into the sticky flag so later polls are one atomic load.
  bool cancelled() const {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    if (has_deadline_.load(std::memory_order_acquire) && Clock::now() >= deadline_) {
      cancelled_.store(true, std::memory_order_release);
      return true;
    }
    return false;
  }

  bool has_deadline() const { return has_deadline_.load(std::memory_order_acquire); }

  /// Seconds until the deadline (negative once past); +inf when unarmed.
  double remaining_seconds() const {
    if (!has_deadline_.load(std::memory_order_acquire)) {
      return std::numeric_limits<double>::infinity();
    }
    return std::chrono::duration<double>(deadline_ - Clock::now()).count();
  }

 private:
  mutable std::atomic<bool> cancelled_{false};
  std::atomic<bool> has_deadline_{false};
  Clock::time_point deadline_{};
};

}  // namespace astromlab::util
