#include "util/string_utils.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "util/hash.hpp"

namespace astromlab::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::vector<std::string> split_whitespace(std::string_view text) {
  std::vector<std::string> parts;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) parts.emplace_back(text.substr(start, i - start));
  }
  return parts;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string to_upper(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

bool contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

std::string replace_all(std::string_view text, std::string_view from, std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  out.reserve(text.size());
  std::size_t pos = 0;
  for (;;) {
    const std::size_t hit = text.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(text.substr(pos));
      return out;
    }
    out.append(text.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

std::string format_fixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
  return buffer;
}

std::string pad_right(std::string_view text, std::size_t width) {
  std::string out(text.substr(0, width));
  out.append(width - out.size(), ' ');
  return out;
}

std::string pad_left(std::string_view text, std::size_t width) {
  if (text.size() >= width) return std::string(text.substr(0, width));
  std::string out(width - text.size(), ' ');
  out.append(text);
  return out;
}

std::string to_hex(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx", static_cast<unsigned long long>(value));
  return buffer;
}

std::string HashBuilder::hex() const { return to_hex(hash_); }

}  // namespace astromlab::util
