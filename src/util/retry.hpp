#pragma once
// Bounded retries with exponential backoff and typed error classification.
//
// The evaluation supervisor (and any future serving path) distinguishes
// *transient* faults — a torn cache read raising `CorruptFileError`, an
// injected `TransientError`, anything that may succeed on a clean retry —
// from *permanent* ones, which no amount of retrying fixes. Transient
// faults are retried up to a bound with exponential backoff; permanent
// faults degrade the unit of work instead of aborting the study.
//
// Backoff jitter is fully deterministic: it is derived by hashing
// (seed, salt, attempt), not from a shared RNG or the wall clock, so a
// parallel run retries with the same delays as a serial one and tests can
// assert exact schedules.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/cancel.hpp"

namespace astromlab::util {

/// A fault that may succeed if simply retried (I/O hiccup, injected
/// flake). Throw this — or `CorruptFileError`, which is classified the
/// same way — to request a retry from `RetryPolicy`-driven executors.
class TransientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// True when `error` should be retried: `TransientError` and
/// `CorruptFileError` (a re-read of a repaired artifact can succeed);
/// everything else is permanent.
bool is_transient(const std::exception& error);

struct RetryPolicy {
  /// Retries allowed after the first attempt (total attempts = 1 + max_retries).
  std::size_t max_retries = 2;
  double backoff_initial_ms = 5.0;
  double backoff_multiplier = 2.0;
  double backoff_max_ms = 1000.0;
  /// Jitter amplitude as a fraction of the backoff (0 = none). The delay
  /// for retry r is backoff(r) * (1 + jitter * u), u in [-0.5, 0.5).
  double jitter_fraction = 0.25;
  /// Seed folded into the deterministic jitter hash.
  std::uint64_t seed = 0x517e9b3fd2c4a601ull;

  /// Delay before retry `retry` (1-based), deterministic in
  /// (seed, salt, retry). `salt` identifies the unit of work (question
  /// index) so distinct questions de-synchronise.
  double backoff_ms(std::size_t retry, std::uint64_t salt = 0) const;
};

namespace detail {
void sleep_ms(double ms);
/// Cancellation-aware sleep: sleeps in small chunks, returning as soon as
/// `cancel` fires (bounded-latency wakeup, no condition variable needed —
/// CancelToken is a plain atomic with no notification channel). With a
/// null token this is exactly `sleep_ms(ms)`.
void sleep_ms(double ms, const CancelToken* cancel);
}  // namespace detail

/// Runs `fn` under `policy`: transient failures are retried (sleeping the
/// policy's backoff between attempts), permanent failures rethrow
/// immediately, and exhausting the retry budget rethrows the last
/// transient error. On success `*retries_out` (if non-null) receives the
/// number of retries that were needed.
template <typename Fn>
auto run_with_retry(const RetryPolicy& policy, std::uint64_t salt, Fn&& fn,
                    std::size_t* retries_out = nullptr) -> decltype(fn()) {
  std::size_t retries = 0;
  for (;;) {
    try {
      auto result = fn();
      if (retries_out != nullptr) *retries_out = retries;
      return result;
    } catch (const std::exception& error) {
      if (!is_transient(error) || retries >= policy.max_retries) throw;
      ++retries;
      detail::sleep_ms(policy.backoff_ms(retries, salt));
    }
  }
}

/// Cancellation-aware variant for deadline-bound callers (the serving
/// path): a request whose deadline fires while the retry loop is asleep in
/// backoff must not sleep out the full delay — the backoff wakes promptly
/// and the last transient error rethrows, letting the caller map the
/// cancelled work to its own failure mode (504, degrade, ...). A cancel
/// observed *before* the backoff also stops retrying: there is no point
/// re-attempting work for a request nobody is waiting on. `cancel` may be
/// null, which degrades to the plain overload.
template <typename Fn>
auto run_with_retry(const RetryPolicy& policy, std::uint64_t salt, const CancelToken* cancel,
                    Fn&& fn, std::size_t* retries_out = nullptr) -> decltype(fn()) {
  std::size_t retries = 0;
  for (;;) {
    try {
      auto result = fn();
      if (retries_out != nullptr) *retries_out = retries;
      return result;
    } catch (const std::exception& error) {
      if (!is_transient(error) || retries >= policy.max_retries) throw;
      if (cancel != nullptr && cancel->cancelled()) throw;
      ++retries;
      detail::sleep_ms(policy.backoff_ms(retries, salt), cancel);
      if (cancel != nullptr && cancel->cancelled()) throw;
    }
  }
}

}  // namespace astromlab::util
