#include "util/logging.hpp"

#include <chrono>
#include <cstdio>
#include <mutex>

namespace astromlab::log {
namespace {

std::atomic<int> g_level{static_cast<int>(Level::kInfo)};
std::mutex g_emit_mutex;

using Clock = std::chrono::steady_clock;
const Clock::time_point g_start = Clock::now();

const char* tag(Level l) {
  switch (l) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_level(Level level) { g_level.store(static_cast<int>(level), std::memory_order_relaxed); }

Level level() { return static_cast<Level>(g_level.load(std::memory_order_relaxed)); }

bool enabled(Level l) { return static_cast<int>(l) >= g_level.load(std::memory_order_relaxed); }

void emit(Level l, std::string_view message) {
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - g_start).count();
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%9.3fs] %s %.*s\n", elapsed, tag(l),
               static_cast<int>(message.size()), message.data());
}

Level parse_level(std::string_view name) {
  auto eq = [&](std::string_view target) {
    if (name.size() != target.size()) return false;
    for (size_t i = 0; i < name.size(); ++i) {
      const char a = name[i] >= 'A' && name[i] <= 'Z' ? char(name[i] - 'A' + 'a') : name[i];
      if (a != target[i]) return false;
    }
    return true;
  };
  if (eq("debug")) return Level::kDebug;
  if (eq("info")) return Level::kInfo;
  if (eq("warn")) return Level::kWarn;
  if (eq("error")) return Level::kError;
  if (eq("off")) return Level::kOff;
  return Level::kInfo;
}

}  // namespace astromlab::log
