#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/string_utils.hpp"

namespace astromlab::util {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--key value` when the next token is not itself an option, else a flag.
    if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

std::optional<std::string> ArgParser::get(const std::string& key) const {
  consumed_.insert(key);
  if (const auto it = values_.find(key); it != values_.end()) return it->second;
  std::string env_name = "ASTROMLAB_" + to_upper(replace_all(key, "-", "_"));
  if (const char* env = std::getenv(env_name.c_str())) return std::string(env);
  return std::nullopt;
}

std::string ArgParser::get_string(const std::string& key, const std::string& fallback) const {
  return get(key).value_or(fallback);
}

std::int64_t ArgParser::get_int(const std::string& key, std::int64_t fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value->c_str(), &end, 10);
  return (end && *end == '\0') ? parsed : fallback;
}

double ArgParser::get_double(const std::string& key, double fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  return (end && *end == '\0') ? parsed : fallback;
}

bool ArgParser::get_bool(const std::string& key, bool fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  const std::string v = to_lower(*value);
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  return fallback;
}

std::vector<std::string> ArgParser::unconsumed_keys() const {
  std::vector<std::string> unknown;
  for (const auto& [key, value] : values_) {
    if (consumed_.count(key) == 0) unknown.push_back(key);
  }
  return unknown;  // std::map iteration order is already sorted
}

void ArgParser::fail_on_unconsumed(std::initializer_list<std::string_view> known_keys) const {
  std::vector<std::string> unknown;
  for (const std::string& key : unconsumed_keys()) {
    bool known = false;
    for (const std::string_view pattern : known_keys) {
      if (!pattern.empty() && pattern.back() == '*') {
        known = starts_with(key, std::string(pattern.substr(0, pattern.size() - 1)));
      } else {
        known = key == pattern;
      }
      if (known) break;
    }
    if (!known) unknown.push_back(key);
  }
  if (unknown.empty()) return;
  for (const std::string& key : unknown) {
    std::fprintf(stderr, "error: unknown option --%s (not consumed by this binary)\n",
                 key.c_str());
  }
  std::fprintf(stderr, "hint: check for typos; a misspelled flag silently falls back to "
                       "its default otherwise\n");
  std::exit(64);  // EX_USAGE
}

}  // namespace astromlab::util
