#pragma once
// Process-wide tracked-byte accounting with an optional hard budget.
//
// The eval fleet must run at wildly different model scales on fixed
// hardware (AstroMLab 3, arXiv:2411.09012), so the memory envelope has to
// be explicit and enforceable instead of discovered via the OOM killer.
// `ResourceBudget` tracks the two dominant allocation classes — dense
// `tensor::Tensor` storage and per-inference KV caches — as simple atomic
// byte counters. When a limit is configured (`--memory-budget-mb` /
// `ASTROMLAB_MEMORY_BUDGET_MB`), every tracked acquisition that would push
// the process over the line throws `ResourceExhaustedError` *before*
// touching the heap, so `used_bytes()` (and therefore `peak_bytes()`) can
// never exceed the budget. The evaluation supervisor catches the error at
// the question fault-domain boundary and walks its degradation ladder
// (evict prefix cache → shrink parallelism → shed the question) instead of
// aborting the study.
//
// With no limit set, acquire/release are pure bookkeeping (two relaxed
// atomic RMWs) and can never throw for budget reasons, so unconstrained
// runs stay bit-identical. Counters and gauges mirror into
// `util::metrics` for the trace/bench reporting layer.

#include <atomic>
#include <cstddef>
#include <new>
#include <string>
#include <utility>

namespace astromlab::util {

class ArgParser;

/// Thrown when a tracked acquisition would exceed the configured memory
/// budget, or when the fault injector fires at the budget seam. Derives
/// from std::bad_alloc so one handler at the question fault-domain
/// boundary covers both simulated pressure and a real allocator failure.
class ResourceExhaustedError : public std::bad_alloc {
 public:
  explicit ResourceExhaustedError(std::string what) : what_(std::move(what)) {}
  const char* what() const noexcept override { return what_.c_str(); }

 private:
  std::string what_;
};

/// Accounting buckets, reported as separate gauges so pressure can be
/// attributed (model tensors vs KV caches vs per-question working sets).
enum class MemoryDomain : std::size_t { kTensor = 0, kKvCache = 1, kScratch = 2 };
inline constexpr std::size_t kMemoryDomainCount = 3;

const char* memory_domain_name(MemoryDomain domain);

class ResourceBudget {
 public:
  /// Process-wide shared budget.
  static ResourceBudget& instance();

  /// Hard ceiling on tracked bytes; 0 disables enforcement.
  void set_limit_bytes(std::size_t limit);
  std::size_t limit_bytes() const { return limit_.load(std::memory_order_relaxed); }

  std::size_t used_bytes() const { return used_.load(std::memory_order_relaxed); }
  std::size_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }
  std::size_t domain_bytes(MemoryDomain domain) const;
  /// Acquisitions rejected (budget exceeded or injected failure).
  std::size_t denials() const { return denials_.load(std::memory_order_relaxed); }

  /// Charges `bytes` against the budget. Throws ResourceExhaustedError —
  /// charging nothing — when the limit would be exceeded or the fault
  /// injector fires, so used/peak can never pass the limit.
  void acquire(std::size_t bytes, MemoryDomain domain);
  void release(std::size_t bytes, MemoryDomain domain) noexcept;

  /// Test isolation: clears the limit and zeroes used/peak/denials.
  /// Only safe when no tracked allocations are live (fresh fixtures).
  void reset_for_testing();

  /// Applies `--memory-budget-mb=<n>` (env ASTROMLAB_MEMORY_BUDGET_MB via
  /// the parser's fallback); 0 or absent leaves the budget unlimited.
  static void init_from_args(const ArgParser& args);

 private:
  ResourceBudget() = default;

  std::atomic<std::size_t> limit_{0};
  std::atomic<std::size_t> used_{0};
  std::atomic<std::size_t> peak_{0};
  std::atomic<std::size_t> denials_{0};
  std::atomic<std::size_t> domains_[kMemoryDomainCount]{};
};

/// Minimal STL allocator charging a memory domain of the process budget.
/// Stateless, so container moves hand storage over without re-accounting
/// and all instances compare equal.
template <typename T, MemoryDomain D>
struct TrackedAllocator {
  using value_type = T;
  /// Explicit rebind: allocator_traits cannot synthesise one through the
  /// non-type MemoryDomain template parameter.
  template <typename U>
  struct rebind {
    using other = TrackedAllocator<U, D>;
  };

  TrackedAllocator() noexcept = default;
  template <typename U>
  TrackedAllocator(const TrackedAllocator<U, D>&) noexcept {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    ResourceBudget::instance().acquire(bytes, D);
    try {
      return static_cast<T*>(::operator new(bytes));
    } catch (...) {
      ResourceBudget::instance().release(bytes, D);
      throw;
    }
  }

  void deallocate(T* p, std::size_t n) noexcept {
    // Release the accounting first: the size arithmetic stays clearly
    // sequenced before the delete once callers inline this.
    ResourceBudget::instance().release(n * sizeof(T), D);
    ::operator delete(p);
  }

  friend bool operator==(const TrackedAllocator&, const TrackedAllocator&) { return true; }
  friend bool operator!=(const TrackedAllocator&, const TrackedAllocator&) { return false; }
};

/// RAII charge against the budget for block allocations that are not
/// routed through TrackedAllocator (KV caches, per-question working
/// sets). Movable, not copyable; releasing twice is a no-op.
class MemoryReservation {
 public:
  MemoryReservation() = default;
  MemoryReservation(std::size_t bytes, MemoryDomain domain) : bytes_(bytes), domain_(domain) {
    ResourceBudget::instance().acquire(bytes_, domain_);
  }
  MemoryReservation(MemoryReservation&& other) noexcept
      : bytes_(std::exchange(other.bytes_, 0)), domain_(other.domain_) {}
  MemoryReservation& operator=(MemoryReservation&& other) noexcept {
    if (this != &other) {
      release();
      bytes_ = std::exchange(other.bytes_, 0);
      domain_ = other.domain_;
    }
    return *this;
  }
  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;
  ~MemoryReservation() { release(); }

  void release() noexcept {
    if (bytes_ > 0) {
      ResourceBudget::instance().release(bytes_, domain_);
      bytes_ = 0;
    }
  }

  std::size_t bytes() const { return bytes_; }

 private:
  std::size_t bytes_ = 0;
  MemoryDomain domain_ = MemoryDomain::kScratch;
};

}  // namespace astromlab::util
