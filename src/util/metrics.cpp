#include "util/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace astromlab::util::metrics {

std::size_t nearest_rank_index(double q, std::size_t n) {
  if (n == 0) return 0;
  // The epsilon keeps ranks that are exact in real arithmetic from being
  // rounded up by binary representation error: 0.025 * 1000 evaluates to
  // 25.000000000000004, and ceil() alone would select the 26th element.
  const double rank = std::ceil(q * static_cast<double>(n) - 1e-9);
  if (rank <= 1.0) return 0;
  return std::min(static_cast<std::size_t>(rank) - 1, n - 1);
}

double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  return sorted[nearest_rank_index(q, sorted.size())];
}

void Histogram::record(double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  samples_.push_back(value);
}

namespace {

HistogramSnapshot summarize(std::vector<double> samples) {
  HistogramSnapshot snap;
  snap.count = samples.size();
  if (samples.empty()) return snap;
  std::sort(samples.begin(), samples.end());
  snap.min = samples.front();
  snap.max = samples.back();
  for (const double v : samples) snap.sum += v;
  snap.p50 = percentile_sorted(samples, 0.50);
  snap.p95 = percentile_sorted(samples, 0.95);
  snap.p99 = percentile_sorted(samples, 0.99);
  return snap;
}

}  // namespace

HistogramSnapshot Histogram::snapshot() const {
  std::vector<double> samples;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    samples = samples_;
  }
  return summarize(std::move(samples));
}

HistogramSnapshot Histogram::snapshot_and_reset() {
  std::vector<double> samples;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    samples.swap(samples_);  // one lock: drain and reset are atomic together
  }
  return summarize(std::move(samples));
}

void Histogram::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  samples_.clear();
}

Registry& Registry::instance() {
  static Registry* shared = new Registry();  // leaked: outlives all users
  return *shared;
}

Registry& registry() { return Registry::instance(); }

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) out.emplace_back(name, counter->value());
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>> Registry::histograms() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) out.emplace_back(name, hist->snapshot());
  return out;
}

std::vector<std::pair<std::string, std::int64_t>> Registry::gauges() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) out.emplace_back(name, gauge->value());
  return out;
}

void Registry::reset_all() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, hist] : histograms_) hist->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
}

}  // namespace astromlab::util::metrics
