// `serve` — the always-up HTTP inference service.
//
// Builds a synthetic world + model at the requested scale and serves it
// until SIGINT/SIGTERM, then drains gracefully (finish or cancel in-flight
// requests, flush journal/trace/metrics) and exits 0.
//
// Endpoints:
//   POST /v1/mcq       {"question_index": n} | {"question": ..., "options": [4]}
//                      optional "deadline_ms"; answers with the token-method
//                      letter — bit-identical to the offline supervisor.
//   POST /v1/generate  {"prompt": ..., "max_new_tokens", "temperature",
//                      "session", "deadline_ms"}; a session reuses its KV
//                      cache across requests that extend the conversation.
//   GET  /healthz      200 ok / 503 draining-or-overloaded (readiness).
//   GET  /metrics      plain-text dump of the util::metrics registry.
//   POST /admin/model  {"scale": "S7"|"S8"|"S70"} hot swap; in-flight
//                      requests finish on the old weights.
//
// Options (CLI --key=value or ASTROMLAB_<KEY> env):
//   --port=<n>             listen port (default 0 = ephemeral; the chosen
//                          port is printed as "LISTENING port=<n>")
//   --scale=<S7|S8|S70>    model family to serve first (default S7)
//   --workers=<n>          handler threads (default 4)
//   --queue-depth=<n>      admitted connections beyond the workers; more
//                          connections are shed 429 at accept (default 16)
//   --rate-limit=<rps>     token-bucket rate limit (default 0 = unlimited)
//   --rate-burst=<n>       bucket burst (default 2*rps)
//   --deadline-ms=<ms>     default per-request deadline (default 0 = none;
//                          a request's own deadline_ms can only tighten it)
//   --drain-grace=<s>      seconds to let in-flight work finish on drain
//                          before cancelling it (default 5)
//   --max-sessions=<n>     session KV cache table size (default 64)
//   --decode-batch=<n>     >=2 coalesces concurrent inference requests into
//                          shared decode steps through a continuous-batching
//                          engine with n slots (default 1 = serial; responses
//                          are bit-identical either way)
//   --weight-dtype=<d>     fp32 (default) | bf16 | int8 — inference weight
//                          storage; bf16/int8 run dequant-fused kernels
//   --paged-kv=<0|1>       1 stores session KV rows in a shared paged arena
//                          with copy-on-write prefix sharing (default 0)
//   --kv-block-tokens=<n>  paged-KV block granularity in rows (default 16)
//   --stats-every=<s>      periodic per-interval latency log (default 30)
//   --serve-seconds=<s>    self-drain after this long (default 0 = until
//                          signalled; a safety net for CI orchestration)
//   --journal=<path>       record served benchmark MCQ answers to an eval
//                          journal (same format as offline runs)
//   --topics, --entities, --facts-per-entity, --questions-per-topic,
//   --vocab, --ctx, --seed world sizing (defaults favour fast startup;
//                          production-sized worlds just take longer to build)
//   --log=<level>, --trace-json=<path>, --memory-budget-mb=<n>,
//   --chaos-seed=<n>, --chaos-rate=<p>   the usual observability/chaos knobs

#include <cstdio>
#include <stdexcept>
#include <thread>

#include "serve/server.hpp"
#include "serve/world.hpp"
#include "util/cli.hpp"
#include "util/fault_injection.hpp"
#include "util/logging.hpp"
#include "util/resource_budget.hpp"
#include "util/shutdown.hpp"
#include "util/stopwatch.hpp"
#include "util/trace.hpp"

using namespace astromlab;

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  log::set_level(log::parse_level(args.get_string("log", "info")));
  util::ResourceBudget::init_from_args(args);
  util::FaultInjector::init_chaos_from_args(args);
  util::trace::init_from_args(args);

  core::WorldConfig world_config;
  world_config.kb.n_topics = static_cast<std::size_t>(args.get_int("topics", 6));
  world_config.kb.entities_per_topic =
      static_cast<std::size_t>(args.get_int("entities", 4));
  world_config.kb.facts_per_entity =
      static_cast<std::size_t>(args.get_int("facts-per-entity", 2));
  world_config.mcq.questions_per_topic =
      static_cast<std::size_t>(args.get_int("questions-per-topic", 3));
  world_config.vocab_size = static_cast<std::size_t>(args.get_int("vocab", 512));
  world_config.ctx_len = static_cast<std::size_t>(args.get_int("ctx", 416));
  world_config.seed = static_cast<std::uint64_t>(args.get_int("seed", 2024));

  const std::string scale_name = args.get_string("scale", "S7");
  core::Scale scale = core::Scale::kS7;
  if (scale_name == "S8") {
    scale = core::Scale::kS8;
  } else if (scale_name == "S70") {
    scale = core::Scale::kS70;
  } else if (scale_name != "S7") {
    std::fprintf(stderr, "error: --scale must be S7, S8 or S70\n");
    return 64;
  }

  serve::ServerConfig config;
  config.port = static_cast<std::uint16_t>(args.get_int("port", 0));
  config.workers = static_cast<std::size_t>(args.get_int("workers", 4));
  config.queue_depth = static_cast<std::size_t>(args.get_int("queue-depth", 16));
  config.rate_limit_rps = args.get_double("rate-limit", 0.0);
  config.rate_burst = args.get_double("rate-burst", 0.0);
  config.default_deadline_seconds = args.get_double("deadline-ms", 0.0) / 1000.0;
  config.drain_grace_seconds = args.get_double("drain-grace", 5.0);
  config.max_sessions = static_cast<std::size_t>(args.get_int("max-sessions", 64));
  config.decode_batch = static_cast<std::size_t>(args.get_int("decode-batch", 1));
  config.stats_log_seconds = args.get_double("stats-every", 30.0);
  config.retry.max_retries = static_cast<std::size_t>(args.get_int("retry-max", 2));
  const double serve_seconds = args.get_double("serve-seconds", 0.0);
  const std::string journal_path = args.get_string("journal", "");

  serve::ServeModelOptions model_options;
  try {
    model_options.weight_dtype =
        tensor::parse_weight_dtype(args.get_string("weight-dtype", "fp32"));
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 64;
  }
  model_options.paged_kv = args.get_int("paged-kv", 0) != 0;
  model_options.kv_block_tokens =
      static_cast<std::size_t>(args.get_int("kv-block-tokens", 16));
  if (model_options.kv_block_tokens == 0) {
    std::fprintf(stderr, "error: --kv-block-tokens must be >= 1\n");
    return 64;
  }
  // All flags consumed — fail loudly on typos before the expensive build.
  args.fail_on_unconsumed();

  std::unique_ptr<eval::EvalJournal> journal;
  if (!journal_path.empty()) journal = std::make_unique<eval::EvalJournal>(journal_path);

  const std::shared_ptr<serve::ServedWorld> world = serve::build_served_world(
      scale, world_config, /*generation=*/1, /*prefix_cache=*/true, model_options);

  serve::InferenceServer server(world, config, journal.get());
  // Signals begin the drain; main() below finishes the shutdown and flushes.
  util::shutdown::install([&server] { server.begin_drain(); }, /*exit_after_callback=*/false);
  server.start();

  // The load generator and the CI smoke job discover the ephemeral port
  // from this line — keep the format stable.
  std::printf("LISTENING port=%u\n", static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  util::Stopwatch uptime;
  while (!server.draining()) {
    if (serve_seconds > 0.0 && uptime.seconds() >= serve_seconds) {
      log::info() << "serve: --serve-seconds elapsed; self-draining";
      server.begin_drain();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.shutdown();
  util::trace::finish();
  std::printf("DRAINED ok\n");
  std::fflush(stdout);
  return 0;
}
