#pragma once
// The always-up HTTP inference server.
//
// Request lifecycle (the robustness core):
//   accept → admission gate (connections beyond workers + queue_depth are
//   shed 429 + Retry-After at accept) → token bucket (sustained-rate shed,
//   429 + Retry-After) → per-request CancelToken carrying the merged
//   deadline (client `deadline_ms` and the server default, stricter wins)
//   → work under util::run_with_retry (transient faults retried with
//   cancel-aware backoff) inside the degradation ladder:
//     rung 1  evict the LRU idle session (KV headroom, no user-visible error)
//     rung 2  evict the shared MCQ prefix cache (requests re-encode, scores
//             identical)
//     rung 3  shed this request 503 + Retry-After
//   → 504 when the deadline fires mid-work (partial work cancelled in
//   flight via the token), 503 when a drain cancellation fires instead.
//
// Hot swap: the whole ServedWorld (weights + tokenizer + prefix cache) sits
// behind a generation-counted shared_ptr; handlers pin it per request, so
// a swap replaces the bundle for *new* requests while in-flight ones finish
// on the old weights. Sessions are generation-checked and dropped on swap.
//
// Graceful drain: begin_drain() (wired to SIGINT/SIGTERM through
// util::shutdown) stops the acceptor; connection loops observe the flag at
// their next poll slice and close after the current request; shutdown()
// waits drain_grace_seconds, cancels whatever is still running (those
// requests answer 503), joins the pool, and logs the final stats snapshot.
// The eval journal is per-record durable throughout; trace flushing stays
// with main(), which owns the trace session.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <condition_variable>

#include "eval/journal.hpp"
#include "json/json.hpp"
#include "nn/decode_engine.hpp"
#include "serve/admission.hpp"
#include "serve/http.hpp"
#include "serve/session.hpp"
#include "serve/world.hpp"
#include "util/cancel.hpp"
#include "util/retry.hpp"
#include "util/thread_pool.hpp"

namespace astromlab::serve {

struct ServerConfig {
  std::uint16_t port = 0;      ///< 0 = ephemeral; read back via port()
  std::size_t workers = 4;     ///< dedicated pool (never ThreadPool::global —
                               ///< the GEMM kernels own that one)
  std::size_t queue_depth = 16;  ///< admitted connections beyond the workers
  double rate_limit_rps = 0.0;   ///< token-bucket refill; 0 = unlimited
  double rate_burst = 0.0;       ///< bucket capacity; 0 = max(2*rps, 1)
  double default_deadline_seconds = 0.0;  ///< per-request default; 0 = none
  double drain_grace_seconds = 5.0;
  double idle_timeout_seconds = 10.0;  ///< keep-alive idle close
  std::size_t max_sessions = 64;
  std::size_t max_body_bytes = 1 << 20;
  std::size_t max_new_tokens_cap = 256;
  /// >= 2 routes /v1/mcq and /v1/generate forwards through a shared
  /// continuous-batching nn::DecodeEngine with this many slots, so
  /// concurrent requests coalesce into shared decode steps. Responses are
  /// bit-identical to the serial path (0/1) for every batch composition.
  std::size_t decode_batch = 1;
  util::RetryPolicy retry;
  double stats_log_seconds = 0.0;  ///< periodic per-interval latency log; 0 = off
};

class InferenceServer {
 public:
  InferenceServer(std::shared_ptr<const ServedWorld> world, ServerConfig config,
                  eval::EvalJournal* journal = nullptr);
  ~InferenceServer();
  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Binds, listens and starts the acceptor + worker pool. Throws
  /// std::runtime_error when the port cannot be bound.
  void start();

  std::uint16_t port() const { return port_; }

  /// Stops accepting new connections; idempotent, async-signal-adjacent
  /// (called from the shutdown watcher thread, not the raw handler).
  void begin_drain();
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Full graceful stop: drain, grace-wait, cancel stragglers, join
  /// everything, log final stats. Idempotent; called by the destructor.
  void shutdown();

  /// Installs a new generation for subsequent requests; in-flight requests
  /// and their sessions keep the old bundle alive until they finish.
  void swap_world(std::shared_ptr<const ServedWorld> world);
  std::shared_ptr<const ServedWorld> current_world() const;

  std::size_t in_flight() const { return gate_.in_flight(); }
  std::size_t session_count() const { return sessions_.count(); }

 private:
  class InflightToken;

  void acceptor_loop();
  void stats_loop();
  void handle_connection(int fd);
  HttpResponse dispatch(const HttpRequest& request);
  HttpResponse handle_inference(const HttpRequest& request, bool mcq);
  HttpResponse do_mcq(const ServedWorld& world, nn::DecodeEngine* engine,
                      const json::Value& body, const util::CancelToken& cancel);
  HttpResponse do_generate(const std::shared_ptr<const ServedWorld>& world,
                           nn::DecodeEngine* engine, const json::Value& body,
                           const util::CancelToken& cancel, std::uint64_t request_id);
  HttpResponse handle_healthz();
  HttpResponse handle_metrics();
  HttpResponse handle_swap(const HttpRequest& request);
  HttpResponse cancelled_response(const util::CancelToken& cancel);

  /// Registers/unregisters a request's CancelToken so shutdown() can
  /// cancel stragglers after the grace window.
  void register_inflight(util::CancelToken* token);
  void unregister_inflight(util::CancelToken* token);

  /// Pins the current (world, engine) pair atomically: a hot swap between
  /// the two loads must not hand a request an engine built on different
  /// weights than the world it scores against.
  std::pair<std::shared_ptr<const ServedWorld>, std::shared_ptr<nn::DecodeEngine>>
  pin_world_and_engine() const;

  ServerConfig config_;
  mutable std::mutex world_mutex_;
  std::shared_ptr<const ServedWorld> world_;
  /// Continuous-batching decode engine over world_'s model (null when
  /// config_.decode_batch < 2). Rebuilt by swap_world; in-flight requests
  /// keep the old one (and the world it references) alive via shared_ptr.
  std::shared_ptr<nn::DecodeEngine> engine_;
  SessionManager sessions_;
  eval::EvalJournal* journal_;

  AdmissionGate gate_;
  TokenBucket bucket_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::thread acceptor_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> request_counter_{0};

  std::mutex inflight_mutex_;
  std::set<util::CancelToken*> inflight_tokens_;

  std::thread stats_thread_;
  std::mutex stats_mutex_;
  std::condition_variable stats_cv_;
  bool stats_stop_ = false;
};

}  // namespace astromlab::serve
