#include "serve/session.hpp"

#include <algorithm>

#include "serve/world.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace astromlab::serve {

Session::Session(std::shared_ptr<const ServedWorld> w, const nn::GptModel& model)
    : world(std::move(w)),
      // Paged serving: sessions share the generation's KV arena, so turns
      // forked off a common conversation prefix pay for it once (members
      // initialise in declaration order — `world` is set before this).
      inference(model, world != nullptr ? world->kv_arena : nullptr) {
  if (world != nullptr) model_generation = world->generation;
}

std::shared_ptr<Session> SessionManager::acquire(const std::string& id,
                                                 std::shared_ptr<const ServedWorld> world) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(id);
  if (it != sessions_.end() && it->second->model_generation == world->generation) {
    it->second->last_used.store(clock_.fetch_add(1) + 1, std::memory_order_relaxed);
    util::metrics::registry().counter("serve.session_hits").add();
    return it->second;
  }
  if (it != sessions_.end()) sessions_.erase(it);  // stale generation: KV is worthless
  util::metrics::registry().counter("serve.session_misses").add();
  // Evict before inserting so the table never exceeds max_sessions_.
  while (max_sessions_ > 0 && sessions_.size() >= max_sessions_) {
    std::shared_ptr<Session> victim;
    std::uint64_t oldest = UINT64_MAX;
    std::string victim_id;
    for (const auto& [sid, session] : sessions_) {
      const std::uint64_t used = session->last_used.load(std::memory_order_relaxed);
      if (used < oldest) {
        oldest = used;
        victim = session;
        victim_id = sid;
      }
    }
    if (victim == nullptr) break;
    sessions_.erase(victim_id);  // leased sessions survive via their shared_ptr
    util::metrics::registry().counter("serve.session_capacity_evictions").add();
  }
  auto session = std::make_shared<Session>(world, world->model);
  session->last_used.store(clock_.fetch_add(1) + 1, std::memory_order_relaxed);
  sessions_[id] = session;
  return session;
}

std::size_t SessionManager::evict_lru() {
  const std::lock_guard<std::mutex> lock(mutex_);
  // LRU order over sessions whose mutex we can take without waiting — a
  // session mid-request is pinned, and blocking the ladder on it would
  // invert the point of shedding memory quickly.
  std::vector<std::pair<std::uint64_t, std::string>> order;
  order.reserve(sessions_.size());
  for (const auto& [sid, session] : sessions_) {
    order.emplace_back(session->last_used.load(std::memory_order_relaxed), sid);
  }
  std::sort(order.begin(), order.end());
  for (const auto& [used, sid] : order) {
    const auto it = sessions_.find(sid);
    if (it == sessions_.end()) continue;
    std::shared_ptr<Session> session = it->second;
    if (!session->mutex.try_lock()) continue;
    const std::size_t freed = session->inference.release_kv();
    session->mutex.unlock();
    sessions_.erase(it);
    if (freed > 0) {
      util::metrics::registry().counter("serve.ladder_session_evictions").add();
      return freed;
    }
    // Zero bytes (already released / empty): keep looking for a rung that
    // actually returns headroom.
  }
  return 0;
}

std::size_t SessionManager::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t n = sessions_.size();
  sessions_.clear();
  return n;
}

std::size_t SessionManager::count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

GenerateOutcome generate_tokens(nn::GptInference& inference, std::vector<nn::Token>& history,
                                const std::vector<nn::Token>& prompt,
                                std::size_t max_new_tokens, float temperature,
                                std::uint64_t seed, const util::CancelToken* cancel) {
  GenerateOutcome outcome;
  const std::size_t ctx = inference.model().config().ctx_len;
  if (prompt.empty() || prompt.size() >= ctx) {
    outcome.context_overflow = true;
    return outcome;
  }

  // Reuse the KV prefix when the new prompt strictly extends the encoded
  // history (the common conversational case: prior turns + new text).
  // `inference.history()` is the ground truth for what the cache holds —
  // a prior cancelled request may have fed only part of its prompt.
  const std::size_t common = nn::common_token_prefix(inference.history(), prompt);
  std::size_t fed_from = 0;
  if (common == inference.history().size() && common > 0 && common < prompt.size() &&
      inference.position() == common) {
    fed_from = common;
    outcome.reused_prefix_tokens = common;
  } else {
    inference.reset();
  }

  const std::vector<float>& prompt_logits =
      inference.prompt(prompt.data() + fed_from, prompt.size() - fed_from, cancel);
  if (cancel != nullptr && cancel->cancelled()) {
    outcome.cancelled = true;
    history = inference.history();  // partial feed: keep session coherent
    return outcome;
  }

  nn::SampleConfig pick_config;
  pick_config.temperature = temperature;
  util::Rng rng(seed);
  const std::vector<float>* logits = &prompt_logits;
  while (outcome.generated.size() < max_new_tokens) {
    if (cancel != nullptr && cancel->cancelled()) {
      outcome.cancelled = true;
      break;
    }
    const nn::Token next = nn::Sampler::pick(*logits, pick_config, rng);
    outcome.generated.push_back(next);
    if (outcome.generated.size() == max_new_tokens) {
      // Step the final token into the cache when there is room so a
      // follow-up prompt can reuse the full turn; no logits needed.
      if (inference.position() < ctx) inference.step(next);
      break;
    }
    if (inference.position() >= ctx) {
      outcome.context_overflow = true;  // wanted more tokens, no room left
      break;
    }
    logits = &inference.step(next);
  }
  history = inference.history();
  return outcome;
}

GenerateOutcome generate_tokens_batched(nn::DecodeEngine& engine, nn::GptInference& inference,
                                        std::vector<nn::Token>& history,
                                        const std::vector<nn::Token>& prompt,
                                        std::size_t max_new_tokens, float temperature,
                                        std::uint64_t seed, const util::CancelToken* cancel) {
  GenerateOutcome outcome;
  const std::size_t ctx = engine.model().config().ctx_len;
  if (prompt.empty() || prompt.size() >= ctx) {
    outcome.context_overflow = true;
    return outcome;
  }

  // Same prefix-reuse decision as the serial path; the reused rows travel
  // session inference → slot at prepare time, and back at completion.
  const std::size_t common = nn::common_token_prefix(inference.history(), prompt);
  const bool reuse = common == inference.history().size() && common > 0 &&
                     common < prompt.size() && inference.position() == common;
  if (reuse) outcome.reused_prefix_tokens = common;

  nn::SampleConfig pick_config;
  pick_config.temperature = temperature;
  util::Rng rng(seed);

  nn::DecodeEngine::Request req;
  req.prompt = prompt;
  req.cancel = cancel;
  req.prepare = [&inference, reuse, common](nn::BatchedInference& batch, std::size_t slot,
                                            const std::vector<nn::Token>&) {
    if (reuse) {
      batch.import_slot(slot, inference);
      return common;
    }
    batch.reset_slot(slot);
    return std::size_t{0};
  };
  // One iteration of the serial generate loop per callback — same check
  // order, same sampling, so the token stream is bitwise identical.
  req.on_logits = [&](const std::vector<float>& logits, std::size_t position) -> nn::Token {
    if (outcome.generated.size() >= max_new_tokens) return nn::DecodeEngine::kStopDecoding;
    if (cancel != nullptr && cancel->cancelled()) {
      outcome.cancelled = true;
      return nn::DecodeEngine::kStopDecoding;
    }
    const nn::Token next = nn::Sampler::pick(logits, pick_config, rng);
    outcome.generated.push_back(next);
    if (outcome.generated.size() == max_new_tokens) {
      // Serial steps the final token into the cache (when there is room)
      // so a follow-up can reuse the full turn; feeding it here does the
      // same — the extra callback lands in the size check above and stops.
      return position < ctx ? next : nn::DecodeEngine::kStopDecoding;
    }
    if (position >= ctx) {
      outcome.context_overflow = true;
      return nn::DecodeEngine::kStopDecoding;
    }
    return next;
  };
  // Runs on stop AND on prompt-phase cancellation: the partial slot state
  // keeps the session coherent, matching the serial cancelled-feed path.
  req.on_complete = [&inference](nn::BatchedInference& batch, std::size_t slot) {
    batch.export_slot(slot, inference);
  };

  const nn::DecodeEngine::Completion completion = engine.run(std::move(req));
  if (completion.cancelled) outcome.cancelled = true;
  history = inference.history();
  return outcome;
}

}  // namespace astromlab::serve
