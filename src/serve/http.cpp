#include "serve/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string_view>

#include "util/string_utils.hpp"

namespace astromlab::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::string to_lower_ascii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string_view trim_view(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parses the request head in [0, head_end) of `buffer`. Returns false on
/// malformed input. `content_length` is -1 when the header is absent.
bool parse_head(std::string_view head, HttpRequest& out, long& content_length) {
  content_length = -1;
  const std::size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) return false;
  out.method = std::string(request_line.substr(0, sp1));
  out.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  out.version = std::string(request_line.substr(sp2 + 1));
  if (out.method.empty() || out.target.empty() || !util::starts_with(out.version, "HTTP/")) {
    return false;
  }

  std::size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) return false;
    const std::string name = to_lower_ascii(trim_view(line.substr(0, colon)));
    const std::string value{trim_view(line.substr(colon + 1))};
    if (name.empty()) return false;
    out.headers[name] = value;
  }

  if (const std::string* cl = out.header("content-length")) {
    char* end = nullptr;
    const long parsed = std::strtol(cl->c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || parsed < 0) return false;
    content_length = parsed;
  }

  // Keep-alive: HTTP/1.1 default on, HTTP/1.0 default off; the Connection
  // header overrides either way.
  out.keep_alive = out.version != "HTTP/1.0";
  if (const std::string* connection = out.header("connection")) {
    const std::string value = to_lower_ascii(*connection);
    if (value == "close") out.keep_alive = false;
    if (value == "keep-alive") out.keep_alive = true;
  }
  return true;
}

/// poll() the fd for readability until `deadline`; false on timeout/error.
bool wait_readable(int fd, Clock::time_point deadline) {
  const auto now = Clock::now();
  if (now >= deadline) return false;
  const auto remaining =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now).count();
  struct pollfd pfd {};
  pfd.fd = fd;
  pfd.events = POLLIN;
  const int rc = ::poll(&pfd, 1, static_cast<int>(std::max<long long>(remaining, 1)));
  return rc > 0;
}

bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

const std::string* HttpRequest::header(const std::string& name) const {
  const auto it = headers.find(name);
  return it == headers.end() ? nullptr : &it->second;
}

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Entity";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

std::string serialize_response(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    status_reason(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += response.close ? "Connection: close\r\n" : "Connection: keep-alive\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

ReadOutcome Connection::read_request(HttpRequest& out, std::size_t max_bytes,
                                     double timeout_seconds) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_seconds));
  char chunk[4096];
  for (;;) {
    // Complete head already buffered?
    const std::size_t head_end = buffer_.find("\r\n\r\n");
    if (head_end != std::string::npos) {
      out = HttpRequest{};
      long content_length = -1;
      if (!parse_head(std::string_view(buffer_).substr(0, head_end), out, content_length)) {
        return ReadOutcome::kMalformed;
      }
      const std::size_t body_len = content_length < 0 ? 0 : static_cast<std::size_t>(content_length);
      if (body_len > max_bytes) return ReadOutcome::kTooLarge;
      const std::size_t body_begin = head_end + 4;
      if (buffer_.size() >= body_begin + body_len) {
        out.body = buffer_.substr(body_begin, body_len);
        buffer_.erase(0, body_begin + body_len);
        return ReadOutcome::kRequest;
      }
      // fall through: need more body bytes
    } else if (buffer_.size() > max_bytes) {
      return ReadOutcome::kTooLarge;
    }

    if (!wait_readable(fd_, deadline)) return ReadOutcome::kTimeout;
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      // Clean EOF only between requests; mid-request it is a torn send.
      return buffer_.empty() ? ReadOutcome::kClosed : ReadOutcome::kMalformed;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return ReadOutcome::kError;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool Connection::write(const HttpResponse& response) {
  const std::string wire = serialize_response(response);
  return write_all(fd_, wire.data(), wire.size());
}

HttpClient::HttpClient(std::string host, std::uint16_t port)
    : host_(std::move(host)), port_(port) {}

HttpClient::~HttpClient() { close(); }

void HttpClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool HttpClient::ensure_connected(double timeout_seconds) {
  if (fd_ >= 0) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return false;
  }
  struct timeval tv {};
  tv.tv_sec = static_cast<time_t>(timeout_seconds);
  tv.tv_usec = static_cast<suseconds_t>((timeout_seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  fd_ = fd;
  return true;
}

std::optional<HttpResponse> HttpClient::request(
    const std::string& method, const std::string& target, const std::string& body,
    double timeout_seconds, const std::map<std::string, std::string>& headers) {
  return request(method, target, body, timeout_seconds, headers, nullptr);
}

std::optional<HttpResponse> HttpClient::request(
    const std::string& method, const std::string& target, const std::string& body,
    double timeout_seconds, const std::map<std::string, std::string>& headers,
    bool* connect_failed) {
  if (connect_failed != nullptr) *connect_failed = false;
  if (!ensure_connected(timeout_seconds)) {
    if (connect_failed != nullptr) *connect_failed = true;
    return std::nullopt;
  }

  std::string wire = method + " " + target + " HTTP/1.1\r\n";
  wire += "Host: " + host_ + "\r\n";
  wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  for (const auto& [name, value] : headers) wire += name + ": " + value + "\r\n";
  wire += "\r\n";
  wire += body;
  if (!write_all(fd_, wire.data(), wire.size())) {
    close();
    return std::nullopt;
  }

  // Read status line + headers, then exactly Content-Length body bytes.
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_seconds));
  std::string buffer;
  char chunk[4096];
  std::size_t head_end = std::string::npos;
  while ((head_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    if (!wait_readable(fd_, deadline)) {
      close();
      return std::nullopt;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      close();
      return std::nullopt;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }

  HttpResponse response;
  const std::string_view head = std::string_view(buffer).substr(0, head_end);
  const std::size_t line_end = head.find("\r\n");
  const std::string_view status_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  // "HTTP/1.1 200 OK"
  const std::size_t sp = status_line.find(' ');
  if (sp == std::string_view::npos) {
    close();
    return std::nullopt;
  }
  response.status = std::atoi(std::string(status_line.substr(sp + 1, 3)).c_str());

  long content_length = 0;
  bool server_closes = false;
  std::size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    const std::string name = to_lower_ascii(trim_view(line.substr(0, colon)));
    const std::string value{trim_view(line.substr(colon + 1))};
    response.headers[name] = value;
    if (name == "content-length") content_length = std::atol(value.c_str());
    if (name == "connection" && to_lower_ascii(value) == "close") server_closes = true;
  }

  const std::size_t body_begin = head_end + 4;
  while (buffer.size() < body_begin + static_cast<std::size_t>(content_length)) {
    if (!wait_readable(fd_, deadline)) {
      close();
      return std::nullopt;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      close();
      return std::nullopt;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  response.body = buffer.substr(body_begin, static_cast<std::size_t>(content_length));
  if (server_closes) close();
  return response;
}

}  // namespace astromlab::serve
