#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "eval/token_method.hpp"
#include "util/fault_injection.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/resource_budget.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/trace.hpp"

namespace astromlab::serve {

namespace {

namespace metrics = util::metrics;

HttpResponse json_response(int status, const json::Value& body) {
  HttpResponse response;
  response.status = status;
  response.body = body.dump();
  return response;
}

HttpResponse error_response(int status, const std::string& message) {
  json::Value body = json::Value::object();
  body.set("error", message);
  return json_response(status, body);
}

/// Shed responses carry Retry-After so a well-behaved client knows when a
/// retry has a chance; shedding without the hint just moves the stampede.
HttpResponse shed_response(int status, const std::string& reason, double retry_after_seconds) {
  HttpResponse response = error_response(status, reason);
  const long seconds = std::max(1L, static_cast<long>(std::ceil(retry_after_seconds)));
  response.headers["Retry-After"] = std::to_string(seconds);
  return response;
}

void count_status(int status) {
  metrics::registry().counter("serve.responses_" + std::to_string(status)).add();
}

/// Chaos seam: the injector's eval channel keyed by request id, so a
/// seeded chaos schedule hits the serving path exactly as it hits the
/// offline supervisor — transient faults retry, alloc pressure drives the
/// ladder, permanent faults answer 500.
void consult_fault_injector(std::uint64_t request_id) {
  switch (util::FaultInjector::instance().on_eval_attempt(static_cast<std::size_t>(request_id))) {
    case util::FaultInjector::EvalAction::kTransient:
      throw util::TransientError("injected transient serve fault");
    case util::FaultInjector::EvalAction::kPermanent:
      throw std::runtime_error("injected permanent serve fault");
    case util::FaultInjector::EvalAction::kAllocPressure:
      throw util::ResourceExhaustedError("injected allocation pressure at request boundary");
    case util::FaultInjector::EvalAction::kProceed:
      break;
  }
}

std::vector<nn::Token> encode_tokens(const tokenizer::BpeTokenizer& tok,
                                     const std::string& text) {
  const auto ids = tok.encode(text);
  return {ids.begin(), ids.end()};
}

}  // namespace

/// RAII in-flight registration: shutdown() cancels every registered token
/// once the grace window ends, so no request can outlive the drain.
class InferenceServer::InflightToken {
 public:
  InflightToken(InferenceServer* server, util::CancelToken* token)
      : server_(server), token_(token) {
    server_->register_inflight(token_);
  }
  ~InflightToken() { server_->unregister_inflight(token_); }
  InflightToken(const InflightToken&) = delete;
  InflightToken& operator=(const InflightToken&) = delete;

 private:
  InferenceServer* server_;
  util::CancelToken* token_;
};

InferenceServer::InferenceServer(std::shared_ptr<const ServedWorld> world,
                                 ServerConfig config, eval::EvalJournal* journal)
    : config_(config),
      world_(std::move(world)),
      sessions_(config.max_sessions),
      journal_(journal),
      gate_(std::max<std::size_t>(config.workers, 1) + config.queue_depth),
      bucket_(config.rate_limit_rps,
              config.rate_burst > 0.0 ? config.rate_burst
                                      : std::max(2.0 * config.rate_limit_rps, 1.0)) {
  if (world_ == nullptr) throw std::invalid_argument("InferenceServer: null world");
  config_.workers = std::max<std::size_t>(config_.workers, 1);
  if (config_.decode_batch >= 2) {
    engine_ = std::make_shared<nn::DecodeEngine>(world_->model, config_.decode_batch);
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

void InferenceServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("serve: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: cannot bind 127.0.0.1:" + std::to_string(config_.port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  // A dedicated pool: handler threads block on sockets and model forwards;
  // sharing ThreadPool::global() would let slow requests starve the GEMM
  // parallel_for (and vice versa).
  pool_ = std::make_unique<util::ThreadPool>(config_.workers);
  acceptor_ = std::thread(&InferenceServer::acceptor_loop, this);
  if (config_.stats_log_seconds > 0.0) {
    stats_thread_ = std::thread(&InferenceServer::stats_loop, this);
  }
  metrics::registry().gauge("serve.model_generation").set(
      static_cast<std::int64_t>(current_world()->generation));
  log::info() << "serve: listening on 127.0.0.1:" << port_ << " workers=" << config_.workers
              << " queue_depth=" << config_.queue_depth << " gate=" << gate_.capacity();
}

void InferenceServer::begin_drain() {
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;
  log::info() << "serve: drain started (in_flight=" << gate_.in_flight() << ")";
  metrics::registry().counter("serve.drains").add();
}

void InferenceServer::shutdown() {
  if (stopped_.exchange(true)) return;
  begin_drain();
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // Grace window: let in-flight requests finish on their own.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(std::max(config_.drain_grace_seconds, 0.0)));
  while (gate_.in_flight() > 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  {
    // Past the grace window: cancel stragglers in flight. Their handlers
    // observe the token mid-forward and answer 503 (drain) — bounded exit
    // beats waiting out an unbounded generation.
    const std::lock_guard<std::mutex> lock(inflight_mutex_);
    for (util::CancelToken* token : inflight_tokens_) token->cancel();
    if (!inflight_tokens_.empty()) {
      metrics::registry().counter("serve.drain_cancelled").add(inflight_tokens_.size());
      log::warn() << "serve: drain grace expired; cancelled " << inflight_tokens_.size()
                  << " in-flight request(s)";
    }
  }
  if (pool_ != nullptr) {
    try {
      pool_->wait_idle();
    } catch (const std::exception& error) {
      // Handlers catch their own exceptions; anything surfacing here is a
      // bug worth logging, but it must not block the drain.
      log::warn() << "serve: handler leaked an exception: " << error.what();
    }
    pool_.reset();
  }
  if (stats_thread_.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_stop_ = true;
    }
    stats_cv_.notify_all();
    stats_thread_.join();
  }

  // Final flush: the journal is per-record durable already; emit the
  // closing stats snapshot so an operator sees the run's last interval.
  const auto snap =
      metrics::registry().histogram("serve.request_latency_ms").snapshot_and_reset();
  log::info() << "serve: drained; final interval n=" << snap.count << " p50=" << snap.p50
              << "ms p95=" << snap.p95 << "ms p99=" << snap.p99 << "ms";
}

void InferenceServer::swap_world(std::shared_ptr<const ServedWorld> world) {
  if (world == nullptr) return;
  {
    const std::lock_guard<std::mutex> lock(world_mutex_);
    world_ = std::move(world);
    // The engine's slots decode against the old weights; swap it in the
    // same critical section so no request can pin a mismatched pair.
    // In-flight requests hold the old engine (whose jobs pin the old
    // world) via shared_ptr until they finish.
    if (config_.decode_batch >= 2) {
      engine_ = std::make_shared<nn::DecodeEngine>(world_->model, config_.decode_batch);
    }
  }
  // Sessions encode old-weight activations in their KV caches; drop the
  // table (leased sessions finish on the old bundle they pin, then die).
  sessions_.clear();
  metrics::registry().counter("serve.model_swaps").add();
  metrics::registry().gauge("serve.model_generation").set(
      static_cast<std::int64_t>(current_world()->generation));
  log::info() << "serve: model swapped to generation " << current_world()->generation;
}

std::shared_ptr<const ServedWorld> InferenceServer::current_world() const {
  const std::lock_guard<std::mutex> lock(world_mutex_);
  return world_;
}

std::pair<std::shared_ptr<const ServedWorld>, std::shared_ptr<nn::DecodeEngine>>
InferenceServer::pin_world_and_engine() const {
  const std::lock_guard<std::mutex> lock(world_mutex_);
  return {world_, engine_};
}

void InferenceServer::register_inflight(util::CancelToken* token) {
  const std::lock_guard<std::mutex> lock(inflight_mutex_);
  inflight_tokens_.insert(token);
}

void InferenceServer::unregister_inflight(util::CancelToken* token) {
  const std::lock_guard<std::mutex> lock(inflight_mutex_);
  inflight_tokens_.erase(token);
}

void InferenceServer::acceptor_loop() {
  while (!draining()) {
    struct pollfd pfd {};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, 100);  // 100ms slice keeps drain latency bounded
    if (draining()) break;
    if (rc <= 0) continue;
    const int cfd = ::accept(listen_fd_, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      if (draining()) break;
      log::warn() << "serve: accept failed: " << std::strerror(errno);
      continue;
    }
    if (!gate_.try_enter()) {
      // Queue-depth shed at the cheapest possible point: before any
      // parsing, before a pool slot. Inline write — the response is tiny.
      metrics::registry().counter("serve.shed_queue").add();
      count_status(429);
      HttpResponse response = shed_response(429, "server at capacity", 1.0);
      response.close = true;
      const std::string wire = serialize_response(response);
      ::send(cfd, wire.data(), wire.size(), MSG_NOSIGNAL);
      ::close(cfd);
      continue;
    }
    pool_->submit([this, cfd] {
      const AdmissionTicket ticket(&gate_);
      try {
        handle_connection(cfd);
      } catch (const std::exception& error) {
        log::warn() << "serve: connection handler failed: " << error.what();
      } catch (...) {
        log::warn() << "serve: connection handler failed with a non-exception";
      }
    });
  }
  // Refuse new connections the moment the drain begins: leaving the
  // listening socket open would strand fresh connects in the kernel
  // backlog, unanswered, until the client's own timeout fires. Closing
  // here (the only thread still using the fd) resets queued connects and
  // makes later ones fail fast with ECONNREFUSED.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void InferenceServer::stats_loop() {
  std::unique_lock<std::mutex> lock(stats_mutex_);
  while (!stats_stop_) {
    stats_cv_.wait_for(lock, std::chrono::duration<double>(config_.stats_log_seconds));
    if (stats_stop_) break;
    const auto snap =
        metrics::registry().histogram("serve.request_latency_ms").snapshot_and_reset();
    if (snap.count == 0) continue;
    log::info() << "serve stats: interval n=" << snap.count << " p50=" << snap.p50
                << "ms p95=" << snap.p95 << "ms p99=" << snap.p99
                << "ms in_flight=" << gate_.in_flight() << " sessions=" << sessions_.count();
  }
}

void InferenceServer::handle_connection(int fd) {
  Connection conn(fd);
  double idle_seconds = 0.0;
  for (;;) {
    if (draining()) break;  // between requests: close keep-alives promptly
    HttpRequest request;
    const ReadOutcome outcome =
        conn.read_request(request, config_.max_body_bytes, /*timeout_seconds=*/0.25);
    if (outcome == ReadOutcome::kTimeout) {
      idle_seconds += 0.25;
      if (idle_seconds >= config_.idle_timeout_seconds) break;
      continue;
    }
    if (outcome == ReadOutcome::kClosed || outcome == ReadOutcome::kError) break;
    if (outcome == ReadOutcome::kMalformed || outcome == ReadOutcome::kTooLarge) {
      const int status = outcome == ReadOutcome::kMalformed ? 400 : 413;
      count_status(status);
      HttpResponse response = error_response(status, "bad request");
      response.close = true;
      conn.write(response);
      break;
    }
    idle_seconds = 0.0;

    HttpResponse response = dispatch(request);
    if (draining()) response.close = true;
    count_status(response.status);
    if (!conn.write(response)) break;
    if (!request.keep_alive || response.close) break;
  }
}

HttpResponse InferenceServer::dispatch(const HttpRequest& request) {
  metrics::registry().counter("serve.http_requests").add();
  const util::trace::Span span("serve.request", "serve");
  if (request.method == "GET" && request.target == "/healthz") return handle_healthz();
  if (request.method == "GET" && request.target == "/metrics") return handle_metrics();
  if (request.method == "POST" && request.target == "/v1/mcq") {
    return handle_inference(request, /*mcq=*/true);
  }
  if (request.method == "POST" && request.target == "/v1/generate") {
    return handle_inference(request, /*mcq=*/false);
  }
  if (request.method == "POST" && request.target == "/admin/model") {
    return handle_swap(request);
  }
  return error_response(404, "no such endpoint: " + request.method + " " + request.target);
}

HttpResponse InferenceServer::cancelled_response(const util::CancelToken& cancel) {
  if (draining()) {
    metrics::registry().counter("serve.shed_drain").add();
    return shed_response(503, "draining", 1.0);
  }
  (void)cancel;
  metrics::registry().counter("serve.deadline_expired").add();
  return shed_response(504, "deadline expired", 1.0);
}

HttpResponse InferenceServer::handle_inference(const HttpRequest& request, bool mcq) {
  util::Stopwatch timer;
  if (draining()) {
    metrics::registry().counter("serve.shed_drain").add();
    return shed_response(503, "draining", 1.0);
  }
  const double rate_wait = bucket_.try_acquire();
  if (rate_wait > 0.0) {
    metrics::registry().counter("serve.shed_rate").add();
    return shed_response(429, "rate limited", rate_wait);
  }

  json::Value body;
  try {
    body = request.body.empty() ? json::Value::object() : json::parse(request.body);
  } catch (const json::ParseError& error) {
    return error_response(400, std::string("invalid JSON body: ") + error.what());
  }
  if (!body.is_object()) return error_response(400, "body must be a JSON object");

  const std::uint64_t request_id = request_counter_.fetch_add(1) + 1;
  util::CancelToken cancel;
  if (config_.default_deadline_seconds > 0.0) {
    cancel.set_deadline_after(config_.default_deadline_seconds);
  }
  const double deadline_ms = body.get_number("deadline_ms", 0.0);
  if (deadline_ms > 0.0) cancel.set_deadline_after(deadline_ms / 1000.0);  // stricter wins
  const InflightToken inflight(this, &cancel);

  // Pin this request's world (and the decode engine built on its model):
  // a hot swap during the request leaves us on the generation we started
  // with. `world` is declared first so it outlives the engine pin — the
  // engine's slots reference the world's weights.
  const auto [world, engine] = pin_world_and_engine();

  HttpResponse response;
  // Degradation ladder around the retried work. Each successful rung frees
  // real memory, so retrying the work afterwards is meaningful; when no
  // rung helps, shed this request (rung 3) instead of crashing the server.
  for (int relief_rounds = 0;;) {
    try {
      std::size_t retries = 0;
      response = util::run_with_retry(
          config_.retry, request_id, &cancel,
          [&] {
            consult_fault_injector(request_id);
            return mcq ? do_mcq(*world, engine.get(), body, cancel)
                       : do_generate(world, engine.get(), body, cancel, request_id);
          },
          &retries);
      if (retries > 0) {
        metrics::registry().counter("serve.retries").add(retries);
        response.headers["X-Retries"] = std::to_string(retries);
      }
      break;
    } catch (const std::bad_alloc&) {
      // ResourceExhaustedError derives from bad_alloc: one rung handler
      // covers simulated pressure and real allocator failure alike.
      std::size_t freed = sessions_.evict_lru();  // rung 1: idle session KV
      if (freed == 0 && engine != nullptr) {
        // Rung 1b, slot granularity: idle decode slots hand their KV back
        // to the budget; slots mid-sequence keep decoding untouched.
        freed = engine->release_idle_kv();
        if (freed > 0) metrics::registry().counter("serve.ladder_slot_kv_released").add();
      }
      if (freed == 0 && world->mcq_cache != nullptr) {
        freed = world->mcq_cache->evict();  // rung 2: shared MCQ prefix
        if (freed > 0) metrics::registry().counter("serve.ladder_cache_evictions").add();
      }
      if (freed > 0 && ++relief_rounds <= 8) continue;
      metrics::registry().counter("serve.shed_memory").add();
      response = shed_response(503, "memory pressure", 1.0);
      break;
    } catch (const std::exception& error) {
      if (util::is_transient(error)) {
        // Retry budget exhausted (or cancelled mid-backoff).
        if (cancel.cancelled()) {
          response = cancelled_response(cancel);
        } else {
          metrics::registry().counter("serve.transient_exhausted").add();
          response = shed_response(503, "transient fault persisted", 1.0);
        }
      } else {
        log::warn() << "serve: request " << request_id << " failed: " << error.what();
        metrics::registry().counter("serve.internal_errors").add();
        response = error_response(500, error.what());
      }
      break;
    }
  }

  const double latency_ms = timer.seconds() * 1000.0;
  metrics::registry().histogram("serve.request_latency_ms").record(latency_ms);
  metrics::registry()
      .histogram(mcq ? "serve.mcq_latency_ms" : "serve.generate_latency_ms")
      .record(latency_ms);
  return response;
}

HttpResponse InferenceServer::do_mcq(const ServedWorld& world, nn::DecodeEngine* engine,
                                     const json::Value& body,
                                     const util::CancelToken& cancel) {
  const util::trace::Span span("serve.mcq", "serve");
  const std::vector<corpus::McqItem>& benchmark = world.world.mcqs.benchmark;
  const int question_index = static_cast<int>(body.get_number("question_index", -1.0));
  corpus::McqItem custom;
  const corpus::McqItem* item = nullptr;
  if (question_index >= 0) {
    if (static_cast<std::size_t>(question_index) >= benchmark.size()) {
      return error_response(400, "question_index out of range (benchmark has " +
                                     std::to_string(benchmark.size()) + " questions)");
    }
    item = &benchmark[static_cast<std::size_t>(question_index)];
  } else {
    const json::Value* question = body.find("question");
    const json::Value* options = body.find("options");
    if (question == nullptr || !question->is_string() || options == nullptr ||
        !options->is_array() || options->items().size() != 4) {
      return error_response(
          400, "need question_index, or question (string) + options (array of 4)");
    }
    custom.question = question->as_string();
    for (std::size_t i = 0; i < 4; ++i) {
      if (!options->items()[i].is_string()) {
        return error_response(400, "options must be strings");
      }
      custom.options[i] = options->items()[i].as_string();
    }
    item = &custom;
  }

  // scratch == nullptr: token_predict builds a request-local inference, so
  // its KV charge lives exactly as long as the request. With an engine,
  // concurrent MCQ requests coalesce into shared decode steps instead
  // (bit-identical answers either way).
  const int predicted =
      eval::token_predict(world.model, world.world.tok, world.letters, *item, world.fewshot,
                          &cancel, world.mcq_cache.get(), nullptr, engine);
  if (cancel.cancelled()) return cancelled_response(cancel);

  if (journal_ != nullptr && question_index >= 0) {
    eval::QuestionResult result;
    result.predicted = predicted;
    result.correct = static_cast<int>(item->correct);
    result.tier = item->tier;
    journal_->record(static_cast<std::size_t>(question_index), result);
  }

  json::Value out = json::Value::object();
  if (predicted >= 0) {
    out.set("answer", std::string(1, static_cast<char>('A' + predicted)));
  } else {
    out.set("answer", nullptr);  // prompt overflow: unanswered, not an error
  }
  out.set("predicted", predicted);
  if (question_index >= 0) out.set("question_index", question_index);
  out.set("model_generation", static_cast<std::int64_t>(world.generation));
  return json_response(200, out);
}

HttpResponse InferenceServer::do_generate(const std::shared_ptr<const ServedWorld>& world,
                                          nn::DecodeEngine* engine, const json::Value& body,
                                          const util::CancelToken& cancel,
                                          std::uint64_t request_id) {
  const util::trace::Span span("serve.generate", "serve");
  const std::string prompt_text = body.get_string("prompt", "");
  if (prompt_text.empty()) return error_response(400, "prompt required");
  const std::size_t max_new_tokens = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(body.get_number("max_new_tokens", 32.0), 0.0)),
      config_.max_new_tokens_cap);
  const float temperature =
      static_cast<float>(std::max(body.get_number("temperature", 0.0), 0.0));
  const auto seed = static_cast<std::uint64_t>(body.get_number("seed", 0.0));
  const std::string session_id = body.get_string("session", "");

  const std::vector<nn::Token> prompt = encode_tokens(world->world.tok, prompt_text);
  GenerateOutcome outcome;
  if (!session_id.empty()) {
    const std::shared_ptr<Session> session = sessions_.acquire(session_id, world);
    const std::lock_guard<std::mutex> lock(session->mutex);
    session->last_used.store(request_id, std::memory_order_relaxed);
    outcome = engine != nullptr
                  ? generate_tokens_batched(*engine, session->inference, session->history,
                                            prompt, max_new_tokens, temperature, seed, &cancel)
                  : generate_tokens(session->inference, session->history, prompt,
                                    max_new_tokens, temperature, seed, &cancel);
  } else {
    nn::GptInference inference(world->model);
    std::vector<nn::Token> history;
    outcome = engine != nullptr
                  ? generate_tokens_batched(*engine, inference, history, prompt,
                                            max_new_tokens, temperature, seed, &cancel)
                  : generate_tokens(inference, history, prompt, max_new_tokens, temperature,
                                    seed, &cancel);
  }
  if (outcome.cancelled) return cancelled_response(cancel);
  if (outcome.context_overflow && outcome.generated.empty()) {
    return error_response(422, "prompt does not fit the context window");
  }

  const std::vector<tokenizer::TokenId> ids(outcome.generated.begin(),
                                            outcome.generated.end());
  json::Value out = json::Value::object();
  out.set("text", world->world.tok.decode(ids));
  out.set("tokens_generated", static_cast<std::int64_t>(outcome.generated.size()));
  out.set("reused_prefix_tokens", static_cast<std::int64_t>(outcome.reused_prefix_tokens));
  out.set("context_overflow", outcome.context_overflow);
  if (!session_id.empty()) out.set("session", session_id);
  out.set("model_generation", static_cast<std::int64_t>(world->generation));
  return json_response(200, out);
}

HttpResponse InferenceServer::handle_healthz() {
  const std::shared_ptr<const ServedWorld> world = current_world();
  const bool overloaded = gate_.in_flight() >= gate_.capacity();
  json::Value out = json::Value::object();
  out.set("status", draining() ? "draining" : (overloaded ? "overloaded" : "ok"));
  out.set("draining", draining());
  out.set("model_generation", static_cast<std::int64_t>(world->generation));
  out.set("scale", core::scale_name(world->scale));
  out.set("benchmark_questions", static_cast<std::int64_t>(world->world.mcqs.benchmark.size()));
  out.set("sessions", static_cast<std::int64_t>(sessions_.count()));
  out.set("in_flight", static_cast<std::int64_t>(gate_.in_flight()));
  // Degraded readiness: a load balancer should stop routing here while the
  // process drains or every slot is busy, but the endpoint itself answers.
  return json_response(draining() || overloaded ? 503 : 200, out);
}

HttpResponse InferenceServer::handle_metrics() {
  // Refresh level gauges at scrape time — they are cheap and exact.
  metrics::registry().gauge("serve.in_flight").set(
      static_cast<std::int64_t>(gate_.in_flight()));
  metrics::registry().gauge("serve.sessions").set(
      static_cast<std::int64_t>(sessions_.count()));

  std::string text;
  for (const auto& [name, value] : metrics::registry().counters()) {
    text += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : metrics::registry().gauges()) {
    text += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, snap] : metrics::registry().histograms()) {
    text += name + "_count " + std::to_string(snap.count) + "\n";
    text += name + "_sum " + std::to_string(snap.sum) + "\n";
    text += name + "_p50 " + std::to_string(snap.p50) + "\n";
    text += name + "_p95 " + std::to_string(snap.p95) + "\n";
    text += name + "_p99 " + std::to_string(snap.p99) + "\n";
  }
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4";
  response.body = std::move(text);
  return response;
}

HttpResponse InferenceServer::handle_swap(const HttpRequest& request) {
  json::Value body;
  try {
    body = json::parse(request.body);
  } catch (const json::ParseError& error) {
    return error_response(400, std::string("invalid JSON body: ") + error.what());
  }
  const std::string scale_name = body.get_string("scale", "");
  core::Scale scale;
  if (scale_name == "S7") {
    scale = core::Scale::kS7;
  } else if (scale_name == "S8") {
    scale = core::Scale::kS8;
  } else if (scale_name == "S70") {
    scale = core::Scale::kS70;
  } else {
    return error_response(400, "scale must be one of S7, S8, S70");
  }

  const std::shared_ptr<const ServedWorld> old_world = current_world();
  // Rebuild only the model side; the corpus/tokenizer world is shared and
  // copied by value, so the swap never blocks requests on a KB rebuild.
  nn::GptConfig arch = core::scale_spec(scale, old_world->world.config).arch;
  arch.vocab_size = old_world->world.tok.vocab_size();
  nn::GptModel model(arch);
  util::Rng rng(served_weight_seed(scale, old_world->world.config));
  model.init_weights(rng);
  // The new generation inherits the old one's weight dtype and paged-KV
  // settings (it gets its own fresh arena): a swap changes the scale, not
  // the memory regime the operator configured at startup.
  const std::shared_ptr<ServedWorld> next =
      build_served_world(scale, old_world->world, std::move(model), old_world->generation + 1,
                         old_world->mcq_cache != nullptr, old_world->options);
  swap_world(next);

  json::Value out = json::Value::object();
  out.set("model_generation", static_cast<std::int64_t>(next->generation));
  out.set("scale", core::scale_name(scale));
  return json_response(200, out);
}

}  // namespace astromlab::serve
