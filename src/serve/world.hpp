#pragma once
// The model/corpus bundle one server generation serves.
//
// A ServedWorld is immutable once built: world (KB + benchmark +
// tokenizer), model weights, the few-shot examples, the detected letter
// tokens, and the shared MCQ prefix cache. Hot swap replaces the whole
// bundle atomically behind a shared_ptr — in-flight requests (and live
// sessions, which pin the bundle through Session::world) keep the old one
// alive until they finish, so a swap never invalidates weights under a
// running forward pass.
//
// Bit-identity contract: the MCQ path here is constructed with exactly the
// inputs `eval::run_token_benchmark` derives internally (same fewshot
// picker, same letter detection over the practice pool, same two-prompt
// prefix cache), so an answer served over HTTP matches the offline
// supervisor answer for the same question bit for bit — asserted in
// tests/test_serve.cpp.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/experiment.hpp"
#include "core/model_zoo.hpp"
#include "corpus/mcq.hpp"
#include "eval/prefix_cache.hpp"
#include "eval/token_method.hpp"
#include "nn/gpt.hpp"
#include "nn/kv_arena.hpp"
#include "tensor/quant.hpp"

namespace astromlab::serve {

/// How a served generation stores its weights and KV rows. Applied at
/// build time and preserved across hot swaps (the swap handler copies the
/// old generation's options), so a session forked before a swap and one
/// created after run under the same memory regime.
struct ServeModelOptions {
  tensor::WeightDtype weight_dtype = tensor::WeightDtype::kF32;
  bool paged_kv = false;               ///< sessions share a paged KV arena
  std::size_t kv_block_tokens = 16;    ///< arena block granularity (rows)
};

struct ServedWorld {
  ServedWorld(core::Scale s, core::World w, nn::GptModel m)
      : scale(s), world(std::move(w)), model(std::move(m)) {}

  core::Scale scale;
  core::World world;
  nn::GptModel model;
  std::vector<corpus::McqItem> fewshot;
  eval::LetterTokens letters;
  std::unique_ptr<eval::PrefixCache> mcq_cache;  // null when disabled/evicted
  /// Shared paged-KV arena for this generation's sessions (null when
  /// paged KV is off). Sessions pin it via shared_ptr, so a hot swap
  /// cannot free blocks under an in-flight request.
  std::shared_ptr<nn::KvArena> kv_arena;
  ServeModelOptions options;
  std::uint64_t generation = 1;
};

/// Deterministic weight seed for a scale under a world config — the same
/// seed a test must use to reproduce served answers offline.
std::uint64_t served_weight_seed(core::Scale scale, const core::WorldConfig& config);

/// Builds a full bundle: world, randomly-initialised model at `scale`
/// (weights seeded by `served_weight_seed` — this repo serves regime
/// analogs, not trained checkpoints), fewshot + letter detection, and the
/// shared MCQ prefix cache (skipped when `prefix_cache` is false).
std::shared_ptr<ServedWorld> build_served_world(core::Scale scale,
                                                const core::WorldConfig& config,
                                                std::uint64_t generation,
                                                bool prefix_cache = true,
                                                const ServeModelOptions& options = {});

/// Same bundle, reusing an already-built world and model — lets a hot swap
/// (and tests) skip the corpus/tokenizer rebuild when only the scale
/// changes, and lets tests serve a hand-built tiny world.
std::shared_ptr<ServedWorld> build_served_world(core::Scale scale, core::World world,
                                                nn::GptModel model, std::uint64_t generation,
                                                bool prefix_cache = true,
                                                const ServeModelOptions& options = {});

}  // namespace astromlab::serve
