#pragma once
// Admission control for the inference server: a token bucket bounds the
// sustained request rate and a counting gate bounds concurrent
// connections (workers actively serving + a short accept queue). Both
// reject with enough information to fill a Retry-After header — shedding
// is only useful to a client that learns *when* to come back.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>

namespace astromlab::serve {

/// Classic token bucket: `rate_per_second` refill, `burst` capacity.
/// A non-positive rate disables limiting entirely.
class TokenBucket {
 public:
  TokenBucket(double rate_per_second, double burst);

  /// Takes one token if available, returning 0. Otherwise returns the
  /// seconds until one accrues (the Retry-After hint), taking nothing.
  double try_acquire();

 private:
  std::mutex mutex_;
  double rate_;
  double burst_;
  double tokens_;
  std::chrono::steady_clock::time_point last_refill_;
};

/// Bounded in-flight counter. Capacity = worker threads + queue depth:
/// a connection past the gate is either being served or is next in line;
/// anything beyond that would only sit in line long enough to blow its
/// deadline, so it is cheaper for everyone to shed it at accept.
class AdmissionGate {
 public:
  explicit AdmissionGate(std::size_t capacity) : capacity_(capacity) {}

  bool try_enter();
  void leave();
  std::size_t in_flight() const { return in_flight_.load(std::memory_order_relaxed); }
  std::size_t capacity() const { return capacity_; }

 private:
  std::atomic<std::size_t> in_flight_{0};
  std::size_t capacity_;
};

/// RAII gate slot held for the lifetime of a connection handler.
class AdmissionTicket {
 public:
  explicit AdmissionTicket(AdmissionGate* gate = nullptr) : gate_(gate) {}
  ~AdmissionTicket() {
    if (gate_ != nullptr) gate_->leave();
  }
  AdmissionTicket(AdmissionTicket&& other) noexcept : gate_(other.gate_) {
    other.gate_ = nullptr;
  }
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(AdmissionTicket&&) = delete;

 private:
  AdmissionGate* gate_;
};

}  // namespace astromlab::serve
