#include "serve/admission.hpp"

#include <algorithm>

namespace astromlab::serve {

TokenBucket::TokenBucket(double rate_per_second, double burst)
    : rate_(rate_per_second),
      burst_(std::max(burst, 1.0)),
      tokens_(std::max(burst, 1.0)),
      last_refill_(std::chrono::steady_clock::now()) {}

double TokenBucket::try_acquire() {
  if (rate_ <= 0.0) return 0.0;  // unlimited
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto now = std::chrono::steady_clock::now();
  const double elapsed = std::chrono::duration<double>(now - last_refill_).count();
  last_refill_ = now;
  tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return 0.0;
  }
  return (1.0 - tokens_) / rate_;
}

bool AdmissionGate::try_enter() {
  // CAS loop so concurrent accepts cannot overshoot capacity.
  std::size_t current = in_flight_.load(std::memory_order_relaxed);
  while (current < capacity_) {
    if (in_flight_.compare_exchange_weak(current, current + 1, std::memory_order_acq_rel)) {
      return true;
    }
  }
  return false;
}

void AdmissionGate::leave() { in_flight_.fetch_sub(1, std::memory_order_acq_rel); }

}  // namespace astromlab::serve
