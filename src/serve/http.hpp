#pragma once
// Minimal blocking-socket HTTP/1.1 plumbing for the inference server, its
// tests, and the load generator. Deliberately tiny: request parsing covers
// exactly what the server needs (request line, headers, Content-Length
// bodies, keep-alive), responses always carry Content-Length, and there is
// no TLS or chunked transfer coding. The interesting engineering — bounded
// reads, poll-gated timeouts so a handler thread can observe the drain
// flag, a reconnecting persistent client — lives here so server.cpp and
// loadgen.cpp stay about lifecycle policy, not byte shuffling.

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace astromlab::serve {

struct HttpRequest {
  std::string method;
  std::string target;
  std::string version;
  std::map<std::string, std::string> headers;  // keys lower-cased
  std::string body;
  bool keep_alive = true;

  /// Header value by lower-case name, nullptr when absent.
  const std::string* header(const std::string& name) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::map<std::string, std::string> headers;  // extra headers (Retry-After, ...)
  std::string body;
  bool close = false;  // force Connection: close
};

const char* status_reason(int status);
std::string serialize_response(const HttpResponse& response);

enum class ReadOutcome {
  kRequest,    // one complete request parsed
  kClosed,     // peer closed (clean EOF between requests)
  kTimeout,    // nothing complete within timeout; buffered bytes retained
  kError,      // socket error
  kMalformed,  // unparseable request line / headers / length
  kTooLarge,   // headers or body exceed max_bytes
};

/// One server-side connection: owns the fd and the receive buffer so a
/// kTimeout return keeps partial bytes for the next read_request call —
/// the handler loop polls in short slices to notice the drain flag without
/// dropping a slow client's half-sent request.
class Connection {
 public:
  explicit Connection(int fd) : fd_(fd) {}
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  ReadOutcome read_request(HttpRequest& out, std::size_t max_bytes, double timeout_seconds);
  bool write(const HttpResponse& response);
  int fd() const { return fd_; }

 private:
  int fd_;
  std::string buffer_;
};

/// Blocking client on one persistent connection; reconnects lazily after
/// the server closes it. Used by the load generator and tests — a nullopt
/// return is a transport failure (refused / reset / timeout), which the
/// load gate accounts separately from HTTP statuses.
class HttpClient {
 public:
  HttpClient(std::string host, std::uint16_t port);
  ~HttpClient();
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  std::optional<HttpResponse> request(
      const std::string& method, const std::string& target, const std::string& body,
      double timeout_seconds = 10.0,
      const std::map<std::string, std::string>& headers = {});
  /// Like request(), but distinguishes "could not even connect" (sets
  /// `*connect_failed`) from a failure mid-exchange — the drain test needs
  /// to treat refused connections after SIGTERM as expected.
  std::optional<HttpResponse> request(
      const std::string& method, const std::string& target, const std::string& body,
      double timeout_seconds, const std::map<std::string, std::string>& headers,
      bool* connect_failed);
  void close();

 private:
  bool ensure_connected(double timeout_seconds);

  std::string host_;
  std::uint16_t port_;
  int fd_ = -1;
};

}  // namespace astromlab::serve
