#pragma once
// Per-session KV reuse for /v1/generate.
//
// A session pins a GptInference whose KV cache holds the conversation so
// far; a follow-up prompt that extends the history verbatim feeds only the
// new tail (the same prefix-reuse trick eval::PrefixCache plays for MCQ,
// but stateful per client). Sessions are the cheapest thing the server
// owns, which is why evicting the least-recently-used one is rung 1 of the
// degradation ladder — a victim's client transparently pays one full
// re-encode on its next turn; nobody gets an error.
//
// Memory accounting is inherited: GptInference charges its KV pages to the
// process ResourceBudget (kKvCache domain), so session eviction genuinely
// returns headroom, and an exhausted budget surfaces as the
// ResourceExhaustedError the server's ladder catches.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "nn/decode_engine.hpp"
#include "nn/gpt.hpp"
#include "nn/sampler.hpp"
#include "util/cancel.hpp"

namespace astromlab::serve {

struct ServedWorld;

struct Session {
  Session(std::shared_ptr<const ServedWorld> w, const nn::GptModel& model);

  std::mutex mutex;  // held across a whole request; try_lock guards eviction
  std::shared_ptr<const ServedWorld> world;  // pins the weights the KV was built on
  nn::GptInference inference;
  std::vector<nn::Token> history;  // tokens actually resident in the KV cache
  std::uint64_t model_generation = 0;
  std::atomic<std::uint64_t> last_used{0};
};

class SessionManager {
 public:
  explicit SessionManager(std::size_t max_sessions) : max_sessions_(max_sessions) {}

  /// Returns the session for `id`, creating it (and LRU-evicting past
  /// `max_sessions`) as needed. A session built on an older model
  /// generation is replaced — its KV encodes the old weights' activations.
  std::shared_ptr<Session> acquire(const std::string& id,
                                   std::shared_ptr<const ServedWorld> world);

  /// Evicts the least-recently-used session not currently serving a
  /// request. Returns KV bytes freed (0 when nothing evictable) — the
  /// ladder uses the return value to decide whether the rung helped.
  std::size_t evict_lru();

  /// Drops every session table entry (model swap). Sessions leased to
  /// in-flight requests stay alive through their shared_ptr and release
  /// their KV (and their pin on the old world) when the request finishes.
  std::size_t clear();

  std::size_t count() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  std::atomic<std::uint64_t> clock_{0};
  std::size_t max_sessions_;
};

struct GenerateOutcome {
  std::vector<nn::Token> generated;
  std::size_t reused_prefix_tokens = 0;
  bool cancelled = false;          // deadline/drain fired mid-work
  bool context_overflow = false;   // prompt (or prompt+history) cannot fit
};

/// Feeds `prompt` into `inference`, reusing whatever prefix of `history`
/// it extends, then greedily samples up to `max_new_tokens` (temperature
/// > 0 samples with the deterministic per-request `seed`). `history` is
/// updated to the tokens resident in the KV cache on return — including
/// the partial state after a cancellation, so a reused session stays
/// coherent even when its last request blew its deadline.
GenerateOutcome generate_tokens(nn::GptInference& inference, std::vector<nn::Token>& history,
                                const std::vector<nn::Token>& prompt,
                                std::size_t max_new_tokens, float temperature,
                                std::uint64_t seed, const util::CancelToken* cancel);

/// Batched variant: the same generation loop, run in one slot of a shared
/// continuous-batching `nn::DecodeEngine` so concurrent requests coalesce
/// into shared decode steps. The session's KV state is imported into the
/// slot before the feed and exported back when the sequence finishes (stop,
/// cancel, or overflow), so the session stays coherent exactly as in the
/// serial path. Generated tokens are bit-identical to `generate_tokens`
/// for every batch composition.
GenerateOutcome generate_tokens_batched(nn::DecodeEngine& engine, nn::GptInference& inference,
                                        std::vector<nn::Token>& history,
                                        const std::vector<nn::Token>& prompt,
                                        std::size_t max_new_tokens, float temperature,
                                        std::uint64_t seed, const util::CancelToken* cancel);

}  // namespace astromlab::serve
