#include "serve/world.hpp"

#include <utility>

#include "eval/prompts.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace astromlab::serve {

std::uint64_t served_weight_seed(core::Scale scale, const core::WorldConfig& config) {
  // Scale-dependent offset so S7/S8/S70 don't share weights; +17 keeps the
  // stream clear of the world/tokenizer seeds derived from config.seed.
  return config.seed + 17 * (static_cast<std::uint64_t>(scale) + 1);
}

std::shared_ptr<ServedWorld> build_served_world(core::Scale scale,
                                                const core::WorldConfig& config,
                                                std::uint64_t generation,
                                                bool prefix_cache,
                                                const ServeModelOptions& options) {
  util::Stopwatch timer;
  core::World world = core::build_world(config);
  nn::GptConfig arch = core::scale_spec(scale, config).arch;
  // The BPE train may stop short of the configured vocab on tiny corpora;
  // the embedding table must match what the tokenizer actually emits.
  arch.vocab_size = world.tok.vocab_size();
  nn::GptModel model(arch);
  util::Rng rng(served_weight_seed(scale, config));
  model.init_weights(rng);
  auto served = build_served_world(scale, std::move(world), std::move(model), generation,
                                   prefix_cache, options);
  log::info() << "served world built: scale=" << core::scale_name(scale)
              << " generation=" << generation << " benchmark="
              << served->world.mcqs.benchmark.size() << "q in " << timer.seconds()
              << "s weight_dtype=" << tensor::weight_dtype_name(options.weight_dtype)
              << " paged_kv=" << (options.paged_kv ? "on" : "off");
  return served;
}

std::shared_ptr<ServedWorld> build_served_world(core::Scale scale, core::World world,
                                                nn::GptModel model, std::uint64_t generation,
                                                bool prefix_cache,
                                                const ServeModelOptions& options) {
  auto served = std::make_shared<ServedWorld>(scale, std::move(world), std::move(model));
  served->generation = generation;
  served->options = options;
  // Quantise before letter detection / prefix encode so every inference
  // this generation ever runs — setup included — sees the same weights.
  if (options.weight_dtype != tensor::WeightDtype::kF32) {
    served->model.quantize_weights(options.weight_dtype);
  }
  if (options.paged_kv) {
    served->kv_arena = std::make_shared<nn::KvArena>(options.kv_block_tokens,
                                                     served->model.config().d_model);
  }
  // Mirror run_token_benchmark's setup exactly (fewshot picker, letter
  // detection over the practice pool, two-prompt prefix cache) — the
  // HTTP-vs-offline bit-identity depends on these being the same inputs.
  const corpus::McqSplit& mcqs = served->world.mcqs;
  served->fewshot = eval::pick_fewshot_examples(mcqs.practice);
  served->letters = eval::detect_letter_tokens(served->model, served->world.tok,
                                               mcqs.practice, served->fewshot);
  if (prefix_cache && mcqs.benchmark.size() >= 2) {
    served->mcq_cache = eval::PrefixCache::build(
        served->model, served->world.tok,
        {eval::build_token_prompt(mcqs.benchmark[0], served->fewshot),
         eval::build_token_prompt(mcqs.benchmark[1], served->fewshot)},
        served->kv_arena);
  }
  return served;
}

}  // namespace astromlab::serve
