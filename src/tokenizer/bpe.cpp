#include "tokenizer/bpe.hpp"

#include <algorithm>
#include <cctype>
#include <mutex>
#include <stdexcept>

#include "util/io.hpp"

namespace astromlab::tokenizer {

namespace {

// Guards the shared word cache; encoding is called from parallel
// evaluation loops.
std::mutex g_cache_mutex;

bool is_letter(unsigned char c) { return std::isalpha(c) != 0 || c >= 0x80; }
bool is_digit(unsigned char c) { return std::isdigit(c) != 0; }

}  // namespace

std::vector<std::string> SpecialTokens::standard() {
  return {kBos, kEos, kPad, kSystem, kUser, kAssistant, kEndTurn};
}

std::vector<std::string> BpeTokenizer::pre_tokenize(std::string_view text) {
  std::vector<std::string> words;
  std::size_t i = 0;
  while (i < text.size()) {
    std::size_t start = i;
    // A pre-token may absorb one leading space so that " The" and "The"
    // become distinct tokens — the property the §V-B variant detection
    // exercises.
    if (text[i] == ' ') ++i;
    if (i < text.size() && is_letter(static_cast<unsigned char>(text[i]))) {
      while (i < text.size() && is_letter(static_cast<unsigned char>(text[i]))) ++i;
    } else if (i < text.size() && is_digit(static_cast<unsigned char>(text[i]))) {
      while (i < text.size() && is_digit(static_cast<unsigned char>(text[i]))) ++i;
    } else if (i < text.size()) {
      ++i;  // single punctuation/other byte (with optional leading space)
    }
    words.emplace_back(text.substr(start, i - start));
  }
  return words;
}

BpeTokenizer BpeTokenizer::train(std::string_view corpus, const BpeTrainConfig& config) {
  BpeTokenizer tok;
  tok.vocab_.reserve(config.vocab_size);
  for (int b = 0; b < 256; ++b) {
    tok.vocab_.push_back(std::string(1, static_cast<char>(b)));
  }

  // Unique pre-token -> (token id sequence, corpus frequency).
  struct Word {
    std::vector<TokenId> ids;
    std::size_t count = 0;
  };
  std::unordered_map<std::string, std::size_t> word_counts;
  for (const std::string& w : pre_tokenize(corpus)) ++word_counts[w];

  std::vector<Word> words;
  words.reserve(word_counts.size());
  for (const auto& [text, count] : word_counts) {
    Word w;
    w.count = count;
    w.ids.reserve(text.size());
    for (char c : text) w.ids.push_back(static_cast<TokenId>(static_cast<unsigned char>(c)));
    words.push_back(std::move(w));
  }
  // Deterministic processing order regardless of hash-map iteration.
  std::sort(words.begin(), words.end(), [&](const Word& a, const Word& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.ids < b.ids;
  });

  const std::size_t reserved = 256 + config.special_tokens.size();
  const std::size_t target_merges =
      config.vocab_size > reserved ? config.vocab_size - reserved : 0;

  using Pair = std::pair<TokenId, TokenId>;
  for (std::size_t merge = 0; merge < target_merges; ++merge) {
    std::unordered_map<Pair, std::size_t, PairHash> pair_counts;
    for (const Word& w : words) {
      for (std::size_t i = 0; i + 1 < w.ids.size(); ++i) {
        pair_counts[{w.ids[i], w.ids[i + 1]}] += w.count;
      }
    }
    Pair best{-1, -1};
    std::size_t best_count = 0;
    for (const auto& [pair, count] : pair_counts) {
      if (count > best_count || (count == best_count && count > 0 && pair < best)) {
        best = pair;
        best_count = count;
      }
    }
    if (best_count < std::max<std::size_t>(config.min_pair_count, 1)) break;

    const TokenId new_id = static_cast<TokenId>(tok.vocab_.size());
    tok.vocab_.push_back(tok.vocab_[static_cast<std::size_t>(best.first)] +
                         tok.vocab_[static_cast<std::size_t>(best.second)]);
    tok.merge_to_id_[best] = new_id;
    tok.merge_ranks_[best] = merge;

    for (Word& w : words) {
      if (w.ids.size() < 2) continue;
      std::vector<TokenId> merged;
      merged.reserve(w.ids.size());
      std::size_t i = 0;
      while (i < w.ids.size()) {
        if (i + 1 < w.ids.size() && w.ids[i] == best.first && w.ids[i + 1] == best.second) {
          merged.push_back(new_id);
          i += 2;
        } else {
          merged.push_back(w.ids[i]);
          ++i;
        }
      }
      w.ids = std::move(merged);
    }
  }

  tok.first_special_id_ = static_cast<TokenId>(tok.vocab_.size());
  for (const std::string& special : config.special_tokens) {
    tok.special_lookup_[special] = static_cast<TokenId>(tok.vocab_.size());
    tok.vocab_.push_back(special);
  }
  for (std::size_t id = 0; id < tok.vocab_.size(); ++id) {
    tok.token_lookup_.emplace(tok.vocab_[id], static_cast<TokenId>(id));
  }
  return tok;
}

std::vector<TokenId> BpeTokenizer::encode_word(std::string_view word) const {
  {
    std::lock_guard<std::mutex> lock(g_cache_mutex);
    const auto it = word_cache_.find(std::string(word));
    if (it != word_cache_.end()) return it->second;
  }
  std::vector<TokenId> ids;
  ids.reserve(word.size());
  for (char c : word) ids.push_back(static_cast<TokenId>(static_cast<unsigned char>(c)));

  // Standard BPE: repeatedly merge the lowest-rank adjacent pair.
  while (ids.size() > 1) {
    std::size_t best_rank = static_cast<std::size_t>(-1);
    std::size_t best_pos = 0;
    for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
      const auto it = merge_ranks_.find({ids[i], ids[i + 1]});
      if (it != merge_ranks_.end() && it->second < best_rank) {
        best_rank = it->second;
        best_pos = i;
      }
    }
    if (best_rank == static_cast<std::size_t>(-1)) break;
    const TokenId merged = merge_to_id_.at({ids[best_pos], ids[best_pos + 1]});
    ids[best_pos] = merged;
    ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(best_pos) + 1);
  }

  {
    std::lock_guard<std::mutex> lock(g_cache_mutex);
    word_cache_.emplace(std::string(word), ids);
  }
  return ids;
}

std::vector<TokenId> BpeTokenizer::encode(std::string_view text) const {
  std::vector<TokenId> out;
  out.reserve(text.size() / 3 + 8);
  std::size_t pos = 0;
  while (pos < text.size()) {
    // Greedy special-token match at this position.
    bool matched_special = false;
    if (text[pos] == '<') {
      for (const auto& [name, id] : special_lookup_) {
        if (text.substr(pos, name.size()) == name) {
          out.push_back(id);
          pos += name.size();
          matched_special = true;
          break;
        }
      }
    }
    if (matched_special) continue;

    // Find the next special token (if any) and BPE-encode up to it.
    std::size_t next_special = text.size();
    for (const auto& [name, id] : special_lookup_) {
      (void)id;
      const std::size_t hit = text.find(name, pos);
      if (hit != std::string_view::npos) next_special = std::min(next_special, hit);
    }
    const std::string_view chunk = text.substr(pos, next_special - pos);
    for (const std::string& word : pre_tokenize(chunk)) {
      const std::vector<TokenId> ids = encode_word(word);
      out.insert(out.end(), ids.begin(), ids.end());
    }
    pos = next_special;
  }
  return out;
}

std::string BpeTokenizer::decode(const std::vector<TokenId>& ids) const {
  std::string out;
  for (TokenId id : ids) out += decode_token(id);
  return out;
}

std::string BpeTokenizer::decode_token(TokenId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= vocab_.size()) {
    throw std::out_of_range("token id out of range: " + std::to_string(id));
  }
  return vocab_[static_cast<std::size_t>(id)];
}

std::optional<TokenId> BpeTokenizer::token_to_id(std::string_view token) const {
  const auto it = token_lookup_.find(std::string(token));
  if (it == token_lookup_.end()) return std::nullopt;
  return it->second;
}

bool BpeTokenizer::is_special(TokenId id) const { return id >= first_special_id_; }

TokenId BpeTokenizer::require_special(const char* name) const {
  const auto it = special_lookup_.find(name);
  if (it == special_lookup_.end()) {
    throw std::logic_error(std::string("special token not registered: ") + name);
  }
  return it->second;
}

void BpeTokenizer::save(const std::filesystem::path& path) const {
  util::BinaryWriter writer(path);
  writer.write_u32(0x42504531u);  // "BPE1"
  writer.write_u64(vocab_.size());
  for (const std::string& token : vocab_) writer.write_string(token);
  writer.write_u64(merge_ranks_.size());
  // Merges serialised in rank order for determinism.
  std::vector<std::pair<std::pair<TokenId, TokenId>, std::size_t>> merges(
      merge_ranks_.begin(), merge_ranks_.end());
  std::sort(merges.begin(), merges.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  for (const auto& [pair, rank] : merges) {
    (void)rank;
    writer.write_u32(static_cast<std::uint32_t>(pair.first));
    writer.write_u32(static_cast<std::uint32_t>(pair.second));
    writer.write_u32(static_cast<std::uint32_t>(merge_to_id_.at(pair)));
  }
  writer.write_u32(static_cast<std::uint32_t>(first_special_id_));
  writer.write_u64(special_lookup_.size());
  std::vector<std::pair<std::string, TokenId>> specials(special_lookup_.begin(),
                                                        special_lookup_.end());
  std::sort(specials.begin(), specials.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  for (const auto& [name, id] : specials) {
    writer.write_string(name);
    writer.write_u32(static_cast<std::uint32_t>(id));
  }
  writer.close();
}

BpeTokenizer BpeTokenizer::load(const std::filesystem::path& path) {
  util::BinaryReader reader(path);
  if (reader.read_u32() != 0x42504531u) {
    throw util::IoError("not a tokenizer file: " + path.string());
  }
  BpeTokenizer tok;
  const std::uint64_t vocab_size = reader.read_u64();
  tok.vocab_.reserve(vocab_size);
  for (std::uint64_t i = 0; i < vocab_size; ++i) tok.vocab_.push_back(reader.read_string());
  const std::uint64_t merge_count = reader.read_u64();
  for (std::uint64_t rank = 0; rank < merge_count; ++rank) {
    const TokenId left = static_cast<TokenId>(reader.read_u32());
    const TokenId right = static_cast<TokenId>(reader.read_u32());
    const TokenId merged = static_cast<TokenId>(reader.read_u32());
    tok.merge_to_id_[{left, right}] = merged;
    tok.merge_ranks_[{left, right}] = rank;
  }
  tok.first_special_id_ = static_cast<TokenId>(reader.read_u32());
  const std::uint64_t special_count = reader.read_u64();
  for (std::uint64_t i = 0; i < special_count; ++i) {
    const std::string name = reader.read_string();
    const TokenId id = static_cast<TokenId>(reader.read_u32());
    tok.special_lookup_[name] = id;
  }
  for (std::size_t id = 0; id < tok.vocab_.size(); ++id) {
    tok.token_lookup_.emplace(tok.vocab_[id], static_cast<TokenId>(id));
  }
  return tok;
}

}  // namespace astromlab::tokenizer
