#pragma once
// Byte-level byte-pair-encoding tokenizer (GPT-2 family style).
//
// The paper's token benchmarking method depends on a real tokenizer
// property: the answer letter may be encoded as "A" or " A" depending on
// the model's vocabulary, and the evaluator must detect which representation
// the model actually uses (paper §V-B). A byte-level BPE trained on a
// space-pre-tokenised corpus reproduces exactly that ambiguity: both "A"
// (byte token) and " A" (merged token) typically exist.
//
// Base vocabulary: the 256 byte values. Special tokens (chat markers,
// BOS/EOS) are appended after training and matched greedily before BPE
// segmentation during encoding.

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace astromlab::tokenizer {

using TokenId = std::int32_t;

/// Well-known special-token names used by the chat template.
struct SpecialTokens {
  static constexpr const char* kBos = "<|bos|>";
  static constexpr const char* kEos = "<|eos|>";
  static constexpr const char* kPad = "<|pad|>";
  static constexpr const char* kSystem = "<|system|>";
  static constexpr const char* kUser = "<|user|>";
  static constexpr const char* kAssistant = "<|assistant|>";
  static constexpr const char* kEndTurn = "<|end|>";

  /// The standard set registered by `BpeTokenizer::train`.
  static std::vector<std::string> standard();
};

struct BpeTrainConfig {
  /// Total vocabulary size including the 256 byte tokens and the special
  /// tokens (merge count is derived from this).
  std::size_t vocab_size = 512;
  /// Special token strings to reserve (standard chat set by default).
  std::vector<std::string> special_tokens = SpecialTokens::standard();
  /// Pre-tokens occurring fewer times than this are ignored while counting
  /// merge candidates (speeds up training on large corpora).
  std::size_t min_pair_count = 2;
};

class BpeTokenizer {
 public:
  BpeTokenizer() = default;

  /// Learns merges from `corpus` until the configured vocab size.
  static BpeTokenizer train(std::string_view corpus, const BpeTrainConfig& config);

  /// Encodes UTF-8/byte text to token ids. Special tokens present verbatim
  /// in the text are emitted as their single ids.
  std::vector<TokenId> encode(std::string_view text) const;

  /// Decodes ids back to the original byte string (lossless for non-special
  /// ids; special tokens render as their literal names).
  std::string decode(const std::vector<TokenId>& ids) const;
  std::string decode_token(TokenId id) const;

  std::size_t vocab_size() const { return vocab_.size(); }
  std::size_t merge_count() const { return merge_ranks_.size(); }

  /// Id of an exact token string (byte sequence or special token), if that
  /// exact string is a single token in the vocabulary.
  std::optional<TokenId> token_to_id(std::string_view token) const;

  /// True if the id is one of the registered special tokens.
  bool is_special(TokenId id) const;

  TokenId bos_id() const { return require_special(SpecialTokens::kBos); }
  TokenId eos_id() const { return require_special(SpecialTokens::kEos); }
  TokenId pad_id() const { return require_special(SpecialTokens::kPad); }
  TokenId system_id() const { return require_special(SpecialTokens::kSystem); }
  TokenId user_id() const { return require_special(SpecialTokens::kUser); }
  TokenId assistant_id() const { return require_special(SpecialTokens::kAssistant); }
  TokenId end_turn_id() const { return require_special(SpecialTokens::kEndTurn); }

  void save(const std::filesystem::path& path) const;
  static BpeTokenizer load(const std::filesystem::path& path);

  /// Splits raw text into pre-tokens: maximal runs of (optional leading
  /// space +) letters, digits, or single other bytes. Exposed for tests.
  static std::vector<std::string> pre_tokenize(std::string_view text);

 private:
  TokenId require_special(const char* name) const;
  std::vector<TokenId> encode_word(std::string_view word) const;

  // vocab_[id] is the byte string of the token.
  std::vector<std::string> vocab_;
  // Pair (left id, right id) -> merged token id; rank == merge order.
  struct PairHash {
    std::size_t operator()(const std::pair<TokenId, TokenId>& p) const {
      return std::hash<std::uint64_t>{}(
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.first)) << 32) |
          static_cast<std::uint32_t>(p.second));
    }
  };
  std::unordered_map<std::pair<TokenId, TokenId>, TokenId, PairHash> merge_to_id_;
  std::unordered_map<std::pair<TokenId, TokenId>, std::size_t, PairHash> merge_ranks_;
  std::unordered_map<std::string, TokenId> token_lookup_;
  std::unordered_map<std::string, TokenId> special_lookup_;
  TokenId first_special_id_ = 0;
  // Per-call memoisation of word -> ids (BPE is deterministic per word).
  mutable std::unordered_map<std::string, std::vector<TokenId>> word_cache_;
};

}  // namespace astromlab::tokenizer
