#include "eval/prefix_cache.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace astromlab::eval {
namespace {

struct CacheMetrics {
  util::metrics::Counter& built;
  util::metrics::Counter& prompts;
  util::metrics::Counter& hits;
  util::metrics::Counter& misses;
  util::metrics::Counter& reused_tokens;
  util::metrics::Counter& evictions;
  util::metrics::Gauge& resident_bytes;
};

CacheMetrics& cache_metrics() {
  auto& reg = util::metrics::registry();
  static CacheMetrics m{reg.counter("prefix_cache.built"),
                        reg.counter("prefix_cache.prompts"),
                        reg.counter("prefix_cache.hits"),
                        reg.counter("prefix_cache.misses"),
                        reg.counter("prefix_cache.reused_tokens"),
                        reg.counter("prefix_cache.evictions"),
                        reg.gauge("prefix_cache.resident_bytes")};
  return m;
}

}  // namespace

namespace {

std::vector<nn::Token> encode_prompt(const tokenizer::BpeTokenizer& tok,
                                     const std::string& prompt) {
  const std::vector<tokenizer::TokenId> ids = tok.encode(prompt);
  return {ids.begin(), ids.end()};
}

}  // namespace

std::unique_ptr<PrefixCache> PrefixCache::build(
    const nn::GptModel& model, const tokenizer::BpeTokenizer& tok,
    const std::vector<std::string>& sample_prompts, std::shared_ptr<nn::KvArena> arena) {
  if (sample_prompts.size() < 2) return nullptr;

  std::vector<nn::Token> common = encode_prompt(tok, sample_prompts.front());
  for (std::size_t i = 1; i < sample_prompts.size() && !common.empty(); ++i) {
    const std::vector<nn::Token> other = encode_prompt(tok, sample_prompts[i]);
    common.resize(nn::common_token_prefix(common, other));
  }
  // The prefix must leave room for at least the question itself.
  const std::size_t ctx = model.config().ctx_len;
  if (common.size() >= ctx) common.resize(ctx - 1);
  if (common.empty()) return nullptr;

  const util::trace::Span span("prefix_cache.encode", "cache", "tokens",
                               static_cast<std::uint64_t>(common.size()));
  std::unique_ptr<PrefixCache> cache(new PrefixCache(model, std::move(arena)));
  try {
    for (const nn::Token token : common) cache->encoder_.step(token);
  } catch (const std::bad_alloc&) {
    // The encoder's KV cache does not fit the memory budget (or the heap).
    // Building happens before the supervisor's per-question fault domains
    // exist, so degrade here: the cache is purely an optimisation and a
    // nullptr means every prompt runs a full prefill with identical scores.
    // The encoder's partial charge is released with `cache`.
    util::metrics::registry().counter("prefix_cache.build_denials").add();
    log::warn() << "prefix cache disabled: encoder K/V does not fit the memory "
                   "budget; prompts run uncached (scores unchanged)";
    return nullptr;
  }
  cache->snapshot_ = cache->encoder_.snapshot();
  cache_metrics().built.add();
  cache_metrics().resident_bytes.add(static_cast<std::int64_t>(cache->encoder_.kv_bytes()));
  log::debug() << "prefix cache: encoded shared prefix of " << common.size() << " tokens";
  return cache;
}

std::size_t PrefixCache::fork(nn::GptInference& inference,
                              const std::vector<nn::Token>& prompt_tokens) const {
  const util::trace::Span span("prefix_cache.fork", "cache");
  std::shared_lock<std::shared_mutex> lock(evict_mutex_);
  if (evicted_) {
    // Ladder rung 1 fired: run the prompt uncached. Same logits, same
    // scores — only the prefill cost changes.
    inference.reset();
    note_prompt(prompt_tokens.size(), 0);
    return 0;
  }
  std::size_t common = nn::common_token_prefix(snapshot_.tokens(), prompt_tokens);
  if (!prompt_tokens.empty()) common = std::min(common, prompt_tokens.size() - 1);
  inference.reset();
  if (common > 0) inference.fork_from(snapshot_, common);
  note_prompt(prompt_tokens.size(), common);
  return common;
}

std::size_t PrefixCache::fork(nn::BatchedInference& batch, std::size_t slot,
                              const std::vector<nn::Token>& prompt_tokens) const {
  const util::trace::Span span("prefix_cache.fork", "cache");
  std::shared_lock<std::shared_mutex> lock(evict_mutex_);
  if (evicted_) {
    batch.reset_slot(slot);
    note_prompt(prompt_tokens.size(), 0);
    return 0;
  }
  // Same reuse computation as the serial overload, so a question forked
  // into a batch slot feeds exactly the tokens it would have fed serially.
  std::size_t common = nn::common_token_prefix(snapshot_.tokens(), prompt_tokens);
  if (!prompt_tokens.empty()) common = std::min(common, prompt_tokens.size() - 1);
  batch.reset_slot(slot);
  if (common > 0) batch.fork_slot(slot, snapshot_, common);
  note_prompt(prompt_tokens.size(), common);
  return common;
}

std::size_t PrefixCache::evict() {
  std::unique_lock<std::shared_mutex> lock(evict_mutex_);
  if (evicted_) return 0;
  evicted_ = true;
  const std::size_t freed = encoder_.release_kv();  // also invalidates snapshot_
  evictions_.fetch_add(1, std::memory_order_relaxed);
  cache_metrics().evictions.add();
  cache_metrics().resident_bytes.add(-static_cast<std::int64_t>(freed));
  log::warn() << "prefix cache evicted under memory pressure (" << freed
              << " bytes returned to budget); later prompts run uncached";
  return freed;
}

bool PrefixCache::evicted() const {
  std::shared_lock<std::shared_mutex> lock(evict_mutex_);
  return evicted_;
}

std::size_t PrefixCache::resident_bytes() const {
  std::shared_lock<std::shared_mutex> lock(evict_mutex_);
  return encoder_.kv_bytes();
}

void PrefixCache::note_prompt(std::size_t prompt_token_count,
                              std::size_t reused_token_count) const {
  prompts_.fetch_add(1, std::memory_order_relaxed);
  prompt_tokens_.fetch_add(prompt_token_count, std::memory_order_relaxed);
  reused_tokens_.fetch_add(reused_token_count, std::memory_order_relaxed);
  cache_metrics().prompts.add();
  (reused_token_count > 0 ? cache_metrics().hits : cache_metrics().misses).add();
  cache_metrics().reused_tokens.add(reused_token_count);
}

PrefixCacheStats PrefixCache::stats() const {
  PrefixCacheStats stats;
  stats.prompts = prompts_.load(std::memory_order_relaxed);
  stats.prompt_tokens = prompt_tokens_.load(std::memory_order_relaxed);
  stats.reused_tokens = reused_tokens_.load(std::memory_order_relaxed);
  stats.resident_bytes = resident_bytes();
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace astromlab::eval
