#include "eval/full_instruct.hpp"

#include "eval/answer_extract.hpp"
#include "eval/prompts.hpp"
#include "nn/sampler.hpp"

namespace astromlab::eval {

FullInstructOutcome full_instruct_one(const nn::GptModel& model,
                                      const tokenizer::BpeTokenizer& tok,
                                      const corpus::McqItem& item,
                                      const FullInstructConfig& config) {
  FullInstructOutcome outcome;
  outcome.result.correct = static_cast<int>(item.correct);
  outcome.result.tier = item.tier;

  const std::string prompt = build_instruct_prompt(item);
  const std::vector<tokenizer::TokenId> prompt_ids = tok.encode(prompt);
  std::vector<nn::Token> prompt_tokens(prompt_ids.begin(), prompt_ids.end());

  nn::SampleConfig sample;
  sample.temperature = config.temperature;
  sample.max_new_tokens = config.max_new_tokens;
  sample.stop_tokens = {tok.end_turn_id(), tok.eos_id()};
  sample.max_wall_seconds = config.max_seconds_per_question;
  sample.cancel = config.cancel;

  util::Rng rng(config.seed);
  nn::Sampler sampler(model);
  const nn::SampleResult generated = sampler.generate(prompt_tokens, sample, rng);

  std::vector<tokenizer::TokenId> out_ids(generated.tokens.begin(), generated.tokens.end());
  outcome.raw_output = tok.decode(out_ids);

  if (generated.timed_out || generated.cancelled) {
    // Watchdog / cancellation abort: the answer is incomplete by
    // construction, so degrade to unanswered rather than extracting from a
    // cut-off generation.
    outcome.timed_out = generated.timed_out;
    outcome.cancelled = generated.cancelled;
    outcome.result.method = ExtractionMethod::kFailed;
    outcome.result.predicted = -1;
    outcome.result.degraded = true;
    return outcome;
  }

  const ExtractedAnswer extracted = extract_answer(outcome.raw_output, item.options);
  outcome.result.method = extracted.method;
  outcome.result.predicted = extracted.letter.value_or(-1);
  return outcome;
}

std::vector<QuestionResult> run_full_instruct_benchmark(
    const nn::GptModel& model, const tokenizer::BpeTokenizer& tok,
    const std::vector<corpus::McqItem>& benchmark, const FullInstructConfig& config,
    EvalJournal* journal, const EvalRunOptions& opts) {
  std::vector<QuestionResult> results(benchmark.size());
  std::vector<std::size_t> pending;
  for (std::size_t q = 0; q < benchmark.size(); ++q) {
    results[q].correct = static_cast<int>(benchmark[q].correct);
    results[q].tier = benchmark[q].tier;
    if (journal != nullptr) {
      // Reuse a journalled answer only when it matches the current
      // benchmark item (a stale journal from another world must not leak).
      const auto prior = journal->lookup(q);
      if (prior && prior->correct == static_cast<int>(benchmark[q].correct) &&
          prior->tier == benchmark[q].tier) {
        results[q] = *prior;
        continue;
      }
    }
    pending.push_back(q);
  }

  // The supervisor's per-attempt deadline composes with the config's
  // in-sampler watchdog: whichever is stricter wins.
  EvalRunOptions effective = opts;
  effective.question_deadline_seconds =
      merge_deadlines(opts.question_deadline_seconds, config.max_seconds_per_question);

  Supervisor supervisor(effective);
  supervisor.run(
      results, pending,
      [&](std::size_t q, const util::CancelToken& cancel) {
        FullInstructConfig per_question = config;
        per_question.cancel = &cancel;
        return full_instruct_one(model, tok, benchmark[q], per_question).result;
      },
      journal);
  return results;
}

}  // namespace astromlab::eval
