#include "eval/full_instruct.hpp"

#include <algorithm>
#include <memory>
#include <optional>

#include "eval/answer_extract.hpp"
#include "eval/prompts.hpp"
#include "nn/sampler.hpp"
#include "util/trace.hpp"

namespace astromlab::eval {

FullInstructOutcome full_instruct_one(const nn::GptModel& model,
                                      const tokenizer::BpeTokenizer& tok,
                                      const corpus::McqItem& item,
                                      const FullInstructConfig& config,
                                      nn::Sampler* sampler) {
  const util::trace::Span span("eval.full_instruct", "eval");
  FullInstructOutcome outcome;
  outcome.result.correct = static_cast<int>(item.correct);
  outcome.result.tier = item.tier;

  const std::string prompt = build_instruct_prompt(item);
  const std::vector<tokenizer::TokenId> prompt_ids = tok.encode(prompt);
  std::vector<nn::Token> prompt_tokens(prompt_ids.begin(), prompt_ids.end());

  nn::SampleConfig sample;
  sample.temperature = config.temperature;
  sample.max_new_tokens = config.max_new_tokens;
  sample.stop_tokens = {tok.end_turn_id(), tok.eos_id()};
  sample.max_wall_seconds = config.max_seconds_per_question;
  sample.cancel = config.cancel;
  if (config.prefix_cache != nullptr) {
    // Route the sampler's prefix fork through the cache's guarded path
    // (reader lock held for the copy-on-fork window) instead of handing it
    // a raw snapshot: a concurrent evict() — degradation-ladder rung 1 on
    // another worker — frees the encoder rows, and an unguarded fork would
    // read them mid-release. fork() also records the reuse accounting.
    const PrefixCache* cache = config.prefix_cache;
    sample.prefix_fork = [cache](nn::GptInference& inference,
                                 const std::vector<nn::Token>& prompt) {
      return cache->fork(inference, prompt);
    };
    sample.prefix_fork_batched = [cache](nn::BatchedInference& batch, std::size_t slot,
                                         const std::vector<nn::Token>& prompt) {
      return cache->fork(batch, slot, prompt);
    };
  }

  util::Rng rng(config.seed);
  nn::SampleResult generated;
  if (config.engine != nullptr) {
    // Batched path: the generation shares decode steps with whatever else
    // the engine has in flight. Same sampling loop, same logits bits.
    generated = nn::generate_with_engine(*config.engine, prompt_tokens, sample, rng);
  } else {
    std::optional<nn::Sampler> local;
    nn::Sampler& active = sampler != nullptr ? *sampler : local.emplace(model);
    generated = active.generate(prompt_tokens, sample, rng);
  }

  std::vector<tokenizer::TokenId> out_ids(generated.tokens.begin(), generated.tokens.end());
  outcome.raw_output = tok.decode(out_ids);

  if (generated.timed_out || generated.cancelled) {
    // Watchdog / cancellation abort: the answer is incomplete by
    // construction, so degrade to unanswered rather than extracting from a
    // cut-off generation.
    outcome.timed_out = generated.timed_out;
    outcome.cancelled = generated.cancelled;
    outcome.result.method = ExtractionMethod::kFailed;
    outcome.result.predicted = -1;
    outcome.result.degraded = true;
    return outcome;
  }

  const ExtractedAnswer extracted = extract_answer(outcome.raw_output, item.options);
  outcome.result.method = extracted.method;
  outcome.result.predicted = extracted.letter.value_or(-1);
  return outcome;
}

std::vector<QuestionResult> run_full_instruct_benchmark(
    const nn::GptModel& model, const tokenizer::BpeTokenizer& tok,
    const std::vector<corpus::McqItem>& benchmark, const FullInstructConfig& config,
    EvalJournal* journal, const EvalRunOptions& opts, PrefixCacheStats* cache_stats,
    SupervisorStats* run_stats) {
  const util::trace::Span bench_span("eval.full_instruct_benchmark", "eval");
  if (cache_stats != nullptr) *cache_stats = PrefixCacheStats{};
  std::vector<QuestionResult> results(benchmark.size());
  std::vector<std::size_t> pending;
  for (std::size_t q = 0; q < benchmark.size(); ++q) {
    results[q].correct = static_cast<int>(benchmark[q].correct);
    results[q].tier = benchmark[q].tier;
    if (journal != nullptr) {
      // Reuse a journalled answer only when it matches the current
      // benchmark item (a stale journal from another world must not leak).
      const auto prior = journal->lookup(q);
      if (prior && prior->correct == static_cast<int>(benchmark[q].correct) &&
          prior->tier == benchmark[q].tier) {
        results[q] = *prior;
        continue;
      }
    }
    pending.push_back(q);
  }

  // The supervisor's per-attempt deadline composes with the config's
  // in-sampler watchdog: whichever is stricter wins.
  EvalRunOptions effective = opts;
  effective.question_deadline_seconds =
      merge_deadlines(opts.question_deadline_seconds, config.max_seconds_per_question);

  // Continuous-batching decode: one shared engine; concurrent questions'
  // generations coalesce into batched steps. Workers are raised to at
  // least the slot count so the batch can actually fill.
  std::unique_ptr<nn::DecodeEngine> engine;
  if (effective.decode_batch > 1) {
    effective.workers = std::max(effective.workers, effective.decode_batch);
    engine = std::make_unique<nn::DecodeEngine>(model, effective.decode_batch);
  }

  // Shared system/instruct preamble: encode once, fork per question. Built
  // from the first two question prompts (token-level common prefix).
  std::unique_ptr<PrefixCache> cache;
  if (effective.prefix_cache && benchmark.size() >= 2) {
    cache = PrefixCache::build(
        model, tok, {build_instruct_prompt(benchmark[0]), build_instruct_prompt(benchmark[1])});
  }
  // Per-worker samplers: each owns its own KV fork buffers, all sharing
  // the one immutable snapshot read-only.
  std::vector<std::unique_ptr<nn::Sampler>> samplers(effective.worker_slots());
  for (auto& slot : samplers) slot = std::make_unique<nn::Sampler>(model);

  // Degradation-ladder hooks: rung 1 drops the shared preamble snapshot
  // (the sampler falls back to full prefill on the stale handle — scores
  // unchanged), rung 2 frees the KV cache of each retired worker slot.
  effective.evict_cache = [&cache]() -> std::size_t {
    return cache != nullptr ? cache->evict() : 0;
  };
  effective.release_slot_memory = [&samplers, &engine](std::size_t slot) -> std::size_t {
    std::size_t freed = slot < samplers.size() && samplers[slot] != nullptr
                            ? samplers[slot]->release_kv()
                            : 0;
    if (engine != nullptr) freed += engine->release_idle_kv();
    return freed;
  };

  Supervisor supervisor(effective);
  supervisor.run(
      results, pending,
      [&](std::size_t q, std::size_t slot, const util::CancelToken& cancel) {
        FullInstructConfig per_question = config;
        per_question.cancel = &cancel;
        if (cache != nullptr) per_question.prefix_cache = cache.get();
        per_question.engine = engine.get();
        return full_instruct_one(model, tok, benchmark[q], per_question, samplers[slot].get())
            .result;
      },
      journal);
  if (cache != nullptr && cache_stats != nullptr) *cache_stats = cache->stats();
  if (run_stats != nullptr) *run_stats = supervisor.stats();
  return results;
}

}  // namespace astromlab::eval
