#pragma once
// Append-only per-question result journal for resumable benchmarking.
//
// The 4,425-question benchmark evaluated three ways (paper Table I) is the
// longest-running stage of a study; a crash must not discard hours of
// finished questions. Each completed question is appended to a JSONL file
// and flushed immediately, so a restarted run replays only unanswered
// questions and produces the identical score report. A torn final line
// (kill mid-append) is detected at load, *truncated off the file* — so the
// next append starts on a clean line instead of merging into the torn
// bytes — and that one question is simply re-run.
//
// `record` is thread-safe (internal mutex) and tolerates out-of-order
// question indices, so the parallel evaluation supervisor can journal from
// any worker; appends route through `util::FaultInjector` so tests can
// deterministically tear a line written under concurrency.
//
// Integrity: every line carries a CRC-32 over its canonical payload
// (`line_crc`), so bit-rot or a merged torn append is detected and
// dropped at load even when the damaged bytes still parse as JSON. Lines
// without a `crc` field (pre-CRC journals) are accepted for
// compatibility. An unreadable journal file (I/O error rather than
// corruption) degrades to an empty journal with a warning — the affected
// questions re-run; the study never aborts at startup.

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>

#include "eval/scorer.hpp"

namespace astromlab::eval {

class EvalJournal {
 public:
  /// Inactive journal: lookups miss, record() is a no-op.
  EvalJournal() = default;

  /// Opens (and loads) the journal at `path`; malformed lines are skipped
  /// with a warning and a torn trailing line is truncated off the file.
  explicit EvalJournal(std::filesystem::path path);

  bool active() const { return !path_.empty(); }
  std::size_t size() const;
  const std::filesystem::path& path() const { return path_; }

  /// Result journalled for 0-based benchmark question `question`, if any.
  std::optional<QuestionResult> lookup(std::size_t question) const;

  /// Appends one line and flushes before returning (crash-durable).
  /// Thread-safe; questions may arrive in any order. Transient injected
  /// write failures are retried a bounded number of times before the
  /// IoError propagates.
  void record(std::size_t question, const QuestionResult& result);

  /// CRC-32 over the canonical journal payload of (question, result):
  /// the integrity tag stored as each line's "crc" field.
  static std::uint32_t line_crc(std::size_t question, const QuestionResult& result);

  /// Deletes the journal file (call once the summary has been persisted).
  void discard();

 private:
  std::filesystem::path path_;
  mutable std::mutex mutex_;  ///< guards entries_ and the file append
  std::map<std::size_t, QuestionResult> entries_;
};

}  // namespace astromlab::eval
