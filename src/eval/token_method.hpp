#pragma once
// Next-token (logit) benchmarking method (paper §V-B / §V-C, Appendix C).
//
// The model is shown the two-shot exam prompt ending in "Answer:" and the
// answer is the letter whose token has the highest logit at the next
// position. Two real-tokenizer subtleties are handled exactly as the paper
// describes:
//
//  * Token representation variants. Depending on the learned BPE merges
//    the answer may surface as the single token " A" (leading space) or as
//    the bare byte token "A" (after the space is consumed separately). The
//    evaluator detects the representation the model actually uses by
//    scanning the top-ten tokens of its output distribution on calibration
//    prompts (§V-B).
//  * Deterministic inference. Temperature is fixed at 0 — logit argmax —
//    matching the paper's reproducibility setting.

#include <array>
#include <optional>
#include <vector>

#include "corpus/mcq.hpp"
#include "eval/journal.hpp"
#include "eval/prefix_cache.hpp"
#include "eval/scorer.hpp"
#include "eval/supervisor.hpp"
#include "nn/decode_engine.hpp"
#include "nn/gpt.hpp"
#include "tokenizer/bpe.hpp"
#include "util/cancel.hpp"

namespace astromlab::eval {

/// Resolved answer-letter token ids for one (model, tokenizer) pair.
struct LetterTokens {
  std::array<tokenizer::TokenId, 4> ids{};  ///< tokens for A..D
  bool leading_space = false;   ///< ids are " A".." D" single tokens
  bool feed_space_first = false;  ///< feed " " before probing bare letters
};

/// Detects which representation the model uses: builds a few calibration
/// prompts from `calibration` items, reads the model's top-10 next tokens
/// after "Answer:", and picks the letter-token family that appears there.
/// Falls back to bare letters (with an explicit space feed) when the
/// vocabulary has no single leading-space letter tokens.
LetterTokens detect_letter_tokens(const nn::GptModel& model,
                                  const tokenizer::BpeTokenizer& tok,
                                  const std::vector<corpus::McqItem>& calibration,
                                  const std::vector<corpus::McqItem>& fewshot);

/// Per-question knobs for the token-method runners.
struct TokenMethodConfig {
  /// Wall-clock budget per question, enforced in-flight through the
  /// supervisor's CancelToken during the KV-cache prompt feed (the token
  /// method generates nothing, so the prompt feed is the whole cost).
  /// 0 disables the watchdog.
  double max_seconds_per_question = 0.0;
};

/// Evaluates one question: returns the argmax letter (0..3), or -1 when the
/// prompt does not fit the context window or `cancel` fired mid-feed.
/// With a `prefix_cache`, the shared two-shot block is forked from its KV
/// snapshot instead of re-encoded (bit-identical logits either way); with a
/// `scratch` inference, that buffer is reset and reused instead of
/// allocating fresh KV caches per question. With an `engine`, the prompt
/// feed runs through a shared continuous-batching `nn::DecodeEngine` slot
/// (`scratch` is then unused); the answer is bit-identical to the serial
/// path for every batch composition.
int token_predict(const nn::GptModel& model, const tokenizer::BpeTokenizer& tok,
                  const LetterTokens& letters, const corpus::McqItem& item,
                  const std::vector<corpus::McqItem>& fewshot,
                  const util::CancelToken* cancel = nullptr,
                  const PrefixCache* prefix_cache = nullptr,
                  nn::GptInference* scratch = nullptr,
                  nn::DecodeEngine* engine = nullptr);

/// Runs the token method over the whole benchmark under the fault-isolated
/// Supervisor. With an active `journal`, already-answered questions are
/// skipped (their journalled results reused) and fresh results are appended
/// durably, making a killed run resumable. `opts` controls parallelism,
/// deadlines, retries, straggler cancellation, and shared-prefix KV reuse
/// (`opts.prefix_cache`); defaults reproduce the serial reference behaviour
/// bit-for-bit. When `cache_stats` is non-null it receives the prefill
/// reuse accounting of the run (zeros when the cache was off or unusable).
/// When `run_stats` is non-null it receives the supervisor's telemetry —
/// retries, degradations, and per-question latency percentiles over the
/// freshly evaluated questions.
std::vector<QuestionResult> run_token_benchmark(
    const nn::GptModel& model, const tokenizer::BpeTokenizer& tok,
    const std::vector<corpus::McqItem>& benchmark,
    const std::vector<corpus::McqItem>& practice_pool, EvalJournal* journal = nullptr,
    const TokenMethodConfig& config = {}, const EvalRunOptions& opts = {},
    PrefixCacheStats* cache_stats = nullptr, SupervisorStats* run_stats = nullptr);

}  // namespace astromlab::eval
