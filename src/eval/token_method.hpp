#pragma once
// Next-token (logit) benchmarking method (paper §V-B / §V-C, Appendix C).
//
// The model is shown the two-shot exam prompt ending in "Answer:" and the
// answer is the letter whose token has the highest logit at the next
// position. Two real-tokenizer subtleties are handled exactly as the paper
// describes:
//
//  * Token representation variants. Depending on the learned BPE merges
//    the answer may surface as the single token " A" (leading space) or as
//    the bare byte token "A" (after the space is consumed separately). The
//    evaluator detects the representation the model actually uses by
//    scanning the top-ten tokens of its output distribution on calibration
//    prompts (§V-B).
//  * Deterministic inference. Temperature is fixed at 0 — logit argmax —
//    matching the paper's reproducibility setting.

#include <array>
#include <optional>
#include <vector>

#include "corpus/mcq.hpp"
#include "eval/journal.hpp"
#include "eval/scorer.hpp"
#include "nn/gpt.hpp"
#include "tokenizer/bpe.hpp"

namespace astromlab::eval {

/// Resolved answer-letter token ids for one (model, tokenizer) pair.
struct LetterTokens {
  std::array<tokenizer::TokenId, 4> ids{};  ///< tokens for A..D
  bool leading_space = false;   ///< ids are " A".." D" single tokens
  bool feed_space_first = false;  ///< feed " " before probing bare letters
};

/// Detects which representation the model uses: builds a few calibration
/// prompts from `calibration` items, reads the model's top-10 next tokens
/// after "Answer:", and picks the letter-token family that appears there.
/// Falls back to bare letters (with an explicit space feed) when the
/// vocabulary has no single leading-space letter tokens.
LetterTokens detect_letter_tokens(const nn::GptModel& model,
                                  const tokenizer::BpeTokenizer& tok,
                                  const std::vector<corpus::McqItem>& calibration,
                                  const std::vector<corpus::McqItem>& fewshot);

/// Evaluates one question: returns the argmax letter (0..3).
int token_predict(const nn::GptModel& model, const tokenizer::BpeTokenizer& tok,
                  const LetterTokens& letters, const corpus::McqItem& item,
                  const std::vector<corpus::McqItem>& fewshot);

/// Runs the token method over the whole benchmark. With an active
/// `journal`, already-answered questions are skipped (their journalled
/// results reused) and fresh results are appended durably, making a killed
/// run resumable.
std::vector<QuestionResult> run_token_benchmark(
    const nn::GptModel& model, const tokenizer::BpeTokenizer& tok,
    const std::vector<corpus::McqItem>& benchmark,
    const std::vector<corpus::McqItem>& practice_pool, EvalJournal* journal = nullptr);

}  // namespace astromlab::eval
