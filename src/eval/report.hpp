#pragma once
// Result presentation: Table I, Figure 1 (ASCII), and CSV export.
//
// `ModelRow` mirrors one row of the paper's Table I: scores (percent) for
// the three benchmarking methods, a source / reference column, and the
// series baseline used for the ↑ / ↓ / ⇒ arrows.

#include <string>
#include <vector>

namespace astromlab::eval {

struct ModelRow {
  std::string name;
  std::string series;     ///< table section header, e.g. "LLaMA-2 Series (S70)"
  double full_instruct = -1.0;   ///< percent, -1 = not evaluated
  double token_instruct = -1.0;
  double token_base = -1.0;
  /// Full-instruct questions with no extracted answer (extraction failure
  /// or watchdog abort). They score as incorrect; surfacing the count keeps
  /// them from being silently folded into wrong answers.
  std::size_t unanswered = 0;
  /// Questions degraded to unanswered by the evaluation supervisor across
  /// all three methods: deadline / straggler cancellations and permanent
  /// faults (a subset of the unanswered counts of the summaries).
  std::size_t degraded = 0;
  /// Questions shed by the memory degradation ladder across all methods
  /// (subset of `degraded`).
  std::size_t shed = 0;
  /// Prefix-cache evictions performed by the ladder across all methods.
  std::size_t evictions = 0;
  /// Questions that needed >= 1 transient-fault retry across all methods.
  std::size_t retried = 0;
  /// Canonical-tier questions scored (token-base run). Zero for paper
  /// reference rows, which carry no per-tier breakdown — together with
  /// canonical accuracy this distinguishes "all canonical wrong" from "no
  /// canonical questions present".
  std::size_t canonical_total = 0;
  /// Per-question wall-clock latency percentiles (milliseconds) over the
  /// questions evaluated fresh, max across the evaluated methods; -1 means
  /// no fresh timing (full cache replay, or a paper reference row).
  double latency_p50_ms = -1.0;
  double latency_p95_ms = -1.0;
  double latency_p99_ms = -1.0;
  std::string source;
  std::string reference;
  bool is_native = false;
  std::string baseline;   ///< name of the native row to compare against
};

/// Arrow comparing a specialised score to its native baseline, matching
/// the paper's notation: up for >= +1 pt, down for <= -1 pt, else ~.
std::string trend_arrow(double score, double baseline_score);

/// Renders the full Table I with section headers and arrows.
std::string render_table1(const std::vector<ModelRow>& rows);

/// Renders Figure 1 as an ASCII dot plot: one line per model, symbols
/// F (full instruct), I (token/instruct), B (token/base), and a '|'
/// marking the native series' full-instruct baseline.
std::string render_fig1(const std::vector<ModelRow>& rows, double axis_min = 20.0,
                        double axis_max = 90.0);

/// CSV export (one row per model).
std::string render_csv(const std::vector<ModelRow>& rows);

}  // namespace astromlab::eval
