#include "eval/scorer.hpp"

#include <algorithm>

#include "util/metrics.hpp"
#include "util/string_utils.hpp"

namespace astromlab::eval {

ScoreSummary summarize(const std::vector<QuestionResult>& results,
                       std::uint64_t bootstrap_seed, std::size_t bootstrap_resamples) {
  ScoreSummary summary;
  summary.total = results.size();
  if (results.empty()) return summary;

  std::size_t canonical_total = 0, canonical_correct = 0;
  std::size_t frontier_correct = 0;
  for (const QuestionResult& result : results) {
    if (result.is_correct()) ++summary.correct;
    if (result.predicted < 0) ++summary.unanswered;
    if (result.degraded) ++summary.degraded;
    if (result.shed) ++summary.shed;
    if (result.retries > 0) ++summary.retried;
    if (result.tier == corpus::Tier::kCanonical) {
      ++canonical_total;
      if (result.is_correct()) ++canonical_correct;
    } else {
      ++summary.frontier_total;
      if (result.is_correct()) ++frontier_correct;
    }
    switch (result.method) {
      case ExtractionMethod::kJson: ++summary.json_extractions; break;
      case ExtractionMethod::kRegex: ++summary.regex_extractions; break;
      case ExtractionMethod::kInterpreter: ++summary.interpreter_extractions; break;
      case ExtractionMethod::kFailed: break;
    }
  }
  summary.accuracy = static_cast<double>(summary.correct) / static_cast<double>(summary.total);
  const std::size_t answered = summary.total - summary.unanswered;
  summary.answered_accuracy =
      answered > 0 ? static_cast<double>(summary.correct) / static_cast<double>(answered) : 0.0;
  summary.canonical_total = canonical_total;
  summary.canonical_accuracy =
      canonical_total > 0
          ? static_cast<double>(canonical_correct) / static_cast<double>(canonical_total)
          : 0.0;
  summary.frontier_accuracy =
      summary.frontier_total > 0
          ? static_cast<double>(frontier_correct) / static_cast<double>(summary.frontier_total)
          : 0.0;

  // Percentile bootstrap over questions. With no resamples there is no
  // distribution to take percentiles of — collapse the CI onto the point
  // estimate instead of indexing an empty vector (size - 1 wraps).
  if (bootstrap_resamples == 0) {
    summary.ci_low = summary.accuracy;
    summary.ci_high = summary.accuracy;
    return summary;
  }
  util::Rng rng(bootstrap_seed);
  std::vector<double> samples;
  samples.reserve(bootstrap_resamples);
  for (std::size_t b = 0; b < bootstrap_resamples; ++b) {
    std::size_t hits = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const QuestionResult& picked =
          results[static_cast<std::size_t>(rng.next_below(results.size()))];
      if (picked.is_correct()) ++hits;
    }
    samples.push_back(static_cast<double>(hits) / static_cast<double>(results.size()));
  }
  std::sort(samples.begin(), samples.end());
  // Nearest-rank (ceil(q*N) - 1): truncation put the upper bound one past
  // the 97.5th percentile (N=1000 selected index 975, the 976th element).
  summary.ci_low = samples[util::metrics::nearest_rank_index(0.025, samples.size())];
  summary.ci_high = samples[util::metrics::nearest_rank_index(0.975, samples.size())];
  return summary;
}

std::string percent(double accuracy) { return util::format_fixed(accuracy * 100.0, 1); }

}  // namespace astromlab::eval
