#include "eval/report.hpp"

#include <algorithm>
#include <map>

#include "util/string_utils.hpp"

namespace astromlab::eval {

using util::format_fixed;
using util::pad_left;
using util::pad_right;

std::string trend_arrow(double score, double baseline_score) {
  if (score < 0.0 || baseline_score < 0.0) return " ";
  const double delta = score - baseline_score;
  if (delta >= 1.0) return "^";
  if (delta <= -1.0) return "v";
  return "~";
}

namespace {

const ModelRow* find_baseline(const std::vector<ModelRow>& rows, const std::string& name) {
  for (const ModelRow& row : rows) {
    if (row.name == name) return &row;
  }
  return nullptr;
}

std::string score_cell(double score, double baseline, bool native) {
  if (score < 0.0) return pad_left("-", 8);
  std::string text = format_fixed(score, 1);
  if (!native) {
    text += " " + trend_arrow(score, baseline);
  }
  return pad_left(text, 8);
}

}  // namespace

std::string render_table1(const std::vector<ModelRow>& rows) {
  std::string out;
  out += "TABLE I: PERFORMANCE ON ASTRONOMY MCQ BENCHMARK\n";
  out += "(scores: % accurate answers; ^ better / v worse / ~ similar vs native baseline;\n";
  out += " Unansw: full-instruct questions with no extracted answer, scored incorrect;\n";
  out += " Degr: questions degraded by the eval supervisor (deadline/fault), all methods;\n";
  out += " Evict: prefix-cache evictions by the memory degradation ladder, all methods;\n";
  out += " Shed: questions shed by the ladder under memory pressure (subset of Degr);\n";
  out += " Retry: questions that needed a transient-fault retry, all methods;\n";
  out += " Canon: canonical-tier questions scored (token-base run);\n";
  out += " P95ms: p95 per-question latency in ms over freshly evaluated questions,\n";
  out += "        max across methods; - when everything replayed from cache)\n\n";
  out += pad_right("Model", 34) + pad_left("FullInst", 9) + pad_left("Unansw", 7) +
         pad_left("Tok-Inst", 10) + pad_left("Tok-Base", 10) + pad_left("Degr", 6) +
         pad_left("Evict", 7) + pad_left("Shed", 6) + pad_left("Retry", 7) +
         pad_left("Canon", 7) + pad_left("P95ms", 9) + "  " + pad_right("Source", 11) +
         "Reference\n";
  out += std::string(139, '-') + "\n";

  std::string current_series;
  for (const ModelRow& row : rows) {
    if (row.series != current_series) {
      current_series = row.series;
      out += current_series + "\n";
    }
    const ModelRow* base = row.is_native ? nullptr : find_baseline(rows, row.baseline);
    const double base_full = base ? base->full_instruct : -1.0;
    const double base_ti = base ? base->token_instruct : -1.0;
    const double base_tb = base ? base->token_base : -1.0;
    out += pad_right("  " + row.name, 34);
    out += " " + score_cell(row.full_instruct, base_full, row.is_native);
    out += pad_left(row.full_instruct < 0.0 ? "-" : std::to_string(row.unanswered), 7);
    out += " " + score_cell(row.token_instruct, base_ti, row.is_native);
    out += " " + score_cell(row.token_base, base_tb, row.is_native);
    out += pad_left(std::to_string(row.degraded), 7);
    out += pad_left(std::to_string(row.evictions), 7);
    out += pad_left(std::to_string(row.shed), 6);
    out += pad_left(std::to_string(row.retried), 7);
    out += pad_left(std::to_string(row.canonical_total), 7);
    out += pad_left(row.latency_p95_ms < 0.0 ? "-" : format_fixed(row.latency_p95_ms, 1), 9);
    out += "   " + pad_right(row.source, 11) + row.reference + "\n";
  }
  return out;
}

std::string render_fig1(const std::vector<ModelRow>& rows, double axis_min, double axis_max) {
  constexpr std::size_t kWidth = 64;
  auto column = [&](double score) -> std::size_t {
    const double clamped = std::clamp(score, axis_min, axis_max);
    return static_cast<std::size_t>((clamped - axis_min) / (axis_max - axis_min) *
                                    static_cast<double>(kWidth - 1));
  };

  std::string out;
  out += "FIG 1: BASELINE LLAMA VS ASTROLLAMA ON ASTRONOMY MCQs\n";
  out += "symbols: F full instruct, I token (instruct), B token (base); | native full-instruct\n\n";

  for (const ModelRow& row : rows) {
    std::string line(kWidth, '.');
    const ModelRow* base = row.is_native ? &row : find_baseline(rows, row.baseline);
    if (base != nullptr && base->full_instruct >= 0.0) {
      line[column(base->full_instruct)] = '|';
    }
    // Later symbols win collisions; B is the headline metric so place last.
    if (row.full_instruct >= 0.0) line[column(row.full_instruct)] = 'F';
    if (row.token_instruct >= 0.0) line[column(row.token_instruct)] = 'I';
    if (row.token_base >= 0.0) line[column(row.token_base)] = 'B';
    out += pad_right(row.name, 32) + line + "\n";
  }

  // Axis.
  std::string axis(kWidth, ' ');
  out += pad_right("", 32);
  for (double tick = axis_min; tick <= axis_max + 1e-9; tick += 10.0) {
    const std::size_t pos = column(tick);
    if (pos < axis.size()) axis[pos] = '+';
  }
  out += axis + "\n" + pad_right("", 32);
  std::string labels(kWidth + 6, ' ');
  for (double tick = axis_min; tick <= axis_max + 1e-9; tick += 10.0) {
    const std::string text = format_fixed(tick, 0);
    const std::size_t pos = column(tick);
    for (std::size_t i = 0; i < text.size() && pos + i < labels.size(); ++i) {
      labels[pos + i] = text[i];
    }
  }
  out += labels + "  (% score)\n";
  return out;
}

std::string render_csv(const std::vector<ModelRow>& rows) {
  // New columns append at the end so downstream consumers keyed on the
  // original prefix keep working.
  std::string out =
      "model,series,full_instruct,unanswered,token_instruct,token_base,source,reference,"
      "degraded,retried,canonical_total,latency_p50_ms,latency_p95_ms,latency_p99_ms,"
      "shed,cache_evictions\n";
  for (const ModelRow& row : rows) {
    auto cell = [](double v) { return v < 0.0 ? std::string() : format_fixed(v, 2); };
    const std::string unanswered =
        row.full_instruct < 0.0 ? std::string() : std::to_string(row.unanswered);
    out += row.name + "," + row.series + "," + cell(row.full_instruct) + "," + unanswered +
           "," + cell(row.token_instruct) + "," + cell(row.token_base) + "," + row.source +
           "," + row.reference + "," + std::to_string(row.degraded) + "," +
           std::to_string(row.retried) + "," + std::to_string(row.canonical_total) + "," +
           cell(row.latency_p50_ms) + "," + cell(row.latency_p95_ms) + "," +
           cell(row.latency_p99_ms) + "," + std::to_string(row.shed) + "," +
           std::to_string(row.evictions) + "\n";
  }
  return out;
}

}  // namespace astromlab::eval
