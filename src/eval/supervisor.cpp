#include "eval/supervisor.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <map>
#include <mutex>
#include <new>

#include "util/cli.hpp"
#include "util/fault_injection.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/resource_budget.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace astromlab::eval {

double merge_deadlines(double a_seconds, double b_seconds) {
  if (a_seconds <= 0.0) return b_seconds > 0.0 ? b_seconds : 0.0;
  if (b_seconds <= 0.0) return a_seconds;
  return std::min(a_seconds, b_seconds);
}

namespace {

using Clock = std::chrono::steady_clock;

/// Shared bookkeeping for one run(); every field is guarded by `mutex`.
struct RunState {
  std::mutex mutex;
  std::vector<char> done;        ///< parallel to `pending` (char: no vector<bool> bit-packing)
  std::size_t next_flush = 0;    ///< index into `pending` of the next journal line
  std::size_t completed = 0;
  std::vector<double> durations_s;  ///< completed-question latencies
  std::vector<std::size_t> free_slots;  ///< worker-slot free list (LIFO)
  /// Degradation ladder: tasks only take slots below this cap; rung 2
  /// halves it under memory pressure, retiring higher slots as their
  /// current question finishes. Waiters park on `slot_cv`.
  std::size_t slot_cap = 1;
  bool cache_evicted = false;  ///< rung 1 fired (or was found empty)
  std::condition_variable slot_cv;

  struct InFlight {
    util::CancelToken* token;
    Clock::time_point start;
    std::size_t question;
    bool cancelled_by_monitor = false;
  };
  std::map<std::size_t, InFlight> inflight;  ///< keyed by index into `pending`
};

struct QuestionMetrics {
  util::metrics::Counter& queued;
  util::metrics::Counter& completed;
  util::metrics::Counter& retried;
  util::metrics::Counter& degraded;
  util::metrics::Counter& stragglers;
  util::metrics::Counter& cache_evictions;
  util::metrics::Counter& parallelism_reductions;
  util::metrics::Counter& shed;
  util::metrics::Histogram& latency_s;
};

QuestionMetrics& question_metrics() {
  auto& reg = util::metrics::registry();
  static QuestionMetrics m{reg.counter("eval.questions_queued"),
                           reg.counter("eval.questions_completed"),
                           reg.counter("eval.question_retries"),
                           reg.counter("eval.questions_degraded"),
                           reg.counter("eval.stragglers_cancelled"),
                           reg.counter("eval.ladder_cache_evictions"),
                           reg.counter("eval.ladder_parallelism_reductions"),
                           reg.counter("eval.questions_shed"),
                           reg.histogram("eval.question_seconds")};
  return m;
}

}  // namespace

void Supervisor::run(std::vector<QuestionResult>& results,
                     const std::vector<std::size_t>& pending, const QuestionFn& fn,
                     EvalJournal* journal) {
  stats_ = SupervisorStats{};
  if (pending.empty()) return;
  question_metrics().queued.add(pending.size());

  RunState state;
  state.done.assign(pending.size(), 0);
  // Slots are handed out high-to-low, so the serial path and a 1-worker
  // pool both see slot 0 only.
  for (std::size_t s = options_.worker_slots(); s-- > 0;) state.free_slots.push_back(s);
  state.slot_cap = options_.worker_slots();
  // With no evictable cache, rung 1 is already spent and pressure goes
  // straight to shrinking parallelism.
  state.cache_evicted = !static_cast<bool>(options_.evict_cache);

  // Degradation ladder, walked on budget pressure / bad_alloc at the
  // question boundary. Returns true when a rung freed something and the
  // question should retry; false means every rung is exhausted and the
  // caller must shed. Rungs fire globally (once evicted, stays evicted;
  // the cap only shrinks), so repeated pressure converges to serial
  // execution and then to shedding — never an abort.
  const auto relieve_memory_pressure = [&](std::size_t q, const char* what) -> bool {
    bool try_evict = false;
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      if (!state.cache_evicted) {
        state.cache_evicted = true;
        try_evict = true;
      }
    }
    if (try_evict) {
      const std::size_t freed = options_.evict_cache();
      if (freed > 0) {
        {
          std::lock_guard<std::mutex> lock(state.mutex);
          ++stats_.cache_evictions;
        }
        question_metrics().cache_evictions.add();
        log::warn() << "eval question " << q << ": memory pressure (" << what
                    << "); evicted prefix cache (" << freed << " bytes), retrying";
        return true;
      }
      // Nothing was resident: fall through to rung 2 on this same event.
    }
    std::vector<std::size_t> retired;
    bool reduced = false;
    std::size_t new_cap = 0;
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      if (state.slot_cap > 1) {
        state.slot_cap /= 2;
        new_cap = state.slot_cap;
        reduced = true;
        ++stats_.parallelism_reductions;
        // Free slots above the cap retire now; in-use ones retire as
        // their current question releases them.
        auto& free = state.free_slots;
        for (std::size_t i = free.size(); i-- > 0;) {
          if (free[i] >= new_cap) {
            retired.push_back(free[i]);
            free.erase(free.begin() + static_cast<std::ptrdiff_t>(i));
          }
        }
      }
    }
    if (reduced) {
      std::size_t freed = 0;
      if (options_.release_slot_memory) {
        for (const std::size_t slot : retired) freed += options_.release_slot_memory(slot);
      }
      question_metrics().parallelism_reductions.add();
      log::warn() << "eval question " << q << ": memory pressure (" << what
                  << "); worker-slot cap halved to " << new_cap << " (" << freed
                  << " bytes reclaimed), retrying";
      return true;
    }
    return false;
  };

  // Evaluates pending[idx] inside its own fault domain: injected faults,
  // transient retries with deterministic backoff, permanent degradation.
  // Never throws; journal failures surface from the flush step instead.
  const auto run_one = [&](std::size_t idx) {
    const std::size_t q = pending[idx];
    const util::trace::Span span("eval.question", "eval", "q",
                                 static_cast<std::uint64_t>(q));
    std::size_t slot = 0;
    {
      // At most `slot_cap` questions run concurrently: when rung 2 has
      // shrunk the cap below the pool size, excess tasks park here until
      // a below-cap slot frees up.
      std::unique_lock<std::mutex> lock(state.mutex);
      state.slot_cv.wait(lock, [&state] { return !state.free_slots.empty(); });
      slot = state.free_slots.back();
      state.free_slots.pop_back();
    }
    QuestionResult result = results[q];  // pre-filled ground truth (correct, tier)
    std::size_t retries = 0;
    const Clock::time_point question_start = Clock::now();
    for (;;) {
      util::CancelToken token;
      token.set_deadline_after(options_.question_deadline_seconds);
      {
        std::lock_guard<std::mutex> lock(state.mutex);
        state.inflight[idx] = {&token, Clock::now(), q, false};
      }
      bool finished = false;
      bool pressure_retry = false;
      try {
        switch (util::FaultInjector::instance().on_eval_attempt(q)) {
          case util::FaultInjector::EvalAction::kTransient:
            throw util::TransientError("injected transient eval fault");
          case util::FaultInjector::EvalAction::kPermanent:
            throw std::runtime_error("injected permanent eval fault");
          case util::FaultInjector::EvalAction::kAllocPressure:
            throw util::ResourceExhaustedError(
                "injected allocation pressure at question boundary");
          case util::FaultInjector::EvalAction::kProceed:
            break;
        }
        QuestionResult fresh = fn(q, slot, token);
        fresh.retries = static_cast<int>(retries);
        result = fresh;
        finished = true;
      } catch (const std::bad_alloc& error) {
        // Budget pressure or a real allocation failure at the question
        // boundary: walk the degradation ladder. A successful rung frees
        // memory and the question retries immediately (no backoff — the
        // pressure is relieved, not transient); an exhausted ladder sheds
        // the question rather than aborting the study.
        if (relieve_memory_pressure(q, error.what())) {
          pressure_retry = true;
        } else {
          log::warn() << "eval question " << q << ": shed under memory pressure ("
                      << error.what() << ")";
          result.predicted = -1;
          result.method = ExtractionMethod::kFailed;
          result.retries = static_cast<int>(retries);
          result.degraded = true;
          result.shed = true;
          finished = true;
        }
      } catch (const std::exception& error) {
        if (util::is_transient(error) && retries < options_.retry.max_retries) {
          ++retries;
          log::warn() << "eval question " << q << ": transient fault (" << error.what()
                      << "), retry " << retries << "/" << options_.retry.max_retries;
        } else {
          // Permanent fault or exhausted retry budget: degrade to
          // unanswered — one bad question must never abort the study.
          log::warn() << "eval question " << q << ": degraded to unanswered ("
                      << error.what() << ")";
          result.predicted = -1;
          result.method = ExtractionMethod::kFailed;
          result.retries = static_cast<int>(retries);
          result.degraded = true;
          finished = true;
        }
      } catch (...) {
        log::warn() << "eval question " << q << ": degraded to unanswered (unknown error)";
        result.predicted = -1;
        result.method = ExtractionMethod::kFailed;
        result.retries = static_cast<int>(retries);
        result.degraded = true;
        finished = true;
      }
      {
        std::lock_guard<std::mutex> lock(state.mutex);
        state.inflight.erase(idx);
      }
      if (finished) break;
      if (!pressure_retry) util::detail::sleep_ms(options_.retry.backoff_ms(retries, q));
    }

    const double question_seconds =
        std::chrono::duration<double>(Clock::now() - question_start).count();
    question_metrics().completed.add();
    question_metrics().latency_s.record(question_seconds);
    if (retries > 0) question_metrics().retried.add(retries);
    if (result.degraded) question_metrics().degraded.add();
    if (result.shed) question_metrics().shed.add();

    bool slot_retired = false;
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      // A slot at or above the (possibly shrunk) cap retires instead of
      // recirculating; its scratch is freed below, outside the lock.
      slot_retired = slot >= state.slot_cap;
      if (!slot_retired) state.free_slots.push_back(slot);
      results[q] = result;
      state.done[idx] = 1;
      ++state.completed;
      state.durations_s.push_back(question_seconds);
      if (retries > 0) {
        ++stats_.retried_questions;
        stats_.total_retries += retries;
      }
      if (result.degraded) ++stats_.degraded_questions;
      if (result.shed) ++stats_.shed_questions;
    }
    if (slot_retired && options_.release_slot_memory) options_.release_slot_memory(slot);
    // Notify before the (throwing) journal flush so a write failure can
    // never strand a task parked on the slot condition variable.
    state.slot_cv.notify_one();
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      // Journal strictly in ascending question order: buffered out-of-order
      // completions flush once the gap closes, so the parallel journal is
      // byte-identical to a serial run's and a kill leaves a clean prefix.
      while (state.next_flush < pending.size() && state.done[state.next_flush] != 0) {
        const std::size_t fq = pending[state.next_flush];
        if (journal != nullptr) journal->record(fq, results[fq]);
        ++state.next_flush;
      }
    }
  };

  // Latency percentiles computed after the run on both serial and parallel
  // paths; the vector is no longer shared once every question completed.
  const auto finalize_latency = [&] {
    std::vector<double> sorted = state.durations_s;
    std::sort(sorted.begin(), sorted.end());
    stats_.completed_questions = sorted.size();
    stats_.latency_p50_s = util::metrics::percentile_sorted(sorted, 0.50);
    stats_.latency_p95_s = util::metrics::percentile_sorted(sorted, 0.95);
    stats_.latency_p99_s = util::metrics::percentile_sorted(sorted, 0.99);
  };

  if (options_.workers <= 1) {
    for (std::size_t idx = 0; idx < pending.size(); ++idx) run_one(idx);
    finalize_latency();
    return;
  }

  util::ThreadPool pool(options_.workers);
  for (std::size_t idx = 0; idx < pending.size(); ++idx) {
    pool.submit([&run_one, idx] { run_one(idx); });
  }

  // The calling thread doubles as the straggler monitor until every
  // question has completed; wait_idle() then rethrows any journal failure.
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      if (state.completed == pending.size()) break;
      if (options_.straggler_factor > 0.0 &&
          state.durations_s.size() >= options_.straggler_min_samples) {
        std::vector<double> sorted = state.durations_s;
        const std::size_t mid = sorted.size() / 2;
        std::nth_element(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(mid),
                         sorted.end());
        const double median = sorted[mid];
        const double limit = options_.straggler_factor * median;
        const Clock::time_point now = Clock::now();
        for (auto& [idx, flight] : state.inflight) {
          const double elapsed = std::chrono::duration<double>(now - flight.start).count();
          if (!flight.cancelled_by_monitor && limit > 0.0 && elapsed > limit) {
            flight.cancelled_by_monitor = true;
            flight.token->cancel();
            ++stats_.stragglers_cancelled;
            question_metrics().stragglers.add();
            log::warn() << "eval question " << flight.question << ": straggler cancelled ("
                        << elapsed << "s > " << options_.straggler_factor << "x median "
                        << median << "s)";
          }
        }
      }
    }
    util::detail::sleep_ms(1.0);
  }
  pool.wait_idle();
  finalize_latency();
}

EvalRunOptions eval_run_options_from_args(const util::ArgParser& args) {
  EvalRunOptions options;
  options.workers = static_cast<std::size_t>(args.get_int("eval-workers", 0));
  options.retry.max_retries = static_cast<std::size_t>(args.get_int("retry-max", 2));
  options.question_deadline_seconds = args.get_double("question-deadline", 0.0);
  options.straggler_factor = args.get_double("straggler-factor", 0.0);
  options.prefix_cache = args.get_bool("prefix-cache", false);
  options.decode_batch = static_cast<std::size_t>(args.get_int("decode-batch", 0));
  return options;
}

}  // namespace astromlab::eval
