#include "eval/token_method.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "eval/prompts.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace astromlab::eval {

namespace {

/// Indices of the `k` largest logits.
std::vector<std::size_t> top_k_indices(const std::vector<float>& logits, std::size_t k) {
  std::vector<std::size_t> order(logits.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  k = std::min(k, order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k), order.end(),
                    [&](std::size_t a, std::size_t b) { return logits[a] > logits[b]; });
  order.resize(k);
  return order;
}

std::optional<std::array<tokenizer::TokenId, 4>> letter_family(
    const tokenizer::BpeTokenizer& tok, bool leading_space) {
  std::array<tokenizer::TokenId, 4> ids{};
  for (int i = 0; i < 4; ++i) {
    std::string text;
    if (leading_space) text += ' ';
    text += static_cast<char>('A' + i);
    const auto id = tok.token_to_id(text);
    if (!id) return std::nullopt;
    ids[static_cast<std::size_t>(i)] = *id;
  }
  return ids;
}

std::vector<nn::Token> to_model_tokens(const std::vector<tokenizer::TokenId>& ids) {
  return {ids.begin(), ids.end()};
}

}  // namespace

LetterTokens detect_letter_tokens(const nn::GptModel& model,
                                  const tokenizer::BpeTokenizer& tok,
                                  const std::vector<corpus::McqItem>& calibration,
                                  const std::vector<corpus::McqItem>& fewshot) {
  const auto spaced = letter_family(tok, /*leading_space=*/true);
  const auto plain = letter_family(tok, /*leading_space=*/false);
  if (!plain) {
    throw std::logic_error("tokenizer lacks bare letter byte tokens (corrupt vocab)");
  }
  if (!spaced) {
    // No single-token " A".." D": the model necessarily emits the space
    // separately, so probe bare letters after feeding the space.
    LetterTokens letters;
    letters.ids = *plain;
    letters.feed_space_first = true;
    return letters;
  }

  // Both families exist: examine the top-10 next tokens on calibration
  // prompts (paper §V-B) and count which family the model actually ranks.
  const util::trace::Span span("eval.detect_letter_tokens", "eval");
  std::size_t spaced_hits = 0;
  std::size_t plain_hits = 0;
  std::size_t usable_prompts = 0;
  const std::size_t n_calibration = std::min<std::size_t>(calibration.size(), 6);
  nn::GptInference inference(model);
  try {
    for (std::size_t q = 0; q < n_calibration; ++q) {
      const std::string prompt = build_token_prompt(calibration[q], fewshot);
      std::vector<nn::Token> tokens = to_model_tokens(tok.encode(prompt));
      if (tokens.size() >= model.config().ctx_len) continue;
      ++usable_prompts;
      inference.reset();
      const std::vector<float>& logits = inference.prompt(tokens);
      for (std::size_t idx : top_k_indices(logits, 10)) {
        const auto id = static_cast<tokenizer::TokenId>(idx);
        if (std::find(spaced->begin(), spaced->end(), id) != spaced->end()) ++spaced_hits;
        if (std::find(plain->begin(), plain->end(), id) != plain->end()) ++plain_hits;
      }
    }
  } catch (const std::bad_alloc&) {
    // The probe's KV cache does not fit the memory budget. Detection is
    // calibration, not scoring, and it runs before the supervisor's fault
    // domains exist — so degrade to whatever evidence was gathered
    // (possibly none: the zero-evidence default below) instead of
    // aborting the benchmark. The probe's partial charge is released with
    // `inference` at scope exit.
    log::warn() << "letter-token detection: probe K/V does not fit the memory "
                   "budget; deciding on partial evidence";
  }
  util::metrics::registry()
      .counter("eval.letter_detection_evidence")
      .add(spaced_hits + plain_hits);
  if (spaced_hits + plain_hits == 0) {
    // Zero evidence — typically every calibration prompt overflowed the
    // context window (usable_prompts == 0), or the model never ranked a
    // letter token in its top 10. The spaced-family default below is then a
    // blind guess, not a detection; say so instead of silently proceeding.
    util::metrics::registry().counter("eval.letter_detection_zero_evidence").add();
    log::warn() << "letter-token detection: zero evidence ("
                << usable_prompts << "/" << n_calibration
                << " calibration prompts fit the context window); defaulting "
                   "to the leading-space family on no data";
  }

  LetterTokens letters;
  if (plain_hits > spaced_hits) {
    letters.ids = *plain;
    letters.feed_space_first = true;
  } else {
    letters.ids = *spaced;
    letters.leading_space = true;
  }
  log::debug() << "letter-token detection: spaced_hits=" << spaced_hits
               << " plain_hits=" << plain_hits << " -> "
               << (letters.leading_space ? "leading-space" : "bare");
  return letters;
}

namespace {

/// Strict-greater argmax over the four answer-letter logits (first wins on
/// ties) — the one scoring rule, shared by the serial and batched paths.
int argmax_letter(const std::vector<float>& logits, const LetterTokens& letters) {
  int best = 0;
  float best_logit = logits[static_cast<std::size_t>(letters.ids[0])];
  for (int i = 1; i < 4; ++i) {
    const float logit = logits[static_cast<std::size_t>(letters.ids[static_cast<std::size_t>(i)])];
    if (logit > best_logit) {
      best_logit = logit;
      best = i;
    }
  }
  return best;
}

}  // namespace

int token_predict(const nn::GptModel& model, const tokenizer::BpeTokenizer& tok,
                  const LetterTokens& letters, const corpus::McqItem& item,
                  const std::vector<corpus::McqItem>& fewshot,
                  const util::CancelToken* cancel, const PrefixCache* prefix_cache,
                  nn::GptInference* scratch, nn::DecodeEngine* engine) {
  const util::trace::Span span("eval.token_predict", "eval");
  const std::string prompt = build_token_prompt(item, fewshot);
  std::vector<nn::Token> tokens = to_model_tokens(tok.encode(prompt));
  if (letters.feed_space_first) {
    const auto space = tok.token_to_id(" ");
    if (space) {
      tokens.push_back(*space);
    } else {
      // Without a single " " token the separator cannot be fed, so the
      // model scores bare letters directly after "Answer:" — a subtly
      // different prompt than calibration saw. Degrade loudly: warn once
      // per process, count every occurrence.
      static std::once_flag warned;
      std::call_once(warned, [] {
        log::warn() << "token method: feed_space_first set but the tokenizer "
                       "has no single \" \" token; probing bare letters "
                       "without the separator (prompt differs from "
                       "calibration)";
      });
      util::metrics::registry().counter("eval.space_token_missing").add();
    }
  }
  if (tokens.empty() || tokens.size() >= model.config().ctx_len) {
    util::metrics::registry().counter("eval.prompt_overflow").add();
    return -1;  // prompt does not fit the context window
  }
  if (engine != nullptr) {
    // Batched path: the prompt feeds through a shared engine slot, one
    // token per engine step. The cancel token is polled before each feed
    // (the serial prompt-loop placement) and again before scoring, and
    // the argmax runs over logits that BatchedInference guarantees are
    // bitwise equal to the serial feed's — so the answer cannot depend on
    // what else happens to be decoding alongside.
    int answer = -1;
    nn::DecodeEngine::Request req;
    req.prompt = std::move(tokens);
    req.cancel = cancel;
    if (prefix_cache != nullptr) {
      req.prepare = [prefix_cache](nn::BatchedInference& bi, std::size_t slot,
                                   const std::vector<nn::Token>& prompt) {
        return prefix_cache->fork(bi, slot, prompt);
      };
    }
    req.on_logits = [&](const std::vector<float>& logits, std::size_t) -> nn::Token {
      if (cancel == nullptr || !cancel->cancelled()) answer = argmax_letter(logits, letters);
      return nn::DecodeEngine::kStopDecoding;
    };
    engine->run(std::move(req));
    return answer;  // stays -1 when cancel fired mid-feed or pre-scoring
  }
  std::optional<nn::GptInference> local;
  nn::GptInference& inference = scratch != nullptr ? *scratch : local.emplace(model);
  std::size_t fed_from = 0;
  if (prefix_cache != nullptr) {
    // Fork the shared two-shot block; feed only the question's own tail.
    // The question still feeds exactly its own token sequence overall, so
    // the logits are bit-identical to the uncached path.
    fed_from = prefix_cache->fork(inference, tokens);
  } else {
    inference.reset();
  }
  const std::vector<float>& logits =
      inference.prompt(tokens.data() + fed_from, tokens.size() - fed_from, cancel);
  if (cancel != nullptr && cancel->cancelled()) {
    return -1;  // fired mid-feed: logits are stale, degrade to unanswered
  }
  return argmax_letter(logits, letters);
}

std::vector<QuestionResult> run_token_benchmark(
    const nn::GptModel& model, const tokenizer::BpeTokenizer& tok,
    const std::vector<corpus::McqItem>& benchmark,
    const std::vector<corpus::McqItem>& practice_pool, EvalJournal* journal,
    const TokenMethodConfig& config, const EvalRunOptions& opts,
    PrefixCacheStats* cache_stats, SupervisorStats* run_stats) {
  const util::trace::Span bench_span("eval.token_benchmark", "eval");
  const std::vector<corpus::McqItem> fewshot = pick_fewshot_examples(practice_pool);
  const LetterTokens letters = detect_letter_tokens(model, tok, practice_pool, fewshot);
  if (cache_stats != nullptr) *cache_stats = PrefixCacheStats{};

  std::vector<QuestionResult> results(benchmark.size());
  std::vector<std::size_t> pending;
  for (std::size_t q = 0; q < benchmark.size(); ++q) {
    const corpus::McqItem& item = benchmark[q];
    results[q].correct = static_cast<int>(item.correct);
    results[q].tier = item.tier;
    if (journal != nullptr) {
      const auto prior = journal->lookup(q);
      if (prior && prior->correct == static_cast<int>(item.correct) &&
          prior->tier == item.tier) {
        results[q] = *prior;
        continue;
      }
    }
    pending.push_back(q);
  }

  EvalRunOptions effective = opts;
  effective.question_deadline_seconds =
      merge_deadlines(opts.question_deadline_seconds, config.max_seconds_per_question);

  // Continuous-batching decode: one shared engine; every worker submits
  // its question into the engine's slot pool, so concurrent prompt feeds
  // coalesce into one batched step per token. Workers are raised to at
  // least the slot count so the batch can actually fill.
  std::unique_ptr<nn::DecodeEngine> engine;
  if (effective.decode_batch > 1) {
    effective.workers = std::max(effective.workers, effective.decode_batch);
    engine = std::make_unique<nn::DecodeEngine>(model, effective.decode_batch);
  }

  // Shared-prefix KV snapshot: encode the two-shot block once, fork it per
  // question. Built from the first two question prompts so the common
  // token prefix is discovered at the token level (robust to BPE merges
  // across the prefix/question boundary).
  std::unique_ptr<PrefixCache> cache;
  if (effective.prefix_cache && benchmark.size() >= 2) {
    cache = PrefixCache::build(
        model, tok,
        {build_token_prompt(benchmark[0], fewshot), build_token_prompt(benchmark[1], fewshot)});
  }
  // One immutable snapshot shared read-only by every worker; one fork
  // buffer per worker slot so concurrent questions never share KV state.
  std::vector<std::unique_ptr<nn::GptInference>> scratch(effective.worker_slots());
  for (auto& slot : scratch) slot = std::make_unique<nn::GptInference>(model);

  // Degradation-ladder hooks: rung 1 drops the shared prefix snapshot
  // (forks fall back to full prefill — scores unchanged), rung 2 frees the
  // KV cache of each retired worker slot.
  effective.evict_cache = [&cache]() -> std::size_t {
    return cache != nullptr ? cache->evict() : 0;
  };
  effective.release_slot_memory = [&scratch, &engine](std::size_t slot) -> std::size_t {
    std::size_t freed = slot < scratch.size() && scratch[slot] != nullptr
                            ? scratch[slot]->release_kv()
                            : 0;
    // Slot-granular relief on the engine side: idle decode slots hand
    // their KV back to the budget; active ones keep decoding.
    if (engine != nullptr) freed += engine->release_idle_kv();
    return freed;
  };

  Supervisor supervisor(effective);
  supervisor.run(
      results, pending,
      [&](std::size_t q, std::size_t slot, const util::CancelToken& cancel) {
        QuestionResult result = results[q];  // ground truth pre-filled above
        result.predicted = token_predict(model, tok, letters, benchmark[q], fewshot, &cancel,
                                         cache.get(), scratch[slot].get(), engine.get());
        if (cancel.cancelled()) {
          result.method = ExtractionMethod::kFailed;
          result.predicted = -1;
          result.degraded = true;
        }
        return result;
      },
      journal);
  if (cache != nullptr && cache_stats != nullptr) *cache_stats = cache->stats();
  if (run_stats != nullptr) *run_stats = supervisor.stats();
  return results;
}

}  // namespace astromlab::eval
