#include "eval/journal.hpp"

#include <fstream>
#include <string>

#include "json/json.hpp"
#include "util/checksum.hpp"
#include "util/fault_injection.hpp"
#include "util/io.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"

namespace astromlab::eval {

namespace fs = std::filesystem;

namespace {

/// Canonical payload string hashed into each line's "crc" field. Field
/// order and formatting are fixed independently of the JSON serializer,
/// so the tag survives any change to object-key ordering.
std::string crc_payload(std::size_t question, const QuestionResult& result) {
  std::string payload;
  payload.reserve(64);
  payload += "q=" + std::to_string(question);
  payload += ";p=" + std::to_string(result.predicted);
  payload += ";c=" + std::to_string(result.correct);
  payload += ";t=" + std::to_string(static_cast<int>(result.tier));
  payload += ";m=" + std::to_string(static_cast<int>(result.method));
  payload += ";r=" + std::to_string(result.retries);
  payload += ";d=" + std::to_string(result.degraded ? 1 : 0);
  payload += ";s=" + std::to_string(result.shed ? 1 : 0);
  return payload;
}

}  // namespace

std::uint32_t EvalJournal::line_crc(std::size_t question, const QuestionResult& result) {
  const std::string payload = crc_payload(question, result);
  return util::crc32(payload.data(), payload.size());
}

EvalJournal::EvalJournal(fs::path path) : path_(std::move(path)) {
  if (path_.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(path_.parent_path(), ec);
  }
  if (!fs::exists(path_)) return;

  std::string text;
  try {
    text = util::read_text_file(path_);
  } catch (const util::IoError& error) {
    // Degrade, don't crash: an unreadable journal means the answered
    // questions simply re-run. Aborting the study at startup over a
    // resume optimisation would be strictly worse.
    log::warn() << "eval journal " << path_.string() << " unreadable (" << error.what()
                << "); starting fresh — answered questions will re-run";
    util::metrics::registry().counter("journal.read_failures").add();
    return;
  }
  std::size_t start = 0;
  std::size_t skipped = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    const bool terminated = end != std::string::npos;
    if (!terminated) end = text.size();
    const std::string_view line(text.data() + start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    // An unterminated final line is a torn append from a crash mid-write
    // (or a short read). It is dropped even when it happens to parse and
    // CRC-match — the tear may sit exactly between the JSON and its
    // newline — because the truncation below removes it from the file: a
    // record only counts once its newline is durable, and accepting it
    // in memory while erasing it on disk would silently lose it at the
    // *next* reload.
    if (!terminated) {
      ++skipped;
      continue;
    }
    try {
      const json::Value obj = json::parse(line);
      QuestionResult result;
      result.predicted = static_cast<int>(obj.get_number("predicted", -1));
      result.correct = static_cast<int>(obj.get_number("correct", 0));
      result.tier = static_cast<corpus::Tier>(static_cast<int>(obj.get_number("tier", 0)));
      result.method =
          static_cast<ExtractionMethod>(static_cast<int>(obj.get_number("method", 3)));
      result.retries = static_cast<int>(obj.get_number("retries", 0));
      result.degraded = obj.get_number("degraded", 0) != 0;
      result.shed = obj.get_number("shed", 0) != 0;
      const auto question = static_cast<std::size_t>(obj.get_number("q", 0));
      // Integrity check: a stored CRC must match the canonical payload.
      // (Lines from pre-CRC journals carry no "crc" field and pass.)
      const double stored_crc = obj.get_number("crc", -1.0);
      if (stored_crc >= 0.0 &&
          static_cast<std::uint32_t>(stored_crc) != line_crc(question, result)) {
        ++skipped;
        util::metrics::registry().counter("journal.crc_mismatches").add();
        log::warn() << "dropping journal line with CRC mismatch (q=" << question << ") in "
                    << path_.string();
        continue;
      }
      entries_[question] = result;
    } catch (const json::ParseError&) {
      ++skipped;
      log::warn() << "skipping malformed journal line in " << path_.string();
    }
  }
  if (!text.empty() && text.back() != '\n') {
    // Truncate the torn tail so the next append starts on a fresh line;
    // otherwise the first resumed record would merge into the torn bytes
    // and be lost at the *following* reload.
    const std::size_t last_newline = text.find_last_of('\n');
    const std::uintmax_t keep = last_newline == std::string::npos ? 0 : last_newline + 1;
    std::error_code ec;
    fs::resize_file(path_, keep, ec);
    if (ec) {
      log::warn() << "could not truncate torn journal tail of " << path_.string() << ": "
                  << ec.message();
    } else {
      log::warn() << "truncated torn tail of journal " << path_.string();
    }
  }
  if (!entries_.empty()) {
    log::info() << "eval journal " << path_.string() << ": resuming with "
                << entries_.size() << " answered questions"
                << (skipped > 0 ? " (dropped a torn line)" : "");
  }
}

std::size_t EvalJournal::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::optional<QuestionResult> EvalJournal::lookup(std::size_t question) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(question);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void EvalJournal::record(std::size_t question, const QuestionResult& result) {
  if (!active()) return;
  json::Value obj = json::Value::object();
  obj.set("q", json::Value(static_cast<std::int64_t>(question)));
  obj.set("predicted", json::Value(result.predicted));
  obj.set("correct", json::Value(result.correct));
  obj.set("tier", json::Value(static_cast<int>(result.tier)));
  obj.set("method", json::Value(static_cast<int>(result.method)));
  obj.set("retries", json::Value(result.retries));
  obj.set("degraded", json::Value(result.degraded ? 1 : 0));
  obj.set("shed", json::Value(result.shed ? 1 : 0));
  obj.set("crc", json::Value(static_cast<std::int64_t>(line_crc(question, result))));
  const std::string line = obj.dump() + "\n";

  std::lock_guard<std::mutex> lock(mutex_);
  // A failed append (injected or real) is retried a bounded number of
  // times — under the chaos schedule each retry draws a fresh fate — so
  // one flaky write does not abort a multi-hour run. A *torn* append
  // (kDrop) is not retried: it simulates a crash mid-write, and the
  // repair belongs to the next reload.
  constexpr int kAppendAttempts = 3;
  for (int attempt = 1;; ++attempt) {
    try {
      const auto action = util::FaultInjector::instance().on_write();
      if (action == util::FaultInjector::Action::kFail) {
        throw util::IoError("injected append failure on journal: " + path_.string());
      }
      std::ofstream stream(path_, std::ios::binary | std::ios::app);
      if (!stream) throw util::IoError("cannot append to journal: " + path_.string());
      if (action == util::FaultInjector::Action::kDrop) {
        // Simulated kill mid-append: commit only a torn prefix of the line
        // (no newline) and do not apply the entry, exactly the state a crash
        // between write and return would leave behind.
        stream.write(line.data(), static_cast<std::streamsize>(line.size() / 2));
        stream.flush();
        return;
      }
      stream.write(line.data(), static_cast<std::streamsize>(line.size()));
      stream.flush();
      if (!stream) throw util::IoError("write failure on journal: " + path_.string());
      break;
    } catch (const util::IoError& error) {
      if (attempt >= kAppendAttempts) throw;
      util::metrics::registry().counter("journal.append_retries").add();
      log::warn() << "journal append failed (" << error.what() << "), retry " << attempt
                  << "/" << (kAppendAttempts - 1);
    }
  }
  entries_[question] = result;
}

void EvalJournal::discard() {
  if (!active()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  std::error_code ec;
  fs::remove(path_, ec);
  entries_.clear();
}

}  // namespace astromlab::eval
