#include "eval/journal.hpp"

#include <fstream>

#include "json/json.hpp"
#include "util/fault_injection.hpp"
#include "util/io.hpp"
#include "util/logging.hpp"

namespace astromlab::eval {

namespace fs = std::filesystem;

EvalJournal::EvalJournal(fs::path path) : path_(std::move(path)) {
  if (path_.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(path_.parent_path(), ec);
  }
  if (!fs::exists(path_)) return;

  const std::string text = util::read_text_file(path_);
  std::size_t start = 0;
  std::size_t skipped = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    const bool terminated = end != std::string::npos;
    if (!terminated) end = text.size();
    const std::string_view line(text.data() + start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    // An unterminated final line is a torn append from a crash mid-write;
    // parse failures inside it are expected and silently dropped.
    try {
      const json::Value obj = json::parse(line);
      QuestionResult result;
      result.predicted = static_cast<int>(obj.get_number("predicted", -1));
      result.correct = static_cast<int>(obj.get_number("correct", 0));
      result.tier = static_cast<corpus::Tier>(static_cast<int>(obj.get_number("tier", 0)));
      result.method =
          static_cast<ExtractionMethod>(static_cast<int>(obj.get_number("method", 3)));
      result.retries = static_cast<int>(obj.get_number("retries", 0));
      result.degraded = obj.get_number("degraded", 0) != 0;
      const auto question = static_cast<std::size_t>(obj.get_number("q", 0));
      entries_[question] = result;
    } catch (const json::ParseError&) {
      ++skipped;
      if (terminated) {
        log::warn() << "skipping malformed journal line in " << path_.string();
      }
    }
  }
  if (!text.empty() && text.back() != '\n') {
    // Truncate the torn tail so the next append starts on a fresh line;
    // otherwise the first resumed record would merge into the torn bytes
    // and be lost at the *following* reload.
    const std::size_t last_newline = text.find_last_of('\n');
    const std::uintmax_t keep = last_newline == std::string::npos ? 0 : last_newline + 1;
    std::error_code ec;
    fs::resize_file(path_, keep, ec);
    if (ec) {
      log::warn() << "could not truncate torn journal tail of " << path_.string() << ": "
                  << ec.message();
    } else {
      log::warn() << "truncated torn tail of journal " << path_.string();
    }
  }
  if (!entries_.empty()) {
    log::info() << "eval journal " << path_.string() << ": resuming with "
                << entries_.size() << " answered questions"
                << (skipped > 0 ? " (dropped a torn line)" : "");
  }
}

std::size_t EvalJournal::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::optional<QuestionResult> EvalJournal::lookup(std::size_t question) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(question);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void EvalJournal::record(std::size_t question, const QuestionResult& result) {
  if (!active()) return;
  json::Value obj = json::Value::object();
  obj.set("q", json::Value(static_cast<std::int64_t>(question)));
  obj.set("predicted", json::Value(result.predicted));
  obj.set("correct", json::Value(result.correct));
  obj.set("tier", json::Value(static_cast<int>(result.tier)));
  obj.set("method", json::Value(static_cast<int>(result.method)));
  obj.set("retries", json::Value(result.retries));
  obj.set("degraded", json::Value(result.degraded ? 1 : 0));
  const std::string line = obj.dump() + "\n";

  std::lock_guard<std::mutex> lock(mutex_);
  const auto action = util::FaultInjector::instance().on_write();
  if (action == util::FaultInjector::Action::kFail) {
    throw util::IoError("injected append failure on journal: " + path_.string());
  }
  std::ofstream stream(path_, std::ios::binary | std::ios::app);
  if (!stream) throw util::IoError("cannot append to journal: " + path_.string());
  if (action == util::FaultInjector::Action::kDrop) {
    // Simulated kill mid-append: commit only a torn prefix of the line
    // (no newline) and do not apply the entry, exactly the state a crash
    // between write and return would leave behind.
    stream.write(line.data(), static_cast<std::streamsize>(line.size() / 2));
    stream.flush();
    return;
  }
  stream.write(line.data(), static_cast<std::streamsize>(line.size()));
  stream.flush();
  if (!stream) throw util::IoError("write failure on journal: " + path_.string());
  entries_[question] = result;
}

void EvalJournal::discard() {
  if (!active()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  std::error_code ec;
  fs::remove(path_, ec);
  entries_.clear();
}

}  // namespace astromlab::eval
