#pragma once
// Shared-prefix KV snapshot cache for the benchmark runners.
//
// All three benchmarking methods prepend the *same* block to every one of
// the benchmark's questions — the two-shot exemplar block for the
// next-token methods, the system/instruct preamble for full-instruct — so
// a naive run re-encodes thousands of identical prefix tokens per method.
// `PrefixCache` encodes that prefix once into a private `GptInference`,
// snapshots its per-layer K/V rows (`nn::KvSnapshot`: zero-copy,
// CRC-tagged), and lets every question fork from the snapshot instead.
//
// The shared prefix is discovered *at the token level*: the cache encodes
// the longest common token prefix of a handful of sample prompts, and each
// fork re-computes the common prefix of the snapshot against the actual
// question's tokens. BPE merges across the prefix/question boundary can
// only shorten the reuse, never corrupt it — the question always feeds
// exactly its own token sequence, so logits (and therefore scores and
// journal bytes) are bit-identical to a cache-off run.
//
// Thread-safety: the snapshot is immutable and shared read-only by all
// workers; each worker forks into its own `GptInference` buffers, and the
// reuse counters are atomics. Eviction (the memory degradation ladder's
// first rung) takes a writer lock against the readers' shared lock; the
// disarmed fast path is one uncontended shared_mutex acquisition.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "nn/gpt.hpp"
#include "tokenizer/bpe.hpp"

namespace astromlab::eval {

/// Aggregate prefill-reuse accounting for one benchmark run.
struct PrefixCacheStats {
  std::uint64_t prompts = 0;        ///< prompts routed through the cache
  std::uint64_t prompt_tokens = 0;  ///< total prompt tokens across them
  std::uint64_t reused_tokens = 0;  ///< tokens restored from the snapshot
  std::uint64_t resident_bytes = 0; ///< encoder K/V bytes held right now
  std::uint64_t evictions = 0;      ///< times the ladder evicted the cache

  /// Fraction of prompt tokens whose prefill was skipped (0 when unused).
  double reuse_ratio() const {
    return prompt_tokens == 0
               ? 0.0
               : static_cast<double>(reused_tokens) / static_cast<double>(prompt_tokens);
  }
};

class PrefixCache {
 public:
  /// Builds the cache by encoding the longest common token prefix of
  /// `sample_prompts` (at least two are needed to identify the shared
  /// block). Returns nullptr when no shareable prefix exists — callers
  /// simply run uncached. When `arena` is non-null the encoder stores its
  /// rows in the shared paged arena, so forks into other paged inferences
  /// on the same arena share the prefix blocks by refcount instead of
  /// copying rows.
  static std::unique_ptr<PrefixCache> build(const nn::GptModel& model,
                                            const tokenizer::BpeTokenizer& tok,
                                            const std::vector<std::string>& sample_prompts,
                                            std::shared_ptr<nn::KvArena> arena = nullptr);

  std::size_t prefix_length() const { return snapshot_.length(); }
  const nn::KvSnapshot& snapshot() const { return snapshot_; }

  /// Resets `inference` and forks it from the snapshot at the longest
  /// common prefix with `prompt_tokens` (capped at prompt length - 1, so
  /// the caller always feeds at least one token and reads fresh logits).
  /// Returns the number of positions reused; the caller feeds
  /// `prompt_tokens[returned:]`. Records the reuse in `stats()`. After
  /// evict() every fork is a plain reset + miss — scores are bit-identical
  /// either way, only prefill work changes.
  std::size_t fork(nn::GptInference& inference,
                   const std::vector<nn::Token>& prompt_tokens) const;

  /// Same contract, forking into one slot of a `BatchedInference` (the
  /// decode engine's admission path). Reuse accounting and the returned
  /// feed offset are identical to the serial overload.
  std::size_t fork(nn::BatchedInference& batch, std::size_t slot,
                   const std::vector<nn::Token>& prompt_tokens) const;

  /// Degradation-ladder rung 1: frees the encoder's K/V buffers, giving
  /// the bytes back to the memory budget. Subsequent forks run uncached
  /// (identical results, full prefill); outstanding `snapshot()` handles
  /// turn stale and fail typed rather than dangle. Idempotent; returns
  /// the bytes freed (0 when already evicted). Thread-safe against
  /// concurrent fork()s.
  std::size_t evict();
  bool evicted() const;

  /// Encoder K/V bytes currently resident (0 after eviction).
  std::size_t resident_bytes() const;

  /// Records one prompt's reuse accounting (thread-safe; used by callers
  /// that fork through `snapshot()` directly, e.g. the sampler path).
  void note_prompt(std::size_t prompt_token_count, std::size_t reused_token_count) const;

  PrefixCacheStats stats() const;

 private:
  PrefixCache(const nn::GptModel& model, std::shared_ptr<nn::KvArena> arena)
      : encoder_(model, std::move(arena)) {}

  nn::GptInference encoder_;  ///< kept alive: owns the snapshot's K/V rows
  nn::KvSnapshot snapshot_;
  /// Guards encoder_/snapshot_ lifetime against evict(): fork() holds it
  /// shared for the duration of the copy-on-fork, evict() exclusively.
  mutable std::shared_mutex evict_mutex_;
  bool evicted_ = false;  ///< guarded by evict_mutex_
  mutable std::atomic<std::uint64_t> prompts_{0};
  mutable std::atomic<std::uint64_t> prompt_tokens_{0};
  mutable std::atomic<std::uint64_t> reused_tokens_{0};
  mutable std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace astromlab::eval
