#include "eval/answer_extract.hpp"

#include <cctype>
#include <regex>

#include "json/json.hpp"

namespace astromlab::eval {

namespace {

std::optional<int> letter_index(char c) {
  if (c >= 'A' && c <= 'D') return c - 'A';
  if (c >= 'a' && c <= 'd') return c - 'a';
  return std::nullopt;
}

/// Reads the answer out of a parsed ANSWER field value like "B", "B:", or
/// "B: 1.0 to 1.5 solar masses".
std::optional<int> parse_answer_field(const std::string& field) {
  for (std::size_t i = 0; i < field.size(); ++i) {
    const char c = field[i];
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    const auto idx = letter_index(c);
    if (!idx) return std::nullopt;
    // Accept only a bare letter or a letter followed by whitespace /
    // punctuation ("B", "B:", "B: 1.0 to 1.5 solar masses"). A letter that
    // merely *starts* a word is not an answer: "Definitely unsure" must
    // not parse as D.
    if (i + 1 < field.size() &&
        std::isalnum(static_cast<unsigned char>(field[i + 1]))) {
      return std::nullopt;
    }
    return idx;
  }
  return std::nullopt;
}

std::optional<int> try_json(const std::string& output) {
  const std::size_t brace = output.find('{');
  if (brace == std::string::npos) return std::nullopt;
  std::size_t offset = brace;
  try {
    const json::Value value = json::parse_prefix(output, offset);
    if (!value.is_object()) return std::nullopt;
    const json::Value* answer = value.find("ANSWER");
    if (answer == nullptr) answer = value.find("answer");
    if (answer == nullptr || !answer->is_string()) return std::nullopt;
    return parse_answer_field(answer->as_string());
  } catch (const json::ParseError&) {
    return std::nullopt;
  }
}

std::optional<int> try_regex(const std::string& output) {
  // The negative lookahead mirrors parse_answer_field's word-boundary rule:
  // without it, the regex fallback would re-extract D from the very
  // '"ANSWER": "Definitely...' payloads the JSON stage just rejected.
  static const std::regex pattern(
      R"rx("?ANSWER"?\s*[:=]\s*"?\s*([A-Da-d])(?![A-Za-z0-9]))rx",
      std::regex::icase);
  std::smatch match;
  if (std::regex_search(output, match, pattern)) {
    return letter_index(match[1].str()[0]);
  }
  return std::nullopt;
}

std::optional<int> try_interpreter(const std::string& output,
                                   const std::array<std::string, 4>& options) {
  // Announcement patterns the fallback LLM would recognise.
  static const std::regex announce(
      R"rx((?:answer\s+is|correct\s+(?:answer|option|choice)\s+is|answer\s*:|option)\s*\(?\s*([A-Da-d])\b)rx",
      std::regex::icase);
  std::smatch match;
  if (std::regex_search(output, match, announce)) {
    return letter_index(match[1].str()[0]);
  }
  // A verbatim option restated in the output counts as choosing it — but
  // only if exactly one option matches.
  int matched = -1;
  int matches = 0;
  for (int i = 0; i < 4; ++i) {
    if (!options[static_cast<std::size_t>(i)].empty() &&
        output.find(options[static_cast<std::size_t>(i)]) != std::string::npos) {
      matched = i;
      ++matches;
    }
  }
  if (matches == 1) return matched;
  // Last resort: a lone capital letter A-D on its own word boundary.
  static const std::regex lone(R"rx((?:^|[\s"'(])([A-D])(?:[\s"'.,):]|$))rx");
  if (std::regex_search(output, match, lone)) {
    return letter_index(match[1].str()[0]);
  }
  return std::nullopt;
}

}  // namespace

ExtractedAnswer extract_answer(const std::string& output,
                               const std::array<std::string, 4>& options) {
  if (auto letter = try_json(output)) {
    return {letter, ExtractionMethod::kJson};
  }
  if (auto letter = try_regex(output)) {
    return {letter, ExtractionMethod::kRegex};
  }
  if (auto letter = try_interpreter(output, options)) {
    return {letter, ExtractionMethod::kInterpreter};
  }
  return {std::nullopt, ExtractionMethod::kFailed};
}

const char* extraction_method_name(ExtractionMethod method) {
  switch (method) {
    case ExtractionMethod::kJson: return "json";
    case ExtractionMethod::kRegex: return "regex";
    case ExtractionMethod::kInterpreter: return "interpreter";
    case ExtractionMethod::kFailed: return "failed";
  }
  return "?";
}

}  // namespace astromlab::eval
