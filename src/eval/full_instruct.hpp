#pragma once
// Full-instruct benchmarking method (paper §V-A, Appendix B).
//
// Each question is rendered through the chat template with the Appendix-B
// instruct prompt, the model generates a complete answer (up to a token
// budget; the paper allows 512), and the answer letter is extracted via
// JSON parse → regex → interpreter fallback. Generation is greedy
// (temperature 0) for reproducibility.

#include <vector>

#include "corpus/mcq.hpp"
#include "eval/journal.hpp"
#include "eval/prefix_cache.hpp"
#include "eval/scorer.hpp"
#include "eval/supervisor.hpp"
#include "nn/decode_engine.hpp"
#include "nn/gpt.hpp"
#include "nn/sampler.hpp"
#include "tokenizer/bpe.hpp"
#include "util/cancel.hpp"

namespace astromlab::eval {

struct FullInstructConfig {
  std::size_t max_new_tokens = 96;
  float temperature = 0.0f;
  std::uint64_t seed = 5;  ///< only used when temperature > 0
  /// Wall-clock budget per question; a question exceeding it is degraded to
  /// `predicted = -1` (counted as unanswered) instead of stalling the
  /// study. 0 disables the watchdog.
  double max_seconds_per_question = 0.0;
  /// Cooperative cancellation (deadline / straggler monitor); polled
  /// in-flight by the sampler. A cancelled question degrades to unanswered.
  const util::CancelToken* cancel = nullptr;
  /// Shared-prefix KV snapshot cache (the system/instruct preamble shared
  /// by every question). Optional; results are bit-identical either way.
  const PrefixCache* prefix_cache = nullptr;
  /// Continuous-batching decode engine: when set, the generation runs in
  /// one of its slots (sharing batched steps with concurrent questions)
  /// instead of a private `nn::Sampler`. Outputs are bit-identical to the
  /// serial path for every batch composition.
  nn::DecodeEngine* engine = nullptr;
};

struct FullInstructOutcome {
  QuestionResult result;
  std::string raw_output;  ///< decoded generation (for inspection)
  bool timed_out = false;  ///< the per-question watchdog fired
  bool cancelled = false;  ///< the cancel token fired mid-generation
};

/// Runs one question; returns the outcome including the raw generation.
/// A non-null `sampler` is reused (its KV buffers are reset per call)
/// instead of allocating a fresh one — the per-worker scratch of the
/// supervised runner.
FullInstructOutcome full_instruct_one(const nn::GptModel& model,
                                      const tokenizer::BpeTokenizer& tok,
                                      const corpus::McqItem& item,
                                      const FullInstructConfig& config,
                                      nn::Sampler* sampler = nullptr);

/// Runs the full benchmark under the fault-isolated Supervisor. With an
/// active `journal`, already-answered questions are skipped (their
/// journalled results reused) and every fresh result is appended durably,
/// making a killed run resumable. `opts` controls parallelism, per-question
/// deadlines, retries, straggler cancellation, and shared-prefix KV reuse
/// (`opts.prefix_cache`); the defaults reproduce the serial reference
/// behaviour bit-for-bit. When `cache_stats` is non-null it receives the
/// prefill reuse accounting of the run; `run_stats` receives the
/// supervisor telemetry (retries, degradations, latency percentiles).
std::vector<QuestionResult> run_full_instruct_benchmark(
    const nn::GptModel& model, const tokenizer::BpeTokenizer& tok,
    const std::vector<corpus::McqItem>& benchmark,
    const FullInstructConfig& config = {}, EvalJournal* journal = nullptr,
    const EvalRunOptions& opts = {}, PrefixCacheStats* cache_stats = nullptr,
    SupervisorStats* run_stats = nullptr);

}  // namespace astromlab::eval
