#pragma once
// Fault-isolated parallel evaluation supervisor.
//
// The 4,425-question × 3-method benchmark (paper Table I) is the
// longest-running stage of every study. The supervisor runs its questions
// across a worker pool with one *fault domain per question*:
//
//  * a `util::CancelToken` per attempt carries the question deadline and
//    external cancellation into the generation / logit loops — true
//    in-flight cancellation, not post-hoc timing;
//  * transient faults (`util::TransientError`, `util::CorruptFileError`)
//    are retried under a `util::RetryPolicy` with exponential backoff and
//    deterministic jitter; permanent faults degrade the question to
//    unanswered — the paper's degrade-don't-crash fallback philosophy
//    (regex → LLM interpreter) applied to the fleet level;
//  * a straggler monitor cancels questions exceeding N× the running
//    median latency so one pathological question cannot stall the run.
//
// Determinism: every question is computed by a pure function of its index,
// so results are bit-identical between serial and parallel runs. Fresh
// results are journalled *in ascending question order* (out-of-order
// completions are buffered until the gap closes), which makes the journal
// file itself byte-identical to a serial run's and keeps a killed parallel
// run resumable from a clean prefix.

#include <cstddef>
#include <functional>
#include <vector>

#include "eval/journal.hpp"
#include "eval/scorer.hpp"
#include "util/cancel.hpp"
#include "util/retry.hpp"

namespace astromlab::eval {

/// Knobs shared by all three benchmarking-method runners.
struct EvalRunOptions {
  /// Worker threads for question evaluation; 0 or 1 runs serially in the
  /// calling thread (the default, and the reference behaviour).
  std::size_t workers = 0;
  /// Per-question wall-clock deadline in seconds, enforced in-flight via
  /// CancelToken (0 disables). Over-deadline questions degrade to
  /// unanswered, never abort the study.
  double question_deadline_seconds = 0.0;
  /// Cancel a question once its elapsed time exceeds this multiple of
  /// the running median question latency (0 disables). Requires
  /// `straggler_min_samples` completions before it starts judging.
  double straggler_factor = 0.0;
  std::size_t straggler_min_samples = 8;
  /// Retry budget + backoff shape for transient faults.
  util::RetryPolicy retry;
  /// Share the prompt-prefix KV snapshot across questions (the runners
  /// encode the common prefix once and fork it per question). Scores and
  /// journal bytes are bit-identical either way; only prefill work changes.
  bool prefix_cache = false;
  /// Continuous-batching decode: >= 2 routes every question's forward
  /// passes through a shared `nn::DecodeEngine` with this many slots, so
  /// concurrent questions coalesce into one batched step per token instead
  /// of solo gemv decodes (the runners raise `workers` to at least this
  /// value so the batch can fill). 0 or 1 keeps the serial per-worker
  /// inference path. Scores, logits, and journal bytes are bit-identical
  /// either way — per-question results never depend on batch composition.
  std::size_t decode_batch = 0;

  /// Degradation-ladder hooks, supplied by the runners. On budget
  /// pressure or std::bad_alloc at the question boundary the supervisor
  /// walks: (1) `evict_cache` — free the shared prefix cache, returns
  /// bytes freed (0 / unset when there is nothing to evict); (2) shrink
  /// effective parallelism by halving the live worker-slot cap, calling
  /// `release_slot_memory(slot)` for each retired slot so the runner can
  /// free its scratch; (3) shed the question to unanswered (never abort).
  /// Evicting or shrinking never changes scores — only shedding does.
  std::function<std::size_t()> evict_cache;
  std::function<std::size_t(std::size_t slot)> release_slot_memory;

  /// Per-worker scratch buffers the runners should allocate: the number of
  /// distinct `worker_slot` values `QuestionFn` can observe.
  std::size_t worker_slots() const { return workers > 1 ? workers : 1; }
};

/// Aggregate telemetry for one supervised run.
struct SupervisorStats {
  std::size_t retried_questions = 0;   ///< needed >= 1 transient retry
  std::size_t total_retries = 0;
  std::size_t degraded_questions = 0;  ///< deadline/straggler/permanent-fault
  std::size_t stragglers_cancelled = 0;
  // Degradation-ladder telemetry (memory pressure at the question boundary).
  std::size_t cache_evictions = 0;         ///< rung 1: prefix cache evicted
  std::size_t parallelism_reductions = 0;  ///< rung 2: worker-slot cap halved
  std::size_t shed_questions = 0;          ///< rung 3: question shed (subset of degraded)
  /// Per-question wall-clock latency over the freshly evaluated questions
  /// (nearest-rank percentiles, seconds). Zero when nothing ran fresh.
  std::size_t completed_questions = 0;
  double latency_p50_s = 0.0;
  double latency_p95_s = 0.0;
  double latency_p99_s = 0.0;
};

class Supervisor {
 public:
  /// Evaluates one question. Must be deterministic in `question`, honour
  /// `cancel` by returning a degraded result (predicted -1, degraded
  /// set), and may throw: transient errors are retried, permanent ones
  /// degrade the question. `worker_slot` < `options.worker_slots()` is
  /// unique among concurrently-running questions, so runners can key
  /// per-worker scratch (KV fork buffers, samplers) on it without locks.
  using QuestionFn = std::function<QuestionResult(
      std::size_t question, std::size_t worker_slot, const util::CancelToken& cancel)>;

  explicit Supervisor(EvalRunOptions options) : options_(std::move(options)) {}

  /// Runs `fn` for every question index in `pending` (ascending), writing
  /// into `results[q]`. Entries of `results` not listed in `pending` are
  /// treated as already answered (journal reuse) and left untouched.
  /// `results[q]` for pending questions must arrive pre-filled with the
  /// ground truth (`correct`, `tier`) so a degraded question still scores
  /// against the right answer key. Fresh results are journalled in
  /// ascending question order. Throws only on journal write failure.
  void run(std::vector<QuestionResult>& results, const std::vector<std::size_t>& pending,
           const QuestionFn& fn, EvalJournal* journal);

  const SupervisorStats& stats() const { return stats_; }

 private:
  EvalRunOptions options_;
  SupervisorStats stats_;
};

/// Merges two optional deadlines (0 = unset) into the stricter one.
double merge_deadlines(double a_seconds, double b_seconds);

}  // namespace astromlab::eval

namespace astromlab::util {
class ArgParser;
}

namespace astromlab::eval {

/// Parses the shared supervisor flags used by the bench binaries:
///   --eval-workers=<n>        worker threads (default 0 = serial)
///   --retry-max=<n>           transient-fault retries per question (default 2)
///   --question-deadline=<s>   per-question deadline in seconds (default 0 = off)
///   --straggler-factor=<f>    cancel at f x median latency (default 0 = off)
///   --prefix-cache={on,off}   shared-prefix KV snapshot reuse (default off)
///   --decode-batch=<n>        continuous-batching decode slots (default 0 = serial)
EvalRunOptions eval_run_options_from_args(const util::ArgParser& args);

}  // namespace astromlab::eval
