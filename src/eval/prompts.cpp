#include "eval/prompts.hpp"

#include <stdexcept>

namespace astromlab::eval {

std::string build_token_prompt(const corpus::McqItem& item,
                               const std::vector<corpus::McqItem>& examples) {
  std::string prompt = std::string(corpus::kExamHeader) + "\n";
  for (const corpus::McqItem& example : examples) {
    prompt += corpus::render_exam_block(example, /*include_answer=*/true);
    prompt += '\n';
  }
  prompt += corpus::render_exam_block(item, /*include_answer=*/false);
  return prompt;
}

std::string build_instruct_prompt(const corpus::McqItem& item) {
  std::vector<corpus::DialogueTurn> turns;
  turns.push_back({corpus::DialogueTurn::Role::kUser, corpus::render_instruct_prompt(item)});
  return corpus::render_generation_prompt(turns);
}

std::vector<corpus::McqItem> pick_fewshot_examples(const std::vector<corpus::McqItem>& pool) {
  if (pool.size() < 2) {
    throw std::invalid_argument("pick_fewshot_examples: need >= 2 practice questions");
  }
  // Deterministic spread: first and middle question of the pool.
  return {pool.front(), pool[pool.size() / 2]};
}

}  // namespace astromlab::eval
