#pragma once
// Benchmark prompt construction (paper Appendices B and C).
//
// * Token-method prompt: the two-shot next-token format — a header, two
//   solved example questions, then the test question ending in "Answer:"
//   so the next token should be the answer letter.
// * Full-instruct prompt: the chat-format Appendix-B prompt rendered
//   through the model's chat template (built in corpus/chat_format).

#include <string>
#include <vector>

#include "corpus/chat_format.hpp"
#include "corpus/mcq.hpp"

namespace astromlab::eval {

/// Builds the Appendix-C two-shot prompt for `item`. `examples` supplies
/// the two solved few-shot questions (practice-pool items; the paper uses
/// two fixed example questions with correct answers).
std::string build_token_prompt(const corpus::McqItem& item,
                               const std::vector<corpus::McqItem>& examples);

/// Builds the full-instruct chat prompt (user turn + opened assistant
/// turn) for `item`.
std::string build_instruct_prompt(const corpus::McqItem& item);

/// Picks two stable few-shot examples from the practice pool (deterministic
/// — the paper uses the same two examples for every question).
std::vector<corpus::McqItem> pick_fewshot_examples(const std::vector<corpus::McqItem>& pool);

}  // namespace astromlab::eval
