#pragma once
// Benchmark scoring: accuracy, bootstrap confidence intervals and
// per-tier / per-extraction-method breakdowns.

#include <cstddef>
#include <string>
#include <vector>

#include "corpus/knowledge.hpp"
#include "eval/answer_extract.hpp"
#include "util/rng.hpp"

namespace astromlab::eval {

/// Outcome of one benchmark question under one method.
struct QuestionResult {
  int predicted = -1;  ///< 0..3, or -1 when no answer was produced
  int correct = 0;     ///< 0..3
  corpus::Tier tier = corpus::Tier::kCanonical;
  ExtractionMethod method = ExtractionMethod::kFailed;  ///< full-instruct only
  /// Transient-fault retries this question needed before producing a
  /// result (supervisor bookkeeping; 0 on the happy path).
  int retries = 0;
  /// True when the answer was *degraded* to unanswered — deadline or
  /// straggler cancellation, watchdog timeout, or a permanent fault —
  /// as opposed to a completed generation the extractor could not parse.
  bool degraded = false;
  /// True when the degradation ladder's last rung dropped the question
  /// under unrelievable memory pressure (a subset of `degraded`): the
  /// cache was already evicted and parallelism already at 1, so the only
  /// remaining move was to shed this question rather than abort the study.
  bool shed = false;

  bool is_correct() const { return predicted == correct; }
};

struct ScoreSummary {
  std::size_t total = 0;
  std::size_t correct = 0;
  double accuracy = 0.0;       ///< fraction in [0,1]
  double ci_low = 0.0;         ///< 95% bootstrap CI
  double ci_high = 0.0;
  double canonical_accuracy = 0.0;
  /// Total canonical-tier questions scored. Distinguishes
  /// `canonical_accuracy == 0.0` (every canonical question wrong) from
  /// "this run contained no canonical questions at all".
  std::size_t canonical_total = 0;
  double frontier_accuracy = 0.0;
  std::size_t frontier_total = 0;
  std::size_t unanswered = 0;  ///< predicted == -1 (extraction failure or
                               ///< watchdog abort); counted as incorrect in
                               ///< `accuracy` but reported separately so
                               ///< unanswered is never silently folded into
                               ///< wrong answers
  double answered_accuracy = 0.0;  ///< accuracy over answered questions only
  /// Questions degraded to unanswered by the fault machinery (deadline /
  /// straggler cancellation, watchdog, permanent fault) — a subset of
  /// `unanswered`, which also counts plain extraction failures.
  std::size_t degraded = 0;
  /// Questions shed by the memory degradation ladder (subset of
  /// `degraded`): answered + shed + (degraded - shed) + parse failures
  /// always accounts for every question — nothing is silently lost.
  std::size_t shed = 0;
  /// Prefix-cache evictions the ladder performed during this run (filled
  /// by the pipeline from SupervisorStats, like the latency block).
  std::size_t cache_evictions = 0;
  /// Questions that needed at least one transient-fault retry.
  std::size_t retried = 0;
  std::size_t json_extractions = 0;
  std::size_t regex_extractions = 0;
  std::size_t interpreter_extractions = 0;
  /// Per-question wall-clock latency (nearest-rank percentiles, seconds)
  /// over the questions evaluated fresh this run. `timed_questions == 0`
  /// (all zeros) means everything replayed from the journal / result
  /// cache, so no timing was observed. Filled by the pipeline from
  /// SupervisorStats — summarize() itself never sees wall-clock time.
  std::size_t timed_questions = 0;
  double latency_p50_s = 0.0;
  double latency_p95_s = 0.0;
  double latency_p99_s = 0.0;
};

/// Computes the summary with a seeded bootstrap (1000 resamples).
ScoreSummary summarize(const std::vector<QuestionResult>& results,
                       std::uint64_t bootstrap_seed = 99,
                       std::size_t bootstrap_resamples = 1000);

/// Percentage string helper: accuracy * 100 at one decimal ("76.0").
std::string percent(double accuracy);

}  // namespace astromlab::eval
