#pragma once
// Answer extraction from full-instruct model output (paper §V-A).
//
// The pipeline mirrors the paper exactly:
//  1. strict parse — find and parse the JSON object, read "ANSWER";
//  2. regex pass — `"ANSWER"\s*:\s*"?([A-D])` even in malformed JSON;
//  3. interpreter fallback — the paper uses GPT-4o to read the intended
//     answer out of free-form explanations; we substitute a rule-based
//     interpreter that scans for answer-announcement patterns and
//     verbatim option text.

#include <array>
#include <optional>
#include <string>

namespace astromlab::eval {

enum class ExtractionMethod {
  kJson,         ///< valid JSON with ANSWER field
  kRegex,        ///< regex over malformed output
  kInterpreter,  ///< rule-based fallback (GPT-4o analog)
  kFailed,       ///< no answer found
};

struct ExtractedAnswer {
  std::optional<int> letter;  ///< 0..3 for A..D
  ExtractionMethod method = ExtractionMethod::kFailed;
};

/// Extracts the intended answer letter from raw model output. `options`
/// are the four option texts (used by the interpreter fallback to match a
/// verbatim restatement of an option).
ExtractedAnswer extract_answer(const std::string& output,
                               const std::array<std::string, 4>& options);

const char* extraction_method_name(ExtractionMethod method);

}  // namespace astromlab::eval
