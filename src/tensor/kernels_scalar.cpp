#include "tensor/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "tensor/bf16.hpp"

// Portable scalar kernel table: the dispatch fallback on CPUs without a
// specialised table and the path ASTROMLAB_FORCE_SCALAR pins for debugging.
// The micro-kernel keeps independent per-lane accumulators so compilers may
// vectorise the j lanes, but the per-element reduction order over k is fixed
// (sequential), matching the determinism contract in kernels.hpp.

namespace astromlab::tensor::detail {

namespace {

constexpr std::size_t kMr = 4;
constexpr std::size_t kNr = 8;

void micro_kernel_4x8(std::size_t kc, const float* a_panel, const float* b_panel,
                      float* c, std::size_t ldc) {
  float acc[kMr][kNr] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const float* a = a_panel + p * kMr;
    const float* b = b_panel + p * kNr;
    for (std::size_t i = 0; i < kMr; ++i) {
      const float ai = a[i];
      for (std::size_t j = 0; j < kNr; ++j) acc[i][j] += ai * b[j];
    }
  }
  for (std::size_t i = 0; i < kMr; ++i) {
    float* c_row = c + i * ldc;
    for (std::size_t j = 0; j < kNr; ++j) c_row[j] += acc[i][j];
  }
}

constexpr float kSqrt2OverPi = 0.7978845608028654f;

float gelu_scalar(float x) {
  const float cube = 0.044715f * x * x * x;
  return 0.5f * x * (1.0f + std::tanh(kSqrt2OverPi * (x + cube)));
}

float gelu_grad_scalar(float x) {
  const float x2 = x * x;
  const float inner = kSqrt2OverPi * (x + 0.044715f * x2 * x);
  const float t = std::tanh(inner);
  const float sech2 = 1.0f - t * t;
  const float d_inner = kSqrt2OverPi * (1.0f + 3.0f * 0.044715f * x2);
  return 0.5f * (1.0f + t) + 0.5f * x * sech2 * d_inner;
}

const KernelVtable kScalarTable = {
    "scalar",
    kMr,
    kNr,
    128,  // mc
    256,  // kc
    512,  // nc
    micro_kernel_4x8,
    scalar_gemv_rows,
    scalar_gemv_rows_multi,
    scalar_axpy,
    scalar_dot,
    scalar_add_inplace,
    scalar_scale_inplace,
    scalar_add_row_bias,
    scalar_gelu_apply,
    scalar_gelu_grad_mul,
    scalar_softmax_row,
    scalar_gemv_rows_bf16,
    scalar_gemv_rows_multi_bf16,
    scalar_gemv_rows_i8,
    scalar_gemv_rows_multi_i8,
};

}  // namespace

const KernelVtable* scalar_kernels() { return &kScalarTable; }

void scalar_axpy(float a, const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

// noinline: every scalar reduction — fp32 gemv, the dot vtable entry, and
// the dequant-fused gemvs below — must run this exact machine code. When
// callers inline their own copies the optimiser is free to pick a different
// (still IEEE-conforming) schedule per call site — e.g. lane-ordered
// vector adds here, contracted scalar FMAs there — and the fused-equals-
// dequantised bit-identity contract silently breaks.
__attribute__((noinline)) float scalar_dot(const float* x, const float* y,
                                           std::size_t n) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

void scalar_add_inplace(float* y, const float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += x[i];
}

void scalar_scale_inplace(float* x, float a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= a;
}

void scalar_add_row_bias(float* matrix, const float* bias, std::size_t rows,
                         std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    float* row = matrix + r * cols;
    for (std::size_t c = 0; c < cols; ++c) row[c] += bias[c];
  }
}

void scalar_gelu_apply(const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = gelu_scalar(x[i]);
}

void scalar_gelu_grad_mul(const float* x, const float* dy, float* dx, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dx[i] = dy[i] * gelu_grad_scalar(x[i]);
}

float scalar_softmax_row(const float* logits, float* probs, std::size_t n) {
  float max_logit = logits[0];
  for (std::size_t i = 1; i < n; ++i) max_logit = std::max(max_logit, logits[i]);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float e = std::exp(logits[i] - max_logit);
    probs[i] = e;
    total += e;
  }
  const float inv = static_cast<float>(1.0 / total);
  for (std::size_t i = 0; i < n; ++i) probs[i] *= inv;
  return max_logit;
}

void scalar_gemv_rows(std::size_t rows, std::size_t k, float alpha, const float* x,
                      const float* b, std::size_t ldb, float* y) {
  for (std::size_t j = 0; j < rows; ++j) {
    y[j] += alpha * scalar_dot(x, b + j * ldb, k);
  }
}

void scalar_gemv_rows_multi(std::size_t rows, std::size_t k, float alpha,
                            const float* const* xs, std::size_t count, const float* b,
                            std::size_t ldb, float* const* ys) {
  for (std::size_t j = 0; j < rows; ++j) {
    const float* row = b + j * ldb;
    // Same scalar_dot reduction per (input, row) as scalar_gemv_rows, just
    // with the weight row hot in cache across all inputs.
    for (std::size_t i = 0; i < count; ++i) {
      ys[i][j] += alpha * scalar_dot(xs[i], row, k);
    }
  }
}

namespace {

// The fused scalar kernels are bit-identical to dequantise-then-gemv BY
// CONSTRUCTION: each weight row is expanded to fp32 in a scratch buffer
// and reduced with the very same (noinline) scalar_dot the fp32 gemv
// calls. Writing the fused reduction as its own loop — even one that is
// token-for-token the same source — is not enough: the optimiser may
// compile the two loops to different but individually-conforming
// schedules, and the contract is about bits, not maths. The copy is
// acceptable here because this table is the correctness fallback; the
// AVX2/NEON tables fuse the widening into hand-written reductions that
// mirror their own fp32 dots instruction for instruction.

float* dequant_scratch(std::size_t k) {
  thread_local std::vector<float> scratch;
  if (scratch.size() < k) scratch.resize(k);
  return scratch.data();
}

float scalar_dot_bf16(const float* x, const std::uint16_t* w, std::size_t n) {
  float* wide = dequant_scratch(n);
  for (std::size_t i = 0; i < n; ++i) wide[i] = bf16_to_float(w[i]);
  return scalar_dot(x, wide, n);
}

float scalar_dot_i8(const float* x, const std::int8_t* w, float scale, std::size_t n) {
  // scale * w[i] with the product rounded to fp32 first — exactly the
  // value dequantize_row materialises.
  float* wide = dequant_scratch(n);
  for (std::size_t i = 0; i < n; ++i) wide[i] = scale * static_cast<float>(w[i]);
  return scalar_dot(x, wide, n);
}

}  // namespace

void scalar_gemv_rows_bf16(std::size_t rows, std::size_t k, float alpha, const float* x,
                           const std::uint16_t* b, std::size_t ldb, float* y) {
  for (std::size_t j = 0; j < rows; ++j) {
    y[j] += alpha * scalar_dot_bf16(x, b + j * ldb, k);
  }
}

void scalar_gemv_rows_multi_bf16(std::size_t rows, std::size_t k, float alpha,
                                 const float* const* xs, std::size_t count,
                                 const std::uint16_t* b, std::size_t ldb,
                                 float* const* ys) {
  for (std::size_t j = 0; j < rows; ++j) {
    const std::uint16_t* row = b + j * ldb;
    for (std::size_t i = 0; i < count; ++i) {
      ys[i][j] += alpha * scalar_dot_bf16(xs[i], row, k);
    }
  }
}

void scalar_gemv_rows_i8(std::size_t rows, std::size_t k, float alpha, const float* x,
                         const std::int8_t* b, std::size_t ldb, const float* scales,
                         float* y) {
  for (std::size_t j = 0; j < rows; ++j) {
    y[j] += alpha * scalar_dot_i8(x, b + j * ldb, scales[j], k);
  }
}

void scalar_gemv_rows_multi_i8(std::size_t rows, std::size_t k, float alpha,
                               const float* const* xs, std::size_t count,
                               const std::int8_t* b, std::size_t ldb,
                               const float* scales, float* const* ys) {
  for (std::size_t j = 0; j < rows; ++j) {
    const std::int8_t* row = b + j * ldb;
    for (std::size_t i = 0; i < count; ++i) {
      ys[i][j] += alpha * scalar_dot_i8(xs[i], row, scales[j], k);
    }
  }
}

}  // namespace astromlab::tensor::detail
