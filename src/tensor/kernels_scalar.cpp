#include "tensor/kernels.hpp"

#include <algorithm>
#include <cmath>

// Portable scalar kernel table: the dispatch fallback on CPUs without a
// specialised table and the path ASTROMLAB_FORCE_SCALAR pins for debugging.
// The micro-kernel keeps independent per-lane accumulators so compilers may
// vectorise the j lanes, but the per-element reduction order over k is fixed
// (sequential), matching the determinism contract in kernels.hpp.

namespace astromlab::tensor::detail {

namespace {

constexpr std::size_t kMr = 4;
constexpr std::size_t kNr = 8;

void micro_kernel_4x8(std::size_t kc, const float* a_panel, const float* b_panel,
                      float* c, std::size_t ldc) {
  float acc[kMr][kNr] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const float* a = a_panel + p * kMr;
    const float* b = b_panel + p * kNr;
    for (std::size_t i = 0; i < kMr; ++i) {
      const float ai = a[i];
      for (std::size_t j = 0; j < kNr; ++j) acc[i][j] += ai * b[j];
    }
  }
  for (std::size_t i = 0; i < kMr; ++i) {
    float* c_row = c + i * ldc;
    for (std::size_t j = 0; j < kNr; ++j) c_row[j] += acc[i][j];
  }
}

constexpr float kSqrt2OverPi = 0.7978845608028654f;

float gelu_scalar(float x) {
  const float cube = 0.044715f * x * x * x;
  return 0.5f * x * (1.0f + std::tanh(kSqrt2OverPi * (x + cube)));
}

float gelu_grad_scalar(float x) {
  const float x2 = x * x;
  const float inner = kSqrt2OverPi * (x + 0.044715f * x2 * x);
  const float t = std::tanh(inner);
  const float sech2 = 1.0f - t * t;
  const float d_inner = kSqrt2OverPi * (1.0f + 3.0f * 0.044715f * x2);
  return 0.5f * (1.0f + t) + 0.5f * x * sech2 * d_inner;
}

const KernelVtable kScalarTable = {
    "scalar",
    kMr,
    kNr,
    128,  // mc
    256,  // kc
    512,  // nc
    micro_kernel_4x8,
    scalar_gemv_rows,
    scalar_gemv_rows_multi,
    scalar_axpy,
    scalar_dot,
    scalar_add_inplace,
    scalar_scale_inplace,
    scalar_add_row_bias,
    scalar_gelu_apply,
    scalar_gelu_grad_mul,
    scalar_softmax_row,
};

}  // namespace

const KernelVtable* scalar_kernels() { return &kScalarTable; }

void scalar_axpy(float a, const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

float scalar_dot(const float* x, const float* y, std::size_t n) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

void scalar_add_inplace(float* y, const float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += x[i];
}

void scalar_scale_inplace(float* x, float a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= a;
}

void scalar_add_row_bias(float* matrix, const float* bias, std::size_t rows,
                         std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    float* row = matrix + r * cols;
    for (std::size_t c = 0; c < cols; ++c) row[c] += bias[c];
  }
}

void scalar_gelu_apply(const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = gelu_scalar(x[i]);
}

void scalar_gelu_grad_mul(const float* x, const float* dy, float* dx, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dx[i] = dy[i] * gelu_grad_scalar(x[i]);
}

float scalar_softmax_row(const float* logits, float* probs, std::size_t n) {
  float max_logit = logits[0];
  for (std::size_t i = 1; i < n; ++i) max_logit = std::max(max_logit, logits[i]);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float e = std::exp(logits[i] - max_logit);
    probs[i] = e;
    total += e;
  }
  const float inv = static_cast<float>(1.0 / total);
  for (std::size_t i = 0; i < n; ++i) probs[i] *= inv;
  return max_logit;
}

void scalar_gemv_rows(std::size_t rows, std::size_t k, float alpha, const float* x,
                      const float* b, std::size_t ldb, float* y) {
  for (std::size_t j = 0; j < rows; ++j) {
    y[j] += alpha * scalar_dot(x, b + j * ldb, k);
  }
}

void scalar_gemv_rows_multi(std::size_t rows, std::size_t k, float alpha,
                            const float* const* xs, std::size_t count, const float* b,
                            std::size_t ldb, float* const* ys) {
  for (std::size_t j = 0; j < rows; ++j) {
    const float* row = b + j * ldb;
    // Same scalar_dot reduction per (input, row) as scalar_gemv_rows, just
    // with the weight row hot in cache across all inputs.
    for (std::size_t i = 0; i < count; ++i) {
      ys[i][j] += alpha * scalar_dot(xs[i], row, k);
    }
  }
}

}  // namespace astromlab::tensor::detail
