#pragma once
// Dense row-major float tensor.
//
// A deliberately small owning container: contiguous fp32 storage plus a
// shape. All layout-dependent math lives in ops.hpp / the nn layers, which
// operate on raw spans for speed; Tensor's job is ownership, shape checks,
// and initialisation.
//
// Storage is charged against the process `util::ResourceBudget` (tensor
// domain): Tensor is the dominant dense-allocation site, so a configured
// `--memory-budget-mb` can refuse an oversized tensor with a typed
// `ResourceExhaustedError` before the heap is touched. With no budget set
// the accounting is two relaxed atomics per allocate/free.

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/resource_budget.hpp"
#include "util/rng.hpp"

namespace astromlab::tensor {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::initializer_list<std::size_t> shape)
      : Tensor(std::vector<std::size_t>(shape)) {}

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t dim(std::size_t axis) const {
    assert(axis < shape_.size());
    return shape_[axis];
  }
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return {data_.data(), data_.size()}; }
  std::span<const float> span() const { return {data_.data(), data_.size()}; }

  float& operator[](std::size_t i) {
    assert(i < data_.size());
    return data_[i];
  }
  float operator[](std::size_t i) const {
    assert(i < data_.size());
    return data_[i];
  }

  /// 2-D accessor (rank must be 2).
  float& at(std::size_t row, std::size_t col) {
    assert(rank() == 2 && row < shape_[0] && col < shape_[1]);
    return data_[row * shape_[1] + col];
  }
  float at(std::size_t row, std::size_t col) const {
    assert(rank() == 2 && row < shape_[0] && col < shape_[1]);
    return data_[row * shape_[1] + col];
  }

  void fill(float value);
  void zero() { fill(0.0f); }

  /// Gaussian init with given std (mean 0).
  void fill_gaussian(util::Rng& rng, float stddev);

  /// Uniform init in [lo, hi).
  void fill_uniform(util::Rng& rng, float lo, float hi);

  /// Reshape in place; total element count must match.
  void reshape(std::vector<std::size_t> shape);

  /// Resizes storage (destroys contents).
  void resize(std::vector<std::size_t> shape);

  /// "[2, 3, 4]" for diagnostics.
  std::string shape_string() const;

  // Reductions used by tests and grad-norm computation.
  float sum() const;
  float abs_max() const;
  double squared_norm() const;

 private:
  using Storage =
      std::vector<float, util::TrackedAllocator<float, util::MemoryDomain::kTensor>>;

  std::vector<std::size_t> shape_;
  Storage data_;
};

/// Elementwise |a-b| max; shapes must match.
float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace astromlab::tensor
