#pragma once
// Dense kernels used by the transformer forward/backward passes.
//
// All matrices are row-major. The central kernel is `sgemm`, a BLAS-style
// general matrix multiply with transpose flags. It is implemented as a
// register-blocked, cache-tiled GEMM with A/B panel packing: all four
// transpose variants are packed into the same micro-panel layout and run
// through one ISA-specialised micro-kernel (AVX2+FMA, NEON, or the portable
// scalar fallback), selected once at startup by runtime CPU detection.
// Threading splits the packed row tiles across the shared pool; the
// reduction order per output element is fixed, so results are run-to-run
// deterministic for a given build and kernel. Everything in nn/ reduces to
// these primitives so performance work concentrates here.
//
// Environment knobs (read once, at first kernel use):
//   ASTROMLAB_KERNEL=scalar|avx2|neon  pin a specific kernel table
//   ASTROMLAB_FORCE_SCALAR=1           shorthand for ASTROMLAB_KERNEL=scalar

#include <cstddef>
#include <span>
#include <string_view>

namespace astromlab::tensor {

/// C = alpha * op(A) * op(B) + beta * C
///
/// op(A) is M x K, op(B) is K x N, C is M x N; lda/ldb/ldc are the leading
/// (row) strides of the *stored* matrices. With trans_a=false A is stored
/// M x K (lda >= K); with trans_a=true A is stored K x M (lda >= M), and
/// likewise for B.
///
/// IEEE semantics: zeros in A do not short-circuit, so inf/NaN in B
/// propagate into C (0 * inf = NaN), matching the naive triple loop.
void sgemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n, std::size_t k,
           float alpha, const float* a, std::size_t lda, const float* b, std::size_t ldb,
           float beta, float* c, std::size_t ldc);

/// Batched matvec against one shared weight matrix: for each pair i in
/// [0, count), ys[i][j] = alpha * <xs[i], B row j> for j in [0, n), with B
/// stored [n, k] row-major (leading stride ldb >= k) — the `y = x * W^T`
/// layout of every linear layer at decode time.
///
/// Bit-identity contract: each output row j of each pair is produced by the
/// same per-row kernel the m == 1 trans_b `sgemm` fast path uses, with the
/// same fixed reduction order, so every ys[i] is bitwise identical to
///   sgemm(false, true, 1, n, k, alpha, xs[i], k, b, ldb, 0.0f, ys[i], n)
/// regardless of `count`, row chunking, or thread count. The speedup over
/// `count` separate gemvs is pure memory locality: each chunk of W rows is
/// streamed from cache once and applied to all `count` inputs while hot.
void multi_gemv(std::size_t n, std::size_t k, float alpha, const float* const* xs,
                std::size_t count, const float* b, std::size_t ldb, float* const* ys);

/// The pre-dispatch scalar loop nests, kept verbatim as the fallback
/// semantics oracle for tests and the baseline for the kernel bench. Same
/// contract as `sgemm` (including IEEE zero-times-inf propagation).
void sgemm_reference(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
                     std::size_t k, float alpha, const float* a, std::size_t lda,
                     const float* b, std::size_t ldb, float beta, float* c,
                     std::size_t ldc);

/// Name of the kernel table the dispatcher selected ("avx2", "neon",
/// "scalar"). Triggers dispatch (and the one-time startup log) on first use.
const char* kernel_name();

/// Pins the kernel table: "scalar", "avx2", "neon", or "auto" to restore
/// the startup selection (runtime detection plus the ASTROMLAB_KERNEL /
/// ASTROMLAB_FORCE_SCALAR knobs). Returns false (and changes nothing) if the requested
/// table is not available in this build/CPU. Intended for tests and the
/// force-scalar escape hatch; do not call concurrently with running kernels.
bool set_kernel_override(std::string_view name);

/// y += x (elementwise over n values).
void add_inplace(float* y, const float* x, std::size_t n);

/// y = a * x + y.
void axpy(float a, const float* x, float* y, std::size_t n);

/// Scales x by a.
void scale_inplace(float* x, float a, std::size_t n);

/// Adds a row-vector bias to every row of a [rows, cols] matrix.
void add_row_bias(float* matrix, const float* bias, std::size_t rows, std::size_t cols);

/// In-place numerically-stable softmax over each row of [rows, cols].
void softmax_rows(float* matrix, std::size_t rows, std::size_t cols);

/// Softmax of one row with explicit output; returns the max logit (useful
/// for log-prob computation). probs may alias logits.
float softmax_row(const float* logits, float* probs, std::size_t n);

/// tanh-approximation GELU, the GPT-2 variant (scalar reference).
float gelu(float x);
/// d gelu(x) / dx for the same approximation (scalar reference).
float gelu_grad(float x);

/// y[i] = gelu(x[i]) for i in [0, n); y may alias x. Vectorised where the
/// selected kernel supports it.
void gelu_apply(const float* x, float* y, std::size_t n);

/// dx[i] = dy[i] * gelu_grad(x[i]); dx may alias dy.
void gelu_grad_mul(const float* x, const float* dy, float* dx, std::size_t n);

/// Dot product.
float dot(const float* a, const float* b, std::size_t n);

}  // namespace astromlab::tensor
