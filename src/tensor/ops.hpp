#pragma once
// Dense kernels used by the transformer forward/backward passes.
//
// All matrices are row-major. The central kernel is `sgemm`, a BLAS-style
// general matrix multiply with transpose flags, blocked for cache reuse and
// parallelised over output rows. Everything in nn/ reduces to these
// primitives so performance work concentrates here.

#include <cstddef>
#include <span>

namespace astromlab::tensor {

/// C = alpha * op(A) * op(B) + beta * C
///
/// op(A) is M x K, op(B) is K x N, C is M x N; lda/ldb/ldc are the leading
/// (row) strides of the *stored* matrices. With trans_a=false A is stored
/// M x K (lda >= K); with trans_a=true A is stored K x M (lda >= M), and
/// likewise for B.
void sgemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n, std::size_t k,
           float alpha, const float* a, std::size_t lda, const float* b, std::size_t ldb,
           float beta, float* c, std::size_t ldc);

/// y += x (elementwise over n values).
void add_inplace(float* y, const float* x, std::size_t n);

/// y = a * x + y.
void axpy(float a, const float* x, float* y, std::size_t n);

/// Scales x by a.
void scale_inplace(float* x, float a, std::size_t n);

/// Adds a row-vector bias to every row of a [rows, cols] matrix.
void add_row_bias(float* matrix, const float* bias, std::size_t rows, std::size_t cols);

/// In-place numerically-stable softmax over each row of [rows, cols].
void softmax_rows(float* matrix, std::size_t rows, std::size_t cols);

/// Softmax of one row with explicit output; returns the max logit (useful
/// for log-prob computation).
float softmax_row(const float* logits, float* probs, std::size_t n);

/// tanh-approximation GELU, the GPT-2 variant.
float gelu(float x);
/// d gelu(x) / dx for the same approximation.
float gelu_grad(float x);

/// Dot product.
float dot(const float* a, const float* b, std::size_t n);

}  // namespace astromlab::tensor
