#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace astromlab::tensor {

namespace {
std::size_t product(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}
}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape) : shape_(std::move(shape)) {
  data_.assign(product(shape_), 0.0f);
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

void Tensor::fill_gaussian(util::Rng& rng, float stddev) {
  for (float& v : data_) v = static_cast<float>(rng.next_gaussian()) * stddev;
}

void Tensor::fill_uniform(util::Rng& rng, float lo, float hi) {
  const float span = hi - lo;
  for (float& v : data_) v = lo + rng.next_float() * span;
}

void Tensor::reshape(std::vector<std::size_t> shape) {
  if (product(shape) != data_.size()) {
    throw std::invalid_argument("reshape: element count mismatch");
  }
  shape_ = std::move(shape);
}

void Tensor::resize(std::vector<std::size_t> shape) {
  shape_ = std::move(shape);
  data_.assign(product(shape_), 0.0f);
}

std::string Tensor::shape_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(shape_[i]);
  }
  out += "]";
  return out;
}

float Tensor::sum() const {
  double total = 0.0;
  for (float v : data_) total += v;
  return static_cast<float>(total);
}

float Tensor::abs_max() const {
  float best = 0.0f;
  for (float v : data_) best = std::max(best, std::abs(v));
  return best;
}

double Tensor::squared_norm() const {
  double total = 0.0;
  for (float v : data_) total += static_cast<double>(v) * v;
  return total;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument("max_abs_diff: shape mismatch " + a.shape_string() + " vs " +
                                b.shape_string());
  }
  float best = 0.0f;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    best = std::max(best, std::abs(a[i] - b[i]));
  }
  return best;
}

}  // namespace astromlab::tensor
