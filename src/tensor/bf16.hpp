#pragma once
// bfloat16 storage type.
//
// The paper trains in bf16; we train in fp32 (CPU) but store checkpoints in
// bf16 to halve their size and to model the quantisation the paper's
// training format implies. Conversion uses round-to-nearest-even, matching
// hardware bf16 units.

#include <cstdint>
#include <cstring>

namespace astromlab::tensor {

/// 16-bit truncated-mantissa float (1 sign, 8 exponent, 7 mantissa bits).
struct Bf16 {
  std::uint16_t bits = 0;

  Bf16() = default;
  explicit Bf16(float value) { bits = from_float(value); }

  float to_float() const {
    const std::uint32_t wide = static_cast<std::uint32_t>(bits) << 16;
    float out;
    std::memcpy(&out, &wide, sizeof out);
    return out;
  }

  static std::uint16_t from_float(float value) {
    std::uint32_t wide;
    std::memcpy(&wide, &value, sizeof wide);
    // NaN must stay NaN: truncation could zero the mantissa of a NaN.
    if ((wide & 0x7FFFFFFFu) > 0x7F800000u) {
      return static_cast<std::uint16_t>((wide >> 16) | 0x0040u);
    }
    // Round to nearest even on the discarded 16 bits.
    const std::uint32_t rounding_bias = 0x7FFFu + ((wide >> 16) & 1u);
    return static_cast<std::uint16_t>((wide + rounding_bias) >> 16);
  }
};

inline float bf16_to_float(std::uint16_t bits) {
  Bf16 v;
  v.bits = bits;
  return v.to_float();
}

inline std::uint16_t float_to_bf16(float value) { return Bf16::from_float(value); }

/// Round-trips a float through bf16 (the checkpoint quantisation step).
inline float bf16_round(float value) { return bf16_to_float(float_to_bf16(value)); }

}  // namespace astromlab::tensor
