#include "tensor/kernels.hpp"

// NEON kernel table for aarch64, where Advanced SIMD is baseline so no
// special compile flags are needed. The GEMM micro-kernel and the linear
// vector ops are vectorised; the transcendental ops (gelu, softmax) keep the
// shared scalar implementations — exact parity with the scalar path there,
// and no hand-rolled NEON exp to maintain.

#if defined(ASTROMLAB_KERNEL_NEON) && defined(__aarch64__)

#include <arm_neon.h>

#include <cstring>

namespace astromlab::tensor::detail {

namespace {

constexpr std::size_t kMr = 8;
constexpr std::size_t kNr = 8;

// 8x8 micro-kernel: 16 q-register accumulators + 2 B loads + broadcasts fit
// the 32 NEON registers.
void micro_kernel_8x8(std::size_t kc, const float* a_panel, const float* b_panel,
                      float* c, std::size_t ldc) {
  float32x4_t acc[kMr][2];
  for (std::size_t i = 0; i < kMr; ++i) {
    acc[i][0] = vdupq_n_f32(0.0f);
    acc[i][1] = vdupq_n_f32(0.0f);
  }
  for (std::size_t p = 0; p < kc; ++p) {
    const float32x4_t b0 = vld1q_f32(b_panel + p * kNr);
    const float32x4_t b1 = vld1q_f32(b_panel + p * kNr + 4);
    const float* a = a_panel + p * kMr;
    for (std::size_t i = 0; i < kMr; ++i) {
      const float32x4_t av = vdupq_n_f32(a[i]);
      acc[i][0] = vfmaq_f32(acc[i][0], av, b0);
      acc[i][1] = vfmaq_f32(acc[i][1], av, b1);
    }
  }
  for (std::size_t i = 0; i < kMr; ++i) {
    float* row = c + i * ldc;
    vst1q_f32(row, vaddq_f32(vld1q_f32(row), acc[i][0]));
    vst1q_f32(row + 4, vaddq_f32(vld1q_f32(row + 4), acc[i][1]));
  }
}

float dot_neon(const float* x, const float* y, std::size_t n) {
  float32x4_t acc0 = vdupq_n_f32(0.0f), acc1 = vdupq_n_f32(0.0f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(x + i), vld1q_f32(y + i));
    acc1 = vfmaq_f32(acc1, vld1q_f32(x + i + 4), vld1q_f32(y + i + 4));
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(x + i), vld1q_f32(y + i));
  }
  float total = vaddvq_f32(vaddq_f32(acc0, acc1));
  for (; i < n; ++i) total += x[i] * y[i];
  return total;
}

void axpy_neon(float a, const float* x, float* y, std::size_t n) {
  const float32x4_t va = vdupq_n_f32(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i, vfmaq_f32(vld1q_f32(y + i), va, vld1q_f32(x + i)));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void add_inplace_neon(float* y, const float* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i, vaddq_f32(vld1q_f32(y + i), vld1q_f32(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

void scale_inplace_neon(float* x, float a, std::size_t n) {
  const float32x4_t va = vdupq_n_f32(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(x + i, vmulq_f32(vld1q_f32(x + i), va));
  }
  for (; i < n; ++i) x[i] *= a;
}

void add_row_bias_neon(float* matrix, const float* bias, std::size_t rows,
                       std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    float* row = matrix + r * cols;
    std::size_t i = 0;
    for (; i + 4 <= cols; i += 4) {
      vst1q_f32(row + i, vaddq_f32(vld1q_f32(row + i), vld1q_f32(bias + i)));
    }
    for (; i < cols; ++i) row[i] += bias[i];
  }
}

void gemv_rows_neon(std::size_t rows, std::size_t k, float alpha, const float* x,
                    const float* b, std::size_t ldb, float* y) {
  for (std::size_t j = 0; j < rows; ++j) {
    y[j] += alpha * dot_neon(x, b + j * ldb, k);
  }
}

void gemv_rows_multi_neon(std::size_t rows, std::size_t k, float alpha,
                          const float* const* xs, std::size_t count, const float* b,
                          std::size_t ldb, float* const* ys) {
  for (std::size_t j = 0; j < rows; ++j) {
    const float* row = b + j * ldb;
    // Same dot_neon reduction per (input, row) as gemv_rows_neon; the row
    // stays cache-hot across all inputs.
    for (std::size_t i = 0; i < count; ++i) {
      ys[i][j] += alpha * dot_neon(xs[i], row, k);
    }
  }
}

// ---------------------------------------------------------------------------
// Dequant-fused matvecs mirroring dot_neon exactly — same two accumulator
// chains, 8-wide main loop, 4-wide loop, vaddvq reduction, scalar tail —
// with the weight loads swapped for widening loads. bf16 widening is a pure
// bit shift (exact); the int8 path multiplies each widened lane by the row
// scale before the FMA, matching a dequantise-then-dot_neon oracle bitwise.

float widen_bf16(std::uint16_t bits) {
  const std::uint32_t wide = static_cast<std::uint32_t>(bits) << 16;
  float out;
  std::memcpy(&out, &wide, sizeof out);
  return out;
}

float32x4_t load_bf16_4(const std::uint16_t* p) {
  return vreinterpretq_f32_u32(vshll_n_u16(vld1_u16(p), 16));
}

float32x4_t load_i8_4(const std::int8_t* p) {
  std::int32_t raw;
  std::memcpy(&raw, p, sizeof raw);
  const int16x8_t w16 = vmovl_s8(vreinterpret_s8_s32(vdup_n_s32(raw)));
  return vcvtq_f32_s32(vmovl_s16(vget_low_s16(w16)));
}

float dot_bf16_neon(const float* x, const std::uint16_t* w, std::size_t n) {
  float32x4_t acc0 = vdupq_n_f32(0.0f), acc1 = vdupq_n_f32(0.0f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(x + i), load_bf16_4(w + i));
    acc1 = vfmaq_f32(acc1, vld1q_f32(x + i + 4), load_bf16_4(w + i + 4));
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(x + i), load_bf16_4(w + i));
  }
  float total = vaddvq_f32(vaddq_f32(acc0, acc1));
  for (; i < n; ++i) total += x[i] * widen_bf16(w[i]);
  return total;
}

float dot_i8_neon(const float* x, const std::int8_t* w, float scale, std::size_t n) {
  const float32x4_t vscale = vdupq_n_f32(scale);
  float32x4_t acc0 = vdupq_n_f32(0.0f), acc1 = vdupq_n_f32(0.0f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const int16x8_t w16 = vmovl_s8(vld1_s8(w + i));
    const float32x4_t lo = vcvtq_f32_s32(vmovl_s16(vget_low_s16(w16)));
    const float32x4_t hi = vcvtq_f32_s32(vmovl_s16(vget_high_s16(w16)));
    acc0 = vfmaq_f32(acc0, vld1q_f32(x + i), vmulq_f32(lo, vscale));
    acc1 = vfmaq_f32(acc1, vld1q_f32(x + i + 4), vmulq_f32(hi, vscale));
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(x + i), vmulq_f32(load_i8_4(w + i), vscale));
  }
  float total = vaddvq_f32(vaddq_f32(acc0, acc1));
  for (; i < n; ++i) total += x[i] * (scale * static_cast<float>(w[i]));
  return total;
}

void gemv_rows_bf16_neon(std::size_t rows, std::size_t k, float alpha, const float* x,
                         const std::uint16_t* b, std::size_t ldb, float* y) {
  for (std::size_t j = 0; j < rows; ++j) {
    y[j] += alpha * dot_bf16_neon(x, b + j * ldb, k);
  }
}

void gemv_rows_multi_bf16_neon(std::size_t rows, std::size_t k, float alpha,
                               const float* const* xs, std::size_t count,
                               const std::uint16_t* b, std::size_t ldb,
                               float* const* ys) {
  for (std::size_t j = 0; j < rows; ++j) {
    const std::uint16_t* row = b + j * ldb;
    for (std::size_t i = 0; i < count; ++i) {
      ys[i][j] += alpha * dot_bf16_neon(xs[i], row, k);
    }
  }
}

void gemv_rows_i8_neon(std::size_t rows, std::size_t k, float alpha, const float* x,
                       const std::int8_t* b, std::size_t ldb, const float* scales,
                       float* y) {
  for (std::size_t j = 0; j < rows; ++j) {
    y[j] += alpha * dot_i8_neon(x, b + j * ldb, scales[j], k);
  }
}

void gemv_rows_multi_i8_neon(std::size_t rows, std::size_t k, float alpha,
                             const float* const* xs, std::size_t count,
                             const std::int8_t* b, std::size_t ldb,
                             const float* scales, float* const* ys) {
  for (std::size_t j = 0; j < rows; ++j) {
    const std::int8_t* row = b + j * ldb;
    for (std::size_t i = 0; i < count; ++i) {
      ys[i][j] += alpha * dot_i8_neon(xs[i], row, scales[j], k);
    }
  }
}

const KernelVtable kNeonTable = {
    "neon",
    kMr,
    kNr,
    128,  // mc
    256,  // kc
    512,  // nc
    micro_kernel_8x8,
    gemv_rows_neon,
    gemv_rows_multi_neon,
    axpy_neon,
    dot_neon,
    add_inplace_neon,
    scale_inplace_neon,
    add_row_bias_neon,
    scalar_gelu_apply,
    scalar_gelu_grad_mul,
    scalar_softmax_row,
    gemv_rows_bf16_neon,
    gemv_rows_multi_bf16_neon,
    gemv_rows_i8_neon,
    gemv_rows_multi_i8_neon,
};

}  // namespace

const KernelVtable* neon_kernels() { return &kNeonTable; }

}  // namespace astromlab::tensor::detail

#else  // !ASTROMLAB_KERNEL_NEON

namespace astromlab::tensor::detail {
const KernelVtable* neon_kernels() { return nullptr; }
}  // namespace astromlab::tensor::detail

#endif
