#pragma once
// Internal ISA-specialised kernel table behind tensor::sgemm and the
// elementwise/vector ops in ops.hpp.
//
// The packed-GEMM driver in ops.cpp is portable: it tiles op(A)/op(B) into
// cache-resident panels (A in kc x mr micro-panels, B in kc x nr
// micro-panels) and hands every full tile to `micro_kernel`. Only the
// micro-kernel and the vector primitives differ per ISA; each lives in its
// own translation unit compiled with the matching -m flags
// (kernels_scalar.cpp, kernels_avx2.cpp, kernels_neon.cpp) and is selected
// once at startup by CPUID-style runtime dispatch — so a single binary runs
// correctly on machines with and without the extension.
//
// Determinism contract: for a fixed build and kernel choice, every entry
// uses a fixed reduction order (per-lane sequential over k, fixed-shape
// horizontal reductions), independent of thread count. Run-to-run results
// are bit-identical.

#include <cstddef>
#include <cstdint>

namespace astromlab::tensor::detail {

/// Upper bounds on any vtable's micro-tile, sizing the driver's on-stack
/// edge-tile buffer.
inline constexpr std::size_t kMaxMr = 8;
inline constexpr std::size_t kMaxNr = 32;

struct KernelVtable {
  const char* name;  ///< "scalar" | "avx2" | "neon" — surfaced in logs/bench JSON.

  std::size_t mr, nr;      ///< micro-kernel tile: C update is mr x nr
  std::size_t mc, kc, nc;  ///< cache-blocking defaults (rows, depth, cols)

  /// C[0..mr)x[0..nr) += sum_p a_panel[p*mr + i] * b_panel[p*nr + j].
  /// a_panel/b_panel are packed (contiguous, zero-padded to mr/nr); c has
  /// row stride ldc. Accumulates — caller handles alpha (folded into the
  /// packed A) and beta (applied before the panel loop).
  void (*micro_kernel)(std::size_t kc, const float* a_panel, const float* b_panel,
                       float* c, std::size_t ldc);

  /// y[j] += alpha * dot(x, B row j) for j in [0, rows); B rows have stride
  /// ldb and length k. The m==1, trans_b sgemm fast path (decode lm-head).
  void (*gemv_rows)(std::size_t rows, std::size_t k, float alpha, const float* x,
                    const float* b, std::size_t ldb, float* y);

  /// Batched-decode variant: ys[i][j] += alpha * dot(xs[i], B row j) for
  /// every (input i, row j). Each (i, j) reduction is THE SAME `dot` the
  /// single-input gemv_rows entry uses — bitwise-identical per pair — but
  /// the loop nest runs rows outermost, so one weight row is loaded once
  /// and reused across all `count` inputs (L1/register residency) and the
  /// inputs' independent FMA chains overlap instead of serialising on one
  /// accumulator's latency. This is where continuous-batching decode gets
  /// its throughput without giving up bit-identity.
  void (*gemv_rows_multi)(std::size_t rows, std::size_t k, float alpha,
                          const float* const* xs, std::size_t count, const float* b,
                          std::size_t ldb, float* const* ys);

  void (*axpy)(float a, const float* x, float* y, std::size_t n);
  float (*dot)(const float* x, const float* y, std::size_t n);
  void (*add_inplace)(float* y, const float* x, std::size_t n);
  void (*scale_inplace)(float* x, float a, std::size_t n);
  void (*add_row_bias)(float* matrix, const float* bias, std::size_t rows,
                       std::size_t cols);
  /// y = gelu(x) elementwise; y may alias x.
  void (*gelu_apply)(const float* x, float* y, std::size_t n);
  /// dx = dy * gelu'(x) elementwise; dx may alias dy.
  void (*gelu_grad_mul)(const float* x, const float* dy, float* dx, std::size_t n);
  /// Numerically-stable softmax; returns the max logit. probs may alias
  /// logits.
  float (*softmax_row)(const float* logits, float* probs, std::size_t n);

  // Dequant-fused matvec kernels over reduced-precision weight rows. Each
  // widens one weight element to fp32 inline and then runs THE SAME
  // accumulator structure (lane count, main/tail loops, horizontal
  // reduction tree) as this table's fp32 `dot`, so:
  //   * fused bf16 results are bitwise identical to running the fp32 gemv
  //     over pre-widened weights (bf16 -> fp32 widening is exact), and
  //   * fused int8 results are bitwise identical to dequantising the rows
  //     (scale * int8, per element) and running the fp32 gemv — under the
  //     same kernel table.
  // bf16 rows store raw bf16 bit patterns; int8 rows carry one fp32
  // absmax scale per row (scales[j] belongs to row j of `b`).
  void (*gemv_rows_bf16)(std::size_t rows, std::size_t k, float alpha, const float* x,
                         const std::uint16_t* b, std::size_t ldb, float* y);
  void (*gemv_rows_multi_bf16)(std::size_t rows, std::size_t k, float alpha,
                               const float* const* xs, std::size_t count,
                               const std::uint16_t* b, std::size_t ldb,
                               float* const* ys);
  void (*gemv_rows_i8)(std::size_t rows, std::size_t k, float alpha, const float* x,
                       const std::int8_t* b, std::size_t ldb, const float* scales,
                       float* y);
  void (*gemv_rows_multi_i8)(std::size_t rows, std::size_t k, float alpha,
                             const float* const* xs, std::size_t count,
                             const std::int8_t* b, std::size_t ldb,
                             const float* scales, float* const* ys);
};

/// Always available; the portable fallback and the test oracle's kernels.
const KernelVtable* scalar_kernels();
/// AVX2+FMA table, or nullptr when the TU was built without AVX2 support.
/// Call only after checking the CPU actually has avx2+fma.
const KernelVtable* avx2_kernels();
/// NEON table (aarch64), or nullptr on other architectures.
const KernelVtable* neon_kernels();

// Scalar primitives with external linkage so SIMD tables can reuse them for
// entries they do not specialise (e.g. NEON keeps scalar transcendentals).
void scalar_axpy(float a, const float* x, float* y, std::size_t n);
float scalar_dot(const float* x, const float* y, std::size_t n);
void scalar_add_inplace(float* y, const float* x, std::size_t n);
void scalar_scale_inplace(float* x, float a, std::size_t n);
void scalar_add_row_bias(float* matrix, const float* bias, std::size_t rows,
                         std::size_t cols);
void scalar_gelu_apply(const float* x, float* y, std::size_t n);
void scalar_gelu_grad_mul(const float* x, const float* dy, float* dx, std::size_t n);
float scalar_softmax_row(const float* logits, float* probs, std::size_t n);
void scalar_gemv_rows(std::size_t rows, std::size_t k, float alpha, const float* x,
                      const float* b, std::size_t ldb, float* y);
void scalar_gemv_rows_multi(std::size_t rows, std::size_t k, float alpha,
                            const float* const* xs, std::size_t count, const float* b,
                            std::size_t ldb, float* const* ys);
void scalar_gemv_rows_bf16(std::size_t rows, std::size_t k, float alpha, const float* x,
                           const std::uint16_t* b, std::size_t ldb, float* y);
void scalar_gemv_rows_multi_bf16(std::size_t rows, std::size_t k, float alpha,
                                 const float* const* xs, std::size_t count,
                                 const std::uint16_t* b, std::size_t ldb,
                                 float* const* ys);
void scalar_gemv_rows_i8(std::size_t rows, std::size_t k, float alpha, const float* x,
                         const std::int8_t* b, std::size_t ldb, const float* scales,
                         float* y);
void scalar_gemv_rows_multi_i8(std::size_t rows, std::size_t k, float alpha,
                               const float* const* xs, std::size_t count,
                               const std::int8_t* b, std::size_t ldb,
                               const float* scales, float* const* ys);

/// The kernel table the runtime dispatcher selected for this process
/// (defined in ops.cpp; triggers startup selection on first use). Exposed
/// so the quantised-matvec entry points in quant.cpp can route through the
/// same table as every fp32 op.
const KernelVtable& active_kernel_table();

}  // namespace astromlab::tensor::detail
