#include "tensor/quant.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "tensor/bf16.hpp"
#include "tensor/kernels.hpp"
#include "util/thread_pool.hpp"

namespace astromlab::tensor {

namespace {

using detail::KernelVtable;

/// Matches ops.cpp's gemv grain: a task below this many flops is not worth
/// a pool hop.
constexpr std::size_t kMinFlopsPerTask = 1u << 16;

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

}  // namespace

const char* weight_dtype_name(WeightDtype dtype) {
  switch (dtype) {
    case WeightDtype::kF32:
      return "fp32";
    case WeightDtype::kBf16:
      return "bf16";
    case WeightDtype::kInt8:
      return "int8";
  }
  return "unknown";
}

WeightDtype parse_weight_dtype(std::string_view name) {
  if (name == "fp32" || name == "f32" || name == "float32") return WeightDtype::kF32;
  if (name == "bf16" || name == "bfloat16") return WeightDtype::kBf16;
  if (name == "int8" || name == "i8") return WeightDtype::kInt8;
  throw std::invalid_argument("weight dtype must be fp32, bf16 or int8, got '" +
                              std::string(name) + "'");
}

std::size_t QuantMatrix::bytes() const {
  return bf16.size() * sizeof(std::uint16_t) + i8.size() * sizeof(std::int8_t) +
         scales.size() * sizeof(float);
}

QuantMatrix quantize(WeightDtype dtype, const float* w, std::size_t rows,
                     std::size_t cols) {
  if (dtype == WeightDtype::kF32) {
    throw std::invalid_argument("quantize: fp32 has no quantised storage");
  }
  QuantMatrix qm;
  qm.dtype = dtype;
  qm.rows = rows;
  qm.cols = cols;
  if (dtype == WeightDtype::kBf16) {
    qm.bf16.resize(rows * cols);
    for (std::size_t i = 0; i < rows * cols; ++i) qm.bf16[i] = float_to_bf16(w[i]);
    return qm;
  }
  qm.i8.resize(rows * cols);
  qm.scales.resize(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = w + r * cols;
    float amax = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) amax = std::max(amax, std::fabs(row[c]));
    const float scale = amax / 127.0f;
    qm.scales[r] = scale;
    std::int8_t* out = qm.i8.data() + r * cols;
    if (scale == 0.0f) {
      std::fill(out, out + cols, static_cast<std::int8_t>(0));
      continue;
    }
    const float inv = 127.0f / amax;
    for (std::size_t c = 0; c < cols; ++c) {
      const float q = std::nearbyintf(row[c] * inv);
      out[c] = static_cast<std::int8_t>(std::clamp(q, -127.0f, 127.0f));
    }
  }
  return qm;
}

void dequantize_row(const QuantMatrix& qm, std::size_t row, float* out) {
  const std::size_t cols = qm.cols;
  if (qm.dtype == WeightDtype::kBf16) {
    const std::uint16_t* src = qm.bf16.data() + row * cols;
    for (std::size_t c = 0; c < cols; ++c) out[c] = bf16_to_float(src[c]);
    return;
  }
  const std::int8_t* src = qm.i8.data() + row * cols;
  const float scale = qm.scales[row];
  for (std::size_t c = 0; c < cols; ++c) {
    out[c] = scale * static_cast<float>(src[c]);
  }
}

void dequantize(const QuantMatrix& qm, float* out) {
  for (std::size_t r = 0; r < qm.rows; ++r) dequantize_row(qm, r, out + r * qm.cols);
}

void gemv_quant(const QuantMatrix& qm, float alpha, const float* x, float* y) {
  const KernelVtable& kv = detail::active_kernel_table();
  const std::size_t n = qm.rows;
  const std::size_t k = qm.cols;
  std::fill(y, y + n, 0.0f);
  if (k == 0 || alpha == 0.0f) return;

  auto run_range = [&](std::size_t begin, std::size_t end) {
    if (qm.dtype == WeightDtype::kBf16) {
      kv.gemv_rows_bf16(end - begin, k, alpha, x, qm.bf16.data() + begin * k, k,
                        y + begin);
    } else {
      kv.gemv_rows_i8(end - begin, k, alpha, x, qm.i8.data() + begin * k, k,
                      qm.scales.data() + begin, y + begin);
    }
  };
  // Same chunking and pool-skip heuristic as the fp32 m == 1 sgemm fast
  // path: per-row reductions are independent, so threading cannot perturb
  // the result.
  const std::size_t grain = std::max<std::size_t>(1, ceil_div(kMinFlopsPerTask, 2 * k));
  if (util::ThreadPool::global().parallelism() == 1 || n <= grain) {
    run_range(0, n);
    return;
  }
  util::parallel_for_range(n, run_range, grain);
}

void multi_gemv_quant(const QuantMatrix& qm, float alpha, const float* const* xs,
                      std::size_t count, float* const* ys) {
  if (count == 0) return;
  const KernelVtable& kv = detail::active_kernel_table();
  const std::size_t n = qm.rows;
  const std::size_t k = qm.cols;
  for (std::size_t i = 0; i < count; ++i) std::fill(ys[i], ys[i] + n, 0.0f);
  if (k == 0 || alpha == 0.0f) return;

  auto run_range = [&](std::size_t begin, std::size_t end) {
    thread_local std::vector<float*> y_off;
    y_off.resize(count);
    for (std::size_t i = 0; i < count; ++i) y_off[i] = ys[i] + begin;
    if (qm.dtype == WeightDtype::kBf16) {
      kv.gemv_rows_multi_bf16(end - begin, k, alpha, xs, count,
                              qm.bf16.data() + begin * k, k, y_off.data());
    } else {
      kv.gemv_rows_multi_i8(end - begin, k, alpha, xs, count,
                            qm.i8.data() + begin * k, k,
                            qm.scales.data() + begin, y_off.data());
    }
  };
  const std::size_t grain = std::max<std::size_t>(1, ceil_div(kMinFlopsPerTask, 2 * k));
  if (util::ThreadPool::global().parallelism() == 1 || n <= grain) {
    run_range(0, n);
    return;
  }
  util::parallel_for_range(n, run_range, grain);
}

}  // namespace astromlab::tensor
