#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/thread_pool.hpp"

namespace astromlab::tensor {

namespace {

// Kernel for the hot path: C[M,N] += A[M,K] * B[K,N], all non-transposed,
// blocked over K for L1 reuse and vectorisable inner loops over N.
void gemm_nn(std::size_t m, std::size_t n, std::size_t k, float alpha, const float* a,
             std::size_t lda, const float* b, std::size_t ldb, float* c, std::size_t ldc,
             std::size_t row_begin, std::size_t row_end) {
  (void)m;
  constexpr std::size_t kBlockK = 64;
  for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
    const std::size_t k1 = std::min(k, k0 + kBlockK);
    for (std::size_t i = row_begin; i < row_end; ++i) {
      const float* a_row = a + i * lda;
      float* c_row = c + i * ldc;
      for (std::size_t p = k0; p < k1; ++p) {
        const float a_ip = alpha * a_row[p];
        if (a_ip == 0.0f) continue;
        const float* b_row = b + p * ldb;
        for (std::size_t j = 0; j < n; ++j) {
          c_row[j] += a_ip * b_row[j];
        }
      }
    }
  }
}

// C[M,N] += A[M,K] * B^T where B is stored [N,K]: rows of A dot rows of B.
void gemm_nt(std::size_t m, std::size_t n, std::size_t k, float alpha, const float* a,
             std::size_t lda, const float* b, std::size_t ldb, float* c, std::size_t ldc,
             std::size_t row_begin, std::size_t row_end) {
  (void)m;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const float* a_row = a + i * lda;
    float* c_row = c + i * ldc;
    for (std::size_t j = 0; j < n; ++j) {
      const float* b_row = b + j * ldb;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      c_row[j] += alpha * acc;
    }
  }
}

// C[M,N] += A^T * B where A is stored [K,M], B stored [K,N].
void gemm_tn(std::size_t m, std::size_t n, std::size_t k, float alpha, const float* a,
             std::size_t lda, const float* b, std::size_t ldb, float* c, std::size_t ldc,
             std::size_t row_begin, std::size_t row_end) {
  (void)m;
  // Iterate over the shared K dimension outermost so both inputs stream.
  for (std::size_t p = 0; p < k; ++p) {
    const float* a_row = a + p * lda;
    const float* b_row = b + p * ldb;
    for (std::size_t i = row_begin; i < row_end; ++i) {
      const float a_pi = alpha * a_row[i];
      if (a_pi == 0.0f) continue;
      float* c_row = c + i * ldc;
      for (std::size_t j = 0; j < n; ++j) c_row[j] += a_pi * b_row[j];
    }
  }
}

// C[M,N] += A^T * B^T with A stored [K,M], B stored [N,K]. Rare path.
void gemm_tt(std::size_t m, std::size_t n, std::size_t k, float alpha, const float* a,
             std::size_t lda, const float* b, std::size_t ldb, float* c, std::size_t ldc,
             std::size_t row_begin, std::size_t row_end) {
  (void)m;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    float* c_row = c + i * ldc;
    for (std::size_t j = 0; j < n; ++j) {
      const float* b_row = b + j * ldb;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += a[p * lda + i] * b_row[p];
      c_row[j] += alpha * acc;
    }
  }
}

}  // namespace

void sgemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n, std::size_t k,
           float alpha, const float* a, std::size_t lda, const float* b, std::size_t ldb,
           float beta, float* c, std::size_t ldc) {
  if (m == 0 || n == 0) return;

  auto run_rows = [&](std::size_t row_begin, std::size_t row_end) {
    if (beta != 1.0f) {
      for (std::size_t i = row_begin; i < row_end; ++i) {
        float* c_row = c + i * ldc;
        if (beta == 0.0f) {
          std::fill(c_row, c_row + n, 0.0f);
        } else {
          for (std::size_t j = 0; j < n; ++j) c_row[j] *= beta;
        }
      }
    }
    if (k == 0 || alpha == 0.0f) return;
    if (!trans_a && !trans_b) {
      gemm_nn(m, n, k, alpha, a, lda, b, ldb, c, ldc, row_begin, row_end);
    } else if (!trans_a && trans_b) {
      gemm_nt(m, n, k, alpha, a, lda, b, ldb, c, ldc, row_begin, row_end);
    } else if (trans_a && !trans_b) {
      gemm_tn(m, n, k, alpha, a, lda, b, ldb, c, ldc, row_begin, row_end);
    } else {
      gemm_tt(m, n, k, alpha, a, lda, b, ldb, c, ldc, row_begin, row_end);
    }
  };

  // Parallelise across output rows; below ~16k flops per chunk the task
  // overhead dominates, so use a work-proportional grain.
  const std::size_t flops_per_row = 2 * n * k;
  const std::size_t grain = flops_per_row > 0 ? std::max<std::size_t>(1, 16384 / flops_per_row + 1)
                                              : m;
  util::parallel_for_range(m, run_rows, grain);
}

void add_inplace(float* y, const float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += x[i];
}

void axpy(float a, const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void scale_inplace(float* x, float a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= a;
}

void add_row_bias(float* matrix, const float* bias, std::size_t rows, std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    float* row = matrix + r * cols;
    for (std::size_t c = 0; c < cols; ++c) row[c] += bias[c];
  }
}

float softmax_row(const float* logits, float* probs, std::size_t n) {
  float max_logit = logits[0];
  for (std::size_t i = 1; i < n; ++i) max_logit = std::max(max_logit, logits[i]);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float e = std::exp(logits[i] - max_logit);
    probs[i] = e;
    total += e;
  }
  const float inv = static_cast<float>(1.0 / total);
  for (std::size_t i = 0; i < n; ++i) probs[i] *= inv;
  return max_logit;
}

void softmax_rows(float* matrix, std::size_t rows, std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    float* row = matrix + r * cols;
    softmax_row(row, row, cols);
  }
}

float gelu(float x) {
  constexpr float kSqrt2OverPi = 0.7978845608028654f;
  const float cube = 0.044715f * x * x * x;
  return 0.5f * x * (1.0f + std::tanh(kSqrt2OverPi * (x + cube)));
}

float gelu_grad(float x) {
  constexpr float kSqrt2OverPi = 0.7978845608028654f;
  const float x2 = x * x;
  const float inner = kSqrt2OverPi * (x + 0.044715f * x2 * x);
  const float t = std::tanh(inner);
  const float sech2 = 1.0f - t * t;
  const float d_inner = kSqrt2OverPi * (1.0f + 3.0f * 0.044715f * x2);
  return 0.5f * (1.0f + t) + 0.5f * x * sech2 * d_inner;
}

float dot(const float* a, const float* b, std::size_t n) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace astromlab::tensor
