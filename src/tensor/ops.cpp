#include "tensor/ops.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

#include "tensor/kernels.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace astromlab::tensor {

namespace {

using detail::KernelVtable;

// ---------------------------------------------------------------------------
// Runtime kernel dispatch.

bool cpu_has_avx2_fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

/// Resolves a kernel request ("auto" picks the best table this CPU can run).
/// Returns nullptr when the request cannot be satisfied.
const KernelVtable* resolve_kernels(std::string_view request) {
  if (request == "auto" || request.empty()) {
    if (cpu_has_avx2_fma()) {
      if (const KernelVtable* kv = detail::avx2_kernels()) return kv;
    }
    if (const KernelVtable* kv = detail::neon_kernels()) return kv;
    return detail::scalar_kernels();
  }
  if (request == "scalar") return detail::scalar_kernels();
  if (request == "avx2") return cpu_has_avx2_fma() ? detail::avx2_kernels() : nullptr;
  if (request == "neon") return detail::neon_kernels();
  return nullptr;
}

std::atomic<const KernelVtable*> g_kernels{nullptr};

/// What startup selection chose (env knobs included), so that
/// set_kernel_override("auto") restores it rather than re-running bare
/// hardware detection and silently dropping ASTROMLAB_FORCE_SCALAR.
std::atomic<const KernelVtable*> g_startup_kernels{nullptr};

/// One-time startup selection honouring ASTROMLAB_KERNEL /
/// ASTROMLAB_FORCE_SCALAR, with a single log line naming the choice so
/// BENCH trajectories are attributable to a kernel across machines.
const KernelVtable& active_kernels() {
  const KernelVtable* kv = g_kernels.load(std::memory_order_acquire);
  if (kv != nullptr) return *kv;
  static std::once_flag once;
  std::call_once(once, [] {
    std::string request = "auto";
    if (const char* env = std::getenv("ASTROMLAB_KERNEL")) request = env;
    if (const char* force = std::getenv("ASTROMLAB_FORCE_SCALAR")) {
      if (force[0] != '\0' && force[0] != '0') request = "scalar";
    }
    const KernelVtable* chosen = resolve_kernels(request);
    if (chosen == nullptr) {
      log::warn() << "tensor kernels: requested '" << request
                  << "' unavailable on this build/CPU, using runtime detection";
      chosen = resolve_kernels("auto");
    }
    log::info() << "tensor kernels: " << chosen->name << " (micro-kernel "
                << chosen->mr << "x" << chosen->nr << ", blocking mc=" << chosen->mc
                << " kc=" << chosen->kc << " nc=" << chosen->nc << ")";
    g_startup_kernels.store(chosen, std::memory_order_release);
    g_kernels.store(chosen, std::memory_order_release);
  });
  return *g_kernels.load(std::memory_order_acquire);
}

// ---------------------------------------------------------------------------
// Packed-GEMM driver (ISA-independent; compute happens in the micro-kernel).

/// A task below this many flops is not worth a pool hop; used to derive the
/// parallel grain from packed tiles (and gemv row chunks) instead of raw
/// output rows.
constexpr std::size_t kMinFlopsPerTask = 1u << 16;

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

/// Packs alpha * op(A)[ic.., pc..] (mc x kc) into mr-row micro-panels:
/// panel[p * mr + r], rows past mc zero-filled so the micro-kernel never
/// reads garbage. Folding alpha here keeps the micro-kernel pure.
void pack_a(bool trans_a, const float* a, std::size_t lda, std::size_t ic,
            std::size_t pc, std::size_t mc, std::size_t kc, std::size_t mr, float alpha,
            float* out) {
  for (std::size_t ir = 0; ir < mc; ir += mr) {
    const std::size_t rows = std::min(mr, mc - ir);
    float* panel = out + ir * kc;
    for (std::size_t p = 0; p < kc; ++p) {
      float* dst = panel + p * mr;
      const std::size_t col = pc + p;
      if (trans_a) {
        const float* src = a + col * lda + ic + ir;
        for (std::size_t r = 0; r < rows; ++r) dst[r] = alpha * src[r];
      } else {
        const float* src = a + (ic + ir) * lda + col;
        for (std::size_t r = 0; r < rows; ++r) dst[r] = alpha * src[r * lda];
      }
      for (std::size_t r = rows; r < mr; ++r) dst[r] = 0.0f;
    }
  }
}

/// Packs op(B)[pc.., jc..] (kc x nc) into nr-column micro-panels:
/// panel[p * nr + j], columns past nc zero-filled.
void pack_b(bool trans_b, const float* b, std::size_t ldb, std::size_t pc,
            std::size_t jc, std::size_t kc, std::size_t nc, std::size_t nr, float* out) {
  for (std::size_t jr = 0; jr < nc; jr += nr) {
    const std::size_t cols = std::min(nr, nc - jr);
    float* panel = out + jr * kc;
    for (std::size_t p = 0; p < kc; ++p) {
      float* dst = panel + p * nr;
      const std::size_t row = pc + p;
      if (trans_b) {
        const float* src = b + (jc + jr) * ldb + row;
        for (std::size_t j = 0; j < cols; ++j) dst[j] = src[j * ldb];
      } else {
        const float* src = b + row * ldb + jc + jr;
        for (std::size_t j = 0; j < cols; ++j) dst[j] = src[j];
      }
      for (std::size_t j = cols; j < nr; ++j) dst[j] = 0.0f;
    }
  }
}

/// Runs the micro-kernel over one packed mc x nc block. Edge tiles detour
/// through an on-stack mr x nr buffer so C's padding (ldc > n) is never
/// touched and partial tiles never read/write out of bounds.
void macro_kernel(const KernelVtable& kv, std::size_t mc, std::size_t nc,
                  std::size_t kc, const float* a_pack, const float* b_pack, float* c,
                  std::size_t ldc) {
  const std::size_t mr = kv.mr, nr = kv.nr;
  for (std::size_t jr = 0; jr < nc; jr += nr) {
    const std::size_t nr_eff = std::min(nr, nc - jr);
    const float* bp = b_pack + jr * kc;
    for (std::size_t ir = 0; ir < mc; ir += mr) {
      const std::size_t mr_eff = std::min(mr, mc - ir);
      const float* ap = a_pack + ir * kc;
      float* ct = c + ir * ldc + jr;
      if (mr_eff == mr && nr_eff == nr) {
        kv.micro_kernel(kc, ap, bp, ct, ldc);
      } else {
        alignas(64) float tmp[detail::kMaxMr * detail::kMaxNr];
        std::fill(tmp, tmp + mr * nr, 0.0f);
        kv.micro_kernel(kc, ap, bp, tmp, nr);
        for (std::size_t i = 0; i < mr_eff; ++i) {
          float* c_row = ct + i * ldc;
          const float* t_row = tmp + i * nr;
          for (std::size_t j = 0; j < nr_eff; ++j) c_row[j] += t_row[j];
        }
      }
    }
  }
}

/// m == 1 fast path (the decode-time matvec: per-token lm-head and linear
/// layers). Packing a full B panel would cost as much as the multiply
/// itself, so route through vectorised dot/axpy instead.
void gemv(const KernelVtable& kv, bool trans_a, bool trans_b, std::size_t n,
          std::size_t k, float alpha, const float* a, std::size_t lda, const float* b,
          std::size_t ldb, float* c) {
  thread_local std::vector<float> x_scratch;
  const float* x = a;
  if (trans_a) {
    // op(A) row 0 is strided through stored A; gather once.
    x_scratch.resize(k);
    for (std::size_t p = 0; p < k; ++p) x_scratch[p] = a[p * lda];
    x = x_scratch.data();
  }
  if (trans_b) {
    // c[j] += alpha * <x, B row j>: independent rows, chunked so each task
    // carries at least kMinFlopsPerTask worth of dot products. Skip the pool
    // outright when it cannot help (single-core, or too little work for a
    // second task) — this path runs once per decoded token per layer.
    const std::size_t grain = std::max<std::size_t>(1, ceil_div(kMinFlopsPerTask, 2 * k));
    if (util::ThreadPool::global().parallelism() == 1 || n <= grain) {
      kv.gemv_rows(n, k, alpha, x, b, ldb, c);
      return;
    }
    util::parallel_for_range(
        n,
        [&](std::size_t begin, std::size_t end) {
          kv.gemv_rows(end - begin, k, alpha, x, b + begin * ldb, ldb, c + begin);
        },
        grain);
  } else {
    // c += alpha * x[p] * B row p, accumulated in fixed p order.
    for (std::size_t p = 0; p < k; ++p) {
      kv.axpy(alpha * x[p], b + p * ldb, c, n);
    }
  }
}

}  // namespace

namespace detail {
const KernelVtable& active_kernel_table() { return active_kernels(); }
}  // namespace detail

void sgemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n, std::size_t k,
           float alpha, const float* a, std::size_t lda, const float* b, std::size_t ldb,
           float beta, float* c, std::size_t ldc) {
  if (m == 0 || n == 0) return;
  const KernelVtable& kv = active_kernels();
  // The dispatched-kernel counter name is resolved once: the vtable is
  // fixed for the process after startup selection.
  struct GemmMetrics {
    util::metrics::Counter& calls;
    util::metrics::Counter& gemv_calls;
    util::metrics::Counter& dispatched;
  };
  static GemmMetrics metrics{
      util::metrics::registry().counter("gemm.calls"),
      util::metrics::registry().counter("gemm.gemv_calls"),
      util::metrics::registry().counter(std::string("gemm.dispatch.") +
                                        active_kernels().name)};
  metrics.calls.add();
  metrics.dispatched.add();

  if (beta != 1.0f && m == 1) {
    if (beta == 0.0f) {
      std::fill(c, c + n, 0.0f);
    } else {
      kv.scale_inplace(c, beta, n);
    }
  } else if (beta != 1.0f) {
    const std::size_t grain = std::max<std::size_t>(1, ceil_div(kMinFlopsPerTask, n));
    util::parallel_for_range(
        m,
        [&](std::size_t row_begin, std::size_t row_end) {
          for (std::size_t i = row_begin; i < row_end; ++i) {
            float* c_row = c + i * ldc;
            if (beta == 0.0f) {
              std::fill(c_row, c_row + n, 0.0f);
            } else {
              kv.scale_inplace(c_row, beta, n);
            }
          }
        },
        grain);
  }
  if (k == 0 || alpha == 0.0f) return;

  if (m == 1) {
    metrics.gemv_calls.add();
    gemv(kv, trans_a, trans_b, n, k, alpha, a, lda, b, ldb, c);
    return;
  }

  // Blocked, packed path: jc/pc loops stream op(B) panels (packed once by
  // the calling thread, then shared read-only), and the mc row tiles fan out
  // across the pool. K is never split across tasks, so each C element keeps
  // a fixed accumulation order regardless of thread count.
  const std::size_t kc_max = std::min(kv.kc, k);
  const std::size_t nc_max = std::min(kv.nc, ((n + kv.nr - 1) / kv.nr) * kv.nr);
  const std::size_t mc_max = kv.mc;
  thread_local std::vector<float> b_pack_storage;
  b_pack_storage.resize(kc_max * nc_max);
  float* const b_pack = b_pack_storage.data();

  const std::size_t row_tiles = ceil_div(m, mc_max);
  for (std::size_t jc = 0; jc < n; jc += nc_max) {
    const std::size_t nc = std::min(nc_max, n - jc);
    for (std::size_t pc = 0; pc < k; pc += kc_max) {
      const std::size_t kc = std::min(kc_max, k - pc);
      pack_b(trans_b, b, ldb, pc, jc, kc, nc, kv.nr, b_pack);

      // Grain in units of whole row tiles: every task runs at least
      // kMinFlopsPerTask of micro-kernel work, replacing the old
      // per-output-row heuristic that undershot for wide (lm-head) shapes.
      const std::size_t tile_flops = 2 * std::min(mc_max, m) * kc * nc;
      const std::size_t grain =
          std::max<std::size_t>(1, ceil_div(kMinFlopsPerTask, std::max<std::size_t>(tile_flops, 1)));
      util::parallel_for_range(
          row_tiles,
          [&](std::size_t tile_begin, std::size_t tile_end) {
            thread_local std::vector<float> a_pack_storage;
            for (std::size_t tile = tile_begin; tile < tile_end; ++tile) {
              const std::size_t ic = tile * mc_max;
              const std::size_t mc = std::min(mc_max, m - ic);
              const std::size_t mc_padded = ceil_div(mc, kv.mr) * kv.mr;
              a_pack_storage.resize(mc_padded * kc);
              pack_a(trans_a, a, lda, ic, pc, mc, kc, kv.mr, alpha,
                     a_pack_storage.data());
              macro_kernel(kv, mc, nc, kc, a_pack_storage.data(), b_pack,
                           c + ic * ldc + jc, ldc);
            }
          },
          grain);
    }
  }
}

void multi_gemv(std::size_t n, std::size_t k, float alpha, const float* const* xs,
                std::size_t count, const float* b, std::size_t ldb, float* const* ys) {
  if (count == 0 || n == 0) return;
  const KernelVtable& kv = active_kernels();
  static util::metrics::Counter& calls =
      util::metrics::registry().counter("gemm.multi_gemv_calls");
  calls.add();
  for (std::size_t i = 0; i < count; ++i) std::fill(ys[i], ys[i] + n, 0.0f);
  if (k == 0 || alpha == 0.0f) return;

  // The batched kernel walks weight rows outermost: each row's cache lines
  // are loaded once and reused by every input, and the inputs' independent
  // accumulator chains overlap instead of serialising on one chain's FMA
  // latency — the whole point of batching `count` matvecs. Per (input, row)
  // it runs the exact `dot` reduction the single-input gemv path runs, so
  // chunking, threading, and batch composition cannot perturb the result.
  // The task grain matches the single-input gemv's (row count only, not
  // scaled by `count`): the parallel split stays identical to B=1 while
  // each task carries `count`x the work, keeping pool overhead amortised.
  auto run_range = [&](std::size_t begin, std::size_t end) {
    kv.gemv_rows_multi(end - begin, k, alpha, xs, count, b + begin * ldb, ldb,
                       [&] {
                         thread_local std::vector<float*> y_off;
                         y_off.resize(count);
                         for (std::size_t i = 0; i < count; ++i) y_off[i] = ys[i] + begin;
                         return y_off.data();
                       }());
  };
  const std::size_t grain = std::max<std::size_t>(1, ceil_div(kMinFlopsPerTask, 2 * k));
  if (util::ThreadPool::global().parallelism() == 1 || n <= grain) {
    run_range(0, n);
    return;
  }
  util::parallel_for_range(n, run_range, grain);
}

// ---------------------------------------------------------------------------
// Reference scalar loop nests: the pre-dispatch sgemm, kept as the semantics
// oracle and the bench baseline. No zero-skip: 0 * inf must produce NaN
// exactly like the packed kernels.

namespace {

void ref_gemm_nn(std::size_t n, std::size_t k, float alpha, const float* a,
                 std::size_t lda, const float* b, std::size_t ldb, float* c,
                 std::size_t ldc, std::size_t row_begin, std::size_t row_end) {
  constexpr std::size_t kBlockK = 64;
  for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
    const std::size_t k1 = std::min(k, k0 + kBlockK);
    for (std::size_t i = row_begin; i < row_end; ++i) {
      const float* a_row = a + i * lda;
      float* c_row = c + i * ldc;
      for (std::size_t p = k0; p < k1; ++p) {
        const float a_ip = alpha * a_row[p];
        const float* b_row = b + p * ldb;
        for (std::size_t j = 0; j < n; ++j) c_row[j] += a_ip * b_row[j];
      }
    }
  }
}

void ref_gemm_nt(std::size_t n, std::size_t k, float alpha, const float* a,
                 std::size_t lda, const float* b, std::size_t ldb, float* c,
                 std::size_t ldc, std::size_t row_begin, std::size_t row_end) {
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const float* a_row = a + i * lda;
    float* c_row = c + i * ldc;
    for (std::size_t j = 0; j < n; ++j) {
      const float* b_row = b + j * ldb;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      c_row[j] += alpha * acc;
    }
  }
}

void ref_gemm_tn(std::size_t n, std::size_t k, float alpha, const float* a,
                 std::size_t lda, const float* b, std::size_t ldb, float* c,
                 std::size_t ldc, std::size_t row_begin, std::size_t row_end) {
  for (std::size_t p = 0; p < k; ++p) {
    const float* a_row = a + p * lda;
    const float* b_row = b + p * ldb;
    for (std::size_t i = row_begin; i < row_end; ++i) {
      const float a_pi = alpha * a_row[i];
      float* c_row = c + i * ldc;
      for (std::size_t j = 0; j < n; ++j) c_row[j] += a_pi * b_row[j];
    }
  }
}

void ref_gemm_tt(std::size_t n, std::size_t k, float alpha, const float* a,
                 std::size_t lda, const float* b, std::size_t ldb, float* c,
                 std::size_t ldc, std::size_t row_begin, std::size_t row_end) {
  for (std::size_t i = row_begin; i < row_end; ++i) {
    float* c_row = c + i * ldc;
    for (std::size_t j = 0; j < n; ++j) {
      const float* b_row = b + j * ldb;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += a[p * lda + i] * b_row[p];
      c_row[j] += alpha * acc;
    }
  }
}

}  // namespace

void sgemm_reference(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
                     std::size_t k, float alpha, const float* a, std::size_t lda,
                     const float* b, std::size_t ldb, float beta, float* c,
                     std::size_t ldc) {
  if (m == 0 || n == 0) return;

  auto run_rows = [&](std::size_t row_begin, std::size_t row_end) {
    if (beta != 1.0f) {
      for (std::size_t i = row_begin; i < row_end; ++i) {
        float* c_row = c + i * ldc;
        if (beta == 0.0f) {
          std::fill(c_row, c_row + n, 0.0f);
        } else {
          for (std::size_t j = 0; j < n; ++j) c_row[j] *= beta;
        }
      }
    }
    if (k == 0 || alpha == 0.0f) return;
    if (!trans_a && !trans_b) {
      ref_gemm_nn(n, k, alpha, a, lda, b, ldb, c, ldc, row_begin, row_end);
    } else if (!trans_a && trans_b) {
      ref_gemm_nt(n, k, alpha, a, lda, b, ldb, c, ldc, row_begin, row_end);
    } else if (trans_a && !trans_b) {
      ref_gemm_tn(n, k, alpha, a, lda, b, ldb, c, ldc, row_begin, row_end);
    } else {
      ref_gemm_tt(n, k, alpha, a, lda, b, ldb, c, ldc, row_begin, row_end);
    }
  };

  const std::size_t flops_per_row = 2 * n * k;
  const std::size_t grain =
      flops_per_row > 0 ? std::max<std::size_t>(1, 16384 / flops_per_row + 1) : m;
  util::parallel_for_range(m, run_rows, grain);
}

// ---------------------------------------------------------------------------
// Dispatch introspection.

const char* kernel_name() { return active_kernels().name; }

bool set_kernel_override(std::string_view name) {
  active_kernels();  // force startup selection (and its log line) first
  const KernelVtable* kv = name == "auto"
                               ? g_startup_kernels.load(std::memory_order_acquire)
                               : resolve_kernels(name);
  if (kv == nullptr) return false;
  g_kernels.store(kv, std::memory_order_release);
  return true;
}

// ---------------------------------------------------------------------------
// Vector ops, routed through the selected table.

void add_inplace(float* y, const float* x, std::size_t n) {
  active_kernels().add_inplace(y, x, n);
}

void axpy(float a, const float* x, float* y, std::size_t n) {
  active_kernels().axpy(a, x, y, n);
}

void scale_inplace(float* x, float a, std::size_t n) {
  active_kernels().scale_inplace(x, a, n);
}

void add_row_bias(float* matrix, const float* bias, std::size_t rows, std::size_t cols) {
  active_kernels().add_row_bias(matrix, bias, rows, cols);
}

float softmax_row(const float* logits, float* probs, std::size_t n) {
  return active_kernels().softmax_row(logits, probs, n);
}

void softmax_rows(float* matrix, std::size_t rows, std::size_t cols) {
  const KernelVtable& kv = active_kernels();
  for (std::size_t r = 0; r < rows; ++r) {
    float* row = matrix + r * cols;
    kv.softmax_row(row, row, cols);
  }
}

float gelu(float x) {
  constexpr float kSqrt2OverPi = 0.7978845608028654f;
  const float cube = 0.044715f * x * x * x;
  return 0.5f * x * (1.0f + std::tanh(kSqrt2OverPi * (x + cube)));
}

float gelu_grad(float x) {
  constexpr float kSqrt2OverPi = 0.7978845608028654f;
  const float x2 = x * x;
  const float inner = kSqrt2OverPi * (x + 0.044715f * x2 * x);
  const float t = std::tanh(inner);
  const float sech2 = 1.0f - t * t;
  const float d_inner = kSqrt2OverPi * (1.0f + 3.0f * 0.044715f * x2);
  return 0.5f * (1.0f + t) + 0.5f * x * sech2 * d_inner;
}

void gelu_apply(const float* x, float* y, std::size_t n) {
  active_kernels().gelu_apply(x, y, n);
}

void gelu_grad_mul(const float* x, const float* dy, float* dx, std::size_t n) {
  active_kernels().gelu_grad_mul(x, dy, dx, n);
}

float dot(const float* a, const float* b, std::size_t n) {
  return active_kernels().dot(a, b, n);
}

}  // namespace astromlab::tensor
