#pragma once
// Reduced-precision weight storage and dequant-fused matvecs.
//
// The paper's 70B model trains and serves in bf16; this reproduction keeps
// fp32 master weights (training still needs them) and adds per-matrix
// side storage in bf16 or int8 for the inference path, where decode is
// weight-bandwidth-bound: halving (bf16) or quartering (int8) the bytes
// streamed per token is worth more than any FLOP trick at m == 1.
//
// Bit-exactness contracts (all verified by tests):
//   * bf16 -> fp32 widening is exact, and the fused kernels run the exact
//     accumulator structure of the fp32 gemv, so a bf16 fused matvec is
//     bitwise identical to the fp32 matvec over bf16-roundtripped weights.
//   * An int8 fused matvec is bitwise identical to dequantising the rows
//     (scale * int8 per element) and running the fp32 gemv — under the
//     same kernel table. Cross-dtype results differ (that is the point of
//     the bounded-delta score report in BENCH_quant).

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace astromlab::tensor {

enum class WeightDtype { kF32 = 0, kBf16 = 1, kInt8 = 2 };

/// "fp32" | "bf16" | "int8" — the --weight-dtype flag values.
const char* weight_dtype_name(WeightDtype dtype);

/// Inverse of weight_dtype_name; throws std::invalid_argument on unknown
/// names so flag typos fail loudly.
WeightDtype parse_weight_dtype(std::string_view name);

/// One weight matrix stored reduced-precision, row-major [rows, cols] —
/// the `y = x * W^T` layout every linear layer uses at decode time (each
/// output element is a dot against one contiguous row).
struct QuantMatrix {
  WeightDtype dtype = WeightDtype::kF32;
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::uint16_t> bf16;  ///< rows*cols raw bf16 bit patterns (kBf16)
  std::vector<std::int8_t> i8;      ///< rows*cols quantised values (kInt8)
  std::vector<float> scales;        ///< per-row absmax scales (kInt8)

  bool empty() const { return rows == 0; }
  /// Payload bytes (the memory the dtype actually saves vs rows*cols*4).
  std::size_t bytes() const;
};

/// Quantises a row-major fp32 matrix. kBf16 stores round-to-nearest-even
/// bf16 bits (tensor::float_to_bf16). kInt8 stores per-row symmetric
/// absmax quantisation: scale = max|row| / 127, q = clamp(round(w/scale));
/// an all-zero row gets scale 0. kF32 is rejected (nothing to store).
QuantMatrix quantize(WeightDtype dtype, const float* w, std::size_t rows,
                     std::size_t cols);

/// Expands row `row` of `qm` into `out` (cols floats) — exactly the values
/// the fused kernels multiply against, making this the oracle side of the
/// fused-vs-dequant bit-identity tests.
void dequantize_row(const QuantMatrix& qm, std::size_t row, float* out);

/// Expands the whole matrix into `out` (rows*cols floats, row-major).
void dequantize(const QuantMatrix& qm, float* out);

/// y = alpha * (W_q x): the m == 1 trans_b sgemm fast path over quantised
/// weights. Overwrites y (rows floats). Same row chunking, pool-skip
/// heuristic, and per-row reduction order as tensor::sgemm's gemv path, so
/// results are independent of thread count.
void gemv_quant(const QuantMatrix& qm, float alpha, const float* x, float* y);

/// Batched variant with tensor::multi_gemv's contract: every (input, row)
/// reduction is the same fused dot gemv_quant runs, so each ys[i] is
/// bitwise identical to gemv_quant(qm, alpha, xs[i], ys[i]) regardless of
/// count, chunking, or thread count.
void multi_gemv_quant(const QuantMatrix& qm, float alpha, const float* const* xs,
                      std::size_t count, float* const* ys);

}  // namespace astromlab::tensor
