#include "tensor/kernels.hpp"

// AVX2+FMA kernel table. This translation unit is compiled with
// -mavx2 -mfma (see src/tensor/CMakeLists.txt) while the rest of the build
// stays at the baseline ISA, so nothing here may run before the dispatcher
// has verified the CPU supports avx2+fma. Keep the includes minimal: inline
// functions from C++ headers instantiated here would carry AVX2 code and can
// win COMDAT selection over their baseline twins.
//
// Reduction orders are fixed per lane (sequential over k; horizontal sums
// reduce a fixed tree), so results are run-to-run deterministic.

#if defined(ASTROMLAB_KERNEL_AVX2) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include <cmath>
#include <cstring>

namespace astromlab::tensor::detail {

namespace {

constexpr std::size_t kMr = 6;
constexpr std::size_t kNr = 16;

float hsum8(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x1));
  return _mm_cvtss_f32(s);
}

float hmax8(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_max_ps(lo, hi);
  s = _mm_max_ps(s, _mm_movehl_ps(s, s));
  s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 0x1));
  return _mm_cvtss_f32(s);
}

// 6x16 register-blocked FMA micro-kernel: 12 ymm accumulators + 2 B loads
// + 1 broadcast stay within the 16 ymm registers.
void micro_kernel_6x16(std::size_t kc, const float* a_panel, const float* b_panel,
                       float* c, std::size_t ldc) {
  __m256 acc00 = _mm256_setzero_ps(), acc01 = _mm256_setzero_ps();
  __m256 acc10 = _mm256_setzero_ps(), acc11 = _mm256_setzero_ps();
  __m256 acc20 = _mm256_setzero_ps(), acc21 = _mm256_setzero_ps();
  __m256 acc30 = _mm256_setzero_ps(), acc31 = _mm256_setzero_ps();
  __m256 acc40 = _mm256_setzero_ps(), acc41 = _mm256_setzero_ps();
  __m256 acc50 = _mm256_setzero_ps(), acc51 = _mm256_setzero_ps();
  for (std::size_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(b_panel + p * kNr);
    const __m256 b1 = _mm256_loadu_ps(b_panel + p * kNr + 8);
    const float* a = a_panel + p * kMr;
    __m256 av;
    av = _mm256_broadcast_ss(a + 0);
    acc00 = _mm256_fmadd_ps(av, b0, acc00);
    acc01 = _mm256_fmadd_ps(av, b1, acc01);
    av = _mm256_broadcast_ss(a + 1);
    acc10 = _mm256_fmadd_ps(av, b0, acc10);
    acc11 = _mm256_fmadd_ps(av, b1, acc11);
    av = _mm256_broadcast_ss(a + 2);
    acc20 = _mm256_fmadd_ps(av, b0, acc20);
    acc21 = _mm256_fmadd_ps(av, b1, acc21);
    av = _mm256_broadcast_ss(a + 3);
    acc30 = _mm256_fmadd_ps(av, b0, acc30);
    acc31 = _mm256_fmadd_ps(av, b1, acc31);
    av = _mm256_broadcast_ss(a + 4);
    acc40 = _mm256_fmadd_ps(av, b0, acc40);
    acc41 = _mm256_fmadd_ps(av, b1, acc41);
    av = _mm256_broadcast_ss(a + 5);
    acc50 = _mm256_fmadd_ps(av, b0, acc50);
    acc51 = _mm256_fmadd_ps(av, b1, acc51);
  }
  const auto store_row = [ldc](float* row, __m256 v0, __m256 v1) {
    _mm256_storeu_ps(row, _mm256_add_ps(_mm256_loadu_ps(row), v0));
    _mm256_storeu_ps(row + 8, _mm256_add_ps(_mm256_loadu_ps(row + 8), v1));
    (void)ldc;
  };
  store_row(c + 0 * ldc, acc00, acc01);
  store_row(c + 1 * ldc, acc10, acc11);
  store_row(c + 2 * ldc, acc20, acc21);
  store_row(c + 3 * ldc, acc30, acc31);
  store_row(c + 4 * ldc, acc40, acc41);
  store_row(c + 5 * ldc, acc50, acc51);
}

// Cephes-style exp: clamp, range-reduce by ln2 (split hi/lo), degree-6
// polynomial, scale by 2^n through the exponent bits. Max relative error
// ~2e-7 over the clamped domain.
__m256 exp256(__m256 x) {
  const __m256 hi = _mm256_set1_ps(88.3762626647949f);
  const __m256 lo = _mm256_set1_ps(-87.3365478515625f);
  x = _mm256_min_ps(_mm256_max_ps(x, lo), hi);
  __m256 fx = _mm256_fmadd_ps(x, _mm256_set1_ps(1.44269504088896341f),
                              _mm256_set1_ps(0.5f));
  fx = _mm256_floor_ps(fx);
  __m256 z = _mm256_fnmadd_ps(fx, _mm256_set1_ps(0.693359375f), x);
  z = _mm256_fnmadd_ps(fx, _mm256_set1_ps(-2.12194440e-4f), z);
  __m256 y = _mm256_set1_ps(1.9875691500e-4f);
  y = _mm256_fmadd_ps(y, z, _mm256_set1_ps(1.3981999507e-3f));
  y = _mm256_fmadd_ps(y, z, _mm256_set1_ps(8.3334519073e-3f));
  y = _mm256_fmadd_ps(y, z, _mm256_set1_ps(4.1665795894e-2f));
  y = _mm256_fmadd_ps(y, z, _mm256_set1_ps(1.6666665459e-1f));
  y = _mm256_fmadd_ps(y, z, _mm256_set1_ps(5.0000001201e-1f));
  const __m256 z2 = _mm256_mul_ps(z, z);
  y = _mm256_fmadd_ps(y, z2, _mm256_add_ps(z, _mm256_set1_ps(1.0f)));
  __m256i n = _mm256_cvtps_epi32(fx);
  n = _mm256_add_epi32(n, _mm256_set1_epi32(127));
  n = _mm256_slli_epi32(n, 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(n));
}

// tanh(x) = (e^{2x} - 1) / (e^{2x} + 1); inputs clamped to ±9 where float
// tanh saturates, so e^{2x} cannot overflow.
__m256 tanh256(__m256 x) {
  const __m256 lim = _mm256_set1_ps(9.0f);
  x = _mm256_min_ps(_mm256_max_ps(x, _mm256_sub_ps(_mm256_setzero_ps(), lim)), lim);
  const __m256 e = exp256(_mm256_add_ps(x, x));
  const __m256 one = _mm256_set1_ps(1.0f);
  return _mm256_div_ps(_mm256_sub_ps(e, one), _mm256_add_ps(e, one));
}

constexpr float kSqrt2OverPi = 0.7978845608028654f;
constexpr float kGeluC = 0.044715f;

void gelu_apply_avx2(const float* x, float* y, std::size_t n) {
  const __m256 k = _mm256_set1_ps(kSqrt2OverPi);
  const __m256 c3 = _mm256_set1_ps(kGeluC);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 one = _mm256_set1_ps(1.0f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256 v2 = _mm256_mul_ps(v, v);
    const __m256 inner =
        _mm256_mul_ps(k, _mm256_fmadd_ps(_mm256_mul_ps(c3, v2), v, v));
    const __m256 t = tanh256(inner);
    _mm256_storeu_ps(y + i,
                     _mm256_mul_ps(_mm256_mul_ps(half, v), _mm256_add_ps(one, t)));
  }
  if (i < n) scalar_gelu_apply(x + i, y + i, n - i);
}

void gelu_grad_mul_avx2(const float* x, const float* dy, float* dx, std::size_t n) {
  const __m256 k = _mm256_set1_ps(kSqrt2OverPi);
  const __m256 c3 = _mm256_set1_ps(kGeluC);
  const __m256 c3x3 = _mm256_set1_ps(3.0f * kGeluC);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 one = _mm256_set1_ps(1.0f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256 v2 = _mm256_mul_ps(v, v);
    const __m256 inner =
        _mm256_mul_ps(k, _mm256_fmadd_ps(_mm256_mul_ps(c3, v2), v, v));
    const __m256 t = tanh256(inner);
    const __m256 sech2 = _mm256_fnmadd_ps(t, t, one);
    const __m256 d_inner = _mm256_mul_ps(k, _mm256_fmadd_ps(c3x3, v2, one));
    // g = 0.5*(1+t) + 0.5*x*sech2*d_inner
    const __m256 g = _mm256_fmadd_ps(
        _mm256_mul_ps(_mm256_mul_ps(half, v), sech2), d_inner,
        _mm256_mul_ps(half, _mm256_add_ps(one, t)));
    _mm256_storeu_ps(dx + i, _mm256_mul_ps(_mm256_loadu_ps(dy + i), g));
  }
  if (i < n) scalar_gelu_grad_mul(x + i, dy + i, dx + i, n - i);
}

float softmax_row_avx2(const float* logits, float* probs, std::size_t n) {
  if (n < 8) return scalar_softmax_row(logits, probs, n);
  __m256 vmax = _mm256_loadu_ps(logits);
  std::size_t i = 8;
  for (; i + 8 <= n; i += 8) vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(logits + i));
  float max_logit = hmax8(vmax);
  for (; i < n; ++i) max_logit = max_logit > logits[i] ? max_logit : logits[i];

  const __m256 vm = _mm256_set1_ps(max_logit);
  __m256 vsum = _mm256_setzero_ps();
  for (i = 0; i + 8 <= n; i += 8) {
    const __m256 e = exp256(_mm256_sub_ps(_mm256_loadu_ps(logits + i), vm));
    _mm256_storeu_ps(probs + i, e);
    vsum = _mm256_add_ps(vsum, e);
  }
  float total = hsum8(vsum);
  for (; i < n; ++i) {
    const float e = std::exp(logits[i] - max_logit);
    probs[i] = e;
    total += e;
  }

  const float inv = 1.0f / total;
  const __m256 vinv = _mm256_set1_ps(inv);
  for (i = 0; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(probs + i, _mm256_mul_ps(_mm256_loadu_ps(probs + i), vinv));
  }
  for (; i < n; ++i) probs[i] *= inv;
  return max_logit;
}

void axpy_avx2(float a, const float* x, float* y, std::size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

float dot_avx2(const float* x, const float* y, std::size_t n) {
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 8), _mm256_loadu_ps(y + i + 8), acc1);
    acc2 =
        _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 16), _mm256_loadu_ps(y + i + 16), acc2);
    acc3 =
        _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 24), _mm256_loadu_ps(y + i + 24), acc3);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i), acc0);
  }
  float total =
      hsum8(_mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3)));
  for (; i < n; ++i) total += x[i] * y[i];
  return total;
}

void add_inplace_avx2(float* y, const float* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

void scale_inplace_avx2(float* x, float a, std::size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), va));
  }
  for (; i < n; ++i) x[i] *= a;
}

void add_row_bias_avx2(float* matrix, const float* bias, std::size_t rows,
                       std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    float* row = matrix + r * cols;
    std::size_t i = 0;
    for (; i + 8 <= cols; i += 8) {
      _mm256_storeu_ps(row + i,
                       _mm256_add_ps(_mm256_loadu_ps(row + i), _mm256_loadu_ps(bias + i)));
    }
    for (; i < cols; ++i) row[i] += bias[i];
  }
}

// dot_avx2 with a software prefetch of the next weight row interleaved into
// the main loop. The FP instruction sequence is identical to dot_avx2 —
// prefetch only warms cache lines, it never participates in arithmetic — so
// the result is bit-for-bit the same. Decode-sized models stream their whole
// weight set through the cache hierarchy every token; walking one row ahead
// keeps the loads from stalling on L2/LLC misses.
float dot_avx2_nextrow(const float* x, const float* y, std::size_t n,
                       const float* next_row) {
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    _mm_prefetch(reinterpret_cast<const char*>(next_row + i), _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(next_row + i + 16), _MM_HINT_T0);
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 8), _mm256_loadu_ps(y + i + 8), acc1);
    acc2 =
        _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 16), _mm256_loadu_ps(y + i + 16), acc2);
    acc3 =
        _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 24), _mm256_loadu_ps(y + i + 24), acc3);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i), acc0);
  }
  float total =
      hsum8(_mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3)));
  for (; i < n; ++i) total += x[i] * y[i];
  return total;
}

void gemv_rows_avx2(std::size_t rows, std::size_t k, float alpha, const float* x,
                    const float* b, std::size_t ldb, float* y) {
  for (std::size_t j = 0; j < rows; ++j) {
    const float* row = b + j * ldb;
    const float* next = j + 1 < rows ? row + ldb : row;
    y[j] += alpha * dot_avx2_nextrow(x, row, k, next);
  }
}

void gemv_rows_multi_avx2(std::size_t rows, std::size_t k, float alpha,
                          const float* const* xs, std::size_t count, const float* b,
                          std::size_t ldb, float* const* ys) {
  if (count == 0) return;
  for (std::size_t j = 0; j < rows; ++j) {
    const float* row = b + j * ldb;
    const float* next = j + 1 < rows ? row + ldb : row;
    // Each (input, row) pair is exactly one dot_avx2 reduction — the same
    // bits gemv_rows_avx2 produces — but the row's cache lines are loaded
    // once and served from L1 to every subsequent input, and the inputs'
    // independent accumulator chains overlap in the OOO window instead of
    // serialising on one chain's FMA latency. Input 0 carries the next-row
    // prefetch; the remaining inputs then run entirely from cache.
    ys[0][j] += alpha * dot_avx2_nextrow(xs[0], row, k, next);
    for (std::size_t i = 1; i < count; ++i) {
      ys[i][j] += alpha * dot_avx2(xs[i], row, k);
    }
  }
}

// ---------------------------------------------------------------------------
// Dequant-fused matvecs. Each mirrors dot_avx2 exactly — same four
// accumulators, same 32-wide main loop / 8-wide tail / hsum8 reduction /
// scalar remainder — with only the weight loads swapped for widening loads.
// bf16 -> fp32 widening is a pure bit shift (exact), so the bf16 results are
// bitwise identical to dot_avx2 over pre-widened rows; the int8 path
// multiplies each widened lane by the row scale before the FMA, matching a
// dequantise-then-dot_avx2 oracle bit for bit.

// Local copies of the bf16 widening (tensor/bf16.hpp is deliberately not
// included here: its inline functions instantiated in this -mavx2 TU could
// win COMDAT selection over their baseline twins).
float widen_bf16(std::uint16_t bits) {
  const std::uint32_t wide = static_cast<std::uint32_t>(bits) << 16;
  float out;
  std::memcpy(&out, &wide, sizeof out);
  return out;
}

// 8 bf16 weights -> 8 fp32 lanes: zero-extend to 32 bits, shift into the
// high half, reinterpret. Exact, matching widen_bf16 per lane.
__m256 load_bf16_8(const std::uint16_t* p) {
  const __m128i raw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  return _mm256_castsi256_ps(_mm256_slli_epi32(_mm256_cvtepu16_epi32(raw), 16));
}

// 8 int8 weights -> 8 fp32 lanes (unscaled).
__m256 load_i8_8(const std::int8_t* p) {
  const __m128i raw = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  return _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(raw));
}

float dot_bf16_avx2(const float* x, const std::uint16_t* w, std::size_t n,
                    const std::uint16_t* next_row) {
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    // 32 bf16 elements span one cache line; walking the next row one line
    // ahead mirrors dot_avx2_nextrow (prefetch never touches arithmetic).
    _mm_prefetch(reinterpret_cast<const char*>(next_row + i), _MM_HINT_T0);
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i), load_bf16_8(w + i), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 8), load_bf16_8(w + i + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 16), load_bf16_8(w + i + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 24), load_bf16_8(w + i + 24), acc3);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i), load_bf16_8(w + i), acc0);
  }
  float total =
      hsum8(_mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3)));
  for (; i < n; ++i) total += x[i] * widen_bf16(w[i]);
  return total;
}

float dot_i8_avx2(const float* x, const std::int8_t* w, float scale, std::size_t n,
                  const std::int8_t* next_row) {
  const __m256 vscale = _mm256_set1_ps(scale);
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    _mm_prefetch(reinterpret_cast<const char*>(next_row + i), _MM_HINT_T0);
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i),
                           _mm256_mul_ps(load_i8_8(w + i), vscale), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 8),
                           _mm256_mul_ps(load_i8_8(w + i + 8), vscale), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 16),
                           _mm256_mul_ps(load_i8_8(w + i + 16), vscale), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 24),
                           _mm256_mul_ps(load_i8_8(w + i + 24), vscale), acc3);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i),
                           _mm256_mul_ps(load_i8_8(w + i), vscale), acc0);
  }
  float total =
      hsum8(_mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3)));
  for (; i < n; ++i) total += x[i] * (scale * static_cast<float>(w[i]));
  return total;
}

void gemv_rows_bf16_avx2(std::size_t rows, std::size_t k, float alpha, const float* x,
                         const std::uint16_t* b, std::size_t ldb, float* y) {
  for (std::size_t j = 0; j < rows; ++j) {
    const std::uint16_t* row = b + j * ldb;
    const std::uint16_t* next = j + 1 < rows ? row + ldb : row;
    y[j] += alpha * dot_bf16_avx2(x, row, k, next);
  }
}

void gemv_rows_multi_bf16_avx2(std::size_t rows, std::size_t k, float alpha,
                               const float* const* xs, std::size_t count,
                               const std::uint16_t* b, std::size_t ldb,
                               float* const* ys) {
  if (count == 0) return;
  for (std::size_t j = 0; j < rows; ++j) {
    const std::uint16_t* row = b + j * ldb;
    const std::uint16_t* next = j + 1 < rows ? row + ldb : row;
    // Input 0 carries the next-row prefetch; the rest run from cache —
    // same shape as gemv_rows_multi_avx2.
    ys[0][j] += alpha * dot_bf16_avx2(xs[0], row, k, next);
    for (std::size_t i = 1; i < count; ++i) {
      ys[i][j] += alpha * dot_bf16_avx2(xs[i], row, k, row);
    }
  }
}

void gemv_rows_i8_avx2(std::size_t rows, std::size_t k, float alpha, const float* x,
                       const std::int8_t* b, std::size_t ldb, const float* scales,
                       float* y) {
  for (std::size_t j = 0; j < rows; ++j) {
    const std::int8_t* row = b + j * ldb;
    const std::int8_t* next = j + 1 < rows ? row + ldb : row;
    y[j] += alpha * dot_i8_avx2(x, row, scales[j], k, next);
  }
}

void gemv_rows_multi_i8_avx2(std::size_t rows, std::size_t k, float alpha,
                             const float* const* xs, std::size_t count,
                             const std::int8_t* b, std::size_t ldb,
                             const float* scales, float* const* ys) {
  if (count == 0) return;
  for (std::size_t j = 0; j < rows; ++j) {
    const std::int8_t* row = b + j * ldb;
    const std::int8_t* next = j + 1 < rows ? row + ldb : row;
    ys[0][j] += alpha * dot_i8_avx2(xs[0], row, scales[j], k, next);
    for (std::size_t i = 1; i < count; ++i) {
      ys[i][j] += alpha * dot_i8_avx2(xs[i], row, scales[j], k, row);
    }
  }
}

const KernelVtable kAvx2Table = {
    "avx2",
    kMr,
    kNr,
    120,   // mc: 20 micro-rows, a-panel 120x256 floats ≈ 120 KiB (L2)
    256,   // kc
    1024,  // nc: b-panel 256x1024 floats = 1 MiB (L2/L3)
    micro_kernel_6x16,
    gemv_rows_avx2,
    gemv_rows_multi_avx2,
    axpy_avx2,
    dot_avx2,
    add_inplace_avx2,
    scale_inplace_avx2,
    add_row_bias_avx2,
    gelu_apply_avx2,
    gelu_grad_mul_avx2,
    softmax_row_avx2,
    gemv_rows_bf16_avx2,
    gemv_rows_multi_bf16_avx2,
    gemv_rows_i8_avx2,
    gemv_rows_multi_i8_avx2,
};

}  // namespace

const KernelVtable* avx2_kernels() { return &kAvx2Table; }

}  // namespace astromlab::tensor::detail

#else  // !ASTROMLAB_KERNEL_AVX2

namespace astromlab::tensor::detail {
const KernelVtable* avx2_kernels() { return nullptr; }
}  // namespace astromlab::tensor::detail

#endif
