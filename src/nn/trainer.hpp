#pragma once
// Training loop driving GptModel + AdamW over a BatchSource.
//
// Mirrors the paper's §III recipes: a fixed number of epochs (they train
// one), total batch size realised as micro-batch × gradient accumulation,
// linear-warmup + cosine-decay schedule, bf16-style checkpointing handled
// by the caller.

#include <cstddef>
#include <filesystem>
#include <functional>
#include <vector>

#include "nn/adamw.hpp"
#include "nn/data.hpp"
#include "nn/gpt.hpp"
#include "nn/lr_schedule.hpp"
#include "nn/train_state.hpp"
#include "util/rng.hpp"

namespace astromlab::nn {

struct TrainConfig {
  std::size_t micro_batch = 8;
  std::size_t grad_accum = 1;     ///< total batch = micro_batch * grad_accum
  std::size_t seq_len = 128;
  float lr = 2e-3f;               ///< paper uses 2e-5 at 8B/70B scale; tiny
                                  ///< models need proportionally larger lr
  double warmup_ratio = 0.03;     ///< paper value
  double min_lr_ratio = 0.1;
  float weight_decay = 0.01f;
  float clip_norm = 1.0f;
  double epochs = 1.0;            ///< paper trains one epoch
  std::size_t max_steps = 0;      ///< 0 = derive from epochs & data size
  std::size_t log_every = 0;      ///< 0 = silent
};

/// Crash-safety knobs for `Trainer::train`. With `save_every > 0` the
/// trainer snapshots the model (fp32, exact) and a `TrainerState` every
/// `save_every` completed steps; if `state_path` already holds a valid
/// state when training starts, the run resumes from it bit-identically.
/// Both files are removed once the run completes.
struct DurabilityConfig {
  std::size_t save_every = 0;        ///< steps between snapshots; 0 disables
  std::filesystem::path state_path;  ///< TrainerState file
  std::filesystem::path model_path;  ///< fp32 model snapshot
  bool resume = true;                ///< pick up state_path when present

  bool enabled() const { return save_every > 0 && !state_path.empty(); }
};

struct TrainStats {
  std::size_t steps = 0;
  std::size_t tokens_processed = 0;
  float first_loss = 0.0f;
  float final_loss = 0.0f;
  double mean_loss = 0.0;
  double wall_seconds = 0.0;
  double tokens_per_second = 0.0;
};

class Trainer {
 public:
  Trainer(GptModel& model, TrainConfig config);

  /// Runs the configured number of optimisation steps over `data`.
  /// `on_step(step, loss)` is invoked after every optimiser step when set.
  TrainStats train(BatchSource& data, util::Rng& rng,
                   const std::function<void(std::size_t, float)>& on_step = nullptr);

  /// As above, with crash-safe snapshotting and resume. A run killed at
  /// any point and restarted with the same config, data, and durability
  /// paths continues from the last snapshot and ends with byte-identical
  /// parameters and statistics.
  TrainStats train(BatchSource& data, util::Rng& rng, const DurabilityConfig& durability,
                   const std::function<void(std::size_t, float)>& on_step = nullptr);

  /// Steps implied by the config for this data source.
  std::size_t planned_steps(const BatchSource& data) const;

  const TrainConfig& config() const { return config_; }

 private:
  GptModel& model_;
  TrainConfig config_;
};

/// Mean next-token loss of the model over a held-out token stream
/// (perplexity = exp(loss)); deterministic, no gradients.
float held_out_loss(const GptModel& model, const std::vector<Token>& tokens,
                    std::size_t seq_len, std::size_t max_windows = 32);

}  // namespace astromlab::nn
