#include "nn/trainer.hpp"

#include <algorithm>
#include <cmath>

#include "nn/checkpoint.hpp"
#include "util/io.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"
#include "util/string_utils.hpp"

namespace astromlab::nn {

Trainer::Trainer(GptModel& model, TrainConfig config) : model_(model), config_(config) {}

std::size_t Trainer::planned_steps(const BatchSource& data) const {
  if (config_.max_steps > 0) return config_.max_steps;
  const std::size_t tokens_per_step =
      config_.micro_batch * config_.grad_accum * config_.seq_len;
  const double epoch_tokens = static_cast<double>(data.epoch_tokens());
  const double steps = config_.epochs * epoch_tokens / static_cast<double>(tokens_per_step);
  return std::max<std::size_t>(1, static_cast<std::size_t>(steps));
}

TrainStats Trainer::train(BatchSource& data, util::Rng& rng,
                          const std::function<void(std::size_t, float)>& on_step) {
  return train(data, rng, DurabilityConfig{}, on_step);
}

TrainStats Trainer::train(BatchSource& data, util::Rng& rng,
                          const DurabilityConfig& durability,
                          const std::function<void(std::size_t, float)>& on_step) {
  namespace fs = std::filesystem;
  const std::size_t steps = planned_steps(data);
  const std::size_t seq = std::min(config_.seq_len, model_.config().ctx_len);

  AdamWConfig adam_config;
  adam_config.weight_decay = config_.weight_decay;
  adam_config.clip_norm = config_.clip_norm;
  AdamW optimizer(model_.params(), adam_config);
  CosineSchedule schedule(config_.lr, steps, config_.warmup_ratio, config_.min_lr_ratio);

  GptActivations acts;
  std::vector<Token> inputs, targets;
  TrainStats stats;
  util::Stopwatch watch;
  double loss_sum = 0.0;
  std::size_t start_step = 0;

  const bool durable = durability.enabled();
  if (durable && durability.resume && fs::exists(durability.state_path)) {
    // Keep the caller's initial weights so a rejected snapshot can fall
    // back to a genuinely fresh start.
    const std::vector<float> pristine(model_.params().params(),
                                      model_.params().params() + model_.params().total_size());
    try {
      const TrainerState state = load_trainer_state(durability.state_path);
      if (state.total_steps != steps) {
        log::warn() << "ignoring trainer state " << durability.state_path.string()
                    << ": planned " << state.total_steps << " steps, current run plans "
                    << steps;
      } else {
        load_checkpoint_params(model_, durability.model_path);
        const std::uint32_t crc = util::crc32(
            model_.params().params(), model_.params().total_size() * sizeof(float));
        if (crc != state.params_crc) {
          throw util::CorruptFileError(
              "trainer state and model snapshot disagree (crash between writes?): " +
              durability.state_path.string());
        }
        optimizer.restore(state.m, state.v, state.optimizer_step_count);
        rng.restore_state(state.rng);
        start_step = static_cast<std::size_t>(state.next_step);
        stats.steps = start_step;
        stats.tokens_processed = static_cast<std::size_t>(state.tokens_processed);
        stats.first_loss = state.first_loss;
        stats.final_loss = state.final_loss;
        loss_sum = state.loss_sum;
        log::info() << "resuming training at step " << start_step << "/" << steps
                    << " from " << durability.state_path.string();
      }
    } catch (const std::exception& e) {
      // A torn snapshot must not kill the run: fall back to a fresh start.
      log::warn() << "ignoring unusable trainer state: " << e.what();
      std::copy(pristine.begin(), pristine.end(), model_.params().params());
      start_step = 0;
    }
  }

  for (std::size_t step = start_step; step < steps; ++step) {
    model_.params().zero_grads();
    float step_loss = 0.0f;
    for (std::size_t micro = 0; micro < config_.grad_accum; ++micro) {
      data.next_batch(inputs, targets, config_.micro_batch, seq, rng);
      const float loss =
          model_.forward(acts, inputs.data(), targets.data(), config_.micro_batch, seq);
      model_.backward(acts, inputs.data(), targets.data(), config_.micro_batch, seq);
      step_loss += loss;
      stats.tokens_processed += config_.micro_batch * seq;
    }
    step_loss /= static_cast<float>(config_.grad_accum);
    // Average accumulated gradients over the micro-batches.
    if (config_.grad_accum > 1) {
      model_.params().scale_grads(1.0f / static_cast<float>(config_.grad_accum));
    }
    optimizer.step(schedule.lr(step));

    if (step == 0) stats.first_loss = step_loss;
    stats.final_loss = step_loss;
    loss_sum += step_loss;
    ++stats.steps;
    if (config_.log_every > 0 && (step % config_.log_every == 0 || step + 1 == steps)) {
      log::info() << "train step " << step + 1 << "/" << steps << " loss "
                  << util::format_fixed(step_loss, 4) << " lr "
                  << util::format_fixed(schedule.lr(step), 6);
    }
    if (on_step) on_step(step, step_loss);

    if (durable && (step + 1) % durability.save_every == 0 && step + 1 < steps) {
      // Each file commits atomically; the params CRC stored in the state
      // detects the remaining hazard of a crash landing between the two
      // writes, in which case resume falls back to a fresh start.
      save_checkpoint(model_, durability.model_path, CheckpointPrecision::kF32);
      TrainerState state;
      state.params_crc = util::crc32(model_.params().params(),
                                     model_.params().total_size() * sizeof(float));
      state.next_step = step + 1;
      state.total_steps = steps;
      state.tokens_processed = stats.tokens_processed;
      state.first_loss = stats.first_loss;
      state.final_loss = stats.final_loss;
      state.loss_sum = loss_sum;
      state.optimizer_step_count = optimizer.step_count();
      state.m = optimizer.moment1();
      state.v = optimizer.moment2();
      state.rng = rng.save_state();
      save_trainer_state(state, durability.state_path);
    }
  }

  if (durable) {
    // The run completed; snapshots are now stale and must not hijack a
    // future run with the same paths.
    std::error_code ec;
    fs::remove(durability.state_path, ec);
    if (!durability.model_path.empty()) fs::remove(durability.model_path, ec);
  }

  stats.wall_seconds = watch.seconds();
  stats.mean_loss = stats.steps > 0 ? loss_sum / static_cast<double>(stats.steps) : 0.0;
  stats.tokens_per_second =
      stats.wall_seconds > 0.0 ? static_cast<double>(stats.tokens_processed) / stats.wall_seconds
                               : 0.0;
  return stats;
}

float held_out_loss(const GptModel& model, const std::vector<Token>& tokens,
                    std::size_t seq_len, std::size_t max_windows) {
  const std::size_t seq = std::min(seq_len, model.config().ctx_len);
  if (tokens.size() < seq + 1) return 0.0f;
  GptActivations acts;
  std::vector<Token> inputs(seq), targets(seq);
  const std::size_t stride = seq;
  const std::size_t windows =
      std::min(max_windows, (tokens.size() - 1) / stride);
  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t w = 0; w < windows; ++w) {
    const std::size_t start = w * stride;
    if (start + seq + 1 > tokens.size()) break;
    for (std::size_t t = 0; t < seq; ++t) {
      inputs[t] = tokens[start + t];
      targets[t] = tokens[start + t + 1];
    }
    total += model.forward(acts, inputs.data(), targets.data(), 1, seq);
    ++counted;
  }
  return counted > 0 ? static_cast<float>(total / static_cast<double>(counted)) : 0.0f;
}

}  // namespace astromlab::nn
