#include "nn/sampler.hpp"

#include <algorithm>
#include <cmath>

#include "nn/decode_engine.hpp"
#include "tensor/ops.hpp"
#include "util/metrics.hpp"
#include "util/stopwatch.hpp"
#include "util/trace.hpp"

namespace astromlab::nn {

Token Sampler::pick(const std::vector<float>& logits, const SampleConfig& config,
                    util::Rng& rng) {
  if (config.temperature <= 0.0f) {
    return static_cast<Token>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
  }
  std::vector<float> scaled(logits.size());
  const float inv_temp = 1.0f / config.temperature;
  for (std::size_t i = 0; i < logits.size(); ++i) scaled[i] = logits[i] * inv_temp;

  if (config.top_k > 0 && config.top_k < scaled.size()) {
    // Mask everything below the k-th largest logit.
    std::vector<float> sorted(scaled);
    std::nth_element(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(config.top_k - 1),
                     sorted.end(), std::greater<float>());
    const float threshold = sorted[config.top_k - 1];
    for (float& s : scaled) {
      if (s < threshold) s = -1e30f;
    }
  }

  std::vector<float> probs(scaled.size());
  tensor::softmax_row(scaled.data(), probs.data(), scaled.size());
  double target = rng.next_double();
  for (std::size_t i = 0; i < probs.size(); ++i) {
    if (target < probs[i]) return static_cast<Token>(i);
    target -= probs[i];
  }
  return static_cast<Token>(probs.size() - 1);
}

namespace {

struct GenerateMetrics {
  util::metrics::Counter& calls;
  util::metrics::Counter& tokens;
};

GenerateMetrics& generate_metrics() {
  auto& reg = util::metrics::registry();
  static GenerateMetrics m{reg.counter("nn.generate_calls"),
                           reg.counter("nn.generated_tokens")};
  return m;
}

/// Counts the tokens actually produced even on early returns (cancel,
/// timeout, stop token) — every exit path passes through the destructor.
struct TokenCountGuard {
  const SampleResult& result;
  ~TokenCountGuard() { generate_metrics().tokens.add(result.tokens.size()); }
};

}  // namespace

SampleResult Sampler::generate(const std::vector<Token>& prompt_tokens,
                               const SampleConfig& config, util::Rng& rng) {
  const util::trace::Span span("nn.generate", "nn", "prompt_tokens",
                               static_cast<std::uint64_t>(prompt_tokens.size()));
  generate_metrics().calls.add();
  SampleResult result;
  const TokenCountGuard count_guard{result};
  inference_.reset();
  const std::size_t ctx = inference_.model().config().ctx_len;
  if (prompt_tokens.empty() || prompt_tokens.size() >= ctx) {
    result.hit_context_limit = prompt_tokens.size() >= ctx;
    return result;
  }
  util::Stopwatch watch;
  std::size_t fed_from = 0;
  if (config.prefix_fork) {
    // Guarded path: the snapshot's owner performs the copy-on-fork under
    // its own lock, so a concurrent eviction (degradation-ladder rung 1)
    // can never free the source rows mid-copy. Returns 0 when nothing
    // matched or the cache was already evicted — plain full prefill.
    fed_from = config.prefix_fork(inference_, prompt_tokens);
    result.reused_prefix_tokens = fed_from;
  } else if (config.prefix_snapshot != nullptr && config.prefix_snapshot->valid()) {
    // Fork the shared prefix instead of re-encoding it. Capped at
    // prompt_tokens.size() - 1 so at least one token is always fed and the
    // returned logits are computed, not stale snapshot state.
    std::size_t common = common_token_prefix(config.prefix_snapshot->tokens(), prompt_tokens);
    common = std::min(common, prompt_tokens.size() - 1);
    if (common > 0) {
      try {
        inference_.fork_from(*config.prefix_snapshot, common);
        fed_from = common;
        result.reused_prefix_tokens = common;
      } catch (const StaleSnapshotError&) {
        // The snapshot's source was reset or evicted under memory
        // pressure mid-run: fall back to a full prefill. Logits (and
        // therefore scores) are bit-identical; only the work changes.
        inference_.reset();
        fed_from = 0;
      }
    }
  }
  const std::vector<float>* logits = &inference_.prompt(
      prompt_tokens.data() + fed_from, prompt_tokens.size() - fed_from, config.cancel);
  if (config.cancel != nullptr && config.cancel->cancelled()) {
    result.cancelled = true;  // fired mid-prompt: logits are stale, stop here
    return result;
  }
  for (std::size_t i = 0; i < config.max_new_tokens; ++i) {
    if (config.cancel != nullptr && config.cancel->cancelled()) {
      result.cancelled = true;
      return result;
    }
    if (config.max_wall_seconds > 0.0 && watch.seconds() >= config.max_wall_seconds) {
      result.timed_out = true;
      return result;
    }
    const Token next = pick(*logits, config, rng);
    if (std::find(config.stop_tokens.begin(), config.stop_tokens.end(), next) !=
        config.stop_tokens.end()) {
      result.hit_stop = true;
      return result;
    }
    result.tokens.push_back(next);
    if (inference_.position() >= ctx) {
      result.hit_context_limit = true;
      return result;
    }
    logits = &inference_.step(next);
  }
  return result;
}

SampleResult generate_with_engine(DecodeEngine& engine,
                                  const std::vector<Token>& prompt_tokens,
                                  const SampleConfig& config, util::Rng& rng) {
  const util::trace::Span span("nn.generate", "nn", "prompt_tokens",
                               static_cast<std::uint64_t>(prompt_tokens.size()));
  generate_metrics().calls.add();
  SampleResult result;
  const TokenCountGuard count_guard{result};
  const std::size_t ctx = engine.model().config().ctx_len;
  if (prompt_tokens.empty() || prompt_tokens.size() >= ctx) {
    result.hit_context_limit = prompt_tokens.size() >= ctx;
    return result;
  }
  util::Stopwatch watch;

  DecodeEngine::Request req;
  req.prompt = prompt_tokens;
  req.cancel = config.cancel;
  if (config.prefix_fork_batched) {
    req.prepare = [&result, &config](BatchedInference& bi, std::size_t slot,
                                     const std::vector<Token>& prompt) {
      const std::size_t reused = config.prefix_fork_batched(bi, slot, prompt);
      result.reused_prefix_tokens = reused;
      return reused;
    };
  }
  // One invocation per fresh-logits point, replaying one iteration of the
  // serial generate loop in its exact check order: iteration count, cancel,
  // watchdog, pick, stop token, context limit.
  std::size_t produced = 0;
  req.on_logits = [&](const std::vector<float>& logits, std::size_t position) -> Token {
    if (produced >= config.max_new_tokens) return DecodeEngine::kStopDecoding;
    if (config.cancel != nullptr && config.cancel->cancelled()) {
      result.cancelled = true;
      return DecodeEngine::kStopDecoding;
    }
    if (config.max_wall_seconds > 0.0 && watch.seconds() >= config.max_wall_seconds) {
      result.timed_out = true;
      return DecodeEngine::kStopDecoding;
    }
    const Token next = Sampler::pick(logits, config, rng);
    if (std::find(config.stop_tokens.begin(), config.stop_tokens.end(), next) !=
        config.stop_tokens.end()) {
      result.hit_stop = true;
      return DecodeEngine::kStopDecoding;
    }
    result.tokens.push_back(next);
    ++produced;
    if (position >= ctx) {
      result.hit_context_limit = true;
      return DecodeEngine::kStopDecoding;
    }
    return next;
  };
  const DecodeEngine::Completion completion = engine.run(std::move(req));
  if (completion.cancelled) result.cancelled = true;
  return result;
}

}  // namespace astromlab::nn
