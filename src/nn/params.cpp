#include "nn/params.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace astromlab::nn {

std::size_t ParamTable::register_segment(std::string name, std::size_t size, bool decay) {
  if (allocated_) throw std::logic_error("ParamTable: register after allocate");
  ParamSegment segment;
  segment.name = std::move(name);
  segment.offset = total_size_;
  segment.size = size;
  segment.decay = decay;
  segments_.push_back(std::move(segment));
  total_size_ += size;
  return segments_.size() - 1;
}

void ParamTable::allocate() {
  params_.assign(total_size_, 0.0f);
  grads_.assign(total_size_, 0.0f);
  allocated_ = true;
}

void ParamTable::zero_grads() {
  std::memset(grads_.data(), 0, grads_.size() * sizeof(float));
}

double ParamTable::grad_norm() const {
  double total = 0.0;
  for (float g : grads_) total += static_cast<double>(g) * g;
  return std::sqrt(total);
}

void ParamTable::scale_grads(float factor) {
  for (float& g : grads_) g *= factor;
}

}  // namespace astromlab::nn
