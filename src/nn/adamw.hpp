#pragma once
// AdamW optimiser with decoupled weight decay and global-norm clipping.
//
// Matches the paper's training setup (AdamW-family optimiser, cosine decay
// schedule, bf16-era defaults): beta1=0.9, beta2=0.999 (paper does not
// override), eps=1e-8, decay applied only to matrix weights.

#include <cstddef>
#include <vector>

#include "nn/params.hpp"

namespace astromlab::nn {

struct AdamWConfig {
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.01f;
  /// Gradients are rescaled so the global L2 norm never exceeds this
  /// (<= 0 disables clipping).
  float clip_norm = 1.0f;
};

class AdamW {
 public:
  AdamW(ParamTable& params, AdamWConfig config);

  /// Applies one update with the given learning rate; returns the
  /// pre-clipping global gradient norm (telemetry).
  double step(float lr);

  /// Resets moment estimates and the step counter (used when a cached base
  /// model starts a fresh CPT/SFT phase, as the paper does per phase).
  void reset();

  std::size_t step_count() const { return step_count_; }

  /// Moment buffers, exposed for TrainerState serialisation.
  const std::vector<float>& moment1() const { return m_; }
  const std::vector<float>& moment2() const { return v_; }

  /// Restores serialised optimiser state (resume); sizes must match the
  /// parameter table this optimiser was built over.
  void restore(const std::vector<float>& m, const std::vector<float>& v,
               std::size_t step_count);

 private:
  ParamTable& params_;
  AdamWConfig config_;
  std::vector<float> m_;
  std::vector<float> v_;
  std::vector<bool> decay_mask_;
  std::size_t step_count_ = 0;
};

}  // namespace astromlab::nn
