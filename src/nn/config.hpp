#pragma once
// Transformer architecture configuration.

#include <cstddef>
#include <stdexcept>
#include <string>

#include "util/hash.hpp"

namespace astromlab::nn {

/// Decoder-only GPT-2-style architecture description. The LM head is tied
/// to the token embedding (standard practice; also how the reproduction
/// keeps small models capacity-bound, which is what makes catastrophic
/// forgetting observable).
struct GptConfig {
  std::size_t vocab_size = 512;
  std::size_t ctx_len = 128;    ///< maximum sequence length (positions)
  std::size_t d_model = 64;     ///< residual stream width
  std::size_t n_heads = 4;      ///< attention heads; must divide d_model
  std::size_t n_layers = 2;     ///< transformer blocks
  std::size_t d_ff = 256;       ///< MLP hidden width (usually 4 * d_model)

  std::size_t head_dim() const { return d_model / n_heads; }

  void validate() const {
    if (vocab_size == 0 || ctx_len == 0 || d_model == 0 || n_heads == 0 ||
        n_layers == 0 || d_ff == 0) {
      throw std::invalid_argument("GptConfig: all dimensions must be positive");
    }
    if (d_model % n_heads != 0) {
      throw std::invalid_argument("GptConfig: n_heads must divide d_model");
    }
  }

  /// Total trainable parameter count for this architecture.
  std::size_t param_count() const;

  bool operator==(const GptConfig&) const = default;

  /// Folds every field into a fingerprint (for experiment cache keys).
  void add_to_hash(util::HashBuilder& h) const {
    h.add_u64(vocab_size).add_u64(ctx_len).add_u64(d_model);
    h.add_u64(n_heads).add_u64(n_layers).add_u64(d_ff);
  }

  std::string describe() const;
};

}  // namespace astromlab::nn
