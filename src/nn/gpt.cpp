#include "nn/gpt.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "tensor/bf16.hpp"
#include "tensor/ops.hpp"
#include "util/checksum.hpp"
#include "util/thread_pool.hpp"

namespace astromlab::nn {

using tensor::sgemm;

namespace {

constexpr float kLnEps = 1e-5f;

void layernorm_forward(float* out, float* mean, float* rstd, const float* x, const float* gain,
                       const float* bias, std::size_t rows, std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    const float* xr = x + r * cols;
    float* outr = out + r * cols;
    double m = 0.0;
    for (std::size_t c = 0; c < cols; ++c) m += xr[c];
    m /= static_cast<double>(cols);
    double var = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      const double d = xr[c] - m;
      var += d * d;
    }
    var /= static_cast<double>(cols);
    const float rs = static_cast<float>(1.0 / std::sqrt(var + kLnEps));
    const float mf = static_cast<float>(m);
    for (std::size_t c = 0; c < cols; ++c) {
      outr[c] = (xr[c] - mf) * rs * gain[c] + bias[c];
    }
    mean[r] = mf;
    rstd[r] = rs;
  }
}

void layernorm_backward(float* dx, float* dgain, float* dbias, const float* dout,
                        const float* x, const float* mean, const float* rstd,
                        const float* gain, std::size_t rows, std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    const float* doutr = dout + r * cols;
    const float* xr = x + r * cols;
    float* dxr = dx + r * cols;
    const float m = mean[r];
    const float rs = rstd[r];

    double dnorm_mean = 0.0;
    double dnorm_norm_mean = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      const float norm = (xr[c] - m) * rs;
      const float dnorm = doutr[c] * gain[c];
      dnorm_mean += dnorm;
      dnorm_norm_mean += dnorm * norm;
    }
    dnorm_mean /= static_cast<double>(cols);
    dnorm_norm_mean /= static_cast<double>(cols);

    for (std::size_t c = 0; c < cols; ++c) {
      const float norm = (xr[c] - m) * rs;
      const float dnorm = doutr[c] * gain[c];
      dxr[c] += (dnorm - static_cast<float>(dnorm_mean) -
                 norm * static_cast<float>(dnorm_norm_mean)) *
                rs;
      dgain[c] += doutr[c] * norm;
      dbias[c] += doutr[c];
    }
  }
}

/// out[M, O] = x[M, C] * W^T + bias, with W stored [O, C].
void linear_forward(float* out, const float* x, const float* weight, const float* bias,
                    std::size_t m, std::size_t in_dim, std::size_t out_dim) {
  sgemm(false, true, m, out_dim, in_dim, 1.0f, x, in_dim, weight, in_dim, 0.0f, out, out_dim);
  if (bias != nullptr) tensor::add_row_bias(out, bias, m, out_dim);
}

/// Accumulates dx (optional), dW and db for the layer above.
void linear_backward(float* dx, float* dweight, float* dbias, const float* dout,
                     const float* x, const float* weight, std::size_t m, std::size_t in_dim,
                     std::size_t out_dim) {
  if (dx != nullptr) {
    sgemm(false, false, m, in_dim, out_dim, 1.0f, dout, out_dim, weight, in_dim, 1.0f, dx,
          in_dim);
  }
  sgemm(true, false, out_dim, in_dim, m, 1.0f, dout, out_dim, x, in_dim, 1.0f, dweight, in_dim);
  if (dbias != nullptr) {
    for (std::size_t r = 0; r < m; ++r) {
      const float* dout_row = dout + r * out_dim;
      for (std::size_t o = 0; o < out_dim; ++o) dbias[o] += dout_row[o];
    }
  }
}

/// Causal multi-head attention. qkv is (B,T,3C): [q | k | v] per position.
/// Writes softmax probabilities (B,NH,T,T; upper triangle zero) and the
/// context output atty (B,T,C).
void attention_forward(float* atty, float* probs, const float* qkv, std::size_t batch,
                       std::size_t seq, std::size_t c, std::size_t n_heads) {
  const std::size_t hs = c / n_heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(hs));
  util::parallel_for_each(batch * n_heads, [&](std::size_t bh) {
    const std::size_t b = bh / n_heads;
    const std::size_t h = bh % n_heads;
    const float* qkv_b = qkv + b * seq * 3 * c;
    float* probs_bh = probs + (b * n_heads + h) * seq * seq;
    float* atty_b = atty + b * seq * c;
    for (std::size_t t = 0; t < seq; ++t) {
      const float* q = qkv_b + t * 3 * c + h * hs;
      float* row = probs_bh + t * seq;
      // Scores for t2 <= t; the rest of the row stays zero.
      for (std::size_t t2 = 0; t2 <= t; ++t2) {
        const float* k = qkv_b + t2 * 3 * c + c + h * hs;
        row[t2] = tensor::dot(q, k, hs) * scale;
      }
      tensor::softmax_row(row, row, t + 1);
      std::fill(row + t + 1, row + seq, 0.0f);
      float* out = atty_b + t * c + h * hs;
      std::fill(out, out + hs, 0.0f);
      for (std::size_t t2 = 0; t2 <= t; ++t2) {
        const float* v = qkv_b + t2 * 3 * c + 2 * c + h * hs;
        tensor::axpy(row[t2], v, out, hs);
      }
    }
  }, 1);
}

/// Backward of attention_forward. datty is the gradient wrt atty; d_att is a
/// scratch buffer (B,NH,T,T). Accumulates into dqkv (B,T,3C).
void attention_backward(float* dqkv, float* d_att, const float* datty, const float* probs,
                        const float* qkv, std::size_t batch, std::size_t seq, std::size_t c,
                        std::size_t n_heads) {
  const std::size_t hs = c / n_heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(hs));
  util::parallel_for_each(batch * n_heads, [&](std::size_t bh) {
    const std::size_t b = bh / n_heads;
    const std::size_t h = bh % n_heads;
    const float* qkv_b = qkv + b * seq * 3 * c;
    float* dqkv_b = dqkv + b * seq * 3 * c;
    const float* probs_bh = probs + (b * n_heads + h) * seq * seq;
    float* datt_bh = d_att + (b * n_heads + h) * seq * seq;
    const float* datty_b = datty + b * seq * c;

    for (std::size_t t = 0; t < seq; ++t) {
      const float* dout = datty_b + t * c + h * hs;
      const float* att_row = probs_bh + t * seq;
      float* datt_row = datt_bh + t * seq;

      // d probs and d v.
      for (std::size_t t2 = 0; t2 <= t; ++t2) {
        const float* v = qkv_b + t2 * 3 * c + 2 * c + h * hs;
        float* dv = dqkv_b + t2 * 3 * c + 2 * c + h * hs;
        datt_row[t2] = tensor::dot(dout, v, hs);
        tensor::axpy(att_row[t2], dout, dv, hs);
      }
      // Softmax backward: dpre = att * (datt - sum(datt * att)).
      double dot_sum = 0.0;
      for (std::size_t t2 = 0; t2 <= t; ++t2) dot_sum += datt_row[t2] * att_row[t2];
      const float* q = qkv_b + t * 3 * c + h * hs;
      float* dq = dqkv_b + t * 3 * c + h * hs;
      for (std::size_t t2 = 0; t2 <= t; ++t2) {
        const float dpre = att_row[t2] * (datt_row[t2] - static_cast<float>(dot_sum)) * scale;
        const float* k = qkv_b + t2 * 3 * c + c + h * hs;
        float* dk = dqkv_b + t2 * 3 * c + c + h * hs;
        tensor::axpy(dpre, k, dq, hs);
        tensor::axpy(dpre, q, dk, hs);
      }
    }
  }, 1);
}

void resize_if_needed(std::vector<float>& buffer, std::size_t size) {
  if (buffer.size() < size) buffer.assign(size, 0.0f);
}

/// m == 1 linear_forward that consults the model's quantised side storage:
/// runs the dequant-fused matvec when the weight segment is quantised,
/// the fp32 gemv otherwise. Biases always stay fp32.
void quant_linear(const tensor::QuantMatrix* qm, float* out, const float* x,
                  const float* weight, const float* bias, std::size_t in_dim,
                  std::size_t out_dim) {
  if (qm != nullptr) {
    tensor::gemv_quant(*qm, 1.0f, x, out);
    if (bias != nullptr) tensor::add_row_bias(out, bias, 1, out_dim);
    return;
  }
  linear_forward(out, x, weight, bias, 1, in_dim, out_dim);
}

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

}  // namespace

std::size_t GptConfig::param_count() const {
  const std::size_t c = d_model;
  std::size_t per_block = 2 * c            // ln1
                          + 3 * c * c + 3 * c  // qkv
                          + c * c + c          // attn proj
                          + 2 * c              // ln2
                          + d_ff * c + d_ff    // fc
                          + c * d_ff + c;      // fc proj
  return vocab_size * c + ctx_len * c + n_layers * per_block + 2 * c;
}

std::string GptConfig::describe() const {
  return "GptConfig{V=" + std::to_string(vocab_size) + ", T=" + std::to_string(ctx_len) +
         ", C=" + std::to_string(d_model) + ", H=" + std::to_string(n_heads) +
         ", L=" + std::to_string(n_layers) + ", F=" + std::to_string(d_ff) +
         ", params=" + std::to_string(param_count()) + "}";
}

GptModel::GptModel(GptConfig config) : config_(config) {
  config_.validate();
  const std::size_t c = config_.d_model;
  const std::size_t f = config_.d_ff;
  layout_.wte = params_.register_segment("wte", config_.vocab_size * c, false);
  layout_.wpe = params_.register_segment("wpe", config_.ctx_len * c, false);
  layout_.blocks.resize(config_.n_layers);
  for (std::size_t l = 0; l < config_.n_layers; ++l) {
    auto& blk = layout_.blocks[l];
    const std::string p = "block" + std::to_string(l) + ".";
    blk.ln1_g = params_.register_segment(p + "ln1.g", c, false);
    blk.ln1_b = params_.register_segment(p + "ln1.b", c, false);
    blk.qkv_w = params_.register_segment(p + "attn.qkv.w", 3 * c * c, true);
    blk.qkv_b = params_.register_segment(p + "attn.qkv.b", 3 * c, false);
    blk.attn_proj_w = params_.register_segment(p + "attn.proj.w", c * c, true);
    blk.attn_proj_b = params_.register_segment(p + "attn.proj.b", c, false);
    blk.ln2_g = params_.register_segment(p + "ln2.g", c, false);
    blk.ln2_b = params_.register_segment(p + "ln2.b", c, false);
    blk.fc_w = params_.register_segment(p + "mlp.fc.w", f * c, true);
    blk.fc_b = params_.register_segment(p + "mlp.fc.b", f, false);
    blk.fc_proj_w = params_.register_segment(p + "mlp.proj.w", c * f, true);
    blk.fc_proj_b = params_.register_segment(p + "mlp.proj.b", c, false);
  }
  layout_.lnf_g = params_.register_segment("lnf.g", c, false);
  layout_.lnf_b = params_.register_segment("lnf.b", c, false);
  params_.allocate();
  if (params_.total_size() != config_.param_count()) {
    throw std::logic_error("GptModel: parameter layout / param_count mismatch");
  }
}

void GptModel::init_weights(util::Rng& rng) {
  constexpr float kStd = 0.02f;
  const float residual_scale =
      1.0f / std::sqrt(2.0f * static_cast<float>(config_.n_layers));
  auto fill_gauss = [&](std::size_t segment, float stddev) {
    float* p = params_.param(segment);
    const std::size_t n = params_.segments()[segment].size;
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = static_cast<float>(rng.next_gaussian()) * stddev;
    }
  };
  auto fill_const = [&](std::size_t segment, float value) {
    float* p = params_.param(segment);
    const std::size_t n = params_.segments()[segment].size;
    std::fill(p, p + n, value);
  };

  fill_gauss(layout_.wte, kStd);
  fill_gauss(layout_.wpe, kStd);
  for (const auto& blk : layout_.blocks) {
    fill_const(blk.ln1_g, 1.0f);
    fill_const(blk.ln1_b, 0.0f);
    fill_gauss(blk.qkv_w, kStd);
    fill_const(blk.qkv_b, 0.0f);
    fill_gauss(blk.attn_proj_w, kStd * residual_scale);
    fill_const(blk.attn_proj_b, 0.0f);
    fill_const(blk.ln2_g, 1.0f);
    fill_const(blk.ln2_b, 0.0f);
    fill_gauss(blk.fc_w, kStd);
    fill_const(blk.fc_b, 0.0f);
    fill_gauss(blk.fc_proj_w, kStd * residual_scale);
    fill_const(blk.fc_proj_b, 0.0f);
  }
  fill_const(layout_.lnf_g, 1.0f);
  fill_const(layout_.lnf_b, 0.0f);
}

void GptModel::quantize_weights(tensor::WeightDtype dtype) {
  quant_.clear();
  weight_dtype_ = dtype;
  if (dtype == tensor::WeightDtype::kF32) return;

  if (dtype == tensor::WeightDtype::kBf16) {
    // Round the entire parameter table in place so every code path — the
    // fused kernels, the fp32 fallbacks for small tensors, training
    // forward/backward — sees the same bf16-representable values. This is
    // what makes bf16 inference bitwise identical to fp32 inference over
    // the rounded masters.
    float* p = params_.params();
    const std::size_t n = params_.total_size();
    for (std::size_t i = 0; i < n; ++i) p[i] = tensor::bf16_round(p[i]);
  }

  quant_.resize(params_.segments().size());
  const std::size_t c = config_.d_model;
  const std::size_t f = config_.d_ff;
  auto store = [&](std::size_t segment, std::size_t rows, std::size_t cols) {
    quant_[segment] = tensor::quantize(dtype, params_.param(segment), rows, cols);
  };
  // The five matrices of the decode path: per-block qkv/attn_proj/fc/
  // fc_proj plus the tied wte LM head. Everything else (biases, layernorm
  // gains, wpe) is O(C) per token and stays fp32.
  store(layout_.wte, config_.vocab_size, c);
  for (const auto& blk : layout_.blocks) {
    store(blk.qkv_w, 3 * c, c);
    store(blk.attn_proj_w, c, c);
    store(blk.fc_w, f, c);
    store(blk.fc_proj_w, c, f);
  }
}

void GptModel::ensure_activation_capacity(GptActivations& acts, std::size_t batch,
                                          std::size_t seq) const {
  const std::size_t c = config_.d_model;
  const std::size_t f = config_.d_ff;
  const std::size_t v = config_.vocab_size;
  const std::size_t l = config_.n_layers;
  const std::size_t nh = config_.n_heads;
  const std::size_t bt = batch * seq;
  acts.batch = batch;
  acts.seq = seq;
  resize_if_needed(acts.encoded, bt * c);
  resize_if_needed(acts.residual, (l + 1) * bt * c);
  resize_if_needed(acts.ln1, l * bt * c);
  resize_if_needed(acts.ln1_mean, l * bt);
  resize_if_needed(acts.ln1_rstd, l * bt);
  resize_if_needed(acts.qkv, l * bt * 3 * c);
  resize_if_needed(acts.att_probs, l * batch * nh * seq * seq);
  resize_if_needed(acts.atty, l * bt * c);
  resize_if_needed(acts.attproj, l * bt * c);
  resize_if_needed(acts.ln2, l * bt * c);
  resize_if_needed(acts.ln2_mean, l * bt);
  resize_if_needed(acts.ln2_rstd, l * bt);
  resize_if_needed(acts.fch, l * bt * f);
  resize_if_needed(acts.fch_gelu, l * bt * f);
  resize_if_needed(acts.fcproj, l * bt * c);
  resize_if_needed(acts.lnf, bt * c);
  resize_if_needed(acts.lnf_mean, bt);
  resize_if_needed(acts.lnf_rstd, bt);
  resize_if_needed(acts.logits, bt * v);
  resize_if_needed(acts.probs, bt * v);
  resize_if_needed(acts.d_residual, bt * c);
  resize_if_needed(acts.d_ln, bt * c);
  resize_if_needed(acts.d_qkv, bt * 3 * c);
  resize_if_needed(acts.d_atty, bt * c);
  resize_if_needed(acts.d_att, batch * nh * seq * seq);
  resize_if_needed(acts.d_fch, bt * f);
  resize_if_needed(acts.d_fch_gelu, bt * f);
  resize_if_needed(acts.d_logits, bt * v);
}

float GptModel::forward(GptActivations& acts, const Token* tokens, const Token* targets,
                        std::size_t batch, std::size_t seq) const {
  if (seq > config_.ctx_len) {
    throw std::invalid_argument("forward: seq exceeds ctx_len");
  }
  ensure_activation_capacity(acts, batch, seq);
  const std::size_t c = config_.d_model;
  const std::size_t f = config_.d_ff;
  const std::size_t v = config_.vocab_size;
  const std::size_t nh = config_.n_heads;
  const std::size_t bt = batch * seq;
  const float* wte = params_.param(layout_.wte);
  const float* wpe = params_.param(layout_.wpe);

  // Embeddings.
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t t = 0; t < seq; ++t) {
      const Token token = tokens[b * seq + t];
      if (token < 0 || static_cast<std::size_t>(token) >= v) {
        throw std::out_of_range("forward: token id out of range");
      }
      float* out = acts.encoded.data() + (b * seq + t) * c;
      const float* te = wte + static_cast<std::size_t>(token) * c;
      const float* pe = wpe + t * c;
      for (std::size_t i = 0; i < c; ++i) out[i] = te[i] + pe[i];
    }
  }
  std::memcpy(acts.residual.data(), acts.encoded.data(), bt * c * sizeof(float));

  for (std::size_t l = 0; l < config_.n_layers; ++l) {
    const auto& blk = layout_.blocks[l];
    const float* res_in = acts.residual.data() + l * bt * c;
    float* res_out = acts.residual.data() + (l + 1) * bt * c;
    float* ln1 = acts.ln1.data() + l * bt * c;
    float* qkv = acts.qkv.data() + l * bt * 3 * c;
    float* probs = acts.att_probs.data() + l * batch * nh * seq * seq;
    float* atty = acts.atty.data() + l * bt * c;
    // attproj buffer stores the post-attention residual stream (input to
    // ln2); the projection itself is folded in before the residual add.
    float* res2 = acts.attproj.data() + l * bt * c;
    float* ln2 = acts.ln2.data() + l * bt * c;
    float* fch = acts.fch.data() + l * bt * f;
    float* fch_gelu = acts.fch_gelu.data() + l * bt * f;
    float* fcproj = acts.fcproj.data() + l * bt * c;

    layernorm_forward(ln1, acts.ln1_mean.data() + l * bt, acts.ln1_rstd.data() + l * bt,
                      res_in, params_.param(blk.ln1_g), params_.param(blk.ln1_b), bt, c);
    linear_forward(qkv, ln1, params_.param(blk.qkv_w), params_.param(blk.qkv_b), bt, c, 3 * c);
    attention_forward(atty, probs, qkv, batch, seq, c, nh);
    linear_forward(res2, atty, params_.param(blk.attn_proj_w), params_.param(blk.attn_proj_b),
                   bt, c, c);
    tensor::add_inplace(res2, res_in, bt * c);

    layernorm_forward(ln2, acts.ln2_mean.data() + l * bt, acts.ln2_rstd.data() + l * bt, res2,
                      params_.param(blk.ln2_g), params_.param(blk.ln2_b), bt, c);
    linear_forward(fch, ln2, params_.param(blk.fc_w), params_.param(blk.fc_b), bt, c, f);
    tensor::gelu_apply(fch, fch_gelu, bt * f);
    linear_forward(fcproj, fch_gelu, params_.param(blk.fc_proj_w),
                   params_.param(blk.fc_proj_b), bt, f, c);
    for (std::size_t i = 0; i < bt * c; ++i) res_out[i] = res2[i] + fcproj[i];
  }

  const float* res_final = acts.residual.data() + config_.n_layers * bt * c;
  layernorm_forward(acts.lnf.data(), acts.lnf_mean.data(), acts.lnf_rstd.data(), res_final,
                    params_.param(layout_.lnf_g), params_.param(layout_.lnf_b), bt, c);
  // Tied LM head: logits = lnf * wte^T.
  sgemm(false, true, bt, v, c, 1.0f, acts.lnf.data(), c, wte, c, 0.0f, acts.logits.data(), v);

  if (targets == nullptr) return 0.0f;

  // Softmax + mean cross-entropy over valid targets.
  std::size_t valid = 0;
  double loss_sum = 0.0;
  for (std::size_t i = 0; i < bt; ++i) {
    tensor::softmax_row(acts.logits.data() + i * v, acts.probs.data() + i * v, v);
    const Token target = targets[i];
    if (target == kIgnoreTarget) continue;
    if (target < 0 || static_cast<std::size_t>(target) >= v) {
      throw std::out_of_range("forward: target id out of range");
    }
    ++valid;
    const float p = acts.probs[i * v + static_cast<std::size_t>(target)];
    loss_sum += -std::log(std::max(p, 1e-30f));
  }
  return valid > 0 ? static_cast<float>(loss_sum / static_cast<double>(valid)) : 0.0f;
}

void GptModel::backward(GptActivations& acts, const Token* tokens, const Token* targets,
                        std::size_t batch, std::size_t seq) {
  const std::size_t c = config_.d_model;
  const std::size_t f = config_.d_ff;
  const std::size_t v = config_.vocab_size;
  const std::size_t nh = config_.n_heads;
  const std::size_t bt = batch * seq;
  float* wte = params_.param(layout_.wte);
  float* d_wte = params_.grad(layout_.wte);
  float* d_wpe = params_.grad(layout_.wpe);

  // dLoss/dlogits from softmax cross-entropy.
  std::size_t valid = 0;
  for (std::size_t i = 0; i < bt; ++i) {
    if (targets[i] != kIgnoreTarget) ++valid;
  }
  if (valid == 0) return;
  const float inv_valid = 1.0f / static_cast<float>(valid);
  std::memset(acts.d_logits.data(), 0, bt * v * sizeof(float));
  for (std::size_t i = 0; i < bt; ++i) {
    const Token target = targets[i];
    if (target == kIgnoreTarget) continue;
    const float* p = acts.probs.data() + i * v;
    float* dl = acts.d_logits.data() + i * v;
    for (std::size_t j = 0; j < v; ++j) dl[j] = p[j] * inv_valid;
    dl[static_cast<std::size_t>(target)] -= inv_valid;
  }

  // Tied head backward: d_lnf = d_logits * wte; d_wte += d_logits^T * lnf.
  std::memset(acts.d_ln.data(), 0, bt * c * sizeof(float));
  sgemm(false, false, bt, c, v, 1.0f, acts.d_logits.data(), v, wte, c, 1.0f, acts.d_ln.data(),
        c);
  sgemm(true, false, v, c, bt, 1.0f, acts.d_logits.data(), v, acts.lnf.data(), c, 1.0f, d_wte,
        c);

  // Final LayerNorm backward into the residual-stream gradient.
  std::memset(acts.d_residual.data(), 0, bt * c * sizeof(float));
  const float* res_final = acts.residual.data() + config_.n_layers * bt * c;
  layernorm_backward(acts.d_residual.data(), params_.grad(layout_.lnf_g),
                     params_.grad(layout_.lnf_b), acts.d_ln.data(), res_final,
                     acts.lnf_mean.data(), acts.lnf_rstd.data(), params_.param(layout_.lnf_g),
                     bt, c);

  for (std::size_t li = config_.n_layers; li-- > 0;) {
    const auto& blk = layout_.blocks[li];
    const float* res_in = acts.residual.data() + li * bt * c;
    const float* ln1 = acts.ln1.data() + li * bt * c;
    const float* qkv = acts.qkv.data() + li * bt * 3 * c;
    const float* probs = acts.att_probs.data() + li * batch * nh * seq * seq;
    const float* atty = acts.atty.data() + li * bt * c;
    const float* res2 = acts.attproj.data() + li * bt * c;
    const float* ln2 = acts.ln2.data() + li * bt * c;
    const float* fch = acts.fch.data() + li * bt * f;
    const float* fch_gelu = acts.fch_gelu.data() + li * bt * f;

    // d_residual currently holds dL/d(res_out) = dL/d(res2 + fcproj).
    // MLP projection backward.
    std::memset(acts.d_fch_gelu.data(), 0, bt * f * sizeof(float));
    linear_backward(acts.d_fch_gelu.data(), params_.grad(blk.fc_proj_w),
                    params_.grad(blk.fc_proj_b), acts.d_residual.data(), fch_gelu,
                    params_.param(blk.fc_proj_w), bt, f, c);
    // GELU backward.
    tensor::gelu_grad_mul(fch, acts.d_fch_gelu.data(), acts.d_fch.data(), bt * f);
    // MLP input layer backward; d_ln receives dL/d(ln2 out).
    std::memset(acts.d_ln.data(), 0, bt * c * sizeof(float));
    linear_backward(acts.d_ln.data(), params_.grad(blk.fc_w), params_.grad(blk.fc_b),
                    acts.d_fch.data(), ln2, params_.param(blk.fc_w), bt, c, f);
    // ln2 backward accumulates into d_residual (res2 feeds both the MLP
    // branch via ln2 and the residual path directly).
    layernorm_backward(acts.d_residual.data(), params_.grad(blk.ln2_g),
                       params_.grad(blk.ln2_b), acts.d_ln.data(), res2,
                       acts.ln2_mean.data() + li * bt, acts.ln2_rstd.data() + li * bt,
                       params_.param(blk.ln2_g), bt, c);

    // Attention projection backward.
    std::memset(acts.d_atty.data(), 0, bt * c * sizeof(float));
    linear_backward(acts.d_atty.data(), params_.grad(blk.attn_proj_w),
                    params_.grad(blk.attn_proj_b), acts.d_residual.data(), atty,
                    params_.param(blk.attn_proj_w), bt, c, c);
    // Attention core backward.
    std::memset(acts.d_qkv.data(), 0, bt * 3 * c * sizeof(float));
    attention_backward(acts.d_qkv.data(), acts.d_att.data(), acts.d_atty.data(), probs, qkv,
                       batch, seq, c, nh);
    // QKV projection backward; d_ln receives dL/d(ln1 out).
    std::memset(acts.d_ln.data(), 0, bt * c * sizeof(float));
    linear_backward(acts.d_ln.data(), params_.grad(blk.qkv_w), params_.grad(blk.qkv_b),
                    acts.d_qkv.data(), ln1, params_.param(blk.qkv_w), bt, c, 3 * c);
    // ln1 backward accumulates into d_residual (which already carries the
    // pass-through gradient of the residual connection).
    layernorm_backward(acts.d_residual.data(), params_.grad(blk.ln1_g),
                       params_.grad(blk.ln1_b), acts.d_ln.data(), res_in,
                       acts.ln1_mean.data() + li * bt, acts.ln1_rstd.data() + li * bt,
                       params_.param(blk.ln1_g), bt, c);
  }

  // Embedding backward.
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t t = 0; t < seq; ++t) {
      const Token token = tokens[b * seq + t];
      const float* d_enc = acts.d_residual.data() + (b * seq + t) * c;
      tensor::add_inplace(d_wte + static_cast<std::size_t>(token) * c, d_enc, c);
      tensor::add_inplace(d_wpe + t * c, d_enc, c);
    }
  }
}

float GptModel::evaluate_loss(GptActivations& acts, const std::vector<Token>& tokens,
                              std::size_t batch, std::size_t seq) const {
  if (tokens.size() < batch * seq + 1) {
    throw std::invalid_argument("evaluate_loss: need batch*seq+1 tokens");
  }
  std::vector<Token> inputs(batch * seq);
  std::vector<Token> targets(batch * seq);
  for (std::size_t i = 0; i < batch * seq; ++i) {
    inputs[i] = tokens[i];
    targets[i] = tokens[i + 1];
  }
  return forward(acts, inputs.data(), targets.data(), batch, seq);
}

GptInference::GptInference(const GptModel& model) : GptInference(model, nullptr) {}

GptInference::GptInference(const GptModel& model, std::shared_ptr<KvArena> arena)
    : model_(model), arena_(std::move(arena)) {
  const auto& cfg = model.config();
  if (arena_ != nullptr && arena_->d_model() != cfg.d_model) {
    throw std::invalid_argument("GptInference: arena d_model does not match model");
  }
  // K/V buffers are NOT allocated here: step/prompt/fork charge them
  // lazily via ensure_kv(), so per-worker scratch inferences constructed
  // during setup cost nothing until their first question — which runs
  // inside the supervisor's fault domain, where a budget denial is caught
  // by the degradation ladder instead of aborting the run.
  x_.assign(cfg.d_model, 0.0f);
  ln_.assign(cfg.d_model, 0.0f);
  qkv_.assign(3 * cfg.d_model, 0.0f);
  atty_.assign(cfg.d_model, 0.0f);
  proj_.assign(cfg.d_model, 0.0f);
  fch_.assign(cfg.d_ff, 0.0f);
  scores_.assign(cfg.ctx_len, 0.0f);
  logits_.assign(cfg.vocab_size, 0.0f);
}

void GptInference::reset() {
  position_ = 0;
  history_.clear();
  // Invalidate outstanding snapshots: their rows may be overwritten by the
  // next feed, and a CRC match alone cannot prove they were not (a reset
  // leaves the old bytes in place until re-encoded over).
  ++generation_;
}

GptInference::~GptInference() {
  if (arena_ != nullptr && !k_blocks_.empty()) drop_held_blocks();
}

bool GptInference::kv_resident() const {
  return paged() ? !k_blocks_.empty() : !k_cache_.empty();
}

void GptInference::ensure_kv() {
  if (kv_resident()) return;
  const auto& cfg = model_.config();
  if (paged()) {
    // Only the pointer tables are set up here: blocks are charged one at a
    // time as positions are first written (k_write_row/v_write_row), so an
    // idle paged session costs no KV budget at all.
    const std::size_t nb = ceil_div(cfg.ctx_len, arena_->block_tokens());
    k_blocks_.assign(cfg.n_layers,
                     std::vector<KvArena::BlockId>(nb, KvArena::kNoBlock));
    v_blocks_.assign(cfg.n_layers,
                     std::vector<KvArena::BlockId>(nb, KvArena::kNoBlock));
    k_ptrs_.assign(cfg.n_layers, std::vector<float*>(nb, nullptr));
    v_ptrs_.assign(cfg.n_layers, std::vector<float*>(nb, nullptr));
    return;
  }
  // Build the whole cache into locals first. Each per-layer allocation
  // charges the budget through the vector's allocator, and a denial on any
  // layer unwinds the locals — releasing exactly what they had charged —
  // with the members untouched (strong guarantee). The previous scheme
  // (reserve the total, then resize the members layer by layer) left a
  // half-allocated cache behind on a mid-loop throw, which the residency
  // fast path then mistook for a complete one.
  std::vector<KvVector> k(cfg.n_layers), v(cfg.n_layers);
  for (std::size_t l = 0; l < cfg.n_layers; ++l) {
    k[l].assign(cfg.ctx_len * cfg.d_model, 0.0f);
    v[l].assign(cfg.ctx_len * cfg.d_model, 0.0f);
  }
  k_cache_ = std::move(k);
  v_cache_ = std::move(v);
}

void GptInference::drop_held_blocks() {
  for (const auto& layer : k_blocks_) {
    for (KvArena::BlockId id : layer) {
      if (id != KvArena::kNoBlock) arena_->release(id);
    }
  }
  for (const auto& layer : v_blocks_) {
    for (KvArena::BlockId id : layer) {
      if (id != KvArena::kNoBlock) arena_->release(id);
    }
  }
  k_blocks_.clear();
  v_blocks_.clear();
  k_ptrs_.clear();
  v_ptrs_.clear();
}

std::size_t GptInference::kv_bytes() const {
  if (!kv_resident()) return 0;
  const auto& cfg = model_.config();
  if (paged()) {
    std::size_t held = 0;
    for (const auto& layer : k_blocks_) {
      for (KvArena::BlockId id : layer) held += (id != KvArena::kNoBlock) ? 1 : 0;
    }
    for (const auto& layer : v_blocks_) {
      for (KvArena::BlockId id : layer) held += (id != KvArena::kNoBlock) ? 1 : 0;
    }
    return held * arena_->block_bytes();
  }
  return cfg.n_layers * 2 * cfg.ctx_len * cfg.d_model * sizeof(float);
}

std::size_t GptInference::release_kv() {
  if (!kv_resident()) return 0;
  const std::size_t freed = kv_bytes();
  if (paged()) {
    drop_held_blocks();
  } else {
    std::vector<KvVector>().swap(k_cache_);
    std::vector<KvVector>().swap(v_cache_);
  }
  position_ = 0;
  history_.clear();
  // Outstanding snapshots now reference freed rows; the generation bump
  // turns any later fork into StaleSnapshotError instead of a dangling
  // read (the CRC check alone would dereference the freed buffers).
  ++generation_;
  return freed;
}

const float* GptInference::k_row(std::size_t l, std::size_t t) const {
  const std::size_t c = model_.config().d_model;
  if (!paged()) return k_cache_[l].data() + t * c;
  const std::size_t bt = arena_->block_tokens();
  return k_ptrs_[l][t / bt] + (t % bt) * c;
}

const float* GptInference::v_row(std::size_t l, std::size_t t) const {
  const std::size_t c = model_.config().d_model;
  if (!paged()) return v_cache_[l].data() + t * c;
  const std::size_t bt = arena_->block_tokens();
  return v_ptrs_[l][t / bt] + (t % bt) * c;
}

float* GptInference::k_write_row(std::size_t l, std::size_t t) {
  const std::size_t c = model_.config().d_model;
  if (!paged()) return k_cache_[l].data() + t * c;
  const std::size_t bt = arena_->block_tokens();
  const std::size_t bi = t / bt;
  KvArena::BlockId& id = k_blocks_[l][bi];
  const KvArena::WriteRef ref =
      (id == KvArena::kNoBlock) ? arena_->alloc_ref() : arena_->write_ref(id);
  id = ref.id;
  k_ptrs_[l][bi] = ref.data;
  return ref.data + (t % bt) * c;
}

float* GptInference::v_write_row(std::size_t l, std::size_t t) {
  const std::size_t c = model_.config().d_model;
  if (!paged()) return v_cache_[l].data() + t * c;
  const std::size_t bt = arena_->block_tokens();
  const std::size_t bi = t / bt;
  KvArena::BlockId& id = v_blocks_[l][bi];
  const KvArena::WriteRef ref =
      (id == KvArena::kNoBlock) ? arena_->alloc_ref() : arena_->write_ref(id);
  id = ref.id;
  v_ptrs_[l][bi] = ref.data;
  return ref.data + (t % bt) * c;
}

std::uint32_t GptInference::kv_crc(std::size_t rows) const {
  // Same byte stream in both storage modes (all K layers row-major, then
  // all V layers), so a snapshot CRC taken from a contiguous inference
  // revalidates against a paged one and vice versa.
  util::Crc32 crc;
  if (!kv_resident()) rows = 0;
  const std::size_t c = model_.config().d_model;
  const std::size_t n_layers = model_.config().n_layers;
  for (std::size_t l = 0; l < n_layers; ++l) {
    for (std::size_t t = 0; t < rows; ++t) crc.update(k_row(l, t), c * sizeof(float));
  }
  for (std::size_t l = 0; l < n_layers; ++l) {
    for (std::size_t t = 0; t < rows; ++t) crc.update(v_row(l, t), c * sizeof(float));
  }
  return crc.value();
}

void GptInference::adopt_blocks(const GptInference& src, std::size_t prefix_len) {
  const auto& cfg = model_.config();
  const std::size_t bt = arena_->block_tokens();
  if (!k_blocks_.empty()) drop_held_blocks();
  const std::size_t nb = ceil_div(cfg.ctx_len, bt);
  k_blocks_.assign(cfg.n_layers, std::vector<KvArena::BlockId>(nb, KvArena::kNoBlock));
  v_blocks_.assign(cfg.n_layers, std::vector<KvArena::BlockId>(nb, KvArena::kNoBlock));
  k_ptrs_.assign(cfg.n_layers, std::vector<float*>(nb, nullptr));
  v_ptrs_.assign(cfg.n_layers, std::vector<float*>(nb, nullptr));
  // Share the prefix blocks by refcount — no row copies. A boundary block
  // cut mid-prefix is safe to share: rows >= prefix_len are written
  // strictly sequentially, and the first such write copies-on-write.
  const std::size_t shared = ceil_div(prefix_len, bt);
  for (std::size_t l = 0; l < cfg.n_layers; ++l) {
    for (std::size_t bi = 0; bi < shared; ++bi) {
      arena_->add_ref(src.k_blocks_[l][bi]);
      k_blocks_[l][bi] = src.k_blocks_[l][bi];
      k_ptrs_[l][bi] = src.k_ptrs_[l][bi];
      arena_->add_ref(src.v_blocks_[l][bi]);
      v_blocks_[l][bi] = src.v_blocks_[l][bi];
      v_ptrs_[l][bi] = src.v_ptrs_[l][bi];
    }
  }
}

std::size_t common_token_prefix(const std::vector<Token>& a, const std::vector<Token>& b) {
  const std::size_t limit = std::min(a.size(), b.size());
  std::size_t n = 0;
  while (n < limit && a[n] == b[n]) ++n;
  return n;
}

KvSnapshot GptInference::snapshot() const {
  KvSnapshot snap;
  snap.source_ = this;
  snap.generation_ = generation_;
  snap.tokens_ = history_;
  snap.crc_ = kv_crc(position_);
  return snap;
}

void GptInference::fork_from(const KvSnapshot& snap) { fork_from(snap, snap.length()); }

void GptInference::fork_from(const KvSnapshot& snap, std::size_t prefix_len) {
  if (!snap.valid()) {
    throw StaleSnapshotError("fork_from: empty snapshot handle");
  }
  const GptInference& src = *snap.source_;
  if (&src.model_ != &model_) {
    throw std::invalid_argument("fork_from: snapshot was taken from a different model");
  }
  if (prefix_len > snap.tokens_.size()) {
    throw std::invalid_argument("fork_from: prefix_len exceeds snapshot length");
  }
  if (src.generation_ != snap.generation_) {
    throw StaleSnapshotError(
        "fork_from: snapshot invalidated by reset() of its source inference");
  }
  // Defence in depth: revalidate the referenced rows against the CRC
  // captured at snapshot time, so any other mutation of the source cache
  // surfaces as a typed error instead of silently wrong logits.
  const std::size_t c = model_.config().d_model;
  if (src.kv_crc(snap.tokens_.size()) != snap.crc_) {
    throw StaleSnapshotError(
        "fork_from: source K/V rows changed since snapshot (CRC mismatch)");
  }
  if (this != &src) {
    if (paged() && src.paged() && arena_ == src.arena_) {
      // Same arena: share the prefix blocks by refcount instead of copying
      // rows — this is what makes N forked sessions pay for one prefix.
      adopt_blocks(src, prefix_len);
    } else {
      ensure_kv();
      // prefix_len == 0 also covers a source whose (lazy) caches were
      // never allocated: there are no rows to copy.
      const std::size_t n_layers = model_.config().n_layers;
      for (std::size_t l = 0; prefix_len > 0 && l < n_layers; ++l) {
        for (std::size_t t = 0; t < prefix_len; ++t) {
          std::memcpy(k_write_row(l, t), src.k_row(l, t), c * sizeof(float));
          std::memcpy(v_write_row(l, t), src.v_row(l, t), c * sizeof(float));
        }
      }
    }
  }
  position_ = prefix_len;
  history_.assign(snap.tokens_.begin(),
                  snap.tokens_.begin() + static_cast<std::ptrdiff_t>(prefix_len));
}

void GptInference::corrupt_kv_for_testing(std::size_t layer, std::size_t index, float value) {
  if (!paged()) {
    k_cache_.at(layer).at(index) = value;
    return;
  }
  // Deliberately bypasses copy-on-write: the seam simulates cache
  // corruption, which by nature does not announce itself to refcounts.
  const std::size_t c = model_.config().d_model;
  const std::size_t t = index / c;
  const std::size_t bt = arena_->block_tokens();
  float* block = k_ptrs_.at(layer).at(t / bt);
  if (block == nullptr) {
    throw std::out_of_range("corrupt_kv_for_testing: row not allocated");
  }
  block[(t % bt) * c + index % c] = value;
}

const std::vector<float>& GptInference::step(Token token) {
  const auto& cfg = model_.config();
  const auto& layout = model_.layout();
  const auto& params = model_.params();
  const std::size_t c = cfg.d_model;
  const std::size_t f = cfg.d_ff;
  const std::size_t nh = cfg.n_heads;
  const std::size_t hs = cfg.head_dim();
  if (position_ >= cfg.ctx_len) {
    throw std::length_error("GptInference: context window exhausted");
  }
  if (token < 0 || static_cast<std::size_t>(token) >= cfg.vocab_size) {
    throw std::out_of_range("GptInference: token id out of range");
  }
  ensure_kv();
  const std::size_t t = position_;
  const float scale = 1.0f / std::sqrt(static_cast<float>(hs));
  const float* wte = params.param(layout.wte);
  const float* wpe = params.param(layout.wpe);

  for (std::size_t i = 0; i < c; ++i) {
    x_[i] = wte[static_cast<std::size_t>(token) * c + i] + wpe[t * c + i];
  }

  float mean_scratch, rstd_scratch;
  for (std::size_t l = 0; l < cfg.n_layers; ++l) {
    const auto& blk = layout.blocks[l];
    layernorm_forward(ln_.data(), &mean_scratch, &rstd_scratch, x_.data(),
                      params.param(blk.ln1_g), params.param(blk.ln1_b), 1, c);
    quant_linear(model_.quant(blk.qkv_w), qkv_.data(), ln_.data(),
                 params.param(blk.qkv_w), params.param(blk.qkv_b), c, 3 * c);
    std::memcpy(k_write_row(l, t), qkv_.data() + c, c * sizeof(float));
    std::memcpy(v_write_row(l, t), qkv_.data() + 2 * c, c * sizeof(float));

    for (std::size_t h = 0; h < nh; ++h) {
      const float* q = qkv_.data() + h * hs;
      for (std::size_t t2 = 0; t2 <= t; ++t2) {
        scores_[t2] = tensor::dot(q, k_row(l, t2) + h * hs, hs) * scale;
      }
      tensor::softmax_row(scores_.data(), scores_.data(), t + 1);
      float* out = atty_.data() + h * hs;
      std::fill(out, out + hs, 0.0f);
      for (std::size_t t2 = 0; t2 <= t; ++t2) {
        tensor::axpy(scores_[t2], v_row(l, t2) + h * hs, out, hs);
      }
    }
    quant_linear(model_.quant(blk.attn_proj_w), proj_.data(), atty_.data(),
                 params.param(blk.attn_proj_w), params.param(blk.attn_proj_b), c, c);
    tensor::add_inplace(x_.data(), proj_.data(), c);

    layernorm_forward(ln_.data(), &mean_scratch, &rstd_scratch, x_.data(),
                      params.param(blk.ln2_g), params.param(blk.ln2_b), 1, c);
    quant_linear(model_.quant(blk.fc_w), fch_.data(), ln_.data(),
                 params.param(blk.fc_w), params.param(blk.fc_b), c, f);
    tensor::gelu_apply(fch_.data(), fch_.data(), f);
    quant_linear(model_.quant(blk.fc_proj_w), proj_.data(), fch_.data(),
                 params.param(blk.fc_proj_w), params.param(blk.fc_proj_b), f, c);
    tensor::add_inplace(x_.data(), proj_.data(), c);
  }

  layernorm_forward(ln_.data(), &mean_scratch, &rstd_scratch, x_.data(),
                    params.param(layout.lnf_g), params.param(layout.lnf_b), 1, c);
  if (const tensor::QuantMatrix* qm = model_.quant(layout.wte)) {
    tensor::gemv_quant(*qm, 1.0f, ln_.data(), logits_.data());
  } else {
    sgemm(false, true, 1, cfg.vocab_size, c, 1.0f, ln_.data(), c, wte, c, 0.0f,
          logits_.data(), cfg.vocab_size);
  }
  ++position_;
  history_.push_back(token);
  return logits_;
}

const std::vector<float>& GptInference::prompt(const std::vector<Token>& tokens) {
  return prompt(tokens, nullptr);
}

const std::vector<float>& GptInference::prompt(const std::vector<Token>& tokens,
                                               const util::CancelToken* cancel) {
  if (tokens.empty()) throw std::invalid_argument("prompt: empty token sequence");
  return prompt(tokens.data(), tokens.size(), cancel);
}

const std::vector<float>& GptInference::prompt(const Token* tokens, std::size_t count,
                                               const util::CancelToken* cancel) {
  for (std::size_t i = 0; i < count; ++i) {
    if (cancel != nullptr && cancel->cancelled()) break;
    step(tokens[i]);
  }
  return logits_;
}

// ---------------------------------------------------------------------------
// BatchedInference

BatchedInference::BatchedInference(const GptModel& model, std::size_t max_slots)
    : model_(model) {
  if (max_slots == 0) {
    throw std::invalid_argument("BatchedInference: max_slots must be >= 1");
  }
  const auto& cfg = model.config();
  slots_.resize(max_slots);
  for (auto& s : slots_) {
    // KV caches stay lazy (ensure_slot_kv), same as GptInference: an idle
    // slot costs only its activation scratch.
    s.x.assign(cfg.d_model, 0.0f);
    s.ln.assign(cfg.d_model, 0.0f);
    s.qkv.assign(3 * cfg.d_model, 0.0f);
    s.atty.assign(cfg.d_model, 0.0f);
    s.proj.assign(cfg.d_model, 0.0f);
    s.fch.assign(cfg.d_ff, 0.0f);
    s.scores.assign(cfg.ctx_len, 0.0f);
    s.logits.assign(cfg.vocab_size, 0.0f);
  }
  xs_.resize(max_slots);
  ys_.resize(max_slots);
}

const std::vector<float>& BatchedInference::logits(std::size_t slot) const {
  return slots_.at(slot).logits;
}

std::size_t BatchedInference::position(std::size_t slot) const {
  return slots_.at(slot).position;
}

const std::vector<Token>& BatchedInference::history(std::size_t slot) const {
  return slots_.at(slot).history;
}

void BatchedInference::reset_slot(std::size_t slot) {
  Slot& s = slots_.at(slot);
  s.position = 0;
  s.history.clear();
}

void BatchedInference::ensure_slot_kv(std::size_t slot) {
  Slot& s = slots_.at(slot);
  if (!s.k_cache.empty()) return;
  const auto& cfg = model_.config();
  // Build into locals first: each per-layer allocation charges the budget
  // through the vector's allocator, and a denial on any layer unwinds the
  // locals with the slot untouched (strong guarantee) — the other slots
  // keep decoding and a retry starts from a clean slot.
  std::vector<KvVector> k(cfg.n_layers), v(cfg.n_layers);
  for (std::size_t l = 0; l < cfg.n_layers; ++l) {
    k[l].assign(cfg.ctx_len * cfg.d_model, 0.0f);
    v[l].assign(cfg.ctx_len * cfg.d_model, 0.0f);
  }
  s.k_cache = std::move(k);
  s.v_cache = std::move(v);
}

std::size_t BatchedInference::release_slot_kv(std::size_t slot) {
  Slot& s = slots_.at(slot);
  if (s.k_cache.empty()) return 0;
  const std::size_t freed = slot_kv_bytes(slot);
  std::vector<KvVector>().swap(s.k_cache);
  std::vector<KvVector>().swap(s.v_cache);
  s.position = 0;
  s.history.clear();
  return freed;
}

std::size_t BatchedInference::slot_kv_bytes(std::size_t slot) const {
  const Slot& s = slots_.at(slot);
  if (s.k_cache.empty()) return 0;
  const auto& cfg = model_.config();
  return cfg.n_layers * 2 * cfg.ctx_len * cfg.d_model * sizeof(float);
}

void BatchedInference::fork_slot(std::size_t slot, const KvSnapshot& snap,
                                 std::size_t prefix_len) {
  Slot& s = slots_.at(slot);
  if (!snap.valid()) {
    throw StaleSnapshotError("fork_slot: empty snapshot handle");
  }
  const GptInference& src = *snap.source_;
  if (&src.model_ != &model_) {
    throw std::invalid_argument("fork_slot: snapshot was taken from a different model");
  }
  if (prefix_len > snap.tokens_.size()) {
    throw std::invalid_argument("fork_slot: prefix_len exceeds snapshot length");
  }
  if (src.generation_ != snap.generation_) {
    throw StaleSnapshotError(
        "fork_slot: snapshot invalidated by reset() of its source inference");
  }
  const std::size_t c = model_.config().d_model;
  if (src.kv_crc(snap.tokens_.size()) != snap.crc_) {
    throw StaleSnapshotError(
        "fork_slot: source K/V rows changed since snapshot (CRC mismatch)");
  }
  ensure_slot_kv(slot);
  // Per-row copies through the source's row accessor, so a paged source
  // (serve sessions over an arena) forks into a batch slot transparently.
  for (std::size_t l = 0; prefix_len > 0 && l < s.k_cache.size(); ++l) {
    for (std::size_t t = 0; t < prefix_len; ++t) {
      std::memcpy(s.k_cache[l].data() + t * c, src.k_row(l, t), c * sizeof(float));
      std::memcpy(s.v_cache[l].data() + t * c, src.v_row(l, t), c * sizeof(float));
    }
  }
  s.position = prefix_len;
  s.history.assign(snap.tokens_.begin(),
                   snap.tokens_.begin() + static_cast<std::ptrdiff_t>(prefix_len));
}

void BatchedInference::export_slot(std::size_t slot, GptInference& out) const {
  const Slot& s = slots_.at(slot);
  if (&out.model_ != &model_) {
    throw std::invalid_argument("export_slot: target built on a different model");
  }
  out.ensure_kv();
  const std::size_t c = model_.config().d_model;
  const std::size_t n_layers = model_.config().n_layers;
  for (std::size_t l = 0; s.position > 0 && l < n_layers; ++l) {
    for (std::size_t t = 0; t < s.position; ++t) {
      std::memcpy(out.k_write_row(l, t), s.k_cache[l].data() + t * c, c * sizeof(float));
      std::memcpy(out.v_write_row(l, t), s.v_cache[l].data() + t * c, c * sizeof(float));
    }
  }
  out.position_ = s.position;
  out.history_ = s.history;
  // The target's rows were overwritten: snapshots previously taken from it
  // must fail typed instead of silently referencing the new contents.
  ++out.generation_;
}

void BatchedInference::import_slot(std::size_t slot, const GptInference& in) {
  Slot& s = slots_.at(slot);
  if (&in.model_ != &model_) {
    throw std::invalid_argument("import_slot: source built on a different model");
  }
  s.position = 0;
  s.history.clear();
  ensure_slot_kv(slot);
  const std::size_t c = model_.config().d_model;
  for (std::size_t l = 0; in.position_ > 0 && l < s.k_cache.size(); ++l) {
    for (std::size_t t = 0; t < in.position_; ++t) {
      std::memcpy(s.k_cache[l].data() + t * c, in.k_row(l, t), c * sizeof(float));
      std::memcpy(s.v_cache[l].data() + t * c, in.v_row(l, t), c * sizeof(float));
    }
  }
  s.position = in.position_;
  s.history = in.history_;
}

void BatchedInference::step(const std::size_t* slots, const Token* tokens,
                            std::size_t count) {
  if (count == 0) return;
  const auto& cfg = model_.config();
  const auto& layout = model_.layout();
  const auto& params = model_.params();
  const std::size_t c = cfg.d_model;
  const std::size_t f = cfg.d_ff;
  const std::size_t nh = cfg.n_heads;
  const std::size_t hs = cfg.head_dim();
  if (count > slots_.size()) {
    throw std::invalid_argument("BatchedInference: step count exceeds max_slots");
  }
  // Validate everything before touching any slot, so a throw leaves the
  // whole batch unmodified (one bad request cannot corrupt its neighbours).
  for (std::size_t i = 0; i < count; ++i) {
    if (slots[i] >= slots_.size()) {
      throw std::out_of_range("BatchedInference: slot id out of range");
    }
    for (std::size_t j = i + 1; j < count; ++j) {
      if (slots[i] == slots[j]) {
        throw std::invalid_argument("BatchedInference: duplicate slot in one step");
      }
    }
    if (slots_[slots[i]].position >= cfg.ctx_len) {
      throw std::length_error("BatchedInference: context window exhausted");
    }
    if (tokens[i] < 0 || static_cast<std::size_t>(tokens[i]) >= cfg.vocab_size) {
      throw std::out_of_range("BatchedInference: token id out of range");
    }
  }
  for (std::size_t i = 0; i < count; ++i) ensure_slot_kv(slots[i]);

  const float scale = 1.0f / std::sqrt(static_cast<float>(hs));
  const float* wte = params.param(layout.wte);
  const float* wpe = params.param(layout.wpe);

  // Shared linear over the staged xs_/ys_ pointer tables, routed through
  // the quantised side storage when the segment has it.
  auto batched_linear = [&](std::size_t w_seg, std::size_t n, std::size_t k,
                            std::size_t count_now) {
    if (const tensor::QuantMatrix* qm = model_.quant(w_seg)) {
      tensor::multi_gemv_quant(*qm, 1.0f, xs_.data(), count_now, ys_.data());
    } else {
      tensor::multi_gemv(n, k, 1.0f, xs_.data(), count_now, params.param(w_seg), k,
                         ys_.data());
    }
  };

  for (std::size_t i = 0; i < count; ++i) {
    Slot& s = slots_[slots[i]];
    const float* te = wte + static_cast<std::size_t>(tokens[i]) * c;
    const float* pe = wpe + s.position * c;
    for (std::size_t j = 0; j < c; ++j) s.x[j] = te[j] + pe[j];
  }

  float mean_scratch, rstd_scratch;
  for (std::size_t l = 0; l < cfg.n_layers; ++l) {
    const auto& blk = layout.blocks[l];
    for (std::size_t i = 0; i < count; ++i) {
      Slot& s = slots_[slots[i]];
      layernorm_forward(s.ln.data(), &mean_scratch, &rstd_scratch, s.x.data(),
                        params.param(blk.ln1_g), params.param(blk.ln1_b), 1, c);
      xs_[i] = s.ln.data();
      ys_[i] = s.qkv.data();
    }
    batched_linear(blk.qkv_w, 3 * c, c, count);
    for (std::size_t i = 0; i < count; ++i) {
      Slot& s = slots_[slots[i]];
      tensor::add_row_bias(s.qkv.data(), params.param(blk.qkv_b), 1, 3 * c);
      const std::size_t t = s.position;
      std::memcpy(s.k_cache[l].data() + t * c, s.qkv.data() + c, c * sizeof(float));
      std::memcpy(s.v_cache[l].data() + t * c, s.qkv.data() + 2 * c, c * sizeof(float));
      // Attention over this slot's own rows only: ragged positions are the
      // normal case, each slot's softmax spans its own t + 1 entries.
      for (std::size_t h = 0; h < nh; ++h) {
        const float* q = s.qkv.data() + h * hs;
        for (std::size_t t2 = 0; t2 <= t; ++t2) {
          s.scores[t2] = tensor::dot(q, s.k_cache[l].data() + t2 * c + h * hs, hs) * scale;
        }
        tensor::softmax_row(s.scores.data(), s.scores.data(), t + 1);
        float* out = s.atty.data() + h * hs;
        std::fill(out, out + hs, 0.0f);
        for (std::size_t t2 = 0; t2 <= t; ++t2) {
          tensor::axpy(s.scores[t2], s.v_cache[l].data() + t2 * c + h * hs, out, hs);
        }
      }
      xs_[i] = s.atty.data();
      ys_[i] = s.proj.data();
    }
    batched_linear(blk.attn_proj_w, c, c, count);
    for (std::size_t i = 0; i < count; ++i) {
      Slot& s = slots_[slots[i]];
      tensor::add_row_bias(s.proj.data(), params.param(blk.attn_proj_b), 1, c);
      tensor::add_inplace(s.x.data(), s.proj.data(), c);
      layernorm_forward(s.ln.data(), &mean_scratch, &rstd_scratch, s.x.data(),
                        params.param(blk.ln2_g), params.param(blk.ln2_b), 1, c);
      xs_[i] = s.ln.data();
      ys_[i] = s.fch.data();
    }
    batched_linear(blk.fc_w, f, c, count);
    for (std::size_t i = 0; i < count; ++i) {
      Slot& s = slots_[slots[i]];
      tensor::add_row_bias(s.fch.data(), params.param(blk.fc_b), 1, f);
      tensor::gelu_apply(s.fch.data(), s.fch.data(), f);
      xs_[i] = s.fch.data();
      ys_[i] = s.proj.data();
    }
    batched_linear(blk.fc_proj_w, c, f, count);
    for (std::size_t i = 0; i < count; ++i) {
      Slot& s = slots_[slots[i]];
      tensor::add_row_bias(s.proj.data(), params.param(blk.fc_proj_b), 1, c);
      tensor::add_inplace(s.x.data(), s.proj.data(), c);
    }
  }

  for (std::size_t i = 0; i < count; ++i) {
    Slot& s = slots_[slots[i]];
    layernorm_forward(s.ln.data(), &mean_scratch, &rstd_scratch, s.x.data(),
                      params.param(layout.lnf_g), params.param(layout.lnf_b), 1, c);
    xs_[i] = s.ln.data();
    ys_[i] = s.logits.data();
  }
  batched_linear(layout.wte, cfg.vocab_size, c, count);

  for (std::size_t i = 0; i < count; ++i) {
    Slot& s = slots_[slots[i]];
    ++s.position;
    s.history.push_back(tokens[i]);
  }
}

}  // namespace astromlab::nn
