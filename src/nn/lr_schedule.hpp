#pragma once
// Learning-rate schedules.
//
// The paper uses linear warmup (warmup ratio 0.03) followed by cosine decay
// (Loshchilov & Hutter 2016) for both CPT and SFT. `CosineSchedule`
// reproduces exactly that shape; `ConstantSchedule` exists for ablations.

#include <cstddef>

namespace astromlab::nn {

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  /// Learning rate for 0-based step `step` out of the configured total.
  virtual float lr(std::size_t step) const = 0;
};

class ConstantSchedule final : public LrSchedule {
 public:
  explicit ConstantSchedule(float base_lr) : base_lr_(base_lr) {}
  float lr(std::size_t) const override { return base_lr_; }

 private:
  float base_lr_;
};

/// Linear warmup over `warmup_ratio * total_steps` steps, then cosine decay
/// from base_lr to min_lr_ratio * base_lr at the final step.
class CosineSchedule final : public LrSchedule {
 public:
  CosineSchedule(float base_lr, std::size_t total_steps, double warmup_ratio = 0.03,
                 double min_lr_ratio = 0.1);

  float lr(std::size_t step) const override;

  std::size_t warmup_steps() const { return warmup_steps_; }
  std::size_t total_steps() const { return total_steps_; }

 private:
  float base_lr_;
  std::size_t total_steps_;
  std::size_t warmup_steps_;
  double min_lr_ratio_;
};

}  // namespace astromlab::nn
