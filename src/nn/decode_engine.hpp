#pragma once
// Continuous-batching decode engine.
//
// A single service thread owns a `BatchedInference` and advances every
// in-flight sequence by one token per engine step, so B concurrent
// requests share one `multi_gemv` per linear layer instead of running B
// solo gemv decodes. Batching is *continuous*: new requests are admitted
// into free slots between steps, mid-flight of whatever else is decoding —
// a finishing MCQ prompt frees its slot for the next question while long
// generations keep streaming. Ragged compositions (different prompt
// lengths, different decode depths) are the normal case.
//
// Bit-identity: per request, the engine replays exactly the serial
// protocol. Prompt tokens are fed one per step with the cancel token
// polled before each feed (`GptInference::prompt`'s loop); after the final
// prompt token the consumer's `on_logits` callback runs one iteration of
// its own decode loop — cancel/watchdog checks, sampling, stop conditions
// — against logits that `BatchedInference` guarantees are bitwise equal to
// the serial path's, and returns the next token to feed (or
// `kStopDecoding`). Because the callback owns every decode-phase decision,
// cancellation and deadline semantics are token-for-token identical to the
// serial loops, at slot granularity.
//
// Fault isolation: slot preparation (prefix fork, KV budget charge) runs
// per request; a failure (e.g. `util::ResourceExhaustedError` from the
// memory budget) is rethrown from that request's `run()` only, where the
// caller's degradation ladder handles it — the rest of the batch keeps
// decoding. `release_idle_kv` frees the KV of currently-free slots, the
// ladder's slot-granular relief hook.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "nn/gpt.hpp"
#include "util/cancel.hpp"

namespace astromlab::nn {

class DecodeEngine {
 public:
  /// Returned by `Request::on_logits` to finish the sequence.
  static constexpr Token kStopDecoding = -1;

  struct Request {
    /// Full prompt token sequence. Must be non-empty; after `prepare`
    /// returns `p`, the engine feeds prompt[p..].
    std::vector<Token> prompt;
    /// Slot preparation, run on the engine thread at admission: fork a
    /// prefix snapshot into the slot (or reset it) and return how many
    /// prompt tokens the slot already encodes (< prompt.size()). Receives
    /// this request's own prompt. Null = plain reset, feed everything.
    /// Exceptions fail this request only.
    std::function<std::size_t(BatchedInference&, std::size_t slot,
                              const std::vector<Token>& prompt)>
        prepare;
    /// Polled before each prompt-token feed, exactly like the serial
    /// `GptInference::prompt` loop. Decode-phase checks belong to
    /// `on_logits` (matching the serial generate loops). May be null.
    const util::CancelToken* cancel = nullptr;
    /// One iteration of the consumer's decode loop: sees the slot's fresh
    /// logits (first after the final prompt token, then after every fed
    /// decode token) and the slot's position; returns the next token to
    /// feed, or kStopDecoding. Runs on the engine thread — the submitting
    /// thread is blocked in run() for the duration, so closing over its
    /// state needs no locks. Required.
    std::function<Token(const std::vector<float>& logits, std::size_t position)> on_logits;
    /// Optional: runs on the engine thread once the sequence finishes
    /// (stop or cancel), before the slot is recycled — e.g. export the
    /// slot's KV back into a session inference.
    std::function<void(BatchedInference&, std::size_t slot)> on_complete;
  };

  struct Completion {
    /// True when `cancel` fired during the prompt feed: the feed stopped
    /// early and `on_logits` was never invoked (its logits would be
    /// stale), matching the serial cancelled-mid-prompt contract.
    bool cancelled = false;
  };

  DecodeEngine(const GptModel& model, std::size_t max_slots);
  ~DecodeEngine();

  DecodeEngine(const DecodeEngine&) = delete;
  DecodeEngine& operator=(const DecodeEngine&) = delete;

  /// Submits a request and blocks until its sequence finishes. Exceptions
  /// raised by slot preparation or by the request's own callbacks are
  /// rethrown here, in the submitting thread.
  Completion run(Request request);

  std::size_t max_slots() const { return max_slots_; }

  /// The model every slot decodes against (immutable; safe concurrently).
  const GptModel& model() const { return bi_.model(); }

  /// Degradation hook: frees the KV caches of every currently-idle slot,
  /// returning the bytes handed back to the memory budget. Active slots
  /// are untouched. Thread-safe; blocks at an engine-step boundary.
  std::size_t release_idle_kv();

 private:
  struct Job {
    Request req;
    std::size_t slot = 0;
    std::size_t cursor = 0;   ///< next prompt index to feed
    bool decoding = false;    ///< prompt fully fed; feeding `pending`
    Token pending = 0;        ///< next decode token (valid when decoding)
    bool cancelled = false;
    std::exception_ptr error;
    bool done = false;        ///< guarded by mutex_
  };

  void engine_loop();

  const std::size_t max_slots_;

  // Guards bi_ and free_slots_: the engine holds it across each step
  // (admission, forward pass, callbacks); release_idle_kv serialises
  // against that.
  std::mutex bi_mutex_;
  BatchedInference bi_;
  std::vector<std::size_t> free_slots_;

  // Guards queue_, stopping_, and Job::done.
  std::mutex mutex_;
  std::condition_variable cv_;       ///< wakes the engine (new work / stop)
  std::condition_variable done_cv_;  ///< wakes submitters (job finished)
  std::deque<std::shared_ptr<Job>> queue_;
  bool stopping_ = false;

  std::thread thread_;
};

}  // namespace astromlab::nn
