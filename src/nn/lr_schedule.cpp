#include "nn/lr_schedule.hpp"

#include <algorithm>
#include <cmath>

namespace astromlab::nn {

CosineSchedule::CosineSchedule(float base_lr, std::size_t total_steps, double warmup_ratio,
                               double min_lr_ratio)
    : base_lr_(base_lr),
      total_steps_(std::max<std::size_t>(total_steps, 1)),
      warmup_steps_(static_cast<std::size_t>(warmup_ratio * static_cast<double>(total_steps))),
      min_lr_ratio_(min_lr_ratio) {}

float CosineSchedule::lr(std::size_t step) const {
  if (warmup_steps_ > 0 && step < warmup_steps_) {
    // Linear ramp; step+1 so the first step is non-zero.
    return base_lr_ * static_cast<float>(step + 1) / static_cast<float>(warmup_steps_);
  }
  const std::size_t decay_total = total_steps_ > warmup_steps_
                                      ? total_steps_ - warmup_steps_
                                      : 1;
  const std::size_t decay_step = std::min(step - warmup_steps_, decay_total);
  const double progress = static_cast<double>(decay_step) / static_cast<double>(decay_total);
  const double cosine = 0.5 * (1.0 + std::cos(progress * 3.14159265358979323846));
  const double floor = min_lr_ratio_;
  return base_lr_ * static_cast<float>(floor + (1.0 - floor) * cosine);
}

}  // namespace astromlab::nn
