#pragma once
// Model checkpoint serialisation.
//
// Checkpoints store the architecture config plus all parameters, either as
// raw fp32 or as bf16 (the paper trains in bf16; storing checkpoints in
// bf16 halves cache size and models that quantisation). Loading a bf16
// checkpoint widens back to fp32.

#include <cstdint>
#include <filesystem>

#include "nn/gpt.hpp"

namespace astromlab::nn {

enum class CheckpointPrecision : std::uint8_t { kF32 = 0, kBf16 = 1 };

/// Writes config + parameters. Directory is created if needed.
void save_checkpoint(const GptModel& model, const std::filesystem::path& path,
                     CheckpointPrecision precision = CheckpointPrecision::kBf16);

/// Reads a checkpoint, reconstructing the model (architecture comes from
/// the file). Throws util::IoError on malformed input.
GptModel load_checkpoint(const std::filesystem::path& path);

/// Reads only the stored config (cheap inspection).
GptConfig peek_checkpoint_config(const std::filesystem::path& path);

}  // namespace astromlab::nn
