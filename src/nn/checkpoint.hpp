#pragma once
// Model checkpoint serialisation.
//
// Checkpoints store the architecture config plus all parameters, either as
// raw fp32 or as bf16 (the paper trains in bf16; storing checkpoints in
// bf16 halves cache size and models that quantisation). Loading a bf16
// checkpoint widens back to fp32.
//
// Format v2 ("ACK2"): written atomically (tmp + rename) with a trailing
// CRC-32 footer, so a crash mid-save can never leave a half-written file
// that parses. v1 ("ACK1") files — no footer — are still loadable.

#include <cstdint>
#include <filesystem>

#include "nn/gpt.hpp"

namespace astromlab::nn {

enum class CheckpointPrecision : std::uint8_t { kF32 = 0, kBf16 = 1 };

/// Writes config + parameters (atomic, CRC-checked). Directory is created
/// if needed; on failure any previous checkpoint at `path` is untouched.
void save_checkpoint(const GptModel& model, const std::filesystem::path& path,
                     CheckpointPrecision precision = CheckpointPrecision::kBf16);

/// Reads a checkpoint, reconstructing the model (architecture comes from
/// the file). Throws util::IoError on malformed input and
/// util::CorruptFileError on integrity failures (bad CRC, torn v2 file).
GptModel load_checkpoint(const std::filesystem::path& path);

/// Loads checkpoint parameters into an existing model whose config must
/// match the stored one exactly (bit-identical training resume).
void load_checkpoint_params(GptModel& model, const std::filesystem::path& path);

/// Reads only the stored config (cheap inspection).
GptConfig peek_checkpoint_config(const std::filesystem::path& path);

}  // namespace astromlab::nn
