#include "nn/kv_arena.hpp"

#include <stdexcept>

namespace astromlab::nn {

KvArena::KvArena(std::size_t block_tokens, std::size_t d_model)
    : block_tokens_(block_tokens), d_model_(d_model) {
  if (block_tokens == 0 || d_model == 0) {
    throw std::invalid_argument("KvArena: block_tokens and d_model must be >= 1");
  }
}

KvArena::BlockId KvArena::take_free_id_locked() {
  if (!free_ids_.empty()) {
    const BlockId id = free_ids_.back();
    free_ids_.pop_back();
    return id;
  }
  blocks_.emplace_back();
  return static_cast<BlockId>(blocks_.size() - 1);
}

KvArena::WriteRef KvArena::alloc_ref() {
  // Charge and zero the storage before taking any id, so a budget denial
  // unwinds with the arena untouched.
  Storage data;
  data.assign(block_floats(), 0.0f);
  std::lock_guard<std::mutex> lock(mutex_);
  const BlockId id = take_free_id_locked();
  Block& block = blocks_[id];
  block.data = std::move(data);
  block.refs = 1;
  ++live_blocks_;
  return {id, block.data.data()};
}

KvArena::WriteRef KvArena::write_ref(BlockId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  Block& block = blocks_.at(id);
  if (block.refs == 0) {
    throw std::logic_error("KvArena::write_ref: block is not live");
  }
  if (block.refs == 1) {
    return {id, block.data.data()};
  }
  // Copy-on-write: this holder moves onto a private copy; the original
  // keeps serving its other holders. The copy construction charges the
  // budget and may throw — before any state changed.
  Storage copy(block.data);
  const BlockId copy_id = take_free_id_locked();
  // take_free_id_locked may grow the deque; re-resolve the source block
  // reference is unnecessary (deque growth preserves references), but the
  // copy must land in the fresh slot.
  Block& fresh = blocks_[copy_id];
  fresh.data = std::move(copy);
  fresh.refs = 1;
  blocks_[id].refs -= 1;
  ++live_blocks_;
  return {copy_id, fresh.data.data()};
}

void KvArena::add_ref(BlockId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  Block& block = blocks_.at(id);
  if (block.refs == 0) {
    throw std::logic_error("KvArena::add_ref: block is not live");
  }
  ++block.refs;
}

void KvArena::release(BlockId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  Block& block = blocks_.at(id);
  if (block.refs == 0) {
    throw std::logic_error("KvArena::release: block is not live");
  }
  if (--block.refs == 0) {
    // Free the storage now (the TrackedAllocator returns the bytes to the
    // KV budget domain); only the id is recycled.
    Storage().swap(block.data);
    free_ids_.push_back(id);
    --live_blocks_;
  }
}

std::size_t KvArena::ref_count(BlockId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return blocks_.at(id).refs;
}

const float* KvArena::data(BlockId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Block& block = blocks_.at(id);
  if (block.refs == 0) {
    throw std::logic_error("KvArena::data: block is not live");
  }
  return block.data.data();
}

std::size_t KvArena::live_blocks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return live_blocks_;
}

std::size_t KvArena::total_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return live_blocks_ * block_bytes();
}

}  // namespace astromlab::nn
