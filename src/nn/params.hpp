#pragma once
// Flat parameter storage with a named-segment registry.
//
// All model parameters live in one contiguous float buffer (gradients in a
// second, identically laid-out buffer). This gives the optimiser, the
// gradient-clipping pass and the checkpoint writer a single linear sweep
// instead of per-tensor bookkeeping — the same layout trick llm.c uses.

#include <cstddef>
#include <string>
#include <vector>

namespace astromlab::nn {

/// A named slice of the flat parameter buffer.
struct ParamSegment {
  std::string name;
  std::size_t offset = 0;
  std::size_t size = 0;
  /// Weight decay applies only to matrix weights, not biases/LayerNorm
  /// gains/embeddings (GPT-2 convention).
  bool decay = false;
};

class ParamTable {
 public:
  /// Registers a segment; call all registrations before `allocate`.
  /// Returns the segment index.
  std::size_t register_segment(std::string name, std::size_t size, bool decay);

  /// Allocates the parameter and gradient buffers (zero-initialised).
  void allocate();

  std::size_t total_size() const { return total_size_; }
  const std::vector<ParamSegment>& segments() const { return segments_; }

  float* params() { return params_.data(); }
  const float* params() const { return params_.data(); }
  float* grads() { return grads_.data(); }
  const float* grads() const { return grads_.data(); }

  float* param(std::size_t segment_index) { return params_.data() + segments_[segment_index].offset; }
  const float* param(std::size_t segment_index) const {
    return params_.data() + segments_[segment_index].offset;
  }
  float* grad(std::size_t segment_index) { return grads_.data() + segments_[segment_index].offset; }

  void zero_grads();

  /// Global L2 norm of the gradient buffer.
  double grad_norm() const;

  /// Scales all gradients (used by global-norm clipping).
  void scale_grads(float factor);

 private:
  std::vector<ParamSegment> segments_;
  std::vector<float> params_;
  std::vector<float> grads_;
  std::size_t total_size_ = 0;
  bool allocated_ = false;
};

}  // namespace astromlab::nn
