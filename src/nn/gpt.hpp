#pragma once
// Decoder-only transformer language model (GPT-2 family) with manual
// forward and backward passes.
//
// Architecture: token + learned positional embeddings, pre-LayerNorm blocks
// (LN → causal multi-head attention → residual, LN → GELU MLP → residual),
// final LayerNorm, LM head tied to the token embedding. Training uses full
// teacher-forced sequences; inference uses an incremental KV cache
// (`GptInference`). Targets equal to `kIgnoreTarget` are excluded from the
// loss — the SFT trainer uses this to train only on assistant spans.

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/config.hpp"
#include "nn/kv_arena.hpp"
#include "nn/params.hpp"
#include "tensor/quant.hpp"
#include "util/cancel.hpp"
#include "util/resource_budget.hpp"
#include "util/rng.hpp"

namespace astromlab::nn {

using Token = std::int32_t;
inline constexpr Token kIgnoreTarget = -1;

/// KV cache storage: every buffer of cached K/V rows is charged to the
/// memory budget's KV domain through its allocator, so charge and
/// allocation are one atomic step — a throw anywhere leaves nothing
/// charged, and a release cannot be forgotten or doubled.
using KvVector =
    std::vector<float, util::TrackedAllocator<float, util::MemoryDomain::kKvCache>>;

/// Activation workspace for one (batch, seq_len) forward/backward pass.
/// Reused across steps; reallocated only when B or T grows.
struct GptActivations {
  std::size_t batch = 0;
  std::size_t seq = 0;
  // Forward buffers.
  std::vector<float> encoded;        // (B,T,C) embeddings
  std::vector<float> residual;       // (L+1,B,T,C) residual stream inputs
  std::vector<float> ln1, ln1_mean, ln1_rstd;
  std::vector<float> qkv;            // (L,B,T,3C)
  std::vector<float> att_probs;      // (L,B,NH,T,T)
  std::vector<float> atty;           // (L,B,T,C)
  std::vector<float> attproj;        // (L,B,T,C)
  std::vector<float> ln2, ln2_mean, ln2_rstd;
  std::vector<float> fch;            // (L,B,T,F) pre-GELU
  std::vector<float> fch_gelu;       // (L,B,T,F)
  std::vector<float> fcproj;         // (L,B,T,C)
  std::vector<float> lnf, lnf_mean, lnf_rstd;
  std::vector<float> logits;         // (B,T,V)
  std::vector<float> probs;          // (B,T,V)
  // Backward buffers.
  std::vector<float> d_residual;     // (B,T,C) running residual gradient
  std::vector<float> d_ln;           // (B,T,C)
  std::vector<float> d_qkv;          // (B,T,3C)
  std::vector<float> d_atty;         // (B,T,C)
  std::vector<float> d_att;          // (B,NH,T,T)
  std::vector<float> d_fch;          // (B,T,F)
  std::vector<float> d_fch_gelu;     // (B,T,F)
  std::vector<float> d_logits;       // (B,T,V)
};

class GptModel {
 public:
  explicit GptModel(GptConfig config);

  const GptConfig& config() const { return config_; }
  ParamTable& params() { return params_; }
  const ParamTable& params() const { return params_; }
  std::size_t param_count() const { return params_.total_size(); }

  /// GPT-2 initialisation: N(0, 0.02) weights, residual projections scaled
  /// by 1/sqrt(2L), zero biases, unit LayerNorm gains.
  void init_weights(util::Rng& rng);

  /// Forward pass over `tokens` (B*T ids, row-major) computing logits; if
  /// `targets` is non-null also computes mean cross-entropy over targets
  /// != kIgnoreTarget and returns it (otherwise returns 0).
  float forward(GptActivations& acts, const Token* tokens, const Token* targets,
                std::size_t batch, std::size_t seq) const;

  /// Backward pass; `forward` with targets must have been called on the
  /// same activations. Accumulates into the ParamTable gradient buffer.
  void backward(GptActivations& acts, const Token* tokens, const Token* targets,
                std::size_t batch, std::size_t seq);

  /// Mean cross-entropy of `tokens` → shifted next-token targets
  /// (convenience for perplexity evaluation; no gradients).
  float evaluate_loss(GptActivations& acts, const std::vector<Token>& tokens,
                      std::size_t batch, std::size_t seq) const;

  // Named segment indices (public for checkpointing and tests).
  struct Layout {
    std::size_t wte, wpe;
    struct Block {
      std::size_t ln1_g, ln1_b;
      std::size_t qkv_w, qkv_b;
      std::size_t attn_proj_w, attn_proj_b;
      std::size_t ln2_g, ln2_b;
      std::size_t fc_w, fc_b;
      std::size_t fc_proj_w, fc_proj_b;
    };
    std::vector<Block> blocks;
    std::size_t lnf_g, lnf_b;
  };
  const Layout& layout() const { return layout_; }

  /// Converts the model's inference weights to `dtype`.
  ///
  /// - kBf16: every parameter is rounded in place to the nearest bf16
  ///   (round-to-nearest-even), and the five large matrices of each
  ///   inference linear (qkv, attn_proj, fc, fc_proj per block, plus the
  ///   tied wte LM head) additionally get bf16 side storage consumed by the
  ///   dequant-fused kernels. Because bf16→fp32 widening is exact, the
  ///   fused path is bitwise identical to fp32 inference over the rounded
  ///   masters — quantising a checkpoint cannot change an MCQ answer
  ///   relative to a bf16-roundtripped fp32 model.
  /// - kInt8: the same five matrices are quantised per-row (absmax scale)
  ///   from the untouched fp32 masters; everything else (biases,
  ///   layernorms, wpe) stays fp32.
  /// - kF32: drops any quantised storage and restores plain fp32 compute.
  ///
  /// Training forward/backward always use the fp32 masters and are
  /// unaffected (beyond the in-place bf16 rounding for kBf16).
  void quantize_weights(tensor::WeightDtype dtype);

  tensor::WeightDtype weight_dtype() const { return weight_dtype_; }

  /// Quantised side storage for a parameter segment, or nullptr when the
  /// segment runs fp32 (always nullptr in fp32 mode).
  const tensor::QuantMatrix* quant(std::size_t segment) const {
    if (segment >= quant_.size() || quant_[segment].empty()) return nullptr;
    return &quant_[segment];
  }

 private:
  void ensure_activation_capacity(GptActivations& acts, std::size_t batch,
                                  std::size_t seq) const;

  GptConfig config_;
  ParamTable params_;
  Layout layout_;
  tensor::WeightDtype weight_dtype_ = tensor::WeightDtype::kF32;
  std::vector<tensor::QuantMatrix> quant_;  ///< indexed by segment id
};

/// Thrown when forking from a KV snapshot whose source inference has been
/// reset (or whose cached rows no longer hash to the CRC captured at
/// snapshot time): using it would silently read stale K/V rows, so the
/// fork fails loudly instead.
class StaleSnapshotError : public std::runtime_error {
 public:
  explicit StaleSnapshotError(const std::string& what) : std::runtime_error(what) {}
};

class GptInference;

/// Immutable handle to the prefix currently encoded in a `GptInference`
/// KV cache. The snapshot is zero-copy — it references the source's
/// buffers; the per-layer K/V rows are copied only when another inference
/// forks from it (copy-on-fork), so one snapshot can be shared read-only
/// by many workers. The handle carries the token sequence it encodes, a
/// CRC-32 over the referenced rows, and the source's reset generation;
/// `GptInference::fork_from` revalidates both and throws
/// `StaleSnapshotError` rather than reusing a stale prefix.
class KvSnapshot {
 public:
  KvSnapshot() = default;

  bool valid() const { return source_ != nullptr; }
  /// Number of cached positions (== tokens().size()).
  std::size_t length() const { return tokens_.size(); }
  /// The exact token sequence whose K/V rows the snapshot holds.
  const std::vector<Token>& tokens() const { return tokens_; }
  std::uint32_t crc() const { return crc_; }

 private:
  friend class GptInference;
  friend class BatchedInference;
  const GptInference* source_ = nullptr;
  std::uint64_t generation_ = 0;  ///< source reset-generation at snapshot time
  std::vector<Token> tokens_;
  std::uint32_t crc_ = 0;
};

/// Longest common prefix length of two token sequences.
std::size_t common_token_prefix(const std::vector<Token>& a, const std::vector<Token>& b);

/// Incremental single-sequence inference with a KV cache. Feed tokens one
/// at a time; logits for the latest position are available after each step.
class GptInference {
 public:
  /// Contiguous KV mode: per-layer (ctx, C) buffers, full-context charge.
  explicit GptInference(const GptModel& model);

  /// Paged KV mode: rows live in fixed-size blocks of `arena`, allocated
  /// lazily as positions are written and shared copy-on-write across forks
  /// from the same arena — forking a snapshot bumps refcounts on the
  /// prefix blocks instead of copying rows, so N sessions sharing a prefix
  /// charge the budget for it once. A null arena degrades to contiguous
  /// mode. The arena's d_model must equal the model's.
  GptInference(const GptModel& model, std::shared_ptr<KvArena> arena);

  /// Releases any held arena block references. Copying is disabled: a
  /// member-wise copy would duplicate block ids without bumping refcounts
  /// and double-release on destruction. Move transfers the references.
  ~GptInference();
  GptInference(GptInference&&) = default;
  GptInference(const GptInference&) = delete;
  GptInference& operator=(const GptInference&) = delete;
  GptInference& operator=(GptInference&&) = delete;

  /// Resets the cache to an empty sequence and invalidates every snapshot
  /// previously taken from this inference (forking one afterwards throws
  /// `StaleSnapshotError`).
  void reset();

  /// Appends one token and returns the logits over the vocabulary for the
  /// next position. `position()` tokens must be < ctx_len.
  const std::vector<float>& step(Token token);

  /// Feeds a whole prompt; returns logits after the final token.
  const std::vector<float>& prompt(const std::vector<Token>& tokens);

  /// Cancellable prompt feed: polls `cancel` between KV-cache steps and
  /// stops early once it fires, so a deadline or straggler cancellation
  /// takes effect mid-prompt instead of after the full forward pass.
  /// Callers must check `cancel->cancelled()` before using the returned
  /// logits — on early exit they are stale (or empty at position 0).
  const std::vector<float>& prompt(const std::vector<Token>& tokens,
                                   const util::CancelToken* cancel);

  /// Pointer form of the cancellable prompt feed (`count` may be 0, in
  /// which case the current logits are returned unchanged).
  const std::vector<float>& prompt(const Token* tokens, std::size_t count,
                                   const util::CancelToken* cancel);

  /// Snapshots the currently-encoded prefix (all `position()` rows of the
  /// per-layer K/V caches) as a zero-copy, CRC-tagged handle. The handle
  /// stays usable while this inference outlives it and is not reset;
  /// stepping the source *further* is fine (earlier rows are immutable).
  KvSnapshot snapshot() const;

  /// Replaces this cache's contents with the first `prefix_len` rows of
  /// `snap` (copy-on-fork) and sets `position()` to `prefix_len`, so
  /// subsequent `step`s continue bit-identically to having fed the
  /// snapshot's tokens from scratch. Throws `StaleSnapshotError` when the
  /// snapshot's source was reset or its rows fail CRC revalidation, and
  /// `std::invalid_argument` on model mismatch or excessive `prefix_len`.
  void fork_from(const KvSnapshot& snap, std::size_t prefix_len);

  /// Forks the snapshot's full length.
  void fork_from(const KvSnapshot& snap);

  /// Tokens fed since the last reset (or installed by the last fork).
  const std::vector<Token>& history() const { return history_; }

  /// Reset-generation counter (bumped by `reset()`; snapshot staleness).
  std::uint64_t generation() const { return generation_; }

  /// Test seam: overwrites one cached K value so the CRC-revalidation
  /// failure path can be exercised without guessing private layouts.
  void corrupt_kv_for_testing(std::size_t layer, std::size_t index, float value);

  /// Degradation-ladder seam: frees the per-layer K/V buffers (returning
  /// the bytes handed back to the memory budget) and invalidates every
  /// snapshot taken from this inference, exactly like reset(). The object
  /// stays usable — the next step/fork/prompt reallocates lazily — so
  /// outstanding `KvSnapshot` handles fail with `StaleSnapshotError`
  /// instead of dangling. Returns 0 when the caches are already released.
  std::size_t release_kv();

  /// Bytes currently held by this inference's K/V storage (0 after
  /// release). Contiguous mode: the full per-layer reservation. Paged
  /// mode: held blocks × block size — a block shared with other holders is
  /// counted by each holder, so the sum over sessions can exceed the
  /// arena's actual footprint (use `KvArena::total_bytes` for that).
  std::size_t kv_bytes() const;

  /// True when KV rows live in a shared paged arena.
  bool paged() const { return arena_ != nullptr; }

  std::size_t position() const { return position_; }
  const GptModel& model() const { return model_; }

 private:
  friend class BatchedInference;

  /// (Re)allocates the K/V buffers after construction or release_kv(),
  /// charging the memory budget. No-op when they are already resident.
  /// Strong guarantee: a throw mid-allocation (budget denial on a later
  /// layer) leaves the caches exactly as they were — nothing charged,
  /// nothing resident.
  void ensure_kv();

  bool kv_resident() const;

  /// Read pointer to cached row `t` of layer `l` (valid only for written
  /// rows). Lock-free: paged mode reads the cached block pointer table.
  const float* k_row(std::size_t l, std::size_t t) const;
  const float* v_row(std::size_t l, std::size_t t) const;
  /// Write pointer for row `t` of layer `l`. Paged mode allocates the
  /// covering block on first touch and copies-on-write when it is shared.
  float* k_write_row(std::size_t l, std::size_t t);
  float* v_write_row(std::size_t l, std::size_t t);

  /// CRC-32 over the first `rows` cached rows: all K layers then all V
  /// layers, row-major — the same byte stream in both storage modes.
  std::uint32_t kv_crc(std::size_t rows) const;

  /// Paged fork fast path: drops held blocks, then shares the blocks
  /// covering `prefix_len` rows of `src` by refcount (same arena only).
  void adopt_blocks(const GptInference& src, std::size_t prefix_len);

  /// Releases every held arena block reference and clears the tables.
  void drop_held_blocks();

  const GptModel& model_;
  std::size_t position_ = 0;
  std::uint64_t generation_ = 0;  ///< incremented by reset()
  std::vector<Token> history_;    ///< tokens encoded into the cache
  // Contiguous mode: per layer cached keys/values, (ctx, C) each, charged
  // to the KV budget domain through the vector's allocator.
  std::vector<KvVector> k_cache_;
  std::vector<KvVector> v_cache_;
  // Paged mode: per layer, per block-index handles into arena_ plus the
  // cached data pointers the compute loops read without locking.
  std::shared_ptr<KvArena> arena_;
  std::vector<std::vector<KvArena::BlockId>> k_blocks_, v_blocks_;
  std::vector<std::vector<float*>> k_ptrs_, v_ptrs_;
  // Scratch.
  std::vector<float> x_, ln_, qkv_, atty_, proj_, fch_, scores_;
  std::vector<float> logits_;
};

/// Up to `max_slots` independent sequences sharing one forward pass per
/// decode step. Each slot is a full `GptInference` equivalent — its own
/// per-layer KV cache, position, history, and logits — but one `step()`
/// call advances many slots at once, turning the B per-layer gemvs of B
/// serial decodes into one `tensor::multi_gemv` per linear layer (the
/// weight matrix streams from cache once per step instead of once per
/// sequence).
///
/// Bit-identity contract: a slot's logits after any sequence of
/// feeds/forks are bitwise identical to a serial `GptInference` given the
/// same tokens, for every batch composition — `multi_gemv` reproduces the
/// serial m=1 gemv per output row exactly, and everything else
/// (layernorm, attention over the slot's own KV rows, bias/residual/GELU)
/// is computed per slot with the very same helpers `GptInference::step`
/// uses. Ragged batches are the normal case: slots advance independently,
/// each attending over its own `position(slot)` rows.
///
/// Not thread-safe: one thread drives all slots (the decode engine's
/// service thread). Slot KV caches are charged to the memory budget
/// lazily and individually, so one slot failing admission degrades that
/// slot only.
class BatchedInference {
 public:
  BatchedInference(const GptModel& model, std::size_t max_slots);

  std::size_t max_slots() const { return slots_.size(); }

  /// Feeds one token into each of `count` distinct slots and computes
  /// every fed slot's next-position logits in one shared pass. Validates
  /// all slots up front (token range, context space) and throws without
  /// mutating any slot on violation, mirroring `GptInference::step`.
  void step(const std::size_t* slots, const Token* tokens, std::size_t count);

  /// Logits for the slot's latest position (valid after a step that fed it).
  const std::vector<float>& logits(std::size_t slot) const;
  std::size_t position(std::size_t slot) const;
  const std::vector<Token>& history(std::size_t slot) const;

  /// Empties the slot (position 0, no history). KV stays resident.
  void reset_slot(std::size_t slot);

  /// Forks `snap`'s first `prefix_len` rows into the slot, exactly like
  /// `GptInference::fork_from` (same validation, same typed errors).
  void fork_slot(std::size_t slot, const KvSnapshot& snap, std::size_t prefix_len);

  /// Charges and allocates the slot's KV cache now (no-op when resident),
  /// so admission-time budget denials surface at a per-slot boundary
  /// instead of mid-step. Throws util::ResourceExhaustedError/bad_alloc.
  void ensure_slot_kv(std::size_t slot);

  /// Degradation hook: frees one slot's KV buffers back to the budget and
  /// empties the slot. Returns bytes freed (0 when already released).
  std::size_t release_slot_kv(std::size_t slot);

  /// Bytes currently held by the slot's KV cache.
  std::size_t slot_kv_bytes(std::size_t slot) const;

  /// Copies the slot's state (KV rows, position, history) into a serial
  /// inference on the same model, so `out.step()` continues bit-identically
  /// to having fed the slot's history into `out` from scratch. Invalidates
  /// snapshots previously taken from `out` (its rows are overwritten).
  void export_slot(std::size_t slot, GptInference& out) const;

  /// The inverse: copies a serial inference's state (KV rows, position,
  /// history) into the slot, so batched steps continue bit-identically to
  /// stepping `in` directly — how a serve session's conversation KV enters
  /// a batch. Charges the slot's KV lazily (may throw the budget's
  /// ResourceExhaustedError; the slot is left empty in that case).
  void import_slot(std::size_t slot, const GptInference& in);

  const GptModel& model() const { return model_; }

 private:
  struct Slot {
    std::size_t position = 0;
    std::vector<Token> history;
    // Per layer (ctx, C), charged to the KV budget domain through the
    // vector's allocator (empty when released).
    std::vector<KvVector> k_cache, v_cache;
    // Per-slot activation scratch, same shapes as GptInference's.
    std::vector<float> x, ln, qkv, atty, proj, fch, scores, logits;
  };

  const GptModel& model_;
  std::vector<Slot> slots_;
  // Pointer tables rebuilt per multi_gemv call (capacity max_slots).
  std::vector<const float*> xs_;
  std::vector<float*> ys_;
};

}  // namespace astromlab::nn
