#pragma once
// Batch sources for language-model training.
//
// Two regimes mirror the paper's two training phases:
//  * `StreamDataset` — continual pretraining: one long token stream,
//    random context windows, next-token targets everywhere.
//  * `MaskedExampleDataset` — supervised fine-tuning: discrete dialogue
//    examples where only assistant-span tokens contribute to the loss
//    (prompt tokens get kIgnoreTarget), padded/truncated to the context.

#include <cstddef>
#include <vector>

#include "nn/gpt.hpp"
#include "util/rng.hpp"

namespace astromlab::nn {

/// Abstract provider of (inputs, targets) training batches.
class BatchSource {
 public:
  virtual ~BatchSource() = default;

  /// Fills `inputs` and `targets` (both batch*seq) with the next batch.
  virtual void next_batch(std::vector<Token>& inputs, std::vector<Token>& targets,
                          std::size_t batch, std::size_t seq, util::Rng& rng) = 0;

  /// Total trainable tokens per pass over the data (used to derive the
  /// one-epoch step count the paper trains for).
  virtual std::size_t epoch_tokens() const = 0;
};

/// Random windows over a contiguous token stream (pretraining / CPT).
class StreamDataset final : public BatchSource {
 public:
  explicit StreamDataset(std::vector<Token> tokens);

  void next_batch(std::vector<Token>& inputs, std::vector<Token>& targets, std::size_t batch,
                  std::size_t seq, util::Rng& rng) override;

  std::size_t epoch_tokens() const override { return tokens_.size(); }
  std::size_t size() const { return tokens_.size(); }
  const std::vector<Token>& tokens() const { return tokens_; }

 private:
  std::vector<Token> tokens_;
};

/// One SFT example: full token sequence plus a parallel mask; positions
/// whose *target* token has mask false are excluded from the loss.
struct MaskedExample {
  std::vector<Token> tokens;
  std::vector<bool> loss_mask;  ///< same length as tokens
};

/// Samples whole examples, truncating or right-padding to the context
/// length with pad tokens (pad positions never contribute to the loss).
class MaskedExampleDataset final : public BatchSource {
 public:
  MaskedExampleDataset(std::vector<MaskedExample> examples, Token pad_token);

  void next_batch(std::vector<Token>& inputs, std::vector<Token>& targets, std::size_t batch,
                  std::size_t seq, util::Rng& rng) override;

  std::size_t epoch_tokens() const override { return epoch_tokens_; }
  std::size_t example_count() const { return examples_.size(); }

 private:
  std::vector<MaskedExample> examples_;
  Token pad_token_;
  std::size_t epoch_tokens_ = 0;
};

}  // namespace astromlab::nn
