#include "nn/decode_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/metrics.hpp"

namespace astromlab::nn {

DecodeEngine::DecodeEngine(const GptModel& model, std::size_t max_slots)
    : max_slots_(max_slots), bi_(model, max_slots) {
  free_slots_.reserve(max_slots);
  for (std::size_t i = max_slots; i-- > 0;) free_slots_.push_back(i);
  thread_ = std::thread([this] { engine_loop(); });
}

DecodeEngine::~DecodeEngine() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

DecodeEngine::Completion DecodeEngine::run(Request request) {
  if (request.prompt.empty()) {
    throw std::invalid_argument("DecodeEngine: empty prompt");
  }
  if (!request.on_logits) {
    throw std::invalid_argument("DecodeEngine: on_logits callback is required");
  }
  auto job = std::make_shared<Job>();
  job->req = std::move(request);
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (stopping_) throw std::runtime_error("DecodeEngine: shutting down");
    queue_.push_back(job);
  }
  cv_.notify_all();
  {
    std::unique_lock<std::mutex> lk(mutex_);
    done_cv_.wait(lk, [&] { return job->done; });
  }
  if (job->error) std::rethrow_exception(job->error);
  return Completion{job->cancelled};
}

std::size_t DecodeEngine::release_idle_kv() {
  std::lock_guard<std::mutex> bg(bi_mutex_);
  std::size_t freed = 0;
  for (std::size_t slot : free_slots_) freed += bi_.release_slot_kv(slot);
  return freed;
}

void DecodeEngine::engine_loop() {
  struct EngineMetrics {
    util::metrics::Counter& steps;
    util::metrics::Counter& tokens;
    util::metrics::Histogram& occupancy;
  };
  static EngineMetrics metrics{
      util::metrics::registry().counter("decode.steps"),
      util::metrics::registry().counter("decode.tokens"),
      util::metrics::registry().histogram("decode.batch_occupancy")};

  std::vector<std::shared_ptr<Job>> active;
  std::vector<std::shared_ptr<Job>> finished;
  std::vector<std::size_t> step_slots;
  std::vector<Token> step_tokens;
  std::vector<std::shared_ptr<Job>> step_jobs;
  const auto& cfg = bi_.model().config();

  for (;;) {
    std::vector<std::shared_ptr<Job>> admitted;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      if (active.empty()) {
        cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
        if (stopping_ && queue_.empty()) return;
      }
      // Continuous admission: fill every free slot from the queue before
      // the next step, so new requests join mid-flight batches.
      std::lock_guard<std::mutex> bg(bi_mutex_);
      while (!queue_.empty() && !free_slots_.empty()) {
        auto job = std::move(queue_.front());
        queue_.pop_front();
        job->slot = free_slots_.back();
        free_slots_.pop_back();
        admitted.push_back(std::move(job));
      }
    }

    finished.clear();
    {
      std::lock_guard<std::mutex> bg(bi_mutex_);
      // Finishes a job while the engine owns the batch state: runs the
      // consumer's completion hook and recycles the slot. The done flag is
      // published after this bi region (finished -> mutex_ below).
      auto retire = [&](const std::shared_ptr<Job>& job) {
        if (job->req.on_complete && !job->error) {
          try {
            job->req.on_complete(bi_, job->slot);
          } catch (...) {
            job->error = std::current_exception();
          }
        }
        free_slots_.push_back(job->slot);
        finished.push_back(job);
      };

      // Per-request slot preparation (prefix fork / reset + KV charge): a
      // throw here — typically the memory budget refusing this slot's KV —
      // fails this request alone; the rest of the batch keeps decoding.
      for (auto& job : admitted) {
        try {
          std::size_t fed = 0;
          if (job->req.prepare) {
            fed = job->req.prepare(bi_, job->slot, job->req.prompt);
          } else {
            bi_.reset_slot(job->slot);
          }
          if (fed >= job->req.prompt.size()) {
            throw std::logic_error("DecodeEngine: prepare consumed the whole prompt");
          }
          bi_.ensure_slot_kv(job->slot);
          job->cursor = fed;
          active.push_back(job);
        } catch (...) {
          job->error = std::current_exception();
          retire(job);
        }
      }

      // Gather one token per active slot. Prompt-phase jobs poll their
      // cancel token before the feed (the serial prompt-loop placement);
      // decode-phase jobs feed the token their callback returned. Feeds
      // that would throw in serial (`step` validation) fail their own job
      // here instead of poisoning the shared step.
      step_slots.clear();
      step_tokens.clear();
      step_jobs.clear();
      for (auto it = active.begin(); it != active.end();) {
        Job& job = **it;
        Token token;
        if (!job.decoding) {
          if (job.req.cancel != nullptr && job.req.cancel->cancelled()) {
            job.cancelled = true;
            retire(*it);
            it = active.erase(it);
            continue;
          }
          token = job.req.prompt[job.cursor];
        } else {
          token = job.pending;
        }
        if (token < 0 || static_cast<std::size_t>(token) >= cfg.vocab_size) {
          job.error = std::make_exception_ptr(
              std::out_of_range("BatchedInference: token id out of range"));
          retire(*it);
          it = active.erase(it);
          continue;
        }
        if (bi_.position(job.slot) >= cfg.ctx_len) {
          job.error = std::make_exception_ptr(
              std::length_error("BatchedInference: context window exhausted"));
          retire(*it);
          it = active.erase(it);
          continue;
        }
        step_slots.push_back(job.slot);
        step_tokens.push_back(token);
        step_jobs.push_back(*it);
        ++it;
      }

      if (!step_jobs.empty()) {
        bi_.step(step_slots.data(), step_tokens.data(), step_slots.size());
        metrics.steps.add();
        metrics.tokens.add(step_jobs.size());
        metrics.occupancy.record(static_cast<double>(step_jobs.size()));

        for (const auto& job : step_jobs) {
          if (!job->decoding) {
            ++job->cursor;
            if (job->cursor < job->req.prompt.size()) continue;  // still prompting
            job->decoding = true;
          }
          Token next = kStopDecoding;
          try {
            next = job->req.on_logits(bi_.logits(job->slot), bi_.position(job->slot));
          } catch (...) {
            job->error = std::current_exception();
          }
          if (job->error || next == kStopDecoding) {
            retire(job);
            active.erase(std::find(active.begin(), active.end(), job));
          } else {
            job->pending = next;
          }
        }
      }
    }

    if (!finished.empty()) {
      {
        std::lock_guard<std::mutex> lk(mutex_);
        for (const auto& job : finished) job->done = true;
      }
      done_cv_.notify_all();
    }
  }
}

}  // namespace astromlab::nn
