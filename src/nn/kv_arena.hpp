#pragma once
// Paged KV storage: fixed-size blocks of KV rows in a shared, refcounted
// arena with copy-on-write forks.
//
// The contiguous KV cache charges every session the full
// n_layers * 2 * ctx * d_model fp32 reservation up front, and
// `fork_from` memcpies the whole prefix per fork — so 64 sessions sharing
// one few-shot prefix pay for it 64 times. The arena instead hands out
// blocks of `block_tokens` rows: a fork bumps the refcount on the blocks
// covering the shared prefix (O(blocks) pointer work, zero row copies),
// and the first write into a shared block copies just that block
// (copy-on-write). Memory per forked session collapses from the full
// context reservation to the handful of blocks its unique tail touches.
//
// Budget integration: each block's storage is a vector with
// util::TrackedAllocator over the KV-cache domain, so every block
// allocation/free charges/releases util::ResourceBudget exactly — the
// evict→shrink→shed ladder operates on blocks with no separate
// bookkeeping to drift. A budget denial surfaces as
// util::ResourceExhaustedError from alloc_ref/write_ref with the arena
// unchanged (strong guarantee).
//
// Thread safety: all methods lock the arena mutex. Callers (GptInference)
// cache the data pointers of blocks they hold references on — the
// per-block heap buffer never moves while referenced, COW guarantees
// nobody else writes a block with refcount > 1, and a block is only freed
// at refcount 0 — so the compute loops read those cached pointers without
// taking the lock.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "util/resource_budget.hpp"

namespace astromlab::nn {

class KvArena {
 public:
  using BlockId = std::uint32_t;
  static constexpr BlockId kNoBlock = 0xFFFFFFFFu;

  /// A block handle paired with its stable data pointer (block_tokens rows
  /// of d_model floats), so the caller can cache the pointer without a
  /// second lock acquisition.
  struct WriteRef {
    BlockId id = kNoBlock;
    float* data = nullptr;
  };

  /// Blocks hold `block_tokens` rows of `d_model` floats each.
  KvArena(std::size_t block_tokens, std::size_t d_model);

  KvArena(const KvArena&) = delete;
  KvArena& operator=(const KvArena&) = delete;

  /// Allocates a zeroed block with refcount 1. Throws
  /// util::ResourceExhaustedError (or bad_alloc) with nothing charged.
  WriteRef alloc_ref();

  /// Copy-on-write: returns `id` itself when this caller is the sole
  /// holder (refcount 1); otherwise allocates a copy, moves this caller's
  /// reference onto it (the shared original keeps its other holders) and
  /// returns the copy. Throws with the arena unchanged on budget denial.
  WriteRef write_ref(BlockId id);

  /// Adds a reference to a live block (sharing a prefix on fork).
  void add_ref(BlockId id);

  /// Drops one reference; frees the block's storage (returning its bytes
  /// to the memory budget) when the count reaches zero.
  void release(BlockId id);

  std::size_t ref_count(BlockId id) const;

  /// Read pointer for a held block (prefer the pointer cached from
  /// alloc_ref/write_ref; this exists for tests).
  const float* data(BlockId id) const;

  std::size_t block_tokens() const { return block_tokens_; }
  std::size_t d_model() const { return d_model_; }
  std::size_t block_floats() const { return block_tokens_ * d_model_; }
  std::size_t block_bytes() const { return block_floats() * sizeof(float); }

  /// Blocks currently allocated (refcount > 0).
  std::size_t live_blocks() const;
  /// live_blocks() * block_bytes() — the arena's KV-domain footprint.
  std::size_t total_bytes() const;

 private:
  using Storage =
      std::vector<float, util::TrackedAllocator<float, util::MemoryDomain::kKvCache>>;

  struct Block {
    Storage data;
    std::uint32_t refs = 0;
  };

  BlockId take_free_id_locked();

  mutable std::mutex mutex_;
  const std::size_t block_tokens_;
  const std::size_t d_model_;
  // deque: stable Block references across growth, so a cached data pointer
  // obtained under the lock stays valid while the block is referenced.
  std::deque<Block> blocks_;
  std::vector<BlockId> free_ids_;
  std::size_t live_blocks_ = 0;
};

}  // namespace astromlab::nn
