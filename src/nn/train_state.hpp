#pragma once
// Durable training-loop state for crash-safe, bit-identical resume.
//
// `TrainerState` captures everything `Trainer::train` needs beyond the
// model parameters themselves: the step cursor, AdamW moment estimates,
// the data-order RNG stream, and the running loss accumulators. A model
// snapshot (fp32, exact) is written alongside it, so a run killed at any
// point — kill -9 included — restarts from the last snapshot and produces
// byte-identical final parameters and statistics.
//
// Format "ATS1": atomic write, CRC-32 footer (see util/io.hpp).

#include <cstdint>
#include <filesystem>
#include <vector>

#include "util/rng.hpp"

namespace astromlab::nn {

struct TrainerState {
  std::uint64_t next_step = 0;     ///< first optimisation step not yet run
  std::uint64_t total_steps = 0;   ///< planned steps of the original run
  std::uint64_t tokens_processed = 0;
  float first_loss = 0.0f;
  float final_loss = 0.0f;
  double loss_sum = 0.0;
  std::uint64_t optimizer_step_count = 0;
  std::uint32_t params_crc = 0;    ///< CRC-32 of the fp32 parameter bytes at
                                   ///< the snapshot; pairs the state with its
                                   ///< model file across a crash between the
                                   ///< two writes
  std::vector<float> m;            ///< AdamW first moments
  std::vector<float> v;            ///< AdamW second moments
  util::RngState rng;              ///< data-order RNG at the snapshot point
};

/// Atomically writes `state` with a CRC footer; a previous state file at
/// `path` survives any failure.
void save_trainer_state(const TrainerState& state, const std::filesystem::path& path);

/// Loads and validates a state file. Throws util::IoError on malformed
/// input and util::CorruptFileError on integrity failures.
TrainerState load_trainer_state(const std::filesystem::path& path);

}  // namespace astromlab::nn
