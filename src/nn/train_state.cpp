#include "nn/train_state.hpp"

#include "util/io.hpp"

namespace astromlab::nn {

namespace {
constexpr std::uint32_t kMagic = 0x41545331;  // "ATS1"
}

void save_trainer_state(const TrainerState& state, const std::filesystem::path& path) {
  util::BinaryWriter writer(path, util::WriteOptions{/*atomic=*/true, /*checksum=*/true});
  writer.write_u32(kMagic);
  writer.write_u64(state.next_step);
  writer.write_u64(state.total_steps);
  writer.write_u64(state.tokens_processed);
  writer.write_f32(state.first_loss);
  writer.write_f32(state.final_loss);
  writer.write_f64(state.loss_sum);
  writer.write_u64(state.optimizer_step_count);
  writer.write_u32(state.params_crc);
  writer.write_f32_array(state.m.data(), state.m.size());
  writer.write_f32_array(state.v.data(), state.v.size());
  writer.write_u64_array(state.rng.words.data(), state.rng.words.size());
  writer.write_f64(state.rng.gaussian_spare);
  writer.write_u8(state.rng.has_gaussian_spare ? 1 : 0);
  writer.close();
}

TrainerState load_trainer_state(const std::filesystem::path& path) {
  util::BinaryReader reader(path, util::ReadOptions{/*require_checksum=*/true});
  if (reader.read_u32() != kMagic) {
    throw util::IoError("not a trainer-state file: " + path.string());
  }
  TrainerState state;
  state.next_step = reader.read_u64();
  state.total_steps = reader.read_u64();
  state.tokens_processed = reader.read_u64();
  state.first_loss = reader.read_f32();
  state.final_loss = reader.read_f32();
  state.loss_sum = reader.read_f64();
  state.optimizer_step_count = reader.read_u64();
  state.params_crc = reader.read_u32();
  // Moment arrays are length-prefixed; sizes are validated against the
  // model by AdamW::restore, so read whatever was stored.
  const std::uint64_t m_count = reader.read_u64();
  if (m_count * sizeof(float) > reader.remaining()) {
    throw util::IoError("corrupt moment-array length in " + path.string());
  }
  state.m.resize(m_count);
  for (auto& x : state.m) x = reader.read_f32();
  const std::uint64_t v_count = reader.read_u64();
  if (v_count * sizeof(float) > reader.remaining()) {
    throw util::IoError("corrupt moment-array length in " + path.string());
  }
  state.v.resize(v_count);
  for (auto& x : state.v) x = reader.read_f32();
  reader.read_u64_array(state.rng.words.data(), state.rng.words.size());
  state.rng.gaussian_spare = reader.read_f64();
  state.rng.has_gaussian_spare = reader.read_u8() != 0;
  return state;
}

}  // namespace astromlab::nn
