#include "nn/adamw.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace astromlab::nn {

AdamW::AdamW(ParamTable& params, AdamWConfig config)
    : params_(params), config_(config) {
  m_.assign(params.total_size(), 0.0f);
  v_.assign(params.total_size(), 0.0f);
  decay_mask_.assign(params.total_size(), false);
  for (const ParamSegment& segment : params.segments()) {
    if (!segment.decay) continue;
    for (std::size_t i = segment.offset; i < segment.offset + segment.size; ++i) {
      decay_mask_[i] = true;
    }
  }
}

double AdamW::step(float lr) {
  const double norm = params_.grad_norm();
  if (config_.clip_norm > 0.0f && norm > config_.clip_norm) {
    params_.scale_grads(static_cast<float>(config_.clip_norm / norm));
  }
  ++step_count_;
  const double bias1 = 1.0 - std::pow(config_.beta1, static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(config_.beta2, static_cast<double>(step_count_));
  float* p = params_.params();
  const float* g = params_.grads();
  const std::size_t n = params_.total_size();
  for (std::size_t i = 0; i < n; ++i) {
    m_[i] = config_.beta1 * m_[i] + (1.0f - config_.beta1) * g[i];
    v_[i] = config_.beta2 * v_[i] + (1.0f - config_.beta2) * g[i] * g[i];
    const float m_hat = m_[i] / static_cast<float>(bias1);
    const float v_hat = v_[i] / static_cast<float>(bias2);
    float update = m_hat / (std::sqrt(v_hat) + config_.eps);
    if (decay_mask_[i]) update += config_.weight_decay * p[i];
    p[i] -= lr * update;
  }
  return norm;
}

void AdamW::reset() {
  std::fill(m_.begin(), m_.end(), 0.0f);
  std::fill(v_.begin(), v_.end(), 0.0f);
  step_count_ = 0;
}

void AdamW::restore(const std::vector<float>& m, const std::vector<float>& v,
                    std::size_t step_count) {
  if (m.size() != m_.size() || v.size() != v_.size()) {
    throw std::invalid_argument("AdamW::restore: moment size mismatch (state has " +
                                std::to_string(m.size()) + ", model has " +
                                std::to_string(m_.size()) + " parameters)");
  }
  m_ = m;
  v_ = v;
  step_count_ = step_count;
}

}  // namespace astromlab::nn
