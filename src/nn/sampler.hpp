#pragma once
// Autoregressive text generation.
//
// The full-instruct benchmarking method generates complete answers (up to
// 512 tokens in the paper); this sampler drives GptInference with greedy or
// temperature/top-k decoding and configurable stop tokens. Temperature 0
// means greedy argmax, matching the paper's deterministic evaluation
// setting for the token methods.

#include <cstddef>
#include <functional>
#include <vector>

#include "nn/gpt.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace astromlab::nn {

struct SampleConfig {
  float temperature = 0.0f;   ///< 0 = greedy
  std::size_t top_k = 0;      ///< 0 = full distribution
  std::size_t max_new_tokens = 128;
  std::vector<Token> stop_tokens;  ///< generation halts when one is emitted
  /// Wall-clock watchdog: generation stops (with `timed_out` set) once this
  /// many seconds have elapsed, so one runaway question cannot stall a
  /// multi-hour benchmark run. 0 disables.
  double max_wall_seconds = 0.0;
  /// Cooperative cancellation: polled before the prompt feed and before
  /// every generated token, so an external deadline or straggler monitor
  /// stops generation *in flight* (with `cancelled` set). Optional.
  const util::CancelToken* cancel = nullptr;
  /// Shared-prefix KV snapshot: when set, the sampler forks the longest
  /// common token prefix of `prompt_tokens` and the snapshot (capped at
  /// prompt length - 1, so the final logits are always freshly computed)
  /// instead of re-encoding it. Results are bit-identical with or without
  /// the snapshot; only the prefill work changes. Only safe when nothing
  /// can release the snapshot's source concurrently — use `prefix_fork`
  /// when the snapshot is shared with an evictable cache.
  const KvSnapshot* prefix_snapshot = nullptr;
  /// Guarded fork seam: takes precedence over `prefix_snapshot`. Called
  /// with the sampler's (already reset) inference and the prompt; returns
  /// the number of prefix positions it installed, which the sampler then
  /// skips when feeding the prompt. The owner serialises the fork against
  /// concurrent eviction of the shared snapshot (eval::PrefixCache::fork
  /// holds its reader lock for exactly the copy-on-fork window).
  std::function<std::size_t(GptInference&, const std::vector<Token>&)> prefix_fork;
  /// Batched counterpart of `prefix_fork`, used only by
  /// `generate_with_engine`: forks the shared prefix into the engine slot
  /// at admission (eval::PrefixCache provides a matching overload).
  std::function<std::size_t(BatchedInference&, std::size_t slot,
                            const std::vector<Token>&)>
      prefix_fork_batched;
};

struct SampleResult {
  std::vector<Token> tokens;   ///< generated tokens (stop token excluded)
  bool hit_stop = false;       ///< true if a stop token ended generation
  bool hit_context_limit = false;
  bool timed_out = false;      ///< the wall-clock watchdog fired
  bool cancelled = false;      ///< the cancel token fired mid-generation
  /// Prompt positions restored from `prefix_snapshot` instead of being
  /// re-encoded (0 when no snapshot was supplied or nothing matched).
  std::size_t reused_prefix_tokens = 0;
};

class Sampler {
 public:
  explicit Sampler(const GptModel& model) : inference_(model) {}

  /// Generates a continuation of `prompt_tokens`.
  SampleResult generate(const std::vector<Token>& prompt_tokens, const SampleConfig& config,
                        util::Rng& rng);

  /// Picks the next token from `logits` under the config (exposed for the
  /// token-method evaluator and tests).
  static Token pick(const std::vector<float>& logits, const SampleConfig& config,
                    util::Rng& rng);

  /// Degradation-ladder seam: frees the inner inference's K/V buffers
  /// (they reallocate lazily on the next generate). Returns bytes freed.
  std::size_t release_kv() { return inference_.release_kv(); }

 private:
  GptInference inference_;
};

class DecodeEngine;

/// Engine-backed variant of `Sampler::generate`: the identical decode loop
/// (same cancel/watchdog/stop-token/context-limit check order, the same
/// `Sampler::pick` calls against bitwise-identical logits) driven through
/// one slot of a shared continuous-batching `DecodeEngine` instead of a
/// private inference. For any batch composition the returned tokens and
/// flags match the serial `generate` for the same (prompt, config, rng).
/// Honours `config.prefix_fork_batched` (not `prefix_fork`/
/// `prefix_snapshot`, which are serial-inference seams).
SampleResult generate_with_engine(DecodeEngine& engine,
                                  const std::vector<Token>& prompt_tokens,
                                  const SampleConfig& config, util::Rng& rng);

}  // namespace astromlab::nn
