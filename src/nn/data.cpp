#include "nn/data.hpp"

#include <algorithm>
#include <stdexcept>

namespace astromlab::nn {

StreamDataset::StreamDataset(std::vector<Token> tokens) : tokens_(std::move(tokens)) {
  if (tokens_.size() < 2) {
    throw std::invalid_argument("StreamDataset: need at least 2 tokens");
  }
}

void StreamDataset::next_batch(std::vector<Token>& inputs, std::vector<Token>& targets,
                               std::size_t batch, std::size_t seq, util::Rng& rng) {
  inputs.resize(batch * seq);
  targets.resize(batch * seq);
  const std::size_t max_start = tokens_.size() > seq + 1 ? tokens_.size() - seq - 1 : 0;
  for (std::size_t b = 0; b < batch; ++b) {
    const std::size_t start = max_start > 0 ? static_cast<std::size_t>(rng.next_below(max_start + 1)) : 0;
    for (std::size_t t = 0; t < seq; ++t) {
      const std::size_t pos = std::min(start + t, tokens_.size() - 2);
      inputs[b * seq + t] = tokens_[pos];
      targets[b * seq + t] = tokens_[pos + 1];
    }
  }
}

MaskedExampleDataset::MaskedExampleDataset(std::vector<MaskedExample> examples, Token pad_token)
    : examples_(std::move(examples)), pad_token_(pad_token) {
  if (examples_.empty()) {
    throw std::invalid_argument("MaskedExampleDataset: no examples");
  }
  for (const MaskedExample& example : examples_) {
    if (example.tokens.size() != example.loss_mask.size()) {
      throw std::invalid_argument("MaskedExampleDataset: mask length mismatch");
    }
    epoch_tokens_ += example.tokens.size();
  }
}

void MaskedExampleDataset::next_batch(std::vector<Token>& inputs, std::vector<Token>& targets,
                                      std::size_t batch, std::size_t seq, util::Rng& rng) {
  inputs.resize(batch * seq);
  targets.resize(batch * seq);
  for (std::size_t b = 0; b < batch; ++b) {
    const MaskedExample& example =
        examples_[static_cast<std::size_t>(rng.next_below(examples_.size()))];
    Token* in_row = inputs.data() + b * seq;
    Token* tgt_row = targets.data() + b * seq;
    // Teacher forcing: input t predicts token t+1 of the example; the
    // target is masked out unless token t+1 is in an assistant span.
    for (std::size_t t = 0; t < seq; ++t) {
      if (t < example.tokens.size()) {
        in_row[t] = example.tokens[t];
      } else {
        in_row[t] = pad_token_;
      }
      if (t + 1 < example.tokens.size() && example.loss_mask[t + 1]) {
        tgt_row[t] = example.tokens[t + 1];
      } else {
        tgt_row[t] = kIgnoreTarget;
      }
    }
  }
}

}  // namespace astromlab::nn
