#include "nn/checkpoint.hpp"

#include <vector>

#include "tensor/bf16.hpp"
#include "util/io.hpp"

namespace astromlab::nn {

namespace {
constexpr std::uint32_t kMagicV1 = 0x41434B31;  // "ACK1": no CRC footer
constexpr std::uint32_t kMagicV2 = 0x41434B32;  // "ACK2": CRC footer required

void write_config(util::BinaryWriter& writer, const GptConfig& config) {
  writer.write_u64(config.vocab_size);
  writer.write_u64(config.ctx_len);
  writer.write_u64(config.d_model);
  writer.write_u64(config.n_heads);
  writer.write_u64(config.n_layers);
  writer.write_u64(config.d_ff);
}

GptConfig read_config(util::BinaryReader& reader) {
  GptConfig config;
  config.vocab_size = reader.read_u64();
  config.ctx_len = reader.read_u64();
  config.d_model = reader.read_u64();
  config.n_heads = reader.read_u64();
  config.n_layers = reader.read_u64();
  config.d_ff = reader.read_u64();
  config.validate();
  return config;
}

/// Checks the magic and, for v2 files, that the CRC footer was present and
/// verified (the reader validates the CRC itself in its constructor).
void check_header(util::BinaryReader& reader, const std::filesystem::path& path) {
  const std::uint32_t magic = reader.read_u32();
  if (magic != kMagicV1 && magic != kMagicV2) {
    throw util::IoError("not a checkpoint file: " + path.string());
  }
  if (magic == kMagicV2 && !reader.has_checksum()) {
    throw util::CorruptFileError("v2 checkpoint missing checksum footer (torn write?): " +
                                 path.string());
  }
}

/// Validates the stored precision byte against the enum range before use.
CheckpointPrecision read_precision(util::BinaryReader& reader,
                                   const std::filesystem::path& path) {
  const std::uint8_t raw = reader.read_u8();
  if (raw > static_cast<std::uint8_t>(CheckpointPrecision::kBf16)) {
    throw util::IoError("unknown checkpoint precision byte " + std::to_string(raw) +
                        " in " + path.string());
  }
  return static_cast<CheckpointPrecision>(raw);
}

void read_params(util::BinaryReader& reader, GptModel& model,
                 const std::filesystem::path& path) {
  const CheckpointPrecision precision = read_precision(reader, path);
  float* params = model.params().params();
  const std::size_t count = model.params().total_size();
  if (precision == CheckpointPrecision::kF32) {
    reader.read_f32_array(params, count);
  } else {
    std::vector<std::uint16_t> half(count);
    reader.read_u16_array(half.data(), count);
    for (std::size_t i = 0; i < count; ++i) params[i] = tensor::bf16_to_float(half[i]);
  }
}

}  // namespace

void save_checkpoint(const GptModel& model, const std::filesystem::path& path,
                     CheckpointPrecision precision) {
  util::BinaryWriter writer(path, util::WriteOptions{/*atomic=*/true, /*checksum=*/true});
  writer.write_u32(kMagicV2);
  write_config(writer, model.config());
  writer.write_u8(static_cast<std::uint8_t>(precision));
  const float* params = model.params().params();
  const std::size_t count = model.params().total_size();
  if (precision == CheckpointPrecision::kF32) {
    writer.write_f32_array(params, count);
  } else {
    // tensor::float_to_bf16 / bf16_to_float are the single canonical
    // conversion pair: saving then loading a bf16 checkpoint yields
    // exactly tensor::bf16_round(w) for every parameter — the same values
    // GptModel::quantize_weights(kBf16) installs — so a bf16-roundtripped
    // checkpoint and a bf16-quantised model score MCQ benchmarks
    // identically (verified by the quant test suite).
    std::vector<std::uint16_t> half(count);
    for (std::size_t i = 0; i < count; ++i) half[i] = tensor::float_to_bf16(params[i]);
    writer.write_u16_array(half.data(), count);
  }
  writer.close();
}

GptModel load_checkpoint(const std::filesystem::path& path) {
  util::BinaryReader reader(path);
  check_header(reader, path);
  GptModel model(read_config(reader));
  read_params(reader, model, path);
  return model;
}

void load_checkpoint_params(GptModel& model, const std::filesystem::path& path) {
  util::BinaryReader reader(path);
  check_header(reader, path);
  const GptConfig stored = read_config(reader);
  if (!(stored == model.config())) {
    throw util::IoError("checkpoint config mismatch for in-place load: " + path.string());
  }
  read_params(reader, model, path);
}

GptConfig peek_checkpoint_config(const std::filesystem::path& path) {
  util::BinaryReader reader(path);
  check_header(reader, path);
  return read_config(reader);
}

}  // namespace astromlab::nn
