#include "nn/checkpoint.hpp"

#include <vector>

#include "tensor/bf16.hpp"
#include "util/io.hpp"

namespace astromlab::nn {

namespace {
constexpr std::uint32_t kMagic = 0x41434B31;  // "ACK1"

void write_config(util::BinaryWriter& writer, const GptConfig& config) {
  writer.write_u64(config.vocab_size);
  writer.write_u64(config.ctx_len);
  writer.write_u64(config.d_model);
  writer.write_u64(config.n_heads);
  writer.write_u64(config.n_layers);
  writer.write_u64(config.d_ff);
}

GptConfig read_config(util::BinaryReader& reader) {
  GptConfig config;
  config.vocab_size = reader.read_u64();
  config.ctx_len = reader.read_u64();
  config.d_model = reader.read_u64();
  config.n_heads = reader.read_u64();
  config.n_layers = reader.read_u64();
  config.d_ff = reader.read_u64();
  config.validate();
  return config;
}
}  // namespace

void save_checkpoint(const GptModel& model, const std::filesystem::path& path,
                     CheckpointPrecision precision) {
  util::BinaryWriter writer(path);
  writer.write_u32(kMagic);
  write_config(writer, model.config());
  writer.write_u8(static_cast<std::uint8_t>(precision));
  const float* params = model.params().params();
  const std::size_t count = model.params().total_size();
  if (precision == CheckpointPrecision::kF32) {
    writer.write_f32_array(params, count);
  } else {
    std::vector<std::uint16_t> half(count);
    for (std::size_t i = 0; i < count; ++i) half[i] = tensor::float_to_bf16(params[i]);
    writer.write_u16_array(half.data(), count);
  }
  writer.close();
}

GptModel load_checkpoint(const std::filesystem::path& path) {
  util::BinaryReader reader(path);
  if (reader.read_u32() != kMagic) {
    throw util::IoError("not a checkpoint file: " + path.string());
  }
  GptModel model(read_config(reader));
  const auto precision = static_cast<CheckpointPrecision>(reader.read_u8());
  float* params = model.params().params();
  const std::size_t count = model.params().total_size();
  if (precision == CheckpointPrecision::kF32) {
    reader.read_f32_array(params, count);
  } else if (precision == CheckpointPrecision::kBf16) {
    std::vector<std::uint16_t> half(count);
    reader.read_u16_array(half.data(), count);
    for (std::size_t i = 0; i < count; ++i) params[i] = tensor::bf16_to_float(half[i]);
  } else {
    throw util::IoError("unknown checkpoint precision in " + path.string());
  }
  return model;
}

GptConfig peek_checkpoint_config(const std::filesystem::path& path) {
  util::BinaryReader reader(path);
  if (reader.read_u32() != kMagic) {
    throw util::IoError("not a checkpoint file: " + path.string());
  }
  return read_config(reader);
}

}  // namespace astromlab::nn
