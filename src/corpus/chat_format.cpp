#include "corpus/chat_format.hpp"

namespace astromlab::corpus {

namespace {

const char* role_marker(DialogueTurn::Role role) {
  switch (role) {
    case DialogueTurn::Role::kSystem: return tokenizer::SpecialTokens::kSystem;
    case DialogueTurn::Role::kUser: return tokenizer::SpecialTokens::kUser;
    case DialogueTurn::Role::kAssistant: return tokenizer::SpecialTokens::kAssistant;
  }
  return tokenizer::SpecialTokens::kUser;
}

}  // namespace

std::string render_dialogue(const Dialogue& dialogue) {
  std::string out;
  for (const DialogueTurn& turn : dialogue.turns) {
    out += role_marker(turn.role);
    out += turn.text;
    out += tokenizer::SpecialTokens::kEndTurn;
  }
  return out;
}

std::string render_generation_prompt(const std::vector<DialogueTurn>& turns) {
  std::string out;
  for (const DialogueTurn& turn : turns) {
    out += role_marker(turn.role);
    out += turn.text;
    out += tokenizer::SpecialTokens::kEndTurn;
  }
  out += tokenizer::SpecialTokens::kAssistant;
  return out;
}

std::string render_instruct_prompt(const McqItem& item) {
  std::string out =
      "You are an expert in general astrophysics. Answer this multiple-choice "
      "question.\n";
  out += "Question: " + item.question + "\n";
  for (std::size_t slot = 0; slot < 4; ++slot) {
    out += static_cast<char>('A' + slot);
    out += ": " + item.options[slot] + "\n";
  }
  out +=
      "Output format: {\"ANSWER\": \"X\", \"EXPLANATION\": \"...\"}\n"
      "Give only one answer, either A, B, C or D. Respond in valid JSON only.\n";
  return out;
}

std::string render_json_answer(char letter, const std::string& explanation) {
  std::string out = "{\"ANSWER\": \"";
  out += letter;
  out += "\", \"EXPLANATION\": \"" + explanation + "\"}";
  return out;
}

nn::MaskedExample dialogue_to_example(const Dialogue& dialogue,
                                      const tokenizer::BpeTokenizer& tok) {
  nn::MaskedExample example;
  example.tokens.push_back(tok.bos_id());
  example.loss_mask.push_back(false);
  for (const DialogueTurn& turn : dialogue.turns) {
    const bool train_on = turn.role == DialogueTurn::Role::kAssistant;
    const tokenizer::TokenId marker = tok.token_to_id(role_marker(turn.role)).value();
    example.tokens.push_back(marker);
    example.loss_mask.push_back(false);  // the opening marker is given
    for (tokenizer::TokenId id : tok.encode(turn.text)) {
      example.tokens.push_back(id);
      example.loss_mask.push_back(train_on);
    }
    example.tokens.push_back(tok.end_turn_id());
    example.loss_mask.push_back(train_on);  // model must learn to stop
  }
  return example;
}

}  // namespace astromlab::corpus
