#include "corpus/lexicon.hpp"

#include <unordered_set>

namespace astromlab::corpus {

namespace {

const std::vector<std::string> kCataloguePrefixes = {
    "NGC", "IC", "PSR", "HD", "GJ", "KIC", "UGC", "MRK", "APM", "VLX",
};

const std::vector<std::string> kGreekLetters = {
    "Alpha", "Beta", "Gamma", "Delta", "Epsilon", "Zeta", "Eta", "Theta",
    "Iota",  "Kappa", "Lambda", "Sigma", "Tau",    "Omega",
};

const std::vector<std::string> kConstellations = {
    "Draconis", "Persei",   "Cygni",    "Lyrae",   "Aquilae", "Orionis",
    "Tauri",    "Carinae",  "Velorum",  "Pavonis", "Fornacis", "Hydrae",
};

}  // namespace

std::vector<std::string> Lexicon::object_names(std::size_t count, util::Rng& rng) {
  std::vector<std::string> names;
  names.reserve(count);
  std::unordered_set<std::string> seen;
  while (names.size() < count) {
    std::string name;
    if (rng.next_bernoulli(0.6)) {
      name = pick(kCataloguePrefixes, rng) + " " +
             std::to_string(1000 + rng.next_below(9000));
    } else {
      name = pick(kGreekLetters, rng) + " " + pick(kConstellations, rng);
    }
    if (seen.insert(name).second) names.push_back(std::move(name));
  }
  return names;
}

const std::vector<std::string>& Lexicon::object_kinds() {
  static const std::vector<std::string> kinds = {
      "spiral galaxy",        "planetary nebula",     "millisecond pulsar",
      "open star cluster",    "globular cluster",     "brown dwarf",
      "protoplanetary disk",  "supernova remnant",    "active galactic nucleus",
      "hot Jupiter system",   "white dwarf binary",   "starburst galaxy",
  };
  return kinds;
}

const std::vector<std::string>& Lexicon::astro_filler() {
  static const std::vector<std::string> filler = {
      "These observations remain consistent with current stellar evolution models.",
      "Follow-up spectroscopy will be required to confirm this interpretation.",
      "The measurement uncertainties are dominated by calibration systematics.",
      "Deep imaging campaigns over several epochs enabled this analysis.",
      "Comparable behaviour has been reported for other objects of this class.",
      "The inferred parameters agree with population synthesis predictions.",
      "Archival data from earlier surveys corroborate the present findings.",
      "Future instruments should resolve the remaining model degeneracies.",
      "This %K has been the subject of extensive multi-wavelength campaigns.",
      "The signal-to-noise ratio of the stacked spectra exceeds previous work.",
      "Radiative transfer modelling supports the adopted geometry.",
      "The sample selection function was validated against mock catalogues.",
      "We adopt standard cosmological parameters throughout this analysis.",
      "Dust extinction corrections follow the conventional reddening law.",
      "The kinematic measurements were cross-checked with independent pipelines.",
      "A full treatment of these systematics is deferred to a companion paper.",
  };
  return filler;
}

const std::vector<std::string>& Lexicon::latex_debris() {
  static const std::vector<std::string> debris = {
      "\\begin{figure} [h!] \\includegraphics width = 0.9 \\columnwidth",
      "\\cite {unknown_ref_1998} \\citep {placeholder2003}",
      "$ \\ rm km \\, s ^ { -1 } $ fig. ref. tab. ref.",
      "\\footnote { see appendix for details } \\label { sec : obs }",
      "table 3 continued overleaf . . . header repeated",
      "[ FIGURE OMITTED ] caption : see online version",
      "\\ emph { } \\ textbf { } stray brace } detected",
      "page 7 of 23 draft version compiled",
  };
  return debris;
}

const std::vector<std::string>& Lexicon::general_filler() {
  static const std::vector<std::string> filler = {
      "The committee will reconvene after the seasonal recess concludes.",
      "Local markets reported steady demand throughout the quarter.",
      "The recipe calls for gentle simmering over a low flame.",
      "Travellers are advised to confirm schedules before departure.",
      "The museum's new wing opens to the public next spring.",
      "Routine maintenance keeps the machinery in good working order.",
      "The novel's final chapter resolves the long-standing feud.",
      "Volunteers gathered early to prepare the community garden.",
      "The orchestra rehearsed the overture twice before the premiere.",
      "Exports of grain rose modestly compared with the previous year.",
      "The bridge inspection found no structural concerns this cycle.",
      "Students presented their projects at the annual science fair.",
  };
  return filler;
}

std::vector<std::string> Lexicon::general_entity_names(std::size_t count, util::Rng& rng) {
  static const std::vector<std::string> stems = {
      "Vessby", "Norland", "Kareth", "Ostrava", "Melinde", "Tarvos", "Quillan",
      "Brenholm", "Sorvia", "Luthane", "Pellmor", "Ardenne", "Caldren", "Wrenfell",
  };
  static const std::vector<std::string> suffixes = {
      "ia", "burg", "stad", "mark", "haven", "field", "ton", "dale",
  };
  std::vector<std::string> names;
  names.reserve(count);
  std::unordered_set<std::string> seen;
  while (names.size() < count) {
    std::string name = pick(stems, rng);
    if (rng.next_bernoulli(0.5)) name += pick(suffixes, rng);
    if (seen.insert(name).second) names.push_back(std::move(name));
    if (seen.size() >= stems.size() * (suffixes.size() + 1)) break;  // pool exhausted
  }
  // Fall back to numbered names if the combinatorial pool ran out.
  std::size_t serial = 1;
  while (names.size() < count) {
    names.push_back("Region " + std::to_string(serial++));
  }
  return names;
}

const std::string& Lexicon::pick(const std::vector<std::string>& pool, util::Rng& rng) {
  return pool[static_cast<std::size_t>(rng.next_below(pool.size()))];
}

}  // namespace astromlab::corpus
