#pragma once
// Synthetic arXiv astro-ph paper generator.
//
// Models the corpus-construction pipeline of the paper (§III): each topic
// cluster yields papers with abstract / introduction / body / conclusion
// sections. Renderers produce the training-corpus variants the paper
// compares:
//
//   * Abstract  — abstracts only (AstroLLaMA-2-7B-Abstract recipe)
//   * AIC       — abstract + introduction + conclusion (the "-AIC" models)
//   * FullText  — all sections, optionally passed through an OCR/LaTeX
//                 noise channel (the Nougat-OCR pipeline analog)
//   * Summary   — an information-dense digest, the LLM-summarised full
//                 text (AstroLLaMA-3-8B-Summary recipe)
//
// The knob that drives the paper's data-quality findings is the ratio of
// fact-bearing sentences to filler in each variant: summaries are almost
// pure facts, abstracts are dense but cover few facts, full text covers
// everything but is mostly filler (and may carry markup debris).

#include <string>
#include <vector>

#include "corpus/knowledge.hpp"
#include "util/rng.hpp"

namespace astromlab::corpus {

struct SyntheticPaper {
  std::size_t topic = 0;
  std::string title;
  std::string abstract_text;
  std::string introduction;
  std::string body;
  std::string conclusion;
  /// Facts realised somewhere in this paper (indices into the KB fact list).
  std::vector<std::size_t> fact_indices;
};

struct PaperGenConfig {
  /// Papers to generate per topic cluster.
  std::size_t papers_per_topic = 3;
  /// Filler sentences inserted per fact statement in intro/body.
  double intro_filler_per_fact = 1.5;
  double body_filler_per_fact = 4.0;
  /// Probability that a filler sentence in the body is LaTeX/OCR debris
  /// (models the imperfect algorithmic cleaning described in §III).
  double debris_rate = 0.0;
  std::uint64_t seed = 7;
};

class PaperGenerator {
 public:
  PaperGenerator(const KnowledgeBase& kb, PaperGenConfig config);

  /// Generates the full synthetic literature (all topics).
  std::vector<SyntheticPaper> generate_all();

  /// Generates the papers of one topic cluster.
  std::vector<SyntheticPaper> generate_topic(std::size_t topic, util::Rng& rng);

  // Corpus renderers over a set of papers.
  static std::string render_abstract(const std::vector<SyntheticPaper>& papers);
  static std::string render_aic(const std::vector<SyntheticPaper>& papers);
  static std::string render_full_text(const std::vector<SyntheticPaper>& papers);

  /// Dense digest: restates every fact of every paper with minimal filler,
  /// in fresh phrasings (the LLM-summary analog).
  std::string render_summary(const std::vector<SyntheticPaper>& papers) const;

  /// Applies character-level OCR noise to text at rate `rate` per
  /// character, sparing digits and fact-value words poorly is avoided by
  /// only corrupting whitespace-adjacent letters (layout noise analog).
  static std::string ocr_noise(const std::string& text, double rate, util::Rng& rng);

 private:
  std::string fact_sentence(std::size_t fact_index, util::Rng& rng) const;

  const KnowledgeBase& kb_;
  PaperGenConfig config_;
};

}  // namespace astromlab::corpus
