#pragma once
// Multiple-choice question construction.
//
// Mirrors the benchmark design of Ting et al. 2024 / this paper (§IV):
// each synthetic "review article" (topic cluster) yields a fixed number of
// questions; each question has four options of comparable length drawn
// from the same value domain (so no option can be eliminated on surface
// features), and the correct letter position is randomised.
//
// Two disjoint pools are derived from the knowledge base:
//   * the benchmark set — held out for evaluation only;
//   * the practice pool — exam-formatted text that may appear in
//     pretraining corpora so base models learn the "Question/.../Answer:"
//     pattern itself (general LLMs have seen such text; ours must too).

#include <array>
#include <string>
#include <vector>

#include "corpus/knowledge.hpp"

namespace astromlab::corpus {

struct McqItem {
  std::string question;
  std::array<std::string, 4> options;
  std::size_t correct = 0;  ///< index 0..3 (letter A..D)
  Tier tier = Tier::kCanonical;
  std::size_t topic = 0;
  std::size_t fact_index = 0;  ///< index into KnowledgeBase::facts()

  char correct_letter() const { return static_cast<char>('A' + correct); }
};

struct McqSplit {
  std::vector<McqItem> benchmark;  ///< evaluation-only questions
  std::vector<McqItem> practice;   ///< may appear in training text
};

struct McqGenConfig {
  std::size_t questions_per_topic = 5;  ///< paper: 5 per review article
  std::uint64_t seed = 1234;
};

/// Builds benchmark + practice questions over disjoint fact sets.
McqSplit generate_mcqs(const KnowledgeBase& kb, const McqGenConfig& config);

/// Renders one question in the Appendix-C exam style. When
/// `include_answer` is true the block ends with "Answer: X\n" (training /
/// few-shot example); otherwise it ends with "Answer:" awaiting the next
/// token (the probe position of the token benchmarking method).
std::string render_exam_block(const McqItem& item, bool include_answer);

}  // namespace astromlab::corpus
