#include "corpus/mcq.hpp"

#include <algorithm>
#include <stdexcept>

namespace astromlab::corpus {

namespace {

McqItem make_item(const KnowledgeBase& kb, std::size_t fact_index, util::Rng& rng) {
  const Fact& fact = kb.facts()[fact_index];
  const Relation& relation = kb.relation_of(fact);
  const std::size_t n_options = relation.domain.options.size();
  if (n_options < 4) {
    throw std::logic_error("relation '" + relation.id + "' needs >= 4 domain options");
  }

  McqItem item;
  item.question = kb.question(fact);
  item.tier = fact.tier;
  item.topic = fact.topic;
  item.fact_index = fact_index;

  // Distractors: three distinct wrong values from the same domain.
  std::vector<std::size_t> wrong;
  for (std::size_t v = 0; v < n_options; ++v) {
    if (v != fact.value) wrong.push_back(v);
  }
  rng.shuffle(wrong);
  wrong.resize(3);

  // Random letter placement for the correct answer.
  item.correct = static_cast<std::size_t>(rng.next_below(4));
  std::size_t wrong_cursor = 0;
  for (std::size_t slot = 0; slot < 4; ++slot) {
    if (slot == item.correct) {
      item.options[slot] = relation.domain.options[fact.value];
    } else {
      item.options[slot] = relation.domain.options[wrong[wrong_cursor++]];
    }
  }
  return item;
}

}  // namespace

McqSplit generate_mcqs(const KnowledgeBase& kb, const McqGenConfig& config) {
  util::Rng rng(config.seed);
  McqSplit split;
  std::vector<bool> used(kb.facts().size(), false);

  for (std::size_t topic = 0; topic < kb.topic_count(); ++topic) {
    std::vector<std::size_t> topic_facts;
    for (std::size_t i = 0; i < kb.facts().size(); ++i) {
      if (kb.facts()[i].topic == topic) topic_facts.push_back(i);
    }
    rng.shuffle(topic_facts);
    const std::size_t take = std::min(config.questions_per_topic, topic_facts.size());
    for (std::size_t q = 0; q < take; ++q) {
      split.benchmark.push_back(make_item(kb, topic_facts[q], rng));
      used[topic_facts[q]] = true;
    }
  }
  // Practice pool from every fact the benchmark did not claim.
  for (std::size_t i = 0; i < kb.facts().size(); ++i) {
    if (!used[i]) split.practice.push_back(make_item(kb, i, rng));
  }
  return split;
}

std::string render_exam_block(const McqItem& item, bool include_answer) {
  std::string out = "Question: " + item.question + "\n";
  for (std::size_t slot = 0; slot < 4; ++slot) {
    out += static_cast<char>('A' + slot);
    out += ": " + item.options[slot] + "\n";
  }
  out += "Answer:";
  if (include_answer) {
    out += ' ';
    out += item.correct_letter();
    out += '\n';
  }
  return out;
}

}  // namespace astromlab::corpus
