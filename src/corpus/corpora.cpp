#include "corpus/corpora.hpp"

#include <algorithm>

#include "corpus/chat_format.hpp"
#include "corpus/lexicon.hpp"
#include "corpus/sft_dataset.hpp"
#include "util/string_utils.hpp"

namespace astromlab::corpus {

namespace {

std::string filler_paragraph(util::Rng& rng) {
  std::string out;
  const std::size_t sentences = 3 + static_cast<std::size_t>(rng.next_below(3));
  for (std::size_t s = 0; s < sentences; ++s) {
    const auto& pool = rng.next_bernoulli(0.5) ? Lexicon::general_filler()
                                               : Lexicon::astro_filler();
    std::string sentence = Lexicon::pick(pool, rng);
    sentence = util::replace_all(sentence, "%K",
                                 Lexicon::pick(Lexicon::object_kinds(), rng));
    out += sentence;
    out += ' ';
  }
  return out;
}

}  // namespace

std::string build_pretrain_corpus(const KnowledgeBase& kb,
                                  const std::vector<McqItem>& practice_pool,
                                  const PretrainSpec& spec) {
  util::Rng rng(spec.seed);
  std::vector<std::string> units;

  // Covered canonical astro facts, each stated `fact_repetitions` times.
  std::vector<std::size_t> canonical;
  for (std::size_t i = 0; i < kb.facts().size(); ++i) {
    if (kb.facts()[i].tier == Tier::kCanonical) canonical.push_back(i);
  }
  rng.shuffle(canonical);
  const std::size_t covered =
      static_cast<std::size_t>(spec.canonical_coverage * static_cast<double>(canonical.size()));
  for (std::size_t c = 0; c < covered; ++c) {
    const Fact& fact = kb.facts()[canonical[c]];
    for (std::size_t rep = 0; rep < spec.fact_repetitions; ++rep) {
      std::string unit = kb.statement(fact, rep);
      unit += ' ';
      unit += util::replace_all(Lexicon::pick(Lexicon::astro_filler(), rng), "%K",
                                kb.entity_of(fact).kind);
      units.push_back(std::move(unit));
    }
  }

  // Everyday knowledge (the "web text" share of pretraining).
  const GeneralKnowledge gk = GeneralKnowledge::generate(spec.general_fact_count, spec.seed);
  for (const auto& item : gk.items()) {
    for (std::size_t rep = 0; rep < spec.general_fact_repetitions; ++rep) {
      std::string unit = item.statement;
      unit += ' ';
      unit += Lexicon::pick(Lexicon::general_filler(), rng);
      units.push_back(std::move(unit));
    }
  }

  for (std::size_t p = 0; p < spec.filler_paragraphs; ++p) {
    units.push_back(filler_paragraph(rng));
  }

  // Exam-style practice blocks (solution sets), with the same header the
  // token benchmarking prompt uses, so base models have seen the pattern.
  if (!practice_pool.empty()) {
    for (std::size_t b = 0; b < spec.practice_exam_blocks; ++b) {
      std::string unit = std::string(kExamHeader) + "\n";
      const std::size_t per_block = 1 + static_cast<std::size_t>(rng.next_below(2));
      for (std::size_t q = 0; q < per_block; ++q) {
        const McqItem& item =
            practice_pool[static_cast<std::size_t>(rng.next_below(practice_pool.size()))];
        unit += render_exam_block(item, /*include_answer=*/true);
        unit += '\n';
      }
      units.push_back(std::move(unit));
    }
  }

  // Dialogue-register warmup (rendered with chat markers).
  if (spec.chat_warmup_dialogues > 0) {
    SftSpec chat_spec;
    chat_spec.total_dialogues = spec.chat_warmup_dialogues;
    chat_spec.astro_fraction = 0.0;
    chat_spec.general_mcq_share = 0.3;
    chat_spec.seed = spec.seed + 5150;
    for (const Dialogue& dialogue : build_sft_dialogues(kb, {}, chat_spec)) {
      units.push_back(render_dialogue(dialogue));
    }
  }

  rng.shuffle(units);
  std::string corpus;
  for (const std::string& unit : units) {
    corpus += unit;
    corpus += '\n';
  }
  return corpus;
}

const char* cpt_variant_name(CptVariant variant) {
  switch (variant) {
    case CptVariant::kAbstract: return "Abstract";
    case CptVariant::kAic: return "AIC";
    case CptVariant::kSummary: return "Summary";
    case CptVariant::kFullTextOcr: return "FullTextOCR";
  }
  return "?";
}

std::string build_cpt_corpus(const KnowledgeBase& kb, const CptSpec& spec) {
  std::string corpus;
  util::Rng noise_rng(spec.seed ^ 0x0C12ULL);
  for (std::size_t pass = 0; pass < std::max<std::size_t>(spec.passes, 1); ++pass) {
    PaperGenConfig pg;
    pg.papers_per_topic = spec.papers_per_topic;
    pg.debris_rate = spec.debris_rate;
    pg.seed = spec.seed + pass * 7919;  // fresh phrasings each pass
    PaperGenerator generator(kb, pg);
    const std::vector<SyntheticPaper> papers = generator.generate_all();
    switch (spec.variant) {
      case CptVariant::kAbstract:
        corpus += PaperGenerator::render_abstract(papers);
        break;
      case CptVariant::kAic:
        corpus += PaperGenerator::render_aic(papers);
        break;
      case CptVariant::kSummary:
        corpus += generator.render_summary(papers);
        break;
      case CptVariant::kFullTextOcr: {
        std::string text = PaperGenerator::render_full_text(papers);
        corpus += PaperGenerator::ocr_noise(text, spec.ocr_noise_rate, noise_rng);
        break;
      }
    }
  }
  return corpus;
}

std::string build_heldout_text(const KnowledgeBase& kb, std::uint64_t seed) {
  util::Rng rng(seed);
  std::string out;
  for (std::size_t p = 0; p < 40; ++p) {
    out += filler_paragraph(rng);
    const Fact& fact =
        kb.facts()[static_cast<std::size_t>(rng.next_below(kb.facts().size()))];
    out += kb.statement(fact, static_cast<std::size_t>(rng.next_below(3)));
    out += '\n';
  }
  return out;
}

std::string build_tokenizer_training_text(const KnowledgeBase& kb,
                                          const std::vector<McqItem>& practice_pool,
                                          std::uint64_t seed) {
  PretrainSpec spec;
  spec.canonical_coverage = 1.0;
  spec.fact_repetitions = 2;
  spec.filler_paragraphs = 80;
  spec.practice_exam_blocks = 40;
  spec.seed = seed;
  std::string text = build_pretrain_corpus(kb, practice_pool, spec);

  CptSpec cpt;
  cpt.variant = CptVariant::kAic;
  cpt.papers_per_topic = 1;
  cpt.seed = seed + 1;
  text += build_cpt_corpus(kb, cpt);

  // JSON answer register used by the full-instruct method.
  for (std::size_t i = 0; i < std::min<std::size_t>(practice_pool.size(), 30); ++i) {
    const McqItem& item = practice_pool[i];
    text += render_instruct_prompt(item);
    text += render_json_answer(item.correct_letter(),
                               "The correct value is " + item.options[item.correct] + ".");
    text += '\n';
  }
  return text;
}

}  // namespace astromlab::corpus
