#pragma once
// Chat template, instruct prompt and JSON answer formats.
//
// Shared between SFT data construction and the evaluation harness so the
// instruct models are probed in exactly the format they were tuned on —
// the paper follows each model's official chat template the same way.
//
// The instruct prompt is the scaled-down analog of the paper's Appendix-B
// prompt: expert role framing, the question with four options, a JSON
// output-format instruction, and the repeated "only one answer" directive
// the authors added for the AstroLLaMA series.

#include <string>
#include <vector>

#include "corpus/mcq.hpp"
#include "nn/data.hpp"
#include "tokenizer/bpe.hpp"

namespace astromlab::corpus {

/// Header line shared by practice exam text and the two-shot token prompt
/// (paper Appendix C).
inline constexpr const char* kExamHeader =
    "Astrophysics and Cosmology Multiple choice questions Solution set:";

struct DialogueTurn {
  enum class Role { kSystem, kUser, kAssistant };
  Role role = Role::kUser;
  std::string text;
};

struct Dialogue {
  std::vector<DialogueTurn> turns;
};

/// Renders a dialogue with special-token markers:
/// `<|system|>...<|end|><|user|>...<|end|><|assistant|>...<|end|>`.
std::string render_dialogue(const Dialogue& dialogue);

/// Renders the generation prompt: all turns, then an opened assistant turn
/// (`<|assistant|>`) with no content — the model continues from here.
std::string render_generation_prompt(const std::vector<DialogueTurn>& turns);

/// The Appendix-B-style user message for one MCQ (system framing included
/// in the text since the tiny models use a single-turn template).
std::string render_instruct_prompt(const McqItem& item);

/// Canonical assistant answer: `{"ANSWER": "B", "EXPLANATION": "..."}`.
std::string render_json_answer(char letter, const std::string& explanation);

/// Tokenises a dialogue into an SFT example: loss on assistant-turn
/// content and end-of-turn markers only.
nn::MaskedExample dialogue_to_example(const Dialogue& dialogue,
                                      const tokenizer::BpeTokenizer& tok);

}  // namespace astromlab::corpus
