#include "corpus/knowledge.hpp"

#include <stdexcept>

#include "corpus/lexicon.hpp"
#include "util/string_utils.hpp"

namespace astromlab::corpus {

using util::replace_all;

std::vector<Relation> KnowledgeBase::standard_relations() {
  std::vector<Relation> relations;

  relations.push_back(Relation{
      "initial-mass-range",
      "What is the most likely range of initial masses for stars associated with %E?",
      {"The initial mass range inferred for %E is %V.",
       "Progenitor modelling places the initial masses of %E at %V.",
       "Stars associated with %E most likely formed with masses of %V."},
      ValueDomain{{"0.5 to 1.0 solar masses", "1.0 to 1.5 solar masses",
                   "1.5 to 2.0 solar masses", "2.0 to 2.5 solar masses",
                   "2.5 to 3.0 solar masses", "3.0 to 3.5 solar masses"}}});

  relations.push_back(Relation{
      "distance",
      "What is the measured distance to %E?",
      {"The distance to %E is measured at %V.",
       "Parallax studies place %E at a distance of %V.",
       "Recent calibrations put %E at %V from the Sun."},
      ValueDomain{{"1.2 kiloparsecs", "2.4 kiloparsecs", "3.6 kiloparsecs",
                   "4.8 kiloparsecs", "6.1 kiloparsecs", "7.3 kiloparsecs"}}});

  relations.push_back(Relation{
      "metallicity",
      "What is the characteristic metallicity of %E?",
      {"The characteristic metallicity of %E is %V.",
       "Spectral synthesis yields a metallicity of %V for %E.",
       "Abundance analyses of %E converge on a metallicity of %V."},
      ValueDomain{{"0.2 times the solar value", "0.5 times the solar value",
                   "0.8 times the solar value", "1.1 times the solar value",
                   "1.5 times the solar value", "2.0 times the solar value"}}});

  relations.push_back(Relation{
      "age",
      "What is the estimated age of %E?",
      {"The estimated age of %E is %V.",
       "Isochrone fitting gives an age of %V for %E.",
       "Chronometric analyses date %E at %V."},
      ValueDomain{{"0.5 billion years", "1.5 billion years", "3.0 billion years",
                   "5.5 billion years", "8.0 billion years", "11.0 billion years"}}});

  relations.push_back(Relation{
      "rotation-period",
      "What is the dominant rotation period measured for %E?",
      {"The dominant rotation period of %E is %V.",
       "Time-series photometry reveals that %E rotates with a period of %V.",
       "Periodogram analysis of %E identifies a rotation period of %V."},
      ValueDomain{{"6 hours", "14 hours", "29 hours", "52 hours", "88 hours",
                   "120 hours"}}});

  relations.push_back(Relation{
      "magnetic-field",
      "What is the typical surface magnetic field strength of %E?",
      {"The surface magnetic field of %E is %V.",
       "Zeeman measurements indicate a field of %V on %E.",
       "Polarimetric monitoring of %E implies a magnetic field of %V."},
      ValueDomain{{"0.1 kilogauss", "0.8 kilogauss", "2.5 kilogauss", "6.0 kilogauss",
                   "12 kilogauss", "25 kilogauss"}}});

  relations.push_back(Relation{
      "outflow-velocity",
      "What is the characteristic outflow velocity observed in %E?",
      {"The characteristic outflow velocity of %E is %V.",
       "Emission line profiles of %E indicate outflows of %V.",
       "Winds from %E reach a characteristic velocity of %V."},
      ValueDomain{{"45 kilometers per second", "110 kilometers per second",
                   "240 kilometers per second", "420 kilometers per second",
                   "650 kilometers per second", "900 kilometers per second"}}});

  relations.push_back(Relation{
      "formation-mechanism",
      "What is the primary formation mechanism proposed for %E?",
      {"The primary formation mechanism of %E is %V.",
       "Current consensus attributes %E to %V.",
       "Models of %E favour formation through %V."},
      ValueDomain{{"gradual accretion within a cold disk",
                   "violent merger of two compact remnants",
                   "fragmentation of a turbulent gas cloud",
                   "tidal stripping by a massive companion",
                   "runaway collisions inside a dense cluster",
                   "delayed collapse of a rotating envelope"}}});

  relations.push_back(Relation{
      "dominant-emission",
      "In which band does %E emit most of its observed luminosity?",
      {"%E emits most of its luminosity in %V.",
       "The spectral energy distribution of %E peaks in %V.",
       "Broadband photometry shows %E radiating chiefly in %V."},
      ValueDomain{{"the soft X-ray band", "the far ultraviolet band",
                   "the visible optical band", "the near infrared band",
                   "the millimeter continuum", "the decimeter radio band"}}});

  relations.push_back(Relation{
      "companion-type",
      "What type of companion object has been identified around %E?",
      {"The companion identified around %E is %V.",
       "Radial velocity monitoring of %E reveals %V.",
       "Astrometric wobble indicates that %E hosts %V."},
      ValueDomain{{"a low-mass red dwarf star", "a cooling white dwarf remnant",
                   "a massive gas giant planet", "a tight brown dwarf binary",
                   "a recycled neutron star", "a stripped helium subdwarf"}}});

  return relations;
}

KnowledgeBase KnowledgeBase::generate(const KbConfig& config) {
  if (config.n_topics == 0 || config.entities_per_topic == 0 ||
      config.facts_per_entity == 0) {
    throw std::invalid_argument("KbConfig: counts must be positive");
  }
  KnowledgeBase kb;
  kb.config_ = config;
  kb.relations_ = standard_relations();
  if (config.facts_per_entity > kb.relations_.size()) {
    throw std::invalid_argument("KbConfig: facts_per_entity exceeds relation count");
  }

  util::Rng rng(config.seed);
  const std::size_t entity_count = config.n_topics * config.entities_per_topic;
  const std::vector<std::string> names = Lexicon::object_names(entity_count, rng);
  const auto& kinds = Lexicon::object_kinds();

  kb.entities_.reserve(entity_count);
  for (std::size_t topic = 0; topic < config.n_topics; ++topic) {
    for (std::size_t e = 0; e < config.entities_per_topic; ++e) {
      Entity entity;
      entity.name = names[topic * config.entities_per_topic + e];
      entity.kind = kinds[static_cast<std::size_t>(rng.next_below(kinds.size()))];
      entity.topic = topic;
      kb.entities_.push_back(std::move(entity));
    }
  }

  for (std::size_t ei = 0; ei < kb.entities_.size(); ++ei) {
    // Each entity gets `facts_per_entity` distinct relations.
    const std::vector<std::size_t> chosen =
        rng.sample_without_replacement(kb.relations_.size(), config.facts_per_entity);
    for (std::size_t relation : chosen) {
      Fact fact;
      fact.entity = ei;
      fact.relation = relation;
      fact.value = static_cast<std::size_t>(
          rng.next_below(kb.relations_[relation].domain.options.size()));
      fact.tier = rng.next_bernoulli(config.frontier_fraction) ? Tier::kFrontier
                                                               : Tier::kCanonical;
      fact.topic = kb.entities_[ei].topic;
      kb.facts_.push_back(fact);
    }
  }
  return kb;
}

std::vector<const Fact*> KnowledgeBase::facts_in_topic(std::size_t topic) const {
  std::vector<const Fact*> out;
  for (const Fact& fact : facts_) {
    if (fact.topic == topic) out.push_back(&fact);
  }
  return out;
}

std::vector<const Fact*> KnowledgeBase::facts_in_tier(Tier tier) const {
  std::vector<const Fact*> out;
  for (const Fact& fact : facts_) {
    if (fact.tier == tier) out.push_back(&fact);
  }
  return out;
}

std::string KnowledgeBase::statement(const Fact& fact, std::size_t variant) const {
  const Relation& relation = relations_[fact.relation];
  const std::string& tmpl =
      relation.statement_templates[variant % relation.statement_templates.size()];
  std::string out = replace_all(tmpl, "%E", entities_[fact.entity].name);
  out = replace_all(out, "%V", relation.domain.options[fact.value]);
  return out;
}

std::string KnowledgeBase::question(const Fact& fact) const {
  return replace_all(relations_[fact.relation].question_template, "%E",
                     entities_[fact.entity].name);
}

GeneralKnowledge GeneralKnowledge::generate(std::size_t count, std::uint64_t seed) {
  struct Family {
    const char* statement;
    const char* question;
  };
  static const std::vector<Family> families = {
      {"The regional capital of %E is the port town of %V.",
       "What is the regional capital of %E?"},
      {"The river crossing %E is known locally as the %V.",
       "Which river crosses %E?"},
      {"The traditional festival of %E takes place in %V.",
       "In which month is the traditional festival of %E held?"},
      {"The main export of %E has long been %V.",
       "What is the main export of %E?"},
  };
  static const std::vector<std::vector<std::string>> value_pools = {
      {"Harwick", "Selmere", "Dunvale", "Corvik", "Eastmoor", "Ralden"},
      {"Silverrun", "Kestrel", "Moorwater", "Greyflow", "Larkbeck", "Thornwash"},
      {"early spring", "late spring", "midsummer", "early autumn", "late autumn",
       "midwinter"},
      {"woven textiles", "smoked fish", "cut timber", "fired ceramics",
       "pressed cider", "milled grain"},
  };

  GeneralKnowledge gk;
  util::Rng rng(seed ^ 0x9E3779B97f4A7C15ULL);
  const std::vector<std::string> names =
      Lexicon::general_entity_names((count + families.size() - 1) / families.size() + 1, rng);
  std::size_t name_index = 0;
  while (gk.items_.size() < count) {
    const std::string& entity = names[name_index % names.size()];
    const std::size_t family = gk.items_.size() % families.size();
    if (family == families.size() - 1) ++name_index;
    const auto& pool = value_pools[family];
    const std::string& value = pool[static_cast<std::size_t>(rng.next_below(pool.size()))];
    Item item;
    item.statement = replace_all(replace_all(families[family].statement, "%E", entity), "%V", value);
    item.question = replace_all(families[family].question, "%E", entity);
    item.answer = value;
    gk.items_.push_back(std::move(item));
  }
  return gk;
}

}  // namespace astromlab::corpus
