#pragma once
// Astronomy lexicon: generators for synthetic object names, object kinds,
// filler prose, and general-domain text.
//
// The synthetic universe substitutes for the arXiv astro-ph corpus the
// paper trains on (see DESIGN.md §2). Object names are combinatorial
// (catalogue prefix + number, or Greek letter + constellation) so the
// generator scales to any knowledge-base size without repeating names.

#include <string>
#include <vector>

#include "util/rng.hpp"

namespace astromlab::corpus {

class Lexicon {
 public:
  /// Deterministically generates `count` unique object names.
  static std::vector<std::string> object_names(std::size_t count, util::Rng& rng);

  /// Object kind for an entity ("spiral galaxy", "millisecond pulsar", ...).
  static const std::vector<std::string>& object_kinds();

  /// Astronomy filler sentences (no factual content relevant to the
  /// benchmark); `%K` is replaced with an object kind.
  static const std::vector<std::string>& astro_filler();

  /// LaTeX/OCR-artifact strings injected by the noise channel to model the
  /// paper's observation that algorithmically-cleaned arXiv sources retain
  /// markup debris.
  static const std::vector<std::string>& latex_debris();

  /// General-domain (non-astronomy) filler sentences.
  static const std::vector<std::string>& general_filler();

  /// Names of synthetic everyday entities for the general-knowledge fact
  /// families (cities, rivers, inventions...).
  static std::vector<std::string> general_entity_names(std::size_t count, util::Rng& rng);

  /// Picks a random element.
  static const std::string& pick(const std::vector<std::string>& pool, util::Rng& rng);
};

}  // namespace astromlab::corpus
