#pragma once
// The ground-truth synthetic astronomy knowledge base.
//
// Substitutes for the astronomical literature in the paper: a set of
// entities (objects) with factual attributes (relation → value). Facts are
// grouped into topic clusters — one cluster per synthetic "review article",
// mirroring the ARAA-derived benchmark construction (885 articles, 5 MCQs
// each) — and tiered:
//
//   * canonical — long-established consensus knowledge; appears in general
//     pretraining corpora (with model-dependent coverage).
//   * frontier  — recent research results; appears only in the astro-ph
//     corpus, so only continual pretraining can teach it.
//
// Every relation carries a value domain of similar-length options, which is
// what lets the MCQ generator honour the paper's "answer options of equal
// length" design principle.

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace astromlab::corpus {

enum class Tier { kCanonical, kFrontier };

struct ValueDomain {
  std::vector<std::string> options;  ///< >= 4 mutually-exclusive values
};

struct Relation {
  std::string id;
  std::string question_template;                 ///< uses %E for the entity
  std::vector<std::string> statement_templates;  ///< use %E and %V
  ValueDomain domain;
};

struct Entity {
  std::string name;
  std::string kind;
  std::size_t topic = 0;
};

struct Fact {
  std::size_t entity = 0;
  std::size_t relation = 0;
  std::size_t value = 0;  ///< index into the relation's domain
  Tier tier = Tier::kCanonical;
  std::size_t topic = 0;
};

struct KbConfig {
  std::size_t n_topics = 24;          ///< synthetic review articles
  std::size_t entities_per_topic = 6;
  std::size_t facts_per_entity = 2;
  double frontier_fraction = 0.10;    ///< facts only CPT can teach
  std::uint64_t seed = 42;
};

class KnowledgeBase {
 public:
  static KnowledgeBase generate(const KbConfig& config);

  const KbConfig& config() const { return config_; }
  const std::vector<Entity>& entities() const { return entities_; }
  const std::vector<Relation>& relations() const { return relations_; }
  const std::vector<Fact>& facts() const { return facts_; }
  std::size_t topic_count() const { return config_.n_topics; }

  std::vector<const Fact*> facts_in_topic(std::size_t topic) const;
  std::vector<const Fact*> facts_in_tier(Tier tier) const;

  const Entity& entity_of(const Fact& fact) const { return entities_[fact.entity]; }
  const Relation& relation_of(const Fact& fact) const { return relations_[fact.relation]; }
  const std::string& value_text(const Fact& fact) const {
    return relations_[fact.relation].domain.options[fact.value];
  }

  /// Natural-language statement of the fact using template `variant`
  /// (mod the template count).
  std::string statement(const Fact& fact, std::size_t variant) const;

  /// Question form (for MCQs and practice-exam text).
  std::string question(const Fact& fact) const;

  /// The built-in relation inventory (exposed for tests).
  static std::vector<Relation> standard_relations();

 private:
  KbConfig config_;
  std::vector<Entity> entities_;
  std::vector<Relation> relations_;
  std::vector<Fact> facts_;
};

/// A small synthetic everyday-knowledge base used for general pretraining
/// text and the general (Orca/UltraChat-analog) SFT slices.
class GeneralKnowledge {
 public:
  struct Item {
    std::string statement;  ///< declarative sentence
    std::string question;   ///< question form
    std::string answer;     ///< short answer
  };

  static GeneralKnowledge generate(std::size_t count, std::uint64_t seed);

  const std::vector<Item>& items() const { return items_; }

 private:
  std::vector<Item> items_;
};

}  // namespace astromlab::corpus
