#include "corpus/sft_dataset.hpp"

#include <algorithm>

#include "corpus/lexicon.hpp"

namespace astromlab::corpus {

namespace {

Dialogue astro_mcq_dialogue(const KnowledgeBase& kb, const McqItem& item) {
  Dialogue dialogue;
  dialogue.turns.push_back({DialogueTurn::Role::kUser, render_instruct_prompt(item)});
  const Fact& fact = kb.facts()[item.fact_index];
  dialogue.turns.push_back(
      {DialogueTurn::Role::kAssistant,
       render_json_answer(item.correct_letter(), kb.statement(fact, 0))});
  return dialogue;
}

Dialogue general_mcq_dialogue(const GeneralKnowledge& gk, std::size_t index,
                              util::Rng& rng) {
  const auto& items = gk.items();
  const auto& target = items[index];
  McqItem mcq;
  mcq.question = target.question;
  mcq.correct = static_cast<std::size_t>(rng.next_below(4));
  // Distractors: other items' answers (format practice, not epistemology).
  std::size_t filled = 0;
  for (std::size_t slot = 0; slot < 4; ++slot) {
    if (slot == mcq.correct) {
      mcq.options[slot] = target.answer;
      continue;
    }
    std::string distractor;
    for (int attempt = 0; attempt < 8; ++attempt) {
      const auto& candidate = items[static_cast<std::size_t>(rng.next_below(items.size()))];
      if (candidate.answer != target.answer) {
        distractor = candidate.answer;
        break;
      }
    }
    if (distractor.empty()) distractor = "option " + std::to_string(++filled);
    mcq.options[slot] = distractor;
  }
  Dialogue dialogue;
  dialogue.turns.push_back({DialogueTurn::Role::kUser, render_instruct_prompt(mcq)});
  dialogue.turns.push_back({DialogueTurn::Role::kAssistant,
                            render_json_answer(mcq.correct_letter(), target.statement)});
  return dialogue;
}

Dialogue general_free_dialogue(const GeneralKnowledge& gk, std::size_t index,
                               util::Rng& rng) {
  const auto& item = gk.items()[index];
  Dialogue dialogue;
  dialogue.turns.push_back({DialogueTurn::Role::kUser, item.question});
  std::string answer = item.statement;
  if (rng.next_bernoulli(0.3)) {
    answer += ' ';
    answer += Lexicon::pick(Lexicon::general_filler(), rng);
  }
  dialogue.turns.push_back({DialogueTurn::Role::kAssistant, answer});
  return dialogue;
}

}  // namespace

std::vector<Dialogue> build_sft_dialogues(const KnowledgeBase& kb,
                                          const std::vector<McqItem>& practice_pool,
                                          const SftSpec& spec) {
  util::Rng rng(spec.seed);
  const std::size_t astro_count =
      static_cast<std::size_t>(spec.astro_fraction * static_cast<double>(spec.total_dialogues));
  const std::size_t general_count = spec.total_dialogues - astro_count;
  const std::size_t general_mcq_count =
      static_cast<std::size_t>(spec.general_mcq_share * static_cast<double>(general_count));

  const GeneralKnowledge gk =
      GeneralKnowledge::generate(std::max<std::size_t>(general_count / 3, 40), spec.seed);

  std::vector<Dialogue> dialogues;
  dialogues.reserve(spec.total_dialogues);
  for (std::size_t i = 0; i < astro_count && !practice_pool.empty(); ++i) {
    const McqItem& item =
        practice_pool[static_cast<std::size_t>(rng.next_below(practice_pool.size()))];
    dialogues.push_back(astro_mcq_dialogue(kb, item));
  }
  for (std::size_t i = 0; i < general_count; ++i) {
    const std::size_t item_index =
        static_cast<std::size_t>(rng.next_below(gk.items().size()));
    if (i < general_mcq_count) {
      dialogues.push_back(general_mcq_dialogue(gk, item_index, rng));
    } else {
      dialogues.push_back(general_free_dialogue(gk, item_index, rng));
    }
  }
  rng.shuffle(dialogues);
  return dialogues;
}

SftSpec astrollama_sft_spec(std::uint64_t seed) {
  SftSpec spec;
  spec.total_dialogues = 900;      // ~30k in the paper, scaled with the world
  spec.astro_fraction = 1.0 / 3.0; // paper: one third astronomy-focused
  spec.general_mcq_share = 0.35;   // most general data is free-form chat
  spec.seed = seed;
  return spec;
}

SftSpec vendor_sft_spec(std::uint64_t seed) {
  SftSpec spec;
  spec.total_dialogues = 2400;   // vendors tune on far more instruction data
  spec.astro_fraction = 0.30;    // broad coverage includes science Q&A
  spec.general_mcq_share = 0.55; // rich format demonstrations
  spec.seed = seed;
  return spec;
}

std::vector<nn::MaskedExample> to_masked_examples(const std::vector<Dialogue>& dialogues,
                                                  const tokenizer::BpeTokenizer& tok) {
  std::vector<nn::MaskedExample> examples;
  examples.reserve(dialogues.size());
  for (const Dialogue& dialogue : dialogues) {
    examples.push_back(dialogue_to_example(dialogue, tok));
  }
  return examples;
}

}  // namespace astromlab::corpus
