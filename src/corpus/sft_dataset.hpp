#pragma once
// Supervised fine-tuning dialogue sets.
//
// Two builders mirror the paper's setup:
//
// * `build_astrollama_sft` — the analog of the SFT set inherited from
//   AstroLLaMA-Chat (§III): ~1/3 astronomy-centred MCQ conversations
//   generated from paper abstracts, ~2/3 general instruction data (the
//   LIMA / OpenOrca / UltraChat share). The paper shows this set is too
//   small and too general, dragging specialised models down.
//
// * `build_vendor_sft` — the analog of the *vendor* instruction tuning
//   behind the official LLaMA instruct checkpoints the paper benchmarks
//   against: larger, balanced, with plenty of format demonstrations.
//
// The knobs (`astro_fraction`, `total_dialogues`) are exposed so the SFT
// ablation bench (E3) can sweep them, reproducing the paper's claim that a
// much larger astronomy-focused Q&A set resolves the instruct-model gap.

#include <vector>

#include "corpus/chat_format.hpp"
#include "corpus/knowledge.hpp"
#include "corpus/mcq.hpp"

namespace astromlab::corpus {

struct SftSpec {
  std::size_t total_dialogues = 900;
  /// Share of dialogues that are astronomy MCQ conversations; the paper's
  /// inherited set is about one third astronomy.
  double astro_fraction = 1.0 / 3.0;
  /// Share of the *general* dialogues that demonstrate the JSON MCQ format
  /// (rather than free-text Q&A); format demonstrations are what give a
  /// model full-instruct compliance.
  double general_mcq_share = 0.4;
  std::uint64_t seed = 77;
};

/// Builds a dialogue set per the spec. Astronomy dialogues quiz facts from
/// `practice_pool` (never benchmark questions) in the Appendix-B format;
/// general dialogues quiz `GeneralKnowledge` items either as JSON MCQs or
/// free-text answers.
std::vector<Dialogue> build_sft_dialogues(const KnowledgeBase& kb,
                                          const std::vector<McqItem>& practice_pool,
                                          const SftSpec& spec);

/// The small astro-light set the AstroLLaMA series inherits (paper §III).
SftSpec astrollama_sft_spec(std::uint64_t seed = 77);

/// The large balanced vendor set behind official instruct baselines.
SftSpec vendor_sft_spec(std::uint64_t seed = 78);

/// Tokenises dialogues into masked SFT examples.
std::vector<nn::MaskedExample> to_masked_examples(const std::vector<Dialogue>& dialogues,
                                                  const tokenizer::BpeTokenizer& tok);

}  // namespace astromlab::corpus
