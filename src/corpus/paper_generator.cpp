#include "corpus/paper_generator.hpp"

#include <algorithm>

#include "corpus/lexicon.hpp"
#include "util/string_utils.hpp"

namespace astromlab::corpus {

namespace {

std::string filler_sentence(const std::string& kind, double debris_rate, util::Rng& rng) {
  if (debris_rate > 0.0 && rng.next_bernoulli(debris_rate)) {
    return Lexicon::pick(Lexicon::latex_debris(), rng);
  }
  std::string sentence = Lexicon::pick(Lexicon::astro_filler(), rng);
  return util::replace_all(sentence, "%K", kind);
}

void append_sentence(std::string& out, const std::string& sentence) {
  out += sentence;
  out += ' ';
}

}  // namespace

PaperGenerator::PaperGenerator(const KnowledgeBase& kb, PaperGenConfig config)
    : kb_(kb), config_(config) {}

std::string PaperGenerator::fact_sentence(std::size_t fact_index, util::Rng& rng) const {
  const Fact& fact = kb_.facts()[fact_index];
  const std::size_t variant = static_cast<std::size_t>(rng.next_below(
      kb_.relation_of(fact).statement_templates.size()));
  return kb_.statement(fact, variant);
}

std::vector<SyntheticPaper> PaperGenerator::generate_topic(std::size_t topic, util::Rng& rng) {
  // Partition the topic's facts across its papers so every fact is realised
  // in at least one paper; abstracts carry a subset (the headline results).
  std::vector<std::size_t> topic_fact_indices;
  const auto& facts = kb_.facts();
  for (std::size_t i = 0; i < facts.size(); ++i) {
    if (facts[i].topic == topic) topic_fact_indices.push_back(i);
  }
  rng.shuffle(topic_fact_indices);

  std::vector<SyntheticPaper> papers;
  const std::size_t n_papers = std::max<std::size_t>(config_.papers_per_topic, 1);
  papers.resize(n_papers);
  for (std::size_t p = 0; p < n_papers; ++p) {
    papers[p].topic = topic;
  }
  for (std::size_t i = 0; i < topic_fact_indices.size(); ++i) {
    papers[i % n_papers].fact_indices.push_back(topic_fact_indices[i]);
  }

  for (SyntheticPaper& paper : papers) {
    if (paper.fact_indices.empty()) continue;
    const Fact& lead_fact = facts[paper.fact_indices.front()];
    const Entity& lead_entity = kb_.entity_of(lead_fact);
    paper.title = "On the nature of " + lead_entity.name + ", a " + lead_entity.kind + ".";

    // Abstract: headline facts (roughly half), stated once, dense.
    const std::size_t abstract_facts = std::max<std::size_t>(1, paper.fact_indices.size() / 2);
    paper.abstract_text = "Abstract. We present new observations of " + lead_entity.name + ". ";
    for (std::size_t i = 0; i < abstract_facts; ++i) {
      append_sentence(paper.abstract_text, fact_sentence(paper.fact_indices[i], rng));
    }

    // Introduction: all facts with moderate filler.
    paper.introduction = "Introduction. The study of " + lead_entity.kind +
                         " populations has advanced rapidly. ";
    for (std::size_t fact_index : paper.fact_indices) {
      append_sentence(paper.introduction, fact_sentence(fact_index, rng));
      const std::size_t fillers = static_cast<std::size_t>(config_.intro_filler_per_fact +
                                                           rng.next_double());
      for (std::size_t f = 0; f < fillers; ++f) {
        append_sentence(paper.introduction,
                        filler_sentence(lead_entity.kind, config_.debris_rate, rng));
      }
    }

    // Body: facts restated amid heavy filler (and debris when configured).
    paper.body = "Observations and analysis. ";
    for (std::size_t fact_index : paper.fact_indices) {
      const std::size_t fillers = static_cast<std::size_t>(config_.body_filler_per_fact +
                                                           2.0 * rng.next_double());
      for (std::size_t f = 0; f < fillers; ++f) {
        append_sentence(paper.body,
                        filler_sentence(lead_entity.kind, config_.debris_rate, rng));
      }
      append_sentence(paper.body, fact_sentence(fact_index, rng));
    }

    // Conclusion: restates every fact once with light filler.
    paper.conclusion = "Conclusions. ";
    for (std::size_t fact_index : paper.fact_indices) {
      append_sentence(paper.conclusion, fact_sentence(fact_index, rng));
    }
    append_sentence(paper.conclusion,
                    filler_sentence(lead_entity.kind, config_.debris_rate, rng));
  }
  // Drop papers that received no facts (tiny topics).
  papers.erase(std::remove_if(papers.begin(), papers.end(),
                              [](const SyntheticPaper& paper) {
                                return paper.fact_indices.empty();
                              }),
               papers.end());
  return papers;
}

std::vector<SyntheticPaper> PaperGenerator::generate_all() {
  util::Rng rng(config_.seed);
  std::vector<SyntheticPaper> all;
  for (std::size_t topic = 0; topic < kb_.topic_count(); ++topic) {
    util::Rng topic_rng = rng.split(topic);
    std::vector<SyntheticPaper> papers = generate_topic(topic, topic_rng);
    for (SyntheticPaper& paper : papers) all.push_back(std::move(paper));
  }
  return all;
}

std::string PaperGenerator::render_abstract(const std::vector<SyntheticPaper>& papers) {
  std::string out;
  for (const SyntheticPaper& paper : papers) {
    out += paper.title;
    out += ' ';
    out += paper.abstract_text;
    out += "\n";
  }
  return out;
}

std::string PaperGenerator::render_aic(const std::vector<SyntheticPaper>& papers) {
  std::string out;
  for (const SyntheticPaper& paper : papers) {
    out += paper.title;
    out += ' ';
    out += paper.abstract_text;
    out += paper.introduction;
    out += paper.conclusion;
    out += "\n";
  }
  return out;
}

std::string PaperGenerator::render_full_text(const std::vector<SyntheticPaper>& papers) {
  std::string out;
  for (const SyntheticPaper& paper : papers) {
    out += paper.title;
    out += ' ';
    out += paper.abstract_text;
    out += paper.introduction;
    out += paper.body;
    out += paper.conclusion;
    out += "\n";
  }
  return out;
}

std::string PaperGenerator::render_summary(const std::vector<SyntheticPaper>& papers) const {
  // The LLM-summary analog: every fact of the paper restated once, in a
  // phrasing variant unlikely to be verbatim-identical to the source, with
  // a single framing sentence — maximal fact density per token.
  util::Rng rng(config_.seed ^ 0xA5A5A5A5ULL);
  std::string out;
  for (const SyntheticPaper& paper : papers) {
    out += "Summary of " + paper.title + " ";
    for (std::size_t fact_index : paper.fact_indices) {
      append_sentence(out, fact_sentence(fact_index, rng));
    }
    out += "\n";
  }
  return out;
}

std::string PaperGenerator::ocr_noise(const std::string& text, double rate, util::Rng& rng) {
  if (rate <= 0.0) return text;
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if ((c >= 'a' && c <= 'z') && rng.next_bernoulli(rate)) {
      const double roll = rng.next_double();
      if (roll < 0.4) {
        continue;  // dropped character
      } else if (roll < 0.8) {
        out += static_cast<char>('a' + rng.next_below(26));  // substitution
      } else {
        out += c;
        out += ' ';  // spurious split (common OCR artefact)
      }
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace astromlab::corpus
