#pragma once
// Corpus assembly for the three training phases.
//
// * Pretraining corpora differ per model scale in how much canonical
//   astronomy knowledge they contain (`canonical_coverage`) and how often
//   each fact is repeated — the knob that encodes "LLaMA-3 was pretrained
//   on better data than LLaMA-2" without pretending to train on 15T tokens.
// * CPT corpora realise the synthetic astro-ph literature in the variants
//   the paper compares (Abstract / AIC / Summary / OCR full text).
// * A held-out stream supports perplexity tracking.

#include <string>
#include <vector>

#include "corpus/knowledge.hpp"
#include "corpus/mcq.hpp"
#include "corpus/paper_generator.hpp"

namespace astromlab::corpus {

struct PretrainSpec {
  /// Fraction of canonical astro facts present in this corpus.
  double canonical_coverage = 0.9;
  /// Statements emitted per covered astro fact (distinct phrasings/filler).
  std::size_t fact_repetitions = 6;
  /// Synthetic everyday facts and their repetitions.
  std::size_t general_fact_count = 120;
  std::size_t general_fact_repetitions = 4;
  /// Pure-filler paragraphs (each a handful of sentences) for volume.
  std::size_t filler_paragraphs = 300;
  /// Practice MCQ blocks (with answers) so base models learn the exam
  /// pattern used by the token benchmarking method.
  std::size_t practice_exam_blocks = 150;
  /// Chat-formatted dialogues mixed into pretraining (web data contains
  /// dialogue-like text; without this, SFT would have to teach the chat
  /// markers entirely from scratch, which real base models never face).
  std::size_t chat_warmup_dialogues = 60;
  std::uint64_t seed = 11;
};

/// Assembles and shuffles a pretraining corpus (returned as raw text).
std::string build_pretrain_corpus(const KnowledgeBase& kb,
                                  const std::vector<McqItem>& practice_pool,
                                  const PretrainSpec& spec);

enum class CptVariant {
  kAbstract,    ///< abstracts only (AstroLLaMA-2-7B-Abstract recipe)
  kAic,         ///< abstract+intro+conclusion (the "-AIC" models)
  kSummary,     ///< dense LLM-summary analog
  kFullTextOcr  ///< OCR'd full text (Nougat pipeline analog)
};

const char* cpt_variant_name(CptVariant variant);

struct CptSpec {
  CptVariant variant = CptVariant::kAic;
  /// LaTeX debris rate inside paper bodies (models imperfect cleaning;
  /// the 2-7B-era corpora were noisier than the recleaned ones).
  double debris_rate = 0.0;
  /// Character-level OCR noise applied to the rendered corpus.
  double ocr_noise_rate = 0.0;
  /// Number of passes over the literature concatenated into the stream
  /// (repetition strength of CPT facts).
  std::size_t passes = 1;
  std::size_t papers_per_topic = 3;
  std::uint64_t seed = 23;
};

std::string build_cpt_corpus(const KnowledgeBase& kb, const CptSpec& spec);

/// Small held-out mixed-domain stream for perplexity monitoring.
std::string build_heldout_text(const KnowledgeBase& kb, std::uint64_t seed);

/// Concatenation used to train the shared tokenizer: a sample of every
/// text register the models will ever see (papers, exams, chat markers,
/// JSON answers, general prose).
std::string build_tokenizer_training_text(const KnowledgeBase& kb,
                                          const std::vector<McqItem>& practice_pool,
                                          std::uint64_t seed);

}  // namespace astromlab::corpus
