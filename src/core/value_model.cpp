#include "core/value_model.hpp"

#include <cmath>

#include "util/string_utils.hpp"

namespace astromlab::core {

double ValueModel::cost_efficiency_factor(double score_gain_points) const {
  return std::pow(10.0, score_gain_points / points_per_decade);
}

double ValueModel::fraction_of(double score_gain_points, double reference_gain_points) const {
  if (reference_gain_points == 0.0) return 0.0;
  return score_gain_points / reference_gain_points;
}

std::vector<FlagshipScore> paper_flagship_scores() {
  return {
      {"Gemini-1.5-Pro-001", 77.6},
      {"Claude-3.0-Sonnet", 76.7},
      {"GLM-4-0520", 75.1},
  };
}

double paper_reference_tier_gap() {
  // Haiku→Sonnet / 4o-mini→4o: the paper calls 2.1 points "two-thirds" of
  // this gap, i.e. the gap is ~3.1 points.
  return 3.15;
}

std::string render_value_analysis(double measured_gain_points, double astro_llama_70b_score,
                                  const ValueModel& model) {
  using util::format_fixed;
  std::string out;
  out += "VALUE ANALYSIS (Ting et al. 2024 score/price extrapolation)\n";
  out += "  measured CPT gain at 70B scale: " + format_fixed(measured_gain_points, 1) +
         " points\n";
  out += "  implied cost-efficiency factor: " +
         format_fixed(model.cost_efficiency_factor(measured_gain_points), 2) + "x (10x per " +
         format_fixed(model.points_per_decade, 1) + " points)\n";
  out += "  fraction of a flagship tier gap (Haiku->Sonnet ~" +
         format_fixed(paper_reference_tier_gap(), 1) + " pts): " +
         format_fixed(model.fraction_of(measured_gain_points, paper_reference_tier_gap()), 2) +
         "\n";
  out += "  flagship comparison (paper full-instruct scores):\n";
  for (const FlagshipScore& flagship : paper_flagship_scores()) {
    out += "    " + util::pad_right(flagship.name, 22) + format_fixed(flagship.score, 1) +
           "  vs AstroLLaMA-2-70B base-token " + format_fixed(astro_llama_70b_score, 1) + "\n";
  }
  return out;
}

}  // namespace astromlab::core
