#include "core/recipes.hpp"

#include <algorithm>

namespace astromlab::core {

const char* sft_kind_name(SftKind kind) {
  switch (kind) {
    case SftKind::kVendor: return "vendor";
    case SftKind::kAstroLLaMA: return "astrollama";
  }
  return "?";
}

corpus::CptSpec cpt_corpus_spec(corpus::CptVariant variant, const WorldConfig& world) {
  corpus::CptSpec spec;
  spec.variant = variant;
  spec.papers_per_topic = 3;
  spec.seed = world.seed + 9001;
  switch (variant) {
    case corpus::CptVariant::kAbstract:
      // Abstracts are short; more passes reach a comparable token budget.
      spec.passes = 3;
      spec.debris_rate = 0.12;  // the 2-7B-era LaTeX-derived cleaning
      break;
    case corpus::CptVariant::kAic:
      spec.passes = 2;
      spec.debris_rate = 0.12;  // same dataset as [28], same imperfections
      break;
    case corpus::CptVariant::kSummary:
      spec.passes = 2;
      spec.debris_rate = 0.0;   // LLM summaries are clean and dense
      break;
    case corpus::CptVariant::kFullTextOcr:
      spec.passes = 1;
      spec.debris_rate = 0.04;  // Nougat output is cleaner than LaTeX
      spec.ocr_noise_rate = 0.015;
      break;
  }
  return spec;
}

nn::TrainConfig cpt_recipe(Scale scale, const WorldConfig& world) {
  (void)scale;  // the paper applies the same CPT recipe across scales —
                // outcome differences must come from the models themselves.
  nn::TrainConfig train;
  train.micro_batch = 8;
  train.grad_accum = 1;
  train.seq_len = world.ctx_len;
  train.lr = 1.2e-3f;
  train.warmup_ratio = 0.03;  // paper value
  train.min_lr_ratio = 0.1;
  train.weight_decay = 0.01f;
  train.clip_norm = 1.0f;
  train.epochs = 1.0;  // paper: one epoch in all cases
  return train;
}

corpus::SftSpec sft_data_spec(SftKind kind, const WorldConfig& world) {
  corpus::SftSpec spec = kind == SftKind::kVendor
                             ? corpus::vendor_sft_spec(world.seed + 31)
                             : corpus::astrollama_sft_spec(world.seed + 32);
  const double mult = std::max(world.size_multiplier, 0.01);
  spec.total_dialogues =
      std::max<std::size_t>(static_cast<std::size_t>(spec.total_dialogues * mult), 12);
  return spec;
}

nn::TrainConfig sft_recipe(Scale scale, SftKind kind, const WorldConfig& world) {
  (void)scale;  // same SFT recipe across scales, as in the paper
  nn::TrainConfig train;
  train.micro_batch = 8;
  train.grad_accum = 1;
  train.seq_len = world.ctx_len;
  train.warmup_ratio = 0.03;
  train.min_lr_ratio = 0.1;
  train.weight_decay = 0.01f;
  train.clip_norm = 1.0f;
  if (kind == SftKind::kVendor) {
    // Vendor instruction tuning is far heavier than the inherited set.
    train.lr = 6e-4f;
    train.epochs = 3.0;
  } else {
    train.lr = 3e-4f;  // CPT:SFT lr ratio preserved (paper: 2e-5 vs 3e-7)
    train.epochs = 1.0;  // paper: one SFT epoch
  }
  return train;
}

}  // namespace astromlab::core
