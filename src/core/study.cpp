#include "core/study.hpp"

#include <algorithm>

namespace astromlab::core {

namespace {

double pct(const eval::ScoreSummary& s) { return s.accuracy * 100.0; }

StudyRow make_row(Pipeline& pipeline, Scale scale, std::optional<corpus::CptVariant> cpt,
                  SftKind sft, bool evaluate_instruct, const std::string& name,
                  const std::string& series, const std::string& source,
                  const std::string& reference, bool native, const std::string& baseline) {
  StudyRow out;
  out.scores = pipeline.evaluate_family(scale, cpt, sft, evaluate_instruct);
  out.row.name = name;
  out.row.series = series;
  out.row.token_base = pct(out.scores.token_base);
  out.row.degraded = out.scores.token_base.degraded;
  out.row.shed = out.scores.token_base.shed;
  out.row.evictions = out.scores.token_base.cache_evictions;
  out.row.retried = out.scores.token_base.retried;
  out.row.canonical_total = out.scores.token_base.canonical_total;
  // Worst-case (max) latency percentile across the evaluated methods; a
  // method whose questions all replayed from cache contributes nothing.
  const auto fold_latency = [&out](const eval::ScoreSummary& s) {
    if (s.timed_questions == 0) return;
    out.row.latency_p50_ms = std::max(out.row.latency_p50_ms, s.latency_p50_s * 1000.0);
    out.row.latency_p95_ms = std::max(out.row.latency_p95_ms, s.latency_p95_s * 1000.0);
    out.row.latency_p99_ms = std::max(out.row.latency_p99_ms, s.latency_p99_s * 1000.0);
  };
  fold_latency(out.scores.token_base);
  if (out.scores.has_instruct) {
    out.row.token_instruct = pct(out.scores.token_instruct);
    out.row.full_instruct = pct(out.scores.full_instruct);
    out.row.unanswered = out.scores.full_instruct.unanswered;
    out.row.degraded +=
        out.scores.token_instruct.degraded + out.scores.full_instruct.degraded;
    out.row.shed += out.scores.token_instruct.shed + out.scores.full_instruct.shed;
    out.row.evictions += out.scores.token_instruct.cache_evictions +
                         out.scores.full_instruct.cache_evictions;
    out.row.retried +=
        out.scores.token_instruct.retried + out.scores.full_instruct.retried;
    fold_latency(out.scores.token_instruct);
    fold_latency(out.scores.full_instruct);
  }
  out.row.source = source;
  out.row.reference = reference;
  out.row.is_native = native;
  out.row.baseline = baseline;
  return out;
}

}  // namespace

std::vector<eval::ModelRow> StudyResult::table_rows() const {
  std::vector<eval::ModelRow> out;
  out.reserve(rows.size());
  for (const StudyRow& row : rows) out.push_back(row.row);
  return out;
}

const StudyRow* StudyResult::find(const std::string& name) const {
  for (const StudyRow& row : rows) {
    if (row.row.name == name) return &row;
  }
  return nullptr;
}

StudyResult run_table1_study(Pipeline& pipeline) {
  using corpus::CptVariant;
  StudyResult result;

  // --- S7 series (LLaMA-2 7B analog) ---
  result.rows.push_back(make_row(pipeline, Scale::kS7, std::nullopt, SftKind::kVendor, true,
                                 "LLaMA-2-7B", "LLaMA-2 Series (S7 analog)", "Meta", "[3]",
                                 true, ""));
  result.rows.push_back(make_row(pipeline, Scale::kS7, CptVariant::kAic,
                                 SftKind::kAstroLLaMA, true, "AstroLLaMA-2-7B-AIC",
                                 "AstroLLaMA-2 Series (S7 analog)", "uTBD", "[28]", false,
                                 "LLaMA-2-7B"));
  result.rows.push_back(make_row(pipeline, Scale::kS7, CptVariant::kAbstract,
                                 SftKind::kAstroLLaMA, /*evaluate_instruct=*/false,
                                 "AstroLLaMA-2-7B-Abstract",
                                 "AstroLLaMA-2 Series (S7 analog)", "uTBD", "[27]", false,
                                 "LLaMA-2-7B"));

  // --- S8 series (LLaMA-3 8B analog) ---
  result.rows.push_back(make_row(pipeline, Scale::kS8, std::nullopt, SftKind::kVendor, true,
                                 "LLaMA-3-8B", "LLaMA-3 Series (S8 analog)", "Meta", "[4]",
                                 true, ""));
  result.rows.push_back(make_row(pipeline, Scale::kS8, CptVariant::kAic,
                                 SftKind::kAstroLLaMA, true, "AstroLLaMA-3-8B-AIC",
                                 "AstroLLaMA-3 Series (S8 analog)", "AstroMLab",
                                 "This Study", false, "LLaMA-3-8B"));
  result.rows.push_back(make_row(pipeline, Scale::kS8, CptVariant::kSummary,
                                 SftKind::kAstroLLaMA, true, "AstroLLaMA-3-8B-Summary",
                                 "AstroLLaMA-3 Series (S8 analog)", "AstroMLab",
                                 "This Study", false, "LLaMA-3-8B"));

  // --- S70 series (LLaMA-2 70B analog) ---
  result.rows.push_back(make_row(pipeline, Scale::kS70, std::nullopt, SftKind::kVendor, true,
                                 "LLaMA-2-70B", "LLaMA-2 Series (S70 analog)", "Meta", "[3]",
                                 true, ""));
  result.rows.push_back(make_row(pipeline, Scale::kS70, CptVariant::kAic,
                                 SftKind::kAstroLLaMA, true, "AstroLLaMA-2-70B-AIC",
                                 "AstroLLaMA-2 Series (S70 analog)", "AstroMLab",
                                 "This Study", false, "LLaMA-2-70B"));
  return result;
}

std::vector<eval::ModelRow> paper_reference_rows() {
  auto row = [](const char* name, const char* series, double fi, double ti, double tb,
                const char* source, const char* reference, bool native,
                const char* baseline) {
    eval::ModelRow r;
    r.name = name;
    r.series = series;
    r.full_instruct = fi;
    r.token_instruct = ti;
    r.token_base = tb;
    r.source = source;
    r.reference = reference;
    r.is_native = native;
    r.baseline = baseline;
    return r;
  };
  return {
      row("LLaMA-2-7B", "LLaMA-2 Series (7B)", 50.3, 62.6, 51.3, "Meta", "[3]", true, ""),
      row("AstroLLaMA-2-7B-AIC", "AstroLLaMA-2 Series (7B)", 41.4, 47.2, 44.3, "uTBD",
          "[28]", false, "LLaMA-2-7B"),
      row("AstroLLaMA-2-7B-Abstract", "AstroLLaMA-2 Series (7B)", -1.0, -1.0, 43.5, "uTBD",
          "[27]", false, "LLaMA-2-7B"),
      row("LLaMA-3-8B", "LLaMA-3 Series (8B)", 72.9, 73.6, 72.0, "Meta", "[4]", true, ""),
      row("AstroLLaMA-3-8B-AIC", "AstroLLaMA-3 Series (8B)", 61.8, 68.4, 71.9, "AstroMLab",
          "This Study", false, "LLaMA-3-8B"),
      row("AstroLLaMA-3-8B-Summary", "AstroLLaMA-3 Series (8B)", 69.0, 70.9, 72.3,
          "AstroMLab", "This Study", false, "LLaMA-3-8B"),
      row("LLaMA-2-70B", "LLaMA-2 Series (70B)", 70.7, 71.4, 73.9, "Meta", "[3]", true, ""),
      row("AstroLLaMA-2-70B-AIC", "AstroLLaMA-2 Series (70B)", 64.7, 75.4, 76.0,
          "AstroMLab", "This Study", false, "LLaMA-2-70B"),
  };
}

}  // namespace astromlab::core
