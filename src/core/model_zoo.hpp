#pragma once
// The model zoo: scaled-down analogs of the paper's model families.
//
// Real LLaMA checkpoints cannot be trained here, so each family maps to a
// transformer scale whose *regime* matches the paper's (DESIGN.md §2):
//
//   S7  ↔ LLaMA-2-7B  — smallest capacity, weakest pretraining data
//                       (lower canonical-fact coverage, fewer repetitions);
//   S8  ↔ LLaMA-3-8B  — similar size class but much better pretraining
//                       (the LLaMA-3 15T-token data-quality jump);
//   S70 ↔ LLaMA-2-70B — largest capacity with strong pretraining.
//
// The WorldConfig fixes the shared synthetic universe (knowledge base,
// benchmark, tokenizer); ScaleSpec adds per-family architecture and
// pretraining corpus/recipe settings.

#include <string>

#include "corpus/corpora.hpp"
#include "corpus/knowledge.hpp"
#include "corpus/mcq.hpp"
#include "nn/config.hpp"
#include "nn/trainer.hpp"
#include "util/hash.hpp"

namespace astromlab::core {

enum class Scale { kS7, kS8, kS70 };

const char* scale_name(Scale scale);        ///< "S7" / "S8" / "S70"
const char* scale_paper_name(Scale scale);  ///< "LLaMA-2-7B" etc.
const char* scale_astro_name(Scale scale);  ///< "AstroLLaMA-2-7B" etc.

/// Global sizing of the synthetic world. `size_multiplier` scales corpus
/// volumes and dialogue counts uniformly (tests use << 1).
struct WorldConfig {
  corpus::KbConfig kb{};                 // 24 topics x 6 entities x 2 facts
  corpus::McqGenConfig mcq{};            // 5 questions per topic
  // vocab/ctx sized so the two-shot Appendix-C prompt (~300 tokens at this
  // vocabulary) and the instruct prompt + generation budget both fit.
  std::size_t vocab_size = 768;
  std::size_t ctx_len = 416;
  double size_multiplier = 1.0;
  std::uint64_t seed = 2024;

  void add_to_hash(util::HashBuilder& h) const;
};

struct ScaleSpec {
  Scale scale = Scale::kS7;
  nn::GptConfig arch;
  corpus::PretrainSpec pretrain;     ///< corpus composition
  nn::TrainConfig pretrain_train;    ///< optimisation recipe

  void add_to_hash(util::HashBuilder& h) const;
};

/// Builds the spec for one family under a world config.
ScaleSpec scale_spec(Scale scale, const WorldConfig& world);

}  // namespace astromlab::core
