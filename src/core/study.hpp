#pragma once
// The headline studies: Table I and Figure 1.
//
// `run_table1_study` trains/evaluates the full model zoo of the paper:
//
//   LLaMA-2-7B   (native)            AstroLLaMA-2-7B-AIC / -Abstract
//   LLaMA-3-8B   (native)            AstroLLaMA-3-8B-AIC / -Summary
//   LLaMA-2-70B  (native)            AstroLLaMA-2-70B-AIC
//
// Native rows use vendor-SFT instruct models; AstroLLaMA rows apply CPT on
// the shared astro-ph corpus variant followed by the inherited small SFT
// set — exactly the lineage in paper §III. The Abstract 7B row reports
// only the base-token score, matching the dashes in the paper's table.

#include <vector>

#include "core/experiment.hpp"
#include "eval/report.hpp"

namespace astromlab::core {

struct StudyRow {
  eval::ModelRow row;          ///< presentation data
  TripleScores scores;         ///< full summaries (CIs, tier breakdowns)
};

struct StudyResult {
  std::vector<StudyRow> rows;

  std::vector<eval::ModelRow> table_rows() const;
  const StudyRow* find(const std::string& name) const;
};

/// Runs (or loads from cache) the complete Table-I study.
StudyResult run_table1_study(Pipeline& pipeline);

/// Paper Table I reference values, for side-by-side comparison in
/// EXPERIMENTS.md and the bench output. Scores are percent; -1 = not
/// reported in the paper.
std::vector<eval::ModelRow> paper_reference_rows();

}  // namespace astromlab::core
