#pragma once
// End-to-end experiment pipeline: world construction, model training with
// on-disk caching, and cached benchmark evaluation.
//
// Every trained model and every evaluation result is keyed by a
// fingerprint of all inputs (world config + recipe + stage lineage), so
// re-running a bench binary reuses finished work. Cache location:
// $ASTROMLAB_CACHE, defaulting to ".astromlab_cache" in the working
// directory.

#include <filesystem>
#include <optional>
#include <string>

#include "core/model_zoo.hpp"
#include "core/recipes.hpp"
#include "corpus/mcq.hpp"
#include "eval/scorer.hpp"
#include "eval/supervisor.hpp"
#include "nn/gpt.hpp"
#include "nn/trainer.hpp"
#include "tokenizer/bpe.hpp"

namespace astromlab::core {

/// The shared synthetic universe every model in a study lives in.
struct World {
  WorldConfig config;
  corpus::KnowledgeBase kb;
  corpus::McqSplit mcqs;
  tokenizer::BpeTokenizer tok;
  std::uint64_t fingerprint = 0;
};

/// Generates the knowledge base, benchmark/practice questions and trains
/// the shared tokenizer.
World build_world(const WorldConfig& config);

/// Default cache directory ($ASTROMLAB_CACHE or ./.astromlab_cache).
std::filesystem::path default_cache_dir();

/// Scores of one model family under the three benchmarking methods.
struct TripleScores {
  eval::ScoreSummary full_instruct;
  eval::ScoreSummary token_instruct;
  eval::ScoreSummary token_base;
  bool has_instruct = false;  ///< false when only the base model was run
};

class Pipeline {
 public:
  Pipeline(World world, std::filesystem::path cache_dir = default_cache_dir());

  const World& world() const { return world_; }
  const std::filesystem::path& cache_dir() const { return cache_dir_; }

  /// Pretrained base model for a scale (trained or loaded from cache).
  nn::GptModel base_model(Scale scale);

  /// Base model + continual pretraining on the given astro-ph variant.
  nn::GptModel cpt_model(Scale scale, corpus::CptVariant variant);

  /// Instruct model: SFT applied to the base (cpt == nullopt) or to the
  /// CPT model.
  nn::GptModel instruct_model(Scale scale, std::optional<corpus::CptVariant> cpt,
                              SftKind sft);

  /// Token-method benchmark with result caching (`tag` names the model
  /// lineage for the cache key).
  eval::ScoreSummary token_benchmark(const nn::GptModel& model, const std::string& tag);

  /// Full-instruct benchmark with result caching.
  eval::ScoreSummary full_instruct_benchmark(const nn::GptModel& model,
                                             const std::string& tag);

  /// All three methods for one family. For `evaluate_instruct == false`
  /// only the base-token score is produced (the paper's
  /// AstroLLaMA-2-7B-Abstract row).
  TripleScores evaluate_family(Scale scale, std::optional<corpus::CptVariant> cpt,
                               SftKind sft, bool evaluate_instruct = true);

  /// Clears cached results (models stay) — used by ablations that reuse
  /// models but need fresh evaluation settings.
  void invalidate_results();

  /// Overrides for ablation benches; call before building models.
  void set_sft_spec_override(const corpus::SftSpec& spec);
  void clear_sft_spec_override();

  /// Training snapshot cadence for crash-safe resume (steps between
  /// snapshots; 0 disables durability). Default 25.
  void set_save_every(std::size_t steps) { save_every_ = steps; }
  std::size_t save_every() const { return save_every_; }

  /// Wall-clock watchdog per benchmark question (seconds; 0 disables).
  /// Applies to the full-instruct generation loop and, via in-flight
  /// cancellation, to the token methods' prompt feed.
  void set_question_budget_seconds(double seconds) { question_budget_seconds_ = seconds; }

  /// Supervisor knobs for both benchmark runners: worker count,
  /// per-question deadline, retry policy, straggler cancellation. The
  /// defaults (serial, no deadline) reproduce the reference behaviour;
  /// any worker count yields bit-identical scores and journals.
  void set_eval_options(const eval::EvalRunOptions& options) { eval_options_ = options; }
  const eval::EvalRunOptions& eval_options() const { return eval_options_; }

 private:
  std::string model_tag(Scale scale, std::optional<corpus::CptVariant> cpt,
                        std::optional<SftKind> sft) const;
  std::uint64_t model_key(Scale scale, std::optional<corpus::CptVariant> cpt,
                          std::optional<SftKind> sft) const;
  nn::GptModel train_or_load(std::uint64_t key, const std::string& tag,
                             const std::function<nn::GptModel(const nn::DurabilityConfig&)>& build);
  /// Snapshot/resume paths for the training run cached under `key`.
  nn::DurabilityConfig durability_for(std::uint64_t key) const;
  std::optional<eval::ScoreSummary> load_result(std::uint64_t key) const;
  void store_result(std::uint64_t key, const eval::ScoreSummary& summary) const;

  World world_;
  std::filesystem::path cache_dir_;
  std::optional<corpus::SftSpec> sft_override_;
  std::size_t save_every_ = 25;
  double question_budget_seconds_ = 30.0;
  eval::EvalRunOptions eval_options_;
};

}  // namespace astromlab::core
