#include "core/experiment.hpp"

#include <cstdlib>
#include <functional>

#include "eval/full_instruct.hpp"
#include "eval/journal.hpp"
#include "eval/token_method.hpp"
#include "json/json.hpp"
#include "nn/checkpoint.hpp"
#include "nn/data.hpp"
#include "nn/trainer.hpp"
#include "util/io.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"
#include "util/string_utils.hpp"

namespace astromlab::core {

namespace fs = std::filesystem;

World build_world(const WorldConfig& config) {
  World world;
  world.config = config;
  world.kb = corpus::KnowledgeBase::generate(config.kb);
  world.mcqs = corpus::generate_mcqs(world.kb, config.mcq);

  const std::string tokenizer_text = corpus::build_tokenizer_training_text(
      world.kb, world.mcqs.practice, config.seed + 40);
  tokenizer::BpeTrainConfig tok_config;
  tok_config.vocab_size = config.vocab_size;
  world.tok = tokenizer::BpeTokenizer::train(tokenizer_text, tok_config);

  util::HashBuilder h;
  config.add_to_hash(h);
  world.fingerprint = h.digest();
  log::info() << "world: " << world.kb.facts().size() << " facts, "
              << world.mcqs.benchmark.size() << " benchmark MCQs, "
              << world.mcqs.practice.size() << " practice MCQs, vocab "
              << world.tok.vocab_size();
  return world;
}

fs::path default_cache_dir() {
  if (const char* env = std::getenv("ASTROMLAB_CACHE")) return fs::path(env);
  return fs::path(".astromlab_cache");
}

namespace {

json::Value summary_to_json(const eval::ScoreSummary& s) {
  json::Value obj = json::Value::object();
  obj.set("total", json::Value(static_cast<std::int64_t>(s.total)));
  obj.set("correct", json::Value(static_cast<std::int64_t>(s.correct)));
  obj.set("accuracy", json::Value(s.accuracy));
  obj.set("ci_low", json::Value(s.ci_low));
  obj.set("ci_high", json::Value(s.ci_high));
  obj.set("canonical_accuracy", json::Value(s.canonical_accuracy));
  obj.set("canonical_total", json::Value(static_cast<std::int64_t>(s.canonical_total)));
  obj.set("frontier_accuracy", json::Value(s.frontier_accuracy));
  obj.set("frontier_total", json::Value(static_cast<std::int64_t>(s.frontier_total)));
  obj.set("unanswered", json::Value(static_cast<std::int64_t>(s.unanswered)));
  obj.set("answered_accuracy", json::Value(s.answered_accuracy));
  obj.set("json_extractions", json::Value(static_cast<std::int64_t>(s.json_extractions)));
  obj.set("regex_extractions", json::Value(static_cast<std::int64_t>(s.regex_extractions)));
  obj.set("interpreter_extractions",
          json::Value(static_cast<std::int64_t>(s.interpreter_extractions)));
  obj.set("degraded", json::Value(static_cast<std::int64_t>(s.degraded)));
  obj.set("shed", json::Value(static_cast<std::int64_t>(s.shed)));
  obj.set("cache_evictions", json::Value(static_cast<std::int64_t>(s.cache_evictions)));
  obj.set("retried", json::Value(static_cast<std::int64_t>(s.retried)));
  // Latency persists in the result cache so a cache-hit summary still
  // reports the timing of the run that actually produced it.
  obj.set("timed_questions", json::Value(static_cast<std::int64_t>(s.timed_questions)));
  obj.set("latency_p50_s", json::Value(s.latency_p50_s));
  obj.set("latency_p95_s", json::Value(s.latency_p95_s));
  obj.set("latency_p99_s", json::Value(s.latency_p99_s));
  return obj;
}

eval::ScoreSummary summary_from_json(const json::Value& obj) {
  eval::ScoreSummary s;
  s.total = static_cast<std::size_t>(obj.get_number("total", 0));
  s.correct = static_cast<std::size_t>(obj.get_number("correct", 0));
  s.accuracy = obj.get_number("accuracy", 0);
  s.ci_low = obj.get_number("ci_low", 0);
  s.ci_high = obj.get_number("ci_high", 0);
  s.canonical_accuracy = obj.get_number("canonical_accuracy", 0);
  s.canonical_total = static_cast<std::size_t>(obj.get_number("canonical_total", 0));
  s.frontier_accuracy = obj.get_number("frontier_accuracy", 0);
  s.frontier_total = static_cast<std::size_t>(obj.get_number("frontier_total", 0));
  s.unanswered = static_cast<std::size_t>(obj.get_number("unanswered", 0));
  s.answered_accuracy = obj.get_number("answered_accuracy", 0);
  s.json_extractions = static_cast<std::size_t>(obj.get_number("json_extractions", 0));
  s.regex_extractions = static_cast<std::size_t>(obj.get_number("regex_extractions", 0));
  s.interpreter_extractions =
      static_cast<std::size_t>(obj.get_number("interpreter_extractions", 0));
  s.degraded = static_cast<std::size_t>(obj.get_number("degraded", 0));
  s.shed = static_cast<std::size_t>(obj.get_number("shed", 0));
  s.cache_evictions = static_cast<std::size_t>(obj.get_number("cache_evictions", 0));
  s.retried = static_cast<std::size_t>(obj.get_number("retried", 0));
  s.timed_questions = static_cast<std::size_t>(obj.get_number("timed_questions", 0));
  s.latency_p50_s = obj.get_number("latency_p50_s", 0);
  s.latency_p95_s = obj.get_number("latency_p95_s", 0);
  s.latency_p99_s = obj.get_number("latency_p99_s", 0);
  return s;
}

std::vector<nn::Token> encode_stream(const tokenizer::BpeTokenizer& tok,
                                     const std::string& text) {
  const std::vector<tokenizer::TokenId> ids = tok.encode(text);
  return {ids.begin(), ids.end()};
}

}  // namespace

Pipeline::Pipeline(World world, fs::path cache_dir)
    : world_(std::move(world)), cache_dir_(std::move(cache_dir)) {
  std::error_code ec;
  fs::create_directories(cache_dir_ / "models", ec);
  fs::create_directories(cache_dir_ / "results", ec);
}

std::string Pipeline::model_tag(Scale scale, std::optional<corpus::CptVariant> cpt,
                                std::optional<SftKind> sft) const {
  std::string tag = scale_name(scale);
  if (cpt) tag += std::string("-cpt") + corpus::cpt_variant_name(*cpt);
  if (sft) tag += std::string("-sft_") + sft_kind_name(*sft);
  return tag;
}

std::uint64_t Pipeline::model_key(Scale scale, std::optional<corpus::CptVariant> cpt,
                                  std::optional<SftKind> sft) const {
  util::HashBuilder h;
  h.add_u64(world_.fingerprint);
  const ScaleSpec spec = scale_spec(scale, world_.config);
  spec.add_to_hash(h);
  if (cpt) {
    const corpus::CptSpec cs = cpt_corpus_spec(*cpt, world_.config);
    h.add("cpt").add_u64(static_cast<std::uint64_t>(cs.variant));
    h.add_f64(cs.debris_rate).add_f64(cs.ocr_noise_rate);
    h.add_u64(cs.passes).add_u64(cs.papers_per_topic).add_u64(cs.seed);
    const nn::TrainConfig tc = cpt_recipe(scale, world_.config);
    h.add_f64(tc.lr).add_f64(tc.epochs).add_u64(tc.seq_len);
  }
  if (sft) {
    const corpus::SftSpec ss =
        sft_override_ ? *sft_override_ : sft_data_spec(*sft, world_.config);
    h.add("sft").add_u64(static_cast<std::uint64_t>(*sft));
    h.add_u64(ss.total_dialogues).add_f64(ss.astro_fraction);
    h.add_f64(ss.general_mcq_share).add_u64(ss.seed);
    const nn::TrainConfig tc = sft_recipe(scale, *sft, world_.config);
    h.add_f64(tc.lr).add_f64(tc.epochs).add_u64(tc.seq_len);
  }
  return h.digest();
}

nn::DurabilityConfig Pipeline::durability_for(std::uint64_t key) const {
  nn::DurabilityConfig durability;
  durability.save_every = save_every_;
  durability.state_path = cache_dir_ / "models" / (util::to_hex(key) + ".state");
  durability.model_path = cache_dir_ / "models" / (util::to_hex(key) + ".resume.ckpt");
  return durability;
}

nn::GptModel Pipeline::train_or_load(
    std::uint64_t key, const std::string& tag,
    const std::function<nn::GptModel(const nn::DurabilityConfig&)>& build) {
  const fs::path path = cache_dir_ / "models" / (util::to_hex(key) + ".ckpt");
  if (fs::exists(path)) {
    try {
      nn::GptModel model = nn::load_checkpoint(path);
      log::info() << "cache hit: model " << tag;
      return model;
    } catch (const util::IoError& e) {
      // A corrupt cache entry (torn legacy write, bit rot) must trigger a
      // retrain, not kill the study.
      log::warn() << "discarding corrupt cached model " << path.string() << ": "
                  << e.what();
      std::error_code ec;
      fs::remove(path, ec);
    }
  }
  log::info() << "training model " << tag << " ...";
  util::Stopwatch watch;
  nn::GptModel model = build(durability_for(key));
  // Checkpoints are stored bf16 (the paper's training precision); both the
  // fresh and cached paths return the reloaded weights so results are
  // bit-identical regardless of cache state.
  nn::save_checkpoint(model, path, nn::CheckpointPrecision::kBf16);
  log::info() << "trained " << tag << " in " << util::format_fixed(watch.seconds(), 1)
              << "s (" << model.config().describe() << ")";
  return nn::load_checkpoint(path);
}

nn::GptModel Pipeline::base_model(Scale scale) {
  const std::uint64_t key = model_key(scale, std::nullopt, std::nullopt);
  return train_or_load(key, model_tag(scale, std::nullopt, std::nullopt),
                       [&](const nn::DurabilityConfig& durability) {
    const ScaleSpec spec = scale_spec(scale, world_.config);
    const std::string text =
        corpus::build_pretrain_corpus(world_.kb, world_.mcqs.practice, spec.pretrain);
    nn::StreamDataset data(encode_stream(world_.tok, text));
    log::info() << "pretrain corpus for " << scale_name(scale) << ": " << data.size()
                << " tokens";
    nn::GptModel model(spec.arch);
    util::Rng rng(key ^ 0x1234);
    model.init_weights(rng);
    nn::Trainer trainer(model, spec.pretrain_train);
    util::Rng train_rng(key ^ 0x5678);
    trainer.train(data, train_rng, durability);
    return model;
  });
}

nn::GptModel Pipeline::cpt_model(Scale scale, corpus::CptVariant variant) {
  const std::uint64_t key = model_key(scale, variant, std::nullopt);
  return train_or_load(key, model_tag(scale, variant, std::nullopt),
                       [&](const nn::DurabilityConfig& durability) {
    nn::GptModel model = base_model(scale);
    const corpus::CptSpec cs = cpt_corpus_spec(variant, world_.config);
    const std::string text = corpus::build_cpt_corpus(world_.kb, cs);
    nn::StreamDataset data(encode_stream(world_.tok, text));
    log::info() << "CPT corpus (" << corpus::cpt_variant_name(variant)
                << "): " << data.size() << " tokens";
    nn::Trainer trainer(model, cpt_recipe(scale, world_.config));
    util::Rng train_rng(key ^ 0x9abc);
    trainer.train(data, train_rng, durability);
    return model;
  });
}

nn::GptModel Pipeline::instruct_model(Scale scale, std::optional<corpus::CptVariant> cpt,
                                      SftKind sft) {
  const std::uint64_t key = model_key(scale, cpt, sft);
  return train_or_load(key, model_tag(scale, cpt, sft),
                       [&](const nn::DurabilityConfig& durability) {
    nn::GptModel model = cpt ? cpt_model(scale, *cpt) : base_model(scale);
    const corpus::SftSpec spec =
        sft_override_ ? *sft_override_ : sft_data_spec(sft, world_.config);
    const std::vector<corpus::Dialogue> dialogues =
        corpus::build_sft_dialogues(world_.kb, world_.mcqs.practice, spec);
    const std::vector<nn::MaskedExample> examples =
        corpus::to_masked_examples(dialogues, world_.tok);
    nn::MaskedExampleDataset data(examples, world_.tok.pad_id());
    log::info() << "SFT set (" << sft_kind_name(sft) << "): " << dialogues.size()
                << " dialogues, " << data.epoch_tokens() << " tokens";
    nn::Trainer trainer(model, sft_recipe(scale, sft, world_.config));
    util::Rng train_rng(key ^ 0xdef0);
    trainer.train(data, train_rng, durability);
    return model;
  });
}

std::optional<eval::ScoreSummary> Pipeline::load_result(std::uint64_t key) const {
  const fs::path path = cache_dir_ / "results" / (util::to_hex(key) + ".json");
  if (!fs::exists(path)) return std::nullopt;
  try {
    return summary_from_json(json::parse(util::read_text_file(path)));
  } catch (const std::exception& e) {
    log::warn() << "ignoring corrupt result cache " << path.string() << ": " << e.what();
    return std::nullopt;
  }
}

void Pipeline::store_result(std::uint64_t key, const eval::ScoreSummary& summary) const {
  const fs::path path = cache_dir_ / "results" / (util::to_hex(key) + ".json");
  util::write_text_file(path, summary_to_json(summary).dump(2));
}

eval::ScoreSummary Pipeline::token_benchmark(const nn::GptModel& model,
                                             const std::string& tag) {
  util::HashBuilder h;
  h.add_u64(world_.fingerprint).add("token").add(tag);
  const std::uint64_t key = h.digest();
  if (auto cached = load_result(key)) {
    log::info() << "cache hit: token benchmark " << tag;
    return *cached;
  }
  log::info() << "token benchmark: " << tag;
  // Per-question journal: a killed run resumes from the answered prefix
  // and still produces the identical summary.
  // The per-question wall-clock budget applies to the token methods too:
  // their cost is the KV-cache prompt feed, cancelled in-flight on expiry.
  eval::TokenMethodConfig config;
  config.max_seconds_per_question = question_budget_seconds_;
  eval::EvalJournal journal(cache_dir_ / "results" / (util::to_hex(key) + ".jsonl"));
  eval::SupervisorStats run_stats;
  const auto results = eval::run_token_benchmark(
      model, world_.tok, world_.mcqs.benchmark, world_.mcqs.practice, &journal, config,
      eval_options_, nullptr, &run_stats);
  eval::ScoreSummary summary = eval::summarize(results);
  summary.cache_evictions = run_stats.cache_evictions;
  summary.timed_questions = run_stats.completed_questions;
  summary.latency_p50_s = run_stats.latency_p50_s;
  summary.latency_p95_s = run_stats.latency_p95_s;
  summary.latency_p99_s = run_stats.latency_p99_s;
  store_result(key, summary);
  journal.discard();
  return summary;
}

eval::ScoreSummary Pipeline::full_instruct_benchmark(const nn::GptModel& model,
                                                     const std::string& tag) {
  util::HashBuilder h;
  h.add_u64(world_.fingerprint).add("full_instruct").add(tag);
  const std::uint64_t key = h.digest();
  if (auto cached = load_result(key)) {
    log::info() << "cache hit: full-instruct benchmark " << tag;
    return *cached;
  }
  log::info() << "full-instruct benchmark: " << tag;
  eval::FullInstructConfig config;
  config.max_seconds_per_question = question_budget_seconds_;
  eval::EvalJournal journal(cache_dir_ / "results" / (util::to_hex(key) + ".jsonl"));
  eval::SupervisorStats run_stats;
  const auto results = eval::run_full_instruct_benchmark(
      model, world_.tok, world_.mcqs.benchmark, config, &journal, eval_options_, nullptr,
      &run_stats);
  eval::ScoreSummary summary = eval::summarize(results);
  summary.cache_evictions = run_stats.cache_evictions;
  summary.timed_questions = run_stats.completed_questions;
  summary.latency_p50_s = run_stats.latency_p50_s;
  summary.latency_p95_s = run_stats.latency_p95_s;
  summary.latency_p99_s = run_stats.latency_p99_s;
  store_result(key, summary);
  journal.discard();
  return summary;
}

TripleScores Pipeline::evaluate_family(Scale scale, std::optional<corpus::CptVariant> cpt,
                                       SftKind sft, bool evaluate_instruct) {
  TripleScores scores;
  {
    const nn::GptModel model = cpt ? cpt_model(scale, *cpt) : base_model(scale);
    const std::string tag = model_tag(scale, cpt, std::nullopt) +
                            (sft_override_ ? "+override" + std::to_string(model_key(scale, cpt, sft)) : "");
    scores.token_base = token_benchmark(model, tag);
  }
  if (evaluate_instruct) {
    const nn::GptModel model = instruct_model(scale, cpt, sft);
    const std::string tag = model_tag(scale, cpt, sft) +
                            (sft_override_ ? "+k" + util::to_hex(model_key(scale, cpt, sft)) : "");
    scores.token_instruct = token_benchmark(model, tag);
    scores.full_instruct = full_instruct_benchmark(model, tag);
    scores.has_instruct = true;
  }
  return scores;
}

void Pipeline::invalidate_results() {
  std::error_code ec;
  fs::remove_all(cache_dir_ / "results", ec);
  fs::create_directories(cache_dir_ / "results", ec);
}

void Pipeline::set_sft_spec_override(const corpus::SftSpec& spec) { sft_override_ = spec; }
void Pipeline::clear_sft_spec_override() { sft_override_.reset(); }

}  // namespace astromlab::core
