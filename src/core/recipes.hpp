#pragma once
// Continual-pretraining and SFT recipes (paper §III).
//
// Structure mirrors the paper:
//  * CPT — one epoch over the astro-ph corpus variant, cosine decay with
//    3% warmup. The paper uses lr 2e-5 at 8B/70B scale; tiny models need
//    proportionally larger rates, but the *ratio* CPT-lr : SFT-lr (~60x)
//    is preserved, which is what drives the observed dynamics.
//  * SFT — one epoch over the dialogue set at a much smaller lr.
//
// CPT corpus variants are shared across scales ("we applied the same
// dataset as [28] for direct comparison") — the per-scale outcome
// differences must come from capacity and pretraining quality, exactly as
// in the paper.

#include "core/model_zoo.hpp"
#include "corpus/corpora.hpp"
#include "corpus/sft_dataset.hpp"
#include "nn/trainer.hpp"

namespace astromlab::core {

/// Which SFT data a model is tuned on (see corpus/sft_dataset.hpp).
enum class SftKind {
  kVendor,      ///< official-instruct analog (large, balanced)
  kAstroLLaMA,  ///< the small astro-light set inherited from [28]
};

const char* sft_kind_name(SftKind kind);

/// The shared astro-ph CPT corpus spec for a variant.
corpus::CptSpec cpt_corpus_spec(corpus::CptVariant variant, const WorldConfig& world);

/// CPT optimisation recipe for a scale.
nn::TrainConfig cpt_recipe(Scale scale, const WorldConfig& world);

/// SFT dialogue spec for a kind.
corpus::SftSpec sft_data_spec(SftKind kind, const WorldConfig& world);

/// SFT optimisation recipe. The AstroLLaMA kind follows the paper's small
/// single-epoch recipe; the vendor kind models the far heavier official
/// instruction tuning behind the LLaMA instruct baselines.
nn::TrainConfig sft_recipe(Scale scale, SftKind kind, const WorldConfig& world);

}  // namespace astromlab::core
