#include "core/cost_model.hpp"

#include "util/string_utils.hpp"

namespace astromlab::core {

double GpuCostModel::train_gpu_hours(double params, double tokens) const {
  const double flops = 6.0 * params * tokens;
  const double flops_per_hour = a100_peak_bf16_tflops * 1e12 * train_mfu * 3600.0;
  return flops / flops_per_hour;
}

double GpuCostModel::inference_gpu_hours(double params, double tokens) const {
  const double flops = 2.0 * params * tokens;
  const double flops_per_hour = a100_peak_bf16_tflops * 1e12 * decode_mfu * 3600.0;
  return flops / flops_per_hour;
}

std::vector<CostRow> reproduce_paper_costs(const GpuCostModel& model) {
  std::vector<CostRow> rows;
  constexpr double k8B = 8e9;
  constexpr double k70B = 70e9;

  // AIC corpus: ~300k astro-ph papers, abstract+intro+conclusion. At the
  // 8B run's 512-token window the effective dataset is ~0.3B tokens; the
  // 70B run used 2048-token windows over the same sources (~1.2B tokens).
  rows.push_back({"CPT 8B (AIC)", k8B, 0.30e9,
                  model.train_gpu_hours(k8B, 0.30e9), 32.0});
  rows.push_back({"CPT 70B (AIC)", k70B, 1.2e9,
                  model.train_gpu_hours(k70B, 1.2e9), 2000.0});

  // SFT: ~30k dialogues x ~2k tokens ~ 0.06B tokens.
  rows.push_back({"SFT 8B", k8B, 0.06e9, model.train_gpu_hours(k8B, 0.06e9), 12.0});
  rows.push_back({"SFT 70B", k70B, 0.06e9, model.train_gpu_hours(k70B, 0.06e9), 100.0});

  // Full-instruct inference: 4,425 MCQs x (prompt ~600 + output <= 512).
  rows.push_back({"Inference 70B (4425 MCQs)", k70B, 4425.0 * 1100.0,
                  model.inference_gpu_hours(k70B, 4425.0 * 1100.0), 64.0});

  // §VII extrapolations: full-text astro-ph and beyond.
  rows.push_back({"CPT 70B full-text (extrapolation)", k70B, 10e9,
                  model.train_gpu_hours(k70B, 10e9), 0.0});
  rows.push_back({"CPT 70B curated corpus (extrapolation)", k70B, 100e9,
                  model.train_gpu_hours(k70B, 100e9), 0.0});
  return rows;
}

std::string render_cost_table(const std::vector<CostRow>& rows) {
  using util::format_fixed;
  using util::pad_left;
  using util::pad_right;
  std::string out;
  out += "GPU-HOUR COST MODEL vs PAPER-REPORTED FIGURES (A100 hours)\n";
  out += pad_right("Stage", 40) + pad_left("Params", 9) + pad_left("Tokens", 10) +
         pad_left("Predicted", 12) + pad_left("Reported", 11) + "\n";
  out += std::string(82, '-') + "\n";
  for (const CostRow& row : rows) {
    out += pad_right(row.stage, 40);
    out += pad_left(format_fixed(row.params / 1e9, 0) + "B", 9);
    out += pad_left(format_fixed(row.tokens / 1e9, 2) + "B", 10);
    out += pad_left(format_fixed(row.predicted_hours, 1), 12);
    out += pad_left(row.reported_hours > 0.0 ? format_fixed(row.reported_hours, 0) : "-", 11);
    out += "\n";
  }
  return out;
}

}  // namespace astromlab::core
