#pragma once
// Analytic GPU-hour cost model (paper §III cost paragraph and the §VII
// O(10^3)–O(10^5) extrapolations).
//
// Training cost uses the standard 6·N·D FLOPs-per-token rule; inference is
// modelled as 2·N·D with a much lower effective utilisation (decode is
// memory-bound). The defaults are calibrated so the model reproduces the
// paper's reported A100-hour figures to within their own rounding.

#include <string>
#include <vector>

namespace astromlab::core {

struct GpuCostModel {
  double a100_peak_bf16_tflops = 312.0;  ///< A100 dense bf16 peak
  double train_mfu = 0.38;               ///< LMFlow-era large-model training
  double decode_mfu = 0.010;             ///< autoregressive decode utilisation

  /// A100-hours to train `params` parameters on `tokens` tokens.
  double train_gpu_hours(double params, double tokens) const;

  /// A100-hours to run prompt+decode over `tokens` total tokens.
  double inference_gpu_hours(double params, double tokens) const;
};

/// One row of the paper-vs-model cost comparison.
struct CostRow {
  std::string stage;        ///< e.g. "CPT 70B"
  double params = 0.0;      ///< model parameters
  double tokens = 0.0;      ///< assumed token count
  double predicted_hours = 0.0;
  double reported_hours = 0.0;  ///< paper figure (0 = extrapolation row)
};

/// Reproduces every cost the paper reports (CPT/SFT/inference at 8B and
/// 70B) plus the §VII full-text extrapolations.
std::vector<CostRow> reproduce_paper_costs(const GpuCostModel& model = {});

/// Pretty table for bench output.
std::string render_cost_table(const std::vector<CostRow>& rows);

}  // namespace astromlab::core
