#pragma once
// Score→value extrapolation (paper §VI, after Ting et al. 2024).
//
// The paper argues that on the current score/price trade-off of
// proprietary models, an improvement of ~3.5 benchmark points corresponds
// to roughly a 10x cost-efficiency gain, making the 70B model's +2.1-point
// CPT gain "quite notable". This module encodes that log-linear mapping
// and the flagship comparison list from the same section.

#include <string>
#include <vector>

namespace astromlab::core {

struct ValueModel {
  /// Points of benchmark score per decade of cost-efficiency.
  double points_per_decade = 3.5;

  /// Cost-efficiency multiplier implied by a score gain.
  double cost_efficiency_factor(double score_gain_points) const;

  /// The gain expressed as a fraction of a reference gain (the paper
  /// compares 2.1 points to the Haiku→Sonnet / 4o-mini→4o gaps).
  double fraction_of(double score_gain_points, double reference_gain_points) const;
};

struct FlagshipScore {
  std::string name;
  double score = 0.0;  ///< percent
};

/// Flagship full-instruct scores quoted in §VI.
std::vector<FlagshipScore> paper_flagship_scores();

/// Model-pair gaps the paper uses as yardsticks ("Claude-Haiku to
/// Claude-Sonnet", "GPT-4o-mini to GPT-4o"): ~3 points each.
double paper_reference_tier_gap();

/// Pretty summary of the value analysis for a measured gain.
std::string render_value_analysis(double measured_gain_points,
                                  double astro_llama_70b_score,
                                  const ValueModel& model = {});

}  // namespace astromlab::core
