#include "core/model_zoo.hpp"

#include <algorithm>
#include <stdexcept>

namespace astromlab::core {

const char* scale_name(Scale scale) {
  switch (scale) {
    case Scale::kS7: return "S7";
    case Scale::kS8: return "S8";
    case Scale::kS70: return "S70";
  }
  return "?";
}

const char* scale_paper_name(Scale scale) {
  switch (scale) {
    case Scale::kS7: return "LLaMA-2-7B";
    case Scale::kS8: return "LLaMA-3-8B";
    case Scale::kS70: return "LLaMA-2-70B";
  }
  return "?";
}

const char* scale_astro_name(Scale scale) {
  switch (scale) {
    case Scale::kS7: return "AstroLLaMA-2-7B";
    case Scale::kS8: return "AstroLLaMA-3-8B";
    case Scale::kS70: return "AstroLLaMA-2-70B";
  }
  return "?";
}

void WorldConfig::add_to_hash(util::HashBuilder& h) const {
  h.add_u64(kb.n_topics).add_u64(kb.entities_per_topic).add_u64(kb.facts_per_entity);
  h.add_f64(kb.frontier_fraction).add_u64(kb.seed);
  h.add_u64(mcq.questions_per_topic).add_u64(mcq.seed);
  h.add_u64(vocab_size).add_u64(ctx_len).add_f64(size_multiplier).add_u64(seed);
}

void ScaleSpec::add_to_hash(util::HashBuilder& h) const {
  h.add_u64(static_cast<std::uint64_t>(scale));
  arch.add_to_hash(h);
  h.add_f64(pretrain.canonical_coverage).add_u64(pretrain.fact_repetitions);
  h.add_u64(pretrain.general_fact_count).add_u64(pretrain.general_fact_repetitions);
  h.add_u64(pretrain.filler_paragraphs).add_u64(pretrain.practice_exam_blocks);
  h.add_u64(pretrain.seed);
  h.add_f64(pretrain_train.lr).add_f64(pretrain_train.epochs);
  h.add_u64(pretrain_train.micro_batch).add_u64(pretrain_train.seq_len);
}

ScaleSpec scale_spec(Scale scale, const WorldConfig& world) {
  ScaleSpec spec;
  spec.scale = scale;

  nn::GptConfig& arch = spec.arch;
  arch.vocab_size = world.vocab_size;
  arch.ctx_len = world.ctx_len;
  switch (scale) {
    case Scale::kS7:
      arch.d_model = 40;
      arch.n_heads = 4;
      arch.n_layers = 2;
      arch.d_ff = 160;
      break;
    case Scale::kS8:
      arch.d_model = 56;
      arch.n_heads = 4;
      arch.n_layers = 3;
      arch.d_ff = 224;
      break;
    case Scale::kS70:
      arch.d_model = 80;
      arch.n_heads = 8;
      arch.n_layers = 4;
      arch.d_ff = 320;
      break;
  }
  arch.validate();

  // Pretraining corpus quality per family — the data-regime analog of the
  // real checkpoints (see header comment).
  corpus::PretrainSpec& pre = spec.pretrain;
  const double mult = std::max(world.size_multiplier, 0.01);
  switch (scale) {
    case Scale::kS7:
      pre.canonical_coverage = 0.55;
      pre.fact_repetitions = 3;
      pre.seed = world.seed + 101;
      break;
    case Scale::kS8:
      pre.canonical_coverage = 0.92;
      pre.fact_repetitions = 6;
      pre.seed = world.seed + 202;
      break;
    case Scale::kS70:
      pre.canonical_coverage = 0.95;
      pre.fact_repetitions = 6;
      pre.seed = world.seed + 303;
      break;
  }
  pre.general_fact_count = static_cast<std::size_t>(100 * mult) + 8;
  pre.general_fact_repetitions = 3;
  pre.filler_paragraphs = static_cast<std::size_t>(350 * mult) + 10;
  pre.practice_exam_blocks = static_cast<std::size_t>(150 * mult) + 6;
  pre.chat_warmup_dialogues = static_cast<std::size_t>(60 * mult) + 4;

  // Optimisation recipe: the paper's structure (cosine decay, 3% warmup,
  // one-ish epoch) with learning rates scaled to tiny-model widths.
  nn::TrainConfig& train = spec.pretrain_train;
  train.micro_batch = 8;
  train.grad_accum = 1;
  train.seq_len = world.ctx_len;
  train.warmup_ratio = 0.03;
  train.min_lr_ratio = 0.1;
  train.weight_decay = 0.01f;
  train.clip_norm = 1.0f;
  switch (scale) {
    case Scale::kS7:
      train.lr = 3e-3f;
      train.epochs = 2.0;
      break;
    case Scale::kS8:
      train.lr = 2.5e-3f;
      train.epochs = 3.0;
      break;
    case Scale::kS70:
      train.lr = 2e-3f;
      train.epochs = 3.0;
      break;
  }
  return spec;
}

}  // namespace astromlab::core
