#pragma once
// Minimal JSON value, parser and serialiser.
//
// The full-instruct benchmarking method (paper Appendix B) requires models
// to answer in JSON (`{"ANSWER": ..., "EXPLANATION": ...}`) and the answer
// extractor must parse potentially malformed model output. This module
// implements a strict RFC 8259 parser used both for that extraction path
// and for experiment result caches. Numbers are stored as double; object
// member order is preserved (important for stable cache files).

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace astromlab::json {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, std::size_t offset)
      : std::runtime_error(message + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

class Value;
using Member = std::pair<std::string, Value>;

/// JSON value with order-preserving objects.
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : type_(Type::kNull) {}
  Value(std::nullptr_t) : type_(Type::kNull) {}
  Value(bool b) : type_(Type::kBool), bool_(b) {}
  Value(double d) : type_(Type::kNumber), number_(d) {}
  Value(int i) : type_(Type::kNumber), number_(i) {}
  Value(std::int64_t i) : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  Value(const char* s) : type_(Type::kString), string_(s) {}
  Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}

  static Value array() {
    Value v;
    v.type_ = Type::kArray;
    return v;
  }
  static Value object() {
    Value v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<Value>& items() const { return items_; }
  const std::vector<Member>& members() const { return members_; }

  /// Array append.
  void push_back(Value v) { items_.push_back(std::move(v)); }

  /// Object set (replaces existing key, preserving position).
  void set(const std::string& key, Value v);

  /// Object lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;

  /// Typed lookups with fallbacks (objects only).
  std::string get_string(std::string_view key, const std::string& fallback) const;
  double get_number(std::string_view key, double fallback) const;
  bool get_bool(std::string_view key, bool fallback) const;

  /// Serialises; `indent` < 0 means compact single-line output.
  std::string dump(int indent = -1) const;

  bool operator==(const Value& other) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<Member> members_;
};

/// Parses a complete document; trailing non-whitespace raises ParseError.
Value parse(std::string_view text);

/// Parses the first JSON value found at `offset`, advancing it past the
/// value. Used by the answer extractor to pull a JSON object out of
/// surrounding chatter.
Value parse_prefix(std::string_view text, std::size_t& offset);

/// Escapes a string for embedding in JSON output.
std::string escape(std::string_view text);

}  // namespace astromlab::json
