#include "json/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace astromlab::json {

void Value::set(const std::string& key, Value v) {
  for (auto& member : members_) {
    if (member.first == key) {
      member.second = std::move(v);
      return;
    }
  }
  members_.emplace_back(key, std::move(v));
}

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

std::string Value::get_string(std::string_view key, const std::string& fallback) const {
  const Value* v = find(key);
  return (v && v->is_string()) ? v->as_string() : fallback;
}

double Value::get_number(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return (v && v->is_number()) ? v->as_number() : fallback;
}

bool Value::get_bool(std::string_view key, bool fallback) const {
  const Value* v = find(key);
  return (v && v->is_bool()) ? v->as_bool() : fallback;
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return number_ == other.number_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return items_ == other.items_;
    case Type::kObject: return members_ == other.members_;
  }
  return false;
}

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void append_number(std::string& out, double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%lld", static_cast<long long>(value));
    out += buffer;
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  out += buffer;
}

void append_indent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Value::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kNumber: append_number(out, number_); return;
    case Type::kString:
      out += '"';
      out += escape(string_);
      out += '"';
      return;
    case Type::kArray: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        if (indent >= 0) append_indent(out, indent, depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      if (indent >= 0) append_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        if (indent >= 0) append_indent(out, indent, depth + 1);
        out += '"';
        out += escape(members_[i].first);
        out += indent >= 0 ? "\": " : "\":";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      if (indent >= 0) append_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

  Value parse_value() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't': expect_literal("true"); return Value(true);
      case 'f': expect_literal("false"); return Value(false);
      case 'n': expect_literal("null"); return Value(nullptr);
      default: return parse_number();
    }
  }

  std::size_t position() const { return pos_; }
  void set_position(std::size_t pos) { pos_ = pos; }

 private:
  [[noreturn]] void fail(const std::string& message) { throw ParseError(message, pos_); }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  void expect_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) fail("invalid literal");
    pos_ += literal.size();
  }

  char consume() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }

  Value parse_object() {
    Value obj = Value::object();
    ++pos_;  // '{'
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_whitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') fail("expected object key");
      std::string key = parse_string();
      skip_whitespace();
      if (consume() != ':') fail("expected ':'");
      obj.set(key, parse_value());
      skip_whitespace();
      const char c = consume();
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  Value parse_array() {
    Value arr = Value::array();
    ++pos_;  // '['
    skip_whitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_whitespace();
      const char c = consume();
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  void append_utf8(std::string& out, unsigned code_point) {
    if (code_point < 0x80) {
      out += static_cast<char>(code_point);
    } else if (code_point < 0x800) {
      out += static_cast<char>(0xC0 | (code_point >> 6));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else if (code_point < 0x10000) {
      out += static_cast<char>(0xE0 | (code_point >> 12));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code_point >> 18));
      out += static_cast<char>(0x80 | ((code_point >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = consume();
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    return value;
  }

  std::string parse_string() {
    ++pos_;  // '"'
    std::string out;
    for (;;) {
      const char c = consume();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = consume();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code_point = parse_hex4();
          if (code_point >= 0xD800 && code_point <= 0xDBFF) {
            // Surrogate pair.
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
              pos_ += 2;
              const unsigned low = parse_hex4();
              if (low >= 0xDC00 && low <= 0xDFFF) {
                code_point = 0x10000 + ((code_point - 0xD800) << 10) + (low - 0xDC00);
              } else {
                fail("invalid low surrogate");
              }
            } else {
              fail("unpaired high surrogate");
            }
          }
          append_utf8(out, code_point);
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool has_digits = false;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      has_digits = true;
    }
    if (!has_digits) fail("invalid number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      bool frac_digits = false;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        frac_digits = true;
      }
      if (!frac_digits) fail("invalid number fraction");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      bool exp_digits = false;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        exp_digits = true;
      }
      if (!exp_digits) fail("invalid number exponent");
    }
    const std::string token(text_.substr(start, pos_ - start));
    return Value(std::strtod(token.c_str(), nullptr));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) {
  Parser parser(text);
  return parser.parse_document();
}

Value parse_prefix(std::string_view text, std::size_t& offset) {
  Parser parser(text);
  parser.set_position(offset);
  Value v = parser.parse_value();
  offset = parser.position();
  return v;
}

}  // namespace astromlab::json
