// Experiment E4 — CPT data-quality ablation (paper §III/§VI).
//
// Compares continual pretraining of the same base model on the four corpus
// variants: abstracts only, abstract+intro+conclusion (AIC), LLM-style
// summaries, and OCR'd full text. The paper's narrative: information-dense
// clean tokens (Summary) beat the noisy AIC extraction, and abstracts
// alone are worst (fewest facts). Scores are base-token, per tier.

#include <cstdio>

#include "core/experiment.hpp"
#include "util/cli.hpp"
#include "util/fault_injection.hpp"
#include "util/resource_budget.hpp"
#include "util/logging.hpp"
#include "util/shutdown.hpp"
#include "util/trace.hpp"
#include "util/string_utils.hpp"

using namespace astromlab;

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  log::set_level(log::parse_level(args.get_string("log", "info")));
  util::ResourceBudget::init_from_args(args);
  util::FaultInjector::init_chaos_from_args(args);
  util::trace::init_from_args(args);

  core::WorldConfig config;
  config.size_multiplier = args.get_double("mult", 1.0);
  const std::string cache = args.get_string("cache", core::default_cache_dir().string());
  const auto eval_options = eval::eval_run_options_from_args(args);
  args.fail_on_unconsumed();
  // Ctrl-C mid-run still flushes the armed trace session (checkpoints and
  // the eval journal are durable as written); then exits 128+signo.
  util::shutdown::install([] { util::trace::finish(); });

  core::World world = core::build_world(config);
  core::Pipeline pipeline(std::move(world), cache);
  pipeline.set_eval_options(eval_options);

  const core::Scale scale = core::Scale::kS8;
  const eval::ScoreSummary native =
      pipeline.token_benchmark(pipeline.base_model(scale), "S8");

  std::printf("\nE4: CPT DATA-QUALITY ABLATION (base-token scores, S8 base)\n\n");
  std::printf("%s%s%s%s\n", util::pad_right("CPT corpus", 16).c_str(),
              util::pad_right("overall", 10).c_str(),
              util::pad_right("canonical", 12).c_str(), "frontier");
  std::printf("%s\n", std::string(48, '-').c_str());
  std::printf("%s%s%s%s\n", util::pad_right("(none/native)", 16).c_str(),
              util::pad_right(eval::percent(native.accuracy), 10).c_str(),
              util::pad_right(eval::percent(native.canonical_accuracy), 12).c_str(),
              eval::percent(native.frontier_accuracy).c_str());

  for (corpus::CptVariant variant :
       {corpus::CptVariant::kAbstract, corpus::CptVariant::kAic,
        corpus::CptVariant::kSummary, corpus::CptVariant::kFullTextOcr}) {
    const nn::GptModel model = pipeline.cpt_model(scale, variant);
    const std::string tag =
        std::string("S8-cpt") + corpus::cpt_variant_name(variant);
    const eval::ScoreSummary summary = pipeline.token_benchmark(model, tag);
    std::printf("%s%s%s%s\n",
                util::pad_right(corpus::cpt_variant_name(variant), 16).c_str(),
                util::pad_right(eval::percent(summary.accuracy), 10).c_str(),
                util::pad_right(eval::percent(summary.canonical_accuracy), 12).c_str(),
                eval::percent(summary.frontier_accuracy).c_str());
  }

  std::printf("\npaper finding: Summary-quality tokens degrade least (and lift\n"
              "frontier recall); abstracts cover the fewest facts. Frontier-tier\n"
              "accuracy isolates knowledge only CPT can add.\n");
  util::trace::finish();
  return 0;
}
