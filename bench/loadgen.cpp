// loadgen — open-loop, closed-duration load generator and SLO gate for the
// `serve` HTTP inference service.
//
// The binary forks the server under test (`--server-bin PATH`), discovers
// its ephemeral port from the "LISTENING port=<n>" stdout line, and runs
// four phases, each against a fresh server process so their accounting
// never bleeds together:
//
//   correctness  every benchmark MCQ over HTTP must answer 200 with a
//                non-null letter, and a repeated question must answer
//                identically (greedy decoding is deterministic).
//   load         open-loop arrival schedule (request i fires at
//                start + i/rps regardless of completions) with a mix of
//                MCQ, sessioned generate, and deliberately-tight-deadline
//                requests against a rate-limited server. Gates: exact
//                status accounting (sent == 200+429+503+504, nothing
//                else), zero transport errors, zero client-timeout hangs,
//                Retry-After present on every 429, at least one shed and
//                one deadline expiry actually exercised, and p50/p95/p99
//                of the clean-200 latencies under the SLO thresholds.
//   drain        SIGTERM lands mid-load. Gates: every request that
//                completed before the signal succeeded, responses after it
//                are valid-or-refused (never garbage), the server exits 0,
//                prints "DRAINED ok", and its journal + trace files are
//                flushed and parseable.
//   chaos        the same load against a fault-injecting server
//                (--chaos-seed/--chaos-rate). 500/503 are permitted — the
//                point is that the process survives: no transport errors,
//                no hangs, /healthz back to 200 after the burst, clean
//                SIGTERM exit.
//
// Results land in <out-dir>/BENCH_serve.json; any gate violation prints a
// FAIL line and flips the exit status. `--smoke` is accepted for CLI
// symmetry with `throughput --smoke` (this binary is always a smoke gate).

#include <sys/types.h>
#include <sys/wait.h>

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "json/json.hpp"
#include "serve/http.hpp"
#include "util/cli.hpp"
#include "util/io.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/shutdown.hpp"
#include "util/stopwatch.hpp"
#include "util/string_utils.hpp"

using namespace astromlab;

namespace {

// ---------------------------------------------------------------------------
// Server child process management

std::mutex g_children_mutex;
std::vector<pid_t> g_children;

void track_child(pid_t pid) {
  const std::lock_guard<std::mutex> lock(g_children_mutex);
  g_children.push_back(pid);
}

void untrack_child(pid_t pid) {
  const std::lock_guard<std::mutex> lock(g_children_mutex);
  g_children.erase(std::remove(g_children.begin(), g_children.end(), pid), g_children.end());
}

/// Loadgen's own Ctrl-C path: don't leave orphaned servers behind.
void kill_all_children() {
  const std::lock_guard<std::mutex> lock(g_children_mutex);
  for (const pid_t pid : g_children) ::kill(pid, SIGKILL);
}

struct ServerProc {
  pid_t pid = -1;
  std::uint16_t port = 0;
  int out_fd = -1;
  std::thread pump;                 // drains child stdout after the port line
  std::unique_ptr<std::string> tail = std::make_unique<std::string>();
  int exit_code = -1;               // filled by wait_exit
  bool ok() const { return pid > 0 && port != 0; }
};

/// Forks and execs the server, then blocks (up to 60s) for its
/// "LISTENING port=<n>" line. stderr is inherited so server logs land in
/// the CI output. Returns a ServerProc with port==0 on any failure.
ServerProc spawn_server(const std::string& bin, const std::vector<std::string>& extra_args) {
  ServerProc proc;
  int fds[2];
  if (::pipe(fds) != 0) {
    std::cerr << "FAIL loadgen: pipe() failed: " << std::strerror(errno) << '\n';
    return proc;
  }
  std::vector<std::string> argv_strings;
  argv_strings.push_back(bin);
  argv_strings.insert(argv_strings.end(), extra_args.begin(), extra_args.end());

  const pid_t pid = ::fork();
  if (pid < 0) {
    std::cerr << "FAIL loadgen: fork() failed: " << std::strerror(errno) << '\n';
    ::close(fds[0]);
    ::close(fds[1]);
    return proc;
  }
  if (pid == 0) {
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    std::vector<char*> argv;
    argv.reserve(argv_strings.size() + 1);
    for (std::string& arg : argv_strings) argv.push_back(arg.data());
    argv.push_back(nullptr);
    ::execv(bin.c_str(), argv.data());
    std::fprintf(stderr, "FAIL loadgen child: execv(%s) failed: %s\n", bin.c_str(),
                 std::strerror(errno));
    ::_exit(127);
  }

  ::close(fds[1]);
  proc.pid = pid;
  proc.out_fd = fds[0];
  track_child(pid);

  // Scan stdout line by line for the port announcement.
  std::string buffer;
  util::Stopwatch waited;
  while (waited.seconds() < 60.0) {
    struct pollfd pfd { proc.out_fd, POLLIN, 0 };
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) continue;
    char chunk[512];
    const ssize_t n = ::read(proc.out_fd, chunk, sizeof(chunk));
    if (n <= 0) break;  // child exited before announcing
    buffer.append(chunk, static_cast<std::size_t>(n));
    const std::size_t newline = buffer.find('\n');
    if (newline == std::string::npos) continue;
    const std::string line = buffer.substr(0, newline);
    constexpr const char* kPrefix = "LISTENING port=";
    if (!util::starts_with(line, kPrefix)) break;
    proc.port = static_cast<std::uint16_t>(std::atoi(line.c_str() + std::strlen(kPrefix)));
    *proc.tail = buffer.substr(newline + 1);
    break;
  }
  if (proc.port == 0) {
    std::cerr << "FAIL loadgen: server did not announce a port (got \"" << buffer << "\")\n";
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    untrack_child(pid);
    ::close(proc.out_fd);
    proc.out_fd = -1;
    proc.pid = -1;
    return proc;
  }
  // Keep draining the pipe so the child never blocks on stdout; the bytes
  // (e.g. the final "DRAINED ok") are inspected after wait_exit joins.
  std::string* tail = proc.tail.get();
  const int fd = proc.out_fd;
  proc.pump = std::thread([tail, fd] {
    char chunk[512];
    for (;;) {
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n <= 0) break;
      tail->append(chunk, static_cast<std::size_t>(n));
    }
  });
  return proc;
}

/// Reaps the child (SIGKILL after `timeout_seconds`), joins the stdout
/// pump, and stores the exit code (-1 = killed / abnormal).
int wait_exit(ServerProc& proc, double timeout_seconds) {
  if (proc.pid <= 0) return -1;
  util::Stopwatch waited;
  int status = 0;
  pid_t reaped = 0;
  while (waited.seconds() < timeout_seconds) {
    reaped = ::waitpid(proc.pid, &status, WNOHANG);
    if (reaped == proc.pid) break;
    if (reaped < 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (reaped != proc.pid) {
    std::cerr << "FAIL loadgen: server pid " << proc.pid << " did not exit within "
              << timeout_seconds << "s; killing\n";
    ::kill(proc.pid, SIGKILL);
    ::waitpid(proc.pid, &status, 0);
    proc.exit_code = -1;
  } else if (WIFEXITED(status)) {
    proc.exit_code = WEXITSTATUS(status);
  } else {
    proc.exit_code = -1;
  }
  untrack_child(proc.pid);
  if (proc.pump.joinable()) proc.pump.join();
  if (proc.out_fd >= 0) ::close(proc.out_fd);
  proc.out_fd = -1;
  proc.pid = -1;
  return proc.exit_code;
}

/// SIGTERM + reap + the two universal drain gates (exit 0, "DRAINED ok").
bool terminate_and_check(ServerProc& proc, const char* phase) {
  if (proc.pid > 0) ::kill(proc.pid, SIGTERM);
  const int code = wait_exit(proc, 20.0);
  bool ok = true;
  if (code != 0) {
    std::cerr << "FAIL loadgen[" << phase << "]: server exit code " << code << " != 0\n";
    ok = false;
  }
  if (proc.tail->find("DRAINED ok") == std::string::npos) {
    std::cerr << "FAIL loadgen[" << phase << "]: server never printed DRAINED ok\n";
    ok = false;
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Load phases

struct LoadConfig {
  double rps = 40.0;
  double duration_seconds = 4.0;
  std::size_t senders = 6;
  std::size_t tight_pct = 15;     // % of requests carrying a ~10µs deadline
  std::size_t generate_pct = 25;  // % of requests hitting /v1/generate
  double client_timeout_seconds = 12.0;
  std::size_t question_count = 1;
  std::size_t max_new_tokens = 8;
};

struct Tally {
  std::atomic<std::size_t> sent{0};
  std::atomic<std::size_t> s200{0};
  std::atomic<std::size_t> s429{0};
  std::atomic<std::size_t> s503{0};
  std::atomic<std::size_t> s504{0};
  std::atomic<std::size_t> s500{0};
  std::atomic<std::size_t> other_status{0};
  std::atomic<std::size_t> transport_errors{0};
  std::atomic<std::size_t> hangs{0};
  std::atomic<std::size_t> missing_retry_after{0};
  std::mutex latency_mutex;
  std::vector<double> ok_latency_ms;  // 200s only — shed responses are trivially fast
};

std::string mcq_body(std::size_t question_index, bool tight_deadline) {
  json::Value body = json::Value::object();
  body.set("question_index", static_cast<std::int64_t>(question_index));
  if (tight_deadline) body.set("deadline_ms", 0.01);
  return body.dump();
}

std::string generate_body(std::size_t i, std::size_t max_new_tokens, bool tight_deadline) {
  static const char* kPrompts[] = {
      "the spectral index of the survey",
      "measurements of the velocity dispersion show",
      "a catalogue entry for the brightest cluster",
      "the adopted distance modulus implies",
  };
  json::Value body = json::Value::object();
  body.set("prompt", std::string(kPrompts[i % 4]));
  body.set("max_new_tokens", static_cast<std::int64_t>(max_new_tokens));
  body.set("temperature", 0.0);
  body.set("session", "load-" + std::to_string(i % 4));
  if (tight_deadline) body.set("deadline_ms", 0.01);
  return body.dump();
}

/// Fires `rps * duration` requests on the open-loop schedule
/// start + i/rps: senders pull the next index from a shared atomic, sleep
/// until its slot, and send — late completions never delay later arrivals
/// (beyond sender-pool exhaustion, which the hang gate would expose).
void run_open_loop(const LoadConfig& config, std::uint16_t port, Tally& tally) {
  const std::size_t total =
      static_cast<std::size_t>(config.rps * config.duration_seconds);
  std::atomic<std::size_t> next{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> senders;
  senders.reserve(config.senders);
  for (std::size_t s = 0; s < config.senders; ++s) {
    senders.emplace_back([&, s] {
      serve::HttpClient client("127.0.0.1", port);
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= total) break;
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(static_cast<double>(i) / config.rps)));
        const std::size_t r = i % 100;
        const bool tight = r < config.tight_pct;
        const bool generate = !tight && r < config.tight_pct + config.generate_pct;
        std::string target;
        std::string body;
        if (generate || (tight && (i & 1) != 0)) {
          target = "/v1/generate";
          body = generate_body(i, config.max_new_tokens, tight);
        } else {
          target = "/v1/mcq";
          body = mcq_body(i % config.question_count, tight);
        }
        util::Stopwatch clock;
        const std::optional<serve::HttpResponse> response =
            client.request("POST", target, body, config.client_timeout_seconds);
        const double elapsed_ms = clock.seconds() * 1000.0;
        tally.sent.fetch_add(1);
        if (!response.has_value()) {
          if (elapsed_ms >= config.client_timeout_seconds * 1000.0 * 0.9) {
            tally.hangs.fetch_add(1);
          } else {
            tally.transport_errors.fetch_add(1);
          }
          continue;
        }
        switch (response->status) {
          case 200: {
            tally.s200.fetch_add(1);
            const std::lock_guard<std::mutex> lock(tally.latency_mutex);
            tally.ok_latency_ms.push_back(elapsed_ms);
            break;
          }
          case 429:
            tally.s429.fetch_add(1);
            if (response->headers.find("retry-after") == response->headers.end()) {
              tally.missing_retry_after.fetch_add(1);
            }
            break;
          case 503:
            tally.s503.fetch_add(1);
            break;
          case 504:
            tally.s504.fetch_add(1);
            break;
          case 500:
            tally.s500.fetch_add(1);
            break;
          default:
            tally.other_status.fetch_add(1);
            std::cerr << "loadgen: unexpected status " << response->status << " from "
                      << target << '\n';
            break;
        }
      }
    });
  }
  for (std::thread& t : senders) t.join();
}

json::Value tally_json(const Tally& tally) {
  json::Value v = json::Value::object();
  v.set("sent", static_cast<std::int64_t>(tally.sent.load()));
  v.set("s200", static_cast<std::int64_t>(tally.s200.load()));
  v.set("s429", static_cast<std::int64_t>(tally.s429.load()));
  v.set("s503", static_cast<std::int64_t>(tally.s503.load()));
  v.set("s504", static_cast<std::int64_t>(tally.s504.load()));
  v.set("s500", static_cast<std::int64_t>(tally.s500.load()));
  v.set("other_status", static_cast<std::int64_t>(tally.other_status.load()));
  v.set("transport_errors", static_cast<std::int64_t>(tally.transport_errors.load()));
  v.set("hangs", static_cast<std::int64_t>(tally.hangs.load()));
  v.set("missing_retry_after", static_cast<std::int64_t>(tally.missing_retry_after.load()));
  return v;
}

/// World/server sizing shared by every phase: tiny world (builds in tens of
/// milliseconds) but ctx=640 — the token-method two-shot MCQ prompts
/// overflow the default ctx=416 at these vocab sizes.
std::vector<std::string> base_server_args() {
  return {
      "--port=0",       "--workers=8",  "--queue-depth=32",
      "--topics=3",     "--entities=3", "--facts-per-entity=2",
      "--questions-per-topic=2",        "--vocab=420",
      "--ctx=640",      "--seed=2024",  "--stats-every=0",
      "--log=warn",     "--drain-grace=5",
  };
}

// ---------------------------------------------------------------------------
// Phase 1: correctness over HTTP

json::Value phase_correctness(const std::string& server_bin, bool& pass,
                              std::size_t& question_count_out) {
  json::Value report = json::Value::object();
  pass = false;
  ServerProc server = spawn_server(server_bin, base_server_args());
  if (!server.ok()) return report;

  serve::HttpClient client("127.0.0.1", server.port);
  std::size_t answered = 0;
  std::size_t questions = 0;
  bool deterministic = true;
  std::string first_answer_q0;
  do {
    const std::optional<serve::HttpResponse> health =
        client.request("GET", "/healthz", "", 10.0);
    if (!health.has_value() || health->status != 200) {
      std::cerr << "FAIL loadgen[correctness]: /healthz "
                << (health.has_value() ? std::to_string(health->status) : "no response")
                << '\n';
      break;
    }
    json::Value health_doc;
    try {
      health_doc = json::parse(health->body);
    } catch (const json::ParseError& e) {
      std::cerr << "FAIL loadgen[correctness]: /healthz body unparseable: " << e.what()
                << '\n';
      break;
    }
    questions =
        static_cast<std::size_t>(health_doc.get_number("benchmark_questions", 0.0));
    if (questions == 0) {
      std::cerr << "FAIL loadgen[correctness]: server reports 0 benchmark questions\n";
      break;
    }
    // Every question must answer, and question 0 twice must agree.
    for (std::size_t q = 0; q < questions + 1; ++q) {
      const std::size_t index = q % questions;
      const std::optional<serve::HttpResponse> response =
          client.request("POST", "/v1/mcq", mcq_body(index, false), 30.0);
      if (!response.has_value() || response->status != 200) {
        std::cerr << "FAIL loadgen[correctness]: question " << index << " status "
                  << (response.has_value() ? std::to_string(response->status) : "none")
                  << '\n';
        continue;
      }
      json::Value doc;
      try {
        doc = json::parse(response->body);
      } catch (const json::ParseError&) {
        std::cerr << "FAIL loadgen[correctness]: question " << index
                  << " body unparseable\n";
        continue;
      }
      const std::string answer = doc.get_string("answer", "");
      if (answer.empty()) {
        std::cerr << "FAIL loadgen[correctness]: question " << index
                  << " answered null (prompt overflow?)\n";
        continue;
      }
      if (index == 0) {
        if (first_answer_q0.empty()) {
          first_answer_q0 = answer;
        } else if (answer != first_answer_q0) {
          deterministic = false;
          std::cerr << "FAIL loadgen[correctness]: question 0 answered " << answer
                    << " then " << first_answer_q0 << " — not deterministic\n";
        }
      }
      ++answered;
    }
  } while (false);
  client.close();

  const bool drained = terminate_and_check(server, "correctness");
  pass = questions > 0 && answered == questions + 1 && deterministic && drained;
  question_count_out = questions == 0 ? 1 : questions;
  report.set("questions", static_cast<std::int64_t>(questions));
  report.set("answered", static_cast<std::int64_t>(answered));
  report.set("deterministic", deterministic);
  report.set("server_exit", static_cast<std::int64_t>(server.exit_code));
  report.set("pass", pass);
  return report;
}

// ---------------------------------------------------------------------------
// Phase 2: open-loop load with SLO + accounting gates

json::Value phase_load(const std::string& server_bin, const LoadConfig& config,
                       double rate_limit_rps, double slo_p50_ms, double slo_p95_ms,
                       double slo_p99_ms, bool& pass) {
  json::Value report = json::Value::object();
  pass = false;
  std::vector<std::string> args = base_server_args();
  // Rate-limit below the offered load so the 429 shed path is provably
  // exercised; burst covers the schedule's initial bucket fill.
  args.push_back("--rate-limit=" + std::to_string(rate_limit_rps));
  ServerProc server = spawn_server(server_bin, args);
  if (!server.ok()) return report;

  Tally tally;
  run_open_loop(config, server.port, tally);

  std::vector<double> latencies;
  {
    const std::lock_guard<std::mutex> lock(tally.latency_mutex);
    latencies = tally.ok_latency_ms;
  }
  std::sort(latencies.begin(), latencies.end());
  const double p50 = util::metrics::percentile_sorted(latencies, 0.50);
  const double p95 = util::metrics::percentile_sorted(latencies, 0.95);
  const double p99 = util::metrics::percentile_sorted(latencies, 0.99);

  const bool drained = terminate_and_check(server, "load");

  const std::size_t accounted =
      tally.s200.load() + tally.s429.load() + tally.s503.load() + tally.s504.load();
  bool ok = drained;
  if (tally.sent.load() == 0) {
    std::cerr << "FAIL loadgen[load]: no requests sent\n";
    ok = false;
  }
  if (accounted != tally.sent.load()) {
    std::cerr << "FAIL loadgen[load]: accounting broken — sent " << tally.sent.load()
              << " != 200+429+503+504 = " << accounted << " (500s "
              << tally.s500.load() << ", other " << tally.other_status.load()
              << ", transport " << tally.transport_errors.load() << ", hangs "
              << tally.hangs.load() << ")\n";
    ok = false;
  }
  if (tally.transport_errors.load() != 0 || tally.hangs.load() != 0) {
    std::cerr << "FAIL loadgen[load]: " << tally.transport_errors.load()
              << " transport errors, " << tally.hangs.load() << " hangs\n";
    ok = false;
  }
  if (tally.missing_retry_after.load() != 0) {
    std::cerr << "FAIL loadgen[load]: " << tally.missing_retry_after.load()
              << " 429s without Retry-After\n";
    ok = false;
  }
  if (tally.s429.load() == 0) {
    std::cerr << "FAIL loadgen[load]: rate limit never shed — 429 path unexercised\n";
    ok = false;
  }
  if (tally.s504.load() == 0) {
    std::cerr << "FAIL loadgen[load]: tight deadlines never expired — 504 path "
              << "unexercised\n";
    ok = false;
  }
  if (tally.s200.load() == 0) {
    std::cerr << "FAIL loadgen[load]: nothing succeeded\n";
    ok = false;
  }
  if (p50 > slo_p50_ms || p95 > slo_p95_ms || p99 > slo_p99_ms) {
    std::cerr << "FAIL loadgen[load]: SLO violated — p50 " << p50 << "ms (slo "
              << slo_p50_ms << "), p95 " << p95 << "ms (slo " << slo_p95_ms << "), p99 "
              << p99 << "ms (slo " << slo_p99_ms << ")\n";
    ok = false;
  }
  pass = ok;

  report.set("rps", config.rps);
  report.set("duration_seconds", config.duration_seconds);
  report.set("senders", static_cast<std::int64_t>(config.senders));
  report.set("rate_limit_rps", rate_limit_rps);
  report.set("tally", tally_json(tally));
  report.set("p50_ms", p50);
  report.set("p95_ms", p95);
  report.set("p99_ms", p99);
  json::Value slo = json::Value::object();
  slo.set("p50_ms", slo_p50_ms);
  slo.set("p95_ms", slo_p95_ms);
  slo.set("p99_ms", slo_p99_ms);
  report.set("slo", std::move(slo));
  report.set("server_exit", static_cast<std::int64_t>(server.exit_code));
  report.set("pass", pass);
  return report;
}

// ---------------------------------------------------------------------------
// Phase 3: SIGTERM mid-load

json::Value phase_drain(const std::string& server_bin,
                        const std::filesystem::path& out_dir, std::size_t question_count,
                        bool& pass) {
  json::Value report = json::Value::object();
  pass = false;
  const std::filesystem::path journal_path = out_dir / "serve_drain_journal.jsonl";
  const std::filesystem::path trace_path = out_dir / "serve_drain_trace.json";
  std::error_code ec;
  std::filesystem::remove(journal_path, ec);
  std::filesystem::remove(trace_path, ec);

  std::vector<std::string> args = base_server_args();
  args.push_back("--journal=" + journal_path.string());
  args.push_back("--trace-json=" + trace_path.string());
  ServerProc server = spawn_server(server_bin, args);
  if (!server.ok()) return report;

  std::atomic<bool> term_sent{false};
  std::atomic<std::size_t> pre_ok{0}, pre_fail{0}, post_responses{0}, post_bad{0};
  std::vector<std::thread> hammer;
  for (std::size_t t = 0; t < 4; ++t) {
    hammer.emplace_back([&, t] {
      serve::HttpClient client("127.0.0.1", server.port);
      util::Stopwatch clock;
      std::size_t i = t;
      while (clock.seconds() < 8.0) {
        bool connect_failed = false;
        const std::optional<serve::HttpResponse> response = client.request(
            "POST", "/v1/mcq", mcq_body(i++ % question_count, false), 8.0, {},
            &connect_failed);
        // Classify by when the exchange *completed*: anything finished
        // before the signal must have succeeded; afterwards refused /
        // dropped connections are the expected drain behaviour, but a
        // response that does arrive must still be a sane status.
        if (!term_sent.load(std::memory_order_acquire)) {
          if (response.has_value() && response->status == 200) {
            pre_ok.fetch_add(1);
          } else {
            pre_fail.fetch_add(1);
            std::cerr << "FAIL loadgen[drain]: pre-SIGTERM request failed ("
                      << (response.has_value() ? std::to_string(response->status)
                                               : "transport")
                      << ")\n";
          }
          continue;
        }
        if (!response.has_value()) break;  // drained: connection refused/closed
        post_responses.fetch_add(1);
        if (response->status != 200 && response->status != 503 &&
            response->status != 504 && response->status != 429) {
          post_bad.fetch_add(1);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  term_sent.store(true, std::memory_order_release);
  ::kill(server.pid, SIGTERM);
  for (std::thread& t : hammer) t.join();

  const int exit_code = wait_exit(server, 20.0);
  const bool drained_ok = server.tail->find("DRAINED ok") != std::string::npos;

  std::size_t journal_lines = 0;
  try {
    const std::string journal_text = util::read_text_file(journal_path);
    for (const char c : journal_text) journal_lines += c == '\n' ? 1 : 0;
  } catch (const std::exception&) {
    journal_lines = 0;
  }
  bool trace_parses = false;
  try {
    json::parse(util::read_text_file(trace_path));
    trace_parses = true;
  } catch (const std::exception&) {
    trace_parses = false;
  }

  bool ok = true;
  if (exit_code != 0) {
    std::cerr << "FAIL loadgen[drain]: server exit code " << exit_code << " != 0\n";
    ok = false;
  }
  if (!drained_ok) {
    std::cerr << "FAIL loadgen[drain]: server never printed DRAINED ok\n";
    ok = false;
  }
  if (pre_ok.load() == 0) {
    std::cerr << "FAIL loadgen[drain]: no successful requests before SIGTERM\n";
    ok = false;
  }
  if (pre_fail.load() != 0) ok = false;  // FAIL lines already printed inline
  if (post_bad.load() != 0) {
    std::cerr << "FAIL loadgen[drain]: " << post_bad.load()
              << " garbage statuses after SIGTERM\n";
    ok = false;
  }
  if (journal_lines == 0) {
    std::cerr << "FAIL loadgen[drain]: journal " << journal_path << " empty — drain "
              << "did not flush it\n";
    ok = false;
  }
  if (!trace_parses) {
    std::cerr << "FAIL loadgen[drain]: trace " << trace_path << " missing or invalid — "
              << "drain did not flush it\n";
    ok = false;
  }
  pass = ok;

  report.set("pre_term_ok", static_cast<std::int64_t>(pre_ok.load()));
  report.set("pre_term_failures", static_cast<std::int64_t>(pre_fail.load()));
  report.set("post_term_responses", static_cast<std::int64_t>(post_responses.load()));
  report.set("post_term_bad", static_cast<std::int64_t>(post_bad.load()));
  report.set("journal_lines", static_cast<std::int64_t>(journal_lines));
  report.set("trace_parses", trace_parses);
  report.set("server_exit", static_cast<std::int64_t>(exit_code));
  report.set("drained_ok_printed", drained_ok);
  report.set("pass", pass);
  return report;
}

// ---------------------------------------------------------------------------
// Phase 4: chaos — seeded fault injection under load

json::Value phase_chaos(const std::string& server_bin, const LoadConfig& base_config,
                        std::int64_t chaos_seed, double chaos_rate, bool& pass) {
  json::Value report = json::Value::object();
  pass = false;
  std::vector<std::string> args = base_server_args();
  args.push_back("--chaos-seed=" + std::to_string(chaos_seed));
  args.push_back("--chaos-rate=" + std::to_string(chaos_rate));
  args.push_back("--retry-max=3");
  ServerProc server = spawn_server(server_bin, args);
  if (!server.ok()) return report;

  LoadConfig config = base_config;
  config.rps = std::min(base_config.rps, 30.0);
  config.duration_seconds = 2.0;
  config.tight_pct = 10;
  Tally tally;
  run_open_loop(config, server.port, tally);

  // The recovery gate: once the burst is over the server must still be
  // healthy — chaos faults are per-request, never process-fatal.
  bool healthz_after = false;
  {
    serve::HttpClient client("127.0.0.1", server.port);
    for (int attempt = 0; attempt < 15 && !healthz_after; ++attempt) {
      const std::optional<serve::HttpResponse> health =
          client.request("GET", "/healthz", "", 5.0);
      healthz_after = health.has_value() && health->status == 200;
      if (!healthz_after) std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
  }

  const bool drained = terminate_and_check(server, "chaos");

  const std::size_t accounted = tally.s200.load() + tally.s429.load() +
                                tally.s503.load() + tally.s504.load() +
                                tally.s500.load();
  bool ok = drained;
  if (tally.sent.load() == 0 || accounted != tally.sent.load()) {
    std::cerr << "FAIL loadgen[chaos]: accounting broken — sent " << tally.sent.load()
              << " != 200+429+503+504+500 = " << accounted << '\n';
    ok = false;
  }
  if (tally.transport_errors.load() != 0 || tally.hangs.load() != 0) {
    std::cerr << "FAIL loadgen[chaos]: " << tally.transport_errors.load()
              << " transport errors, " << tally.hangs.load()
              << " hangs — chaos must degrade responses, not connections\n";
    ok = false;
  }
  if (tally.s200.load() == 0) {
    std::cerr << "FAIL loadgen[chaos]: nothing succeeded under chaos (retry path "
              << "dead?)\n";
    ok = false;
  }
  if (!healthz_after) {
    std::cerr << "FAIL loadgen[chaos]: /healthz not 200 after the burst\n";
    ok = false;
  }
  pass = ok;

  report.set("chaos_seed", chaos_seed);
  report.set("chaos_rate", chaos_rate);
  report.set("tally", tally_json(tally));
  report.set("healthz_after_burst", healthz_after);
  report.set("server_exit", static_cast<std::int64_t>(server.exit_code));
  report.set("pass", pass);
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  log::set_level(log::parse_level(args.get_string("log", "info")));
  args.get_bool("smoke", false);  // accepted for symmetry with `throughput --smoke`

  const std::string server_bin = args.get_string("server-bin", "");
  const std::filesystem::path out_dir = args.get_string("out-dir", ".");
  LoadConfig load;
  load.rps = args.get_double("rps", 40.0);
  load.duration_seconds = args.get_double("duration", 4.0);
  load.senders = static_cast<std::size_t>(args.get_int("senders", 6));
  load.tight_pct = static_cast<std::size_t>(args.get_int("tight-pct", 15));
  load.generate_pct = static_cast<std::size_t>(args.get_int("generate-pct", 25));
  load.client_timeout_seconds = args.get_double("client-timeout", 12.0);
  const double rate_limit_rps = args.get_double("rate-limit", load.rps * 0.6);
  const double slo_p50_ms = args.get_double("slo-p50-ms", 500.0);
  const double slo_p95_ms = args.get_double("slo-p95-ms", 2500.0);
  const double slo_p99_ms = args.get_double("slo-p99-ms", 5000.0);
  const std::int64_t chaos_seed = args.get_int("chaos-seed", 20260809);
  const double chaos_rate = args.get_double("chaos-rate", 0.05);
  args.fail_on_unconsumed();

  if (server_bin.empty()) {
    std::cerr << "error: --server-bin PATH is required\n";
    return 64;
  }
  util::shutdown::install(kill_all_children);
  std::filesystem::create_directories(out_dir);

  bool correctness_pass = false, load_pass = false, drain_pass = false,
       chaos_pass = false;
  std::size_t question_count = 1;

  std::cout << "loadgen: phase 1/4 correctness\n";
  json::Value correctness =
      phase_correctness(server_bin, correctness_pass, question_count);
  load.question_count = question_count;

  std::cout << "loadgen: phase 2/4 open-loop load (" << load.rps << " rps x "
            << load.duration_seconds << "s, rate limit " << rate_limit_rps << " rps)\n";
  json::Value load_report = phase_load(server_bin, load, rate_limit_rps, slo_p50_ms,
                                       slo_p95_ms, slo_p99_ms, load_pass);

  std::cout << "loadgen: phase 3/4 SIGTERM drain under load\n";
  json::Value drain_report = phase_drain(server_bin, out_dir, question_count, drain_pass);

  std::cout << "loadgen: phase 4/4 chaos (seed " << chaos_seed << ", rate " << chaos_rate
            << ")\n";
  json::Value chaos_report = phase_chaos(server_bin, load, chaos_seed, chaos_rate,
                                         chaos_pass);

  const bool pass = correctness_pass && load_pass && drain_pass && chaos_pass;
  json::Value report = json::Value::object();
  report.set("schema", "bench_serve_v1");
  report.set("server_bin", server_bin);
  report.set("correctness", std::move(correctness));
  report.set("load", std::move(load_report));
  report.set("drain", std::move(drain_report));
  report.set("chaos", std::move(chaos_report));
  report.set("pass", pass);

  const std::filesystem::path report_path = out_dir / "BENCH_serve.json";
  try {
    util::write_text_file(report_path, report.dump(2) + "\n");
  } catch (const util::IoError& e) {
    std::cerr << "FAIL " << report_path << ": report not written: " << e.what() << '\n';
    return 1;
  }
  std::cout << report_path.string() << ": correctness=" << (correctness_pass ? "ok" : "FAIL")
            << " load=" << (load_pass ? "ok" : "FAIL")
            << " drain=" << (drain_pass ? "ok" : "FAIL")
            << " chaos=" << (chaos_pass ? "ok" : "FAIL") << '\n';
  if (!pass) {
    std::cerr << "FAIL loadgen: one or more serve SLO gates violated (see above)\n";
    return 1;
  }
  std::cout << "loadgen: all serve gates pass\n";
  return 0;
}
