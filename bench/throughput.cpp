// Experiment E8 — engineering throughput of the substrate kernels:
// GEMM, transformer forward/backward, KV-cache decode, and the tokenizer.
// These are google-benchmark microbenchmarks (the training/evaluation
// wall-times of the study itself are reported by the experiment benches).

#include <benchmark/benchmark.h>

#include "corpus/corpora.hpp"
#include "nn/gpt.hpp"
#include "nn/trainer.hpp"
#include "tensor/ops.hpp"
#include "tokenizer/bpe.hpp"
#include "util/rng.hpp"

using namespace astromlab;

namespace {

void BM_Sgemm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  for (float& v : a) v = rng.next_float();
  for (float& v : b) v = rng.next_float();
  for (auto _ : state) {
    tensor::sgemm(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 * n * n * n);
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * static_cast<double>(n) * n * n * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Sgemm)->Arg(64)->Arg(128)->Arg(256);

void BM_SgemmTransposed(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  for (float& v : a) v = rng.next_float();
  for (float& v : b) v = rng.next_float();
  for (auto _ : state) {
    // The y = x * W^T layout used by every linear layer.
    tensor::sgemm(false, true, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * static_cast<double>(n) * n * n * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SgemmTransposed)->Arg(64)->Arg(128);

nn::GptModel bench_model() {
  nn::GptConfig config;
  config.vocab_size = 768;
  config.ctx_len = 416;
  config.d_model = 80;
  config.n_heads = 8;
  config.n_layers = 4;
  config.d_ff = 320;
  nn::GptModel model(config);
  util::Rng rng(3);
  model.init_weights(rng);
  return model;
}

void BM_TransformerForward(benchmark::State& state) {
  nn::GptModel model = bench_model();
  const std::size_t batch = 4, seq = 256;
  util::Rng rng(4);
  std::vector<nn::Token> tokens(batch * seq), targets(batch * seq);
  for (auto& t : tokens) t = static_cast<nn::Token>(rng.next_below(768));
  for (auto& t : targets) t = static_cast<nn::Token>(rng.next_below(768));
  nn::GptActivations acts;
  for (auto _ : state) {
    const float loss = model.forward(acts, tokens.data(), targets.data(), batch, seq);
    benchmark::DoNotOptimize(loss);
  }
  state.counters["tok/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(batch * seq),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TransformerForward);

void BM_TransformerTrainStep(benchmark::State& state) {
  nn::GptModel model = bench_model();
  const std::size_t batch = 4, seq = 256;
  util::Rng rng(5);
  std::vector<nn::Token> tokens(batch * seq), targets(batch * seq);
  for (auto& t : tokens) t = static_cast<nn::Token>(rng.next_below(768));
  for (auto& t : targets) t = static_cast<nn::Token>(rng.next_below(768));
  nn::GptActivations acts;
  for (auto _ : state) {
    model.params().zero_grads();
    model.forward(acts, tokens.data(), targets.data(), batch, seq);
    model.backward(acts, tokens.data(), targets.data(), batch, seq);
    benchmark::DoNotOptimize(model.params().grads());
  }
  state.counters["tok/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(batch * seq),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TransformerTrainStep);

void BM_KvCacheDecode(benchmark::State& state) {
  nn::GptModel model = bench_model();
  nn::GptInference inference(model);
  for (auto _ : state) {
    if (inference.position() + 1 >= model.config().ctx_len) inference.reset();
    benchmark::DoNotOptimize(inference.step(42));
  }
  state.counters["tok/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KvCacheDecode);

struct TokenizerFixture {
  corpus::KnowledgeBase kb;
  tokenizer::BpeTokenizer tok;
  std::string sample;
  TokenizerFixture() {
    corpus::KbConfig config;
    config.n_topics = 8;
    config.entities_per_topic = 4;
    config.facts_per_entity = 2;
    kb = corpus::KnowledgeBase::generate(config);
    const auto mcqs = corpus::generate_mcqs(kb, {});
    tokenizer::BpeTrainConfig tc;
    tc.vocab_size = 768;
    const std::string text = corpus::build_tokenizer_training_text(kb, mcqs.practice, 6);
    tok = tokenizer::BpeTokenizer::train(text, tc);
    sample = text.substr(0, 16384);
  }
};

void BM_TokenizerEncode(benchmark::State& state) {
  static TokenizerFixture fixture;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.tok.encode(fixture.sample));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fixture.sample.size()));
}
BENCHMARK(BM_TokenizerEncode);

void BM_TokenizerTrain(benchmark::State& state) {
  static TokenizerFixture fixture;
  tokenizer::BpeTrainConfig config;
  config.vocab_size = 512;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer::BpeTokenizer::train(fixture.sample, config));
  }
}
BENCHMARK(BM_TokenizerTrain);

}  // namespace
