// Experiment E8 — engineering throughput of the substrate kernels:
// GEMM, transformer forward/backward, KV-cache decode, and the tokenizer.
// These are google-benchmark microbenchmarks (the training/evaluation
// wall-times of the study itself are reported by the experiment benches).
//
// Invoked with `--smoke [--out-dir DIR]` the binary instead runs the
// deterministic perf-regression harness: a kernel-level GEMM gate comparing
// the runtime-dispatched `tensor::sgemm` against the scalar reference on the
// bench model's linear-layer shapes (`BENCH_gemm.json`), plus the
// shared-prefix KV cache checks — cold vs warm prefill at the micro level
// and cache-off vs cache-on eval at the runner level (`BENCH_prefill.json`
// / `BENCH_eval.json`) — and the tracing-overhead gate (`BENCH_trace.json`):
// disabled `util::trace` spans must cost < 2% of per-question latency, and
// scores must stay bit-identical with tracing enabled. Every report carries
// p50/p95/p99 latency percentiles (per question, or per GEMM iteration).
// It exits non-zero if any JSON fails to re-parse, a speedup gate drops
// below 1.0, the dispatched kernel diverges from the scalar reference, the
// cached path stops being bit-identical, or the trace gate fails. The
// workload is fully seeded; only the wall-clock numbers vary run to run.
//
// `--chaos-soak [--chaos-seed N --chaos-rate P --out-dir DIR]` instead
// runs the full three-method eval pipeline (journals, parallel workers,
// prefix cache) under the seeded chaos schedule — injected write faults,
// torn appends and allocation pressure at the question boundary — and
// gates on the run *finishing* with every question accounted for
// (answered + degraded + shed = total) and a CRC-clean journal
// (`BENCH_chaos.json`). `--memory-budget-mb` additionally enforces a hard
// tracked-byte ceiling during any mode.
//
// `--trace-json <path>` additionally records the harness's own spans and
// writes the Chrome trace_event document (plus metrics snapshot) on exit.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "corpus/corpora.hpp"
#include "eval/full_instruct.hpp"
#include "eval/journal.hpp"
#include "eval/prefix_cache.hpp"
#include "eval/token_method.hpp"
#include "json/json.hpp"
#include "nn/decode_engine.hpp"
#include "nn/gpt.hpp"
#include "nn/trainer.hpp"
#include "tensor/bf16.hpp"
#include "tensor/ops.hpp"
#include "tokenizer/bpe.hpp"
#include "util/cli.hpp"
#include "util/fault_injection.hpp"
#include "util/io.hpp"
#include "util/metrics.hpp"
#include "util/resource_budget.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/shutdown.hpp"
#include "util/trace.hpp"

using namespace astromlab;

namespace {

void BM_Sgemm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  for (float& v : a) v = rng.next_float();
  for (float& v : b) v = rng.next_float();
  for (auto _ : state) {
    tensor::sgemm(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 * n * n * n);
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * static_cast<double>(n) * n * n * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Sgemm)->Arg(64)->Arg(128)->Arg(256);

void BM_SgemmTransposed(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  for (float& v : a) v = rng.next_float();
  for (float& v : b) v = rng.next_float();
  for (auto _ : state) {
    // The y = x * W^T layout used by every linear layer.
    tensor::sgemm(false, true, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * static_cast<double>(n) * n * n * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SgemmTransposed)->Arg(64)->Arg(128);

nn::GptModel bench_model() {
  nn::GptConfig config;
  config.vocab_size = 768;
  config.ctx_len = 416;
  config.d_model = 80;
  config.n_heads = 8;
  config.n_layers = 4;
  config.d_ff = 320;
  nn::GptModel model(config);
  util::Rng rng(3);
  model.init_weights(rng);
  return model;
}

void BM_TransformerForward(benchmark::State& state) {
  nn::GptModel model = bench_model();
  const std::size_t batch = 4, seq = 256;
  util::Rng rng(4);
  std::vector<nn::Token> tokens(batch * seq), targets(batch * seq);
  for (auto& t : tokens) t = static_cast<nn::Token>(rng.next_below(768));
  for (auto& t : targets) t = static_cast<nn::Token>(rng.next_below(768));
  nn::GptActivations acts;
  for (auto _ : state) {
    const float loss = model.forward(acts, tokens.data(), targets.data(), batch, seq);
    benchmark::DoNotOptimize(loss);
  }
  state.counters["tok/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(batch * seq),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TransformerForward);

void BM_TransformerTrainStep(benchmark::State& state) {
  nn::GptModel model = bench_model();
  const std::size_t batch = 4, seq = 256;
  util::Rng rng(5);
  std::vector<nn::Token> tokens(batch * seq), targets(batch * seq);
  for (auto& t : tokens) t = static_cast<nn::Token>(rng.next_below(768));
  for (auto& t : targets) t = static_cast<nn::Token>(rng.next_below(768));
  nn::GptActivations acts;
  for (auto _ : state) {
    model.params().zero_grads();
    model.forward(acts, tokens.data(), targets.data(), batch, seq);
    model.backward(acts, tokens.data(), targets.data(), batch, seq);
    benchmark::DoNotOptimize(model.params().grads());
  }
  state.counters["tok/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(batch * seq),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TransformerTrainStep);

void BM_KvCacheDecode(benchmark::State& state) {
  nn::GptModel model = bench_model();
  nn::GptInference inference(model);
  for (auto _ : state) {
    if (inference.position() + 1 >= model.config().ctx_len) inference.reset();
    benchmark::DoNotOptimize(inference.step(42));
  }
  state.counters["tok/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KvCacheDecode);

struct TokenizerFixture {
  corpus::KnowledgeBase kb;
  tokenizer::BpeTokenizer tok;
  std::string sample;
  TokenizerFixture() {
    corpus::KbConfig config;
    config.n_topics = 8;
    config.entities_per_topic = 4;
    config.facts_per_entity = 2;
    kb = corpus::KnowledgeBase::generate(config);
    const auto mcqs = corpus::generate_mcqs(kb, {});
    tokenizer::BpeTrainConfig tc;
    tc.vocab_size = 768;
    const std::string text = corpus::build_tokenizer_training_text(kb, mcqs.practice, 6);
    tok = tokenizer::BpeTokenizer::train(text, tc);
    sample = text.substr(0, 16384);
  }
};

void BM_TokenizerEncode(benchmark::State& state) {
  static TokenizerFixture fixture;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.tok.encode(fixture.sample));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fixture.sample.size()));
}
BENCHMARK(BM_TokenizerEncode);

void BM_TokenizerTrain(benchmark::State& state) {
  static TokenizerFixture fixture;
  tokenizer::BpeTrainConfig config;
  config.vocab_size = 512;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer::BpeTokenizer::train(fixture.sample, config));
  }
}
BENCHMARK(BM_TokenizerTrain);

// ---------------------------------------------------------------------------
// --smoke: deterministic perf-regression harness for the prefix KV cache.

json::Value model_json(const nn::GptConfig& config) {
  json::Value m = json::Value::object();
  m.set("vocab_size", static_cast<std::int64_t>(config.vocab_size));
  m.set("ctx_len", static_cast<std::int64_t>(config.ctx_len));
  m.set("d_model", static_cast<std::int64_t>(config.d_model));
  m.set("n_heads", static_cast<std::int64_t>(config.n_heads));
  m.set("n_layers", static_cast<std::int64_t>(config.n_layers));
  m.set("d_ff", static_cast<std::int64_t>(config.d_ff));
  return m;
}

json::Value phase_json(double seconds, std::size_t questions, std::size_t tokens) {
  json::Value p = json::Value::object();
  p.set("seconds", seconds);
  p.set("seconds_per_question", seconds / static_cast<double>(questions));
  p.set("tokens_per_s", static_cast<double>(tokens) / seconds);
  return p;
}

/// Nearest-rank latency percentiles (ms) over raw per-unit samples.
json::Value latency_json(std::vector<double> seconds) {
  std::sort(seconds.begin(), seconds.end());
  json::Value l = json::Value::object();
  l.set("count", static_cast<std::int64_t>(seconds.size()));
  l.set("p50_ms", util::metrics::percentile_sorted(seconds, 0.50) * 1e3);
  l.set("p95_ms", util::metrics::percentile_sorted(seconds, 0.95) * 1e3);
  l.set("p99_ms", util::metrics::percentile_sorted(seconds, 0.99) * 1e3);
  l.set("max_ms", seconds.empty() ? 0.0 : seconds.back() * 1e3);
  return l;
}

/// Same shape, fed from the supervisor's already-computed percentiles.
json::Value latency_json(const eval::SupervisorStats& stats) {
  json::Value l = json::Value::object();
  l.set("count", static_cast<std::int64_t>(stats.completed_questions));
  l.set("p50_ms", stats.latency_p50_s * 1e3);
  l.set("p95_ms", stats.latency_p95_s * 1e3);
  l.set("p99_ms", stats.latency_p99_s * 1e3);
  return l;
}

/// Micro-level prefill: N questions sharing a long token prefix, cold path
/// re-encoding everything vs warm path forking the snapshot. Wall time is
/// the best of `kReps` passes over all questions, so a single scheduler
/// hiccup cannot fail the regression gate.
json::Value smoke_prefill() {
  nn::GptConfig config;
  config.vocab_size = 256;
  config.ctx_len = 224;
  config.d_model = 32;
  config.n_heads = 4;
  config.n_layers = 2;
  config.d_ff = 64;
  nn::GptModel model(config);
  util::Rng rng(101);
  model.init_weights(rng);

  constexpr std::size_t kPrefix = 192, kTail = 16, kQuestions = 12, kReps = 3;
  const std::vector<nn::Token> prefix = [&] {
    std::vector<nn::Token> t(kPrefix);
    for (auto& v : t) v = static_cast<nn::Token>(rng.next_below(config.vocab_size));
    return t;
  }();
  std::vector<std::vector<nn::Token>> prompts(kQuestions, prefix);
  for (auto& prompt : prompts) {
    for (std::size_t i = 0; i < kTail; ++i) {
      prompt.push_back(static_cast<nn::Token>(rng.next_below(config.vocab_size)));
    }
  }

  nn::GptInference inference(model);
  std::vector<std::vector<float>> cold_logits;
  std::vector<double> cold_latency;  // per-question samples across all reps
  double cold_seconds = 1e30;
  for (std::size_t rep = 0; rep < kReps; ++rep) {
    cold_logits.clear();
    util::Stopwatch watch;
    for (const auto& prompt : prompts) {
      util::Stopwatch question_watch;
      inference.reset();
      cold_logits.push_back(inference.prompt(prompt));
      cold_latency.push_back(question_watch.seconds());
    }
    cold_seconds = std::min(cold_seconds, watch.seconds());
  }

  nn::GptInference encoder(model);
  encoder.prompt(prefix);
  const nn::KvSnapshot snap = encoder.snapshot();
  bool bit_identical = true;
  std::vector<double> warm_latency;
  double warm_seconds = 1e30;
  for (std::size_t rep = 0; rep < kReps; ++rep) {
    util::Stopwatch watch;
    for (std::size_t q = 0; q < kQuestions; ++q) {
      util::Stopwatch question_watch;
      inference.fork_from(snap);
      const std::vector<float>& logits =
          inference.prompt(prompts[q].data() + kPrefix, kTail, nullptr);
      if (std::memcmp(logits.data(), cold_logits[q].data(),
                      logits.size() * sizeof(float)) != 0) {
        bit_identical = false;
      }
      warm_latency.push_back(question_watch.seconds());
    }
    warm_seconds = std::min(warm_seconds, watch.seconds());
  }

  const std::size_t tokens_per_question = kPrefix + kTail;
  json::Value report = json::Value::object();
  report.set("benchmark", "prefill");
  report.set("kernel", tensor::kernel_name());
  report.set("model", model_json(config));
  report.set("questions", static_cast<std::int64_t>(kQuestions));
  report.set("prefix_tokens", static_cast<std::int64_t>(kPrefix));
  report.set("tail_tokens", static_cast<std::int64_t>(kTail));
  // tokens_per_s counts *effective* prompt tokens (prefix + tail) for both
  // phases, so the warm figure shows the throughput the reuse buys.
  report.set("cold", phase_json(cold_seconds, kQuestions, kQuestions * tokens_per_question));
  report.set("warm", phase_json(warm_seconds, kQuestions, kQuestions * tokens_per_question));
  report.set("cold_question_latency", latency_json(cold_latency));
  report.set("warm_question_latency", latency_json(warm_latency));
  report.set("warm_cold_speedup", cold_seconds / warm_seconds);
  report.set("prefill_reuse_ratio",
             static_cast<double>(kPrefix) / static_cast<double>(tokens_per_question));
  report.set("bit_identical", bit_identical);
  return report;
}

/// Tiny synthetic eval world shared by the runner-level eval gate and the
/// tracing-overhead gate (world construction — BPE training included — is
/// the slow part, so build it once).
struct EvalWorld {
  corpus::McqSplit mcqs;
  tokenizer::BpeTokenizer tok;
  nn::GptModel model;
};

EvalWorld make_eval_world(std::size_t questions_per_topic = 2) {
  corpus::KbConfig kb_config;
  kb_config.n_topics = 4;
  kb_config.entities_per_topic = 3;
  kb_config.facts_per_entity = 2;
  kb_config.seed = 61;
  const corpus::KnowledgeBase kb = corpus::KnowledgeBase::generate(kb_config);
  corpus::McqGenConfig mcq_config;
  mcq_config.questions_per_topic = questions_per_topic;
  mcq_config.seed = 62;
  corpus::McqSplit mcqs = corpus::generate_mcqs(kb, mcq_config);
  tokenizer::BpeTrainConfig tok_config;
  tok_config.vocab_size = 420;
  tokenizer::BpeTokenizer tok = tokenizer::BpeTokenizer::train(
      corpus::build_tokenizer_training_text(kb, mcqs.practice, 63), tok_config);

  nn::GptConfig config;
  config.vocab_size = tok.vocab_size();
  // Roomy context: every benchmark prompt (~380 tokens) must fit, so all
  // questions exercise the cache and the one-time prefix encode amortises.
  config.ctx_len = 512;
  config.d_model = 24;
  config.n_heads = 2;
  config.n_layers = 1;
  config.d_ff = 48;
  nn::GptModel model(config);
  util::Rng rng(64);
  model.init_weights(rng);
  return EvalWorld{std::move(mcqs), std::move(tok), std::move(model)};
}

/// Runner-level eval: the token-method benchmark on a tiny synthetic world,
/// cache off vs cache on (both serial, so the delta isolates the cache).
/// The cold-phase per-question cost and results feed the trace gate.
json::Value smoke_eval(const EvalWorld& world, double* cold_seconds_per_question,
                       std::vector<eval::QuestionResult>* cold_results_out) {
  const corpus::McqSplit& mcqs = world.mcqs;
  constexpr std::size_t kReps = 3;
  std::vector<eval::QuestionResult> cold_results, warm_results;
  double cold_seconds = 1e30, warm_seconds = 1e30;
  eval::PrefixCacheStats stats;
  eval::SupervisorStats cold_stats, warm_stats, rep_stats;
  for (std::size_t rep = 0; rep < kReps; ++rep) {
    util::Stopwatch watch;
    cold_results = eval::run_token_benchmark(world.model, world.tok, mcqs.benchmark,
                                             mcqs.practice, nullptr, {}, {}, nullptr,
                                             &rep_stats);
    if (watch.seconds() < cold_seconds) {
      cold_seconds = watch.seconds();
      cold_stats = rep_stats;
    }
  }
  eval::EvalRunOptions warm_opts;
  warm_opts.prefix_cache = true;
  for (std::size_t rep = 0; rep < kReps; ++rep) {
    util::Stopwatch watch;
    warm_results = eval::run_token_benchmark(world.model, world.tok, mcqs.benchmark,
                                             mcqs.practice, nullptr, {}, warm_opts, &stats,
                                             &rep_stats);
    if (watch.seconds() < warm_seconds) {
      warm_seconds = watch.seconds();
      warm_stats = rep_stats;
    }
  }

  bool scores_identical = cold_results.size() == warm_results.size();
  for (std::size_t q = 0; scores_identical && q < cold_results.size(); ++q) {
    scores_identical = cold_results[q].predicted == warm_results[q].predicted &&
                       cold_results[q].correct == warm_results[q].correct;
  }
  if (cold_seconds_per_question != nullptr) {
    *cold_seconds_per_question = cold_seconds / static_cast<double>(mcqs.benchmark.size());
  }
  if (cold_results_out != nullptr) *cold_results_out = cold_results;

  json::Value report = json::Value::object();
  report.set("benchmark", "eval_token_method");
  report.set("kernel", tensor::kernel_name());
  report.set("model", model_json(world.model.config()));
  report.set("questions", static_cast<std::int64_t>(mcqs.benchmark.size()));
  report.set("cold", phase_json(cold_seconds, mcqs.benchmark.size(),
                                static_cast<std::size_t>(stats.prompt_tokens)));
  report.set("warm", phase_json(warm_seconds, mcqs.benchmark.size(),
                                static_cast<std::size_t>(stats.prompt_tokens)));
  report.set("cold_question_latency", latency_json(cold_stats));
  report.set("warm_question_latency", latency_json(warm_stats));
  report.set("warm_cold_speedup", cold_seconds / warm_seconds);
  report.set("prefill_reuse_ratio", stats.reuse_ratio());
  report.set("reused_tokens", static_cast<std::int64_t>(stats.reused_tokens));
  report.set("prompt_tokens", static_cast<std::int64_t>(stats.prompt_tokens));
  report.set("scores_identical", scores_identical);
  return report;
}

/// Tracing-overhead gate. Two measurements:
///  1. the cost of a *disabled* span (the only thing instrumented hot paths
///     pay when --trace-json is off), timed over millions of constructions;
///  2. the spans-per-question of a fully traced eval run, counted with an
///     in-memory session (reusing a live --trace-json session if present).
/// The gate estimates disabled-tracing overhead as
///   spans_per_question * ns_per_span / cold_seconds_per_question
/// and fails above 2%. It also re-runs the eval with tracing enabled and
/// checks scores stay identical to the untraced reference.
json::Value smoke_trace(const EvalWorld& world, double cold_seconds_per_question,
                        const std::vector<eval::QuestionResult>& reference) {
  const bool own_session = !util::trace::enabled();
  constexpr std::size_t kProbeIters = 2'000'000, kProbeReps = 3;
  double probe_seconds = 1e30;
  // The probe must exercise the DISABLED path even when main armed a
  // --trace-json session: pause() disarms without dropping its events, so
  // 6M probe spans neither flood the trace nor get mis-timed as enabled.
  util::trace::pause();
  for (std::size_t rep = 0; rep < kProbeReps; ++rep) {
    util::Stopwatch watch;
    for (std::size_t i = 0; i < kProbeIters; ++i) {
      const util::trace::Span span("bench.overhead_probe", "bench");
      benchmark::DoNotOptimize(&span);
    }
    probe_seconds = std::min(probe_seconds, watch.seconds());
  }
  util::trace::resume();
  const double ns_per_span = probe_seconds / static_cast<double>(kProbeIters) * 1e9;

  if (own_session) util::trace::start({});  // in-memory: no file
  const std::size_t events_before = util::trace::event_count();
  eval::SupervisorStats traced_stats;
  const std::vector<eval::QuestionResult> traced =
      eval::run_token_benchmark(world.model, world.tok, world.mcqs.benchmark,
                                world.mcqs.practice, nullptr, {}, {}, nullptr,
                                &traced_stats);
  const std::size_t events = util::trace::event_count() - events_before;
  bool trace_doc_parses = true;
  if (own_session) {
    try {
      json::parse(util::trace::stop());
    } catch (const std::exception&) {
      trace_doc_parses = false;
    }
  }

  bool scores_identical = traced.size() == reference.size();
  for (std::size_t q = 0; scores_identical && q < traced.size(); ++q) {
    scores_identical = traced[q].predicted == reference[q].predicted &&
                       traced[q].correct == reference[q].correct;
  }

  const double spans_per_question =
      static_cast<double>(events) / static_cast<double>(world.mcqs.benchmark.size());
  const double overhead =
      spans_per_question * ns_per_span * 1e-9 / cold_seconds_per_question;

  json::Value report = json::Value::object();
  report.set("benchmark", "trace_overhead");
  report.set("kernel", tensor::kernel_name());
  report.set("questions", static_cast<std::int64_t>(world.mcqs.benchmark.size()));
  report.set("ns_per_disabled_span", ns_per_span);
  report.set("trace_events", static_cast<std::int64_t>(events));
  report.set("spans_per_question", spans_per_question);
  report.set("cold_seconds_per_question", cold_seconds_per_question);
  report.set("estimated_overhead_fraction", overhead);
  report.set("overhead_budget", 0.02);
  report.set("question_latency", latency_json(traced_stats));
  report.set("trace_doc_parses", trace_doc_parses);
  report.set("scores_identical_with_tracing", scores_identical);
  return report;
}

/// Decode-bound model for the batched-throughput gate. Batching pays off in
/// the regime production decode actually lives in: the weights do not fit
/// in per-core cache, so a serial decode step is bound by streaming the
/// whole weight set (here ~218 MB) through the memory hierarchy for every
/// single token. A batched step streams the weights once for B tokens. The
/// E8 smoke model (~1.5 MB) is L2-resident and compute-bound — there is no
/// weight traffic to amortise, so it cannot measure what continuous
/// batching buys. This model is deliberately sized past L2 to reproduce
/// the bandwidth-bound regime of a 70B-class deployment at smoke scale.
nn::GptModel batch_bench_model() {
  nn::GptConfig config;
  config.vocab_size = 4096;
  config.ctx_len = 96;
  config.d_model = 1024;
  config.n_heads = 16;
  config.n_layers = 4;
  config.d_ff = 4096;
  nn::GptModel model(config);
  util::Rng rng(7);
  model.init_weights(rng);
  return model;
}

/// Batched-decode gate: greedy decode throughput of `nn::BatchedInference`
/// at B = 1/2/4 concurrent sequences on the decode-bound batch model (see
/// `batch_bench_model()`), with ragged prompt lengths so slots genuinely
/// sit at different positions. Every slot's final logits are compared
/// bitwise against a serial `nn::GptInference` oracle fed the identical
/// token sequence — the batched path must never trade correctness for
/// throughput. A second scenario drives the continuous-batching
/// `nn::DecodeEngine` (on the small E8 model, where wall-clock is cheap)
/// with more requests than slots, reporting the batch-occupancy
/// distribution the admission loop achieved. Gate: tokens/s at B=4 must be
/// >= 1.5x B=1.
json::Value smoke_batch() {
  nn::GptModel model = batch_bench_model();
  const std::size_t vocab = model.config().vocab_size;
  constexpr std::size_t kPrompt = 8, kDecodeSteps = 16, kReps = 2;
  constexpr std::size_t kMaxBatch = 4;
  const std::size_t kBatches[] = {1, 2, 4};

  // Ragged prompts: slot s gets kPrompt + 4*s tokens.
  util::Rng rng(505);
  std::vector<std::vector<nn::Token>> prompts(kMaxBatch);
  for (std::size_t s = 0; s < kMaxBatch; ++s) {
    prompts[s].resize(kPrompt + 4 * s);
    for (auto& t : prompts[s]) t = static_cast<nn::Token>(rng.next_below(vocab));
  }
  const auto argmax_token = [](const std::vector<float>& logits) {
    return static_cast<nn::Token>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
  };

  // Serial oracle: per slot, feed the prompt then greedy-decode the same
  // number of steps; the batched path must reproduce these bits exactly.
  std::vector<std::vector<float>> oracle_logits(kMaxBatch);
  std::vector<std::vector<nn::Token>> oracle_tokens(kMaxBatch);
  for (std::size_t s = 0; s < kMaxBatch; ++s) {
    nn::GptInference inference(model);
    const std::vector<float>* logits = &inference.prompt(prompts[s]);
    for (std::size_t step = 0; step < kDecodeSteps; ++step) {
      const nn::Token next = argmax_token(*logits);
      oracle_tokens[s].push_back(next);
      logits = &inference.step(next);
    }
    oracle_logits[s] = *logits;
  }

  json::Value batch_reports = json::Value::array();
  bool bit_identical = true;
  double tps_b1 = 0.0, tps_b4 = 0.0;
  for (const std::size_t b : kBatches) {
    double best_seconds = 1e30;
    bool b_identical = true;
    for (std::size_t rep = 0; rep < kReps; ++rep) {
      nn::BatchedInference bi(model, b);
      // Ragged batched prefill (untimed): feed slot s while its prompt
      // still has tokens at position t.
      std::vector<std::size_t> slots;
      std::vector<nn::Token> feed;
      std::size_t longest = 0;
      for (std::size_t s = 0; s < b; ++s) longest = std::max(longest, prompts[s].size());
      for (std::size_t t = 0; t < longest; ++t) {
        slots.clear();
        feed.clear();
        for (std::size_t s = 0; s < b; ++s) {
          if (t < prompts[s].size()) {
            slots.push_back(s);
            feed.push_back(prompts[s][t]);
          }
        }
        bi.step(slots.data(), feed.data(), slots.size());
      }
      // Timed greedy decode: one shared step advances every slot.
      slots.resize(b);
      feed.resize(b);
      for (std::size_t s = 0; s < b; ++s) slots[s] = s;
      util::Stopwatch watch;
      for (std::size_t step = 0; step < kDecodeSteps; ++step) {
        for (std::size_t s = 0; s < b; ++s) feed[s] = argmax_token(bi.logits(s));
        bi.step(slots.data(), feed.data(), b);
      }
      best_seconds = std::min(best_seconds, watch.seconds());
      for (std::size_t s = 0; s < b; ++s) {
        const std::vector<float>& logits = bi.logits(s);
        if (logits.size() != oracle_logits[s].size() ||
            std::memcmp(logits.data(), oracle_logits[s].data(),
                        logits.size() * sizeof(float)) != 0 ||
            !std::equal(oracle_tokens[s].begin(), oracle_tokens[s].end(),
                        bi.history(s).end() - static_cast<std::ptrdiff_t>(kDecodeSteps))) {
          b_identical = false;
        }
      }
    }
    bit_identical = bit_identical && b_identical;
    const double tps = static_cast<double>(b * kDecodeSteps) / best_seconds;
    if (b == 1) tps_b1 = tps;
    if (b == 4) tps_b4 = tps;
    json::Value r = json::Value::object();
    r.set("batch", static_cast<std::int64_t>(b));
    r.set("decode_steps", static_cast<std::int64_t>(kDecodeSteps));
    r.set("seconds", best_seconds);
    r.set("tokens_per_s", tps);
    r.set("bit_identical", b_identical);
    batch_reports.push_back(std::move(r));
  }

  // Continuous-batching engine scenario: 2x more requests than slots, all
  // submitted concurrently, so admissions happen mid-flight of other
  // sequences and the occupancy histogram shows how full the steps ran.
  auto& reg = util::metrics::registry();
  (void)reg.histogram("decode.batch_occupancy").snapshot_and_reset();
  const std::uint64_t steps_before = reg.counter("decode.steps").value();
  const std::uint64_t tokens_before = reg.counter("decode.tokens").value();
  constexpr std::size_t kEngineSlots = 4, kEngineRequests = 8, kEngineDecode = 8;
  nn::GptModel engine_model = bench_model();
  std::vector<std::vector<nn::Token>> engine_prompts(kEngineRequests);
  for (std::size_t r = 0; r < kEngineRequests; ++r) {
    engine_prompts[r].resize(12 + 4 * r);
    for (auto& t : engine_prompts[r]) {
      t = static_cast<nn::Token>(rng.next_below(engine_model.config().vocab_size));
    }
  }
  {
    nn::DecodeEngine engine(engine_model, kEngineSlots);
    std::vector<std::thread> submitters;
    submitters.reserve(kEngineRequests);
    for (std::size_t r = 0; r < kEngineRequests; ++r) {
      submitters.emplace_back([&engine, &engine_prompts, &argmax_token, r] {
        nn::DecodeEngine::Request req;
        req.prompt = engine_prompts[r % engine_prompts.size()];
        std::size_t produced = 0;
        req.on_logits = [&produced, &argmax_token](const std::vector<float>& logits,
                                                   std::size_t) -> nn::Token {
          if (++produced > kEngineDecode) return nn::DecodeEngine::kStopDecoding;
          return argmax_token(logits);
        };
        engine.run(std::move(req));
      });
    }
    for (auto& thread : submitters) thread.join();
  }
  const auto occupancy = reg.histogram("decode.batch_occupancy").snapshot_and_reset();
  const std::uint64_t engine_steps = reg.counter("decode.steps").value() - steps_before;
  const std::uint64_t engine_tokens = reg.counter("decode.tokens").value() - tokens_before;
  json::Value engine_report = json::Value::object();
  engine_report.set("slots", static_cast<std::int64_t>(kEngineSlots));
  engine_report.set("requests", static_cast<std::int64_t>(kEngineRequests));
  engine_report.set("steps", static_cast<std::int64_t>(engine_steps));
  engine_report.set("tokens", static_cast<std::int64_t>(engine_tokens));
  engine_report.set("occupancy_mean",
                    engine_steps > 0 ? static_cast<double>(engine_tokens) /
                                           static_cast<double>(engine_steps)
                                     : 0.0);
  engine_report.set("occupancy_p50", occupancy.p50);
  engine_report.set("occupancy_p95", occupancy.p95);

  json::Value report = json::Value::object();
  report.set("benchmark", "batch_decode");
  report.set("kernel", tensor::kernel_name());
  report.set("model", model_json(model.config()));
  report.set("prompt_tokens", static_cast<std::int64_t>(kPrompt));
  report.set("decode_steps", static_cast<std::int64_t>(kDecodeSteps));
  report.set("batches", std::move(batch_reports));
  report.set("tokens_per_s_b1", tps_b1);
  report.set("tokens_per_s_b4", tps_b4);
  report.set("speedup_b4", tps_b1 > 0.0 ? tps_b4 / tps_b1 : 0.0);
  report.set("speedup_gate", 1.5);
  report.set("bit_identical", bit_identical);
  report.set("engine", std::move(engine_report));
  return report;
}

/// Quantised-weight gate. Three measurements on two models:
///  1. decode throughput of the decode-bound batch model (see
///     `batch_bench_model()`: ~218 MB of fp32 weights, far past L2) at
///     fp32 vs bf16 vs int8 storage. Decode is bound by streaming the
///     weight set once per token, so halving the bytes must buy real
///     speed: bf16 tokens/s >= 1.3x fp32 — unless dispatch landed on the
///     scalar table, whose fused kernels dequantise through a scratch
///     buffer for bit-identity and are not expected to win.
///  2. MCQ identity: the bf16-quantised eval model must answer every
///     benchmark question exactly like fp32 inference over the same
///     weights rounded through bf16 — quantisation is a storage decision,
///     not a scoring one.
///  3. int8 bounded-delta report: int8 is lossy, so answers may flip; the
///     report records how many did and the accuracy delta vs fp32.
json::Value smoke_quant(const EvalWorld& world) {
  constexpr std::size_t kDecodeSteps = 32, kReps = 3;
  const auto argmax_token = [](const std::vector<float>& logits) {
    return static_cast<nn::Token>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
  };
  const auto decode_tps = [&](const nn::GptModel& model) {
    nn::GptInference inference(model);
    double best = 1e30;
    for (std::size_t rep = 0; rep < kReps; ++rep) {
      inference.reset();
      const std::vector<float>* logits = &inference.step(42);  // untimed warm-up
      util::Stopwatch watch;
      for (std::size_t step = 0; step < kDecodeSteps; ++step) {
        logits = &inference.step(argmax_token(*logits));
      }
      best = std::min(best, watch.seconds());
    }
    return static_cast<double>(kDecodeSteps) / best;
  };

  // One model per dtype: quantize_weights(kBf16) rounds the fp32 masters in
  // place (embedding lookups must see the same values the fused gemv
  // dequantises), so the fp32 baseline needs its own pristine instance.
  double tps_fp32 = 0.0, tps_bf16 = 0.0, tps_int8 = 0.0;
  json::Value payload = json::Value::object();
  nn::GptConfig decode_config;
  {
    const nn::GptModel model = batch_bench_model();
    decode_config = model.config();
    tps_fp32 = decode_tps(model);
  }
  {
    nn::GptModel model = batch_bench_model();
    model.quantize_weights(tensor::WeightDtype::kBf16);
    tps_bf16 = decode_tps(model);
    payload.set("bf16_bytes",
                static_cast<std::int64_t>(model.quant(model.layout().wte)->bytes()));
  }
  {
    nn::GptModel model = batch_bench_model();
    model.quantize_weights(tensor::WeightDtype::kInt8);
    tps_int8 = decode_tps(model);
    payload.set("int8_bytes",
                static_cast<std::int64_t>(model.quant(model.layout().wte)->bytes()));
    payload.set("fp32_bytes",
                static_cast<std::int64_t>(model.quant(model.layout().wte)->rows *
                                          model.quant(model.layout().wte)->cols *
                                          sizeof(float)));
  }

  // MCQ identity on the eval world: rebuild the world's model from its
  // deterministic seed twice — one copy bf16-quantised, one bf16-rounded
  // in fp32 — and the benchmark answers must agree question by question.
  const auto rebuild_model = [&] {
    nn::GptModel model(world.model.config());
    util::Rng rng(64);  // make_eval_world's weight seed
    model.init_weights(rng);
    return model;
  };
  const std::vector<eval::QuestionResult> fp32_results =
      eval::run_token_benchmark(world.model, world.tok, world.mcqs.benchmark,
                                world.mcqs.practice, nullptr, {}, {}, nullptr, nullptr);
  nn::GptModel quantised = rebuild_model();
  quantised.quantize_weights(tensor::WeightDtype::kBf16);
  const std::vector<eval::QuestionResult> bf16_results =
      eval::run_token_benchmark(quantised, world.tok, world.mcqs.benchmark,
                                world.mcqs.practice, nullptr, {}, {}, nullptr, nullptr);
  nn::GptModel rounded = rebuild_model();
  {
    float* p = rounded.params().params();
    const std::size_t n = rounded.params().total_size();
    for (std::size_t i = 0; i < n; ++i) p[i] = tensor::bf16_round(p[i]);
  }
  const std::vector<eval::QuestionResult> rounded_results =
      eval::run_token_benchmark(rounded, world.tok, world.mcqs.benchmark,
                                world.mcqs.practice, nullptr, {}, {}, nullptr, nullptr);
  bool mcq_identical = bf16_results.size() == rounded_results.size();
  for (std::size_t q = 0; mcq_identical && q < bf16_results.size(); ++q) {
    mcq_identical = bf16_results[q].predicted == rounded_results[q].predicted &&
                    bf16_results[q].correct == rounded_results[q].correct;
  }

  nn::GptModel int8_model = rebuild_model();
  int8_model.quantize_weights(tensor::WeightDtype::kInt8);
  const std::vector<eval::QuestionResult> int8_results =
      eval::run_token_benchmark(int8_model, world.tok, world.mcqs.benchmark,
                                world.mcqs.practice, nullptr, {}, {}, nullptr, nullptr);
  std::size_t int8_flips = 0;
  for (std::size_t q = 0; q < int8_results.size() && q < fp32_results.size(); ++q) {
    int8_flips += int8_results[q].predicted != fp32_results[q].predicted ? 1 : 0;
  }
  const double int8_accuracy = eval::summarize(int8_results).accuracy;
  const double fp32_accuracy = eval::summarize(fp32_results).accuracy;

  json::Value report = json::Value::object();
  report.set("benchmark", "quant_weights");
  report.set("kernel", tensor::kernel_name());
  report.set("model", model_json(world.model.config()));
  report.set("decode_model", model_json(decode_config));
  report.set("decode_steps", static_cast<std::int64_t>(kDecodeSteps));
  report.set("tokens_per_s_fp32", tps_fp32);
  report.set("tokens_per_s_bf16", tps_bf16);
  report.set("tokens_per_s_int8", tps_int8);
  report.set("bf16_speedup", tps_fp32 > 0.0 ? tps_bf16 / tps_fp32 : 0.0);
  report.set("int8_speedup", tps_fp32 > 0.0 ? tps_int8 / tps_fp32 : 0.0);
  report.set("bf16_speedup_gate", 1.3);
  report.set("wte_payload", std::move(payload));
  report.set("mcq_questions", static_cast<std::int64_t>(world.mcqs.benchmark.size()));
  report.set("mcq_identical_bf16", mcq_identical);
  report.set("int8_answer_flips", static_cast<std::int64_t>(int8_flips));
  report.set("int8_accuracy", int8_accuracy);
  report.set("fp32_accuracy", fp32_accuracy);
  report.set("int8_accuracy_delta", int8_accuracy - fp32_accuracy);
  return report;
}

/// Paged-KV gate: 64 sessions forked from one ~200-token shared prefix,
/// each decoding 8 greedy tokens, contiguous (memcpy fork, full-context
/// buffers) vs paged (copy-on-write block arena). Two contracts:
///  * every paged session's greedy token stream and final logits are
///    bitwise identical to its contiguous twin — paging is invisible at
///    the bit level;
///  * tracked KV bytes per live session are >= 4x lower paged than
///    contiguous, because the prefix blocks are refcounted once and each
///    session privately owns only the boundary block its decode dirtied.
json::Value smoke_kv() {
  nn::GptModel model = bench_model();
  const nn::GptConfig& config = model.config();
  constexpr std::size_t kPrefix = 200, kSessions = 64, kDecode = 8;
  constexpr std::size_t kBlockTokens = 16;
  util::Rng rng(909);
  std::vector<nn::Token> prefix(kPrefix);
  for (auto& t : prefix) t = static_cast<nn::Token>(rng.next_below(config.vocab_size));
  const auto argmax_token = [](const std::vector<float>& logits) {
    return static_cast<nn::Token>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
  };
  auto& budget = util::ResourceBudget::instance();

  // Contiguous baseline: memcpy forks, all sessions live at once so the
  // per-session figure reflects genuine concurrent residency.
  std::vector<std::vector<nn::Token>> oracle_tokens(kSessions);
  std::vector<std::vector<float>> oracle_logits(kSessions);
  std::size_t contiguous_bytes = 0;
  double contiguous_seconds = 0.0;
  {
    nn::GptInference encoder(model);
    encoder.prompt(prefix);
    const nn::KvSnapshot snap = encoder.snapshot();
    const std::size_t kv_base = budget.domain_bytes(util::MemoryDomain::kKvCache);
    std::vector<nn::GptInference> sessions;
    sessions.reserve(kSessions);
    util::Stopwatch watch;
    for (std::size_t s = 0; s < kSessions; ++s) {
      sessions.emplace_back(model);
      sessions.back().fork_from(snap);
      // Distinct first token per session, then greedy: 64 diverging
      // conversations over one shared prefix.
      nn::Token token = static_cast<nn::Token>(1 + s);
      const std::vector<float>* logits = nullptr;
      for (std::size_t step = 0; step < kDecode; ++step) {
        oracle_tokens[s].push_back(token);
        logits = &sessions.back().step(token);
        token = argmax_token(*logits);
      }
      oracle_logits[s] = *logits;
    }
    contiguous_seconds = watch.seconds();
    contiguous_bytes = budget.domain_bytes(util::MemoryDomain::kKvCache) - kv_base;
  }

  // Paged run: same prefix encoded once into a shared arena, 64 forks that
  // adopt the prefix blocks by refcount and copy-on-write only what their
  // decode touches.
  bool bit_identical = true;
  std::size_t paged_bytes = 0, arena_bytes = 0, live_blocks = 0;
  double paged_seconds = 0.0;
  bool arena_drained = false;
  {
    auto arena = std::make_shared<nn::KvArena>(kBlockTokens, config.d_model);
    const std::size_t kv_base = budget.domain_bytes(util::MemoryDomain::kKvCache);
    {
      nn::GptInference encoder(model, arena);
      encoder.prompt(prefix);
      const nn::KvSnapshot snap = encoder.snapshot();
      std::vector<nn::GptInference> sessions;
      sessions.reserve(kSessions);
      util::Stopwatch watch;
      for (std::size_t s = 0; s < kSessions; ++s) {
        sessions.emplace_back(model, arena);
        sessions.back().fork_from(snap);
        nn::Token token = static_cast<nn::Token>(1 + s);
        const std::vector<float>* logits = nullptr;
        for (std::size_t step = 0; step < kDecode; ++step) {
          if (token != oracle_tokens[s][step]) bit_identical = false;
          logits = &sessions.back().step(token);
          token = argmax_token(*logits);
        }
        if (logits->size() != oracle_logits[s].size() ||
            std::memcmp(logits->data(), oracle_logits[s].data(),
                        logits->size() * sizeof(float)) != 0) {
          bit_identical = false;
        }
      }
      paged_seconds = watch.seconds();
      paged_bytes = budget.domain_bytes(util::MemoryDomain::kKvCache) - kv_base;
      arena_bytes = arena->total_bytes();
      live_blocks = arena->live_blocks();
    }
    // Everything released: the arena must drain to zero, or forks leak
    // refcounts that keep retired prefixes resident forever.
    arena_drained = arena->live_blocks() == 0 && arena->total_bytes() == 0;
  }

  const double contiguous_per_session =
      static_cast<double>(contiguous_bytes) / static_cast<double>(kSessions);
  const double paged_per_session =
      static_cast<double>(paged_bytes) / static_cast<double>(kSessions);
  json::Value report = json::Value::object();
  report.set("benchmark", "paged_kv");
  report.set("kernel", tensor::kernel_name());
  report.set("model", model_json(config));
  report.set("prefix_tokens", static_cast<std::int64_t>(kPrefix));
  report.set("sessions", static_cast<std::int64_t>(kSessions));
  report.set("decode_steps", static_cast<std::int64_t>(kDecode));
  report.set("block_tokens", static_cast<std::int64_t>(kBlockTokens));
  report.set("contiguous_bytes", static_cast<std::int64_t>(contiguous_bytes));
  report.set("contiguous_bytes_per_session", contiguous_per_session);
  report.set("contiguous_seconds", contiguous_seconds);
  report.set("paged_bytes", static_cast<std::int64_t>(paged_bytes));
  report.set("paged_bytes_per_session", paged_per_session);
  report.set("paged_seconds", paged_seconds);
  report.set("arena_bytes", static_cast<std::int64_t>(arena_bytes));
  report.set("arena_live_blocks", static_cast<std::int64_t>(live_blocks));
  report.set("memory_ratio",
             paged_per_session > 0.0 ? contiguous_per_session / paged_per_session : 0.0);
  report.set("memory_gate", 4.0);
  report.set("fork_bit_identical", bit_identical);
  report.set("arena_drained", arena_drained);
  return report;
}

/// Kernel-level GEMM gate: times the dispatched `tensor::sgemm` against the
/// scalar reference loops (`tensor::sgemm_reference`) on the linear-layer
/// shapes of the E8 bench model — qkv projection, MLP fc, lm-head prefill,
/// and the m=1 lm-head decode step — and checks both that the outputs agree
/// within tolerance and that the dispatched path is not slower. All four are
/// the `y = x * W^T` layout (trans_b) every linear layer uses.
json::Value smoke_gemm() {
  struct Shape {
    const char* name;
    std::size_t m, n, k;
  };
  // d_model=80, qkv=3*80, d_ff=320, vocab=768, bt=4*256 (from bench_model()).
  const Shape shapes[] = {
      {"qkv_proj", 1024, 240, 80},
      {"mlp_fc", 1024, 320, 80},
      {"lm_head", 1024, 768, 80},
      {"lm_head_decode", 1, 768, 80},
  };
  constexpr std::size_t kReps = 3;
  constexpr double kTargetFlopsPerRep = 6e7;  // ~10ms/rep on the scalar path

  util::Rng rng(77);
  json::Value shape_reports = json::Value::array();
  double min_speedup = 1e30;
  bool all_match = true;
  for (const Shape& s : shapes) {
    std::vector<float> a(s.m * s.k), b(s.n * s.k);
    std::vector<float> c_disp(s.m * s.n, 0.0f), c_ref(s.m * s.n, 0.0f);
    for (float& v : a) v = static_cast<float>(rng.next_gaussian());
    for (float& v : b) v = static_cast<float>(rng.next_gaussian());
    const double flops = 2.0 * static_cast<double>(s.m) * s.n * s.k;
    const std::size_t iters =
        std::max<std::size_t>(1, static_cast<std::size_t>(kTargetFlopsPerRep / flops));

    double disp_seconds = 1e30, ref_seconds = 1e30;
    std::vector<double> iter_seconds;  // dispatched per-iteration samples, all reps
    for (std::size_t rep = 0; rep < kReps; ++rep) {
      util::Stopwatch watch;
      for (std::size_t it = 0; it < iters; ++it) {
        util::Stopwatch iter_watch;
        tensor::sgemm(false, true, s.m, s.n, s.k, 1.0f, a.data(), s.k, b.data(), s.k,
                      0.0f, c_disp.data(), s.n);
        iter_seconds.push_back(iter_watch.seconds());
      }
      disp_seconds = std::min(disp_seconds, watch.seconds());
    }
    for (std::size_t rep = 0; rep < kReps; ++rep) {
      util::Stopwatch watch;
      for (std::size_t it = 0; it < iters; ++it) {
        tensor::sgemm_reference(false, true, s.m, s.n, s.k, 1.0f, a.data(), s.k,
                                b.data(), s.k, 0.0f, c_ref.data(), s.n);
      }
      ref_seconds = std::min(ref_seconds, watch.seconds());
    }

    double max_rel_err = 0.0;
    for (std::size_t i = 0; i < c_disp.size(); ++i) {
      const double err = std::abs(static_cast<double>(c_disp[i]) - c_ref[i]) /
                         (1.0 + std::abs(static_cast<double>(c_ref[i])));
      max_rel_err = std::max(max_rel_err, err);
    }
    const bool matches = max_rel_err < 2e-3;
    all_match = all_match && matches;

    const double per_iter = static_cast<double>(iters);
    const double disp_gflops = flops * per_iter / disp_seconds * 1e-9;
    const double ref_gflops = flops * per_iter / ref_seconds * 1e-9;
    const double speedup = disp_gflops / ref_gflops;
    min_speedup = std::min(min_speedup, speedup);

    json::Value r = json::Value::object();
    r.set("name", s.name);
    r.set("m", static_cast<std::int64_t>(s.m));
    r.set("n", static_cast<std::int64_t>(s.n));
    r.set("k", static_cast<std::int64_t>(s.k));
    r.set("trans_b", true);
    r.set("iterations", static_cast<std::int64_t>(iters));
    r.set("reference_gflops", ref_gflops);
    r.set("dispatched_gflops", disp_gflops);
    r.set("speedup", speedup);
    r.set("max_rel_err", max_rel_err);
    r.set("matches_reference", matches);
    r.set("latency", latency_json(iter_seconds));
    shape_reports.push_back(std::move(r));
  }

  json::Value report = json::Value::object();
  report.set("benchmark", "gemm_kernels");
  report.set("kernel", tensor::kernel_name());
  report.set("shapes", std::move(shape_reports));
  report.set("min_speedup", min_speedup);
  report.set("all_match_reference", all_match);
  return report;
}

/// Writes a report file, failing loudly instead of aborting the process:
/// a BENCH artifact that silently vanished (or a propagating IoError that
/// killed the bench mid-suite) would read as "gate never ran" in CI.
bool write_report(const std::filesystem::path& path, const std::string& text) {
  try {
    util::write_text_file(path, text);
    return true;
  } catch (const util::IoError& e) {
    std::cerr << "FAIL " << path.string() << ": report not written: " << e.what() << '\n';
    return false;
  }
}

/// Gate for BENCH_gemm.json: must re-parse, every shape must match the
/// scalar reference, and — unless runtime dispatch landed on the scalar
/// kernel itself — the dispatched path must not be slower than it.
bool emit_and_check_gemm(const json::Value& report, const std::filesystem::path& path) {
  if (!write_report(path, report.dump(2) + "\n")) return false;
  json::Value parsed;
  try {
    parsed = json::parse(util::read_text_file(path));
  } catch (const std::exception& e) {
    std::cerr << "FAIL " << path.string() << ": emitted JSON does not re-parse: " << e.what()
              << '\n';
    return false;
  }
  const std::string kernel = parsed.get_string("kernel", "");
  const double min_speedup = parsed.get_number("min_speedup", 0.0);
  std::cout << path.filename().string() << ": kernel=" << kernel << ", min speedup "
            << min_speedup << "x vs scalar reference, all_match_reference="
            << (parsed.get_bool("all_match_reference", false) ? "true" : "false") << '\n';
  if (!parsed.get_bool("all_match_reference", false)) {
    std::cerr << "FAIL " << path.string()
              << ": dispatched kernel diverged from scalar reference\n";
    return false;
  }
  if (kernel != "scalar" && min_speedup < 1.0) {
    std::cerr << "FAIL " << path.string() << ": dispatched kernel slower than scalar "
              << "reference (min speedup " << min_speedup << " < 1.0)\n";
    return false;
  }
  return true;
}

/// Writes one report, re-parses it from disk, and applies the regression
/// gates. Returns false (after printing why) on any violation.
bool emit_and_check(const json::Value& report, const std::filesystem::path& path,
                    const char* identity_key) {
  if (!write_report(path, report.dump(2) + "\n")) return false;
  json::Value parsed;
  try {
    parsed = json::parse(util::read_text_file(path));
  } catch (const std::exception& e) {
    std::cerr << "FAIL " << path.string() << ": emitted JSON does not re-parse: " << e.what()
              << '\n';
    return false;
  }
  const double speedup = parsed.get_number("warm_cold_speedup", 0.0);
  const bool identical = parsed.get_bool(identity_key, false);
  std::cout << path.filename().string() << ": warm/cold speedup " << speedup
            << "x, reuse ratio " << parsed.get_number("prefill_reuse_ratio", 0.0) << ", "
            << identity_key << "=" << (identical ? "true" : "false") << '\n';
  if (speedup < 1.0) {
    std::cerr << "FAIL " << path.string() << ": warm path slower than cold (speedup "
              << speedup << " < 1.0)\n";
    return false;
  }
  if (!identical) {
    std::cerr << "FAIL " << path.string() << ": cached path no longer bit-identical\n";
    return false;
  }
  return true;
}

/// Gate for BENCH_trace.json: must re-parse, the trace document must be
/// valid JSON, scores must be identical with tracing on, and the estimated
/// disabled-tracing overhead must stay under the 2% budget.
bool emit_and_check_trace(const json::Value& report, const std::filesystem::path& path) {
  if (!write_report(path, report.dump(2) + "\n")) return false;
  json::Value parsed;
  try {
    parsed = json::parse(util::read_text_file(path));
  } catch (const std::exception& e) {
    std::cerr << "FAIL " << path.string() << ": emitted JSON does not re-parse: " << e.what()
              << '\n';
    return false;
  }
  const double overhead = parsed.get_number("estimated_overhead_fraction", 1.0);
  const double budget = parsed.get_number("overhead_budget", 0.02);
  std::cout << path.filename().string() << ": " << parsed.get_number("ns_per_disabled_span", 0.0)
            << " ns/disabled span, " << parsed.get_number("spans_per_question", 0.0)
            << " spans/question, estimated overhead " << overhead * 100.0 << "% (budget "
            << budget * 100.0 << "%)\n";
  if (!parsed.get_bool("trace_doc_parses", false)) {
    std::cerr << "FAIL " << path.string() << ": trace document is not valid JSON\n";
    return false;
  }
  if (!parsed.get_bool("scores_identical_with_tracing", false)) {
    std::cerr << "FAIL " << path.string() << ": scores changed with tracing enabled\n";
    return false;
  }
  if (overhead >= budget) {
    std::cerr << "FAIL " << path.string() << ": disabled-tracing overhead " << overhead
              << " exceeds budget " << budget << '\n';
    return false;
  }
  return true;
}

/// Gate for BENCH_batch.json: must re-parse, the batched logits must be
/// bitwise identical to the serial oracle at every batch size, and batched
/// decode must actually pay off — tokens/s at B=4 >= 1.5x B=1.
bool emit_and_check_batch(const json::Value& report, const std::filesystem::path& path) {
  if (!write_report(path, report.dump(2) + "\n")) return false;
  json::Value parsed;
  try {
    parsed = json::parse(util::read_text_file(path));
  } catch (const std::exception& e) {
    std::cerr << "FAIL " << path.string() << ": emitted JSON does not re-parse: " << e.what()
              << '\n';
    return false;
  }
  const double speedup = parsed.get_number("speedup_b4", 0.0);
  const double gate = parsed.get_number("speedup_gate", 1.5);
  std::cout << path.filename().string() << ": B=1 " << parsed.get_number("tokens_per_s_b1", 0.0)
            << " tok/s, B=4 " << parsed.get_number("tokens_per_s_b4", 0.0) << " tok/s ("
            << speedup << "x, gate " << gate << "x), bit_identical="
            << (parsed.get_bool("bit_identical", false) ? "true" : "false") << '\n';
  if (!parsed.get_bool("bit_identical", false)) {
    std::cerr << "FAIL " << path.string()
              << ": batched decode diverged bitwise from the serial oracle\n";
    return false;
  }
  if (speedup < gate) {
    std::cerr << "FAIL " << path.string() << ": batched decode speedup " << speedup
              << "x at B=4 below the " << gate << "x gate\n";
    return false;
  }
  return true;
}

/// Gate for BENCH_quant.json: must re-parse, bf16 answers must match the
/// bf16-rounded fp32 reference exactly, and — unless dispatch landed on
/// the scalar table, whose fused kernels trade speed for oracle
/// bit-identity — bf16 decode must beat fp32 by the gate factor. int8 is
/// lossy by design: its answer flips and accuracy delta are reported, not
/// gated.
bool emit_and_check_quant(const json::Value& report, const std::filesystem::path& path) {
  if (!write_report(path, report.dump(2) + "\n")) return false;
  json::Value parsed;
  try {
    parsed = json::parse(util::read_text_file(path));
  } catch (const std::exception& e) {
    std::cerr << "FAIL " << path.string() << ": emitted JSON does not re-parse: " << e.what()
              << '\n';
    return false;
  }
  const std::string kernel = parsed.get_string("kernel", "");
  const double speedup = parsed.get_number("bf16_speedup", 0.0);
  const double gate = parsed.get_number("bf16_speedup_gate", 1.3);
  std::cout << path.filename().string() << ": fp32 "
            << parsed.get_number("tokens_per_s_fp32", 0.0) << " tok/s, bf16 "
            << parsed.get_number("tokens_per_s_bf16", 0.0) << " tok/s (" << speedup
            << "x, gate " << gate << "x), int8 "
            << parsed.get_number("tokens_per_s_int8", 0.0) << " tok/s, mcq_identical_bf16="
            << (parsed.get_bool("mcq_identical_bf16", false) ? "true" : "false")
            << ", int8 flips " << parsed.get_number("int8_answer_flips", -1.0)
            << " (accuracy delta " << parsed.get_number("int8_accuracy_delta", 0.0) << ")\n";
  if (!parsed.get_bool("mcq_identical_bf16", false)) {
    std::cerr << "FAIL " << path.string()
              << ": bf16-quantised answers diverged from the bf16-rounded fp32 reference\n";
    return false;
  }
  if (parsed.get_number("int8_answer_flips", -1.0) < 0.0) {
    std::cerr << "FAIL " << path.string() << ": int8 bounded-delta report missing\n";
    return false;
  }
  if (kernel != "scalar" && speedup < gate) {
    std::cerr << "FAIL " << path.string() << ": bf16 decode speedup " << speedup
              << "x below the " << gate << "x gate\n";
    return false;
  }
  return true;
}

/// Gate for BENCH_kv.json: must re-parse, paged forks must be bitwise
/// identical to the contiguous memcpy oracle, per-session KV bytes must be
/// >= 4x lower paged than contiguous at 64 live sessions, and the arena
/// must drain to zero blocks when the sessions go away.
bool emit_and_check_kv(const json::Value& report, const std::filesystem::path& path) {
  if (!write_report(path, report.dump(2) + "\n")) return false;
  json::Value parsed;
  try {
    parsed = json::parse(util::read_text_file(path));
  } catch (const std::exception& e) {
    std::cerr << "FAIL " << path.string() << ": emitted JSON does not re-parse: " << e.what()
              << '\n';
    return false;
  }
  const double ratio = parsed.get_number("memory_ratio", 0.0);
  const double gate = parsed.get_number("memory_gate", 4.0);
  std::cout << path.filename().string() << ": "
            << parsed.get_number("sessions", 0.0) << " sessions, contiguous "
            << parsed.get_number("contiguous_bytes_per_session", 0.0)
            << " B/session vs paged " << parsed.get_number("paged_bytes_per_session", 0.0)
            << " B/session (" << ratio << "x, gate " << gate << "x), fork_bit_identical="
            << (parsed.get_bool("fork_bit_identical", false) ? "true" : "false")
            << ", arena_drained="
            << (parsed.get_bool("arena_drained", false) ? "true" : "false") << '\n';
  if (!parsed.get_bool("fork_bit_identical", false)) {
    std::cerr << "FAIL " << path.string()
              << ": paged forks diverged bitwise from the contiguous oracle\n";
    return false;
  }
  if (!parsed.get_bool("arena_drained", false)) {
    std::cerr << "FAIL " << path.string() << ": arena kept live blocks after teardown\n";
    return false;
  }
  if (ratio < gate) {
    std::cerr << "FAIL " << path.string() << ": paged KV memory ratio " << ratio
              << "x below the " << gate << "x gate\n";
    return false;
  }
  return true;
}

int run_smoke(const std::filesystem::path& out_dir) {
  std::filesystem::create_directories(out_dir);
  bool ok = emit_and_check_gemm(smoke_gemm(), out_dir / "BENCH_gemm.json");
  ok = emit_and_check(smoke_prefill(), out_dir / "BENCH_prefill.json", "bit_identical") && ok;
  ok = emit_and_check_batch(smoke_batch(), out_dir / "BENCH_batch.json") && ok;
  ok = emit_and_check_kv(smoke_kv(), out_dir / "BENCH_kv.json") && ok;
  const EvalWorld world = make_eval_world();
  ok = emit_and_check_quant(smoke_quant(world), out_dir / "BENCH_quant.json") && ok;
  double cold_seconds_per_question = 0.0;
  std::vector<eval::QuestionResult> cold_results;
  ok = emit_and_check(smoke_eval(world, &cold_seconds_per_question, &cold_results),
                      out_dir / "BENCH_eval.json", "scores_identical") &&
       ok;
  ok = emit_and_check_trace(smoke_trace(world, cold_seconds_per_question, cold_results),
                            out_dir / "BENCH_trace.json") &&
       ok;
  std::cout << (ok ? "smoke bench OK" : "smoke bench FAILED") << '\n';
  return ok ? 0 : 1;
}

// ---------------------------------------------------------------------------
// --chaos-soak: the full three-method pipeline under a seeded fault schedule.
//
// Runs token-base, token-instruct and full-instruct on the synthetic eval
// world with journals, parallel workers and the prefix cache, while the
// chaos scheduler injects write faults / torn appends, read faults and
// allocation pressure at the question boundary. The run must finish (never
// abort), every question must be accounted for
// (answered + degraded-only + shed + parse-unanswered == total), and the
// journal left behind must reload CRC-clean with every surviving line
// bit-identical to the in-memory result. Violations exit nonzero.

/// Verifies one method's results + journal after the fault schedule is
/// disarmed, appending its report object to `methods`.
bool check_soak_method(const char* name, const std::vector<eval::QuestionResult>& results,
                       const eval::SupervisorStats& stats,
                       const std::filesystem::path& journal_path, std::size_t total,
                       json::Value& methods) {
  const eval::ScoreSummary summary = eval::summarize(results);
  const std::size_t answered = summary.total - summary.unanswered;
  // Full accounting: every question is exactly one of answered, degraded
  // (shed split out), or unanswered-by-extraction; nothing vanished.
  const bool accounted = summary.total == total && summary.shed <= summary.degraded &&
                         summary.degraded <= summary.unanswered &&
                         answered + (summary.degraded - summary.shed) + summary.shed +
                                 (summary.unanswered - summary.degraded) ==
                             total;

  // Reload the journal (injector disarmed by the caller): corrupted lines
  // — torn appends, merges — are dropped by the CRC check; every survivor
  // must match the in-memory result exactly.
  eval::EvalJournal reloaded(journal_path);
  std::size_t recovered = 0;
  bool consistent = true;
  for (std::size_t q = 0; q < total; ++q) {
    const auto entry = reloaded.lookup(q);
    if (!entry) continue;
    ++recovered;
    const eval::QuestionResult& r = results[q];
    consistent = consistent && entry->predicted == r.predicted &&
                 entry->correct == r.correct && entry->tier == r.tier &&
                 entry->method == r.method && entry->retries == r.retries &&
                 entry->degraded == r.degraded && entry->shed == r.shed;
  }
  consistent = consistent && reloaded.size() == recovered;  // no stray entries

  json::Value m = json::Value::object();
  m.set("method", name);
  m.set("total", static_cast<std::int64_t>(summary.total));
  m.set("answered", static_cast<std::int64_t>(answered));
  m.set("unanswered", static_cast<std::int64_t>(summary.unanswered));
  m.set("degraded", static_cast<std::int64_t>(summary.degraded));
  m.set("shed", static_cast<std::int64_t>(summary.shed));
  m.set("retried", static_cast<std::int64_t>(summary.retried));
  m.set("accuracy", summary.accuracy);
  m.set("cache_evictions", static_cast<std::int64_t>(stats.cache_evictions));
  m.set("parallelism_reductions", static_cast<std::int64_t>(stats.parallelism_reductions));
  m.set("journal_recovered", static_cast<std::int64_t>(recovered));
  m.set("journal_consistent", consistent);
  m.set("accounted", accounted);
  methods.push_back(std::move(m));

  std::cout << "chaos soak " << name << ": " << answered << " answered, "
            << summary.degraded << " degraded (" << summary.shed << " shed), "
            << summary.retried << " retried, " << stats.cache_evictions << " evictions, "
            << recovered << "/" << total << " journal lines recovered\n";
  if (!accounted) {
    std::cerr << "FAIL chaos soak " << name << ": question accounting violated (total="
              << summary.total << " expected=" << total << ")\n";
  }
  if (!consistent) {
    std::cerr << "FAIL chaos soak " << name
              << ": reloaded journal disagrees with in-memory results\n";
  }
  return accounted && consistent;
}

int run_chaos_soak(const std::filesystem::path& out_dir, std::uint64_t seed, double rate) {
  std::filesystem::create_directories(out_dir);
  // A larger question set than the smoke world: the soak's value is fault
  // coverage, and at ~1 attempt per question the schedule needs enough
  // draws for both fault flavours to actually land. 5 of each topic's 6
  // facts go to the benchmark, leaving a practice pool for the few-shot
  // block.
  const EvalWorld world = make_eval_world(/*questions_per_topic=*/5);
  const std::size_t total = world.mcqs.benchmark.size();
  std::cout << "chaos soak: seed=" << seed << " rate=" << rate << " questions=" << total
            << " workers=3 prefix_cache=on\n";

  // Raw-acquisition faults stay off (setup allocations have no fault
  // domain); the eval seam still injects allocation pressure, which is
  // what drives the degradation ladder.
  util::ChaosConfig chaos;
  chaos.seed = seed;
  chaos.rate = rate;
  chaos.allocs = false;

  eval::EvalRunOptions opts;
  opts.workers = 3;
  opts.prefix_cache = true;
  opts.retry.max_retries = 3;
  opts.retry.backoff_initial_ms = 0.5;  // keep the soak fast under ctest
  opts.retry.backoff_max_ms = 2.0;

  bool ok = true;
  json::Value methods = json::Value::array();
  const struct {
    const char* name;
    bool full_instruct;
  } kMethods[] = {{"token_base", false}, {"token_instruct", false}, {"full_instruct", true}};
  for (const auto& method : kMethods) {
    const std::filesystem::path journal_path =
        out_dir / (std::string("chaos_") + method.name + ".jsonl");
    std::error_code ec;
    std::filesystem::remove(journal_path, ec);  // fresh run, not a replay
    eval::EvalJournal journal(journal_path);
    eval::SupervisorStats stats;
    std::vector<eval::QuestionResult> results;
    // Each method re-arms the schedule, so its fault sequence depends only
    // on (seed, rate), not on what ran before it.
    util::FaultInjector::instance().arm_chaos(chaos);
    try {
      if (method.full_instruct) {
        results = eval::run_full_instruct_benchmark(world.model, world.tok,
                                                    world.mcqs.benchmark, {}, &journal,
                                                    opts, nullptr, &stats);
      } else {
        results = eval::run_token_benchmark(world.model, world.tok, world.mcqs.benchmark,
                                            world.mcqs.practice, &journal, {}, opts,
                                            nullptr, &stats);
      }
      util::FaultInjector::instance().disarm();
    } catch (const std::exception& e) {
      util::FaultInjector::instance().disarm();
      std::cerr << "FAIL chaos soak " << method.name
                << ": pipeline aborted instead of degrading: " << e.what() << '\n';
      ok = false;
      continue;
    }
    ok = check_soak_method(method.name, results, stats, journal_path, total, methods) && ok;
  }

  json::Value report = json::Value::object();
  report.set("benchmark", "chaos_soak");
  report.set("kernel", tensor::kernel_name());
  report.set("chaos_seed", static_cast<std::int64_t>(seed));
  report.set("chaos_rate", rate);
  report.set("questions", static_cast<std::int64_t>(total));
  report.set("workers", static_cast<std::int64_t>(opts.workers));
  report.set("methods", std::move(methods));
  auto& reg = util::metrics::registry();
  json::Value faults = json::Value::object();
  faults.set("write", static_cast<std::int64_t>(reg.counter("chaos.write_faults").value()));
  faults.set("read", static_cast<std::int64_t>(reg.counter("chaos.read_faults").value()));
  faults.set("alloc", static_cast<std::int64_t>(reg.counter("chaos.alloc_faults").value()));
  faults.set("eval", static_cast<std::int64_t>(reg.counter("chaos.eval_faults").value()));
  report.set("injected_faults", std::move(faults));
  json::Value memory = json::Value::object();
  memory.set("limit_bytes",
             static_cast<std::int64_t>(util::ResourceBudget::instance().limit_bytes()));
  memory.set("peak_tracked_bytes",
             static_cast<std::int64_t>(util::ResourceBudget::instance().peak_bytes()));
  memory.set("denials", static_cast<std::int64_t>(util::ResourceBudget::instance().denials()));
  report.set("memory", std::move(memory));

  const std::filesystem::path path = out_dir / "BENCH_chaos.json";
  ok = write_report(path, report.dump(2) + "\n") && ok;
  try {
    json::parse(util::read_text_file(path));
  } catch (const std::exception& e) {
    std::cerr << "FAIL " << path.string() << ": emitted JSON does not re-parse: " << e.what()
              << '\n';
    ok = false;
  }
  std::cout << (ok ? "chaos soak OK" : "chaos soak FAILED") << '\n';
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool chaos_soak = false;
  std::filesystem::path out_dir = ".";
  std::filesystem::path trace_path;
  // Args handled here are filtered out of argv so google-benchmark does not
  // reject them as unrecognized. `consumes_value` mirrors the `--key value`
  // forms ArgParser accepts.
  const auto is_local = [](const std::string& arg, const char* name, bool* consumes_value) {
    const std::string flag = std::string("--") + name;
    if (arg == flag) {
      *consumes_value = true;
      return true;
    }
    *consumes_value = false;
    return arg.rfind(flag + "=", 0) == 0;
  };
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    bool consumes = false;
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--chaos-soak") {
      chaos_soak = true;
    } else if (arg == "--out-dir" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      out_dir = arg.substr(std::strlen("--out-dir="));
    } else if (arg == "--trace-json" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg.rfind("--trace-json=", 0) == 0) {
      trace_path = arg.substr(std::strlen("--trace-json="));
    } else if (is_local(arg, "chaos-seed", &consumes) ||
               is_local(arg, "chaos-rate", &consumes) ||
               is_local(arg, "memory-budget-mb", &consumes)) {
      // Parsed below through ArgParser; only filtered here.
      if (consumes && i + 1 < argc) ++i;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  const util::ArgParser args(argc, argv);
  util::ResourceBudget::init_from_args(args);
  // Locally-handled flags and google-benchmark's --benchmark_* family are
  // consumed outside ArgParser; everything else must be a known key.
  args.fail_on_unconsumed({"smoke", "chaos-soak", "out-dir", "trace-json", "chaos-seed",
                           "chaos-rate", "benchmark_*"});
  // Ctrl-C mid-suite still flushes the armed trace session (journals are
  // per-record durable); the helper then exits 128+signo.
  util::shutdown::install([] { util::trace::finish(); });
  if (!trace_path.empty()) util::trace::start(trace_path);
  if (chaos_soak) {
    const int rc = run_chaos_soak(
        out_dir, static_cast<std::uint64_t>(args.get_int("chaos-seed", 20260809)),
        args.get_double("chaos-rate", 0.15));
    util::trace::finish();
    return rc;
  }
  util::FaultInjector::init_chaos_from_args(args);
  if (smoke) {
    const int rc = run_smoke(out_dir);
    util::trace::finish();
    return rc;
  }

  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  util::trace::finish();
  return 0;
}
