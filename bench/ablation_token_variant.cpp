// Experiment E5 — the token-representation detection ablation (paper
// §V-B): "some models represent answer choices as 'A'..'D', others as
// ' A'..' D'; our code dynamically identifies the correct representation
// by examining the top ten tokens".
//
// This bench evaluates the same model three ways: forced bare-letter
// probing, forced leading-space probing, and the dynamic detection the
// evaluator actually uses — demonstrating that picking the wrong
// representation destroys the benchmark score while dynamic detection
// matches the better variant.

#include <cstdio>

#include "core/experiment.hpp"
#include "eval/prompts.hpp"
#include "eval/token_method.hpp"
#include "util/cli.hpp"
#include "util/fault_injection.hpp"
#include "util/resource_budget.hpp"
#include "util/logging.hpp"
#include "util/shutdown.hpp"
#include "util/trace.hpp"
#include "util/string_utils.hpp"

using namespace astromlab;

namespace {

double evaluate_with(const nn::GptModel& model, const core::World& world,
                     const eval::LetterTokens& letters) {
  const auto fewshot = eval::pick_fewshot_examples(world.mcqs.practice);
  std::size_t correct = 0;
  for (const corpus::McqItem& item : world.mcqs.benchmark) {
    const int predicted = eval::token_predict(model, world.tok, letters, item, fewshot);
    if (predicted == static_cast<int>(item.correct)) ++correct;
  }
  return 100.0 * static_cast<double>(correct) /
         static_cast<double>(world.mcqs.benchmark.size());
}

eval::LetterTokens forced_family(const tokenizer::BpeTokenizer& tok, bool leading_space) {
  eval::LetterTokens letters;
  letters.leading_space = leading_space;
  letters.feed_space_first = !leading_space;
  for (int i = 0; i < 4; ++i) {
    std::string text;
    if (leading_space) text += ' ';
    text += static_cast<char>('A' + i);
    const auto id = tok.token_to_id(text);
    letters.ids[static_cast<std::size_t>(i)] =
        id.value_or(static_cast<tokenizer::TokenId>('A' + i));
  }
  return letters;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  log::set_level(log::parse_level(args.get_string("log", "info")));
  util::ResourceBudget::init_from_args(args);
  util::FaultInjector::init_chaos_from_args(args);
  util::trace::init_from_args(args);

  core::WorldConfig config;
  config.size_multiplier = args.get_double("mult", 1.0);
  const std::string cache = args.get_string("cache", core::default_cache_dir().string());
  const auto eval_options = eval::eval_run_options_from_args(args);
  args.fail_on_unconsumed();
  // Ctrl-C mid-run still flushes the armed trace session (checkpoints and
  // the eval journal are durable as written); then exits 128+signo.
  util::shutdown::install([] { util::trace::finish(); });

  core::World world = core::build_world(config);
  core::Pipeline pipeline(world, cache);
  pipeline.set_eval_options(eval_options);
  const nn::GptModel model = pipeline.base_model(core::Scale::kS8);

  const auto fewshot = eval::pick_fewshot_examples(world.mcqs.practice);
  const eval::LetterTokens detected =
      eval::detect_letter_tokens(model, world.tok, world.mcqs.practice, fewshot);

  const double bare = evaluate_with(model, world, forced_family(world.tok, false));
  // Forced-bare WITHOUT the space feed models the naive evaluator that
  // probes "A" directly at the "Answer:" position.
  eval::LetterTokens naive = forced_family(world.tok, false);
  naive.feed_space_first = false;
  const double naive_bare = evaluate_with(model, world, naive);
  const double spaced = evaluate_with(model, world, forced_family(world.tok, true));
  const double dynamic = evaluate_with(model, world, detected);

  std::printf("\nE5: TOKEN-REPRESENTATION DETECTION ABLATION (S8 base model)\n\n");
  std::printf("%s%s\n", util::pad_right("probing strategy", 44).c_str(), "score (%)");
  std::printf("%s\n", std::string(56, '-').c_str());
  std::printf("%s%s\n", util::pad_right("naive bare 'A'..'D' at \"Answer:\"", 44).c_str(),
              util::format_fixed(naive_bare, 1).c_str());
  std::printf("%s%s\n",
              util::pad_right("forced bare 'A'..'D' (space fed first)", 44).c_str(),
              util::format_fixed(bare, 1).c_str());
  std::printf("%s%s\n", util::pad_right("forced spaced ' A'..' D'", 44).c_str(),
              util::format_fixed(spaced, 1).c_str());
  std::printf("%s%s   <- used by the harness\n",
              util::pad_right(std::string("dynamic top-10 detection (picked ") +
                                  (detected.leading_space ? "spaced)" : "bare)"),
                              44).c_str(),
              util::format_fixed(dynamic, 1).c_str());

  const double best = std::max(bare, spaced);
  std::printf("\ndynamic detection %s the better fixed variant (%.1f vs %.1f)\n",
              dynamic >= best - 0.1 ? "matches" : "MISSES", dynamic, best);
  util::trace::finish();
  return 0;
}
