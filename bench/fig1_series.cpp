// Experiment E2 — reproduces Figure 1 of the paper: the Table-I scores
// rendered as per-model series (three symbols per model) against the
// native full-instruct baselines. Shares the model/result cache with
// table1_models, so running that bench first makes this one instant.

#include <cstdio>

#include "core/experiment.hpp"
#include "core/study.hpp"
#include "eval/report.hpp"
#include "util/cli.hpp"
#include "util/fault_injection.hpp"
#include "util/resource_budget.hpp"
#include "util/io.hpp"
#include "util/logging.hpp"
#include "util/shutdown.hpp"
#include "util/trace.hpp"

using namespace astromlab;

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  log::set_level(log::parse_level(args.get_string("log", "info")));
  util::ResourceBudget::init_from_args(args);
  util::FaultInjector::init_chaos_from_args(args);
  util::trace::init_from_args(args);

  core::WorldConfig config;
  config.size_multiplier = args.get_double("mult", 1.0);
  const std::string cache = args.get_string("cache", core::default_cache_dir().string());
  const auto eval_options = eval::eval_run_options_from_args(args);
  args.fail_on_unconsumed();
  // Ctrl-C mid-study still flushes the armed trace session (checkpoints
  // and the eval journal are durable as written); then exits 128+signo.
  util::shutdown::install([] { util::trace::finish(); });

  core::World world = core::build_world(config);
  core::Pipeline pipeline(std::move(world), cache);
  pipeline.set_eval_options(eval_options);
  const core::StudyResult result = core::run_table1_study(pipeline);

  std::printf("\n== MEASURED (this reproduction) ==\n\n%s\n",
              eval::render_fig1(result.table_rows()).c_str());
  std::printf("== PAPER FIGURE 1 (reference values) ==\n\n%s\n",
              eval::render_fig1(core::paper_reference_rows()).c_str());

  // Per-series commentary mirroring the figure caption.
  for (const core::StudyRow& row : result.rows) {
    if (row.row.is_native || !row.scores.has_instruct) continue;
    std::printf("%s: full-instruct %.1f / token-instruct %.1f / token-base %.1f "
                "(frontier-question accuracy %.1f%%)\n",
                row.row.name.c_str(), row.row.full_instruct, row.row.token_instruct,
                row.row.token_base, row.scores.token_base.frontier_accuracy * 100.0);
  }

  const std::string csv_path = cache + "/fig1.csv";
  try {
    util::write_text_file(csv_path, eval::render_csv(result.table_rows()));
  } catch (const util::IoError& e) {
    std::fprintf(stderr, "FAIL: could not write %s: %s\n", csv_path.c_str(), e.what());
    util::trace::finish();
    return 1;
  }
  std::printf("\nCSV written to %s\n", csv_path.c_str());
  util::trace::finish();
  return 0;
}
