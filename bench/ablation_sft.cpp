// Experiment E3 — the SFT-bottleneck ablation (paper §VI).
//
// The paper attributes the instruct models' underperformance to the small,
// astronomy-light SFT set, and reports that scaling the astronomy Q&A set
// by orders of magnitude resolves it. This bench sweeps SFT size and
// astronomy fraction on the S8-AIC lineage and reports the full-instruct
// score and its gap to the (fixed) base-token score: the gap should close
// as the set grows and becomes astronomy-focused.

#include <cstdio>

#include "core/experiment.hpp"
#include "util/cli.hpp"
#include "util/fault_injection.hpp"
#include "util/resource_budget.hpp"
#include "util/logging.hpp"
#include "util/shutdown.hpp"
#include "util/trace.hpp"
#include "util/string_utils.hpp"

using namespace astromlab;

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  log::set_level(log::parse_level(args.get_string("log", "info")));
  util::ResourceBudget::init_from_args(args);
  util::FaultInjector::init_chaos_from_args(args);
  util::trace::init_from_args(args);

  core::WorldConfig config;
  config.size_multiplier = args.get_double("mult", 1.0);
  const std::string cache = args.get_string("cache", core::default_cache_dir().string());
  const auto eval_options = eval::eval_run_options_from_args(args);
  args.fail_on_unconsumed();
  // Ctrl-C mid-run still flushes the armed trace session (checkpoints and
  // the eval journal are durable as written); then exits 128+signo.
  util::shutdown::install([] { util::trace::finish(); });

  core::World world = core::build_world(config);
  core::Pipeline pipeline(std::move(world), cache);
  pipeline.set_eval_options(eval_options);

  // Fixed lineage: S8 base + AIC continual pretraining.
  const eval::ScoreSummary base_token = pipeline.token_benchmark(
      pipeline.cpt_model(core::Scale::kS8, corpus::CptVariant::kAic), "S8-cptAIC");

  struct Sweep {
    double size_factor;    // multiple of the paper-inherited set size
    double astro_fraction;
  };
  const std::vector<Sweep> sweeps = {
      {1.0, 1.0 / 3.0},  // the paper's inherited set
      {1.0, 1.0},        // same size, astronomy-focused
      {3.0, 1.0 / 3.0},  // larger, still general-heavy
      {3.0, 1.0},        // larger and astronomy-focused ("50M Q&A" analog)
  };

  std::printf("\nE3: SFT SIZE / ASTRO-FRACTION ABLATION (S8-AIC lineage)\n");
  std::printf("base-token score of the CPT model: %s%%\n\n",
              eval::percent(base_token.accuracy).c_str());
  std::printf("%s%s%s%s%s\n", util::pad_right("SFT dialogues", 15).c_str(),
              util::pad_right("astro frac", 12).c_str(),
              util::pad_right("full-instruct", 15).c_str(),
              util::pad_right("token-instruct", 16).c_str(), "gap to base-token");
  std::printf("%s\n", std::string(72, '-').c_str());

  const corpus::SftSpec baseline = core::sft_data_spec(core::SftKind::kAstroLLaMA,
                                                       pipeline.world().config);
  for (const Sweep& sweep : sweeps) {
    corpus::SftSpec spec = baseline;
    spec.total_dialogues =
        static_cast<std::size_t>(baseline.total_dialogues * sweep.size_factor);
    spec.astro_fraction = sweep.astro_fraction;
    // Astronomy-focused sets answer in the MCQ JSON format throughout.
    if (sweep.astro_fraction > 0.9) spec.general_mcq_share = 1.0;
    pipeline.set_sft_spec_override(spec);

    const nn::GptModel instruct = pipeline.instruct_model(
        core::Scale::kS8, corpus::CptVariant::kAic, core::SftKind::kAstroLLaMA);
    const std::string tag = "S8-cptAIC-sftsweep-" + std::to_string(spec.total_dialogues) +
                            "-" + util::format_fixed(sweep.astro_fraction, 2);
    const eval::ScoreSummary full = pipeline.full_instruct_benchmark(instruct, tag);
    const eval::ScoreSummary token = pipeline.token_benchmark(instruct, tag);

    std::printf("%s%s%s%s%+.1f\n",
                util::pad_right(std::to_string(spec.total_dialogues), 15).c_str(),
                util::pad_right(util::format_fixed(sweep.astro_fraction, 2), 12).c_str(),
                util::pad_right(eval::percent(full.accuracy), 15).c_str(),
                util::pad_right(eval::percent(token.accuracy), 16).c_str(),
                (full.accuracy - base_token.accuracy) * 100.0);
  }
  pipeline.clear_sft_spec_override();

  std::printf("\npaper finding: the inherited ~30k mostly-general set leaves a large\n"
              "negative gap; scaling astronomy Q&A ('~50M, de Haan et al., in prep.')\n"
              "resolves it. The gap column should shrink toward zero down the table.\n");
  util::trace::finish();
  return 0;
}
