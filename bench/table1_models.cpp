// Experiment E1 — reproduces Table I of the paper: the full model zoo
// (native LLaMA analogs + AstroLLaMA CPT/SFT lineages) evaluated under the
// three benchmarking methods.
//
// Options (CLI --key=value or ASTROMLAB_<KEY> env):
//   --mult=<f>         world size multiplier (default 1.0; smaller = faster)
//   --cache=<dir>      cache directory (default $ASTROMLAB_CACHE or
//                      .astromlab_cache)
//   --log=<level>      debug|info|warn|error (default info)
//   --save-every=<n>   training snapshot cadence in steps for crash-safe
//                      resume (default 25; 0 disables durability)
//   --question-budget=<s>  wall-clock seconds per full-instruct question
//                      before the watchdog degrades it to unanswered
//                      (default 30; 0 disables)
//   --eval-workers=<n>     worker threads for benchmark evaluation
//                      (default 0 = serial; any value gives bit-identical
//                      scores and journals)
//   --retry-max=<n>        transient-fault retries per question (default 2)
//   --question-deadline=<s>  per-question deadline for ALL methods,
//                      enforced in-flight via cancellation (default 0 = off)
//   --straggler-factor=<f> cancel questions exceeding f x the running
//                      median latency (default 0 = off)
//   --trace-json=<path>    collect Chrome trace_event spans for the whole
//                      run and write them (plus a metrics snapshot) to
//                      <path> on exit; scores and journals are bit-identical
//                      with tracing on or off
//
// Trained models and evaluation results are cached; the first run trains
// everything (several minutes on one core), later runs replay from cache.
// A killed run resumes: training restarts bit-identically from the last
// snapshot (<cache>/models/<key>.state + .resume.ckpt) and evaluation
// replays only unanswered questions from <cache>/results/<key>.jsonl.

#include <cstdio>

#include "core/experiment.hpp"
#include "core/study.hpp"
#include "eval/report.hpp"
#include "util/cli.hpp"
#include "util/fault_injection.hpp"
#include "util/resource_budget.hpp"
#include "util/io.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"
#include "util/string_utils.hpp"
#include "util/shutdown.hpp"
#include "util/trace.hpp"

using namespace astromlab;

namespace {

/// Checks the acceptance criteria from DESIGN.md §5 against the measured
/// rows and prints a pass/fail line per criterion.
void check_acceptance(const core::StudyResult& result) {
  const auto score = [&](const char* name, double eval::ModelRow::*field) {
    const core::StudyRow* row = result.find(name);
    return row != nullptr ? row->row.*field : -1.0;
  };
  struct Criterion {
    std::string name;
    bool pass;
  };
  std::vector<Criterion> criteria;

  const double s7_base = score("LLaMA-2-7B", &eval::ModelRow::token_base);
  criteria.push_back({"S7: AstroLLaMA-AIC base-token below native (catastrophic forgetting)",
                      score("AstroLLaMA-2-7B-AIC", &eval::ModelRow::token_base) < s7_base});
  criteria.push_back({"S7: AstroLLaMA-Abstract base-token below native",
                      score("AstroLLaMA-2-7B-Abstract", &eval::ModelRow::token_base) < s7_base});

  const double s8_base = score("LLaMA-3-8B", &eval::ModelRow::token_base);
  const double s8_aic = score("AstroLLaMA-3-8B-AIC", &eval::ModelRow::token_base);
  const double s8_sum = score("AstroLLaMA-3-8B-Summary", &eval::ModelRow::token_base);
  criteria.push_back({"S8: AIC base-token within ~2 pts of native (wash)",
                      std::abs(s8_aic - s8_base) <= 2.5});
  criteria.push_back({"S8: Summary base-token >= AIC base-token", s8_sum >= s8_aic - 0.5});

  const double s70_base = score("LLaMA-2-70B", &eval::ModelRow::token_base);
  const double s70_aic = score("AstroLLaMA-2-70B-AIC", &eval::ModelRow::token_base);
  criteria.push_back({"S70: AstroLLaMA-AIC base-token ABOVE native (CPT pays off)",
                      s70_aic > s70_base});
  criteria.push_back(
      {"S70: instruct-token also above native",
       score("AstroLLaMA-2-70B-AIC", &eval::ModelRow::token_instruct) >
           score("LLaMA-2-70B", &eval::ModelRow::token_instruct)});

  bool ordering_ok = true;
  for (const char* name : {"AstroLLaMA-2-7B-AIC", "AstroLLaMA-3-8B-AIC",
                           "AstroLLaMA-3-8B-Summary", "AstroLLaMA-2-70B-AIC"}) {
    const double fi = score(name, &eval::ModelRow::full_instruct);
    const double tb = score(name, &eval::ModelRow::token_base);
    if (fi > tb + 1.5) ordering_ok = false;
  }
  criteria.push_back(
      {"All specialised models: full-instruct <= base-token (SFT bottleneck)", ordering_ok});

  std::printf("\nACCEPTANCE CRITERIA (see DESIGN.md #5)\n");
  for (const Criterion& criterion : criteria) {
    std::printf("  [%s] %s\n", criterion.pass ? "PASS" : "FAIL", criterion.name.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  log::set_level(log::parse_level(args.get_string("log", "info")));
  util::ResourceBudget::init_from_args(args);
  util::FaultInjector::init_chaos_from_args(args);
  util::trace::init_from_args(args);

  core::WorldConfig config;
  config.size_multiplier = args.get_double("mult", 1.0);
  const std::string cache =
      args.get_string("cache", core::default_cache_dir().string());
  const std::size_t save_every = static_cast<std::size_t>(args.get_int("save-every", 25));
  const double question_budget = args.get_double("question-budget", 30.0);
  const auto eval_options = eval::eval_run_options_from_args(args);
  args.fail_on_unconsumed();
  // Ctrl-C mid-study still flushes the armed trace session (checkpoints
  // and the eval journal are durable as written); then exits 128+signo.
  util::shutdown::install([] { util::trace::finish(); });

  util::Stopwatch watch;
  core::World world = core::build_world(config);
  core::Pipeline pipeline(std::move(world), cache);
  pipeline.set_save_every(save_every);
  pipeline.set_question_budget_seconds(question_budget);
  pipeline.set_eval_options(eval_options);
  const core::StudyResult result = core::run_table1_study(pipeline);

  std::printf("\n== MEASURED (this reproduction, %zu MCQs) ==\n\n",
              pipeline.world().mcqs.benchmark.size());
  std::printf("%s\n", eval::render_table1(result.table_rows()).c_str());

  std::printf("== PAPER TABLE I (reference values) ==\n\n%s\n",
              eval::render_table1(core::paper_reference_rows()).c_str());

  check_acceptance(result);

  const std::string csv_path = cache + "/table1.csv";
  try {
    util::write_text_file(csv_path, eval::render_csv(result.table_rows()));
  } catch (const util::IoError& e) {
    // A silently missing CSV would read as "the study never ran" to any
    // downstream consumer; fail the whole bench instead.
    std::fprintf(stderr, "FAIL: could not write %s: %s\n", csv_path.c_str(), e.what());
    util::trace::finish();
    return 1;
  }
  std::printf("\nCSV written to %s\n", csv_path.c_str());
  std::printf("total wall time: %.1fs\n", watch.seconds());
  util::trace::finish();
  return 0;
}
