// Experiments E6/E7 — the paper's cost accounting and value framing.
//
// E6: the analytic GPU-hour model vs every A100-hour figure the paper
//     reports (§III) plus the §VII O(10^4)-O(10^5) extrapolations.
// E7: the Ting-et-al score→value mapping ("3.5 points ~ 10x
//     cost-efficiency"), applied to the measured 70B CPT gain when the
//     table1 study has been run (cache hit), else to the paper's 2.1.

#include <cstdio>

#include "core/cost_model.hpp"
#include "core/experiment.hpp"
#include "core/study.hpp"
#include "core/value_model.hpp"
#include "util/cli.hpp"
#include "util/fault_injection.hpp"
#include "util/resource_budget.hpp"
#include "util/logging.hpp"
#include "util/shutdown.hpp"
#include "util/trace.hpp"

using namespace astromlab;

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  log::set_level(log::parse_level(args.get_string("log", "warn")));
  util::ResourceBudget::init_from_args(args);
  util::FaultInjector::init_chaos_from_args(args);
  util::trace::init_from_args(args);

  // Consume every flag up front (some are only *used* on the cached-study
  // path) so unknown options fail loudly regardless of which path runs.
  const std::string cache = args.get_string("cache", core::default_cache_dir().string());
  const bool use_cache = args.get_bool("use-study-cache", true);
  const double size_multiplier = args.get_double("mult", 1.0);
  const auto eval_options = eval::eval_run_options_from_args(args);
  args.fail_on_unconsumed();
  // Ctrl-C mid-run still flushes the armed trace session; exits 128+signo.
  util::shutdown::install([] { util::trace::finish(); });

  std::printf("\nE6: GPU-HOUR COST MODEL\n\n%s\n",
              core::render_cost_table(core::reproduce_paper_costs()).c_str());

  // E7: prefer the measured gain if the study results are cached.
  double gain = 2.1;          // paper: 76.0 - 73.9
  double astro70_score = 76.0;
  bool measured = false;
  if (use_cache) {
    try {
      core::WorldConfig config;
      config.size_multiplier = size_multiplier;
      core::World world = core::build_world(config);
      core::Pipeline pipeline(std::move(world), cache);
      pipeline.set_eval_options(eval_options);
      // Only consult the caches; never train from this bench.
      namespace fs = std::filesystem;
      std::size_t cached_models = 0;
      if (fs::exists(fs::path(cache) / "models")) {
        for (const auto& entry : fs::directory_iterator(fs::path(cache) / "models")) {
          (void)entry;
          ++cached_models;
        }
      }
      if (cached_models >= 8) {
        const core::StudyResult result = core::run_table1_study(pipeline);
        const core::StudyRow* native = result.find("LLaMA-2-70B");
        const core::StudyRow* astro = result.find("AstroLLaMA-2-70B-AIC");
        if (native != nullptr && astro != nullptr) {
          gain = astro->row.token_base - native->row.token_base;
          astro70_score = astro->row.token_base;
          measured = true;
        }
      }
    } catch (const std::exception& e) {
      log::warn() << "study cache unavailable (" << e.what() << "); using paper values";
    }
  }

  std::printf("E7: %s\n%s\n",
              measured ? "(using the MEASURED 70B gain from the cached table1 study)"
                       : "(study cache not found; using the paper's reported gain)",
              core::render_value_analysis(gain, astro70_score).c_str());
  util::trace::finish();
  return 0;
}
