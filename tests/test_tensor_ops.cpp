#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <tuple>
#include <vector>

#include "tensor/bf16.hpp"
#include "tensor/ops.hpp"
#include "tensor/quant.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace astromlab::tensor {
namespace {

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.numel(), 24u);
  EXPECT_EQ(t.dim(1), 3u);
  EXPECT_EQ(t.shape_string(), "[2, 3, 4]");
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillAndReductions) {
  Tensor t({4, 4});
  t.fill(0.5f);
  EXPECT_FLOAT_EQ(t.sum(), 8.0f);
  t.at(2, 3) = -3.0f;
  EXPECT_FLOAT_EQ(t.abs_max(), 3.0f);
  EXPECT_NEAR(t.squared_norm(), 15 * 0.25 + 9.0, 1e-6);
}

TEST(Tensor, ReshapeValidatesCount) {
  Tensor t({2, 6});
  t.reshape({3, 4});
  EXPECT_EQ(t.dim(0), 3u);
  EXPECT_THROW(t.reshape({5, 5}), std::invalid_argument);
}

TEST(Tensor, GaussianInitHasRequestedScale) {
  util::Rng rng(3);
  Tensor t({100, 100});
  t.fill_gaussian(rng, 0.02f);
  const double std_estimate = std::sqrt(t.squared_norm() / static_cast<double>(t.numel()));
  EXPECT_NEAR(std_estimate, 0.02, 0.001);
}

TEST(Tensor, MaxAbsDiff) {
  Tensor a({2, 2}), b({2, 2});
  a.at(1, 1) = 3.0f;
  b.at(1, 1) = 2.0f;
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 1.0f);
  Tensor c({3});
  EXPECT_THROW(max_abs_diff(a, c), std::invalid_argument);
}

// ---- sgemm vs a naive reference across transpose modes and shapes ----

void naive_gemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n, std::size_t k,
                float alpha, const std::vector<float>& a, const std::vector<float>& b,
                float beta, std::vector<float>& c) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = trans_a ? a[p * m + i] : a[i * k + p];
        const float bv = trans_b ? b[j * k + p] : b[p * n + j];
        acc += static_cast<double>(av) * bv;
      }
      c[i * n + j] = static_cast<float>(alpha * acc + beta * c[i * n + j]);
    }
  }
}

struct GemmCase {
  bool trans_a, trans_b;
  std::size_t m, n, k;
  float alpha, beta;
};

class SgemmTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(SgemmTest, MatchesNaiveReference) {
  const GemmCase p = GetParam();
  util::Rng rng(91);
  std::vector<float> a(p.m * p.k), b(p.k * p.n), c(p.m * p.n), c_ref;
  for (float& v : a) v = static_cast<float>(rng.next_gaussian());
  for (float& v : b) v = static_cast<float>(rng.next_gaussian());
  for (float& v : c) v = static_cast<float>(rng.next_gaussian());
  c_ref = c;

  const std::size_t lda = p.trans_a ? p.m : p.k;
  const std::size_t ldb = p.trans_b ? p.k : p.n;
  sgemm(p.trans_a, p.trans_b, p.m, p.n, p.k, p.alpha, a.data(), lda, b.data(), ldb, p.beta,
        c.data(), p.n);
  naive_gemm(p.trans_a, p.trans_b, p.m, p.n, p.k, p.alpha, a, b, p.beta, c_ref);

  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], c_ref[i], 1e-3f * (1.0f + std::abs(c_ref[i]))) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, SgemmTest,
    ::testing::Values(
        GemmCase{false, false, 7, 9, 11, 1.0f, 0.0f},
        GemmCase{false, true, 7, 9, 11, 1.0f, 0.0f},
        GemmCase{true, false, 7, 9, 11, 1.0f, 0.0f},
        GemmCase{true, true, 7, 9, 11, 1.0f, 0.0f},
        GemmCase{false, false, 1, 64, 32, 1.0f, 1.0f},    // matvec accumulate
        GemmCase{false, true, 33, 17, 65, 0.5f, 1.0f},    // alpha & beta
        GemmCase{true, false, 16, 16, 128, 1.0f, 1.0f},   // gradient shape
        GemmCase{false, false, 64, 64, 64, 1.0f, 0.0f},   // square, blocked path
        GemmCase{false, false, 3, 5, 1, 2.0f, 0.5f},      // k=1 edge
        GemmCase{false, true, 1, 1, 7, 1.0f, 0.0f}));     // dot product shape

TEST(Sgemm, ZeroSizeIsNoop) {
  std::vector<float> c = {1.0f, 2.0f};
  sgemm(false, false, 0, 2, 3, 1.0f, nullptr, 3, nullptr, 2, 0.0f, c.data(), 2);
  EXPECT_EQ(c[0], 1.0f);  // m == 0: untouched
  sgemm(false, false, 1, 2, 0, 1.0f, nullptr, 1, nullptr, 2, 0.0f, c.data(), 2);
  EXPECT_EQ(c[0], 0.0f);  // k == 0 with beta 0: cleared
}

// ---- property tests: randomized shapes and adversarial strides ----

/// Stride-aware reference: the same triple loop as naive_gemm but honouring
/// arbitrary leading dimensions, so padded layouts can be checked too.
void naive_gemm_strided(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
                        std::size_t k, float alpha, const std::vector<float>& a,
                        std::size_t lda, const std::vector<float>& b, std::size_t ldb,
                        float beta, std::vector<float>& c, std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = trans_a ? a[p * lda + i] : a[i * lda + p];
        const float bv = trans_b ? b[j * ldb + p] : b[p * ldb + j];
        acc += static_cast<double>(av) * bv;
      }
      c[i * ldc + j] = static_cast<float>(alpha * acc + beta * c[i * ldc + j]);
    }
  }
}

TEST(SgemmProperty, RandomShapesAndAdversarialStridesMatchNaive) {
  util::Rng rng(20250807);
  const float alphas[] = {1.0f, 0.5f, -1.0f, 2.0f};
  const float betas[] = {0.0f, 1.0f, 0.5f, -0.5f};
  for (int trial = 0; trial < 40; ++trial) {
    const bool trans_a = rng.next_bernoulli(0.5);
    const bool trans_b = rng.next_bernoulli(0.5);
    const std::size_t m = 1 + rng.next_below(24);
    const std::size_t n = 1 + rng.next_below(24);
    const std::size_t k = 1 + rng.next_below(24);
    const float alpha = alphas[rng.next_below(4)];
    const float beta = betas[rng.next_below(4)];
    // Leading dims at or beyond the logical widths, with live garbage in
    // the padding: the kernel must neither read it into results nor
    // overwrite it.
    const std::size_t a_rows = trans_a ? k : m, a_cols = trans_a ? m : k;
    const std::size_t b_rows = trans_b ? n : k, b_cols = trans_b ? k : n;
    const std::size_t lda = a_cols + rng.next_below(5);
    const std::size_t ldb = b_cols + rng.next_below(5);
    const std::size_t ldc = n + rng.next_below(5);
    std::vector<float> a(a_rows * lda), b(b_rows * ldb), c(m * ldc);
    for (float& v : a) v = static_cast<float>(rng.next_gaussian());
    for (float& v : b) v = static_cast<float>(rng.next_gaussian());
    for (float& v : c) v = static_cast<float>(rng.next_gaussian());
    std::vector<float> c_ref = c;
    const std::vector<float> c_before = c;

    sgemm(trans_a, trans_b, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta, c.data(), ldc);
    naive_gemm_strided(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c_ref, ldc);

    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < ldc; ++j) {
        const std::size_t idx = i * ldc + j;
        if (j < n) {
          EXPECT_NEAR(c[idx], c_ref[idx], 1e-3f * (1.0f + std::abs(c_ref[idx])))
              << "trial " << trial << " (" << i << "," << j << ") m=" << m << " n=" << n
              << " k=" << k << " lda=" << lda << " ldb=" << ldb << " ldc=" << ldc
              << " tA=" << trans_a << " tB=" << trans_b;
        } else {
          EXPECT_EQ(c[idx], c_before[idx])
              << "trial " << trial << ": padding clobbered at (" << i << "," << j << ")";
        }
      }
    }
  }
}

TEST(OpsProperty, SoftmaxRowsMatchesPerRowReferenceOnRandomShapes) {
  util::Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t rows = 1 + rng.next_below(12);
    const std::size_t cols = 1 + rng.next_below(48);
    std::vector<float> matrix(rows * cols);
    for (float& v : matrix) v = static_cast<float>(5.0 * rng.next_gaussian());
    const std::vector<float> input = matrix;

    softmax_rows(matrix.data(), rows, cols);

    for (std::size_t r = 0; r < rows; ++r) {
      const float* row_in = input.data() + r * cols;
      double max_logit = row_in[0];
      for (std::size_t j = 1; j < cols; ++j) max_logit = std::max<double>(max_logit, row_in[j]);
      double denom = 0.0;
      for (std::size_t j = 0; j < cols; ++j) denom += std::exp(row_in[j] - max_logit);
      double sum = 0.0;
      for (std::size_t j = 0; j < cols; ++j) {
        const double want = std::exp(row_in[j] - max_logit) / denom;
        EXPECT_NEAR(matrix[r * cols + j], want, 1e-5)
            << "trial " << trial << " row " << r << " col " << j;
        sum += matrix[r * cols + j];
      }
      EXPECT_NEAR(sum, 1.0, 1e-5) << "trial " << trial << " row " << r;
    }
  }
}

TEST(Ops, ElementwiseHelpers) {
  std::vector<float> y = {1.0f, 2.0f};
  const std::vector<float> x = {10.0f, 20.0f};
  add_inplace(y.data(), x.data(), 2);
  EXPECT_FLOAT_EQ(y[0], 11.0f);
  axpy(0.5f, x.data(), y.data(), 2);
  EXPECT_FLOAT_EQ(y[1], 32.0f);
  scale_inplace(y.data(), 2.0f, 2);
  EXPECT_FLOAT_EQ(y[0], 32.0f);
  EXPECT_FLOAT_EQ(dot(x.data(), x.data(), 2), 500.0f);
}

TEST(Ops, AddRowBias) {
  std::vector<float> m = {0, 0, 0, 1, 1, 1};
  const std::vector<float> bias = {1, 2, 3};
  add_row_bias(m.data(), bias.data(), 2, 3);
  EXPECT_FLOAT_EQ(m[0], 1.0f);
  EXPECT_FLOAT_EQ(m[5], 4.0f);
}

TEST(Ops, SoftmaxRowsNormalised) {
  std::vector<float> m = {1.0f, 2.0f, 3.0f, -1.0f, -1.0f, -1.0f};
  softmax_rows(m.data(), 2, 3);
  EXPECT_NEAR(m[0] + m[1] + m[2], 1.0f, 1e-6f);
  EXPECT_NEAR(m[3], 1.0f / 3.0f, 1e-6f);
  EXPECT_GT(m[2], m[1]);
  EXPECT_GT(m[1], m[0]);
}

TEST(Ops, SoftmaxIsShiftInvariantAndStable) {
  std::vector<float> big = {1000.0f, 1001.0f};
  std::vector<float> out(2);
  softmax_row(big.data(), out.data(), 2);
  EXPECT_FALSE(std::isnan(out[0]));
  std::vector<float> small = {0.0f, 1.0f}, out2(2);
  softmax_row(small.data(), out2.data(), 2);
  EXPECT_NEAR(out[0], out2[0], 1e-6f);
}

// ---- IEEE semantics: zeros in A must not short-circuit inf/NaN in B ----

TEST(Sgemm, ZeroTimesInfPropagatesNanLikeNaiveLoops) {
  // The seed kernel skipped a_ip == 0 in its inner loop, silently turning
  // 0 * inf into 0; both the packed kernels and the reference must produce
  // NaN there. m=6 exercises the packed path, m=1 the gemv fast path.
  for (const std::size_t m : {std::size_t{6}, std::size_t{1}}) {
    for (const bool trans_b : {false, true}) {
      const std::size_t n = 5, k = 3;
      std::vector<float> a(m * k, 1.0f), b(k * n, 1.0f), c(m * n, 0.0f);
      a[0] = 0.0f;  // A[0][0] = 0
      const std::size_t inf_idx = trans_b ? 0 * k + 0 : 0 * n + 0;  // op(B)[0][0]
      b[inf_idx] = std::numeric_limits<float>::infinity();

      sgemm(false, trans_b, m, n, k, 1.0f, a.data(), k, b.data(), trans_b ? k : n,
            0.0f, c.data(), n);
      EXPECT_TRUE(std::isnan(c[0])) << "m=" << m << " trans_b=" << trans_b
                                    << ": 0 * inf must yield NaN";
      // A column untouched by the inf stays finite.
      EXPECT_TRUE(std::isfinite(c[1])) << "m=" << m << " trans_b=" << trans_b;

      std::vector<float> c_ref(m * n, 0.0f);
      sgemm_reference(false, trans_b, m, n, k, 1.0f, a.data(), k, b.data(),
                      trans_b ? k : n, 0.0f, c_ref.data(), n);
      EXPECT_TRUE(std::isnan(c_ref[0])) << "reference kernel must agree";
    }
  }
}

TEST(Sgemm, PackedMatchesReferenceOracle) {
  util::Rng rng(424242);
  for (int trial = 0; trial < 12; ++trial) {
    const bool trans_a = rng.next_bernoulli(0.5);
    const bool trans_b = rng.next_bernoulli(0.5);
    // Spans multiple mc/nc/kc blocks of every vtable at least once.
    const std::size_t m = 1 + rng.next_below(200);
    const std::size_t n = 1 + rng.next_below(300);
    const std::size_t k = 1 + rng.next_below(300);
    std::vector<float> a(m * k), b(k * n), c(m * n), c_ref;
    for (float& v : a) v = static_cast<float>(rng.next_gaussian());
    for (float& v : b) v = static_cast<float>(rng.next_gaussian());
    for (float& v : c) v = static_cast<float>(rng.next_gaussian());
    c_ref = c;
    const std::size_t lda = trans_a ? m : k;
    const std::size_t ldb = trans_b ? k : n;
    sgemm(trans_a, trans_b, m, n, k, 1.0f, a.data(), lda, b.data(), ldb, 1.0f,
          c.data(), n);
    sgemm_reference(trans_a, trans_b, m, n, k, 1.0f, a.data(), lda, b.data(), ldb, 1.0f,
                    c_ref.data(), n);
    float max_rel = 0.0f;
    for (std::size_t i = 0; i < c.size(); ++i) {
      max_rel = std::max(max_rel, std::abs(c[i] - c_ref[i]) / (1.0f + std::abs(c_ref[i])));
    }
    EXPECT_LT(max_rel, 2e-3f) << "trial " << trial << " m=" << m << " n=" << n
                              << " k=" << k << " tA=" << trans_a << " tB=" << trans_b;
  }
}

// ---- property tests: vector ops vs double-precision references ----

TEST(OpsProperty, AxpyDotMatchDoubleReference) {
  util::Rng rng(555);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 1 + rng.next_below(130);  // covers SIMD body + tails
    std::vector<float> x(n), y(n);
    for (float& v : x) v = static_cast<float>(rng.next_gaussian());
    for (float& v : y) v = static_cast<float>(rng.next_gaussian());
    const float a = static_cast<float>(rng.next_gaussian());

    double dot_ref = 0.0;
    for (std::size_t i = 0; i < n; ++i) dot_ref += static_cast<double>(x[i]) * y[i];
    const float got = dot(x.data(), y.data(), n);
    EXPECT_NEAR(got, dot_ref, 1e-4 * (1.0 + std::abs(dot_ref)))
        << "trial " << trial << " n=" << n;

    std::vector<double> y_ref(y.begin(), y.end());
    for (std::size_t i = 0; i < n; ++i) y_ref[i] += static_cast<double>(a) * x[i];
    axpy(a, x.data(), y.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(y[i], y_ref[i], 1e-5 * (1.0 + std::abs(y_ref[i])))
          << "trial " << trial << " i=" << i;
    }
  }
}

TEST(OpsProperty, AddRowBiasMatchesDoubleReference) {
  util::Rng rng(556);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t rows = 1 + rng.next_below(7);
    const std::size_t cols = 1 + rng.next_below(70);
    std::vector<float> m(rows * cols), bias(cols);
    for (float& v : m) v = static_cast<float>(rng.next_gaussian());
    for (float& v : bias) v = static_cast<float>(rng.next_gaussian());
    const std::vector<float> before = m;
    add_row_bias(m.data(), bias.data(), rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        const double want = static_cast<double>(before[r * cols + c]) + bias[c];
        EXPECT_NEAR(m[r * cols + c], want, 1e-6 * (1.0 + std::abs(want)))
            << "trial " << trial << " (" << r << "," << c << ")";
      }
    }
  }
}

TEST(OpsProperty, GeluApplyAndGradMulMatchDoubleReference) {
  util::Rng rng(557);
  const std::size_t n = 97;  // vector body + scalar tail
  std::vector<float> x(n), y(n), dy(n), dx(n);
  for (float& v : x) v = static_cast<float>(3.0 * rng.next_gaussian());
  for (float& v : dy) v = static_cast<float>(rng.next_gaussian());

  gelu_apply(x.data(), y.data(), n);
  gelu_grad_mul(x.data(), dy.data(), dx.data(), n);
  constexpr double kC = 0.7978845608028654;
  for (std::size_t i = 0; i < n; ++i) {
    const double xv = x[i];
    const double inner = kC * (xv + 0.044715 * xv * xv * xv);
    const double t = std::tanh(inner);
    const double want_y = 0.5 * xv * (1.0 + t);
    EXPECT_NEAR(y[i], want_y, 1e-5 * (1.0 + std::abs(want_y))) << "i=" << i;
    const double d_inner = kC * (1.0 + 3.0 * 0.044715 * xv * xv);
    const double want_g = 0.5 * (1.0 + t) + 0.5 * xv * (1.0 - t * t) * d_inner;
    EXPECT_NEAR(dx[i], dy[i] * want_g, 1e-4 * (1.0 + std::abs(dy[i] * want_g)))
        << "i=" << i;
  }

  // In-place application (y aliases x) must give the same values.
  std::vector<float> x2 = x;
  gelu_apply(x2.data(), x2.data(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(x2[i], y[i]) << "aliasing i=" << i;
}

TEST(OpsProperty, SoftmaxLongRowsMatchDoubleReference) {
  // Rows long enough to exercise the vectorised body (the earlier property
  // test caps cols at 48); tolerances as tight as the double reference.
  util::Rng rng(558);
  for (const std::size_t n : {std::size_t{8}, std::size_t{303}, std::size_t{1024}}) {
    std::vector<float> logits(n), probs(n);
    for (float& v : logits) v = static_cast<float>(6.0 * rng.next_gaussian());
    const float max_logit = softmax_row(logits.data(), probs.data(), n);
    double max_ref = logits[0];
    for (std::size_t i = 1; i < n; ++i) max_ref = std::max<double>(max_ref, logits[i]);
    EXPECT_FLOAT_EQ(max_logit, static_cast<float>(max_ref));
    double denom = 0.0;
    for (std::size_t i = 0; i < n; ++i) denom += std::exp(logits[i] - max_ref);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(probs[i], std::exp(logits[i] - max_ref) / denom, 1e-5) << "i=" << i;
      sum += probs[i];
    }
    EXPECT_NEAR(sum, 1.0, 1e-4) << "n=" << n;
  }
}

// ---- multi_gemv: batched matvec vs the serial m == 1 gemv fast path ----
//
// The batched decode path leans on multi_gemv's contract: every output is
// bitwise identical to the serial gemv regardless of how many inputs share
// the call or where in the slot array an input sits. These properties are
// what make batch composition invisible to the logits.

TEST(MultiGemvProperty, BitwiseEqualToSerialGemvUnderAdversarialStrides) {
  util::Rng rng(20260809);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 1 + rng.next_below(48);
    const std::size_t k = 1 + rng.next_below(96);
    // Row stride past the logical width, with live garbage in the padding:
    // it must never leak into any output.
    const std::size_t ldb = k + rng.next_below(7);
    const std::size_t count = 1 + rng.next_below(8);
    const float alphas[] = {1.0f, 0.5f, -1.0f, 2.0f};
    const float alpha = alphas[rng.next_below(4)];

    std::vector<float> b(n * ldb);
    for (float& v : b) v = static_cast<float>(rng.next_gaussian());
    std::vector<std::vector<float>> xs(count), ys(count), ys_ref(count);
    std::vector<const float*> x_ptrs(count);
    std::vector<float*> y_ptrs(count);
    for (std::size_t i = 0; i < count; ++i) {
      xs[i].resize(k);
      for (float& v : xs[i]) v = static_cast<float>(rng.next_gaussian());
      // Garbage in the outputs: multi_gemv owns the zero-fill.
      ys[i].assign(n, std::numeric_limits<float>::quiet_NaN());
      ys_ref[i].assign(n, 0.0f);
      x_ptrs[i] = xs[i].data();
      y_ptrs[i] = ys[i].data();
    }

    multi_gemv(n, k, alpha, x_ptrs.data(), count, b.data(), ldb, y_ptrs.data());
    for (std::size_t i = 0; i < count; ++i) {
      sgemm(false, true, 1, n, k, alpha, xs[i].data(), k, b.data(), ldb, 0.0f,
            ys_ref[i].data(), n);
      EXPECT_EQ(std::memcmp(ys[i].data(), ys_ref[i].data(), n * sizeof(float)), 0)
          << "trial " << trial << " input " << i << " n=" << n << " k=" << k
          << " ldb=" << ldb << " count=" << count << " alpha=" << alpha;
    }
  }
}

TEST(MultiGemvProperty, SlotPermutationsDoNotPerturbAnyOutput) {
  // The same logical input must produce the same bits no matter which slot
  // of the pointer array carries it or who its batch-mates are.
  util::Rng rng(20260810);
  const std::size_t n = 37, k = 53, ldb = k + 3, count = 6;
  std::vector<float> b(n * ldb);
  for (float& v : b) v = static_cast<float>(rng.next_gaussian());
  std::vector<std::vector<float>> xs(count);
  for (auto& x : xs) {
    x.resize(k);
    for (float& v : x) v = static_cast<float>(rng.next_gaussian());
  }
  std::vector<std::vector<float>> baseline(count, std::vector<float>(n));
  {
    std::vector<const float*> x_ptrs(count);
    std::vector<float*> y_ptrs(count);
    for (std::size_t i = 0; i < count; ++i) {
      x_ptrs[i] = xs[i].data();
      y_ptrs[i] = baseline[i].data();
    }
    multi_gemv(n, k, 1.0f, x_ptrs.data(), count, b.data(), ldb, y_ptrs.data());
  }
  std::vector<std::size_t> perm(count);
  for (std::size_t i = 0; i < count; ++i) perm[i] = i;
  for (int trial = 0; trial < 8; ++trial) {
    for (std::size_t i = count; i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.next_below(i)]);
    }
    // Also vary the subset size: a shrunken batch must still match.
    const std::size_t sub = 1 + rng.next_below(count);
    std::vector<std::vector<float>> ys(sub, std::vector<float>(n));
    std::vector<const float*> x_ptrs(sub);
    std::vector<float*> y_ptrs(sub);
    for (std::size_t i = 0; i < sub; ++i) {
      x_ptrs[i] = xs[perm[i]].data();
      y_ptrs[i] = ys[i].data();
    }
    multi_gemv(n, k, 1.0f, x_ptrs.data(), sub, b.data(), ldb, y_ptrs.data());
    for (std::size_t i = 0; i < sub; ++i) {
      EXPECT_EQ(std::memcmp(ys[i].data(), baseline[perm[i]].data(), n * sizeof(float)), 0)
          << "trial " << trial << " slot " << i << " logical input " << perm[i]
          << " sub=" << sub;
    }
  }
}

TEST(MultiGemv, CountAndShapeEdges) {
  // count == 0: a no-op — outputs are not even zero-filled.
  std::vector<float> garbage = {1.0f, 2.0f};
  float* y_garbage = garbage.data();
  multi_gemv(2, 3, 1.0f, nullptr, 0, nullptr, 3, &y_garbage);
  EXPECT_EQ(garbage[0], 1.0f);
  EXPECT_EQ(garbage[1], 2.0f);

  // n == 0: nothing to write.
  const float x0[] = {1.0f};
  const float* x_ptr = x0;
  multi_gemv(0, 1, 1.0f, &x_ptr, 1, x0, 1, &y_garbage);
  EXPECT_EQ(garbage[0], 1.0f);

  // k == 0 and alpha == 0: outputs are cleared, exactly like the beta = 0
  // sgemm the contract names.
  std::vector<float> y1 = {5.0f, 6.0f}, y2 = {7.0f, 8.0f};
  float* y1_ptr = y1.data();
  float* y2_ptr = y2.data();
  const float b[] = {1.0f, 2.0f, 3.0f, 4.0f};
  multi_gemv(2, 0, 1.0f, &x_ptr, 1, b, 2, &y1_ptr);
  EXPECT_EQ(y1[0], 0.0f);
  EXPECT_EQ(y1[1], 0.0f);
  multi_gemv(2, 1, 0.0f, &x_ptr, 1, b, 2, &y2_ptr);
  EXPECT_EQ(y2[0], 0.0f);
  EXPECT_EQ(y2[1], 0.0f);

  // count == 1 degenerates to the serial gemv bit-for-bit.
  util::Rng rng(999);
  const std::size_t n = 19, k = 41;
  std::vector<float> x(k), bm(n * k), y(n), y_ref(n, 0.0f);
  for (float& v : x) v = static_cast<float>(rng.next_gaussian());
  for (float& v : bm) v = static_cast<float>(rng.next_gaussian());
  const float* xp = x.data();
  float* yp = y.data();
  multi_gemv(n, k, 1.0f, &xp, 1, bm.data(), k, &yp);
  sgemm(false, true, 1, n, k, 1.0f, x.data(), k, bm.data(), k, 0.0f, y_ref.data(), n);
  EXPECT_EQ(std::memcmp(y.data(), y_ref.data(), n * sizeof(float)), 0);
}

// ---- runtime dispatch ----

/// Restores runtime kernel detection even when an assertion fails mid-test.
struct KernelOverrideGuard {
  ~KernelOverrideGuard() { set_kernel_override("auto"); }
};

TEST(KernelDispatch, NameIsKnownAndOverridable) {
  KernelOverrideGuard guard;
  const std::string initial = kernel_name();
  EXPECT_TRUE(initial == "scalar" || initial == "avx2" || initial == "neon") << initial;
  EXPECT_FALSE(set_kernel_override("definitely-not-an-isa"));
  EXPECT_EQ(kernel_name(), initial);  // failed override changes nothing
  ASSERT_TRUE(set_kernel_override("scalar"));
  EXPECT_STREQ(kernel_name(), "scalar");
  ASSERT_TRUE(set_kernel_override("auto"));
  EXPECT_EQ(kernel_name(), initial);
}

TEST(KernelDispatch, ScalarAndVectorisedPathsAgreeOnRandomShapes) {
  KernelOverrideGuard guard;
  util::Rng rng(20260807);
  for (int trial = 0; trial < 15; ++trial) {
    const bool trans_a = rng.next_bernoulli(0.5);
    const bool trans_b = rng.next_bernoulli(0.5);
    const std::size_t m = 1 + rng.next_below(40);
    const std::size_t n = 1 + rng.next_below(64);
    const std::size_t k = 1 + rng.next_below(64);
    std::vector<float> a(m * k), b(k * n), c0(m * n), x(64), y0(64);
    for (float& v : a) v = static_cast<float>(rng.next_gaussian());
    for (float& v : b) v = static_cast<float>(rng.next_gaussian());
    for (float& v : c0) v = static_cast<float>(rng.next_gaussian());
    for (float& v : x) v = static_cast<float>(rng.next_gaussian());
    for (float& v : y0) v = static_cast<float>(rng.next_gaussian());
    std::vector<float> c1 = c0, y1 = y0;
    const std::size_t lda = trans_a ? m : k;
    const std::size_t ldb = trans_b ? k : n;

    ASSERT_TRUE(set_kernel_override("scalar"));
    sgemm(trans_a, trans_b, m, n, k, 1.0f, a.data(), lda, b.data(), ldb, 0.5f,
          c0.data(), n);
    const float dot0 = dot(x.data(), y0.data(), 64);
    axpy(0.25f, x.data(), y0.data(), 64);
    gelu_apply(x.data(), x.data(), 0);  // no-op sanity
    std::vector<float> sm0(64);
    softmax_row(x.data(), sm0.data(), 64);

    ASSERT_TRUE(set_kernel_override("auto"));
    sgemm(trans_a, trans_b, m, n, k, 1.0f, a.data(), lda, b.data(), ldb, 0.5f,
          c1.data(), n);
    const float dot1 = dot(x.data(), y1.data(), 64);
    axpy(0.25f, x.data(), y1.data(), 64);
    std::vector<float> sm1(64);
    softmax_row(x.data(), sm1.data(), 64);

    for (std::size_t i = 0; i < c0.size(); ++i) {
      EXPECT_NEAR(c1[i], c0[i], 1e-4f * (1.0f + std::abs(c0[i])))
          << "trial " << trial << " i=" << i << " m=" << m << " n=" << n << " k=" << k;
    }
    EXPECT_NEAR(dot1, dot0, 1e-4f * (1.0f + std::abs(dot0)));
    for (std::size_t i = 0; i < 64; ++i) {
      EXPECT_NEAR(y1[i], y0[i], 1e-5f * (1.0f + std::abs(y0[i])));
      EXPECT_NEAR(sm1[i], sm0[i], 1e-5f);
    }
  }
}

TEST(MultiGemv, ScalarAndVectorisedKernelsHonourTheSerialContract) {
  // Each kernel's batched path must honour the serial-gemv contract under
  // ITS OWN dot — the cross-kernel equivalence the sanitizer matrix (which
  // runs some configs on the scalar kernel) relies on.
  KernelOverrideGuard guard;
  util::Rng rng(20260811);
  const std::size_t n = 29, k = 67, count = 5;
  std::vector<float> b(n * k);
  for (float& v : b) v = static_cast<float>(rng.next_gaussian());
  std::vector<std::vector<float>> xs(count);
  for (auto& x : xs) {
    x.resize(k);
    for (float& v : x) v = static_cast<float>(rng.next_gaussian());
  }
  std::vector<const float*> x_ptrs(count);
  for (std::size_t i = 0; i < count; ++i) x_ptrs[i] = xs[i].data();

  for (const char* kernel : {"scalar", "auto"}) {
    ASSERT_TRUE(set_kernel_override(kernel));
    std::vector<std::vector<float>> ys(count, std::vector<float>(n));
    std::vector<float*> y_ptrs(count);
    for (std::size_t i = 0; i < count; ++i) y_ptrs[i] = ys[i].data();
    multi_gemv(n, k, 1.0f, x_ptrs.data(), count, b.data(), k, y_ptrs.data());
    for (std::size_t i = 0; i < count; ++i) {
      std::vector<float> y_ref(n, 0.0f);
      sgemm(false, true, 1, n, k, 1.0f, xs[i].data(), k, b.data(), k, 0.0f,
            y_ref.data(), n);
      EXPECT_EQ(std::memcmp(ys[i].data(), y_ref.data(), n * sizeof(float)), 0)
          << kernel << " input " << i;
    }
  }
}

// ---- bf16 numerics: the canonical conversion pair and its edge cases ----

float float_from_bits(std::uint32_t bits) {
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

std::uint32_t bits_from_float(float f) {
  std::uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  return bits;
}

TEST(Bf16, ExhaustiveRoundTripOverAll65536BitPatterns) {
  // Every bf16 value IS an fp32 value (widening appends 16 zero mantissa
  // bits), so float_to_bf16(bf16_to_float(b)) must reproduce b exactly for
  // every non-NaN pattern — no double rounding, no sign loss, infinities
  // and denormals included. NaN payloads come back with the quiet bit
  // forced (from_float quiets every NaN deterministically) and nothing
  // else disturbed.
  for (std::uint32_t pattern = 0; pattern <= 0xFFFFu; ++pattern) {
    const std::uint16_t bits = static_cast<std::uint16_t>(pattern);
    const float widened = bf16_to_float(bits);
    const std::uint16_t back = float_to_bf16(widened);
    const bool is_nan = (bits & 0x7F80u) == 0x7F80u && (bits & 0x007Fu) != 0;
    if (is_nan) {
      EXPECT_TRUE(std::isnan(widened)) << std::hex << pattern;
      EXPECT_EQ(back, bits | 0x0040u) << std::hex << pattern;  // quieted only
    } else {
      EXPECT_EQ(back, bits) << std::hex << pattern;
    }
  }
}

TEST(Bf16, RoundToNearestEvenEdgeCases) {
  // Exact tie, keep-bit even: 0x3F80 | half-ulp stays at 0x3F80 (1.0).
  EXPECT_EQ(float_to_bf16(float_from_bits(0x3F808000u)), 0x3F80u);
  // Exact tie, keep-bit odd: rounds up to the even neighbour.
  EXPECT_EQ(float_to_bf16(float_from_bits(0x3F818000u)), 0x3F82u);
  // One past the tie always rounds up.
  EXPECT_EQ(float_to_bf16(float_from_bits(0x3F808001u)), 0x3F81u);
  // Mantissa carry propagates into the exponent: just-below-1.0 → 1.0.
  EXPECT_EQ(float_to_bf16(float_from_bits(0x3F7FFFFFu)), 0x3F80u);
  // Carry at the top of the finite range overflows to infinity: FLT_MAX
  // (0x7F7FFFFF) is nearer +inf than the largest finite bf16.
  EXPECT_EQ(float_to_bf16(std::numeric_limits<float>::max()), 0x7F80u);
  EXPECT_EQ(float_to_bf16(-std::numeric_limits<float>::max()), 0xFF80u);
  // Infinities map to bf16 infinities, not NaN.
  EXPECT_EQ(float_to_bf16(std::numeric_limits<float>::infinity()), 0x7F80u);
  EXPECT_EQ(float_to_bf16(-std::numeric_limits<float>::infinity()), 0xFF80u);
  // Signed zero survives (a plain truncate-with-round keeps the sign bit).
  EXPECT_EQ(float_to_bf16(0.0f), 0x0000u);
  EXPECT_EQ(float_to_bf16(-0.0f), 0x8000u);
  EXPECT_TRUE(std::signbit(bf16_to_float(0x8000u)));
  // The smallest fp32 denormal underflows to (signed) zero.
  EXPECT_EQ(float_to_bf16(float_from_bits(0x00000001u)), 0x0000u);
  EXPECT_EQ(float_to_bf16(float_from_bits(0x80000001u)), 0x8000u);
  // Every NaN input yields a quiet bf16 NaN (never an infinity).
  for (const std::uint32_t nan_bits : {0x7F800001u, 0x7FC00000u, 0xFFC01234u, 0x7F923456u}) {
    const std::uint16_t q = float_to_bf16(float_from_bits(nan_bits));
    EXPECT_TRUE(std::isnan(bf16_to_float(q))) << std::hex << nan_bits;
    EXPECT_TRUE((q & 0x0040u) != 0) << std::hex << nan_bits;  // quiet bit set
  }
  // bf16_round is exactly the widen-of-the-rounding, nothing more: its
  // result re-converts to the same bits (idempotence — the property the
  // checkpoint roundtrip and quantize_weights(kBf16) both lean on).
  util::Rng rng(20260808);
  for (int i = 0; i < 2000; ++i) {
    const float v = static_cast<float>(50.0 * rng.next_gaussian());
    const float rounded = bf16_round(v);
    EXPECT_EQ(bits_from_float(bf16_round(rounded)), bits_from_float(rounded)) << v;
    EXPECT_EQ(float_to_bf16(rounded), float_to_bf16(v)) << v;
  }
}

// ---- dequant-fused gemv: bitwise vs the dequant-then-gemv oracle ----

TEST(QuantGemv, FusedMatchesDequantOracleBitwisePerKernel) {
  // quant.hpp's contract, checked under each kernel table the host can
  // run: the fused matvec over quantised weights must be bitwise identical
  // to expanding the rows to fp32 and running that table's own gemv.
  KernelOverrideGuard guard;
  util::Rng rng(20260812);
  for (const char* kernel : {"scalar", "auto"}) {
    ASSERT_TRUE(set_kernel_override(kernel));
    for (int trial = 0; trial < 12; ++trial) {
      const std::size_t rows = 1 + rng.next_below(40);
      const std::size_t cols = 1 + rng.next_below(96);
      const float alphas[] = {1.0f, 0.5f, -1.0f, 2.0f};
      const float alpha = alphas[rng.next_below(4)];
      std::vector<float> w(rows * cols), x(cols);
      for (float& v : w) v = static_cast<float>(rng.next_gaussian());
      for (float& v : x) v = static_cast<float>(rng.next_gaussian());
      if (trial == 0) std::fill(w.begin(), w.begin() + cols, 0.0f);  // all-zero row

      for (const WeightDtype dtype : {WeightDtype::kBf16, WeightDtype::kInt8}) {
        const QuantMatrix qm = quantize(dtype, w.data(), rows, cols);
        std::vector<float> dequant(rows * cols);
        dequantize(qm, dequant.data());

        std::vector<float> y_fused(rows, std::numeric_limits<float>::quiet_NaN());
        gemv_quant(qm, alpha, x.data(), y_fused.data());
        std::vector<float> y_oracle(rows, 0.0f);
        sgemm(false, true, 1, rows, cols, alpha, x.data(), cols, dequant.data(), cols,
              0.0f, y_oracle.data(), rows);
        EXPECT_EQ(std::memcmp(y_fused.data(), y_oracle.data(), rows * sizeof(float)), 0)
            << kernel << " dtype=" << weight_dtype_name(dtype) << " trial " << trial
            << " rows=" << rows << " cols=" << cols << " alpha=" << alpha;

        if (dtype == WeightDtype::kBf16) {
          // bf16 dequant is exactly the per-element bf16 rounding.
          for (std::size_t i = 0; i < w.size(); ++i) {
            ASSERT_EQ(bits_from_float(dequant[i]), bits_from_float(bf16_round(w[i])))
                << kernel << " i=" << i;
          }
        }
      }
    }
  }
}

TEST(QuantGemv, BatchedFusedMatchesSerialFusedBitwisePerKernel) {
  // multi_gemv_quant's contract mirrors multi_gemv's: each output is
  // bitwise the serial gemv_quant of its input, for any count, under
  // every kernel table.
  KernelOverrideGuard guard;
  util::Rng rng(20260813);
  const std::size_t rows = 33, cols = 71;
  std::vector<float> w(rows * cols);
  for (float& v : w) v = static_cast<float>(rng.next_gaussian());
  for (const char* kernel : {"scalar", "auto"}) {
    ASSERT_TRUE(set_kernel_override(kernel));
    for (const WeightDtype dtype : {WeightDtype::kBf16, WeightDtype::kInt8}) {
      const QuantMatrix qm = quantize(dtype, w.data(), rows, cols);
      for (const std::size_t count : {std::size_t{1}, std::size_t{3}, std::size_t{7}}) {
        std::vector<std::vector<float>> xs(count), ys(count);
        std::vector<const float*> x_ptrs(count);
        std::vector<float*> y_ptrs(count);
        for (std::size_t i = 0; i < count; ++i) {
          xs[i].resize(cols);
          for (float& v : xs[i]) v = static_cast<float>(rng.next_gaussian());
          ys[i].assign(rows, std::numeric_limits<float>::quiet_NaN());
          x_ptrs[i] = xs[i].data();
          y_ptrs[i] = ys[i].data();
        }
        multi_gemv_quant(qm, 1.0f, x_ptrs.data(), count, y_ptrs.data());
        for (std::size_t i = 0; i < count; ++i) {
          std::vector<float> y_ref(rows, 0.0f);
          gemv_quant(qm, 1.0f, xs[i].data(), y_ref.data());
          EXPECT_EQ(std::memcmp(ys[i].data(), y_ref.data(), rows * sizeof(float)), 0)
              << kernel << " dtype=" << weight_dtype_name(dtype) << " count=" << count
              << " input " << i;
        }
      }
    }
  }
}

TEST(QuantGemv, Int8AllZeroRowDequantisesToExactZeros) {
  // An all-zero row gets scale 0; the fused kernel must emit exact 0.0f
  // for it (not NaN from a 0/0 scale computation).
  const std::size_t rows = 3, cols = 17;
  std::vector<float> w(rows * cols, 0.0f);
  for (std::size_t c = 0; c < cols; ++c) w[2 * cols + c] = 1.0f + static_cast<float>(c);
  const QuantMatrix qm = quantize(WeightDtype::kInt8, w.data(), rows, cols);
  EXPECT_EQ(qm.scales[0], 0.0f);
  std::vector<float> x(cols, 1.0f), y(rows, -1.0f);
  gemv_quant(qm, 1.0f, x.data(), y.data());
  EXPECT_EQ(bits_from_float(y[0]), bits_from_float(0.0f));
  EXPECT_EQ(bits_from_float(y[1]), bits_from_float(0.0f));
  EXPECT_GT(y[2], 0.0f);
}

TEST(Ops, GeluValuesAndGradient) {
  EXPECT_NEAR(gelu(0.0f), 0.0f, 1e-7f);
  EXPECT_NEAR(gelu(3.0f), 3.0f, 0.01f);    // ~identity for large positive
  EXPECT_NEAR(gelu(-3.0f), 0.0f, 0.01f);   // ~zero for large negative
  // Finite-difference check of gelu_grad.
  for (float x : {-2.0f, -0.5f, 0.0f, 0.3f, 1.7f}) {
    const float eps = 1e-3f;
    const float numeric = (gelu(x + eps) - gelu(x - eps)) / (2 * eps);
    EXPECT_NEAR(gelu_grad(x), numeric, 1e-3f) << "x=" << x;
  }
}

}  // namespace
}  // namespace astromlab::tensor
