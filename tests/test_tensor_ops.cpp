#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace astromlab::tensor {
namespace {

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.numel(), 24u);
  EXPECT_EQ(t.dim(1), 3u);
  EXPECT_EQ(t.shape_string(), "[2, 3, 4]");
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillAndReductions) {
  Tensor t({4, 4});
  t.fill(0.5f);
  EXPECT_FLOAT_EQ(t.sum(), 8.0f);
  t.at(2, 3) = -3.0f;
  EXPECT_FLOAT_EQ(t.abs_max(), 3.0f);
  EXPECT_NEAR(t.squared_norm(), 15 * 0.25 + 9.0, 1e-6);
}

TEST(Tensor, ReshapeValidatesCount) {
  Tensor t({2, 6});
  t.reshape({3, 4});
  EXPECT_EQ(t.dim(0), 3u);
  EXPECT_THROW(t.reshape({5, 5}), std::invalid_argument);
}

TEST(Tensor, GaussianInitHasRequestedScale) {
  util::Rng rng(3);
  Tensor t({100, 100});
  t.fill_gaussian(rng, 0.02f);
  const double std_estimate = std::sqrt(t.squared_norm() / static_cast<double>(t.numel()));
  EXPECT_NEAR(std_estimate, 0.02, 0.001);
}

TEST(Tensor, MaxAbsDiff) {
  Tensor a({2, 2}), b({2, 2});
  a.at(1, 1) = 3.0f;
  b.at(1, 1) = 2.0f;
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 1.0f);
  Tensor c({3});
  EXPECT_THROW(max_abs_diff(a, c), std::invalid_argument);
}

// ---- sgemm vs a naive reference across transpose modes and shapes ----

void naive_gemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n, std::size_t k,
                float alpha, const std::vector<float>& a, const std::vector<float>& b,
                float beta, std::vector<float>& c) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = trans_a ? a[p * m + i] : a[i * k + p];
        const float bv = trans_b ? b[j * k + p] : b[p * n + j];
        acc += static_cast<double>(av) * bv;
      }
      c[i * n + j] = static_cast<float>(alpha * acc + beta * c[i * n + j]);
    }
  }
}

struct GemmCase {
  bool trans_a, trans_b;
  std::size_t m, n, k;
  float alpha, beta;
};

class SgemmTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(SgemmTest, MatchesNaiveReference) {
  const GemmCase p = GetParam();
  util::Rng rng(91);
  std::vector<float> a(p.m * p.k), b(p.k * p.n), c(p.m * p.n), c_ref;
  for (float& v : a) v = static_cast<float>(rng.next_gaussian());
  for (float& v : b) v = static_cast<float>(rng.next_gaussian());
  for (float& v : c) v = static_cast<float>(rng.next_gaussian());
  c_ref = c;

  const std::size_t lda = p.trans_a ? p.m : p.k;
  const std::size_t ldb = p.trans_b ? p.k : p.n;
  sgemm(p.trans_a, p.trans_b, p.m, p.n, p.k, p.alpha, a.data(), lda, b.data(), ldb, p.beta,
        c.data(), p.n);
  naive_gemm(p.trans_a, p.trans_b, p.m, p.n, p.k, p.alpha, a, b, p.beta, c_ref);

  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], c_ref[i], 1e-3f * (1.0f + std::abs(c_ref[i]))) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, SgemmTest,
    ::testing::Values(
        GemmCase{false, false, 7, 9, 11, 1.0f, 0.0f},
        GemmCase{false, true, 7, 9, 11, 1.0f, 0.0f},
        GemmCase{true, false, 7, 9, 11, 1.0f, 0.0f},
        GemmCase{true, true, 7, 9, 11, 1.0f, 0.0f},
        GemmCase{false, false, 1, 64, 32, 1.0f, 1.0f},    // matvec accumulate
        GemmCase{false, true, 33, 17, 65, 0.5f, 1.0f},    // alpha & beta
        GemmCase{true, false, 16, 16, 128, 1.0f, 1.0f},   // gradient shape
        GemmCase{false, false, 64, 64, 64, 1.0f, 0.0f},   // square, blocked path
        GemmCase{false, false, 3, 5, 1, 2.0f, 0.5f},      // k=1 edge
        GemmCase{false, true, 1, 1, 7, 1.0f, 0.0f}));     // dot product shape

TEST(Sgemm, ZeroSizeIsNoop) {
  std::vector<float> c = {1.0f, 2.0f};
  sgemm(false, false, 0, 2, 3, 1.0f, nullptr, 3, nullptr, 2, 0.0f, c.data(), 2);
  EXPECT_EQ(c[0], 1.0f);  // m == 0: untouched
  sgemm(false, false, 1, 2, 0, 1.0f, nullptr, 1, nullptr, 2, 0.0f, c.data(), 2);
  EXPECT_EQ(c[0], 0.0f);  // k == 0 with beta 0: cleared
}

// ---- property tests: randomized shapes and adversarial strides ----

/// Stride-aware reference: the same triple loop as naive_gemm but honouring
/// arbitrary leading dimensions, so padded layouts can be checked too.
void naive_gemm_strided(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
                        std::size_t k, float alpha, const std::vector<float>& a,
                        std::size_t lda, const std::vector<float>& b, std::size_t ldb,
                        float beta, std::vector<float>& c, std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = trans_a ? a[p * lda + i] : a[i * lda + p];
        const float bv = trans_b ? b[j * ldb + p] : b[p * ldb + j];
        acc += static_cast<double>(av) * bv;
      }
      c[i * ldc + j] = static_cast<float>(alpha * acc + beta * c[i * ldc + j]);
    }
  }
}

TEST(SgemmProperty, RandomShapesAndAdversarialStridesMatchNaive) {
  util::Rng rng(20250807);
  const float alphas[] = {1.0f, 0.5f, -1.0f, 2.0f};
  const float betas[] = {0.0f, 1.0f, 0.5f, -0.5f};
  for (int trial = 0; trial < 40; ++trial) {
    const bool trans_a = rng.next_bernoulli(0.5);
    const bool trans_b = rng.next_bernoulli(0.5);
    const std::size_t m = 1 + rng.next_below(24);
    const std::size_t n = 1 + rng.next_below(24);
    const std::size_t k = 1 + rng.next_below(24);
    const float alpha = alphas[rng.next_below(4)];
    const float beta = betas[rng.next_below(4)];
    // Leading dims at or beyond the logical widths, with live garbage in
    // the padding: the kernel must neither read it into results nor
    // overwrite it.
    const std::size_t a_rows = trans_a ? k : m, a_cols = trans_a ? m : k;
    const std::size_t b_rows = trans_b ? n : k, b_cols = trans_b ? k : n;
    const std::size_t lda = a_cols + rng.next_below(5);
    const std::size_t ldb = b_cols + rng.next_below(5);
    const std::size_t ldc = n + rng.next_below(5);
    std::vector<float> a(a_rows * lda), b(b_rows * ldb), c(m * ldc);
    for (float& v : a) v = static_cast<float>(rng.next_gaussian());
    for (float& v : b) v = static_cast<float>(rng.next_gaussian());
    for (float& v : c) v = static_cast<float>(rng.next_gaussian());
    std::vector<float> c_ref = c;
    const std::vector<float> c_before = c;

    sgemm(trans_a, trans_b, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta, c.data(), ldc);
    naive_gemm_strided(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c_ref, ldc);

    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < ldc; ++j) {
        const std::size_t idx = i * ldc + j;
        if (j < n) {
          EXPECT_NEAR(c[idx], c_ref[idx], 1e-3f * (1.0f + std::abs(c_ref[idx])))
              << "trial " << trial << " (" << i << "," << j << ") m=" << m << " n=" << n
              << " k=" << k << " lda=" << lda << " ldb=" << ldb << " ldc=" << ldc
              << " tA=" << trans_a << " tB=" << trans_b;
        } else {
          EXPECT_EQ(c[idx], c_before[idx])
              << "trial " << trial << ": padding clobbered at (" << i << "," << j << ")";
        }
      }
    }
  }
}

TEST(OpsProperty, SoftmaxRowsMatchesPerRowReferenceOnRandomShapes) {
  util::Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t rows = 1 + rng.next_below(12);
    const std::size_t cols = 1 + rng.next_below(48);
    std::vector<float> matrix(rows * cols);
    for (float& v : matrix) v = static_cast<float>(5.0 * rng.next_gaussian());
    const std::vector<float> input = matrix;

    softmax_rows(matrix.data(), rows, cols);

    for (std::size_t r = 0; r < rows; ++r) {
      const float* row_in = input.data() + r * cols;
      double max_logit = row_in[0];
      for (std::size_t j = 1; j < cols; ++j) max_logit = std::max<double>(max_logit, row_in[j]);
      double denom = 0.0;
      for (std::size_t j = 0; j < cols; ++j) denom += std::exp(row_in[j] - max_logit);
      double sum = 0.0;
      for (std::size_t j = 0; j < cols; ++j) {
        const double want = std::exp(row_in[j] - max_logit) / denom;
        EXPECT_NEAR(matrix[r * cols + j], want, 1e-5)
            << "trial " << trial << " row " << r << " col " << j;
        sum += matrix[r * cols + j];
      }
      EXPECT_NEAR(sum, 1.0, 1e-5) << "trial " << trial << " row " << r;
    }
  }
}

TEST(Ops, ElementwiseHelpers) {
  std::vector<float> y = {1.0f, 2.0f};
  const std::vector<float> x = {10.0f, 20.0f};
  add_inplace(y.data(), x.data(), 2);
  EXPECT_FLOAT_EQ(y[0], 11.0f);
  axpy(0.5f, x.data(), y.data(), 2);
  EXPECT_FLOAT_EQ(y[1], 32.0f);
  scale_inplace(y.data(), 2.0f, 2);
  EXPECT_FLOAT_EQ(y[0], 32.0f);
  EXPECT_FLOAT_EQ(dot(x.data(), x.data(), 2), 500.0f);
}

TEST(Ops, AddRowBias) {
  std::vector<float> m = {0, 0, 0, 1, 1, 1};
  const std::vector<float> bias = {1, 2, 3};
  add_row_bias(m.data(), bias.data(), 2, 3);
  EXPECT_FLOAT_EQ(m[0], 1.0f);
  EXPECT_FLOAT_EQ(m[5], 4.0f);
}

TEST(Ops, SoftmaxRowsNormalised) {
  std::vector<float> m = {1.0f, 2.0f, 3.0f, -1.0f, -1.0f, -1.0f};
  softmax_rows(m.data(), 2, 3);
  EXPECT_NEAR(m[0] + m[1] + m[2], 1.0f, 1e-6f);
  EXPECT_NEAR(m[3], 1.0f / 3.0f, 1e-6f);
  EXPECT_GT(m[2], m[1]);
  EXPECT_GT(m[1], m[0]);
}

TEST(Ops, SoftmaxIsShiftInvariantAndStable) {
  std::vector<float> big = {1000.0f, 1001.0f};
  std::vector<float> out(2);
  softmax_row(big.data(), out.data(), 2);
  EXPECT_FALSE(std::isnan(out[0]));
  std::vector<float> small = {0.0f, 1.0f}, out2(2);
  softmax_row(small.data(), out2.data(), 2);
  EXPECT_NEAR(out[0], out2[0], 1e-6f);
}

TEST(Ops, GeluValuesAndGradient) {
  EXPECT_NEAR(gelu(0.0f), 0.0f, 1e-7f);
  EXPECT_NEAR(gelu(3.0f), 3.0f, 0.01f);    // ~identity for large positive
  EXPECT_NEAR(gelu(-3.0f), 0.0f, 0.01f);   // ~zero for large negative
  // Finite-difference check of gelu_grad.
  for (float x : {-2.0f, -0.5f, 0.0f, 0.3f, 1.7f}) {
    const float eps = 1e-3f;
    const float numeric = (gelu(x + eps) - gelu(x - eps)) / (2 * eps);
    EXPECT_NEAR(gelu_grad(x), numeric, 1e-3f) << "x=" << x;
  }
}

}  // namespace
}  // namespace astromlab::tensor
