// SFT dialogue construction and the chat-format / masking contract.
#include <gtest/gtest.h>

#include "corpus/corpora.hpp"
#include "corpus/sft_dataset.hpp"

namespace astromlab::corpus {
namespace {

KnowledgeBase make_kb() {
  KbConfig config;
  config.n_topics = 5;
  config.entities_per_topic = 4;
  config.facts_per_entity = 2;
  config.seed = 17;
  return KnowledgeBase::generate(config);
}

McqSplit make_mcqs(const KnowledgeBase& kb) {
  McqGenConfig config;
  config.questions_per_topic = 2;
  config.seed = 18;
  return generate_mcqs(kb, config);
}

tokenizer::BpeTokenizer make_tokenizer(const KnowledgeBase& kb, const McqSplit& mcqs) {
  tokenizer::BpeTrainConfig config;
  config.vocab_size = 400;
  return tokenizer::BpeTokenizer::train(
      build_tokenizer_training_text(kb, mcqs.practice, 19), config);
}

TEST(ChatFormat, RenderDialogueUsesMarkers) {
  Dialogue dialogue;
  dialogue.turns.push_back({DialogueTurn::Role::kSystem, "sys"});
  dialogue.turns.push_back({DialogueTurn::Role::kUser, "hi"});
  dialogue.turns.push_back({DialogueTurn::Role::kAssistant, "hello"});
  const std::string text = render_dialogue(dialogue);
  EXPECT_EQ(text, "<|system|>sys<|end|><|user|>hi<|end|><|assistant|>hello<|end|>");
}

TEST(ChatFormat, GenerationPromptOpensAssistantTurn) {
  const std::string prompt =
      render_generation_prompt({{DialogueTurn::Role::kUser, "q"}});
  EXPECT_EQ(prompt, "<|user|>q<|end|><|assistant|>");
}

TEST(ChatFormat, InstructPromptContainsAllElements) {
  McqItem item;
  item.question = "What is the distance to VLX 1?";
  item.options = {"1 parsec", "2 parsecs", "3 parsecs", "4 parsecs"};
  item.correct = 2;
  const std::string prompt = render_instruct_prompt(item);
  EXPECT_NE(prompt.find("expert in general astrophysics"), std::string::npos);
  EXPECT_NE(prompt.find(item.question), std::string::npos);
  for (const auto& option : item.options) {
    EXPECT_NE(prompt.find(option), std::string::npos);
  }
  EXPECT_NE(prompt.find("\"ANSWER\""), std::string::npos);
  EXPECT_NE(prompt.find("only one answer"), std::string::npos);
}

TEST(ChatFormat, JsonAnswerIsValidJson) {
  const std::string answer = render_json_answer('B', "Because of the disk population.");
  EXPECT_EQ(answer.find('{'), 0u);
  EXPECT_NE(answer.find("\"ANSWER\": \"B\""), std::string::npos);
  EXPECT_EQ(answer.back(), '}');
}

TEST(ChatFormat, DialogueToExampleMasksOnlyAssistantSpans) {
  const KnowledgeBase kb = make_kb();
  const McqSplit mcqs = make_mcqs(kb);
  const auto tok = make_tokenizer(kb, mcqs);

  Dialogue dialogue;
  dialogue.turns.push_back({DialogueTurn::Role::kUser, "What is the answer?"});
  dialogue.turns.push_back({DialogueTurn::Role::kAssistant, "It is B."});
  const nn::MaskedExample example = dialogue_to_example(dialogue, tok);

  ASSERT_EQ(example.tokens.size(), example.loss_mask.size());
  EXPECT_EQ(example.tokens.front(), tok.bos_id());
  EXPECT_FALSE(example.loss_mask.front());

  // Find the assistant marker; everything before it must be unmasked, the
  // span after it (content + end marker) masked true.
  std::size_t assistant_pos = 0;
  for (std::size_t i = 0; i < example.tokens.size(); ++i) {
    if (example.tokens[i] == tok.assistant_id()) assistant_pos = i;
  }
  ASSERT_GT(assistant_pos, 0u);
  for (std::size_t i = 0; i <= assistant_pos; ++i) {
    EXPECT_FALSE(example.loss_mask[i]) << i;
  }
  for (std::size_t i = assistant_pos + 1; i < example.tokens.size(); ++i) {
    EXPECT_TRUE(example.loss_mask[i]) << i;
  }
  // The final token is the end-of-turn marker and it IS trained on.
  EXPECT_EQ(example.tokens.back(), tok.end_turn_id());
  EXPECT_TRUE(example.loss_mask.back());
}

TEST(SftDialogues, RespectsCountsAndComposition) {
  const KnowledgeBase kb = make_kb();
  const McqSplit mcqs = make_mcqs(kb);
  SftSpec spec;
  spec.total_dialogues = 90;
  spec.astro_fraction = 1.0 / 3.0;
  spec.general_mcq_share = 0.5;
  spec.seed = 20;
  const auto dialogues = build_sft_dialogues(kb, mcqs.practice, spec);
  EXPECT_EQ(dialogues.size(), 90u);

  std::size_t astro = 0, json_format = 0;
  for (const Dialogue& dialogue : dialogues) {
    ASSERT_EQ(dialogue.turns.size(), 2u);
    EXPECT_EQ(dialogue.turns[0].role, DialogueTurn::Role::kUser);
    EXPECT_EQ(dialogue.turns[1].role, DialogueTurn::Role::kAssistant);
    if (dialogue.turns[0].text.find("astrophysics") != std::string::npos) {
      // MCQ-style prompt (astro or general); astro ones quiz KB entities.
      bool mentions_entity = false;
      for (const Entity& entity : kb.entities()) {
        if (dialogue.turns[0].text.find(entity.name) != std::string::npos) {
          mentions_entity = true;
          break;
        }
      }
      astro += mentions_entity;
    }
    if (dialogue.turns[1].text.find("\"ANSWER\"") != std::string::npos) ++json_format;
  }
  EXPECT_EQ(astro, 30u);       // exactly one third are astronomy MCQs
  EXPECT_GE(json_format, 30u); // astro + general MCQ dialogues answer in JSON
}

TEST(SftDialogues, ZeroAstroFractionNeedsNoPracticePool) {
  const KnowledgeBase kb = make_kb();
  SftSpec spec;
  spec.total_dialogues = 10;
  spec.astro_fraction = 0.0;
  spec.seed = 21;
  const auto dialogues = build_sft_dialogues(kb, {}, spec);
  EXPECT_EQ(dialogues.size(), 10u);
}

TEST(SftDialogues, SpecPresetsDifferAsDocumented) {
  const SftSpec small = astrollama_sft_spec();
  const SftSpec vendor = vendor_sft_spec();
  EXPECT_LT(small.total_dialogues, vendor.total_dialogues);
  EXPECT_LT(small.general_mcq_share, vendor.general_mcq_share);
}

TEST(SftDialogues, ToMaskedExamplesConvertsAll) {
  const KnowledgeBase kb = make_kb();
  const McqSplit mcqs = make_mcqs(kb);
  const auto tok = make_tokenizer(kb, mcqs);
  SftSpec spec;
  spec.total_dialogues = 12;
  spec.seed = 22;
  const auto dialogues = build_sft_dialogues(kb, mcqs.practice, spec);
  const auto examples = to_masked_examples(dialogues, tok);
  ASSERT_EQ(examples.size(), dialogues.size());
  for (const auto& example : examples) {
    EXPECT_GT(example.tokens.size(), 4u);
    // Every example trains on something.
    bool any = false;
    for (bool m : example.loss_mask) any |= m;
    EXPECT_TRUE(any);
  }
}

}  // namespace
}  // namespace astromlab::corpus
