#include <gtest/gtest.h>

#include <filesystem>

#include "tokenizer/bpe.hpp"

namespace astromlab::tokenizer {
namespace {

namespace fs = std::filesystem;

std::string training_text() {
  std::string text;
  for (int i = 0; i < 40; ++i) {
    text += "The distance to the nebula is 42 kiloparsecs. ";
    text += "Answer: A\nAnswer: B\nAnswer: C\nAnswer: D\n";
    text += "Question: What is the measured distance?\n";
  }
  return text;
}

BpeTokenizer trained(std::size_t vocab = 400) {
  BpeTrainConfig config;
  config.vocab_size = vocab;
  return BpeTokenizer::train(training_text(), config);
}

TEST(PreTokenize, SplitsWordsWithLeadingSpaces) {
  const auto words = BpeTokenizer::pre_tokenize("The cat, sat 42 times!");
  // "The", " cat", ",", " sat", " 42", " times", "!"
  ASSERT_EQ(words.size(), 7u);
  EXPECT_EQ(words[0], "The");
  EXPECT_EQ(words[1], " cat");
  EXPECT_EQ(words[2], ",");
  EXPECT_EQ(words[3], " sat");
  EXPECT_EQ(words[4], " 42");
  EXPECT_EQ(words[5], " times");
  EXPECT_EQ(words[6], "!");
}

TEST(PreTokenize, ConcatenationIsLossless) {
  const std::string text = "  Multi  spaces\nand\tother   stuff 12x3 ...";
  std::string rebuilt;
  for (const auto& word : BpeTokenizer::pre_tokenize(text)) rebuilt += word;
  EXPECT_EQ(rebuilt, text);
}

TEST(Train, VocabularyHasRequestedStructure) {
  const BpeTokenizer tok = trained(400);
  // 256 bytes + merges + 7 special tokens, capped at the requested size.
  EXPECT_LE(tok.vocab_size(), 400u);
  EXPECT_GT(tok.merge_count(), 20u);
  EXPECT_TRUE(tok.token_to_id(SpecialTokens::kBos).has_value());
  EXPECT_TRUE(tok.token_to_id(SpecialTokens::kAssistant).has_value());
}

TEST(Train, LearnsFrequentWordsAsSingleTokens) {
  const BpeTokenizer tok = trained(450);
  // " distance" appears dozens of times; it should need very few tokens.
  const auto ids = tok.encode(" distance");
  EXPECT_LE(ids.size(), 3u);
}

TEST(EncodeDecode, RoundTripsArbitraryText) {
  const BpeTokenizer tok = trained();
  for (const std::string text :
       {std::string("The distance to the nebula is 42 kiloparsecs."),
        std::string("completely unseen wordage &^% 999"),
        std::string("multi\nline\ttext with  spaces"), std::string("")}) {
    EXPECT_EQ(tok.decode(tok.encode(text)), text) << text;
  }
}

TEST(EncodeDecode, ByteFallbackCoversUnseenBytes) {
  const BpeTokenizer tok = trained();
  const std::string weird = "\x01\x7f\xc3\xa9 zap";  // control, DEL, é
  EXPECT_EQ(tok.decode(tok.encode(weird)), weird);
}

TEST(SpecialTokens, EncodedAsSingleIds) {
  const BpeTokenizer tok = trained();
  const std::string text = std::string(SpecialTokens::kUser) + "hi" + SpecialTokens::kEndTurn;
  const auto ids = tok.encode(text);
  ASSERT_GE(ids.size(), 3u);
  EXPECT_EQ(ids.front(), tok.user_id());
  EXPECT_EQ(ids.back(), tok.end_turn_id());
  EXPECT_TRUE(tok.is_special(ids.front()));
  EXPECT_FALSE(tok.is_special(ids[1]));
  EXPECT_EQ(tok.decode(ids), text);
}

TEST(SpecialTokens, AnswerLetterVariantsExist) {
  // The paper's §V-B detection hinges on " A" (with leading space)
  // existing as a single token while "A" stays a byte token. The training
  // text contains many "Answer: X" lines, so the merges must cover it.
  const BpeTokenizer tok = trained(420);
  for (char letter = 'A'; letter <= 'D'; ++letter) {
    const auto plain = tok.token_to_id(std::string(1, letter));
    ASSERT_TRUE(plain.has_value()) << letter;
    const auto spaced = tok.token_to_id(std::string(" ") + letter);
    EXPECT_TRUE(spaced.has_value()) << letter;  // learned merge
  }
}

TEST(Encode, DeterministicAcrossCalls) {
  const BpeTokenizer tok = trained();
  const std::string text = "Question: What is the measured distance? Answer: B";
  EXPECT_EQ(tok.encode(text), tok.encode(text));
}

TEST(Train, DeterministicAcrossRuns) {
  const BpeTokenizer a = trained();
  const BpeTokenizer b = trained();
  EXPECT_EQ(a.vocab_size(), b.vocab_size());
  EXPECT_EQ(a.encode("The distance is 42."), b.encode("The distance is 42."));
}

TEST(SaveLoad, RoundTripsFullState) {
  const BpeTokenizer tok = trained();
  const fs::path path =
      fs::temp_directory_path() / ("astromlab_tok_" + std::to_string(::getpid()) + ".bin");
  tok.save(path);
  const BpeTokenizer loaded = BpeTokenizer::load(path);
  EXPECT_EQ(loaded.vocab_size(), tok.vocab_size());
  EXPECT_EQ(loaded.merge_count(), tok.merge_count());
  const std::string probe = "Answer: C and some unseen text!";
  EXPECT_EQ(loaded.encode(probe), tok.encode(probe));
  EXPECT_EQ(loaded.eos_id(), tok.eos_id());
  fs::remove(path);
}

TEST(DecodeToken, RejectsOutOfRange) {
  const BpeTokenizer tok = trained();
  EXPECT_THROW(tok.decode_token(-1), std::out_of_range);
  EXPECT_THROW(tok.decode_token(static_cast<TokenId>(tok.vocab_size())), std::out_of_range);
}

}  // namespace
}  // namespace astromlab::tokenizer
