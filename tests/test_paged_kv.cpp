// Differential suite for the paged copy-on-write KV arena: a paged
// `nn::GptInference` must be bitwise indistinguishable from the contiguous
// memcpy-oracle across every lifecycle — plain decode, snapshot/fork (the
// COW block-adoption fast path vs the row-copy path), fork into a batch
// slot, evict + refault, and seeded random fork/extend/evict schedules.
// Arena refcounts and the KV budget domain are checked to return to
// baseline when sessions die, so block sharing can never leak or
// double-free budget bytes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <random>
#include <vector>

#include "nn/gpt.hpp"
#include "nn/kv_arena.hpp"
#include "util/resource_budget.hpp"
#include "util/rng.hpp"

namespace astromlab {
namespace {

nn::GptModel tiny_model() {
  nn::GptConfig config;
  config.vocab_size = 96;
  config.ctx_len = 96;
  config.d_model = 16;
  config.n_heads = 2;
  config.n_layers = 2;
  config.d_ff = 32;
  nn::GptModel model(config);
  util::Rng rng(91);
  model.init_weights(rng);
  return model;
}

std::vector<nn::Token> random_prompt(std::mt19937_64& rng, std::size_t len,
                                     std::size_t vocab) {
  std::uniform_int_distribution<nn::Token> pick(0, static_cast<nn::Token>(vocab - 1));
  std::vector<nn::Token> prompt(len);
  for (auto& t : prompt) t = pick(rng);
  return prompt;
}

nn::Token argmax_token(const std::vector<float>& logits) {
  return static_cast<nn::Token>(std::max_element(logits.begin(), logits.end()) -
                                logits.begin());
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

std::size_t kv_domain_bytes() {
  return util::ResourceBudget::instance().domain_bytes(util::MemoryDomain::kKvCache);
}

// Block size 5 deliberately does not divide ctx_len or typical prompt
// lengths, so boundary blocks are routinely shared mid-block on fork —
// the case COW must get right.
constexpr std::size_t kBlockTokens = 5;

TEST(PagedKv, StepLogitsMatchContiguousOracleBitwise) {
  const nn::GptModel model = tiny_model();
  auto arena = std::make_shared<nn::KvArena>(kBlockTokens, model.config().d_model);
  nn::GptInference paged(model, arena);
  nn::GptInference oracle(model);
  std::mt19937_64 rng(7);
  const std::vector<nn::Token> prompt = random_prompt(rng, 41, model.config().vocab_size);
  for (const nn::Token t : prompt) {
    const std::vector<float>& got = paged.step(t);
    const std::vector<float>& want = oracle.step(t);
    ASSERT_TRUE(bitwise_equal(got, want));
  }
}

TEST(PagedKv, ForkSharesBlocksAndMatchesMemcpyOracleBitwise) {
  const nn::GptModel model = tiny_model();
  auto arena = std::make_shared<nn::KvArena>(kBlockTokens, model.config().d_model);
  std::mt19937_64 rng(11);
  const std::vector<nn::Token> prefix = random_prompt(rng, 23, model.config().vocab_size);

  nn::GptInference paged_src(model, arena);
  nn::GptInference oracle_src(model);  // contiguous: forks via memcpy
  paged_src.prompt(prefix);
  oracle_src.prompt(prefix);

  const std::size_t blocks_before_fork = arena->live_blocks();
  nn::GptInference paged_fork(model, arena);
  nn::GptInference oracle_fork(model);
  paged_fork.fork_from(paged_src.snapshot());
  oracle_fork.fork_from(oracle_src.snapshot());
  // The COW fast path shares blocks by refcount: a fork allocates nothing.
  EXPECT_EQ(arena->live_blocks(), blocks_before_fork);

  // Diverging decodes stay bitwise equal to their oracles, and the
  // source's continuation is unaffected by the fork's writes into the
  // shared boundary block (copy-on-write isolates them).
  const std::vector<float>* fork_logits = &paged_fork.step(3);
  const std::vector<float>* oracle_fork_logits = &oracle_fork.step(3);
  for (std::size_t i = 0; i < 12; ++i) {
    ASSERT_TRUE(bitwise_equal(*fork_logits, *oracle_fork_logits));
    const nn::Token next = argmax_token(*fork_logits);
    fork_logits = &paged_fork.step(next);
    oracle_fork_logits = &oracle_fork.step(next);
  }
  const std::vector<float>* src_logits = &paged_src.step(5);
  const std::vector<float>* oracle_src_logits = &oracle_src.step(5);
  for (std::size_t i = 0; i < 12; ++i) {
    ASSERT_TRUE(bitwise_equal(*src_logits, *oracle_src_logits));
    const nn::Token next = argmax_token(*src_logits);
    src_logits = &paged_src.step(next);
    oracle_src_logits = &oracle_src.step(next);
  }
}

TEST(PagedKv, ManyForksShareOnePrefixCopy) {
  const nn::GptModel model = tiny_model();
  auto arena = std::make_shared<nn::KvArena>(kBlockTokens, model.config().d_model);
  std::mt19937_64 rng(13);
  const std::vector<nn::Token> prefix = random_prompt(rng, 40, model.config().vocab_size);

  auto src = std::make_unique<nn::GptInference>(model, arena);
  src->prompt(prefix);
  const std::size_t prefix_blocks = arena->live_blocks();
  const nn::KvSnapshot snap = src->snapshot();

  std::vector<std::unique_ptr<nn::GptInference>> forks;
  for (std::size_t i = 0; i < 16; ++i) {
    forks.push_back(std::make_unique<nn::GptInference>(model, arena));
    forks.back()->fork_from(snap);
  }
  // 16 forks of a 40-token prefix added zero blocks; each fork's first
  // write will COW at most one boundary block per layer per K/V side.
  EXPECT_EQ(arena->live_blocks(), prefix_blocks);
  for (auto& fork : forks) fork->step(1);
  const std::size_t after_write = arena->live_blocks();
  EXPECT_LE(after_write, prefix_blocks + 16 * model.config().n_layers * 2);

  // Tear down: every fork's refs release; the source alone keeps the
  // prefix alive, then releasing it empties the arena.
  forks.clear();
  EXPECT_EQ(arena->live_blocks(), prefix_blocks);
  src.reset();
  EXPECT_EQ(arena->live_blocks(), 0u);
  EXPECT_EQ(arena->total_bytes(), 0u);
}

TEST(PagedKv, ForkIntoBatchSlotMatchesSerialOracle) {
  const nn::GptModel model = tiny_model();
  auto arena = std::make_shared<nn::KvArena>(kBlockTokens, model.config().d_model);
  std::mt19937_64 rng(17);
  const std::vector<nn::Token> prefix = random_prompt(rng, 19, model.config().vocab_size);

  nn::GptInference paged_src(model, arena);
  paged_src.prompt(prefix);

  nn::GptInference oracle(model);
  oracle.prompt(prefix);

  nn::BatchedInference batch(model, 2);
  batch.fork_slot(0, paged_src.snapshot(), prefix.size());
  const std::size_t slot = 0;
  nn::Token tok = 3;
  for (std::size_t i = 0; i < 10; ++i) {
    batch.step(&slot, &tok, 1);
    const std::vector<float>& want = oracle.step(tok);
    ASSERT_TRUE(bitwise_equal(batch.logits(0), want));
    tok = argmax_token(want);
  }
}

TEST(PagedKv, EvictRefaultReleasesBlocksAndRecovers) {
  const nn::GptModel model = tiny_model();
  const std::size_t kv_base = kv_domain_bytes();
  auto arena = std::make_shared<nn::KvArena>(kBlockTokens, model.config().d_model);
  std::mt19937_64 rng(19);
  const std::vector<nn::Token> prompt = random_prompt(rng, 31, model.config().vocab_size);

  nn::GptInference paged(model, arena);
  paged.prompt(prompt);
  EXPECT_GT(paged.kv_bytes(), 0u);
  EXPECT_EQ(kv_domain_bytes(), kv_base + arena->total_bytes());
  const nn::KvSnapshot snap = paged.snapshot();

  const std::size_t freed = paged.release_kv();
  EXPECT_GT(freed, 0u);
  EXPECT_EQ(paged.kv_bytes(), 0u);
  EXPECT_EQ(arena->live_blocks(), 0u);
  EXPECT_EQ(kv_domain_bytes(), kv_base);
  // The snapshot's rows are gone: forking must fail typed, not dangle.
  nn::GptInference other(model, arena);
  EXPECT_THROW(other.fork_from(snap), nn::StaleSnapshotError);

  // Refault: the released inference re-encodes from scratch and matches
  // the contiguous oracle bitwise.
  nn::GptInference oracle(model);
  const std::vector<float>* got = nullptr;
  const std::vector<float>* want = nullptr;
  for (const nn::Token t : prompt) {
    got = &paged.step(t);
    want = &oracle.step(t);
  }
  ASSERT_TRUE(bitwise_equal(*got, *want));
}

TEST(PagedKv, CorruptedPagedRowFailsSnapshotCrc) {
  const nn::GptModel model = tiny_model();
  auto arena = std::make_shared<nn::KvArena>(kBlockTokens, model.config().d_model);
  nn::GptInference paged(model, arena);
  std::mt19937_64 rng(23);
  paged.prompt(random_prompt(rng, 12, model.config().vocab_size));
  const nn::KvSnapshot snap = paged.snapshot();
  paged.corrupt_kv_for_testing(0, 3, 1234.5f);
  nn::GptInference fork(model, arena);
  EXPECT_THROW(fork.fork_from(snap), nn::StaleSnapshotError);
}

TEST(PagedKv, MixedModeForksCopyRowsBothWays) {
  const nn::GptModel model = tiny_model();
  auto arena = std::make_shared<nn::KvArena>(kBlockTokens, model.config().d_model);
  std::mt19937_64 rng(29);
  const std::vector<nn::Token> prefix = random_prompt(rng, 27, model.config().vocab_size);

  // Contiguous source -> paged fork.
  nn::GptInference contiguous_src(model);
  contiguous_src.prompt(prefix);
  nn::GptInference paged_fork(model, arena);
  paged_fork.fork_from(contiguous_src.snapshot());
  // Paged source -> contiguous fork.
  nn::GptInference paged_src(model, arena);
  paged_src.prompt(prefix);
  nn::GptInference contiguous_fork(model);
  contiguous_fork.fork_from(paged_src.snapshot());

  nn::GptInference oracle(model);
  oracle.prompt(prefix);
  const std::vector<float>& want = oracle.step(7);
  ASSERT_TRUE(bitwise_equal(paged_fork.step(7), want));
  ASSERT_TRUE(bitwise_equal(contiguous_fork.step(7), want));
}

// Seeded random schedules: a pool of paged sessions forking off each
// other, extending, and evicting, each shadowed by a contiguous twin fed
// the identical operations. After every operation the acting session's
// logits must equal its twin's bitwise, and when the pool drains the arena
// and the KV budget domain must both return to baseline.
TEST(PagedKv, SeededForkExtendEvictSchedulesMatchOracle) {
  const nn::GptModel model = tiny_model();
  const std::size_t vocab = model.config().vocab_size;
  const std::size_t ctx = model.config().ctx_len;
  const std::size_t kv_base = kv_domain_bytes();

  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto arena = std::make_shared<nn::KvArena>(kBlockTokens, model.config().d_model);
    struct Pair {
      std::unique_ptr<nn::GptInference> paged;
      std::unique_ptr<nn::GptInference> twin;
    };
    std::vector<Pair> pool;
    for (std::size_t i = 0; i < 4; ++i) {
      pool.push_back({std::make_unique<nn::GptInference>(model, arena),
                      std::make_unique<nn::GptInference>(model)});
    }
    std::mt19937_64 rng(seed * 977);
    std::uniform_int_distribution<std::size_t> pick_session(0, pool.size() - 1);
    std::uniform_int_distribution<int> pick_op(0, 9);
    std::uniform_int_distribution<nn::Token> pick_tok(0, static_cast<nn::Token>(vocab - 1));

    for (std::size_t op = 0; op < 60; ++op) {
      Pair& p = pool[pick_session(rng)];
      const int action = pick_op(rng);
      if (action < 6) {  // extend by a few tokens
        if (p.paged->position() + 4 >= ctx) continue;
        for (int i = 0; i < 3; ++i) {
          const nn::Token t = pick_tok(rng);
          const std::vector<float>& got = p.paged->step(t);
          const std::vector<float>& want = p.twin->step(t);
          ASSERT_TRUE(bitwise_equal(got, want))
              << "seed=" << seed << " op=" << op << " divergence at position "
              << p.paged->position();
        }
      } else if (action < 9) {  // fork from another session's snapshot
        Pair& src = pool[pick_session(rng)];
        if (&src == &p || src.paged->position() == 0) continue;
        p.paged->fork_from(src.paged->snapshot());
        p.twin->fork_from(src.twin->snapshot());
      } else {  // evict
        p.paged->release_kv();
        p.twin->release_kv();
      }
    }
    pool.clear();
    ASSERT_EQ(arena->live_blocks(), 0u) << "seed=" << seed;
    ASSERT_EQ(kv_domain_bytes(), kv_base) << "seed=" << seed;
  }
}

TEST(PagedKv, ArenaRejectsZeroGeometryAndDeadBlocks) {
  EXPECT_THROW(nn::KvArena(0, 8), std::invalid_argument);
  EXPECT_THROW(nn::KvArena(8, 0), std::invalid_argument);
  nn::KvArena arena(4, 8);
  const nn::KvArena::WriteRef ref = arena.alloc_ref();
  EXPECT_EQ(arena.ref_count(ref.id), 1u);
  arena.release(ref.id);
  EXPECT_THROW(arena.release(ref.id), std::logic_error);
  EXPECT_THROW(arena.add_ref(ref.id), std::logic_error);
  EXPECT_THROW(arena.write_ref(ref.id), std::logic_error);
}

TEST(PagedKv, WriteRefCopiesOnlyWhenShared) {
  nn::KvArena arena(4, 8);
  nn::KvArena::WriteRef a = arena.alloc_ref();
  a.data[0] = 42.0f;
  // Sole holder: write_ref returns the same block.
  const nn::KvArena::WriteRef same = arena.write_ref(a.id);
  EXPECT_EQ(same.id, a.id);
  // Shared: write_ref peels off a private copy carrying the bytes.
  arena.add_ref(a.id);
  const nn::KvArena::WriteRef copy = arena.write_ref(a.id);
  EXPECT_NE(copy.id, a.id);
  EXPECT_EQ(copy.data[0], 42.0f);
  EXPECT_EQ(arena.ref_count(a.id), 1u);
  EXPECT_EQ(arena.ref_count(copy.id), 1u);
  copy.data[0] = 7.0f;
  EXPECT_EQ(arena.data(a.id)[0], 42.0f);  // original holder unaffected
  arena.release(a.id);
  arena.release(copy.id);
  EXPECT_EQ(arena.live_blocks(), 0u);
}

}  // namespace
}  // namespace astromlab
