// CancelToken deadlines and RetryPolicy backoff/classification — the two
// fault-domain primitives underneath the evaluation supervisor.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "util/cancel.hpp"
#include "util/io.hpp"
#include "util/retry.hpp"

namespace astromlab::util {
namespace {

TEST(CancelToken, StartsClear) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.has_deadline());
  EXPECT_TRUE(std::isinf(token.remaining_seconds()));
}

TEST(CancelToken, ExternalCancelIsSticky) {
  CancelToken token;
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.cancelled());  // stays set
}

TEST(CancelToken, DeadlineFires) {
  CancelToken token;
  token.set_deadline_after(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(token.cancelled());
  EXPECT_LT(token.remaining_seconds(), 0.0);
}

TEST(CancelToken, GenerousDeadlineDoesNotFire) {
  CancelToken token;
  token.set_deadline_after(3600.0);
  EXPECT_TRUE(token.has_deadline());
  EXPECT_FALSE(token.cancelled());
  EXPECT_GT(token.remaining_seconds(), 3000.0);
}

TEST(CancelToken, NonPositiveDeadlineIsIgnored) {
  CancelToken token;
  token.set_deadline_after(0.0);
  token.set_deadline_after(-5.0);
  EXPECT_FALSE(token.has_deadline());
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelToken, StackedDeadlinesKeepTheStricter) {
  CancelToken token;
  token.set_deadline_after(3600.0);
  token.set_deadline_after(7200.0);  // looser: must not extend
  EXPECT_LT(token.remaining_seconds(), 3601.0);
  token.set_deadline_after(0.5);  // tighter: wins
  EXPECT_LT(token.remaining_seconds(), 0.51);
}

TEST(IsTransient, ClassifiesTypedErrors) {
  EXPECT_TRUE(is_transient(TransientError("flake")));
  EXPECT_TRUE(is_transient(CorruptFileError("torn read")));
  EXPECT_FALSE(is_transient(std::runtime_error("permanent")));
  EXPECT_FALSE(is_transient(std::logic_error("bug")));
}

TEST(RetryPolicy, BackoffIsDeterministicAndExponential) {
  RetryPolicy policy;
  // Identical (seed, salt, retry) -> identical delay: parallel runs sleep
  // exactly as long as serial ones.
  EXPECT_DOUBLE_EQ(policy.backoff_ms(1, 7), policy.backoff_ms(1, 7));
  EXPECT_DOUBLE_EQ(policy.backoff_ms(3, 42), policy.backoff_ms(3, 42));
  // Distinct salts de-synchronise.
  EXPECT_NE(policy.backoff_ms(1, 7), policy.backoff_ms(1, 8));
  // Exponential shape survives the +/-12.5% jitter envelope.
  EXPECT_LT(policy.backoff_ms(1, 0), policy.backoff_ms(3, 0));
}

TEST(RetryPolicy, BackoffStaysWithinJitterEnvelopeAndCap) {
  RetryPolicy policy;
  policy.backoff_initial_ms = 10.0;
  policy.backoff_multiplier = 2.0;
  policy.backoff_max_ms = 50.0;
  policy.jitter_fraction = 0.25;
  for (std::size_t retry = 1; retry <= 8; ++retry) {
    const double ms = policy.backoff_ms(retry, 3);
    EXPECT_GT(ms, 0.0);
    // Base is capped at 50ms; jitter can add at most 12.5%.
    EXPECT_LE(ms, 50.0 * 1.125 + 1e-9) << "retry " << retry;
  }
}

TEST(RetryPolicy, ZeroJitterGivesExactSchedule) {
  RetryPolicy policy;
  policy.backoff_initial_ms = 4.0;
  policy.backoff_multiplier = 3.0;
  policy.backoff_max_ms = 1000.0;
  policy.jitter_fraction = 0.0;
  EXPECT_DOUBLE_EQ(policy.backoff_ms(1, 99), 4.0);
  EXPECT_DOUBLE_EQ(policy.backoff_ms(2, 99), 12.0);
  EXPECT_DOUBLE_EQ(policy.backoff_ms(3, 99), 36.0);
}

RetryPolicy fast_policy(std::size_t max_retries) {
  RetryPolicy policy;
  policy.max_retries = max_retries;
  policy.backoff_initial_ms = 0.01;  // keep tests fast
  policy.backoff_max_ms = 0.05;
  return policy;
}

TEST(RunWithRetry, TransientFaultsAreRetriedThenSucceed) {
  int calls = 0;
  std::size_t retries = 0;
  const int value = run_with_retry(
      fast_policy(3), /*salt=*/5,
      [&] {
        if (++calls < 3) throw TransientError("flaky");
        return 17;
      },
      &retries);
  EXPECT_EQ(value, 17);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);
}

TEST(RunWithRetry, PermanentFaultRethrowsImmediately) {
  int calls = 0;
  EXPECT_THROW(run_with_retry(fast_policy(5), 0,
                              [&]() -> int {
                                ++calls;
                                throw std::runtime_error("permanent");
                              }),
               std::runtime_error);
  EXPECT_EQ(calls, 1);  // no retry burned on a permanent fault
}

TEST(RunWithRetry, ExhaustedBudgetRethrowsTransient) {
  int calls = 0;
  EXPECT_THROW(run_with_retry(fast_policy(2), 0,
                              [&]() -> int {
                                ++calls;
                                throw TransientError("always flaky");
                              }),
               TransientError);
  EXPECT_EQ(calls, 3);  // 1 attempt + 2 retries
}

TEST(RunWithRetry, ZeroRetriesMeansSingleAttempt) {
  int calls = 0;
  EXPECT_THROW(run_with_retry(fast_policy(0), 0,
                              [&]() -> int {
                                ++calls;
                                throw TransientError("flaky");
                              }),
               TransientError);
  EXPECT_EQ(calls, 1);
}

TEST(RunWithRetry, CancelAwareOverloadSucceedsWhenNothingCancels) {
  CancelToken cancel;
  int calls = 0;
  std::size_t retries = 0;
  const int value = run_with_retry(
      fast_policy(3), /*salt=*/5, &cancel,
      [&] {
        if (++calls < 2) throw TransientError("flaky");
        return 23;
      },
      &retries);
  EXPECT_EQ(value, 23);
  EXPECT_EQ(retries, 1u);
}

TEST(RunWithRetry, BackoffObservesCancellationPromptly) {
  // Regression: a retry sleeping in a long backoff must notice an external
  // cancel within the poll interval, not after the full backoff elapses —
  // a server drain would otherwise stall behind every in-flight retry.
  RetryPolicy policy;
  policy.max_retries = 3;
  policy.backoff_initial_ms = 2000.0;  // would block ~2s if cancel is ignored
  policy.jitter_fraction = 0.0;
  CancelToken cancel;
  int calls = 0;
  std::thread canceller([&cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    cancel.cancel();
  });
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(run_with_retry(policy, 0, &cancel,
                              [&]() -> int {
                                ++calls;
                                throw TransientError("always flaky");
                              }),
               TransientError);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  canceller.join();
  EXPECT_EQ(calls, 1);       // the cancel also suppressed further attempts
  EXPECT_LT(elapsed, 1.0);   // bounded: well under the 2s backoff
}

TEST(RunWithRetry, CancelledBeforeFirstRetrySkipsBackoffEntirely) {
  RetryPolicy policy;
  policy.max_retries = 3;
  policy.backoff_initial_ms = 2000.0;
  policy.jitter_fraction = 0.0;
  CancelToken cancel;
  cancel.cancel();
  int calls = 0;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(run_with_retry(policy, 0, &cancel,
                              [&]() -> int {
                                ++calls;
                                throw TransientError("flaky");
                              }),
               TransientError);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_EQ(calls, 1);
  EXPECT_LT(elapsed, 0.5);
}

TEST(SleepMs, CancelAwareSleepReturnsEarly) {
  CancelToken cancel;
  std::thread canceller([&cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cancel.cancel();
  });
  const auto start = std::chrono::steady_clock::now();
  detail::sleep_ms(2000.0, &cancel);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  canceller.join();
  EXPECT_LT(elapsed, 1.0);
}

TEST(SleepMs, NullCancelSleepsTheFullDuration) {
  const auto start = std::chrono::steady_clock::now();
  detail::sleep_ms(15.0, nullptr);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_GE(elapsed, 0.014);
}

}  // namespace
}  // namespace astromlab::util
