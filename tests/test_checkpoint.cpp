#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "nn/checkpoint.hpp"
#include "tensor/bf16.hpp"
#include "util/fault_injection.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"

namespace astromlab::nn {
namespace {

namespace fs = std::filesystem;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / ("astromlab_ckpt_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  GptModel make_model(std::uint64_t seed = 3) {
    GptConfig config;
    config.vocab_size = 50;
    config.ctx_len = 12;
    config.d_model = 20;
    config.n_heads = 4;
    config.n_layers = 2;
    config.d_ff = 40;
    GptModel model(config);
    util::Rng rng(seed);
    model.init_weights(rng);
    return model;
  }

  fs::path dir_;
};

TEST_F(CheckpointTest, F32RoundTripIsExact) {
  GptModel model = make_model();
  const fs::path path = dir_ / "model_f32.ckpt";
  save_checkpoint(model, path, CheckpointPrecision::kF32);
  const GptModel loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.config(), model.config());
  for (std::size_t i = 0; i < model.params().total_size(); ++i) {
    EXPECT_EQ(loaded.params().params()[i], model.params().params()[i]) << i;
  }
}

TEST_F(CheckpointTest, Bf16RoundTripIsQuantised) {
  GptModel model = make_model();
  const fs::path path = dir_ / "model_bf16.ckpt";
  save_checkpoint(model, path, CheckpointPrecision::kBf16);
  const GptModel loaded = load_checkpoint(path);
  for (std::size_t i = 0; i < model.params().total_size(); ++i) {
    const float expected = tensor::bf16_round(model.params().params()[i]);
    EXPECT_EQ(loaded.params().params()[i], expected) << i;
  }
}

TEST_F(CheckpointTest, Bf16IsHalfTheSizeOfF32) {
  GptModel model = make_model();
  save_checkpoint(model, dir_ / "a.ckpt", CheckpointPrecision::kF32);
  save_checkpoint(model, dir_ / "b.ckpt", CheckpointPrecision::kBf16);
  const auto f32_size = fs::file_size(dir_ / "a.ckpt");
  const auto bf16_size = fs::file_size(dir_ / "b.ckpt");
  EXPECT_LT(bf16_size, f32_size * 0.55);
}

TEST_F(CheckpointTest, LoadedModelProducesIdenticalLogits) {
  GptModel model = make_model(17);
  const fs::path path = dir_ / "logits.ckpt";
  save_checkpoint(model, path, CheckpointPrecision::kF32);
  const GptModel loaded = load_checkpoint(path);
  GptInference a(model), b(loaded);
  const std::vector<float>& la = a.prompt({1, 2, 3, 4});
  const std::vector<float>& lb = b.prompt({1, 2, 3, 4});
  for (std::size_t i = 0; i < la.size(); ++i) EXPECT_EQ(la[i], lb[i]);
}

TEST_F(CheckpointTest, PeekReadsConfigOnly) {
  GptModel model = make_model();
  const fs::path path = dir_ / "peek.ckpt";
  save_checkpoint(model, path);
  EXPECT_EQ(peek_checkpoint_config(path), model.config());
}

TEST_F(CheckpointTest, RejectsWrongMagic) {
  const fs::path path = dir_ / "garbage.bin";
  util::write_text_file(path, "this is not a checkpoint");
  EXPECT_THROW(load_checkpoint(path), util::IoError);
  EXPECT_THROW(peek_checkpoint_config(path), util::IoError);
}

TEST_F(CheckpointTest, RejectsTruncatedFile) {
  GptModel model = make_model();
  const fs::path path = dir_ / "full.ckpt";
  save_checkpoint(model, path, CheckpointPrecision::kF32);
  // Truncate to half.
  const std::string content = util::read_text_file(path);
  util::write_text_file(dir_ / "cut.ckpt", content.substr(0, content.size() / 2));
  EXPECT_THROW(load_checkpoint(dir_ / "cut.ckpt"), util::IoError);
}

TEST_F(CheckpointTest, FlippedByteRaisesCorruptFileError) {
  GptModel model = make_model();
  const fs::path path = dir_ / "bitrot.ckpt";
  save_checkpoint(model, path, CheckpointPrecision::kF32);
  {
    std::fstream patch(path, std::ios::binary | std::ios::in | std::ios::out);
    const auto middle = static_cast<std::streamoff>(fs::file_size(path) / 2);
    patch.seekg(middle);
    char byte = 0;
    patch.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    patch.seekp(middle);
    patch.write(&byte, 1);
  }
  EXPECT_THROW(load_checkpoint(path), util::CorruptFileError);
}

TEST_F(CheckpointTest, InjectedSaveFailureLeavesPreviousCheckpointLoadable) {
  GptModel first = make_model(3);
  GptModel second = make_model(19);
  const fs::path path = dir_ / "generations.ckpt";
  save_checkpoint(first, path, CheckpointPrecision::kF32);
  util::FaultInjector::instance().arm_fail_write(4);
  EXPECT_THROW(save_checkpoint(second, path, CheckpointPrecision::kF32), util::IoError);
  util::FaultInjector::instance().disarm();
  EXPECT_FALSE(fs::exists(path.string() + ".tmp"));
  const GptModel survivor = load_checkpoint(path);
  for (std::size_t i = 0; i < first.params().total_size(); ++i) {
    ASSERT_EQ(survivor.params().params()[i], first.params().params()[i]) << i;
  }
}

TEST_F(CheckpointTest, LegacyV1CheckpointStillLoads) {
  // Hand-written ACK1 file: no CRC footer, same body layout as v2.
  GptModel model = make_model(11);
  const fs::path path = dir_ / "legacy_v1.ckpt";
  {
    util::BinaryWriter writer(path);  // plain mode, as the v1 code wrote
    writer.write_u32(0x41434B31);     // "ACK1"
    const GptConfig& c = model.config();
    writer.write_u64(c.vocab_size);
    writer.write_u64(c.ctx_len);
    writer.write_u64(c.d_model);
    writer.write_u64(c.n_heads);
    writer.write_u64(c.n_layers);
    writer.write_u64(c.d_ff);
    writer.write_u8(0);  // kF32
    writer.write_f32_array(model.params().params(), model.params().total_size());
    writer.close();
  }
  const GptModel loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.config(), model.config());
  for (std::size_t i = 0; i < model.params().total_size(); ++i) {
    ASSERT_EQ(loaded.params().params()[i], model.params().params()[i]) << i;
  }
}

TEST_F(CheckpointTest, InvalidPrecisionByteRaisesIoError) {
  const fs::path path = dir_ / "bad_precision.ckpt";
  {
    util::BinaryWriter writer(path);
    writer.write_u32(0x41434B31);  // legacy magic so the CRC footer is not required
    for (int i = 0; i < 6; ++i) writer.write_u64(8);  // a minimal valid config
    writer.write_u8(7);                               // out of enum range
    writer.close();
  }
  EXPECT_THROW(load_checkpoint(path), util::IoError);
}

TEST_F(CheckpointTest, InPlaceLoadRejectsConfigMismatch) {
  GptModel model = make_model();
  const fs::path path = dir_ / "mismatch.ckpt";
  save_checkpoint(model, path, CheckpointPrecision::kF32);
  GptConfig other = model.config();
  other.d_ff = 80;
  GptModel wrong_shape(other);
  EXPECT_THROW(load_checkpoint_params(wrong_shape, path), util::IoError);
  GptModel right_shape(model.config());
  load_checkpoint_params(right_shape, path);
  for (std::size_t i = 0; i < model.params().total_size(); ++i) {
    ASSERT_EQ(right_shape.params().params()[i], model.params().params()[i]) << i;
  }
}

}  // namespace
}  // namespace astromlab::nn
