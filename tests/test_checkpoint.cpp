#include <gtest/gtest.h>

#include <filesystem>

#include "nn/checkpoint.hpp"
#include "tensor/bf16.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"

namespace astromlab::nn {
namespace {

namespace fs = std::filesystem;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / ("astromlab_ckpt_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  GptModel make_model(std::uint64_t seed = 3) {
    GptConfig config;
    config.vocab_size = 50;
    config.ctx_len = 12;
    config.d_model = 20;
    config.n_heads = 4;
    config.n_layers = 2;
    config.d_ff = 40;
    GptModel model(config);
    util::Rng rng(seed);
    model.init_weights(rng);
    return model;
  }

  fs::path dir_;
};

TEST_F(CheckpointTest, F32RoundTripIsExact) {
  GptModel model = make_model();
  const fs::path path = dir_ / "model_f32.ckpt";
  save_checkpoint(model, path, CheckpointPrecision::kF32);
  const GptModel loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.config(), model.config());
  for (std::size_t i = 0; i < model.params().total_size(); ++i) {
    EXPECT_EQ(loaded.params().params()[i], model.params().params()[i]) << i;
  }
}

TEST_F(CheckpointTest, Bf16RoundTripIsQuantised) {
  GptModel model = make_model();
  const fs::path path = dir_ / "model_bf16.ckpt";
  save_checkpoint(model, path, CheckpointPrecision::kBf16);
  const GptModel loaded = load_checkpoint(path);
  for (std::size_t i = 0; i < model.params().total_size(); ++i) {
    const float expected = tensor::bf16_round(model.params().params()[i]);
    EXPECT_EQ(loaded.params().params()[i], expected) << i;
  }
}

TEST_F(CheckpointTest, Bf16IsHalfTheSizeOfF32) {
  GptModel model = make_model();
  save_checkpoint(model, dir_ / "a.ckpt", CheckpointPrecision::kF32);
  save_checkpoint(model, dir_ / "b.ckpt", CheckpointPrecision::kBf16);
  const auto f32_size = fs::file_size(dir_ / "a.ckpt");
  const auto bf16_size = fs::file_size(dir_ / "b.ckpt");
  EXPECT_LT(bf16_size, f32_size * 0.55);
}

TEST_F(CheckpointTest, LoadedModelProducesIdenticalLogits) {
  GptModel model = make_model(17);
  const fs::path path = dir_ / "logits.ckpt";
  save_checkpoint(model, path, CheckpointPrecision::kF32);
  const GptModel loaded = load_checkpoint(path);
  GptInference a(model), b(loaded);
  const std::vector<float>& la = a.prompt({1, 2, 3, 4});
  const std::vector<float>& lb = b.prompt({1, 2, 3, 4});
  for (std::size_t i = 0; i < la.size(); ++i) EXPECT_EQ(la[i], lb[i]);
}

TEST_F(CheckpointTest, PeekReadsConfigOnly) {
  GptModel model = make_model();
  const fs::path path = dir_ / "peek.ckpt";
  save_checkpoint(model, path);
  EXPECT_EQ(peek_checkpoint_config(path), model.config());
}

TEST_F(CheckpointTest, RejectsWrongMagic) {
  const fs::path path = dir_ / "garbage.bin";
  util::write_text_file(path, "this is not a checkpoint");
  EXPECT_THROW(load_checkpoint(path), util::IoError);
  EXPECT_THROW(peek_checkpoint_config(path), util::IoError);
}

TEST_F(CheckpointTest, RejectsTruncatedFile) {
  GptModel model = make_model();
  const fs::path path = dir_ / "full.ckpt";
  save_checkpoint(model, path, CheckpointPrecision::kF32);
  // Truncate to half.
  const std::string content = util::read_text_file(path);
  util::write_text_file(dir_ / "cut.ckpt", content.substr(0, content.size() / 2));
  EXPECT_THROW(load_checkpoint(dir_ / "cut.ckpt"), util::IoError);
}

}  // namespace
}  // namespace astromlab::nn
