// Run-wide tracing/metrics layer: nearest-rank percentile math, counter
// and histogram semantics, the Chrome trace_event JSON document, and the
// core contract — tracing is a pure observer, so benchmark scores and
// journal bytes are bit-identical with the session on or off, serial or
// parallel.
#include <gtest/gtest.h>

#include <filesystem>
#include <thread>
#include <vector>

#include "corpus/corpora.hpp"
#include "eval/journal.hpp"
#include "eval/token_method.hpp"
#include "json/json.hpp"
#include "util/io.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace astromlab {
namespace {

namespace fs = std::filesystem;
namespace metrics = util::metrics;
namespace trace = util::trace;

TEST(Metrics, NearestRankIndexMatchesDefinition) {
  // ceil(q*n) - 1 with exact ranks landing on their own index: the binary
  // representation of 0.025 * 1000 is slightly above 25, which a naive
  // ceil would push to index 25 instead of 24.
  EXPECT_EQ(metrics::nearest_rank_index(0.025, 1000), 24u);
  EXPECT_EQ(metrics::nearest_rank_index(0.975, 1000), 974u);
  EXPECT_EQ(metrics::nearest_rank_index(0.50, 4), 1u);
  EXPECT_EQ(metrics::nearest_rank_index(0.50, 5), 2u);
  EXPECT_EQ(metrics::nearest_rank_index(1.0, 5), 4u);
  EXPECT_EQ(metrics::nearest_rank_index(0.99, 1), 0u);
  EXPECT_EQ(metrics::nearest_rank_index(0.0, 5), 0u);
  // Out-of-range q clamps rather than indexing past the end.
  EXPECT_EQ(metrics::nearest_rank_index(2.0, 5), 4u);
}

TEST(Metrics, PercentileSortedPicksOrderStatistics) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0};
  EXPECT_DOUBLE_EQ(metrics::percentile_sorted(sorted, 0.50), 5.0);
  EXPECT_DOUBLE_EQ(metrics::percentile_sorted(sorted, 0.95), 10.0);
  EXPECT_DOUBLE_EQ(metrics::percentile_sorted(sorted, 0.10), 1.0);
  EXPECT_DOUBLE_EQ(metrics::percentile_sorted({}, 0.50), 0.0);
}

TEST(Metrics, CounterIsThreadSafe) {
  metrics::Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 1000; ++i) counter.add();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), 8000u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Metrics, HistogramSnapshotReportsPercentiles) {
  metrics::Histogram histogram;
  // 1..100 recorded out of order: snapshot sorts internally.
  for (int i = 100; i >= 1; --i) histogram.record(static_cast<double>(i));
  const metrics::HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
  EXPECT_DOUBLE_EQ(snap.sum, 5050.0);
  EXPECT_DOUBLE_EQ(snap.p50, 50.0);
  EXPECT_DOUBLE_EQ(snap.p95, 95.0);
  EXPECT_DOUBLE_EQ(snap.p99, 99.0);

  histogram.reset();
  EXPECT_EQ(histogram.snapshot().count, 0u);
}

TEST(Metrics, SnapshotAndResetDrainsAtomically) {
  metrics::Histogram histogram;
  for (int i = 1; i <= 10; ++i) histogram.record(static_cast<double>(i));
  const metrics::HistogramSnapshot drained = histogram.snapshot_and_reset();
  EXPECT_EQ(drained.count, 10u);
  EXPECT_DOUBLE_EQ(drained.sum, 55.0);
  EXPECT_DOUBLE_EQ(drained.min, 1.0);
  EXPECT_DOUBLE_EQ(drained.max, 10.0);
  // The drain leaves the histogram empty: the next interval starts fresh.
  EXPECT_EQ(histogram.snapshot().count, 0u);
  histogram.record(42.0);
  const metrics::HistogramSnapshot next = histogram.snapshot_and_reset();
  EXPECT_EQ(next.count, 1u);
  EXPECT_DOUBLE_EQ(next.p50, 42.0);
  EXPECT_EQ(histogram.snapshot_and_reset().count, 0u);  // empty drain is fine
}

TEST(Metrics, RegistryReturnsStableReferences) {
  metrics::Counter& a = metrics::registry().counter("test.registry_stable");
  metrics::Counter& b = metrics::registry().counter("test.registry_stable");
  EXPECT_EQ(&a, &b);
  const std::uint64_t before = a.value();
  b.add(3);
  EXPECT_EQ(a.value(), before + 3);

  metrics::Histogram& h = metrics::registry().histogram("test.registry_hist");
  h.record(1.5);
  bool found = false;
  for (const auto& [name, snap] : metrics::registry().histograms()) {
    if (name == "test.registry_hist") {
      found = true;
      EXPECT_GE(snap.count, 1u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Trace, DisabledSessionRecordsNothing) {
  ASSERT_FALSE(trace::enabled());
  {
    const trace::Span span("test.disabled", "test");
  }
  EXPECT_EQ(trace::event_count(), 0u);
  EXPECT_EQ(trace::stop(), "");
}

TEST(Trace, DocumentIsValidChromeTraceJson) {
  const fs::path path =
      fs::temp_directory_path() / ("astromlab_trace_" + std::to_string(::getpid()) + ".json");
  trace::start(path);
  {
    const trace::Span outer("test.outer", "test", "q", 7);
    const trace::Span inner("test.inner", "test");
  }
  std::thread worker([] { const trace::Span span("test.worker", "test"); });
  worker.join();
  EXPECT_EQ(trace::event_count(), 3u);
  const std::string doc = trace::stop();
  ASSERT_FALSE(doc.empty());
  // stop() also wrote the same document to the session path.
  EXPECT_EQ(util::read_text_file(path), doc);
  fs::remove(path);

  const json::Value parsed = json::parse(doc);
  const json::Value* events = parsed.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->items().size(), 3u);
  bool saw_arg = false;
  for (const json::Value& e : events->items()) {
    EXPECT_FALSE(e.get_string("name", "").empty());
    EXPECT_FALSE(e.get_string("cat", "").empty());
    EXPECT_EQ(e.get_string("ph", ""), "X");
    EXPECT_GE(e.get_number("ts", -1.0), 0.0);
    EXPECT_GE(e.get_number("dur", -1.0), 0.0);
    EXPECT_EQ(e.get_number("pid", 0.0), 1.0);
    if (const json::Value* args = e.find("args")) {
      EXPECT_EQ(args->get_number("q", 0.0), 7.0);
      saw_arg = true;
    }
  }
  EXPECT_TRUE(saw_arg);

  // The document embeds the metrics snapshot alongside the timeline.
  const json::Value* embedded = parsed.find("metrics");
  ASSERT_NE(embedded, nullptr);
  EXPECT_NE(embedded->find("counters"), nullptr);
  EXPECT_NE(embedded->find("histograms"), nullptr);

  // The session is closed: later spans cost nothing and record nothing.
  EXPECT_FALSE(trace::enabled());
  { const trace::Span span("test.after", "test"); }
  EXPECT_EQ(trace::event_count(), 0u);
}

TEST(Trace, PauseKeepsBufferedEventsAndResumeRearms) {
  trace::start({});
  { const trace::Span span("test.before_pause", "test"); }
  trace::pause();
  EXPECT_FALSE(trace::enabled());
  { const trace::Span span("test.while_paused", "test"); }
  EXPECT_EQ(trace::event_count(), 1u);  // paused span not recorded
  trace::resume();
  EXPECT_TRUE(trace::enabled());
  { const trace::Span span("test.after_resume", "test"); }
  EXPECT_EQ(trace::event_count(), 2u);
  EXPECT_FALSE(trace::stop().empty());  // paused session still stops cleanly

  // resume() without an open session must not arm tracing.
  trace::resume();
  EXPECT_FALSE(trace::enabled());
}

TEST(Trace, RestartDropsPreviousEvents) {
  trace::start({});
  { const trace::Span span("test.first", "test"); }
  EXPECT_EQ(trace::event_count(), 1u);
  trace::start({});
  EXPECT_EQ(trace::event_count(), 0u);
  trace::finish();
  EXPECT_FALSE(trace::enabled());
}

// ---------------------------------------------------------------------------
// The observer contract, end to end through the real token-method runner.

struct TinyWorld {
  corpus::KnowledgeBase kb;
  corpus::McqSplit mcqs;
  tokenizer::BpeTokenizer tok;
};

TinyWorld make_eval_world() {
  TinyWorld world;
  corpus::KbConfig kb_config;
  kb_config.n_topics = 4;
  kb_config.entities_per_topic = 3;
  kb_config.facts_per_entity = 2;
  kb_config.seed = 61;
  world.kb = corpus::KnowledgeBase::generate(kb_config);
  corpus::McqGenConfig mcq_config;
  mcq_config.questions_per_topic = 2;
  mcq_config.seed = 62;
  world.mcqs = corpus::generate_mcqs(world.kb, mcq_config);
  tokenizer::BpeTrainConfig tok_config;
  tok_config.vocab_size = 420;
  world.tok = tokenizer::BpeTokenizer::train(
      corpus::build_tokenizer_training_text(world.kb, world.mcqs.practice, 63), tok_config);
  return world;
}

nn::GptModel make_eval_model(const TinyWorld& world) {
  nn::GptConfig config;
  config.vocab_size = world.tok.vocab_size();
  config.ctx_len = 384;
  config.d_model = 24;
  config.n_heads = 2;
  config.n_layers = 1;
  config.d_ff = 48;
  nn::GptModel model(config);
  util::Rng rng(64);
  model.init_weights(rng);
  return model;
}

TEST(Trace, TracingIsAPureObserverOfTheTokenBenchmark) {
  const TinyWorld world = make_eval_world();
  const nn::GptModel model = make_eval_model(world);
  const fs::path dir =
      fs::temp_directory_path() / ("astromlab_trace_obs_" + std::to_string(::getpid()));
  fs::create_directories(dir);

  const auto run = [&](const fs::path& journal_path, bool traced, std::size_t workers) {
    if (traced) trace::start({});
    eval::EvalJournal journal(journal_path);
    eval::EvalRunOptions opts;
    opts.workers = workers;
    const auto results =
        eval::run_token_benchmark(model, world.tok, world.mcqs.benchmark,
                                  world.mcqs.practice, &journal, {}, opts);
    if (traced) {
      EXPECT_GT(trace::event_count(), 0u);
      trace::finish();
    }
    return results;
  };

  const auto plain = run(dir / "plain.jsonl", /*traced=*/false, /*workers=*/0);
  const auto traced = run(dir / "traced.jsonl", /*traced=*/true, /*workers=*/0);
  const auto traced_par = run(dir / "traced_par.jsonl", /*traced=*/true, /*workers=*/3);

  ASSERT_EQ(plain.size(), traced.size());
  ASSERT_EQ(plain.size(), traced_par.size());
  for (std::size_t q = 0; q < plain.size(); ++q) {
    EXPECT_EQ(plain[q].predicted, traced[q].predicted) << "question " << q;
    EXPECT_EQ(plain[q].predicted, traced_par[q].predicted) << "question " << q;
    EXPECT_EQ(plain[q].correct, traced[q].correct) << "question " << q;
    EXPECT_EQ(plain[q].method, traced[q].method) << "question " << q;
    EXPECT_EQ(plain[q].method, traced_par[q].method) << "question " << q;
  }
  // Byte-identical journals: tracing never leaks into the artefacts.
  const std::string plain_bytes = util::read_text_file(dir / "plain.jsonl");
  EXPECT_EQ(plain_bytes, util::read_text_file(dir / "traced.jsonl"));
  EXPECT_EQ(plain_bytes, util::read_text_file(dir / "traced_par.jsonl"));

  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(Trace, EvalRunPopulatesQuestionMetrics) {
  const TinyWorld world = make_eval_world();
  const nn::GptModel model = make_eval_model(world);
  metrics::Counter& completed = metrics::registry().counter("eval.questions_completed");
  const std::uint64_t before = completed.value();
  const auto before_hist =
      metrics::registry().histogram("eval.question_seconds").snapshot().count;

  eval::SupervisorStats stats;
  eval::run_token_benchmark(model, world.tok, world.mcqs.benchmark, world.mcqs.practice,
                            nullptr, {}, {}, nullptr, &stats);

  EXPECT_EQ(completed.value(), before + world.mcqs.benchmark.size());
  const auto snap = metrics::registry().histogram("eval.question_seconds").snapshot();
  EXPECT_EQ(snap.count, before_hist + world.mcqs.benchmark.size());
  EXPECT_EQ(stats.completed_questions, world.mcqs.benchmark.size());
  EXPECT_GT(stats.latency_p50_s, 0.0);
  EXPECT_GE(stats.latency_p95_s, stats.latency_p50_s);
  EXPECT_GE(stats.latency_p99_s, stats.latency_p95_s);
}

}  // namespace
}  // namespace astromlab
