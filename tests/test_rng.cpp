// Determinism and distributional sanity of the seeded RNG — every
// experiment in the reproduction flows from this generator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/rng.hpp"

namespace astromlab::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, DoubleIsInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(9);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.next_below(kBuckets)];
  }
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (int bucket = 0; bucket < kBuckets; ++bucket) {
    EXPECT_NEAR(counts[bucket], expected, expected * 0.08) << "bucket " << bucket;
  }
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(rng.next_range(5, 5), 5);
  EXPECT_EQ(rng.next_range(5, 2), 5);  // degenerate hi<lo clamps to lo
}

TEST(Rng, GaussianMomentsApproximatelyStandard) {
  Rng rng(17);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.next_gaussian();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kSamples;
  const double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(19);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  int counts[4] = {};
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.next_categorical(weights)];
  }
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(kSamples), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kSamples), 0.3, 0.02);
  EXPECT_NEAR(counts[3] / static_cast<double>(kSamples), 0.6, 0.02);
}

TEST(Rng, CategoricalDegenerateCases) {
  Rng rng(21);
  EXPECT_EQ(rng.next_categorical({}), 0u);
  EXPECT_EQ(rng.next_categorical({0.0, 0.0}), 1u);  // all-zero -> last index
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> values(50);
  for (int i = 0; i < 50; ++i) values[static_cast<std::size_t>(i)] = i;
  std::vector<int> shuffled = values;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, values);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(25);
  const auto sample = rng.sample_without_replacement(20, 8);
  EXPECT_EQ(sample.size(), 8u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 8u);
  for (std::size_t idx : sample) EXPECT_LT(idx, 20u);
}

TEST(Rng, SampleClampsToPopulation) {
  Rng rng(27);
  const auto sample = rng.sample_without_replacement(3, 10);
  EXPECT_EQ(sample.size(), 3u);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(29);
  Rng child_a = parent.split(1);
  Rng child_b = parent.split(1);  // same label, later draw -> different stream
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child_a.next_u64() == child_b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitIsDeterministicGivenParentState) {
  Rng p1(31), p2(31);
  Rng c1 = p1.split(42), c2 = p2.split(42);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

}  // namespace
}  // namespace astromlab::util
