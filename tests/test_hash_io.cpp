#include <gtest/gtest.h>

#include <filesystem>

#include "util/hash.hpp"
#include "util/io.hpp"

namespace astromlab::util {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() : path_(fs::temp_directory_path() / ("astromlab_io_" + std::to_string(::getpid()))) {
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

TEST(Hash, Fnv1aMatchesKnownVector) {
  // FNV-1a of empty input is the offset basis.
  EXPECT_EQ(fnv1a(""), kFnvOffset);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
}

TEST(HashBuilder, FieldOrderMatters) {
  HashBuilder a, b;
  a.add("x").add("y");
  b.add("y").add("x");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(HashBuilder, LengthPrefixPreventsConcatenationCollision) {
  HashBuilder a, b;
  a.add("ab").add("c");
  b.add("a").add("bc");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(HashBuilder, TypedFieldsAreStable) {
  HashBuilder a, b;
  a.add_u64(42).add_f64(3.5).add_bool(true).add_i64(-7);
  b.add_u64(42).add_f64(3.5).add_bool(true).add_i64(-7);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.hex().size(), 16u);
}

TEST(BinaryIo, RoundTripsScalarsAndStrings) {
  TempDir dir;
  const fs::path file = dir.path() / "scalars.bin";
  {
    BinaryWriter writer(file);
    writer.write_u8(7);
    writer.write_u32(0xCAFEBABE);
    writer.write_u64(1ULL << 60);
    writer.write_i64(-12345);
    writer.write_f32(2.5f);
    writer.write_f64(-0.125);
    writer.write_string("hello world");
    writer.write_string("");
    writer.close();
  }
  BinaryReader reader(file);
  EXPECT_EQ(reader.read_u8(), 7);
  EXPECT_EQ(reader.read_u32(), 0xCAFEBABE);
  EXPECT_EQ(reader.read_u64(), 1ULL << 60);
  EXPECT_EQ(reader.read_i64(), -12345);
  EXPECT_FLOAT_EQ(reader.read_f32(), 2.5f);
  EXPECT_DOUBLE_EQ(reader.read_f64(), -0.125);
  EXPECT_EQ(reader.read_string(), "hello world");
  EXPECT_EQ(reader.read_string(), "");
  EXPECT_TRUE(reader.at_end());
}

TEST(BinaryIo, RoundTripsArrays) {
  TempDir dir;
  const fs::path file = dir.path() / "arrays.bin";
  const std::vector<float> floats = {1.0f, -2.0f, 0.5f};
  const std::vector<std::uint16_t> halves = {1, 2, 65535};
  const std::vector<std::int32_t> ints = {-1, 0, 7};
  {
    BinaryWriter writer(file);
    writer.write_f32_array(floats.data(), floats.size());
    writer.write_u16_array(halves.data(), halves.size());
    writer.write_i32_vector(ints);
    writer.close();
  }
  BinaryReader reader(file);
  std::vector<float> floats_out(3);
  reader.read_f32_array(floats_out.data(), 3);
  EXPECT_EQ(floats_out, floats);
  std::vector<std::uint16_t> halves_out(3);
  reader.read_u16_array(halves_out.data(), 3);
  EXPECT_EQ(halves_out, halves);
  EXPECT_EQ(reader.read_i32_vector(), ints);
}

TEST(BinaryIo, TruncatedFileThrows) {
  TempDir dir;
  const fs::path file = dir.path() / "short.bin";
  {
    BinaryWriter writer(file);
    writer.write_u8(1);
    writer.close();
  }
  BinaryReader reader(file);
  EXPECT_EQ(reader.read_u8(), 1);
  EXPECT_THROW(reader.read_u64(), IoError);
}

TEST(BinaryIo, ArrayLengthMismatchThrows) {
  TempDir dir;
  const fs::path file = dir.path() / "mismatch.bin";
  const std::vector<float> floats = {1.0f, 2.0f};
  {
    BinaryWriter writer(file);
    writer.write_f32_array(floats.data(), floats.size());
    writer.close();
  }
  BinaryReader reader(file);
  std::vector<float> out(3);
  EXPECT_THROW(reader.read_f32_array(out.data(), 3), IoError);
}

TEST(BinaryIo, MissingFileThrows) {
  EXPECT_THROW(BinaryReader(fs::path("/nonexistent/astromlab/file.bin")), IoError);
}

TEST(TextIo, RoundTrip) {
  TempDir dir;
  const fs::path file = dir.path() / "nested" / "note.txt";
  write_text_file(file, "line1\nline2");
  EXPECT_EQ(read_text_file(file), "line1\nline2");
  write_text_file(file, "replaced");
  EXPECT_EQ(read_text_file(file), "replaced");
}

}  // namespace
}  // namespace astromlab::util
