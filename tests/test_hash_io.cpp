#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "util/checksum.hpp"
#include "util/fault_injection.hpp"
#include "util/hash.hpp"
#include "util/io.hpp"

namespace astromlab::util {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() : path_(fs::temp_directory_path() / ("astromlab_io_" + std::to_string(::getpid()))) {
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

TEST(Hash, Fnv1aMatchesKnownVector) {
  // FNV-1a of empty input is the offset basis.
  EXPECT_EQ(fnv1a(""), kFnvOffset);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
}

TEST(HashBuilder, FieldOrderMatters) {
  HashBuilder a, b;
  a.add("x").add("y");
  b.add("y").add("x");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(HashBuilder, LengthPrefixPreventsConcatenationCollision) {
  HashBuilder a, b;
  a.add("ab").add("c");
  b.add("a").add("bc");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(HashBuilder, TypedFieldsAreStable) {
  HashBuilder a, b;
  a.add_u64(42).add_f64(3.5).add_bool(true).add_i64(-7);
  b.add_u64(42).add_f64(3.5).add_bool(true).add_i64(-7);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.hex().size(), 16u);
}

TEST(BinaryIo, RoundTripsScalarsAndStrings) {
  TempDir dir;
  const fs::path file = dir.path() / "scalars.bin";
  {
    BinaryWriter writer(file);
    writer.write_u8(7);
    writer.write_u32(0xCAFEBABE);
    writer.write_u64(1ULL << 60);
    writer.write_i64(-12345);
    writer.write_f32(2.5f);
    writer.write_f64(-0.125);
    writer.write_string("hello world");
    writer.write_string("");
    writer.close();
  }
  BinaryReader reader(file);
  EXPECT_EQ(reader.read_u8(), 7);
  EXPECT_EQ(reader.read_u32(), 0xCAFEBABE);
  EXPECT_EQ(reader.read_u64(), 1ULL << 60);
  EXPECT_EQ(reader.read_i64(), -12345);
  EXPECT_FLOAT_EQ(reader.read_f32(), 2.5f);
  EXPECT_DOUBLE_EQ(reader.read_f64(), -0.125);
  EXPECT_EQ(reader.read_string(), "hello world");
  EXPECT_EQ(reader.read_string(), "");
  EXPECT_TRUE(reader.at_end());
}

TEST(BinaryIo, RoundTripsArrays) {
  TempDir dir;
  const fs::path file = dir.path() / "arrays.bin";
  const std::vector<float> floats = {1.0f, -2.0f, 0.5f};
  const std::vector<std::uint16_t> halves = {1, 2, 65535};
  const std::vector<std::int32_t> ints = {-1, 0, 7};
  {
    BinaryWriter writer(file);
    writer.write_f32_array(floats.data(), floats.size());
    writer.write_u16_array(halves.data(), halves.size());
    writer.write_i32_vector(ints);
    writer.close();
  }
  BinaryReader reader(file);
  std::vector<float> floats_out(3);
  reader.read_f32_array(floats_out.data(), 3);
  EXPECT_EQ(floats_out, floats);
  std::vector<std::uint16_t> halves_out(3);
  reader.read_u16_array(halves_out.data(), 3);
  EXPECT_EQ(halves_out, halves);
  EXPECT_EQ(reader.read_i32_vector(), ints);
}

TEST(BinaryIo, TruncatedFileThrows) {
  TempDir dir;
  const fs::path file = dir.path() / "short.bin";
  {
    BinaryWriter writer(file);
    writer.write_u8(1);
    writer.close();
  }
  BinaryReader reader(file);
  EXPECT_EQ(reader.read_u8(), 1);
  EXPECT_THROW(reader.read_u64(), IoError);
}

TEST(BinaryIo, ArrayLengthMismatchThrows) {
  TempDir dir;
  const fs::path file = dir.path() / "mismatch.bin";
  const std::vector<float> floats = {1.0f, 2.0f};
  {
    BinaryWriter writer(file);
    writer.write_f32_array(floats.data(), floats.size());
    writer.close();
  }
  BinaryReader reader(file);
  std::vector<float> out(3);
  EXPECT_THROW(reader.read_f32_array(out.data(), 3), IoError);
}

TEST(BinaryIo, MissingFileThrows) {
  EXPECT_THROW(BinaryReader(fs::path("/nonexistent/astromlab/file.bin")), IoError);
}

TEST(Crc32, MatchesKnownVector) {
  // The canonical CRC-32 check value (zlib/IEEE reflected polynomial).
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
  Crc32 incremental;
  incremental.update("1234", 4);
  incremental.update("56789", 5);
  EXPECT_EQ(incremental.value(), 0xCBF43926u);
  incremental.reset();
  EXPECT_EQ(incremental.value(), 0u);
}

TEST(BinaryIo, AtomicChecksumRoundTrip) {
  TempDir dir;
  const fs::path file = dir.path() / "durable.bin";
  {
    BinaryWriter writer(file, WriteOptions{/*atomic=*/true, /*checksum=*/true});
    writer.write_u32(0xDEADBEEF);
    writer.write_string("payload");
    writer.close();
  }
  EXPECT_FALSE(fs::exists(file.string() + ".tmp"));
  BinaryReader reader(file);
  EXPECT_TRUE(reader.has_checksum());
  EXPECT_EQ(reader.read_u32(), 0xDEADBEEF);
  EXPECT_EQ(reader.read_string(), "payload");
  EXPECT_TRUE(reader.at_end());  // footer is stripped from the payload view
}

TEST(BinaryIo, FlippedByteRaisesCorruptFileError) {
  TempDir dir;
  const fs::path file = dir.path() / "flip.bin";
  {
    BinaryWriter writer(file, WriteOptions{/*atomic=*/true, /*checksum=*/true});
    for (int i = 0; i < 64; ++i) writer.write_u64(static_cast<std::uint64_t>(i));
    writer.close();
  }
  {
    std::fstream patch(file, std::ios::binary | std::ios::in | std::ios::out);
    patch.seekg(100);
    char byte = 0;
    patch.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    patch.seekp(100);
    patch.write(&byte, 1);
  }
  EXPECT_THROW({ BinaryReader reader(file); }, CorruptFileError);
}

TEST(BinaryIo, FooterlessFileFailsRequireChecksum) {
  TempDir dir;
  const fs::path file = dir.path() / "legacy.bin";
  {
    BinaryWriter writer(file);  // plain mode: no footer
    writer.write_u64(42);
    writer.close();
  }
  BinaryReader plain(file);
  EXPECT_FALSE(plain.has_checksum());
  EXPECT_EQ(plain.read_u64(), 42u);
  EXPECT_THROW(BinaryReader(file, ReadOptions{/*require_checksum=*/true}),
               CorruptFileError);
}

TEST(BinaryIo, InjectedWriteFailureLeavesPreviousFileIntact) {
  TempDir dir;
  const fs::path file = dir.path() / "versioned.bin";
  {
    BinaryWriter writer(file, WriteOptions{/*atomic=*/true, /*checksum=*/true});
    writer.write_u32(1);  // version 1 commits cleanly
    writer.close();
  }
  FaultInjector::instance().arm_fail_write(2);
  EXPECT_THROW(
      {
        BinaryWriter writer(file, WriteOptions{/*atomic=*/true, /*checksum=*/true});
        writer.write_u32(2);
        writer.write_u32(3);  // second write fires the injected failure
        writer.close();
      },
      IoError);
  FaultInjector::instance().disarm();
  EXPECT_FALSE(fs::exists(file.string() + ".tmp"));  // tmp cleaned up
  BinaryReader reader(file);                         // previous version intact
  EXPECT_TRUE(reader.has_checksum());
  EXPECT_EQ(reader.read_u32(), 1u);
}

TEST(BinaryIo, TruncateInjectionProducesDetectablyTornFile) {
  TempDir dir;
  const fs::path file = dir.path() / "torn.bin";
  FaultInjector::instance().arm_truncate_write(3);
  {
    BinaryWriter writer(file, WriteOptions{/*atomic=*/true, /*checksum=*/true});
    writer.write_u32(7);
    writer.write_u32(8);
    writer.write_u32(9);  // dropped on the floor, along with the footer
    writer.close();       // still renames: a torn-but-committed file
  }
  FaultInjector::instance().disarm();
  ASSERT_TRUE(fs::exists(file));
  EXPECT_THROW(BinaryReader(file, ReadOptions{/*require_checksum=*/true}),
               CorruptFileError);
}

TEST(TextIo, RoundTrip) {
  TempDir dir;
  const fs::path file = dir.path() / "nested" / "note.txt";
  write_text_file(file, "line1\nline2");
  EXPECT_EQ(read_text_file(file), "line1\nline2");
  write_text_file(file, "replaced");
  EXPECT_EQ(read_text_file(file), "replaced");
}

}  // namespace
}  // namespace astromlab::util
