// Differential batch-composition suite for the continuous-batching decode
// engine: every way of packing sequences into `nn::BatchedInference` slots
// — ragged prompt lengths, mid-step admissions, mid-step abandonment, slot
// reuse — must produce per-sequence logits and token streams bitwise equal
// to a serial `nn::GptInference` oracle run on the same tokens. The suite
// sweeps >= 100 seeded random compositions; a failure shrinks to the first
// divergent (sequence, step) and prints a self-contained reproduction
// (seed, slot schedule, prompt) instead of a wall of floats.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "corpus/corpora.hpp"
#include "eval/token_method.hpp"
#include "nn/decode_engine.hpp"
#include "nn/gpt.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace astromlab {
namespace {

namespace fs = std::filesystem;

// Tiny model: big enough to have multi-head attention and two layers'
// worth of KV bookkeeping, small enough that hundreds of compositions run
// in seconds.
nn::GptModel tiny_model() {
  nn::GptConfig config;
  config.vocab_size = 96;
  config.ctx_len = 96;
  config.d_model = 16;
  config.n_heads = 2;
  config.n_layers = 2;
  config.d_ff = 32;
  nn::GptModel model(config);
  util::Rng rng(91);
  model.init_weights(rng);
  return model;
}

nn::Token argmax_token(const std::vector<float>& logits) {
  return static_cast<nn::Token>(std::max_element(logits.begin(), logits.end()) -
                                logits.begin());
}

// One sequence of a composition: the prompt it feeds and how many greedy
// tokens it decodes afterwards.
struct Sequence {
  std::vector<nn::Token> prompt;
  std::size_t decode_len = 0;
  bool abandon = false;  ///< dropped mid-decode (slot freed without finishing)
};

// Serial oracle: prompt + greedy decode on a fresh GptInference. Returns
// the decoded tokens and the logits observed at every step (after the last
// prompt token and after each decode token).
struct OracleRun {
  std::vector<nn::Token> tokens;
  std::vector<std::vector<float>> step_logits;
};

OracleRun oracle_run(const nn::GptModel& model, const Sequence& seq) {
  OracleRun out;
  nn::GptInference inference(model);
  const std::vector<float>* logits = &inference.prompt(seq.prompt);
  out.step_logits.push_back(*logits);
  for (std::size_t s = 0; s < seq.decode_len; ++s) {
    const nn::Token next = argmax_token(*logits);
    out.tokens.push_back(next);
    logits = &inference.step(next);
    out.step_logits.push_back(*logits);
  }
  return out;
}

// Shrunk failure report: the first divergent step and logit index, plus
// everything needed to replay the composition by hand.
std::string divergence_report(std::size_t seed, std::size_t seq_index,
                              const Sequence& seq, const OracleRun& oracle,
                              const std::vector<std::vector<float>>& got_logits,
                              const std::vector<nn::Token>& got_tokens) {
  std::ostringstream os;
  os << "composition seed=" << seed << " sequence=" << seq_index
     << " prompt_len=" << seq.prompt.size() << " decode_len=" << seq.decode_len
     << "\nprompt=[";
  for (std::size_t i = 0; i < seq.prompt.size(); ++i) {
    os << (i ? "," : "") << seq.prompt[i];
  }
  os << "]\n";
  const std::size_t steps = std::min(oracle.step_logits.size(), got_logits.size());
  for (std::size_t s = 0; s < steps; ++s) {
    const auto& want = oracle.step_logits[s];
    const auto& got = got_logits[s];
    if (want.size() != got.size()) {
      os << "first divergence: step " << s << " logits size " << got.size()
         << " != " << want.size();
      return os.str();
    }
    if (std::memcmp(want.data(), got.data(), want.size() * sizeof(float)) != 0) {
      for (std::size_t i = 0; i < want.size(); ++i) {
        if (std::memcmp(&want[i], &got[i], sizeof(float)) != 0) {
          os << "first divergence: step " << s << " logit " << i << " got "
             << got[i] << " want " << want[i];
          return os.str();
        }
      }
    }
  }
  if (got_logits.size() != oracle.step_logits.size()) {
    os << "first divergence: batched produced " << got_logits.size()
       << " logit snapshots, oracle " << oracle.step_logits.size();
    return os.str();
  }
  for (std::size_t s = 0; s < std::min(oracle.tokens.size(), got_tokens.size()); ++s) {
    if (oracle.tokens[s] != got_tokens[s]) {
      os << "first divergence: decode token " << s << " got " << got_tokens[s]
         << " want " << oracle.tokens[s];
      return os.str();
    }
  }
  os << "token count mismatch: got " << got_tokens.size() << " want "
     << oracle.tokens.size();
  return os.str();
}

// ---------------------------------------------------------------------------
// Direct BatchedInference compositions: a deterministic scheduler packs
// random sequences into random slot counts, admitting the next sequence the
// moment a slot frees (mid-step of everything else), occasionally
// abandoning a sequence mid-decode so its slot is recycled dirty.
// ---------------------------------------------------------------------------

struct ActiveSeq {
  std::size_t seq_index = 0;
  std::size_t fed = 0;        ///< prompt tokens already fed
  std::size_t decoded = 0;    ///< decode tokens already fed
  std::vector<std::vector<float>> logits;
  std::vector<nn::Token> tokens;
  bool has_logits = false;    ///< prompt fully fed; logits valid
};

void run_composition(const nn::GptModel& model, std::size_t seed) {
  std::mt19937 rng(static_cast<std::uint32_t>(seed * 2654435761u + 17));
  const std::size_t n_slots = 1 + rng() % 4;
  const std::size_t n_seqs = n_slots + 1 + rng() % 7;

  std::vector<Sequence> seqs(n_seqs);
  for (auto& seq : seqs) {
    seq.prompt.resize(1 + rng() % 24);
    for (auto& t : seq.prompt) {
      t = static_cast<nn::Token>(rng() % model.config().vocab_size);
    }
    seq.decode_len = rng() % 13;
    // ~1 in 6 sequences is abandoned partway so the slot is reused without
    // a clean finish.
    seq.abandon = seq.decode_len > 1 && rng() % 6 == 0;
  }

  nn::BatchedInference bi(model, n_slots);
  std::vector<ActiveSeq> active(n_slots);
  std::vector<bool> slot_busy(n_slots, false);
  std::size_t next_seq = 0, finished = 0;

  std::vector<std::vector<std::vector<float>>> got_logits(n_seqs);
  std::vector<std::vector<nn::Token>> got_tokens(n_seqs);

  std::vector<std::size_t> step_slots;
  std::vector<nn::Token> step_tokens;
  while (finished < n_seqs) {
    // Admit into every free slot (mid-flight of the busy ones).
    for (std::size_t s = 0; s < n_slots && next_seq < n_seqs; ++s) {
      if (slot_busy[s]) continue;
      bi.reset_slot(s);
      active[s] = ActiveSeq{};
      active[s].seq_index = next_seq++;
      slot_busy[s] = true;
    }
    // Each busy slot feeds its next token; a random subset stalls this
    // step (ragged progress), but a step always feeds someone.
    step_slots.clear();
    step_tokens.clear();
    for (std::size_t s = 0; s < n_slots; ++s) {
      if (!slot_busy[s]) continue;
      if (step_slots.size() > 0 && rng() % 4 == 0) continue;  // stall slot
      ActiveSeq& a = active[s];
      const Sequence& seq = seqs[a.seq_index];
      step_slots.push_back(s);
      if (a.fed < seq.prompt.size()) {
        step_tokens.push_back(seq.prompt[a.fed++]);
      } else {
        const nn::Token next = argmax_token(bi.logits(s));
        a.tokens.push_back(next);
        ++a.decoded;
        step_tokens.push_back(next);
      }
    }
    if (step_slots.empty()) continue;
    bi.step(step_slots.data(), step_tokens.data(), step_slots.size());
    // Collect logits and retire finished/abandoned sequences.
    for (const std::size_t s : step_slots) {
      ActiveSeq& a = active[s];
      const Sequence& seq = seqs[a.seq_index];
      if (a.fed < seq.prompt.size()) continue;  // still mid-prompt
      a.logits.push_back(bi.logits(s));
      const bool abandon_now = seq.abandon && a.decoded == seq.decode_len / 2;
      if (a.decoded == seq.decode_len || abandon_now) {
        got_logits[a.seq_index] = std::move(a.logits);
        got_tokens[a.seq_index] = std::move(a.tokens);
        slot_busy[s] = false;
        ++finished;
      }
    }
  }

  for (std::size_t q = 0; q < n_seqs; ++q) {
    Sequence checked = seqs[q];
    if (checked.abandon) {
      // The oracle only needs to match up to the abandonment point.
      checked.decode_len = checked.decode_len / 2;
    }
    const OracleRun oracle = oracle_run(model, checked);
    bool identical = oracle.tokens == got_tokens[q] &&
                     oracle.step_logits.size() == got_logits[q].size();
    for (std::size_t s = 0; identical && s < oracle.step_logits.size(); ++s) {
      identical = oracle.step_logits[s].size() == got_logits[q][s].size() &&
                  std::memcmp(oracle.step_logits[s].data(), got_logits[q][s].data(),
                              oracle.step_logits[s].size() * sizeof(float)) == 0;
    }
    ASSERT_TRUE(identical) << divergence_report(seed, q, checked, oracle,
                                                got_logits[q], got_tokens[q]);
  }
}

TEST(BatchCompositions, SixtySeededSchedulesMatchSerialOracleBitwise) {
  const nn::GptModel model = tiny_model();
  for (std::size_t seed = 0; seed < 60; ++seed) {
    SCOPED_TRACE("composition seed " + std::to_string(seed));
    run_composition(model, seed);
  }
}

// ---------------------------------------------------------------------------
// DecodeEngine compositions: concurrent submitters racing for fewer slots,
// so admissions and retirements genuinely interleave mid-step. Each request
// greedy-decodes a random depth; completed requests must be bitwise equal
// to the serial oracle regardless of what shared the batch with them.
// ---------------------------------------------------------------------------

void run_engine_composition(const nn::GptModel& model, std::size_t seed) {
  std::mt19937 rng(static_cast<std::uint32_t>(seed * 40503u + 7));
  const std::size_t n_slots = 1 + rng() % 3;
  const std::size_t n_reqs = n_slots + 2 + rng() % 6;

  std::vector<Sequence> seqs(n_reqs);
  for (auto& seq : seqs) {
    seq.prompt.resize(1 + rng() % 20);
    for (auto& t : seq.prompt) {
      t = static_cast<nn::Token>(rng() % model.config().vocab_size);
    }
    seq.decode_len = rng() % 10;
  }
  // ~1 in 5 compositions carries one pre-cancelled request: its prompt
  // feed must stop before the first token and report cancelled without
  // perturbing anything else in the batch.
  const std::size_t cancelled_req = rng() % 5 == 0 ? rng() % n_reqs : n_reqs;

  std::vector<std::vector<float>> final_logits(n_reqs);
  std::vector<std::vector<nn::Token>> decoded(n_reqs);
  std::vector<bool> was_cancelled(n_reqs, false);

  {
    nn::DecodeEngine engine(model, n_slots);
    util::CancelToken pre_cancelled;
    pre_cancelled.cancel();
    std::vector<std::thread> submitters;
    submitters.reserve(n_reqs);
    for (std::size_t r = 0; r < n_reqs; ++r) {
      submitters.emplace_back([&, r] {
        nn::DecodeEngine::Request req;
        req.prompt = seqs[r].prompt;
        if (r == cancelled_req) req.cancel = &pre_cancelled;
        std::size_t produced = 0;
        req.on_logits = [&, r](const std::vector<float>& logits,
                               std::size_t) -> nn::Token {
          if (produced == seqs[r].decode_len) {
            final_logits[r] = logits;
            return nn::DecodeEngine::kStopDecoding;
          }
          ++produced;
          const nn::Token next = argmax_token(logits);
          decoded[r].push_back(next);
          return next;
        };
        const nn::DecodeEngine::Completion done = engine.run(std::move(req));
        was_cancelled[r] = done.cancelled;
      });
    }
    for (auto& thread : submitters) thread.join();
  }

  for (std::size_t r = 0; r < n_reqs; ++r) {
    if (r == cancelled_req) {
      EXPECT_TRUE(was_cancelled[r]) << "pre-cancelled request " << r
                                    << " completed (seed " << seed << ")";
      EXPECT_TRUE(decoded[r].empty());
      continue;
    }
    ASSERT_FALSE(was_cancelled[r]) << "request " << r << " spuriously cancelled";
    const OracleRun oracle = oracle_run(model, seqs[r]);
    const bool identical =
        oracle.tokens == decoded[r] &&
        final_logits[r].size() == oracle.step_logits.back().size() &&
        std::memcmp(final_logits[r].data(), oracle.step_logits.back().data(),
                    final_logits[r].size() * sizeof(float)) == 0;
    std::vector<std::vector<float>> got{final_logits[r]};
    std::vector<std::vector<float>> want{oracle.step_logits.back()};
    OracleRun tail;
    tail.tokens = oracle.tokens;
    tail.step_logits = want;
    ASSERT_TRUE(identical) << divergence_report(seed, r, seqs[r], tail, got,
                                                decoded[r]);
  }
}

TEST(BatchCompositions, FortyEightEngineRacesMatchSerialOracleBitwise) {
  const nn::GptModel model = tiny_model();
  for (std::size_t seed = 0; seed < 48; ++seed) {
    SCOPED_TRACE("engine composition seed " + std::to_string(seed));
    run_engine_composition(model, seed);
  }
}

// A cancel that fires mid-run (from a racing thread) must never corrupt
// the surviving requests: whatever the cancelled request managed to do,
// everyone who completed stays bitwise equal to the oracle.
TEST(BatchCompositions, MidFlightCancelLeavesOtherSlotsBitIdentical) {
  const nn::GptModel model = tiny_model();
  for (std::size_t seed = 0; seed < 8; ++seed) {
    SCOPED_TRACE("mid-flight cancel seed " + std::to_string(seed));
    std::mt19937 rng(static_cast<std::uint32_t>(seed + 1000));
    const std::size_t n_reqs = 4;
    std::vector<Sequence> seqs(n_reqs);
    for (auto& seq : seqs) {
      seq.prompt.resize(8 + rng() % 16);
      for (auto& t : seq.prompt) {
        t = static_cast<nn::Token>(rng() % model.config().vocab_size);
      }
      seq.decode_len = 4 + rng() % 6;
    }
    std::vector<std::vector<nn::Token>> decoded(n_reqs);
    std::vector<std::vector<float>> final_logits(n_reqs);
    std::vector<bool> was_cancelled(n_reqs, false);
    util::CancelToken victim_cancel;
    {
      nn::DecodeEngine engine(model, 2);
      std::vector<std::thread> submitters;
      for (std::size_t r = 0; r < n_reqs; ++r) {
        submitters.emplace_back([&, r] {
          nn::DecodeEngine::Request req;
          req.prompt = seqs[r].prompt;
          if (r == 0) req.cancel = &victim_cancel;
          std::size_t produced = 0;
          req.on_logits = [&, r](const std::vector<float>& logits,
                                 std::size_t) -> nn::Token {
            if (r == 0 && victim_cancel.cancelled()) {
              was_cancelled[r] = true;
              return nn::DecodeEngine::kStopDecoding;
            }
            if (produced == seqs[r].decode_len) {
              final_logits[r] = logits;
              return nn::DecodeEngine::kStopDecoding;
            }
            ++produced;
            const nn::Token next = argmax_token(logits);
            decoded[r].push_back(next);
            return next;
          };
          const auto done = engine.run(std::move(req));
          was_cancelled[r] = was_cancelled[r] || done.cancelled;
        });
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50 + 200 * seed));
      victim_cancel.cancel();
      for (auto& thread : submitters) thread.join();
    }
    for (std::size_t r = 1; r < n_reqs; ++r) {
      ASSERT_FALSE(was_cancelled[r]);
      const OracleRun oracle = oracle_run(model, seqs[r]);
      ASSERT_EQ(oracle.tokens, decoded[r]) << "survivor " << r << " diverged";
      ASSERT_EQ(final_logits[r].size(), oracle.step_logits.back().size());
      ASSERT_EQ(std::memcmp(final_logits[r].data(), oracle.step_logits.back().data(),
                            final_logits[r].size() * sizeof(float)),
                0)
          << "survivor " << r << " logits diverged";
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end runner equivalence: the token benchmark with decode_batch=4
// must produce the same results vector and byte-identical journal as the
// serial reference run.
// ---------------------------------------------------------------------------

struct TinyWorld {
  corpus::KnowledgeBase kb;
  corpus::McqSplit mcqs;
  tokenizer::BpeTokenizer tok;
};

TinyWorld make_world() {
  TinyWorld world;
  corpus::KbConfig kb_config;
  kb_config.n_topics = 5;
  kb_config.entities_per_topic = 3;
  kb_config.facts_per_entity = 2;
  kb_config.seed = 151;
  world.kb = corpus::KnowledgeBase::generate(kb_config);
  corpus::McqGenConfig mcq_config;
  mcq_config.questions_per_topic = 2;
  mcq_config.seed = 152;
  world.mcqs = corpus::generate_mcqs(world.kb, mcq_config);
  tokenizer::BpeTrainConfig tok_config;
  tok_config.vocab_size = 420;
  world.tok = tokenizer::BpeTokenizer::train(
      corpus::build_tokenizer_training_text(world.kb, world.mcqs.practice, 153),
      tok_config);
  return world;
}

nn::GptModel make_eval_model(const TinyWorld& world) {
  nn::GptConfig config;
  config.vocab_size = world.tok.vocab_size();
  config.ctx_len = 448;
  config.d_model = 24;
  config.n_heads = 2;
  config.n_layers = 1;
  config.d_ff = 48;
  nn::GptModel model(config);
  util::Rng rng(154);
  model.init_weights(rng);
  return model;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(BatchedRunner, TokenBenchmarkJournalAndResultsMatchSerial) {
  const TinyWorld world = make_world();
  const nn::GptModel model = make_eval_model(world);
  const fs::path dir =
      fs::temp_directory_path() / ("astromlab_batch_" + std::to_string(::getpid()));
  fs::create_directories(dir);

  eval::EvalJournal serial_journal(dir / "serial.jsonl");
  const auto serial = eval::run_token_benchmark(model, world.tok,
                                                world.mcqs.benchmark,
                                                world.mcqs.practice,
                                                &serial_journal);

  eval::EvalRunOptions opts;
  opts.decode_batch = 4;
  opts.prefix_cache = true;
  eval::EvalJournal batched_journal(dir / "batched.jsonl");
  const auto batched = eval::run_token_benchmark(model, world.tok,
                                                 world.mcqs.benchmark,
                                                 world.mcqs.practice,
                                                 &batched_journal, {}, opts);

  ASSERT_EQ(serial.size(), batched.size());
  for (std::size_t q = 0; q < serial.size(); ++q) {
    EXPECT_EQ(serial[q].predicted, batched[q].predicted) << "question " << q;
    EXPECT_EQ(serial[q].correct, batched[q].correct) << "question " << q;
    EXPECT_EQ(serial[q].degraded, batched[q].degraded) << "question " << q;
  }
  EXPECT_EQ(slurp(dir / "serial.jsonl"), slurp(dir / "batched.jsonl"))
      << "journal bytes must not depend on batch composition";

  std::error_code ec;
  fs::remove_all(dir, ec);
}

}  // namespace
}  // namespace astromlab
