// Finite-difference verification of the manual backward pass. This is the
// load-bearing test of the training stack: if these gradients are right,
// every CPT/SFT result downstream is trustworthy optimisation.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/gpt.hpp"
#include "util/rng.hpp"

namespace astromlab::nn {
namespace {

struct GradCheckSetup {
  GptConfig config;
  std::vector<Token> tokens;
  std::vector<Token> targets;
  std::size_t batch;
  std::size_t seq;
};

GradCheckSetup make_setup(bool with_ignored_targets) {
  GradCheckSetup setup;
  setup.config.vocab_size = 23;
  setup.config.ctx_len = 8;
  setup.config.d_model = 12;
  setup.config.n_heads = 2;
  setup.config.n_layers = 2;
  setup.config.d_ff = 20;
  setup.batch = 2;
  setup.seq = 6;
  util::Rng rng(1234);
  setup.tokens.resize(setup.batch * setup.seq);
  setup.targets.resize(setup.batch * setup.seq);
  for (std::size_t i = 0; i < setup.tokens.size(); ++i) {
    setup.tokens[i] = static_cast<Token>(rng.next_below(setup.config.vocab_size));
    setup.targets[i] = static_cast<Token>(rng.next_below(setup.config.vocab_size));
  }
  if (with_ignored_targets) {
    // Mask half the positions, as SFT does.
    for (std::size_t i = 0; i < setup.targets.size(); i += 2) {
      setup.targets[i] = kIgnoreTarget;
    }
  }
  return setup;
}

void run_gradcheck(const GradCheckSetup& setup) {
  GptModel model(setup.config);
  util::Rng rng(99);
  model.init_weights(rng);

  GptActivations acts;
  model.forward(acts, setup.tokens.data(), setup.targets.data(), setup.batch, setup.seq);
  model.params().zero_grads();
  model.backward(acts, setup.tokens.data(), setup.targets.data(), setup.batch, setup.seq);

  // Keep an unclobbered copy of the analytic gradients.
  std::vector<float> analytic(model.params().grads(),
                              model.params().grads() + model.params().total_size());

  // Check every segment at several sampled coordinates (segments with few
  // elements get full coverage). Central differences in fp32.
  util::Rng pick(4242);
  // eps trades curvature error (large eps) against fp32 cancellation noise
  // (small eps); 1e-3 sits in the convergent regime for this model size
  // (verified by sweeping eps — numeric approaches analytic as eps -> 0).
  const float eps = 1e-3f;
  std::size_t checked = 0;
  for (const ParamSegment& segment : model.params().segments()) {
    const std::size_t samples = std::min<std::size_t>(segment.size, 6);
    for (std::size_t s = 0; s < samples; ++s) {
      const std::size_t index =
          segment.offset + static_cast<std::size_t>(pick.next_below(segment.size));
      float* p = model.params().params() + index;
      const float original = *p;
      *p = original + eps;
      const float loss_plus =
          model.forward(acts, setup.tokens.data(), setup.targets.data(), setup.batch, setup.seq);
      *p = original - eps;
      const float loss_minus =
          model.forward(acts, setup.tokens.data(), setup.targets.data(), setup.batch, setup.seq);
      *p = original;
      const float numeric = (loss_plus - loss_minus) / (2.0f * eps);
      const float exact = analytic[index];
      const float tolerance = 1.5e-3f + 0.02f * std::abs(numeric);
      EXPECT_NEAR(exact, numeric, tolerance)
          << "segment " << segment.name << " index " << (index - segment.offset);
      ++checked;
    }
  }
  EXPECT_GT(checked, 100u);  // every parameter family was exercised
}

TEST(GradCheck, FullModelAllTargets) { run_gradcheck(make_setup(false)); }

TEST(GradCheck, FullModelWithIgnoredTargets) { run_gradcheck(make_setup(true)); }

TEST(GradCheck, GradsAccumulateAcrossBackwardCalls) {
  const GradCheckSetup setup = make_setup(false);
  GptModel model(setup.config);
  util::Rng rng(7);
  model.init_weights(rng);
  GptActivations acts;

  model.forward(acts, setup.tokens.data(), setup.targets.data(), setup.batch, setup.seq);
  model.params().zero_grads();
  model.backward(acts, setup.tokens.data(), setup.targets.data(), setup.batch, setup.seq);
  const std::vector<float> once(model.params().grads(),
                                model.params().grads() + model.params().total_size());

  model.forward(acts, setup.tokens.data(), setup.targets.data(), setup.batch, setup.seq);
  model.backward(acts, setup.tokens.data(), setup.targets.data(), setup.batch, setup.seq);
  for (std::size_t i = 0; i < once.size(); i += 97) {
    EXPECT_NEAR(model.params().grads()[i], 2.0f * once[i],
                1e-5f + 1e-3f * std::abs(once[i]));
  }
}

TEST(GradCheck, AllIgnoredTargetsProduceZeroGrads) {
  GradCheckSetup setup = make_setup(false);
  std::fill(setup.targets.begin(), setup.targets.end(), kIgnoreTarget);
  GptModel model(setup.config);
  util::Rng rng(8);
  model.init_weights(rng);
  GptActivations acts;
  model.forward(acts, setup.tokens.data(), setup.targets.data(), setup.batch, setup.seq);
  model.params().zero_grads();
  model.backward(acts, setup.tokens.data(), setup.targets.data(), setup.batch, setup.seq);
  double norm = model.params().grad_norm();
  EXPECT_EQ(norm, 0.0);
}

}  // namespace
}  // namespace astromlab::nn
