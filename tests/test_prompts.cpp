#include <gtest/gtest.h>

#include "eval/prompts.hpp"

namespace astromlab::eval {
namespace {

corpus::McqItem make_item(const std::string& question, std::size_t correct = 1) {
  corpus::McqItem item;
  item.question = question;
  item.options = {"alpha value", "beta value", "gamma value", "delta value"};
  item.correct = correct;
  return item;
}

TEST(TokenPrompt, HasHeaderTwoExamplesAndProbe) {
  const corpus::McqItem test_item = make_item("What is the test question?");
  const std::vector<corpus::McqItem> examples = {make_item("Example one?", 0),
                                                 make_item("Example two?", 3)};
  const std::string prompt = build_token_prompt(test_item, examples);

  // Header first (Appendix C format).
  EXPECT_EQ(prompt.find(corpus::kExamHeader), 0u);
  // Both examples present with their answers.
  EXPECT_NE(prompt.find("Example one?"), std::string::npos);
  EXPECT_NE(prompt.find("Answer: A\n"), std::string::npos);
  EXPECT_NE(prompt.find("Example two?"), std::string::npos);
  EXPECT_NE(prompt.find("Answer: D\n"), std::string::npos);
  // Test question present and the prompt ends at the probe "Answer:".
  EXPECT_NE(prompt.find("What is the test question?"), std::string::npos);
  EXPECT_EQ(prompt.substr(prompt.size() - 7), "Answer:");
  // The test question's answer letter must NOT be revealed.
  const std::size_t probe = prompt.rfind("What is the test question?");
  EXPECT_EQ(prompt.find("Answer: B", probe), std::string::npos);
}

TEST(TokenPrompt, ExamplesPrecedeTestQuestion) {
  const corpus::McqItem test_item = make_item("Zed question?");
  const std::vector<corpus::McqItem> examples = {make_item("First?"), make_item("Second?")};
  const std::string prompt = build_token_prompt(test_item, examples);
  EXPECT_LT(prompt.find("First?"), prompt.find("Second?"));
  EXPECT_LT(prompt.find("Second?"), prompt.find("Zed question?"));
}

TEST(InstructPrompt, WrapsInChatTemplate) {
  const corpus::McqItem item = make_item("The chat question?");
  const std::string prompt = build_instruct_prompt(item);
  EXPECT_EQ(prompt.find("<|user|>"), 0u);
  EXPECT_NE(prompt.find("The chat question?"), std::string::npos);
  EXPECT_NE(prompt.find("\"ANSWER\""), std::string::npos);
  // Ends with an opened assistant turn for generation.
  const std::string tail = "<|assistant|>";
  EXPECT_EQ(prompt.substr(prompt.size() - tail.size()), tail);
}

TEST(FewshotExamples, DeterministicPairFromPool) {
  std::vector<corpus::McqItem> pool;
  for (int i = 0; i < 9; ++i) pool.push_back(make_item("Q" + std::to_string(i) + "?"));
  const auto examples = pick_fewshot_examples(pool);
  ASSERT_EQ(examples.size(), 2u);
  EXPECT_EQ(examples[0].question, "Q0?");
  EXPECT_EQ(examples[1].question, "Q4?");
  // Stable across calls (paper uses fixed examples for every question).
  const auto again = pick_fewshot_examples(pool);
  EXPECT_EQ(again[0].question, examples[0].question);
}

TEST(FewshotExamples, RejectsTinyPool) {
  std::vector<corpus::McqItem> pool = {make_item("Only one?")};
  EXPECT_THROW(pick_fewshot_examples(pool), std::invalid_argument);
}

}  // namespace
}  // namespace astromlab::eval
